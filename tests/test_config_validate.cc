/**
 * @file
 * Negative-path tests for SystemConfig::validate(): every class of
 * unusable configuration must be rejected with a readable message.
 * Uses ScopedFatalThrow so rejections surface as catchable FatalError
 * exceptions — the same mechanism the campaign runner uses to turn a
 * bad job into an error row instead of a dead process.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "system/config.hh"

using namespace csync;

namespace
{

SystemConfig
goodConfig()
{
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = 4;
    cfg.cache.geom.frames = 16;
    cfg.cache.geom.blockWords = 4;
    return cfg;
}

/** Validate under ScopedFatalThrow; returns the failure message. */
std::string
rejectionMessage(const SystemConfig &cfg)
{
    ScopedFatalThrow guard;
    try {
        cfg.validate();
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

} // namespace

TEST(ConfigValidate, AcceptsSaneConfig)
{
    EXPECT_EQ(rejectionMessage(goodConfig()), "");
}

TEST(ConfigValidate, RejectsZeroProcessors)
{
    SystemConfig cfg = goodConfig();
    cfg.numProcessors = 0;
    EXPECT_NE(rejectionMessage(cfg).find("at least one processor"),
              std::string::npos);
}

TEST(ConfigValidate, RejectsAbsurdProcessorCount)
{
    SystemConfig cfg = goodConfig();
    cfg.numProcessors = 100000;
    EXPECT_NE(rejectionMessage(cfg).find("single-bus limit"),
              std::string::npos);
}

TEST(ConfigValidate, RejectsUnknownProtocol)
{
    SystemConfig cfg = goodConfig();
    cfg.protocol = "klingon";
    std::string msg = rejectionMessage(cfg);
    EXPECT_NE(msg.find("unknown protocol 'klingon'"), std::string::npos)
        << msg;

    cfg.protocol = "";
    EXPECT_NE(rejectionMessage(cfg).find("no protocol selected"),
              std::string::npos);
}

TEST(ConfigValidate, RejectsAbsurdBlockSize)
{
    SystemConfig cfg = goodConfig();
    cfg.cache.geom.blockWords = 0;
    EXPECT_NE(rejectionMessage(cfg).find("power of two"),
              std::string::npos);

    cfg.cache.geom.blockWords = 3; // not a power of two
    EXPECT_NE(rejectionMessage(cfg).find("power of two"),
              std::string::npos);

    cfg.cache.geom.blockWords = 1u << 20; // a 8 MiB cache block
    EXPECT_NE(rejectionMessage(cfg).find("absurd"), std::string::npos);
}

TEST(ConfigValidate, RejectsBrokenGeometry)
{
    SystemConfig cfg = goodConfig();
    cfg.cache.geom.frames = 0;
    EXPECT_NE(rejectionMessage(cfg).find("at least one frame"),
              std::string::npos);

    cfg = goodConfig();
    cfg.cache.geom.frames = 10;
    cfg.cache.geom.ways = 4; // 10 % 4 != 0
    EXPECT_NE(rejectionMessage(cfg).find("multiple of associativity"),
              std::string::npos);

    cfg = goodConfig();
    cfg.cache.geom.blockWords = 4;
    cfg.cache.geom.transferWords = 3;
    EXPECT_NE(rejectionMessage(cfg).find("divide the block size"),
              std::string::npos);
}

TEST(ConfigValidate, RejectsBadFaultPlans)
{
    SystemConfig cfg = goodConfig();
    cfg.fault.rate = -0.5;
    EXPECT_NE(rejectionMessage(cfg).find("outside [0, 1]"),
              std::string::npos);

    cfg = goodConfig();
    cfg.fault.rate = 1.5;
    EXPECT_NE(rejectionMessage(cfg).find("outside [0, 1]"),
              std::string::npos);

    cfg = goodConfig();
    cfg.fault.rate = 0.1;
    cfg.fault.kinds = {"bitrot"};
    std::string msg = rejectionMessage(cfg);
    EXPECT_NE(msg.find("unknown fault kind 'bitrot'"), std::string::npos)
        << msg;
    // The rejection teaches the valid kinds.
    EXPECT_NE(msg.find("nak"), std::string::npos) << msg;
    EXPECT_NE(msg.find("delay_supply"), std::string::npos) << msg;

    cfg = goodConfig();
    cfg.fault.rate = 0.1;
    cfg.fault.backoffBase = 0; // would retry at +0 ticks forever
    EXPECT_NE(rejectionMessage(cfg).find("backoff base"),
              std::string::npos);

    // A disabled plan is always acceptable, whatever its other fields.
    cfg = goodConfig();
    cfg.fault.rate = 0.0;
    cfg.fault.backoffBase = 0;
    EXPECT_EQ(rejectionMessage(cfg), "");
}

TEST(ConfigValidate, RejectsBrokenTopologies)
{
    // A gap below the first range.
    SystemConfig cfg = goodConfig();
    cfg.topology = TopologyConfig::twoSwitch();
    cfg.topology.switches[0].ranges[0].lo = 0x1000;
    std::string msg = rejectionMessage(cfg);
    EXPECT_NE(msg.find("invalid topology 'two_switch'"),
              std::string::npos) << msg;
    EXPECT_NE(msg.find("gap"), std::string::npos) << msg;

    // Overlapping switch partitions.
    cfg = goodConfig();
    cfg.topology = TopologyConfig::twoSwitch();
    cfg.topology.switches[1].ranges[0].lo = 0x8000;
    EXPECT_NE(rejectionMessage(cfg).find("overlap"), std::string::npos);

    // The presets themselves are always acceptable.
    cfg = goodConfig();
    cfg.topology = TopologyConfig::twoSwitch();
    EXPECT_EQ(rejectionMessage(cfg), "");
}

TEST(ConfigValidate, RejectsFaultTargetNamingNoSwitch)
{
    SystemConfig cfg = goodConfig();
    cfg.topology = TopologyConfig::twoSwitch();
    cfg.fault.rate = 0.1;
    cfg.fault.target = "ring_hub";
    std::string msg = rejectionMessage(cfg);
    EXPECT_NE(msg.find("fault target 'ring_hub'"), std::string::npos)
        << msg;

    // A target that exists is fine; so is no target at all.
    cfg.fault.target = "data_switch";
    EXPECT_EQ(rejectionMessage(cfg), "");
    cfg.fault.target = "";
    EXPECT_EQ(rejectionMessage(cfg), "");
}

TEST(ConfigValidate, RejectsUnknownArbitration)
{
    SystemConfig cfg = goodConfig();
    cfg.arbitration = "coin_flip";
    std::string msg = rejectionMessage(cfg);
    EXPECT_NE(msg.find("unknown arbitration 'coin_flip'"),
              std::string::npos) << msg;
    // The rejection teaches the valid policies.
    EXPECT_NE(msg.find("round_robin"), std::string::npos) << msg;
    EXPECT_NE(msg.find("fcfs"), std::string::npos) << msg;

    cfg.arbitration = "";
    EXPECT_NE(rejectionMessage(cfg).find("no arbitration policy"),
              std::string::npos);

    // Every registered policy is acceptable.
    for (const char *a : {"round_robin", "fcfs", "alternating_priority"}) {
        cfg = goodConfig();
        cfg.arbitration = a;
        EXPECT_EQ(rejectionMessage(cfg), "") << a;
    }
}

TEST(ConfigValidate, RejectsUnknownPerSwitchArbitration)
{
    SystemConfig cfg = goodConfig();
    cfg.topology = TopologyConfig::twoSwitch();
    cfg.topology.switches[1].arbitration = "lottery";
    std::string msg = rejectionMessage(cfg);
    EXPECT_NE(msg.find("unknown arbitration 'lottery'"),
              std::string::npos) << msg;
    EXPECT_NE(msg.find("data_switch"), std::string::npos) << msg;

    // A per-switch override that exists is fine; "" inherits.
    cfg.topology.switches[1].arbitration = "alternating_priority";
    EXPECT_EQ(rejectionMessage(cfg), "");
    cfg.topology.switches[1].arbitration = "";
    EXPECT_EQ(rejectionMessage(cfg), "");
}

TEST(ConfigValidate, RejectsBadAdaptiveTuning)
{
    SystemConfig cfg = goodConfig();
    cfg.adaptive.counterBits = 0;
    EXPECT_NE(rejectionMessage(cfg).find("outside 1..8"),
              std::string::npos);
    cfg.adaptive.counterBits = 9;
    EXPECT_NE(rejectionMessage(cfg).find("outside 1..8"),
              std::string::npos);

    cfg = goodConfig();
    cfg.adaptive.counterBits = 2;
    cfg.adaptive.invalidateThreshold = 4; // 2-bit counter tops out at 3
    std::string msg = rejectionMessage(cfg);
    EXPECT_NE(msg.find("invalidate threshold"), std::string::npos)
        << msg;

    cfg = goodConfig();
    cfg.adaptive.updateThreshold = 200;
    EXPECT_NE(rejectionMessage(cfg).find("update threshold"),
              std::string::npos);

    // Thresholds at the counter ceiling (and 0 = never switch) are
    // acceptable.
    cfg = goodConfig();
    cfg.adaptive.counterBits = 2;
    cfg.adaptive.invalidateThreshold = 3;
    cfg.adaptive.updateThreshold = 0;
    EXPECT_EQ(rejectionMessage(cfg), "");
}

TEST(ConfigValidate, FatalStillExitsOutsideGuard)
{
    SystemConfig cfg = goodConfig();
    cfg.numProcessors = 0;
    // Without ScopedFatalThrow, fatal() exits with status 1.
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "at least one processor");
}
