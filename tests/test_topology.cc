/**
 * @file
 * Topology-layer tests: preset construction and validation, AddressMap
 * routing boundaries, the Figure 11 traffic-segregation invariant on a
 * real two-switch System, fault injection scoped to one interconnect,
 * and campaign determinism across worker counts on multi-switch grids.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "fault/faulty_bus.hh"
#include "harness/campaign.hh"
#include "harness/sweep.hh"
#include "harness/workload_factory.hh"
#include "proc/workloads/random_sharing.hh"
#include "proc/workloads/service_queue.hh"
#include "sim/logging.hh"
#include "system/system.hh"

using namespace csync;
using namespace csync::harness;

namespace
{

/** Boundary of the two_switch preset's sync partition (16 MiB). */
constexpr Addr kSplit = 0x0100'0000;

/** Run check() and return its failure message ("" when valid). */
std::string
checkMessage(const TopologyConfig &topo)
{
    std::string err;
    return topo.check(&err) ? "" : err;
}

} // namespace

TEST(Topology, PresetsAreValid)
{
    EXPECT_EQ(checkMessage(TopologyConfig::singleBus()), "");
    EXPECT_EQ(checkMessage(TopologyConfig::twoSwitch()), "");

    EXPECT_TRUE(TopologyConfig::singleBus().isSingleBus());
    EXPECT_FALSE(TopologyConfig::twoSwitch().isSingleBus());

    TopologyConfig two = TopologyConfig::twoSwitch();
    ASSERT_EQ(two.switches.size(), 2u);
    EXPECT_EQ(two.switches[0].name, "sync_bus");
    EXPECT_EQ(two.switches[1].name, "data_switch");
    EXPECT_EQ(two.syncSwitch(), 0u);
    EXPECT_EQ(two.indexOf("data_switch"), 1u);
    EXPECT_EQ(two.indexOf("nonesuch"), two.switches.size());
}

TEST(Topology, FromNameCoversEveryAdvertisedPreset)
{
    for (const auto &name : TopologyConfig::names()) {
        TopologyConfig topo;
        EXPECT_TRUE(TopologyConfig::fromName(name, &topo)) << name;
        EXPECT_EQ(checkMessage(topo), "") << name;
    }
    TopologyConfig topo;
    EXPECT_FALSE(TopologyConfig::fromName("ring", &topo));
}

TEST(Topology, CheckRejectsGapsAndOverlaps)
{
    // A hole below the first range.
    TopologyConfig topo = TopologyConfig::twoSwitch();
    topo.switches[0].ranges = {{0x1000, kSplit}};
    EXPECT_NE(checkMessage(topo).find("gap below"), std::string::npos);

    // A hole between the two partitions.
    topo = TopologyConfig::twoSwitch();
    topo.switches[1].ranges = {{kSplit + 0x1000, 0}};
    EXPECT_NE(checkMessage(topo).find("gap at"), std::string::npos);

    // A bounded map that does not reach the end of the space.
    topo = TopologyConfig::twoSwitch();
    topo.switches[1].ranges = {{kSplit, kSplit * 2}};
    EXPECT_NE(checkMessage(topo).find("gap above"), std::string::npos);

    // Overlapping partitions: both switches claim [kSplit-0x100, ...).
    topo = TopologyConfig::twoSwitch();
    topo.switches[1].ranges = {{kSplit - 0x100, 0}};
    std::string msg = checkMessage(topo);
    EXPECT_NE(msg.find("overlap"), std::string::npos) << msg;
    EXPECT_NE(msg.find("sync_bus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("data_switch"), std::string::npos) << msg;
}

TEST(Topology, CheckRejectsMalformedSwitches)
{
    TopologyConfig topo;
    topo.switches.clear();
    EXPECT_NE(checkMessage(topo).find("at least one switch"),
              std::string::npos);

    topo = TopologyConfig::twoSwitch();
    topo.switches[1].name = "sync_bus";
    EXPECT_NE(checkMessage(topo).find("duplicate switch name"),
              std::string::npos);

    topo = TopologyConfig::twoSwitch();
    topo.switches[0].carries = 0;
    EXPECT_NE(checkMessage(topo).find("bad carries mask"),
              std::string::npos);

    // Nobody carries sync traffic: the machine could never lock.
    topo = TopologyConfig::twoSwitch();
    topo.switches[0].carries = trafficClassBit(TrafficClass::Data);
    EXPECT_NE(checkMessage(topo).find("traffic class"),
              std::string::npos);

    topo = TopologyConfig::twoSwitch();
    topo.switches[0].ranges = {{kSplit, kSplit}}; // empty range
    EXPECT_NE(checkMessage(topo).find("empty range"), std::string::npos);
}

TEST(Topology, ValidateIsFatalOnBadTopology)
{
    TopologyConfig topo = TopologyConfig::twoSwitch();
    topo.switches[0].ranges = {{0x1000, kSplit}};
    ScopedFatalThrow guard;
    EXPECT_THROW(topo.validate(), FatalError);
}

TEST(Topology, AddressMapRoutesAtPartitionBoundaries)
{
    AddressMap single(TopologyConfig::singleBus());
    EXPECT_EQ(single.numSwitches(), 1u);
    EXPECT_EQ(single.switchFor(0), 0u);
    EXPECT_EQ(single.switchFor(~Addr(0)), 0u);

    AddressMap two(TopologyConfig::twoSwitch());
    EXPECT_EQ(two.numSwitches(), 2u);
    EXPECT_EQ(two.switchFor(0), 0u);
    EXPECT_EQ(two.switchFor(kSplit - 1), 0u);
    EXPECT_EQ(two.switchFor(kSplit), 1u);    // first data address
    EXPECT_EQ(two.switchFor(kSplit + 1), 1u);
    EXPECT_EQ(two.switchFor(0x20000000), 1u);
    EXPECT_EQ(two.switchFor(~Addr(0)), 1u);  // unbounded tail range
}

TEST(Topology, AddressMapEdgeCases)
{
    // Full space as one explicit [0, end) range: everything routes to
    // the only switch, including both extremes of the address space.
    TopologyConfig full;
    full.preset = "custom";
    full.switches = {{"bus", kAllTraffic, {{0, 0}}, ""}};
    ASSERT_EQ(checkMessage(full), "");
    AddressMap fullMap(full);
    EXPECT_EQ(fullMap.switchFor(0), 0u);
    EXPECT_EQ(fullMap.switchFor(0x8000'0000), 0u);
    EXPECT_EQ(fullMap.switchFor(~Addr(0)), 0u);

    // A zero-length range is rejected outright rather than silently
    // producing an unroutable hole.
    TopologyConfig zero = full;
    zero.switches[0].ranges = {{0x1000, 0x1000}};
    EXPECT_NE(checkMessage(zero).find("empty range"), std::string::npos);

    // Adjacent-but-not-overlapping partitions are valid and route
    // exactly at the seams: hi of one range is the lo of the next.
    constexpr Addr kA = 0x0020'0000;
    constexpr Addr kB = 0x0300'0000;
    TopologyConfig adj;
    adj.preset = "custom";
    adj.switches = {
        {"lo", kAllTraffic, {{0, kA}}, ""},
        {"mid", kAllTraffic, {{kA, kB}}, ""},
        {"hi", kAllTraffic, {{kB, 0}}, ""},
    };
    ASSERT_EQ(checkMessage(adj), "");
    AddressMap map(adj);
    EXPECT_EQ(map.numSwitches(), 3u);
    EXPECT_EQ(map.switchFor(0), 0u);
    EXPECT_EQ(map.switchFor(kA - 1), 0u);
    EXPECT_EQ(map.switchFor(kA), 1u);
    EXPECT_EQ(map.switchFor(kB - 1), 1u);
    EXPECT_EQ(map.switchFor(kB), 2u);
    EXPECT_EQ(map.switchFor(~Addr(0)), 2u);
}

namespace
{

/** Build and run a two_switch System on a factory workload.  Heap
 *  allocated: a System pins internal pointers and must not move. */
std::unique_ptr<System>
runTwoSwitch(const std::string &workload, unsigned procs,
             const FaultPlan &fault = FaultPlan{})
{
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    cfg.topology = TopologyConfig::twoSwitch();
    cfg.fault = fault;
    auto sys = std::make_unique<System>(cfg);
    for (unsigned i = 0; i < procs; ++i) {
        WorkloadSlot slot;
        slot.procId = i;
        slot.numProcs = procs;
        slot.ops = 400;
        slot.seed = 42;
        slot.protocol = cfg.protocol;
        std::string err;
        auto w = makeWorkload(workload, slot, &err);
        EXPECT_NE(w, nullptr) << err;
        sys->addProcessor(std::move(w));
    }
    sys->start();
    sys->run();
    EXPECT_TRUE(sys->allDone());
    return sys;
}

} // namespace

TEST(Topology, TwoSwitchSystemSegregatesTrafficClasses)
{
    // Figure 11: the synchronization system and the data system carry
    // disjoint traffic.  The service queue is all-sync; its references
    // must never appear on the data switch, and no data-class message
    // may ride the sync bus.
    auto sys = runTwoSwitch("service_queue", 4);
    ASSERT_EQ(sys->numInterconnects(), 2u);
    Bus &sync_bus = sys->bus(0);
    Bus &data_switch = sys->bus(1);
    EXPECT_EQ(sync_bus.name(), "sync_bus");
    EXPECT_EQ(data_switch.name(), "data_switch");

    EXPECT_GT(sync_bus.classCount(TrafficClass::Sync), 0.0);
    EXPECT_EQ(sync_bus.classCount(TrafficClass::Data), 0.0);
    EXPECT_EQ(data_switch.classCount(TrafficClass::Sync), 0.0);
    EXPECT_EQ(sync_bus.misroutedCount(), 0.0);
    EXPECT_EQ(data_switch.misroutedCount(), 0.0);

    EXPECT_EQ(sys->checker().violations(), 0u);
    EXPECT_EQ(sys->checkStateInvariants(), 0u);
}

TEST(Topology, MixedWorkloadKeepsBothSwitchesBusyAndSegregated)
{
    // Half the processors hammer the shared service queue (sync system),
    // half stream relocated shared data (data system) — both switches
    // see work, neither sees the other's class, nothing is misrouted.
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = 4;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    cfg.topology = TopologyConfig::twoSwitch();
    System sys(cfg);
    for (unsigned i = 0; i < 4; ++i) {
        if (i < 2) {
            ServiceQueueParams q;
            q.operations = 40;
            q.alg = LockAlg::CacheLock;
            q.procId = i;
            sys.addProcessor(std::make_unique<ServiceQueueWorkload>(
                q, i % 2 ? QueueRole::Consumer : QueueRole::Producer));
        } else {
            RandomSharingParams p;
            p.ops = 400;
            p.procId = i;
            p.seed = 42 + i;
            p.sharedBase = 0x20000000; // above the two_switch split
            sys.addProcessor(
                std::make_unique<RandomSharingWorkload>(p));
        }
    }
    sys.start();
    sys.run();
    EXPECT_TRUE(sys.allDone());

    Bus &sync_bus = sys.bus(0);
    Bus &data_switch = sys.bus(1);
    EXPECT_GT(sync_bus.transactions.value(), 0.0);
    EXPECT_GT(data_switch.transactions.value(), 0.0);
    EXPECT_EQ(sync_bus.classCount(TrafficClass::Data), 0.0);
    EXPECT_EQ(data_switch.classCount(TrafficClass::Sync), 0.0);
    EXPECT_EQ(sync_bus.misroutedCount(), 0.0);
    EXPECT_EQ(data_switch.misroutedCount(), 0.0);
    EXPECT_EQ(sys.checkStateInvariants(), 0u);
}

TEST(Topology, RoutingIsByAddressAndMisroutingIsCounted)
{
    // The traffic class is advisory (Section E.2): references route by
    // address, so a workload whose payload lives in the sync partition
    // still runs correctly — the data-class transactions ride the sync
    // bus and the misrouted counter reports the placement problem.
    auto sys = runTwoSwitch("producer_consumer", 4);
    Bus &sync_bus = sys->bus(0);
    Bus &data_switch = sys->bus(1);

    EXPECT_GT(sync_bus.classCount(TrafficClass::Data), 0.0);
    EXPECT_GT(sync_bus.misroutedCount(), 0.0);
    EXPECT_EQ(data_switch.classCount(TrafficClass::Sync), 0.0);
    EXPECT_EQ(sys->checker().violations(), 0u);
    EXPECT_EQ(sys->checkStateInvariants(), 0u);
}

TEST(Topology, PerInterconnectStatNamespacesAreDisjoint)
{
    auto sys = runTwoSwitch("service_queue", 4);
    std::ostringstream os;
    sys->dumpStats(os);
    std::string dump = os.str();
    EXPECT_NE(dump.find("system.sync_bus."), std::string::npos);
    EXPECT_NE(dump.find("system.data_switch."), std::string::npos);
    EXPECT_NE(dump.find("system.sync_bus.memory."), std::string::npos);
    EXPECT_NE(dump.find("system.sync_bus.traffic.sync"),
              std::string::npos);
    // The single-bus legacy names must NOT leak into a two-switch dump.
    EXPECT_EQ(dump.find("system.bus."), std::string::npos);
    EXPECT_EQ(dump.find("system.memory."), std::string::npos);
}

TEST(Topology, FaultTargetScopesInjectionToOneInterconnect)
{
    FaultPlan fault;
    fault.rate = 0.2;
    fault.seed = 7;
    fault.target = "sync_bus";
    auto sys = runTwoSwitch("service_queue", 4, fault);

    // Only the targeted interconnect is a FaultyBus.
    EXPECT_NE(dynamic_cast<FaultyBus *>(&sys->bus(0)), nullptr);
    EXPECT_EQ(dynamic_cast<FaultyBus *>(&sys->bus(1)), nullptr);

    // And despite the injected faults the run still completes cleanly.
    EXPECT_EQ(sys->checker().violations(), 0u);
    EXPECT_EQ(sys->checkStateInvariants(), 0u);
}

TEST(Topology, UntargetedFaultPlanWrapsEveryInterconnect)
{
    FaultPlan fault;
    fault.rate = 0.05;
    fault.seed = 7;
    auto sys = runTwoSwitch("service_queue", 2, fault);
    EXPECT_NE(dynamic_cast<FaultyBus *>(&sys->bus(0)), nullptr);
    EXPECT_NE(dynamic_cast<FaultyBus *>(&sys->bus(1)), nullptr);
}

namespace
{

/** Run a small mixed-topology campaign at the given worker count. */
CampaignResult
runCampaign(unsigned jobs)
{
    SweepSpec spec;
    spec.name = "topology-determinism";
    spec.protocols = {"bitar", "dragon"};
    spec.workloads = {"service_queue", "random_sharing"};
    spec.topologies = {"single_bus", "two_switch"};
    spec.processorCounts = {2, 4};
    spec.opsPerProcessor = 200;
    std::vector<JobSpec> grid;
    std::string err;
    EXPECT_TRUE(spec.expand(&grid, &err)) << err;
    CampaignRunner runner;
    CampaignRunner::Options opts;
    opts.jobs = jobs;
    return runner.run(grid, opts);
}

} // namespace

TEST(Topology, CampaignRowsAreIdenticalAtAnyWorkerCount)
{
    CampaignResult serial = runCampaign(1);
    CampaignResult parallel = runCampaign(4);
    ASSERT_EQ(serial.rows.size(), parallel.rows.size());
    ASSERT_EQ(serial.rows.size(), 16u); // 2 protos x 2 wl x 2 topo x 2 p
    for (std::size_t i = 0; i < serial.rows.size(); ++i) {
        const JobResult &a = serial.rows[i];
        const JobResult &b = parallel.rows[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.status, b.status) << a.name;
        EXPECT_EQ(a.ticks, b.ticks) << a.name;
        EXPECT_EQ(a.memOps, b.memOps) << a.name;
        EXPECT_EQ(a.stats, b.stats) << a.name;
        EXPECT_TRUE(a.ok()) << a.name << ": " << a.error;
    }
    // The two_switch rows really ran two interconnects.
    bool saw_two_switch = false;
    for (const JobResult &row : serial.rows) {
        if (row.name.find("/two_switch/") == std::string::npos)
            continue;
        saw_two_switch = true;
        EXPECT_NE(row.stats.find("system.sync_bus.transactions"),
                  row.stats.end()) << row.name;
        EXPECT_EQ(row.stats.count("system.bus.transactions"), 0u)
            << row.name;
    }
    EXPECT_TRUE(saw_two_switch);
}
