/**
 * @file
 * Tests for the bounded exhaustive model checker: all shipped protocols
 * must be clean at the smoke bound, and the deliberately broken variant
 * (dropped invalidation) must be found with a minimal, replayable
 * counterexample.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "coherence/protocol.hh"
#include "mc/explorer.hh"
#include "mc/fuzzer.hh"
#include "system/replay.hh"

using namespace csync;
using namespace csync::mc;

TEST(Explorer, ShippedProtocolsExcludeBrokenVariants)
{
    std::vector<std::string> names = StateExplorer::shippedProtocols();
    EXPECT_EQ(names.size(), 12u);
    for (const std::string &n : names)
        EXPECT_NE(n.rfind("broken_", 0), 0u) << n;
    EXPECT_NE(std::find(names.begin(), names.end(), "bitar"), names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "adaptive_du"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "adaptive_bi"),
              names.end());
    // The broken variants are registered, just filtered from "shipped".
    std::vector<std::string> all = ProtocolRegistry::names();
    EXPECT_NE(std::find(all.begin(), all.end(), "broken_noinval"),
              all.end());
    EXPECT_NE(std::find(all.begin(), all.end(), "broken_adaptive"),
              all.end());
}

TEST(Explorer, AllShippedProtocolsCleanAtSmokeBound)
{
    for (const std::string &name : StateExplorer::shippedProtocols()) {
        StateExplorer ex(ExploreBounds::smoke());
        ExploreResult res = ex.explore(name);
        EXPECT_TRUE(res.clean()) << name << ": " << res.violation;
        EXPECT_GT(res.statesVisited, 0u) << name;
    }
}

TEST(Explorer, DigestDedupPrunesSearch)
{
    StateExplorer ex(ExploreBounds::smoke());
    ExploreResult res = ex.explore("bitar");
    // Distinct interleavings reconverge on identical architectural
    // states; the dedup must fire or the search is the full op tree.
    EXPECT_GT(res.statesDeduped, 0u);
}

TEST(Explorer, FindsDroppedInvalidationWithinSmokeBound)
{
    StateExplorer ex(ExploreBounds::smoke());
    ExploreResult res = ex.explore("broken_noinval");
    ASSERT_TRUE(res.violationFound);
    EXPECT_FALSE(res.violation.empty());

    // Minimal: two concurrent writers expose the dropped invalidation;
    // the shrinker must get at or below that.
    ASSERT_FALSE(res.counterexample.ops.empty());
    EXPECT_LE(res.counterexample.ops.size(), 2u);

    // The counterexample must replay to the same verdict from scratch.
    ReplayVerdict again = replayTrace(res.counterexample);
    EXPECT_FALSE(again.clean());
    EXPECT_EQ(again.firstProblem, res.counterexampleVerdict.firstProblem);
}

TEST(Explorer, FindsStaleAdaptiveUpdateWithinSmokeBound)
{
    // broken_adaptive drops the update broadcast when a block flips to
    // invalidate mode without actually invalidating the sharers: a
    // remote cache keeps serving the stale word.  The explorer pins the
    // adaptive thresholds to 1 so the flip is reachable at depth 4.
    StateExplorer ex(ExploreBounds::smoke());
    ExploreResult res = ex.explore("broken_adaptive");
    ASSERT_TRUE(res.violationFound);
    EXPECT_FALSE(res.violation.empty());

    ASSERT_FALSE(res.counterexample.ops.empty());
    EXPECT_LE(res.counterexample.ops.size(), 4u);

    // The counterexample must replay to the same verdict from scratch.
    ReplayVerdict again = replayTrace(res.counterexample);
    EXPECT_FALSE(again.clean());
    EXPECT_EQ(again.firstProblem, res.counterexampleVerdict.firstProblem);
}

TEST(Fuzzer, DefaultPairsDiffAdaptiveHybridsAgainstBothParents)
{
    // A mode flip must never change what the memory system returns, so
    // the adaptive hybrids are fuzzed against their parent protocols in
    // addition to the usual everything-vs-bitar pairs.
    auto has = [](const std::vector<FuzzPair> &pairs, const std::string &a,
                  const std::string &b) {
        return std::any_of(pairs.begin(), pairs.end(),
                           [&](const FuzzPair &p) {
                               return p.a == a && p.b == b &&
                                      !p.ablateBusyWait && !p.ablatePriority;
                           });
    };
    std::vector<FuzzPair> pairs = DifferentialFuzzer::defaultPairs();
    EXPECT_TRUE(has(pairs, "dragon", "adaptive_du"));
    EXPECT_TRUE(has(pairs, "berkeley", "adaptive_bi"));
}

TEST(Fuzzer, AdaptiveHybridsMatchTheirParentsOverSeededTraces)
{
    DifferentialFuzzer::Options opts;
    DifferentialFuzzer fuzzer(opts);
    for (const auto &[a, b] : {std::pair<std::string, std::string>{
                                   "dragon", "adaptive_du"},
                               {"berkeley", "adaptive_bi"}}) {
        FuzzPair pair;
        pair.a = a;
        pair.b = b;
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            FuzzReport rep = fuzzer.runPair(seed, pair);
            EXPECT_TRUE(rep.clean())
                << pair.label() << " seed " << seed << ": " << rep.detail;
            EXPECT_FALSE(rep.diverged)
                << pair.label() << " seed " << seed << ": "
                << rep.divergence;
        }
    }
}

TEST(Explorer, CounterexampleSurvivesJsonRoundTrip)
{
    StateExplorer ex(ExploreBounds::smoke());
    ExploreResult res = ex.explore("broken_noinval");
    ASSERT_TRUE(res.violationFound);

    harness::Json j = traceToJson(res.counterexample);
    DirectedTrace back;
    std::string err;
    ASSERT_TRUE(traceFromJson(j, &back, &err)) << err;
    EXPECT_EQ(traceToJson(back).dump(2), j.dump(2));
    EXPECT_FALSE(replayTrace(back).clean());
}

TEST(Explorer, BoundsDescribeAndScale)
{
    EXPECT_EQ(ExploreBounds::smoke().depth, 4u);
    EXPECT_EQ(ExploreBounds::deep().caches, 3u);
    EXPECT_FALSE(ExploreBounds::smoke().describe().empty());

    // Depth 2 visits strictly fewer states than the smoke bound.
    ExploreBounds shallow = ExploreBounds::smoke();
    shallow.depth = 2;
    StateExplorer exShallow(shallow);
    StateExplorer exSmoke(ExploreBounds::smoke());
    EXPECT_LT(exShallow.explore("bitar").statesVisited,
              exSmoke.explore("bitar").statesVisited);
}

TEST(Explorer, WriteValuesAreFreshPerStepAndCache)
{
    // The dedup soundness argument needs distinct nonzero values.
    std::vector<Word> seen;
    for (unsigned step = 0; step < 6; ++step) {
        for (unsigned cache = 0; cache < 3; ++cache) {
            Word v = StateExplorer::writeValue(step, cache);
            EXPECT_NE(v, 0u);
            EXPECT_EQ(std::count(seen.begin(), seen.end(), v), 0);
            seen.push_back(v);
        }
    }
}

TEST(Protocol, CloneReproducesRegisteredProtocols)
{
    for (const std::string &name : StateExplorer::shippedProtocols()) {
        auto p = ProtocolRegistry::make(name);
        ASSERT_NE(p, nullptr) << name;
        auto c = p->clone();
        ASSERT_NE(c, nullptr) << name;
        EXPECT_EQ(c->name(), p->name());
    }
    // The broken decorator deep-clones its wrapped protocol.
    auto broken = ProtocolRegistry::make("broken_noinval");
    ASSERT_NE(broken, nullptr);
    EXPECT_EQ(broken->clone()->name(), broken->name());
}

TEST(Replayer, DigestIsDeterministicAndStateSensitive)
{
    DirectedTrace shape;
    shape.protocol = "bitar";

    TraceReplayer a(shape);
    TraceReplayer b(shape);
    DirectedOp w{0, DirectedKind::Write, 0x1000, 42};
    a.step(w);
    b.step(w);
    EXPECT_EQ(a.digest(), b.digest());

    DirectedOp w2{1, DirectedKind::Write, 0x1000, 43};
    b.step(w2);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(Replayer, LockDisciplineGuardSkipsProgramBugs)
{
    DirectedTrace shape;
    shape.protocol = "bitar";

    TraceReplayer r(shape);
    // Unlock of a block nobody holds: skipped, not a panic.
    OpOutcome o = r.step({0, DirectedKind::UnlockWrite, 0x1000, 1});
    EXPECT_FALSE(o.issued);

    EXPECT_TRUE(r.step({0, DirectedKind::LockRead, 0x1000, 0}).issued);
    // Re-lock by the holder: also a program bug, also skipped.
    EXPECT_FALSE(r.step({0, DirectedKind::LockRead, 0x1000, 0}).issued);
    EXPECT_TRUE(r.step({0, DirectedKind::UnlockWrite, 0x1000, 7}).issued);

    ReplayVerdict v = r.verdict();
    EXPECT_EQ(v.skippedOps, 2u);
    EXPECT_EQ(v.checkerViolations, 0u);
}

TEST(Replayer, PurgedLockRefetchReclaimsMemoryTag)
{
    // The depth-4 sequence the explorer originally found: lock, purge
    // via eviction, refetch with a *plain* read, unlock.  The refetch
    // must reclaim the lock from its memory tag (Section E.3) or the
    // unlock faults and the tag wedges every other cache.
    DirectedTrace t;
    t.protocol = "bitar";
    t.ops = {
        {0, DirectedKind::LockRead, 0x1000, 0},
        {0, DirectedKind::Evict, 0x1000, 0},
        {0, DirectedKind::Read, 0x1000, 0},
        {0, DirectedKind::UnlockWrite, 0x1000, 9},
    };
    ReplayVerdict v = replayTrace(t);
    EXPECT_TRUE(v.clean()) << v.describe();
    EXPECT_EQ(v.skippedOps, 0u);
}
