/**
 * @file
 * Tests for the Table 1/2 feature audit: every protocol's measured
 * behavior must agree with its claimed feature vector, and the rendered
 * tables must carry the paper's structure.
 */

#include <gtest/gtest.h>

#include "core/feature_audit.hh"

using namespace csync;

namespace
{

class AuditEveryProtocol : public ::testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(AuditEveryProtocol, MeasuredMatchesClaimed)
{
    FeatureAudit a = auditProtocol(GetParam());
    std::string why;
    EXPECT_TRUE(a.consistent(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(
    All, AuditEveryProtocol,
    ::testing::Values("bitar", "goodman", "synapse", "illinois", "yen",
                      "berkeley", "dragon", "firefly", "rudolph_segall",
                      "classic_wt"),
    [](const ::testing::TestParamInfo<std::string> &i) {
        return i.param;
    });

TEST(FeatureAudit, Table1ColumnsMatchPaperOrder)
{
    auto audits = auditTable1Protocols();
    ASSERT_EQ(audits.size(), 6u);
    EXPECT_EQ(audits[0].protocol, "goodman");
    EXPECT_EQ(audits[1].protocol, "synapse");
    EXPECT_EQ(audits[2].protocol, "illinois");
    EXPECT_EQ(audits[3].protocol, "yen");
    EXPECT_EQ(audits[4].protocol, "berkeley");
    EXPECT_EQ(audits[5].protocol, "bitar");
}

TEST(FeatureAudit, OnlyBitarHasLockStatesAndBusyWait)
{
    auto audits = auditTable1Protocols();
    for (const auto &a : audits) {
        bool has_lock_state = false;
        for (State s : a.states)
            has_lock_state |= isLocked(s);
        EXPECT_EQ(has_lock_state, a.protocol == "bitar") << a.protocol;
        EXPECT_EQ(a.efficientBusyWait, a.protocol == "bitar")
            << a.protocol;
        EXPECT_EQ(a.writeNoFetch, a.protocol == "bitar") << a.protocol;
    }
}

TEST(FeatureAudit, RenderedTable1HasNoMismatchMarkers)
{
    auto audits = auditTable1Protocols();
    std::string table = renderTable1(audits);
    EXPECT_NE(table.find("goodman"), std::string::npos);
    EXPECT_NE(table.find("Lock, Dirty, Waiter"), std::string::npos);
    EXPECT_NE(table.find("Efficient busy wait"), std::string::npos);
    // '!' marks measured-vs-claimed disagreement.
    EXPECT_EQ(table.find("!"), std::string::npos) << table;
}

TEST(FeatureAudit, Table2MentionsEverySchemeGroup)
{
    std::vector<FeatureAudit> audits;
    for (const char *p :
         {"classic_wt", "goodman", "synapse", "illinois", "yen",
          "berkeley", "bitar", "dragon", "firefly", "rudolph_segall"}) {
        audits.push_back(auditProtocol(p));
    }
    std::string t2 = renderTable2(audits);
    for (const char *needle :
         {"Goodman", "Frank", "Papamarcos", "Yen", "Katz",
          "Our proposal", "Dragon", "Firefly", "Rudolph"}) {
        EXPECT_NE(t2.find(needle), std::string::npos) << needle;
    }
    EXPECT_EQ(t2.find("[claimed]"), std::string::npos)
        << "some innovation lacked measured evidence:\n" << t2;
}
