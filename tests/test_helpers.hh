/**
 * @file
 * Shared helpers for protocol and system tests.
 */

#ifndef CSYNC_TESTS_TEST_HELPERS_HH
#define CSYNC_TESTS_TEST_HELPERS_HH

#include "proc/mem_op.hh"
#include "system/scenario.hh"

namespace csync
{
namespace test
{

inline MemOp
rd(Addr a, bool hint = false)
{
    return MemOp{OpType::Read, a, 0, hint};
}

inline MemOp
wr(Addr a, Word v)
{
    return MemOp{OpType::Write, a, v, false};
}

inline MemOp
rmw(Addr a, Word v)
{
    return MemOp{OpType::Rmw, a, v, false};
}

inline MemOp
lockRd(Addr a)
{
    return MemOp{OpType::LockRead, a, 0, false};
}

inline MemOp
unlockWr(Addr a, Word v)
{
    return MemOp{OpType::UnlockWrite, a, v, false};
}

inline MemOp
wnf(Addr a, Word v)
{
    return MemOp{OpType::WriteNoFetch, a, v, false};
}

inline Scenario::Options
opts(const std::string &protocol, unsigned procs = 3,
     unsigned block_words = 4, unsigned frames = 16, unsigned ways = 0)
{
    Scenario::Options o;
    o.protocol = protocol;
    o.processors = procs;
    o.blockWords = block_words;
    o.frames = frames;
    o.ways = ways;
    o.collectTrace = false;
    return o;
}

} // namespace test
} // namespace csync

#endif // CSYNC_TESTS_TEST_HELPERS_HH
