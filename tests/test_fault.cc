/**
 * @file
 * Fault-injection subsystem tests: FaultPlan parsing/validation, the
 * forward-progress watchdog, recovery under every fault kind (checker
 * stays clean, runs still converge), deterministic faulty replays, the
 * busy-wait-register ablation retry path, and the campaign runner's
 * structured "livelock" rows for deliberately wedged systems.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "fault/faulty_bus.hh"
#include "fault/watchdog.hh"
#include "harness/campaign.hh"
#include "harness/campaign_io.hh"
#include "harness/sweep.hh"
#include "harness/workload_factory.hh"
#include "system/system.hh"

using namespace csync;
using namespace csync::harness;

namespace
{

FaultPlan
plan(double rate, std::vector<std::string> kinds = {},
     std::uint64_t seed = 1)
{
    FaultPlan p;
    p.rate = rate;
    p.kinds = std::move(kinds);
    p.seed = seed;
    return p;
}

SystemConfig
faultyConfig(const std::string &protocol, const FaultPlan &fp)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.numProcessors = 4;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    cfg.fault = fp;
    return cfg;
}

void
attachWorkloads(System &sys, const std::string &workload,
                std::uint64_t ops, std::uint64_t seed)
{
    const SystemConfig &cfg = sys.config();
    for (unsigned i = 0; i < cfg.numProcessors; ++i) {
        WorkloadSlot slot;
        slot.procId = i;
        slot.numProcs = cfg.numProcessors;
        slot.ops = ops;
        slot.seed = seed;
        slot.blockBytes = Addr(cfg.cache.geom.blockWords) * bytesPerWord;
        slot.protocol = cfg.protocol;
        std::string err;
        auto w = makeWorkload(workload, slot, &err);
        ASSERT_NE(w, nullptr) << err;
        sys.addProcessor(std::move(w));
    }
}

} // namespace

// --------------------------------------------------------------------
// FaultPlan parsing and validation
// --------------------------------------------------------------------

TEST(FaultPlan, KindNamesRoundTrip)
{
    for (unsigned i = 0; i < unsigned(FaultKind::NumKinds); ++i) {
        FaultKind k = FaultKind(i);
        FaultKind parsed;
        ASSERT_TRUE(faultKindFromName(faultKindName(k), &parsed));
        EXPECT_EQ(parsed, k);
    }
    EXPECT_FALSE(faultKindFromName("cosmic_ray", nullptr));
}

TEST(FaultPlan, EmptyKindListMeansEveryKind)
{
    EXPECT_EQ(plan(0.5).kindMask(),
              (1u << unsigned(FaultKind::NumKinds)) - 1);
    EXPECT_EQ(plan(0.5, {"nak"}).kindMask(),
              1u << unsigned(FaultKind::Nak));
}

TEST(FaultPlan, ChecksRejectNonsense)
{
    std::string err;
    EXPECT_FALSE(plan(-0.1).check(&err));
    EXPECT_NE(err.find("outside [0, 1]"), std::string::npos) << err;

    EXPECT_FALSE(plan(1.5).check(&err));
    EXPECT_NE(err.find("outside [0, 1]"), std::string::npos) << err;

    EXPECT_FALSE(plan(0.5, {"cosmic_ray"}).check(&err));
    EXPECT_NE(err.find("unknown fault kind 'cosmic_ray'"),
              std::string::npos) << err;
    // The message must teach the valid vocabulary.
    EXPECT_NE(err.find("nak"), std::string::npos) << err;
    EXPECT_NE(err.find("drop_grant"), std::string::npos) << err;

    FaultPlan p = plan(0.5);
    p.backoffBase = 0;
    EXPECT_FALSE(p.check(&err));
    EXPECT_NE(err.find("backoff base"), std::string::npos) << err;

    p = plan(0.5);
    p.backoffCap = 1; // below the default base of 2
    EXPECT_FALSE(p.check(&err));
    EXPECT_NE(err.find("below the base"), std::string::npos) << err;

    // A disabled plan tolerates the degenerate timing fields.
    p = plan(0.0);
    p.backoffBase = 0;
    EXPECT_TRUE(p.check(&err));
}

TEST(FaultPlan, FromJsonParsesAndRejects)
{
    std::string err;
    Json doc = Json::parse(
        R"({"rate": 0.25, "seed": 9, "kinds": ["nak", "stall"],
            "stall_ticks": 32, "watchdog_window": 5000})", &err);
    ASSERT_TRUE(err.empty()) << err;

    FaultPlan p;
    ASSERT_TRUE(FaultPlan::fromJson(doc, &p, &err)) << err;
    EXPECT_DOUBLE_EQ(p.rate, 0.25);
    EXPECT_EQ(p.seed, 9u);
    EXPECT_EQ(p.kinds, (std::vector<std::string>{"nak", "stall"}));
    EXPECT_EQ(p.stallTicks, 32u);
    EXPECT_EQ(p.watchdogWindow, 5000u);

    Json bad = Json::parse(R"({"rate": 0.1, "kinds": ["warp_core"]})",
                           &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_FALSE(FaultPlan::fromJson(bad, &p, &err));
    EXPECT_NE(err.find("unknown fault kind"), std::string::npos) << err;

    Json unknown = Json::parse(R"({"rats": 0.1})", &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_FALSE(FaultPlan::fromJson(unknown, &p, &err));
    EXPECT_NE(err.find("unknown key \"rats\""), std::string::npos) << err;
}

TEST(FaultPlan, JsonRoundTrips)
{
    FaultPlan p = plan(0.125, {"delay_supply"}, 77);
    p.backoffCap = 64;
    std::string err;
    FaultPlan q;
    ASSERT_TRUE(FaultPlan::fromJson(p.toJson(), &q, &err)) << err;
    EXPECT_EQ(q.toJson().dump(0), p.toJson().dump(0));
}

// --------------------------------------------------------------------
// ProgressWatchdog
// --------------------------------------------------------------------

TEST(Watchdog, TripsOnlyAfterAWindowWithoutProgress)
{
    ProgressWatchdog wd("watchdog", 100, nullptr);
    wd.restart(0, 0);
    EXPECT_FALSE(wd.observe(50, 0));   // inside the window
    EXPECT_FALSE(wd.observe(99, 1));   // progress resets the window
    EXPECT_FALSE(wd.observe(150, 1));  // 51 ticks since progress
    EXPECT_TRUE(wd.observe(199, 1));   // 100 ticks, window expired
    EXPECT_FALSE(wd.tripped());        // observe() reports; trip() records

    wd.trip("stuck");
    EXPECT_TRUE(wd.tripped());
    EXPECT_EQ(wd.diagnostic(), "stuck");
    wd.trip("second opinion"); // first trip wins
    EXPECT_EQ(wd.diagnostic(), "stuck");
    EXPECT_EQ(wd.trips.value(), 1.0);
}

TEST(Watchdog, ZeroWindowDisables)
{
    ProgressWatchdog wd("watchdog", 0, nullptr);
    wd.restart(0, 0);
    EXPECT_FALSE(wd.enabled());
    EXPECT_FALSE(wd.observe(1'000'000'000, 0));
}

// --------------------------------------------------------------------
// Recovery: every fault kind, checker stays clean, runs converge
// --------------------------------------------------------------------

TEST(FaultRecovery, EveryKindRecoversCleanly)
{
    struct Case
    {
        const char *kind;
        const char *workload;
        double rate;
    };
    // drop_grant at a moderate rate: at 1.0 every busy-wait re-arb is
    // refused forever and the run (correctly) livelocks.
    const Case cases[] = {
        {"nak", "random_sharing", 0.3},
        {"stall", "random_sharing", 0.3},
        {"delay_supply", "random_sharing", 0.3},
        {"nak", "critical_section", 0.3},
        {"drop_grant", "critical_section", 0.5},
    };
    for (const auto &c : cases) {
        System sys(faultyConfig("bitar", plan(c.rate, {c.kind})));
        attachWorkloads(sys, c.workload, 300, 11);
        sys.start();
        sys.run();
        EXPECT_TRUE(sys.allDone()) << c.kind << "/" << c.workload;
        EXPECT_FALSE(sys.watchdogTripped())
            << c.kind << ": " << sys.watchdogDiagnostic();
        EXPECT_EQ(sys.checker().violations(), 0u)
            << c.kind << "/" << c.workload;
        EXPECT_EQ(sys.checkStateInvariants(), 0u)
            << c.kind << "/" << c.workload;

        auto *fb = dynamic_cast<FaultyBus *>(&sys.bus());
        ASSERT_NE(fb, nullptr);
        if (std::string(c.kind) != "drop_grant") {
            // Busy-wait grants are rare enough that drop_grant may
            // legitimately find no opportunity; every other kind must
            // have fired at this rate.
            EXPECT_GT(fb->injected.value(), 0.0)
                << c.kind << "/" << c.workload;
        }
        EXPECT_LE(fb->recovered.value(), fb->injected.value()) << c.kind;
    }
}

TEST(FaultRecovery, NakRunCountsBackoffAndRecovers)
{
    System sys(faultyConfig("bitar", plan(0.4, {"nak"}, 3)));
    attachWorkloads(sys, "random_sharing", 300, 5);
    sys.start();
    sys.run();
    ASSERT_TRUE(sys.allDone());

    auto *fb = dynamic_cast<FaultyBus *>(&sys.bus());
    ASSERT_NE(fb, nullptr);
    EXPECT_GT(fb->naks.value(), 0.0);
    EXPECT_GT(fb->backoffTicks.value(), 0.0);
    EXPECT_GT(fb->recovered.value(), 0.0);
    EXPECT_LE(fb->recovered.value(), fb->injected.value());
    // Faulty runs register their stats: the flattened tree must carry
    // the new groups for campaign rows.
    EXPECT_EQ(sys.rootStats().lookup("faults.injected"),
              fb->injected.value());
    EXPECT_EQ(sys.rootStats().lookup("retry.backoffTicks"),
              fb->backoffTicks.value());
    EXPECT_EQ(sys.rootStats().lookup("watchdog.trips"), 0.0);
}

TEST(FaultRecovery, CleanRunKeepsStatsTreeUnchanged)
{
    System sys(faultyConfig("bitar", plan(0.0)));
    attachWorkloads(sys, "random_sharing", 100, 5);
    sys.start();
    sys.run();
    ASSERT_TRUE(sys.allDone());
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string dump = os.str();
    EXPECT_EQ(dump.find("faults."), std::string::npos);
    EXPECT_EQ(dump.find("watchdog."), std::string::npos);
    EXPECT_EQ(nullptr, dynamic_cast<FaultyBus *>(&sys.bus()));
}

// --------------------------------------------------------------------
// Ablation: no busy-wait register — retry on the bus (cache.cc)
// --------------------------------------------------------------------

namespace
{

double
runAblation(const FaultPlan &fp)
{
    SystemConfig cfg = faultyConfig("bitar", fp);
    cfg.cache.useBusyWaitRegister = false;
    System sys(cfg);
    attachWorkloads(sys, "critical_section", 200, 13);
    sys.start();
    sys.run();
    EXPECT_TRUE(sys.allDone());
    EXPECT_FALSE(sys.watchdogTripped()) << sys.watchdogDiagnostic();
    EXPECT_EQ(sys.checker().violations(), 0u);
    EXPECT_EQ(sys.checkStateInvariants(), 0u);
    double retries = 0;
    for (unsigned i = 0; i < sys.numCaches(); ++i)
        retries += sys.cache(i).lockRetries.value();
    return retries;
}

} // namespace

TEST(Ablation, BusRetryPathConvergesClean)
{
    EXPECT_GT(runAblation(plan(0.0)), 0.0);
}

TEST(Ablation, BusRetryPathConvergesUnderNaks)
{
    EXPECT_GT(runAblation(plan(0.3, {"nak"}, 21)), 0.0);
}

// --------------------------------------------------------------------
// Deliberate livelock: watchdog aborts, campaign reports it
// --------------------------------------------------------------------

TEST(Livelock, WatchdogAbortsInsteadOfHanging)
{
    // Rate 1.0 NAK refuses every tenure: no transaction ever executes,
    // no processor ever retires, yet backoff keeps simulated time
    // moving — exactly the shape only a watchdog can catch.
    FaultPlan fp = plan(1.0, {"nak"});
    fp.watchdogWindow = 4000;
    System sys(faultyConfig("bitar", fp));
    attachWorkloads(sys, "critical_section", 100, 1);
    sys.start();
    Tick end = sys.run();
    EXPECT_TRUE(sys.watchdogTripped());
    EXPECT_FALSE(sys.allDone());
    EXPECT_GE(end, fp.watchdogWindow);
    const std::string &d = sys.watchdogDiagnostic();
    EXPECT_NE(d.find("no processor retired"), std::string::npos) << d;
    EXPECT_NE(d.find("retired:"), std::string::npos) << d;
    EXPECT_EQ(sys.checker().violations(), 0u);
}

TEST(Livelock, CampaignRowIsStructured)
{
    SweepSpec spec;
    spec.protocols = {"bitar", "illinois"};
    spec.workloads = {"critical_section"};
    spec.processorCounts = {2};
    spec.frames = {64};
    spec.opsPerProcessor = 100;
    spec.faultRates = {1.0};
    spec.faultKinds = {"nak"};
    spec.faultBase.watchdogWindow = 4000;

    std::vector<JobSpec> jobs;
    std::string err;
    ASSERT_TRUE(spec.expand(&jobs, &err)) << err;
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_NE(jobs[0].name.find("/fr1/fs1"), std::string::npos)
        << jobs[0].name;

    CampaignRunner runner;
    CampaignRunner::Options one, four;
    one.jobs = 1;
    four.jobs = 4;
    CampaignResult a = runner.run(jobs, one);
    CampaignResult b = runner.run(jobs, four);

    ASSERT_EQ(a.rows.size(), 2u);
    for (const auto &r : a.rows) {
        EXPECT_EQ(r.status, "livelock") << r.name << ": " << r.error;
        EXPECT_NE(r.error.find("no processor retired"),
                  std::string::npos) << r.error;
        EXPECT_GT(r.firstViolationTick, 0u);
        EXPECT_EQ(r.failingStat, "system.watchdog.trips");
        EXPECT_EQ(r.stats.at("system.watchdog.trips"), 1.0);
        EXPECT_FALSE(r.ok());
    }
    // Row-for-row identical at any --jobs level, serialization included
    // (wall-clock fields differ, so compare the deterministic parts).
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        EXPECT_EQ(a.rows[i].name, b.rows[i].name);
        EXPECT_EQ(a.rows[i].status, b.rows[i].status);
        EXPECT_EQ(a.rows[i].error, b.rows[i].error);
        EXPECT_EQ(a.rows[i].ticks, b.rows[i].ticks);
        EXPECT_EQ(a.rows[i].firstViolationTick,
                  b.rows[i].firstViolationTick);
        EXPECT_EQ(a.rows[i].stats, b.rows[i].stats);
    }
}

TEST(Livelock, RowSurvivesJsonRoundTrip)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"critical_section"};
    spec.processorCounts = {2};
    spec.opsPerProcessor = 100;
    spec.faultRates = {1.0};
    spec.faultKinds = {"nak"};
    spec.faultBase.watchdogWindow = 4000;

    std::vector<JobSpec> jobs;
    std::string err;
    ASSERT_TRUE(spec.expand(&jobs, &err)) << err;
    CampaignResult run = CampaignRunner().run(jobs);
    run.name = "livelock";
    run.specJson = spec.toJson();

    CampaignResult loaded;
    ASSERT_TRUE(campaignFromJson(campaignToJson(run), &loaded, &err))
        << err;
    ASSERT_EQ(loaded.rows.size(), 1u);
    EXPECT_EQ(loaded.rows[0].status, "livelock");
    EXPECT_EQ(loaded.rows[0].firstViolationTick,
              run.rows[0].firstViolationTick);
    EXPECT_EQ(loaded.rows[0].failingStat, "system.watchdog.trips");
}

// --------------------------------------------------------------------
// Sweep integration: fault axes expand, validate, and stay fault-free
// by default
// --------------------------------------------------------------------

TEST(FaultSweep, DefaultsAreFaultFree)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"random_sharing"};
    std::vector<JobSpec> jobs;
    std::string err;
    ASSERT_TRUE(spec.expand(&jobs, &err)) << err;
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_FALSE(jobs[0].config.fault.enabled());
    EXPECT_EQ(jobs[0].name.find("/fr"), std::string::npos);
}

TEST(FaultSweep, ZeroRateCollapsesFaultSeedAxis)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"random_sharing"};
    spec.faultRates = {0.0, 0.1};
    spec.faultSeeds = {1, 2, 3};
    std::vector<JobSpec> jobs;
    std::string err;
    ASSERT_TRUE(spec.expand(&jobs, &err)) << err;
    // One fault-free row + 0.1 x three fault seeds.
    ASSERT_EQ(jobs.size(), 4u);
    EXPECT_EQ(jobs[0].name.find("/fr"), std::string::npos);
    EXPECT_NE(jobs[1].name.find("/fr0.1/fs1"), std::string::npos)
        << jobs[1].name;
    EXPECT_NE(jobs[3].name.find("/fr0.1/fs3"), std::string::npos)
        << jobs[3].name;
}

TEST(FaultSweep, RejectsBadFaultAxes)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"random_sharing"};
    spec.faultRates = {2.0};
    std::vector<JobSpec> jobs;
    std::string err;
    EXPECT_FALSE(spec.expand(&jobs, &err));
    EXPECT_NE(err.find("outside [0, 1]"), std::string::npos) << err;

    spec.faultRates = {0.1};
    spec.faultKinds = {"gremlins"};
    EXPECT_FALSE(spec.expand(&jobs, &err));
    EXPECT_NE(err.find("unknown fault kind 'gremlins'"),
              std::string::npos) << err;
    EXPECT_NE(err.find("nak"), std::string::npos) << err;
}

TEST(FaultSweep, SpecJsonCarriesFaultAxes)
{
    std::string err;
    Json doc = Json::parse(
        R"({"protocols": ["bitar"], "workloads": ["random_sharing"],
            "fault_rates": [0.05], "fault_seeds": [7],
            "fault_kinds": ["nak", "stall"],
            "fault": {"stall_ticks": 24, "watchdog_window": 9000}})",
        &err);
    ASSERT_TRUE(err.empty()) << err;
    SweepSpec spec;
    ASSERT_TRUE(SweepSpec::fromJson(doc, &spec, &err)) << err;
    EXPECT_EQ(spec.faultRates, (std::vector<double>{0.05}));
    EXPECT_EQ(spec.faultKinds,
              (std::vector<std::string>{"nak", "stall"}));
    EXPECT_EQ(spec.faultBase.stallTicks, 24u);

    std::vector<JobSpec> jobs;
    ASSERT_TRUE(spec.expand(&jobs, &err)) << err;
    ASSERT_EQ(jobs.size(), 1u);
    const FaultPlan &fp = jobs[0].config.fault;
    EXPECT_DOUBLE_EQ(fp.rate, 0.05);
    EXPECT_EQ(fp.seed, 7u);
    EXPECT_EQ(fp.stallTicks, 24u);
    EXPECT_EQ(fp.watchdogWindow, 9000u);
    EXPECT_EQ(fp.kinds, (std::vector<std::string>{"nak", "stall"}));

    // The manifest echo keeps the fault axes.
    Json echo = spec.toJson();
    EXPECT_TRUE(echo.has("fault_rates"));
    EXPECT_TRUE(echo.has("fault"));
}
