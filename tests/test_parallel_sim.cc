/**
 * @file
 * The sharded parallel engine, bottom up: runBounded() (the window
 * primitive), the SPSC cross-shard mailboxes (FIFO through overflow and
 * under a racing producer — the TSan target), the ParallelScheduler's
 * barrier/abort/watchdog-hook machinery on synthetic shards, the static
 * domain-partition analysis with every serial-fallback reason, and
 * whole-System parallel runs whose statistics must equal the serial
 * engine's exactly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/workload_factory.hh"
#include "sim/parallel.hh"
#include "system/domain.hh"
#include "system/system.hh"

using namespace csync;
using namespace csync::harness;

// --------------------------------------------------------------------
// EventQueue::runBounded — the window primitive
// --------------------------------------------------------------------

TEST(RunBounded, StopsAtHorizonInclusive)
{
    EventQueue eq;
    std::vector<Tick> ran;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, [&ran, &eq] { ran.push_back(eq.now()); });
    EXPECT_EQ(eq.runBounded(5, 1000), 5u);
    EXPECT_EQ(ran.size(), 5u);
    EXPECT_EQ(eq.now(), 5u); // never past the last executed event
    EXPECT_EQ(eq.nextEventTick(), 6u);
    EXPECT_EQ(eq.runBounded(10, 1000), 5u);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_TRUE(eq.empty());
}

TEST(RunBounded, StopsAtEventBudget)
{
    EventQueue eq;
    int ran = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, [&ran] { ++ran; });
    EXPECT_EQ(eq.runBounded(maxTick, 3), 3u);
    EXPECT_EQ(ran, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(RunBounded, EmptyWindowExecutesNothing)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    EXPECT_EQ(eq.runBounded(50, 1000), 0u);
    EXPECT_EQ(eq.now(), 0u); // horizon alone must not advance time
    EXPECT_EQ(eq.nextEventTick(), 100u);
}

// --------------------------------------------------------------------
// conservativeLookahead
// --------------------------------------------------------------------

TEST(Lookahead, FollowsTheFastestCrossDomainPath)
{
    BusTiming t; // defaults: signal 1, arb 1, addr 1
    EXPECT_EQ(conservativeLookahead(t), 1u);
    t.signalCycles = 5;
    t.arbCycles = 2;
    t.addrCycles = 2;
    EXPECT_EQ(conservativeLookahead(t), 4u); // arb + addr wins
    t.arbCycles = 4;
    EXPECT_EQ(conservativeLookahead(t), 5u); // signal wins
}

TEST(Lookahead, NeverBelowOneTick)
{
    BusTiming t;
    t.signalCycles = 0;
    EXPECT_EQ(conservativeLookahead(t), 1u);
}

// --------------------------------------------------------------------
// SpscMailbox
// --------------------------------------------------------------------

namespace
{

CrossEvent
seqEvent(std::uint64_t seq)
{
    CrossEvent ev;
    ev.when = seq;
    ev.srcSeq = seq;
    return ev;
}

} // namespace

TEST(SpscMailbox, PreservesFifoOrder)
{
    SpscMailbox mb(16);
    for (std::uint64_t i = 0; i < 10; ++i)
        mb.push(seqEvent(i));
    EXPECT_FALSE(mb.empty());
    std::vector<CrossEvent> out;
    mb.drainTo(&out);
    ASSERT_EQ(out.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(out[i].srcSeq, i);
    EXPECT_TRUE(mb.empty());
}

TEST(SpscMailbox, OverflowSpillKeepsOrderAndReArms)
{
    SpscMailbox mb(4);
    // Overflow the 4-slot ring by a lot; order must survive the spill.
    for (std::uint64_t i = 0; i < 50; ++i)
        mb.push(seqEvent(i));
    std::vector<CrossEvent> out;
    mb.drainTo(&out);
    ASSERT_EQ(out.size(), 50u);
    for (std::uint64_t i = 0; i < 50; ++i)
        EXPECT_EQ(out[i].srcSeq, i);

    // After a full drain the ring re-arms: a second burst must again
    // come out in push order (this is the re-arm race regression — a
    // ring push must never overtake a leftover spill entry).
    for (std::uint64_t i = 100; i < 110; ++i)
        mb.push(seqEvent(i));
    out.clear();
    mb.drainTo(&out);
    ASSERT_EQ(out.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(out[i].srcSeq, 100 + i);
}

TEST(SpscMailbox, ConcurrentProducerConsumerKeepsOrder)
{
    // The TSan target: one producer races one consumer through ring
    // wraps and spills; every drained batch must be in sequence order
    // with nothing lost.
    SpscMailbox mb(64);
    constexpr std::uint64_t kTotal = 50000;
    std::thread producer([&mb] {
        for (std::uint64_t i = 0; i < kTotal; ++i)
            mb.push(seqEvent(i));
    });
    std::vector<CrossEvent> got;
    got.reserve(kTotal);
    while (got.size() < kTotal)
        mb.drainTo(&got);
    producer.join();
    ASSERT_EQ(got.size(), kTotal);
    for (std::uint64_t i = 0; i < kTotal; ++i)
        ASSERT_EQ(got[i].srcSeq, i) << "reordered at " << i;
    EXPECT_TRUE(mb.empty());
}

// --------------------------------------------------------------------
// ParallelScheduler on synthetic shards
// --------------------------------------------------------------------

namespace
{

/** A self-rescheduling synthetic workload: one event per tick until
 *  @p target events have run on shard @p eq. */
struct SpinShard
{
    EventQueue eq;
    long count = 0;
    long target = 0;

    void
    arm()
    {
        eq.schedule(eq.now() + 1, [this] { step(); });
    }

    void
    step()
    {
        if (++count < target)
            arm();
    }
};

ParallelScheduler::Shard
shardFor(SpinShard *s)
{
    ParallelScheduler::Shard sh;
    sh.eq = &s->eq;
    sh.done = [s] { return s->count >= s->target; };
    sh.retired = [s] { return double(s->count); };
    return sh;
}

} // namespace

TEST(ParallelScheduler, RunsAllShardsToCompletion)
{
    for (unsigned threads : {1u, 2u, 4u}) {
        SpinShard a, b;
        a.target = 5000;
        b.target = 3000;
        a.arm();
        b.arm();
        ParallelScheduler::Options o;
        o.threads = threads;
        o.window = 256;
        ParallelScheduler sched({shardFor(&a), shardFor(&b)}, o);
        ParallelScheduler::Result r = sched.run();
        EXPECT_TRUE(r.completed) << threads;
        EXPECT_FALSE(r.drained);
        EXPECT_EQ(a.count, 5000) << threads;
        EXPECT_EQ(b.count, 3000) << threads;
        EXPECT_EQ(r.retired, 8000.0) << threads;
        // Shard a's last event ran at tick 5000.
        EXPECT_EQ(r.finalTick, 5000u) << threads;
    }
}

TEST(ParallelScheduler, CrossShardMailDeliversInDeterministicOrder)
{
    // Two source shards post into shard 2 at the same tick; delivery
    // order must be (when, pri, srcDomain, srcSeq) regardless of post
    // order.  Posts happen in the barrier hook (the coordinator's
    // context, where posting is always legal), timestamped inside the
    // next window so they execute before the run completes.
    SpinShard t0, t1, t2;
    t0.target = 2000;
    t1.target = 2000;
    t2.target = 1; // finishes via the delivered events instead
    t0.arm();
    t1.arm();
    std::vector<int> order;
    bool posted = false;
    ParallelScheduler *live = nullptr;
    ParallelScheduler::Options o;
    o.threads = 4;
    o.window = 128;
    o.lookahead = 1;
    o.onWindow = [&live, &posted, &order](Tick windowEnd, double) {
        if (posted || !live)
            return false;
        posted = true;
        Tick when = windowEnd + 64;
        // Deliberately scrambled post order across pairs and ticks.
        live->post(1, 2, when, EventPri::Default,
                   [&order] { order.push_back(10); });
        live->post(1, 2, when, EventPri::Default,
                   [&order] { order.push_back(11); });
        live->post(0, 2, when + 1, EventPri::Default,
                   [&order] { order.push_back(99); });
        live->post(0, 2, when, EventPri::Default,
                   [&order] { order.push_back(0); });
        live->post(0, 2, when, EventPri::Arbitrate,
                   [&order] { order.push_back(1); });
        return false;
    };
    std::vector<ParallelScheduler::Shard> shards = {
        shardFor(&t0), shardFor(&t1), shardFor(&t2)};
    shards[2].done = [&order] { return order.size() >= 5; };
    shards[2].retired = [&order] { return double(order.size()); };
    ParallelScheduler sched(std::move(shards), o);
    live = &sched;
    ParallelScheduler::Result r = sched.run();
    EXPECT_TRUE(r.completed);
    // Sort key is (when, pri, srcDomain, srcSeq): at the same tick
    // every Default-priority event (across all sources, ordered by
    // source then sequence) precedes the Arbitrate one, and the when+1
    // event runs last regardless of post order.
    ASSERT_EQ(order.size(), 5u);
    EXPECT_EQ(order[0], 0);  // when, Default, src 0
    EXPECT_EQ(order[1], 10); // when, Default, src 1, seq 0
    EXPECT_EQ(order[2], 11); // when, Default, src 1, seq 1
    EXPECT_EQ(order[3], 1);  // when, Arbitrate, src 0
    EXPECT_EQ(order[4], 99); // when + 1
}

TEST(ParallelScheduler, AbortFlagStopsTheRun)
{
    SpinShard a, b;
    a.target = 1000000;
    b.target = 1000000;
    a.arm();
    b.arm();
    std::atomic<bool> abort{false};
    ParallelScheduler::Options o;
    o.threads = 2;
    o.window = 64;
    o.abort = &abort;
    int windows = 0;
    o.onWindow = [&abort, &windows](Tick, double) {
        if (++windows == 3)
            abort.store(true);
        return false;
    };
    ParallelScheduler sched({shardFor(&a), shardFor(&b)}, o);
    ParallelScheduler::Result r = sched.run();
    EXPECT_TRUE(r.aborted);
    EXPECT_FALSE(r.completed);
    EXPECT_LT(a.count, 1000000);
}

TEST(ParallelScheduler, HookSeesAggregateRetirementAcrossShards)
{
    // The PR 7 regression shape: shard a finishes almost immediately,
    // shard b keeps retiring for a long time.  The barrier hook (the
    // watchdog seam) must see the TOTAL keep growing — a watchdog that
    // watched only shard a would observe frozen progress and trip.
    SpinShard a, b;
    a.target = 10;
    b.target = 50000;
    a.arm();
    b.arm();
    ParallelScheduler::Options o;
    o.threads = 2;
    o.window = 512;
    double lastRetired = -1;
    bool sawStall = false;
    bool sawGrowthAfterShardADone = false;
    o.onWindow = [&](Tick, double retired) {
        if (retired <= lastRetired)
            sawStall = true;
        if (a.count >= a.target && retired > lastRetired &&
            lastRetired >= 0)
            sawGrowthAfterShardADone = true;
        lastRetired = retired;
        return false;
    };
    ParallelScheduler sched({shardFor(&a), shardFor(&b)}, o);
    ParallelScheduler::Result r = sched.run();
    EXPECT_TRUE(r.completed);
    EXPECT_FALSE(sawStall);
    EXPECT_TRUE(sawGrowthAfterShardADone);
    EXPECT_EQ(r.retired, 50010.0);
}

TEST(ParallelScheduler, HookCanStopTheRun)
{
    SpinShard a, b;
    a.target = 1000000;
    b.target = 1000000;
    a.arm();
    b.arm();
    ParallelScheduler::Options o;
    o.threads = 2;
    o.window = 64;
    int windows = 0;
    o.onWindow = [&windows](Tick, double) { return ++windows >= 4; };
    ParallelScheduler sched({shardFor(&a), shardFor(&b)}, o);
    ParallelScheduler::Result r = sched.run();
    EXPECT_TRUE(r.stoppedByHook);
    EXPECT_FALSE(r.completed);
}

TEST(ParallelScheduler, DrainedQueuesWithUnfinishedShardsIsDeadlock)
{
    // Shard b's queue is empty but its done() never becomes true: the
    // sharded engine's deadlock signal.
    SpinShard a, b;
    a.target = 100;
    b.target = 100; // never armed — no events, never done
    a.arm();
    ParallelScheduler::Options o;
    o.threads = 2;
    o.window = 64;
    ParallelScheduler sched({shardFor(&a), shardFor(&b)}, o);
    ParallelScheduler::Result r = sched.run();
    EXPECT_TRUE(r.drained);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(a.count, 100);
    EXPECT_EQ(b.count, 0);
}

TEST(ParallelScheduler, MaxTicksBoundsTheHorizon)
{
    SpinShard a, b;
    a.target = 1000000;
    b.target = 1000000;
    a.arm();
    b.arm();
    ParallelScheduler::Options o;
    o.threads = 2;
    o.window = 128;
    o.maxTicks = 1000;
    ParallelScheduler sched({shardFor(&a), shardFor(&b)}, o);
    ParallelScheduler::Result r = sched.run();
    EXPECT_TRUE(r.hitMaxTicks);
    EXPECT_FALSE(r.completed);
    EXPECT_LT(r.finalTick, 1000u);
    EXPECT_GE(a.count, 900); // ran right up to the horizon
    EXPECT_LT(a.count, 1000);
}

TEST(ParallelScheduler, ShardFatalErrorRethrowsOnTheCaller)
{
    SpinShard a;
    a.target = 1000;
    a.arm();
    SpinShard bomb;
    bomb.target = 1000000;
    bomb.eq.schedule(10, [] { fatal("shard exploded"); });
    ParallelScheduler::Options o;
    o.threads = 2;
    o.window = 64;
    ParallelScheduler sched({shardFor(&a), shardFor(&bomb)}, o);
    EXPECT_THROW(sched.run(), FatalError);
}

// --------------------------------------------------------------------
// Domain partition analysis + System-level fallback reasons
// --------------------------------------------------------------------

namespace
{

/** A do-nothing workload with a fixed, declared footprint. */
class FootprintWorkload : public Workload
{
  public:
    explicit FootprintWorkload(std::vector<AddrRange> ranges,
                               bool declare = true)
        : ranges_(std::move(ranges)), declare_(declare)
    {
    }

    NextStatus
    next(MemOp &op, Tick &think) override
    {
        if (issued_ >= 4)
            return NextStatus::Finished;
        ++issued_;
        op = MemOp{OpType::Read, ranges_.front().lo, 0, false};
        think = 1;
        return NextStatus::Op;
    }

    void onResult(const MemOp &, const AccessResult &) override {}

    bool
    footprint(std::vector<AddrRange> *out) const override
    {
        if (!declare_)
            return false;
        *out = ranges_;
        return true;
    }

    std::string describe() const override { return "footprint-test"; }
    bool done() const override { return issued_ >= 4; }

  private:
    std::vector<AddrRange> ranges_;
    bool declare_;
    unsigned issued_ = 0;
};

/** A workload that stalls forever (and never wakes). */
class StuckWorkload : public Workload
{
  public:
    explicit StuckWorkload(Addr home) : home_(home) {}

    NextStatus
    next(MemOp &, Tick &) override
    {
        return NextStatus::Stalled;
    }

    void onResult(const MemOp &, const AccessResult &) override {}

    bool
    footprint(std::vector<AddrRange> *out) const override
    {
        out->push_back({home_, home_ + 64});
        return true;
    }

    std::string describe() const override { return "stuck"; }
    bool done() const override { return false; }

  private:
    Addr home_;
};

SystemConfig
twoSwitchConfig(unsigned procs, unsigned threads)
{
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    cfg.topology = TopologyConfig::twoSwitch();
    cfg.simThreads = threads;
    return cfg;
}

/** Address wholly inside switch 0 / switch 1 of the two_switch preset
 *  (the split is at 16 MiB). */
constexpr Addr kSwitch0Addr = 0x200000;
constexpr Addr kSwitch1Addr = 0x10000000;

void
addFactoryWorkloads(System &sys, const SystemConfig &cfg,
                    const std::string &recipe, std::uint64_t ops,
                    std::uint64_t seed)
{
    for (unsigned i = 0; i < cfg.numProcessors; ++i) {
        WorkloadSlot slot;
        slot.procId = i;
        slot.numProcs = cfg.numProcessors;
        slot.ops = ops;
        slot.seed = seed;
        slot.blockBytes =
            Addr(cfg.cache.geom.blockWords) * bytesPerWord;
        slot.protocol = cfg.protocol;
        std::string err;
        auto w = makeWorkload(recipe, slot, &err);
        ASSERT_NE(w, nullptr) << err;
        sys.addProcessor(std::move(w));
    }
}

} // namespace

TEST(DomainPartition, SimThreadsOneStaysSerial)
{
    SystemConfig cfg = twoSwitchConfig(2, 1);
    System sys(cfg);
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch0Addr, kSwitch0Addr + 64}}));
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch1Addr, kSwitch1Addr + 64}}));
    sys.start();
    EXPECT_FALSE(sys.parallelActive());
    EXPECT_NE(sys.serialReason().find("sim-threads is 1"),
              std::string::npos)
        << sys.serialReason();
}

TEST(DomainPartition, SingleSwitchTopologyStaysSerial)
{
    SystemConfig cfg = twoSwitchConfig(2, 4);
    cfg.topology = TopologyConfig::singleBus();
    System sys(cfg);
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{0x1000, 0x1040}}));
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{0x2000, 0x2040}}));
    sys.start();
    EXPECT_FALSE(sys.parallelActive());
    EXPECT_NE(sys.serialReason().find("single-switch"), std::string::npos)
        << sys.serialReason();
}

TEST(DomainPartition, IODeviceCouplesTheDomains)
{
    SystemConfig cfg = twoSwitchConfig(2, 4);
    cfg.withIODevice = true;
    System sys(cfg);
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch0Addr, kSwitch0Addr + 64}}));
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch1Addr, kSwitch1Addr + 64}}));
    sys.start();
    EXPECT_FALSE(sys.parallelActive());
    EXPECT_NE(sys.serialReason().find("I/O"), std::string::npos)
        << sys.serialReason();
}

TEST(DomainPartition, FaultInjectionStaysSerial)
{
    SystemConfig cfg = twoSwitchConfig(2, 4);
    cfg.fault.rate = 0.5;
    System sys(cfg);
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch0Addr, kSwitch0Addr + 64}}));
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch1Addr, kSwitch1Addr + 64}}));
    sys.start();
    EXPECT_FALSE(sys.parallelActive());
    EXPECT_NE(sys.serialReason().find("fault injection"),
              std::string::npos)
        << sys.serialReason();
}

TEST(DomainPartition, UndeclaredFootprintStaysSerial)
{
    SystemConfig cfg = twoSwitchConfig(2, 4);
    System sys(cfg);
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch0Addr, kSwitch0Addr + 64}},
        /*declare=*/false));
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch1Addr, kSwitch1Addr + 64}}));
    sys.start();
    EXPECT_FALSE(sys.parallelActive());
    EXPECT_NE(sys.serialReason().find("declares no footprint"),
              std::string::npos)
        << sys.serialReason();
}

TEST(DomainPartition, StraddlingFootprintStaysSerial)
{
    SystemConfig cfg = twoSwitchConfig(2, 4);
    System sys(cfg);
    // A range crossing the 16 MiB switch boundary fits neither switch.
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{0x00ff0000, 0x01010000}}));
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch1Addr, kSwitch1Addr + 64}}));
    sys.start();
    EXPECT_FALSE(sys.parallelActive());
    EXPECT_NE(sys.serialReason().find("straddles"), std::string::npos)
        << sys.serialReason();
}

TEST(DomainPartition, SpanningFootprintStaysSerial)
{
    SystemConfig cfg = twoSwitchConfig(2, 4);
    System sys(cfg);
    // Two ranges each clean, but in different switches: one processor
    // touching both domains couples them.
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch0Addr, kSwitch0Addr + 64},
                               {kSwitch1Addr, kSwitch1Addr + 64}}));
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch1Addr, kSwitch1Addr + 64}}));
    sys.start();
    EXPECT_FALSE(sys.parallelActive());
    EXPECT_NE(sys.serialReason().find("spans switches"),
              std::string::npos)
        << sys.serialReason();
}

TEST(DomainPartition, OneDomainFootprintsStaySerial)
{
    SystemConfig cfg = twoSwitchConfig(2, 4);
    System sys(cfg);
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch0Addr, kSwitch0Addr + 64}}));
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch0Addr + 0x1000,
                                kSwitch0Addr + 0x1040}}));
    sys.start();
    EXPECT_FALSE(sys.parallelActive());
    EXPECT_NE(sys.serialReason().find("one domain"), std::string::npos)
        << sys.serialReason();
}

TEST(DomainPartition, DisjointTwoDomainFootprintsGoParallel)
{
    SystemConfig cfg = twoSwitchConfig(4, 2);
    System sys(cfg);
    for (unsigned i = 0; i < 4; ++i) {
        Addr base = (i % 2 ? kSwitch1Addr : kSwitch0Addr) + i * 0x1000;
        sys.addProcessor(std::make_unique<FootprintWorkload>(
            std::vector<AddrRange>{{base, base + 64}}));
    }
    sys.start();
    EXPECT_TRUE(sys.parallelActive()) << sys.serialReason();
    ASSERT_EQ(sys.partition().procHome.size(), 4u);
    EXPECT_EQ(sys.partition().procHome[0], 0u);
    EXPECT_EQ(sys.partition().procHome[1], 1u);
    EXPECT_EQ(sys.partition().procHome[2], 0u);
    EXPECT_EQ(sys.partition().procHome[3], 1u);
    EXPECT_EQ(sys.partition().domains, 2u);
    sys.run();
    EXPECT_TRUE(sys.allDone());
    EXPECT_EQ(sys.checker().violations(), 0u);
}

TEST(DomainPartition, DomainLocalRecipeGoesParallel)
{
    SystemConfig cfg = twoSwitchConfig(8, 4);
    System sys(cfg);
    addFactoryWorkloads(sys, cfg, "domain_local", 200, 42);
    sys.start();
    EXPECT_TRUE(sys.parallelActive()) << sys.serialReason();
    sys.run();
    EXPECT_TRUE(sys.allDone());
    EXPECT_EQ(sys.checker().violations(), 0u);
    EXPECT_EQ(sys.checkStateInvariants(), 0u);
}

TEST(DomainPartition, CoupledRecipeFallsBackOnTwoSwitch)
{
    // random_sharing declares a footprint, but its shared region is one
    // block of addresses every processor touches — all homes collapse
    // to a single domain, so the partition refuses.
    SystemConfig cfg = twoSwitchConfig(4, 4);
    System sys(cfg);
    addFactoryWorkloads(sys, cfg, "random_sharing", 100, 7);
    sys.start();
    EXPECT_FALSE(sys.parallelActive());
    sys.run();
    EXPECT_TRUE(sys.allDone());
}

// --------------------------------------------------------------------
// Whole-System parallel runs: stats equality and watchdog coverage
// --------------------------------------------------------------------

namespace
{

struct Dump
{
    std::string text;
    std::string json;
    Tick ticks;
};

Dump
runDomainLocal(unsigned procs, unsigned threads, std::uint64_t ops,
               std::uint64_t seed, bool *wasParallel = nullptr)
{
    SystemConfig cfg = twoSwitchConfig(procs, threads);
    System sys(cfg);
    addFactoryWorkloads(sys, cfg, "domain_local", ops, seed);
    sys.start();
    if (wasParallel)
        *wasParallel = sys.parallelActive();
    Dump d;
    d.ticks = sys.run();
    EXPECT_TRUE(sys.allDone());
    std::ostringstream text, json;
    sys.dumpStats(text);
    sys.dumpStatsJson(json);
    d.text = text.str();
    d.json = json.str();
    return d;
}

} // namespace

TEST(ParallelSystem, StatsMatchSerialExactly)
{
    bool parallel = false;
    Dump serial = runDomainLocal(8, 1, 400, 42);
    Dump sharded = runDomainLocal(8, 4, 400, 42, &parallel);
    EXPECT_TRUE(parallel);
    EXPECT_EQ(serial.ticks, sharded.ticks);
    EXPECT_EQ(serial.text, sharded.text);
    EXPECT_EQ(serial.json, sharded.json);
    EXPECT_FALSE(serial.text.empty());
}

TEST(ParallelSystem, EarlyFinishingShardDoesNotFalseTripWatchdog)
{
    // Shard 0's processors retire a handful of ops and stop; shard 1
    // keeps running far longer with a watchdog window much smaller than
    // the imbalance.  A watchdog that only observed shard 0 would see
    // frozen progress and trip — the aggregate must not.
    SystemConfig cfg = twoSwitchConfig(4, 2);
    cfg.fault.watchdogWindow = 2000;
    System sys(cfg);
    // Short side: two 4-op workloads on switch 0.
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch0Addr, kSwitch0Addr + 64}}));
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch0Addr + 0x20000,
                                kSwitch0Addr + 0x20040}}));
    // Long side: two odd-numbered domain_local workloads (the recipe
    // homes odd procIds on switch 1) retiring for thousands of ticks.
    WorkloadSlot slot;
    slot.numProcs = 4;
    slot.ops = 4000;
    slot.seed = 5;
    slot.blockBytes = Addr(cfg.cache.geom.blockWords) * bytesPerWord;
    slot.protocol = cfg.protocol;
    for (unsigned id : {1u, 3u}) {
        slot.procId = id;
        std::string err;
        auto w = makeWorkload("domain_local", slot, &err);
        ASSERT_NE(w, nullptr) << err;
        sys.addProcessor(std::move(w));
    }
    sys.start();
    ASSERT_TRUE(sys.parallelActive()) << sys.serialReason();
    sys.run();
    EXPECT_TRUE(sys.allDone());
    EXPECT_FALSE(sys.watchdogTripped()) << sys.watchdogDiagnostic();
}

TEST(ParallelSystem, StuckShardTripsTheWatchdogNotAHang)
{
    // One shard's workload stalls forever while the other finishes: the
    // queues drain with workloads unfinished, and the watchdog must
    // report the deadlock exactly as the serial engine would — across
    // ALL shards, not just shard 0.
    SystemConfig cfg = twoSwitchConfig(2, 2);
    System sys(cfg);
    sys.addProcessor(std::make_unique<StuckWorkload>(kSwitch0Addr));
    sys.addProcessor(std::make_unique<FootprintWorkload>(
        std::vector<AddrRange>{{kSwitch1Addr, kSwitch1Addr + 64}}));
    sys.start();
    ASSERT_TRUE(sys.parallelActive()) << sys.serialReason();
    sys.run(1'000'000);
    EXPECT_FALSE(sys.allDone());
    EXPECT_TRUE(sys.watchdogTripped());
    EXPECT_NE(sys.watchdogDiagnostic().find("drained"), std::string::npos)
        << sys.watchdogDiagnostic();
}

TEST(ParallelSystem, RepeatedParallelRunsAreByteIdentical)
{
    Dump a = runDomainLocal(8, 4, 300, 9);
    Dump b = runDomainLocal(8, 4, 300, 9);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.json, b.json);
    EXPECT_EQ(a.ticks, b.ticks);
}
