/**
 * @file
 * System-level tests: construction, run loop, invariant scanner
 * (positive and negative), statistics dump, and config validation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include <algorithm>

#include "proc/workloads/random_sharing.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

SystemConfig
cfg(const std::string &proto = "bitar", unsigned procs = 2)
{
    SystemConfig c;
    c.protocol = proto;
    c.numProcessors = procs;
    c.cache.geom.frames = 16;
    c.cache.geom.blockWords = 4;
    return c;
}

} // namespace

TEST(System, ConstructsEveryRegisteredProtocol)
{
    for (const auto &name : ProtocolRegistry::names()) {
        System sys(cfg(name));
        EXPECT_EQ(sys.numCaches(), 2u) << name;
    }
}

TEST(System, RegistryKnowsAllTenProtocols)
{
    auto names = ProtocolRegistry::names();
    for (const char *want :
         {"bitar", "goodman", "synapse", "illinois", "yen", "berkeley",
          "dragon", "firefly", "rudolph_segall", "classic_wt"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), want),
                  names.end())
            << want;
    }
    EXPECT_EQ(ProtocolRegistry::table1Order().size(), 6u);
}

TEST(System, DirectoryKindComesFromProtocol)
{
    System bitar(cfg("bitar"));
    EXPECT_EQ(bitar.cache(0).directory().kind(),
              DirectoryKind::NonIdenticalDual);
    System berkeley(cfg("berkeley"));
    EXPECT_EQ(berkeley.cache(0).directory().kind(),
              DirectoryKind::DualPortedRead);
}

TEST(System, RunDrivesProcessorsToCompletion)
{
    System sys(cfg("illinois", 4));
    for (unsigned i = 0; i < 4; ++i) {
        RandomSharingParams p;
        p.ops = 300;
        p.procId = i;
        p.seed = 7;
        sys.addProcessor(std::make_unique<RandomSharingWorkload>(p));
    }
    sys.start();
    Tick end = sys.run();
    EXPECT_TRUE(sys.allDone());
    EXPECT_GT(end, 0u);
    EXPECT_EQ(sys.checker().violations(), 0u);
    EXPECT_EQ(sys.checkStateInvariants(), 0u);
}

TEST(System, InvariantScannerCatchesTwoWriters)
{
    System sys(cfg("bitar", 2));
    sys.cache(0).installFrameForTest(0x1000, WrSrcDty);
    sys.cache(1).installFrameForTest(0x1000, WrDty);
    std::string why;
    EXPECT_GT(sys.checkStateInvariants(&why), 0u);
    EXPECT_NE(why.find("writable"), std::string::npos);
}

TEST(System, InvariantScannerCatchesTwoSources)
{
    System sys(cfg("bitar", 2));
    sys.cache(0).installFrameForTest(0x1000, RdSrcCln);
    sys.cache(1).installFrameForTest(0x1000, RdSrcCln);
    std::string why;
    EXPECT_GT(sys.checkStateInvariants(&why), 0u);
    EXPECT_NE(why.find("sources"), std::string::npos);
}

TEST(System, InvariantScannerCatchesDivergentCopies)
{
    System sys(cfg("bitar", 2));
    std::vector<Word> a{1, 1, 1, 1}, b{2, 2, 2, 2};
    sys.cache(0).installFrameForTest(0x1000, Rd, &a);
    sys.cache(1).installFrameForTest(0x1000, RdSrcDty, &b);
    EXPECT_GT(sys.checkStateInvariants(), 0u);
}

TEST(System, InvariantScannerAcceptsConsistentState)
{
    System sys(cfg("bitar", 2));
    std::vector<Word> a{0, 0, 0, 0};
    sys.cache(0).installFrameForTest(0x1000, Rd, &a);
    sys.cache(1).installFrameForTest(0x1000, RdSrcCln, &a);
    EXPECT_EQ(sys.checkStateInvariants(), 0u);
}

TEST(System, StatsDumpIsComprehensive)
{
    System sys(cfg());
    std::ostringstream os;
    sys.dumpStats(os);
    std::string out = os.str();
    EXPECT_NE(out.find("system.bus.transactions"), std::string::npos);
    EXPECT_NE(out.find("system.memory.blockReads"), std::string::npos);
    EXPECT_NE(out.find("system.cache0.accesses"), std::string::npos);
    EXPECT_NE(out.find("system.checker.violations"), std::string::npos);
}

TEST(System, RunStopsAtTickBound)
{
    System sys(cfg("bitar", 1));
    // A workload that never finishes: spin on an always-zero flag.
    RandomSharingParams p;
    p.ops = 1000000000ull;
    sys.addProcessor(std::make_unique<RandomSharingWorkload>(p));
    sys.start();
    Tick end = sys.run(5000);
    EXPECT_FALSE(sys.allDone());
    EXPECT_GE(end, 5000u);
    EXPECT_LT(end, 100000u);
}

TEST(SystemDeath, BadConfigIsFatal)
{
    SystemConfig c = cfg();
    c.cache.geom.blockWords = 3;    // not a power of two
    EXPECT_DEATH({ System sys(c); }, "power of two");
}

TEST(System, DerivedCacheFormulas)
{
    System sys(cfg("illinois", 1));
    AccessResult r;
    auto op = [&](const MemOp &m) {
        bool done = false;
        sys.cache(0).access(m, [&](const AccessResult &res) {
            r = res;
            done = true;
        });
        sys.eventq().run();
        EXPECT_TRUE(done);
    };
    op(MemOp{OpType::Read, 0x1000, 0, false});     // miss
    op(MemOp{OpType::Read, 0x1000, 0, false});     // hit
    op(MemOp{OpType::Read, 0x1008, 0, false});     // hit
    EXPECT_NEAR(sys.rootStats().lookup("cache0.hitRatio"), 2.0 / 3.0,
                1e-9);
    EXPECT_NEAR(sys.rootStats().lookup("cache0.busPerAccess"), 1.0 / 3.0,
                1e-9);
}

TEST(System, RoundRobinArbitrationIsFair)
{
    // Saturate the bus with every processor writing distinct shared
    // words: round-robin must hand grants out evenly (no starvation).
    System sys(cfg("illinois", 4));
    for (unsigned i = 0; i < 4; ++i) {
        RandomSharingParams p;
        p.ops = 800;
        p.procId = i;
        p.seed = 42 + i;
        p.sharedFraction = 1.0;
        p.writeFraction = 1.0;
        p.thinkMax = 0;          // hammer the bus continuously
        p.sharedBlocks = 8;
        sys.addProcessor(std::make_unique<RandomSharingWorkload>(p));
    }
    sys.start();
    sys.run(10'000'000);
    ASSERT_TRUE(sys.allDone());
    double min_tx = 1e18, max_tx = 0;
    for (unsigned i = 0; i < 4; ++i) {
        double tx = sys.cache(i).busTransactions.value();
        min_tx = std::min(min_tx, tx);
        max_tx = std::max(max_tx, tx);
    }
    // Equal work, fair bus: per-cache transaction counts within 25%.
    EXPECT_GT(min_tx, 0.75 * max_tx);
    EXPECT_EQ(sys.checker().violations(), 0u);
}
