/**
 * @file
 * Tests for protocol-independent cache mechanics: hit/miss accounting,
 * eviction with piggybacked write-back, LRU across sets, the directory
 * interference model (Feature 3), and latency behavior.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{
constexpr Addr X = 0x1000;
} // namespace

TEST(CacheMechanics, HitAndMissCounters)
{
    Scenario s(opts("illinois"));
    s.run(0, rd(X));
    s.run(0, rd(X));
    s.run(0, rd(X + 8));    // same block: hit
    EXPECT_DOUBLE_EQ(s.cache(0).missesBus.value(), 1.0);
    EXPECT_DOUBLE_EQ(s.cache(0).hitsLocal.value(), 2.0);
}

TEST(CacheMechanics, EvictionPiggybacksWriteback)
{
    Scenario s(opts("illinois", 2, 4, 2));    // 2 frames
    s.run(0, wr(X, 1));                       // dirty
    s.run(0, wr(0x2000, 2));                  // dirty
    double bus_tx = s.system().bus().transactions.value();
    s.run(0, rd(0x3000));                     // evicts X (LRU, dirty)
    // One transaction carried both the fetch and the victim flush.
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), bus_tx + 1);
    EXPECT_DOUBLE_EQ(s.cache(0).writebacks.value(), 1.0);
    EXPECT_EQ(s.system().memory().readWord(X), 1u);
}

TEST(CacheMechanics, VictimDataSurvivesThroughMemory)
{
    Scenario s(opts("illinois", 2, 4, 2));
    s.run(0, wr(X, 77));
    s.run(0, rd(0x2000));
    s.run(0, rd(0x3000));    // X evicted
    ASSERT_EQ(s.state(0, X), Inv);
    auto r = s.run(1, rd(X));
    EXPECT_EQ(r.value, 77u);
}

TEST(CacheMechanics, CleanEvictionCarriesNoWriteback)
{
    Scenario s(opts("illinois", 2, 4, 2));
    s.run(0, rd(X));         // E, clean
    s.run(0, rd(0x2000));
    s.run(0, rd(0x3000));
    EXPECT_DOUBLE_EQ(s.cache(0).writebacks.value(), 0.0);
}

TEST(CacheMechanics, SetAssociativeConflictEviction)
{
    // 4 frames, 2 ways, 32B blocks: addresses 2 blocks apart collide.
    Scenario s(opts("illinois", 2, 4, 4, 2));
    s.run(0, rd(0x1000));
    s.run(0, rd(0x1040));
    s.run(0, rd(0x1080));    // same set: evicts 0x1000
    EXPECT_EQ(s.state(0, 0x1000), Inv);
    EXPECT_NE(s.state(0, 0x1040), Inv);
    // 0x1020 maps to the other set: untouched capacity.
    s.run(0, rd(0x1020));
    EXPECT_NE(s.state(0, 0x1080), Inv);
}

TEST(CacheMechanics, WriteHitToCleanTracked)
{
    Scenario s(opts("illinois"));
    s.run(0, rd(X));          // E (clean)
    s.run(0, wr(X, 1));       // write hit to clean block
    s.run(0, wr(X, 2));       // hit to dirty: not counted
    EXPECT_DOUBLE_EQ(
        s.cache(0).directory().writeHitsToClean.value(), 1.0);
}

TEST(CacheMechanics, DirectoryInterferenceModel)
{
    // Identical-dual directories: every dirty-status change interferes.
    Scenario s(opts("illinois"));
    s.run(0, rd(X));
    s.run(0, wr(X, 1));
    EXPECT_GT(s.cache(0).directory().interferenceEvents(), 0.0);
}

TEST(CacheMechanics, NidDirectoryEliminatesInterference)
{
    // The Bitar proposal uses non-identical directories (Feature 3).
    Scenario s(opts("bitar"));
    s.run(0, rd(X));
    s.run(0, wr(X, 1));
    EXPECT_EQ(s.cache(0).directory().kind(),
              DirectoryKind::NonIdenticalDual);
    EXPECT_DOUBLE_EQ(s.cache(0).directory().interferenceEvents(), 0.0);
}

TEST(CacheMechanics, OpLatencyHitVsMiss)
{
    Scenario s(opts("illinois"));
    s.run(0, rd(X));    // miss: bus latency
    Tick t0 = s.system().now();
    s.run(0, rd(X));    // hit: hitLatency only
    Tick t1 = s.system().now();
    EXPECT_LE(t1 - t0, 2u);
    EXPECT_GE(s.cache(0).opLatency.max(), 5u);
}

TEST(CacheMechanics, PeekersDoNotDisturbState)
{
    Scenario s(opts("illinois"));
    s.run(0, wr(X, 5));
    State before = s.state(0, X);
    (void)s.cache(0).peekWord(X);
    (void)s.cache(0).peekFrame(X);
    EXPECT_EQ(s.state(0, X), before);
}
