/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"

using namespace csync;

TEST(Random, DeterministicForSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Random a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= (a.next() != b.next());
    EXPECT_TRUE(any_diff);
}

TEST(Random, UniformInBounds)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.uniform(17), 17u);
}

TEST(Random, RangeInclusive)
{
    Random r(9);
    bool low = false, high = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        low |= (v == 3);
        high |= (v == 5);
    }
    EXPECT_TRUE(low);
    EXPECT_TRUE(high);
}

TEST(Random, ChanceExtremes)
{
    Random r(11);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Random, UniformRealInUnitInterval)
{
    Random r(13);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Random, ChanceRoughlyCalibrated)
{
    Random r(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(double(hits) / n, 0.25, 0.02);
}

TEST(Random, GeometricCapped)
{
    Random r(19);
    EXPECT_EQ(r.geometric(0.0, 5), 5u);
    EXPECT_EQ(r.geometric(1.0), 0u);
    EXPECT_LE(r.geometric(0.5, 100), 100u);
}
