/**
 * @file
 * Tests for the bus timing/capability knobs: words per cycle, memory
 * latency, non-concurrent flushes, and the invalidate-signal capability
 * (Feature 4's Multibus-vs-Synapse-bus distinction).
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{

constexpr Addr X = 0x1000;

Scenario::Options
timedOpts(const std::string &proto, const BusTiming &t)
{
    Scenario::Options o = opts(proto);
    o.timing = t;
    return o;
}

} // namespace

TEST(BusTiming, DataCyclesRespectBusWidth)
{
    BusTiming t;
    t.wordsPerCycle = 1;
    EXPECT_EQ(t.dataCycles(4), 4u);
    t.wordsPerCycle = 2;
    EXPECT_EQ(t.dataCycles(4), 2u);
    EXPECT_EQ(t.dataCycles(5), 3u);    // rounds up
    t.wordsPerCycle = 0;               // defensive: treated as 1
    EXPECT_EQ(t.dataCycles(4), 4u);
}

TEST(BusTiming, WiderBusShortensFetches)
{
    BusTiming narrow;
    BusTiming wide;
    wide.wordsPerCycle = 4;

    Scenario sn(timedOpts("illinois", narrow));
    sn.run(0, rd(X));
    Tick t_narrow = sn.system().now();

    Scenario sw(timedOpts("illinois", wide));
    sw.run(0, rd(X));
    Tick t_wide = sw.system().now();

    EXPECT_LT(t_wide, t_narrow);
}

TEST(BusTiming, MemoryLatencyAddsToMemorySupplies)
{
    BusTiming slow;
    slow.memLatency = 20;
    Scenario s(timedOpts("illinois", slow));
    s.run(0, rd(X));
    // arb(1) + addr(1) + memLatency(20) + 4 data + hit delivery.
    EXPECT_GE(s.system().now(), 26u);
}

TEST(BusTiming, CacheToCacheAvoidsMemoryLatency)
{
    BusTiming slow;
    slow.memLatency = 20;
    Scenario s(timedOpts("illinois", slow));
    s.run(0, rd(X));
    Tick before = s.system().now();
    s.run(1, rd(X));    // supplied cache-to-cache (Illinois)
    Tick c2c_latency = s.system().now() - before;
    EXPECT_LT(c2c_latency, 20u);
}

TEST(BusTiming, NonConcurrentFlushCostsExtra)
{
    BusTiming fast;
    BusTiming slow_flush;
    slow_flush.concurrentFlush = false;

    auto fetch_after_dirty = [&](const BusTiming &t) {
        Scenario s(timedOpts("illinois", t));
        s.run(0, wr(X, 1));    // M in cache 0
        Tick before = s.system().now();
        s.run(1, rd(X));       // c2c with flush (Feature 7 'F')
        return s.system().now() - before;
    };
    EXPECT_GT(fetch_after_dirty(slow_flush), fetch_after_dirty(fast));
}

TEST(BusTiming, NoInvalidateSignalWritesThroughOnUpgrade)
{
    BusTiming multibus;
    multibus.invalidateDuringFetch = false;
    Scenario s(timedOpts("yen", multibus));
    s.run(0, rd(X));
    s.run(1, rd(X));
    double ww = s.system().memory().wordWrites.value();
    s.run(0, wr(X, 7));
    // Gaining write privilege wrote the word through to memory.
    EXPECT_GT(s.system().memory().wordWrites.value(), ww);
    EXPECT_EQ(s.system().memory().readWord(X), 7u);
    EXPECT_EQ(s.state(1, X), Inv);
    EXPECT_DOUBLE_EQ(
        s.system().checker().violationCount.value(), 0.0);
}

TEST(BusTiming, SignalCyclesBoundUpgradeTenure)
{
    Scenario s(opts("illinois"));
    s.run(0, rd(X));
    s.run(1, rd(X));
    double busy = s.system().bus().busyCycles.value();
    s.run(0, wr(X, 1));
    // arb(1) + signal(1).
    EXPECT_DOUBLE_EQ(s.system().bus().busyCycles.value() - busy, 2.0);
}
