/**
 * @file
 * Tests for the sense-reversing barrier workload: integrity (no
 * participant passes a barrier twice while another waits at it) across
 * protocols, lock algorithms, and participant counts.
 */

#include <gtest/gtest.h>

#include "proc/workloads/barrier.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct BarrierCase
{
    std::string protocol;
    LockAlg alg;
    unsigned procs;
    bool workWhileWaiting;
};

std::string
caseName(const ::testing::TestParamInfo<BarrierCase> &info)
{
    const auto &c = info.param;
    std::string alg = c.alg == LockAlg::CacheLock ? "cachelock"
                      : c.alg == LockAlg::TestAndSet ? "tas"
                                                     : "ttas";
    return c.protocol + "_" + alg + "_p" + std::to_string(c.procs) +
           (c.workWhileWaiting ? "_www" : "");
}

class BarrierProperty : public ::testing::TestWithParam<BarrierCase>
{
};

} // namespace

TEST_P(BarrierProperty, AllRoundsCompleteInLockstep)
{
    const auto &c = GetParam();
    SystemConfig cfg;
    cfg.protocol = c.protocol;
    cfg.numProcessors = c.procs;
    cfg.cache.geom.frames = 32;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    const std::uint64_t rounds = 15;
    BarrierParams p;
    p.rounds = rounds;
    p.numProcs = c.procs;
    p.alg = c.alg;
    for (unsigned i = 0; i < c.procs; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<BarrierWorkload>(p),
                         c.workWhileWaiting);
    }
    sys.start();
    sys.run(50'000'000);

    ASSERT_TRUE(sys.allDone());
    EXPECT_EQ(sys.checker().violations(), 0u)
        << (sys.checker().violationLog().empty()
                ? std::string("?")
                : sys.checker().violationLog()[0]);
    for (unsigned i = 0; i < c.procs; ++i) {
        auto &wl = static_cast<BarrierWorkload &>(
            sys.processor(i).workload());
        EXPECT_EQ(wl.completedRounds(), rounds) << "proc " << i;
        EXPECT_FALSE(wl.integrityViolated()) << "proc " << i;
    }
    // The final episode left the counter reset and the sense at the
    // final round.
    EXPECT_EQ(sys.checker().expectedValue(p.descBase + bytesPerWord),
              0u);
    EXPECT_EQ(sys.checker().expectedValue(p.senseAddr), rounds);
    std::string why;
    EXPECT_EQ(sys.checkStateInvariants(&why), 0u) << why;
}

INSTANTIATE_TEST_SUITE_P(
    Barriers, BarrierProperty,
    ::testing::Values(
        BarrierCase{"bitar", LockAlg::CacheLock, 2, false},
        BarrierCase{"bitar", LockAlg::CacheLock, 4, false},
        BarrierCase{"bitar", LockAlg::CacheLock, 8, false},
        BarrierCase{"bitar", LockAlg::CacheLock, 4, true},
        BarrierCase{"bitar", LockAlg::TestTestSet, 4, false},
        BarrierCase{"illinois", LockAlg::TestTestSet, 4, false},
        BarrierCase{"illinois", LockAlg::TestAndSet, 6, false},
        BarrierCase{"berkeley", LockAlg::TestTestSet, 4, false},
        BarrierCase{"synapse", LockAlg::TestAndSet, 3, false},
        BarrierCase{"dragon", LockAlg::TestTestSet, 4, false},
        BarrierCase{"firefly", LockAlg::TestTestSet, 4, false},
        BarrierCase{"rudolph_segall", LockAlg::TestTestSet, 4, false}),
    caseName);
