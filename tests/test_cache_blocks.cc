/**
 * @file
 * Unit tests for the tag/data store and its LRU replacement, including
 * the prefer-unlocked-victim rule behind the paper's locked-block purge
 * fallback (Section E.3).
 */

#include <gtest/gtest.h>

#include "cache/cache_blocks.hh"

using namespace csync;

namespace
{

CacheGeometry
geom(unsigned frames, unsigned ways, unsigned words = 4)
{
    CacheGeometry g;
    g.frames = frames;
    g.ways = ways;
    g.blockWords = words;
    return g;
}

} // namespace

TEST(CacheBlocks, BlockAlign)
{
    CacheBlocks cb(geom(4, 0, 4));    // 32-byte blocks
    EXPECT_EQ(cb.blockAlign(0x1000), 0x1000u);
    EXPECT_EQ(cb.blockAlign(0x101f), 0x1000u);
    EXPECT_EQ(cb.blockAlign(0x1020), 0x1020u);
}

TEST(CacheBlocks, FindMissesOnEmpty)
{
    CacheBlocks cb(geom(4, 0));
    EXPECT_EQ(cb.find(0x1000), nullptr);
    EXPECT_EQ(cb.validCount(), 0u);
}

TEST(CacheBlocks, VictimPrefersInvalid)
{
    CacheBlocks cb(geom(2, 0));
    Frame *a = cb.victim(0x1000);
    cb.install(*a, 0x1000);
    a->state = Rd;
    Frame *b = cb.victim(0x2000);
    EXPECT_NE(a, b);
    EXPECT_FALSE(b->valid());
}

TEST(CacheBlocks, VictimIsLruAmongValid)
{
    CacheBlocks cb(geom(2, 0));
    Frame *a = cb.victim(0x1000);
    cb.install(*a, 0x1000);
    a->state = Rd;
    cb.touch(*a, 10);
    Frame *b = cb.victim(0x2000);
    cb.install(*b, 0x2000);
    b->state = Rd;
    cb.touch(*b, 20);
    EXPECT_EQ(cb.victim(0x3000), a);
    cb.touch(*a, 30);
    EXPECT_EQ(cb.victim(0x3000), b);
}

TEST(CacheBlocks, VictimAvoidsLockedFrames)
{
    CacheBlocks cb(geom(2, 0));
    Frame *a = cb.victim(0x1000);
    cb.install(*a, 0x1000);
    a->state = LkSrcDty;
    cb.touch(*a, 1);    // locked frame is the LRU one
    Frame *b = cb.victim(0x2000);
    cb.install(*b, 0x2000);
    b->state = Rd;
    cb.touch(*b, 50);
    EXPECT_EQ(cb.victim(0x3000), b);
}

TEST(CacheBlocks, VictimPicksLockedWhenAllLocked)
{
    CacheBlocks cb(geom(2, 0));
    for (Addr a : {Addr(0x1000), Addr(0x2000)}) {
        Frame *f = cb.victim(a);
        cb.install(*f, a);
        f->state = LkSrcDty;
        cb.touch(*f, a);
    }
    Frame *v = cb.victim(0x3000);
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(isLocked(v->state));
    EXPECT_EQ(v->blockAddr, 0x1000u);    // LRU among locked
}

TEST(CacheBlocks, SetAssociativeMapping)
{
    // 4 frames, 2 ways => 2 sets; 32-byte blocks.
    CacheBlocks cb(geom(4, 2));
    EXPECT_EQ(cb.geometry().sets(), 2u);
    // Blocks 0x1000 and 0x1040 map to the same set (stride 2 blocks).
    EXPECT_EQ(cb.setIndex(0x1000), cb.setIndex(0x1040));
    EXPECT_NE(cb.setIndex(0x1000), cb.setIndex(0x1020));
}

TEST(CacheBlocks, SetConflictEvictsWithinSet)
{
    CacheBlocks cb(geom(4, 2));
    // Fill one set with two conflicting blocks.
    Frame *a = cb.victim(0x1000);
    cb.install(*a, 0x1000);
    a->state = Rd;
    cb.touch(*a, 1);
    Frame *b = cb.victim(0x1040);
    cb.install(*b, 0x1040);
    b->state = Rd;
    cb.touch(*b, 2);
    // Third conflicting block must displace the LRU of that set.
    Frame *v = cb.victim(0x1080);
    EXPECT_EQ(v, a);
}

TEST(CacheBlocks, FindHitsAfterInstall)
{
    CacheBlocks cb(geom(4, 0));
    Frame *a = cb.victim(0x1000);
    cb.install(*a, 0x1000);
    a->state = Rd;
    EXPECT_EQ(cb.find(0x1000), a);
    EXPECT_EQ(cb.find(0x2000), nullptr);
}

TEST(CacheBlocks, FindRejectsStaleHintAfterInPlaceInvalidate)
{
    // Protocols invalidate by flipping Frame::state directly; the
    // address index entry it leaves behind must not resurrect the block.
    CacheBlocks cb(geom(4, 0));
    Frame *a = cb.victim(0x1000);
    cb.install(*a, 0x1000);
    a->state = Rd;
    ASSERT_EQ(cb.find(0x1000), a);
    a->state = Inv;
    EXPECT_EQ(cb.find(0x1000), nullptr);
    // And again, after the lazy erase.
    EXPECT_EQ(cb.find(0x1000), nullptr);
}

TEST(CacheBlocks, FindTracksFrameRebinding)
{
    // A frame reused for a different block: the old address must miss,
    // the new one must hit.
    CacheBlocks cb(geom(1, 0));
    Frame *f = cb.victim(0x1000);
    cb.install(*f, 0x1000);
    f->state = Rd;
    ASSERT_EQ(cb.find(0x1000), f);
    f->state = Inv;    // evicted
    cb.install(*f, 0x2000);
    f->state = Rd;
    EXPECT_EQ(cb.find(0x1000), nullptr);
    EXPECT_EQ(cb.find(0x2000), f);
}

TEST(CacheBlocks, ForEachValidVisitsAll)
{
    CacheBlocks cb(geom(8, 0));
    for (Addr a = 0x1000; a < 0x1000 + 3 * 32; a += 32) {
        Frame *f = cb.victim(a);
        cb.install(*f, a);
        f->state = Rd;
    }
    unsigned n = 0;
    cb.forEachValid([&](const Frame &) { ++n; });
    EXPECT_EQ(n, 3u);
    EXPECT_EQ(cb.validCount(), 3u);
}
