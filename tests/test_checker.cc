/**
 * @file
 * Tests for the value-level coherence checker itself (positive and
 * negative: it must catch deliberate violations).
 */

#include <gtest/gtest.h>

#include "system/checker.hh"

using namespace csync;

namespace
{

struct CheckerTest : public ::testing::Test
{
    stats::Group root{"root"};
    Checker chk{&root};
};

} // namespace

TEST_F(CheckerTest, FreshWordsReadZero)
{
    chk.onRead(0, 0x1000, 0, 1);
    EXPECT_EQ(chk.violations(), 0u);
    chk.onRead(0, 0x1000, 7, 2);
    EXPECT_EQ(chk.violations(), 1u);
}

TEST_F(CheckerTest, ReadsSeeLastSerializedWrite)
{
    chk.onWrite(0, 0x1000, 42, 1);
    chk.onRead(1, 0x1000, 42, 2);
    EXPECT_EQ(chk.violations(), 0u);
    chk.onWrite(2, 0x1000, 43, 3);
    chk.onRead(1, 0x1000, 42, 4);    // stale
    EXPECT_EQ(chk.violations(), 1u);
    EXPECT_NE(chk.violationLog()[0].find("expected"), std::string::npos);
}

TEST_F(CheckerTest, ExpectedValueTracksWrites)
{
    EXPECT_EQ(chk.expectedValue(0x2000), 0u);
    chk.onWrite(0, 0x2000, 5, 1);
    EXPECT_EQ(chk.expectedValue(0x2000), 5u);
}

TEST_F(CheckerTest, LockPairing)
{
    chk.onLockAcquire(0, 0x1000, 1);
    EXPECT_EQ(chk.lockHolder(0x1000), 0);
    chk.onLockRelease(0, 0x1000, 2);
    EXPECT_EQ(chk.lockHolder(0x1000), invalidNode);
    EXPECT_DOUBLE_EQ(chk.lockPairs.value(), 1.0);
    EXPECT_EQ(chk.violations(), 0u);
}

TEST_F(CheckerTest, DoubleAcquireIsViolation)
{
    chk.onLockAcquire(0, 0x1000, 1);
    chk.onLockAcquire(1, 0x1000, 2);
    EXPECT_EQ(chk.violations(), 1u);
}

TEST_F(CheckerTest, ReleaseWithoutHoldIsViolation)
{
    chk.onLockRelease(3, 0x1000, 1);
    EXPECT_EQ(chk.violations(), 1u);
    chk.onLockAcquire(0, 0x2000, 2);
    chk.onLockRelease(1, 0x2000, 3);    // wrong node
    EXPECT_EQ(chk.violations(), 2u);
}

TEST_F(CheckerTest, StatsCount)
{
    chk.onWrite(0, 0x1000, 1, 1);
    chk.onRead(0, 0x1000, 1, 2);
    EXPECT_DOUBLE_EQ(chk.writesRecorded.value(), 1.0);
    EXPECT_DOUBLE_EQ(chk.readsChecked.value(), 1.0);
}

TEST_F(CheckerTest, NoViolationMeansNoForensics)
{
    EXPECT_EQ(chk.firstViolationKind(), Checker::ViolationKind::None);
    EXPECT_EQ(chk.firstViolationNode(), invalidNode);
    EXPECT_EQ(chk.firstViolationStat(), "");
}

TEST_F(CheckerTest, ValueViolationRecordsReadingNode)
{
    chk.onWrite(0, 0x1000, 42, 1);
    chk.onRead(2, 0x1000, 41, 2);    // stale read by node 2
    EXPECT_EQ(chk.firstViolationKind(), Checker::ViolationKind::Value);
    EXPECT_EQ(chk.firstViolationNode(), 2);
    EXPECT_EQ(chk.firstViolationStat(), "checker.violations");
    EXPECT_DOUBLE_EQ(chk.lockViolations.value(), 0.0);
}

TEST_F(CheckerTest, DoubleAcquireRecordsOwningHolder)
{
    chk.onLockAcquire(1, 0x1000, 1);
    chk.onLockAcquire(2, 0x1000, 2);    // node 1 still owns the lock
    EXPECT_EQ(chk.firstViolationKind(), Checker::ViolationKind::Lock);
    EXPECT_EQ(chk.firstViolationNode(), 1);
    EXPECT_EQ(chk.firstViolationStat(), "checker.lockViolations");
    EXPECT_DOUBLE_EQ(chk.lockViolations.value(), 1.0);
}

TEST_F(CheckerTest, WrongNodeReleaseRecordsOwningHolder)
{
    chk.onLockAcquire(0, 0x2000, 1);
    chk.onLockRelease(3, 0x2000, 2);    // node 0 owns it
    EXPECT_EQ(chk.firstViolationKind(), Checker::ViolationKind::Lock);
    EXPECT_EQ(chk.firstViolationNode(), 0);
    EXPECT_DOUBLE_EQ(chk.lockViolations.value(), 1.0);
}

TEST_F(CheckerTest, OrphanReleaseHasNoOwnerToBlame)
{
    chk.onLockRelease(3, 0x1000, 1);
    EXPECT_EQ(chk.firstViolationKind(), Checker::ViolationKind::Lock);
    EXPECT_EQ(chk.firstViolationNode(), invalidNode);
}

TEST_F(CheckerTest, FirstViolationForensicsStick)
{
    chk.onLockAcquire(1, 0x1000, 1);
    chk.onLockAcquire(2, 0x1000, 2);     // first: lock, owner 1
    chk.onWrite(0, 0x2000, 5, 3);
    chk.onRead(4, 0x2000, 9, 4);         // later value violation
    EXPECT_EQ(chk.firstViolationKind(), Checker::ViolationKind::Lock);
    EXPECT_EQ(chk.firstViolationNode(), 1);
    EXPECT_EQ(chk.firstViolationStat(), "checker.lockViolations");
}

TEST_F(CheckerTest, ViolationLogCapped)
{
    for (int i = 0; i < 100; ++i)
        chk.onRead(0, 0x1000, Word(i + 1), Tick(i));
    EXPECT_EQ(chk.violations(), 100u);
    EXPECT_LE(chk.violationLog().size(), 64u);
}
