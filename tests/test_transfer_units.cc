/**
 * @file
 * Tests for Section D.3's sub-block transfer units: per-unit dirty
 * status, partial transfers (requested unit + all dirty units), dirty
 * status travelling with source status, and partial write-backs.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{

constexpr Addr X = 0x1000;    // 8-word block when blockWords=8


struct UnitTest : public ::testing::Test
{
    std::unique_ptr<System> sys;

    void
    build(const std::string &proto, unsigned transfer_words,
          unsigned block_words = 8)
    {
        SystemConfig cfg;
        cfg.protocol = proto;
        cfg.numProcessors = 3;
        cfg.cache.geom.frames = 8;
        cfg.cache.geom.blockWords = block_words;
        cfg.cache.geom.transferWords = transfer_words;
        sys = std::make_unique<System>(cfg);
    }

    AccessResult
    op(unsigned p, const MemOp &m)
    {
        AccessResult out;
        bool done = false;
        sys->cache(p).access(m, [&](const AccessResult &r) {
            out = r;
            done = true;
        });
        sys->eventq().run();
        EXPECT_TRUE(done);
        return out;
    }
};

} // namespace

TEST_F(UnitTest, GeometryHelpers)
{
    CacheGeometry g;
    g.blockWords = 8;
    g.transferWords = 2;
    EXPECT_TRUE(g.subBlockUnits());
    EXPECT_EQ(g.unitsPerBlock(), 4u);
    g.transferWords = 0;
    EXPECT_FALSE(g.subBlockUnits());
    EXPECT_EQ(g.unitsPerBlock(), 1u);
    g.transferWords = 8;
    EXPECT_FALSE(g.subBlockUnits());
}

TEST_F(UnitTest, WritesMarkOnlyTheirUnit)
{
    build("bitar", 2);
    op(0, wr(X, 1));               // word 0 -> unit 0
    op(0, wr(X + 3 * 8, 2));       // word 3 -> unit 1
    const Frame *f = sys->cache(0).peekFrame(X);
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(f->unitDirty.size(), 4u);
    EXPECT_TRUE(f->unitDirty[0]);
    EXPECT_TRUE(f->unitDirty[1]);
    EXPECT_FALSE(f->unitDirty[2]);
    EXPECT_FALSE(f->unitDirty[3]);
    EXPECT_EQ(f->dirtyUnits(), 2u);
}

TEST_F(UnitTest, TransferMovesRequestedPlusDirtyUnits)
{
    build("bitar", 2);
    op(0, wr(X, 1));    // dirty unit 0 only
    double cycles = sys->bus().dataTransferCycles.value();
    // Processor 1 reads word 6 (unit 3): transfer = unit 3 + dirty
    // unit 0 = 4 words, not the whole 8-word block.
    op(1, rd(X + 6 * 8));
    double moved = sys->bus().dataTransferCycles.value() - cycles;
    EXPECT_DOUBLE_EQ(moved, 4.0);
}

TEST_F(UnitTest, WholeBlockMovesWithoutUnits)
{
    build("bitar", 0);
    op(0, wr(X, 1));
    double cycles = sys->bus().dataTransferCycles.value();
    op(1, rd(X + 6 * 8));
    EXPECT_DOUBLE_EQ(sys->bus().dataTransferCycles.value() - cycles,
                     8.0);
}

TEST_F(UnitTest, DirtyStatusTravelsWithSourceStatus)
{
    build("bitar", 2);
    op(0, wr(X, 1));                 // unit 0 dirty in cache 0
    op(1, rd(X));                    // NF,S: responsibility moves
    const Frame *f1 = sys->cache(1).peekFrame(X);
    ASSERT_NE(f1, nullptr);
    EXPECT_EQ(f1->state, RdSrcDty);
    ASSERT_EQ(f1->unitDirty.size(), 4u);
    EXPECT_TRUE(f1->unitDirty[0]);
    EXPECT_FALSE(f1->unitDirty[1]);
    // The old source is clean now; its per-unit dirt is gone.
    const Frame *f0 = sys->cache(0).peekFrame(X);
    ASSERT_NE(f0, nullptr);
    EXPECT_EQ(f0->dirtyUnits(), 0u);
}

TEST_F(UnitTest, MemorySupplyChargesOneUnit)
{
    build("bitar", 2);
    sys->memory().writeBlock(X, {1, 2, 3, 4, 5, 6, 7, 8});
    double cycles = sys->bus().dataTransferCycles.value();
    op(0, rd(X + 8));
    EXPECT_DOUBLE_EQ(sys->bus().dataTransferCycles.value() - cycles,
                     2.0);
}

TEST_F(UnitTest, PartialWritebackChargesDirtyUnitsOnly)
{
    build("bitar", 2, 8);
    op(0, wr(X, 1));    // one dirty unit
    double cycles = sys->bus().dataTransferCycles.value();
    // Fill the tiny cache to evict X; the piggybacked write-back
    // should charge 2 words (one dirty unit), not 8.
    for (Addr a = 0x2000; a < 0x2000 + 8 * 0x40; a += 0x40)
        op(0, rd(a));
    EXPECT_EQ(sys->cache(0).stateOf(X), Inv);
    // Data cycles: 8 fetches of 2 words each (memory supplies one unit)
    // plus the 2-word write-back.
    double moved = sys->bus().dataTransferCycles.value() - cycles;
    EXPECT_DOUBLE_EQ(moved, 8 * 2.0 + 2.0);
    // Memory still holds the written word.
    EXPECT_EQ(sys->memory().readWord(X), 1u);
}

TEST_F(UnitTest, ValuesStayCoherentWithUnits)
{
    build("bitar", 2);
    for (int i = 0; i < 30; ++i) {
        unsigned p = i % 3;
        Addr a = X + Addr(i % 8) * bytesPerWord;
        if (i % 2)
            op(p, wr(a, Word(i)));
        else
            op(p, rd(a));
    }
    EXPECT_EQ(sys->checker().violations(), 0u);
    EXPECT_EQ(sys->checkStateInvariants(), 0u);
}

TEST_F(UnitTest, LockHandoffWithUnits)
{
    build("bitar", 1);
    op(0, MemOp{OpType::LockRead, X, 0, false});
    op(0, wr(X + 8, 42));
    op(0, MemOp{OpType::UnlockWrite, X, 1, false});
    auto r = op(1, rd(X + 8));
    EXPECT_EQ(r.value, 42u);
    EXPECT_EQ(sys->checker().violations(), 0u);
}

TEST(UnitConfig, BadTransferUnitIsFatal)
{
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = 1;
    cfg.cache.geom.blockWords = 8;
    cfg.cache.geom.transferWords = 3;    // does not divide 8
    EXPECT_DEATH({ System sys(cfg); }, "transfer unit");
}
