/**
 * @file
 * Hierarchical-topology tests: clustered preset shape, the shared-L2
 * tag directory's inclusive/exclusive policies, per-cluster stat
 * namespacing, preset <-> spec-file equivalence (every advertised
 * preset has a canned spec under specs/ building the identical
 * TopologyConfig), snoop-filter traffic suppression, the topology-spec
 * campaign axis, and clustered campaign determinism across worker
 * counts including the partition_fallback diagnostic.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "cache/shared_cache.hh"
#include "harness/campaign.hh"
#include "harness/campaign_io.hh"
#include "harness/sweep.hh"
#include "harness/workload_factory.hh"
#include "sim/logging.hh"
#include "system/system.hh"
#include "system/topology_spec.hh"

#ifndef CSYNC_SPECS_DIR
#error "CSYNC_SPECS_DIR must point at the repo's specs/ directory"
#endif

using namespace csync;
using namespace csync::harness;

namespace
{

/** Run check() and return its failure message ("" when valid). */
std::string
checkMessage(const TopologyConfig &topo)
{
    std::string err;
    return topo.check(&err) ? "" : err;
}

/** Build and run a clustered System on a factory workload.  Heap
 *  allocated: a System pins internal pointers and must not move. */
std::unique_ptr<System>
runClustered(const TopologyConfig &topo, const std::string &workload,
             unsigned procs)
{
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    cfg.topology = topo;
    auto sys = std::make_unique<System>(cfg);
    for (unsigned i = 0; i < procs; ++i) {
        WorkloadSlot slot;
        slot.procId = i;
        slot.numProcs = procs;
        slot.numClusters = topo.numClusters();
        slot.ops = 300;
        slot.seed = 42;
        slot.protocol = cfg.protocol;
        std::string err;
        auto w = makeWorkload(workload, slot, &err);
        EXPECT_NE(w, nullptr) << err;
        sys->addProcessor(std::move(w));
    }
    sys->start();
    sys->run();
    EXPECT_TRUE(sys->allDone());
    return sys;
}

} // namespace

TEST(Hierarchy, ClusteredPresetsAreShapedAsAdvertised)
{
    TopologyConfig topo;
    ASSERT_TRUE(TopologyConfig::fromName("clustered_4x2", &topo));
    EXPECT_EQ(checkMessage(topo), "");
    EXPECT_TRUE(topo.clustered());
    EXPECT_EQ(topo.numClusters(), 4u);
    ASSERT_EQ(topo.switches.size(), 4u);
    EXPECT_EQ(topo.switches[0].name, "cluster0");
    EXPECT_EQ(topo.switches[3].name, "cluster3");
    EXPECT_EQ(topo.rootName, "root");
    for (const ClusterSpec &c : topo.clusters) {
        EXPECT_TRUE(c.inclusive);
        EXPECT_TRUE(c.snoopFilter);
    }

    // Eight processors on four clusters pair up in contiguous blocks.
    EXPECT_EQ(topo.clusterOfProc(0, 8), 0u);
    EXPECT_EQ(topo.clusterOfProc(1, 8), 0u);
    EXPECT_EQ(topo.clusterOfProc(2, 8), 1u);
    EXPECT_EQ(topo.clusterOfProc(7, 8), 3u);
    // And four processors on four clusters go one apiece.
    for (unsigned p = 0; p < 4; ++p)
        EXPECT_EQ(topo.clusterOfProc(p, 4), p);

    // The ablation preset is the same machine with filtering off.
    TopologyConfig nof;
    ASSERT_TRUE(TopologyConfig::fromName("clustered_4x2_nofilter", &nof));
    ASSERT_EQ(nof.clusters.size(), topo.clusters.size());
    for (const ClusterSpec &c : nof.clusters)
        EXPECT_FALSE(c.snoopFilter);
}

TEST(Hierarchy, EveryPresetHasAnEquivalentSpecFile)
{
    // fromName() advertises the equivalence; this is the test that
    // enforces it, so presets and spec files cannot drift apart.
    for (const auto &name : TopologyConfig::names()) {
        TopologyConfig preset;
        ASSERT_TRUE(TopologyConfig::fromName(name, &preset)) << name;

        TopologyConfig spec;
        std::string err;
        std::string path =
            std::string(CSYNC_SPECS_DIR) + "/" + name + ".json";
        ASSERT_TRUE(topologyFromSpecFile(path, &spec, &err))
            << path << ": " << err;

        EXPECT_EQ(spec.preset, preset.preset) << name;
        EXPECT_EQ(spec.rootName, preset.rootName) << name;
        ASSERT_EQ(spec.switches.size(), preset.switches.size()) << name;
        for (std::size_t i = 0; i < preset.switches.size(); ++i) {
            const SwitchSpec &a = preset.switches[i];
            const SwitchSpec &b = spec.switches[i];
            EXPECT_EQ(b.name, a.name) << name;
            EXPECT_EQ(b.carries, a.carries) << name << "/" << a.name;
            EXPECT_EQ(b.arbitration, a.arbitration)
                << name << "/" << a.name;
            ASSERT_EQ(b.ranges.size(), a.ranges.size())
                << name << "/" << a.name;
            for (std::size_t r = 0; r < a.ranges.size(); ++r) {
                EXPECT_EQ(b.ranges[r].lo, a.ranges[r].lo)
                    << name << "/" << a.name;
                EXPECT_EQ(b.ranges[r].hi, a.ranges[r].hi)
                    << name << "/" << a.name;
            }
        }
        ASSERT_EQ(spec.clusters.size(), preset.clusters.size()) << name;
        for (std::size_t i = 0; i < preset.clusters.size(); ++i) {
            EXPECT_EQ(spec.clusters[i].inclusive,
                      preset.clusters[i].inclusive) << name;
            EXPECT_EQ(spec.clusters[i].snoopFilter,
                      preset.clusters[i].snoopFilter) << name;
        }
    }
}

TEST(Hierarchy, InclusiveTagsPersistAndExclusiveTagsDoNot)
{
    stats::Group root("system");

    ClusterSpec inc;
    inc.inclusive = true;
    SharedCache l2("cluster0.l2", 0, inc, 2, &root);
    EXPECT_FALSE(l2.tagPresent(0, 0x40));
    l2.noteFill(0, 0x40);
    EXPECT_TRUE(l2.tagPresent(0, 0x40));
    EXPECT_TRUE(l2.mayHold(0, 0x40));
    // Residency is tracked per home switch.
    EXPECT_FALSE(l2.tagPresent(1, 0x40));
    // A repeated fill is idempotent.
    l2.noteFill(0, 0x40);
    EXPECT_EQ(l2.tagInserts.value(), 1.0);
    l2.noteInvalidate(0, 0x40);
    EXPECT_FALSE(l2.tagPresent(0, 0x40));
    EXPECT_FALSE(l2.mayHold(0, 0x40));
    EXPECT_EQ(l2.tagDrops.value(), 1.0);

    // The exclusive policy keeps no tag state of its own: residency is
    // a live query over the member L1s (none here), so a fill leaves
    // nothing behind.
    ClusterSpec exc;
    exc.inclusive = false;
    SharedCache x("cluster1.l2", 1, exc, 2, &root);
    x.noteFill(0, 0x40);
    EXPECT_FALSE(x.tagPresent(0, 0x40));
    EXPECT_FALSE(x.mayHold(0, 0x40));
    EXPECT_EQ(x.tagInserts.value(), 0.0);
}

TEST(Hierarchy, PerClusterStatNamespacesAreDisjoint)
{
    TopologyConfig topo;
    ASSERT_TRUE(TopologyConfig::fromName("clustered_2x1", &topo));
    auto sys = runClustered(topo, "cluster_local", 2);
    EXPECT_EQ(sys->checker().violations(), 0u);
    EXPECT_EQ(sys->checkStateInvariants(), 0u);

    std::ostringstream os;
    sys->dumpStats(os);
    std::string dump = os.str();
    // Each cluster's bus, boundary filter, and shared L2 live under
    // their own prefix; the root-bus model under its own.
    EXPECT_NE(dump.find("system.cluster0."), std::string::npos);
    EXPECT_NE(dump.find("system.cluster1."), std::string::npos);
    EXPECT_NE(dump.find("system.cluster0.l2.tagInserts"),
              std::string::npos);
    EXPECT_NE(dump.find("system.cluster1.l2.tagInserts"),
              std::string::npos);
    EXPECT_NE(dump.find("system.cluster0.filter.snoopsFiltered"),
              std::string::npos);
    EXPECT_NE(dump.find("system.root.transactions"), std::string::npos);
    // The single-bus legacy names must not leak into a clustered dump.
    EXPECT_EQ(dump.find("system.bus."), std::string::npos);
    EXPECT_EQ(dump.find("system.memory."), std::string::npos);
}

TEST(Hierarchy, SnoopFilterKeepsClusterLocalTrafficOffTheRoot)
{
    // The cluster_local recipe homes each processor's footprint in its
    // own cluster's stride, so with filtering every transaction can be
    // proven cluster-local and the root bus stays silent.
    TopologyConfig filt;
    ASSERT_TRUE(TopologyConfig::fromName("clustered_2x1", &filt));
    auto sys = runClustered(filt, "cluster_local", 2);
    ASSERT_NE(sys->rootBus(), nullptr);
    EXPECT_EQ(sys->rootBus()->transactions.value(), 0.0);
    EXPECT_EQ(sys->checker().violations(), 0u);
    EXPECT_EQ(sys->checkStateInvariants(), 0u);

    // The ablation: same machine, filtering off — every transaction is
    // broadcast through the root to the remote cluster.
    TopologyConfig nof = filt;
    for (ClusterSpec &c : nof.clusters)
        c.snoopFilter = false;
    auto sysNof = runClustered(nof, "cluster_local", 2);
    EXPECT_GT(sysNof->rootBus()->transactions.value(), 0.0);
    EXPECT_EQ(sysNof->checker().violations(), 0u);
    EXPECT_EQ(sysNof->checkStateInvariants(), 0u);
}

TEST(Hierarchy, CrossClusterSharingStaysCoherent)
{
    // random_sharing's footprint straddles the cluster strides: the
    // filter must hold the boundary open wherever a remote copy (or an
    // armed busy-wait register) exists, and coherence must be exactly
    // the flat machine's.
    TopologyConfig topo;
    ASSERT_TRUE(TopologyConfig::fromName("clustered_2x1", &topo));
    auto sys = runClustered(topo, "random_sharing", 2);
    EXPECT_GT(sys->rootBus()->transactions.value(), 0.0);
    EXPECT_EQ(sys->checker().violations(), 0u);
    EXPECT_EQ(sys->checkStateInvariants(), 0u);
}

TEST(Hierarchy, SweepExpandsTopologySpecFiles)
{
    SweepSpec spec;
    spec.name = "spec-axis";
    spec.protocols = {"bitar"};
    spec.workloads = {"cluster_local"};
    spec.topologies.clear();
    spec.topologySpecs = {
        std::string(CSYNC_SPECS_DIR) + "/clustered_2x1.json"};
    spec.processorCounts = {2};
    spec.opsPerProcessor = 100;
    std::vector<JobSpec> grid;
    std::string err;
    ASSERT_TRUE(spec.expand(&grid, &err)) << err;
    ASSERT_EQ(grid.size(), 1u);
    EXPECT_TRUE(grid[0].config.topology.clustered());
    EXPECT_EQ(grid[0].config.topology.numClusters(), 2u);
    EXPECT_NE(grid[0].name.find("clustered_2x1"), std::string::npos)
        << grid[0].name;
}

namespace
{

/** Run a small clustered campaign at the given worker count. */
CampaignResult
runClusteredCampaign(unsigned jobs)
{
    SweepSpec spec;
    spec.name = "hierarchy-determinism";
    spec.protocols = {"bitar"};
    spec.workloads = {"cluster_local", "random_sharing"};
    spec.topologies = {"clustered_2x1"};
    spec.processorCounts = {2, 4};
    spec.opsPerProcessor = 200;
    std::vector<JobSpec> grid;
    std::string err;
    EXPECT_TRUE(spec.expand(&grid, &err)) << err;
    CampaignRunner runner;
    CampaignRunner::Options opts;
    opts.jobs = jobs;
    return runner.run(grid, opts);
}

} // namespace

TEST(Hierarchy, ClusteredCampaignRowsAreIdenticalAtAnyWorkerCount)
{
    CampaignResult serial = runClusteredCampaign(1);
    CampaignResult parallel = runClusteredCampaign(4);
    ASSERT_EQ(serial.rows.size(), parallel.rows.size());
    ASSERT_EQ(serial.rows.size(), 4u); // 1 proto x 2 wl x 1 topo x 2 p
    for (std::size_t i = 0; i < serial.rows.size(); ++i) {
        const JobResult &a = serial.rows[i];
        const JobResult &b = parallel.rows[i];
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.status, b.status) << a.name;
        EXPECT_EQ(a.ticks, b.ticks) << a.name;
        EXPECT_EQ(a.memOps, b.memOps) << a.name;
        EXPECT_EQ(a.stats, b.stats) << a.name;
        EXPECT_EQ(a.partitionFallback, b.partitionFallback) << a.name;
        EXPECT_TRUE(a.ok()) << a.name << ": " << a.error;
    }

    for (const JobResult &row : serial.rows) {
        // cluster_local shards cleanly, so its rows carry no fallback
        // diagnostic; random_sharing spans the strides and must say why.
        if (row.name.find("cluster_local") != std::string::npos) {
            EXPECT_EQ(row.partitionFallback, "") << row.name;
        } else {
            EXPECT_NE(row.partitionFallback, "") << row.name;
        }
        // Clustered rows report per-cluster namespaces, not the flat
        // single-bus ones.
        EXPECT_NE(row.stats.find("system.cluster0.transactions"),
                  row.stats.end()) << row.name;
        EXPECT_EQ(row.stats.count("system.bus.transactions"), 0u)
            << row.name;
    }

    // The diagnostic survives the JSON row round trip.
    for (const JobResult &row : serial.rows) {
        JobResult back;
        std::string err;
        ASSERT_TRUE(rowFromJson(rowToJson(row), &back, &err)) << err;
        EXPECT_EQ(back.partitionFallback, row.partitionFallback)
            << row.name;
    }
}
