/**
 * @file
 * Unit tests for main memory: data, the Frank-style source bit, and the
 * Bitar lock-tag fallback.
 */

#include <gtest/gtest.h>

#include "mem/memory.hh"

using namespace csync;

namespace
{

struct MemoryTest : public ::testing::Test
{
    EventQueue eq;
    stats::Group root{"root"};
    Memory mem{"memory", &eq, 4, &root};
};

} // namespace

TEST_F(MemoryTest, UnwrittenBlocksReadZero)
{
    auto b = mem.readBlock(0x1000);
    ASSERT_EQ(b.size(), 4u);
    for (Word w : b)
        EXPECT_EQ(w, 0u);
}

TEST_F(MemoryTest, BlockRoundTrip)
{
    mem.writeBlock(0x1000, {1, 2, 3, 4});
    auto b = mem.readBlock(0x1000);
    EXPECT_EQ(b, (std::vector<Word>{1, 2, 3, 4}));
}

TEST_F(MemoryTest, WordAccessWithinBlock)
{
    mem.writeWord(0x1008, 99);
    EXPECT_EQ(mem.readWord(0x1008), 99u);
    auto b = mem.readBlock(0x1000);
    EXPECT_EQ(b[1], 99u);
    EXPECT_EQ(b[0], 0u);
}

TEST_F(MemoryTest, PeekDoesNotTouchStats)
{
    mem.writeBlock(0x1000, {5, 6, 7, 8});
    double reads = mem.blockReads.value();
    auto b = mem.peekBlock(0x1000);
    EXPECT_EQ(b[0], 5u);
    EXPECT_DOUBLE_EQ(mem.blockReads.value(), reads);
}

TEST_F(MemoryTest, SourceBit)
{
    EXPECT_FALSE(mem.cacheOwned(0x1000));
    mem.setCacheOwned(0x1000, true);
    EXPECT_TRUE(mem.cacheOwned(0x1000));
    EXPECT_TRUE(mem.cacheOwned(0x1008));    // same block
    EXPECT_FALSE(mem.cacheOwned(0x1020));
    mem.setCacheOwned(0x1000, false);
    EXPECT_FALSE(mem.cacheOwned(0x1000));
}

TEST_F(MemoryTest, LockTags)
{
    EXPECT_FALSE(mem.memLocked(0x2000));
    mem.setMemLock(0x2000, true, 3);
    EXPECT_TRUE(mem.memLocked(0x2000));
    EXPECT_EQ(mem.memLockHolder(0x2000), 3);
    EXPECT_FALSE(mem.memWaiter(0x2000));
    mem.setMemWaiter(0x2000, true);
    EXPECT_TRUE(mem.memWaiter(0x2000));
    mem.setMemLock(0x2000, false, invalidNode);
    EXPECT_FALSE(mem.memLocked(0x2000));
    EXPECT_EQ(mem.memLockHolder(0x2000), invalidNode);
}

TEST_F(MemoryTest, StatsCount)
{
    mem.writeBlock(0x1000, {0, 0, 0, 0});
    mem.readBlock(0x1000);
    mem.writeWord(0x1000, 1);
    mem.readWord(0x1000);
    EXPECT_DOUBLE_EQ(mem.blockWrites.value(), 1.0);
    EXPECT_DOUBLE_EQ(mem.blockReads.value(), 1.0);
    EXPECT_DOUBLE_EQ(mem.wordWrites.value(), 1.0);
    EXPECT_DOUBLE_EQ(mem.wordReads.value(), 1.0);
}

TEST_F(MemoryTest, BlockAlignHelper)
{
    EXPECT_EQ(mem.blockAlign(0x103f), 0x1020u);
    EXPECT_EQ(mem.blockAlign(0x1020), 0x1020u);
}
