/**
 * @file
 * Tests for the write-in/write-through hybrids of Section D: Dragon,
 * Firefly, and Rudolph & Segall.  The defining behaviors: writes to
 * shared blocks update the other copies instead of invalidating them;
 * sharing is determined dynamically; and (RS) a second uninterleaved
 * write switches the block to write-in.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{
constexpr Addr X = 0x1000;
constexpr State SharedClean = BitValid | BitShared;
} // namespace

TEST(Dragon, WriteToSharedBroadcastsUpdate)
{
    Scenario s(opts("dragon"));
    s.run(0, rd(X));
    s.run(1, rd(X));
    ASSERT_TRUE(isSharedHint(s.state(0, X)));
    double upd = s.system().bus().typeCount(BusReq::UpdateWord);
    s.run(0, wr(X, 42));
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::UpdateWord),
                     upd + 1);
    // Other copy stays valid and sees the new value without a miss.
    double tx = s.system().bus().transactions.value();
    auto r = s.run(1, rd(X));
    EXPECT_EQ(r.value, 42u);
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
}

TEST(Dragon, MemoryNotUpdatedBySharedWrite)
{
    Scenario s(opts("dragon"));
    s.run(0, rd(X));
    s.run(1, rd(X));
    s.run(0, wr(X, 42));
    // Dragon: the writer becomes the owner; memory stays stale.
    EXPECT_EQ(s.system().memory().readWord(X), 0u);
    EXPECT_TRUE(isDirty(s.state(0, X)));
    EXPECT_TRUE(isSource(s.state(0, X)));
}

TEST(Dragon, UnsharedWriteIsSilentWriteIn)
{
    Scenario s(opts("dragon"));
    s.run(0, rd(X));
    ASSERT_EQ(s.state(0, X), WrSrcCln);    // exclusive clean
    double tx = s.system().bus().transactions.value();
    s.run(0, wr(X, 1));
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
    EXPECT_EQ(s.state(0, X), WrSrcDty);
}

TEST(Dragon, OwnerSuppliesAndWritebackOnEvict)
{
    Scenario s(opts("dragon", 3, 4, 2));
    s.run(0, rd(X));
    s.run(1, rd(X));
    s.run(0, wr(X, 7));    // cache0 owner (shared-modified)
    // Evict the owner's block: it must write back (memory was stale).
    s.run(0, rd(0x2000));
    s.run(0, rd(0x3000));
    EXPECT_EQ(s.system().memory().readWord(X), 7u);
    // The other cache still reads the right value.
    auto r = s.run(1, rd(X));
    EXPECT_EQ(r.value, 7u);
}

TEST(Dragon, UpdateDropsToExclusiveWhenLastSharerLeaves)
{
    Scenario s(opts("dragon", 3, 4, 2));
    s.run(0, rd(X));
    s.run(1, rd(X));
    // Push X out of cache 1.
    s.run(1, rd(0x2000));
    s.run(1, rd(0x3000));
    ASSERT_EQ(s.state(1, X), Inv);
    s.run(0, wr(X, 5));
    // The update broadcast saw no sharers: the block goes private.
    EXPECT_EQ(s.state(0, X), WrSrcDty);
    double tx = s.system().bus().transactions.value();
    s.run(0, wr(X, 6));    // now silent write-in
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
}

TEST(Firefly, SharedWriteUpdatesMemoryToo)
{
    Scenario s(opts("firefly"));
    s.run(0, rd(X));
    s.run(1, rd(X));
    s.run(0, wr(X, 42));
    // Firefly writes through to memory for shared data.
    EXPECT_EQ(s.system().memory().readWord(X), 42u);
    EXPECT_FALSE(isDirty(s.state(0, X)));
    auto r = s.run(1, rd(X));
    EXPECT_EQ(r.value, 42u);
}

TEST(Firefly, DirtySupplierFlushesOnRead)
{
    Scenario s(opts("firefly"));
    s.run(0, rd(X));
    s.run(0, wr(X, 3));    // exclusive -> modified (write-in)
    ASSERT_EQ(s.state(0, X), WrSrcDty);
    double flushes = s.system().memory().blockWrites.value();
    auto r = s.run(1, rd(X));
    EXPECT_EQ(r.value, 3u);
    EXPECT_GT(s.system().memory().blockWrites.value(), flushes);
    EXPECT_EQ(s.state(0, X), SharedClean);
    EXPECT_EQ(s.state(1, X), SharedClean);
}

TEST(RudolphSegall, FirstWriteUpdatesSecondInvalidates)
{
    Scenario s(opts("rudolph_segall", 3, 1));    // one-word blocks
    s.run(0, rd(X));
    s.run(1, rd(X));
    double upd = s.system().bus().typeCount(BusReq::UpdateWord);
    double up = s.system().bus().typeCount(BusReq::Upgrade);
    // First write: broadcast write-through; other copies update.
    s.run(0, wr(X, 1));
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::UpdateWord),
                     upd + 1);
    EXPECT_EQ(s.cache(1).peekWord(X), 1u);
    EXPECT_EQ(s.system().memory().readWord(X), 1u);    // through to mem
    // Second write, no intervening access: invalidate and go private.
    s.run(0, wr(X, 2));
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::Upgrade), up + 1);
    EXPECT_EQ(s.state(1, X), Inv);
    EXPECT_EQ(s.state(0, X), WrSrcDty);
    // Third write is pure write-in: no bus.
    double tx = s.system().bus().transactions.value();
    s.run(0, wr(X, 3));
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
}

TEST(RudolphSegall, InterveningBusAccessResetsDetector)
{
    // "A block is unshared if a processor writes it twice while no
    // other processor accesses it" — accesses are bus-visible, so a
    // read *miss* by another processor resets the detector.
    Scenario s(opts("rudolph_segall", 3, 1));
    s.run(0, rd(X));
    s.run(1, rd(X));
    s.run(0, wr(X, 1));     // first write: update broadcast
    s.run(2, rd(X));        // bus read by a third processor
    double upd = s.system().bus().typeCount(BusReq::UpdateWord);
    s.run(0, wr(X, 2));
    // Interleaved bus access seen: still the "first" write — update
    // again rather than invalidate.
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::UpdateWord),
                     upd + 1);
    EXPECT_EQ(s.cache(1).peekWord(X), 2u);
    EXPECT_EQ(s.cache(2).peekWord(X), 2u);
}

TEST(RudolphSegall, BusyWaitNotification)
{
    // Section E.4's two cases for Rudolph-Segall busy waiting.
    // Case A: a waiter performs a bus read of the set bit before it is
    // cleared, so the clearing write is broadcast (write-through) and
    // the waiter sees it in its cache with no refetch.
    {
        Scenario s(opts("rudolph_segall", 3, 1));
        s.run(0, rd(X));
        s.run(0, wr(X, 1));            // set (write on exclusive copy)
        s.run(1, rd(X));               // waiter reads via the bus
        double tx = s.system().bus().transactions.value();
        s.run(0, wr(X, 0));            // clear: write-through update
        EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx + 1);
        auto r = s.run(1, rd(X));      // spin read hits in cache
        EXPECT_EQ(r.value, 0u);
        EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx + 1);
    }
    // Case B: no waiter bus access between the set and the clear: the
    // second write invalidates, and waiters are "indirectly notified
    // by write-in (invalidation) when the bit is cleared".
    {
        Scenario s(opts("rudolph_segall", 3, 1));
        s.run(0, rd(X));
        s.run(1, rd(X));               // waiter caches the word early
        s.run(0, wr(X, 1));            // first write: update broadcast
        EXPECT_EQ(s.cache(1).peekWord(X), 1u);
        auto spin = s.run(1, rd(X));   // in-cache spin (not a bus access)
        EXPECT_EQ(spin.value, 1u);
        s.run(0, wr(X, 0));            // second write: invalidation
        EXPECT_EQ(s.state(1, X), Inv);
        auto r = s.run(1, rd(X));      // refetch sees the cleared bit
        EXPECT_EQ(r.value, 0u);
    }
}

TEST(Hybrids, AllValuesCoherentAcrossMixedTraffic)
{
    for (const char *proto : {"dragon", "firefly", "rudolph_segall"}) {
        Scenario s(opts(proto, 4, 1));
        for (int i = 0; i < 60; ++i) {
            unsigned p = i % 4;
            Addr a = X + Addr(i % 5) * 0x100;
            if (i % 3 == 0)
                s.run(p, wr(a, Word(i)));
            else
                s.run(p, rd(a));
        }
        EXPECT_EQ(s.system().checkStateInvariants(), 0u) << proto;
        EXPECT_DOUBLE_EQ(s.system().checker().violationCount.value(),
                         0.0)
            << proto;
    }
}
