/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace csync;
using namespace csync::stats;

TEST(Stats, ScalarAccumulates)
{
    Group g("g");
    Scalar s(&g, "s", "a scalar");
    ++s;
    s += 2.5;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    Group g("g");
    Scalar a(&g, "a", "numerator");
    Scalar b(&g, "b", "denominator");
    Formula f(&g, "ratio", "a/b", [&] {
        return b.value() ? a.value() / b.value() : 0.0;
    });
    a += 6;
    b += 3;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
    b += 3;
    EXPECT_DOUBLE_EQ(f.value(), 1.0);
}

TEST(Stats, HistogramMoments)
{
    Group g("g");
    Histogram h(&g, "h", "samples", 10, 4);
    h.sample(5);
    h.sample(15);
    h.sample(100);    // overflow
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 40.0);
}

TEST(Stats, GroupDumpContainsAllStats)
{
    Group root("root");
    Group child("child", &root);
    Scalar a(&root, "a", "top-level");
    Scalar b(&child, "b", "nested");
    a += 1;
    b += 2;
    std::ostringstream os;
    root.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("root.a"), std::string::npos);
    EXPECT_NE(out.find("root.child.b"), std::string::npos);
}

TEST(Stats, LookupByDottedPath)
{
    Group root("root");
    Group child("child", &root);
    Scalar a(&root, "a", "top-level");
    Scalar b(&child, "b", "nested");
    a += 7;
    b += 9;
    EXPECT_DOUBLE_EQ(root.lookup("a"), 7.0);
    EXPECT_DOUBLE_EQ(root.lookup("child.b"), 9.0);
    EXPECT_DOUBLE_EQ(root.lookup("missing"), 0.0);
}

TEST(Stats, ResetStatsRecurses)
{
    Group root("root");
    Group child("child", &root);
    Scalar a(&root, "a", "top-level");
    Scalar b(&child, "b", "nested");
    a += 1;
    b += 1;
    root.resetStats();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}
