/**
 * @file
 * Tests for the synthetic trace generator: every kernel emits a valid
 * stream, generation is byte-reproducible for a seed, and parameter
 * errors are reported up front.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/gen.hh"
#include "trace/reader.hh"

using namespace csync;
using namespace csync::trace;

namespace
{

std::string
tempTrace(const std::string &tag)
{
    return ::testing::TempDir() + "csync_gen_" + tag + ".ctrace";
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // anonymous namespace

TEST(TraceGen, EveryKernelEmitsAValidStream)
{
    for (const auto &kernel : genKernelNames()) {
        EXPECT_TRUE(genKernelKnown(kernel));
        GenParams p;
        p.kernel = kernel;
        p.threads = 3;
        p.events = 500;
        p.seed = 11;
        std::string path = tempTrace(kernel);
        std::string err;
        ASSERT_TRUE(generateTrace(p, path, &err)) << kernel << ": "
                                                  << err;
        TraceReader r;
        ASSERT_TRUE(r.open(path, &err)) << kernel << ": " << err;
        TraceStats stats;
        EXPECT_TRUE(r.validate(&err, &stats)) << kernel << ": " << err;
        EXPECT_GT(stats.total, 0u) << kernel;
        EXPECT_EQ(stats.total, r.header().totalEvents) << kernel;
        std::remove(path.c_str());
    }
}

TEST(TraceGen, GenerationIsByteReproducible)
{
    GenParams p;
    p.kernel = "mix";
    p.threads = 4;
    p.events = 2000;
    p.seed = 99;
    std::string a = tempTrace("repro_a"), b = tempTrace("repro_b");
    std::string err;
    ASSERT_TRUE(generateTrace(p, a, &err)) << err;
    ASSERT_TRUE(generateTrace(p, b, &err)) << err;
    EXPECT_EQ(fileBytes(a), fileBytes(b));

    p.seed = 100;
    ASSERT_TRUE(generateTrace(p, b, &err)) << err;
    EXPECT_NE(fileBytes(a), fileBytes(b))
        << "different seeds must give different traces";
    std::remove(a.c_str());
    std::remove(b.c_str());
}

TEST(TraceGen, UnknownKernelListsTheRealOnes)
{
    GenParams p;
    p.kernel = "fibonacci";
    std::string err;
    EXPECT_FALSE(generateTrace(p, tempTrace("unknown"), &err));
    EXPECT_NE(err.find("unknown trace kernel 'fibonacci'"),
              std::string::npos) << err;
    EXPECT_NE(err.find("mix"), std::string::npos)
        << "error should list known kernels: " << err;
}

TEST(TraceGen, ZeroThreadsIsRejected)
{
    GenParams p;
    p.threads = 0;
    std::string err;
    EXPECT_FALSE(generateTrace(p, tempTrace("zero"), &err));
    EXPECT_NE(err.find("at least one thread"), std::string::npos) << err;
}

TEST(TraceGen, FlagsReflectTheKernelVocabulary)
{
    struct Case
    {
        const char *kernel;
        bool locks, barriers, deps;
    };
    const Case cases[] = {
        {"spinlock", true, false, false},
        {"barrier", false, true, false},
        {"producer_consumer", false, false, true},
        {"mix", true, true, true},
    };
    for (const auto &c : cases) {
        GenParams p;
        p.kernel = c.kernel;
        p.threads = 4;
        p.events = 400;
        std::string path = tempTrace(std::string("flags_") + c.kernel);
        std::string err;
        ASSERT_TRUE(generateTrace(p, path, &err)) << err;
        TraceReader r;
        ASSERT_TRUE(r.open(path, &err)) << err;
        EXPECT_EQ(r.header().hasLocks(), c.locks) << c.kernel;
        EXPECT_EQ(r.header().hasBarriers(), c.barriers) << c.kernel;
        EXPECT_EQ(r.header().hasDeps(), c.deps) << c.kernel;
        std::remove(path.c_str());
    }
}
