/**
 * @file
 * Tests for the campaign runner and the comparison gate: identical
 * rows at any worker count (the determinism contract the pool relies
 * on), graceful per-job failure capture, JSON document round trips,
 * CSV export, and drift detection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "harness/campaign.hh"
#include "harness/campaign_io.hh"
#include "harness/compare.hh"
#include "harness/runner_proc.hh"

using namespace csync;
using namespace csync::harness;

namespace
{

std::vector<JobSpec>
smallGrid()
{
    SweepSpec spec;
    spec.protocols = {"bitar", "illinois"};
    spec.workloads = {"random_sharing", "migration"};
    spec.processorCounts = {2};
    spec.opsPerProcessor = 200;
    std::vector<JobSpec> jobs;
    std::string err;
    EXPECT_TRUE(spec.expand(&jobs, &err)) << err;
    return jobs;
}

} // namespace

TEST(Campaign, RowsIdenticalAtAnyWorkerCount)
{
    auto jobs = smallGrid();
    CampaignRunner runner;
    CampaignRunner::Options serial;
    serial.jobs = 1;
    CampaignRunner::Options parallel;
    parallel.jobs = 4;

    CampaignResult a = runner.run(jobs, serial);
    CampaignResult b = runner.run(jobs, parallel);
    ASSERT_EQ(a.rows.size(), jobs.size());
    ASSERT_EQ(b.rows.size(), jobs.size());
    for (std::size_t i = 0; i < a.rows.size(); ++i) {
        EXPECT_EQ(a.rows[i].name, b.rows[i].name);
        EXPECT_EQ(a.rows[i].status, "ok") << a.rows[i].error;
        EXPECT_EQ(a.rows[i].status, b.rows[i].status);
        EXPECT_EQ(a.rows[i].ticks, b.rows[i].ticks);
        EXPECT_EQ(a.rows[i].memOps, b.rows[i].memOps);
        EXPECT_EQ(a.rows[i].stats, b.rows[i].stats) << a.rows[i].name;
    }
}

TEST(Campaign, CapturesBadJobsAsErrorRows)
{
    auto jobs = smallGrid();
    // A config the validator rejects...
    JobSpec bad;
    bad.name = "bad/zero-procs";
    bad.config.numProcessors = 0;
    bad.workload = "random_sharing";
    jobs.push_back(bad);
    // ...and a workload/protocol combination the factory rejects.
    JobSpec locked;
    locked.name = "bad/goodman-lock";
    locked.config.protocol = "goodman";
    locked.config.numProcessors = 2;
    locked.workload = "critical_section";
    jobs.push_back(locked);

    CampaignRunner::Options opts;
    opts.jobs = 2;
    CampaignResult result = CampaignRunner().run(jobs, opts);
    ASSERT_EQ(result.rows.size(), jobs.size());
    EXPECT_EQ(result.failures(), 2u);

    const JobResult &zero = result.rows[result.rows.size() - 2];
    EXPECT_EQ(zero.status, "error");
    EXPECT_NE(zero.error.find("at least one processor"),
              std::string::npos)
        << zero.error;
    const JobResult &lock = result.rows.back();
    EXPECT_EQ(lock.status, "error");
    EXPECT_NE(lock.error.find("Feature 6"), std::string::npos)
        << lock.error;
    // The good jobs still completed.
    for (std::size_t i = 0; i + 2 < result.rows.size(); ++i)
        EXPECT_EQ(result.rows[i].status, "ok")
            << result.rows[i].name << ": " << result.rows[i].error;
}

TEST(Campaign, TimeoutReportedWhenBudgetTooSmall)
{
    auto jobs = smallGrid();
    jobs.resize(1);
    // Enough work that the event queue's 4096-step batches cannot
    // complete the job before the tick budget is checked.
    jobs[0].ops = 50000;
    jobs[0].maxTicks = 50;
    JobResult r = CampaignRunner::runJob(jobs[0]);
    EXPECT_EQ(r.status, "timeout");
    EXPECT_NE(r.error.find("unfinished"), std::string::npos);
}

TEST(Campaign, RowEchoesTopologyAndTrace)
{
    auto jobs = smallGrid();
    JobResult plain = rowForSpec(jobs[0]);
    EXPECT_EQ(plain.topology, jobs[0].config.topology.preset);
    EXPECT_FALSE(plain.topology.empty());
    EXPECT_TRUE(plain.trace.empty());

    JobSpec traced = jobs[0];
    traced.workload = "trace:captures/foo.ctrace";
    JobResult row = rowForSpec(traced);
    EXPECT_EQ(row.trace, "captures/foo.ctrace");
}

TEST(Campaign, WallDeadlineYieldsWallTimeoutRow)
{
    auto jobs = smallGrid();
    jobs.resize(1);
    // A workload that never finishes, with an effectively unlimited
    // simulated-time budget: only the harness watchdog can end it.
    jobs[0].workload = "__spin";
    jobs[0].maxTicks = Tick(1) << 40;

    CampaignRunner::Options opts;
    opts.jobs = 1;
    opts.wallDeadlineMs = 100;
    CampaignResult result = CampaignRunner().run(jobs, opts);
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_EQ(result.rows[0].status, "wall_timeout");
    EXPECT_NE(result.rows[0].error.find("wall-clock deadline"),
              std::string::npos)
        << result.rows[0].error;
    EXPECT_LT(result.rows[0].ticks, jobs[0].maxTicks);
}

TEST(Campaign, RetriesTransientFailuresWithBackoffAccounting)
{
    auto jobs = smallGrid();
    jobs.resize(1);
    CampaignRunner::Options opts;
    opts.jobs = 1;
    opts.maxRetries = 5;
    opts.retryBackoffMs = 1;
    std::atomic<unsigned> calls{0};
    opts.executor = [&](const JobSpec &spec, unsigned attempt) {
        ++calls;
        JobResult r = rowForSpec(spec);
        if (attempt < 3) {
            r.status = "crashed";
            r.error = "synthetic crash";
        }
        return r;
    };
    CampaignResult result = CampaignRunner().run(jobs, opts);
    ASSERT_EQ(result.rows.size(), 1u);
    EXPECT_EQ(result.rows[0].status, "ok");
    EXPECT_EQ(result.rows[0].attempts, 3u);
    // 1 ms before the second attempt, 2 ms before the third.
    EXPECT_EQ(result.rows[0].retryBackoffMs, 3.0);
    EXPECT_EQ(calls.load(), 3u);
}

TEST(Campaign, RetriesAreBoundedAndSkipDeterministicFailures)
{
    auto jobs = smallGrid();
    jobs.resize(1);
    CampaignRunner::Options opts;
    opts.jobs = 1;
    opts.maxRetries = 2;
    opts.retryBackoffMs = 1;
    std::atomic<unsigned> calls{0};
    opts.executor = [&](const JobSpec &spec, unsigned) {
        ++calls;
        JobResult r = rowForSpec(spec);
        r.status = "wall_timeout";
        return r;
    };
    CampaignResult result = CampaignRunner().run(jobs, opts);
    EXPECT_EQ(result.rows[0].status, "wall_timeout");
    EXPECT_EQ(result.rows[0].attempts, 3u); // 1 try + 2 retries
    EXPECT_EQ(calls.load(), 3u);

    // A deterministic simulation outcome never retries: re-running a
    // livelock reproduces it exactly, so retrying only wastes time.
    calls = 0;
    opts.executor = [&](const JobSpec &spec, unsigned) {
        ++calls;
        JobResult r = rowForSpec(spec);
        r.status = "livelock";
        return r;
    };
    result = CampaignRunner().run(jobs, opts);
    EXPECT_EQ(result.rows[0].attempts, 1u);
    EXPECT_EQ(calls.load(), 1u);
}

TEST(Campaign, GracefulDrainSkipsUnclaimedJobs)
{
    auto jobs = smallGrid();
    std::atomic<bool> stop{true}; // drain before anything is claimed
    CampaignRunner::Options opts;
    opts.jobs = 2;
    opts.stop = &stop;
    CampaignResult result = CampaignRunner().run(jobs, opts);
    EXPECT_TRUE(result.interrupted);
    ASSERT_EQ(result.rows.size(), jobs.size());
    for (const auto &row : result.rows) {
        EXPECT_EQ(row.status, "skipped");
        EXPECT_NE(row.error.find("drained"), std::string::npos);
        EXPECT_FALSE(row.name.empty());
    }
}

TEST(Campaign, IsolateTurnsACrashIntoARow)
{
    if (!childIsolationSupported())
        GTEST_SKIP() << "no fork() on this platform";
    auto jobs = smallGrid();
    jobs.resize(2);
    // One job aborts the process partway through; under isolation the
    // campaign survives and records it, stderr tail attached.
    jobs[0].workload = "__crash";
    jobs[0].maxTicks = 1'000'000;

    CampaignRunner::Options opts;
    opts.jobs = 1;
    opts.isolate = true;
    CampaignResult result = CampaignRunner().run(jobs, opts);
    ASSERT_EQ(result.rows.size(), 2u);
    EXPECT_EQ(result.rows[0].status, "crashed");
    EXPECT_NE(result.rows[0].error.find("signal"), std::string::npos)
        << result.rows[0].error;
    EXPECT_NE(result.rows[0].stderrTail.find("deliberate abort"),
              std::string::npos)
        << result.rows[0].stderrTail;
    EXPECT_EQ(result.rows[1].status, "ok") << result.rows[1].error;
}

TEST(Campaign, JsonDocumentRoundTrips)
{
    auto jobs = smallGrid();
    jobs.resize(2);
    CampaignResult result = CampaignRunner().run(jobs);
    result.name = "roundtrip";

    Json doc = campaignToJson(result);
    std::string err;
    Json reparsed = Json::parse(doc.dump(0), &err);
    ASSERT_TRUE(err.empty()) << err;

    CampaignResult loaded;
    ASSERT_TRUE(campaignFromJson(reparsed, &loaded, &err)) << err;
    EXPECT_EQ(loaded.name, "roundtrip");
    ASSERT_EQ(loaded.rows.size(), result.rows.size());
    for (std::size_t i = 0; i < loaded.rows.size(); ++i) {
        EXPECT_EQ(loaded.rows[i].name, result.rows[i].name);
        EXPECT_EQ(loaded.rows[i].ticks, result.rows[i].ticks);
        EXPECT_EQ(loaded.rows[i].stats, result.rows[i].stats);
    }
}

TEST(Campaign, LoaderRejectsNonCampaignDocuments)
{
    CampaignResult out;
    std::string err;
    EXPECT_FALSE(campaignFromJson(Json::parse("{}", &err), &out, &err));
    EXPECT_NE(err.find("csync_campaign"), std::string::npos) << err;
    Json doc = Json::object();
    doc.set("csync_campaign", 99);
    EXPECT_FALSE(campaignFromJson(doc, &out, &err));
    EXPECT_NE(err.find("unsupported version"), std::string::npos) << err;
}

TEST(Campaign, CsvHasHeaderAndOneLinePerJob)
{
    auto jobs = smallGrid();
    jobs.resize(2);
    CampaignResult result = CampaignRunner().run(jobs);
    std::ostringstream csv;
    campaignToCsv(result, csv);
    std::istringstream in(csv.str());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("name,protocol,workload"), std::string::npos);
    EXPECT_NE(header.find("system.bus.transactions"),
              std::string::npos);
    unsigned lines = 0;
    std::string line;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 2u);
}

TEST(Compare, IdenticalCampaignsPass)
{
    auto jobs = smallGrid();
    jobs.resize(2);
    CampaignResult a = CampaignRunner().run(jobs);
    CampaignResult b = CampaignRunner().run(jobs);
    CompareReport rep = compareCampaigns(a, b);
    EXPECT_TRUE(rep.ok) << rep.text;
    EXPECT_EQ(rep.drifted, 0u);
    EXPECT_GT(rep.compared, 10u);
}

TEST(Compare, DetectsDriftAndHonorsTolerance)
{
    auto jobs = smallGrid();
    jobs.resize(1);
    CampaignResult a = CampaignRunner().run(jobs);
    CampaignResult b = a;
    auto it = b.rows[0].stats.find("system.bus.transactions");
    ASSERT_NE(it, b.rows[0].stats.end());
    it->second *= 1.02; // 2% drift

    CompareReport strict = compareCampaigns(a, b);
    EXPECT_FALSE(strict.ok);
    EXPECT_EQ(strict.drifted, 1u);
    EXPECT_NE(strict.text.find("system.bus.transactions"),
              std::string::npos)
        << strict.text;

    CompareOptions loose;
    loose.tolerancePct = 5.0;
    EXPECT_TRUE(compareCampaigns(a, b, loose).ok);
}

TEST(Compare, FirstDifferenceIsFullyLocated)
{
    auto jobs = smallGrid();
    jobs.resize(1);
    CampaignResult a = CampaignRunner().run(jobs);
    CampaignResult b = a;
    auto it = b.rows[0].stats.find("system.bus.transactions");
    ASSERT_NE(it, b.rows[0].stats.end());
    it->second += 5;

    CompareReport rep = compareCampaigns(a, b);
    ASSERT_FALSE(rep.ok);
    // The first offender is named — job, stat path, both values — and
    // repeated in the summary so it survives detail-line truncation.
    EXPECT_NE(rep.firstDiff.find(a.rows[0].name), std::string::npos)
        << rep.firstDiff;
    EXPECT_NE(rep.firstDiff.find("system.bus.transactions"),
              std::string::npos)
        << rep.firstDiff;
    EXPECT_NE(rep.firstDiff.find("->"), std::string::npos);
    EXPECT_NE(rep.text.find("first difference: " + rep.firstDiff),
              std::string::npos)
        << rep.text;

    CompareReport clean = compareCampaigns(a, a);
    EXPECT_TRUE(clean.firstDiff.empty());
}

TEST(Compare, DetectsMissingJobsAndStatusChanges)
{
    auto jobs = smallGrid();
    jobs.resize(2);
    CampaignResult a = CampaignRunner().run(jobs);
    CampaignResult b = a;
    b.rows[1].status = "error";
    b.rows[1].error = "synthetic failure";
    CompareReport rep = compareCampaigns(a, b);
    EXPECT_FALSE(rep.ok);
    EXPECT_EQ(rep.statusChanges, 1u);
    EXPECT_NE(rep.text.find("synthetic failure"), std::string::npos);

    CampaignResult c = a;
    c.rows.pop_back();
    CompareReport rep2 = compareCampaigns(a, c);
    EXPECT_FALSE(rep2.ok);
    EXPECT_GE(rep2.missing, 1u);
    EXPECT_NE(rep2.text.find("missing from new campaign"),
              std::string::npos);
}
