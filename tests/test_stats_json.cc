/**
 * @file
 * Tests for the stats JSON exporter: escaping, number formatting,
 * well-formedness (via the harness parser), flattening, and agreement
 * between the JSON view and the live stat objects.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "harness/json.hh"
#include "sim/stats.hh"
#include "sim/stats_json.hh"

using namespace csync;
using harness::Json;

namespace
{

struct Fixture
{
    stats::Group root{"root"};
    stats::Group child{"child", &root};
    stats::Scalar count{&root, "count", "a counter"};
    stats::Scalar nested{&child, "nested", "a nested counter"};
    stats::Histogram hist{&child, "hist", "a histogram", 10, 4};
    stats::Formula ratio{&root, "ratio", "count / 2",
                         [this] { return count.value() / 2.0; }};
};

} // namespace

TEST(StatsJson, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(stats::jsonEscape("plain"), "plain");
    EXPECT_EQ(stats::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(stats::jsonEscape("x\n\t\x01"), "x\\n\\t\\u0001");
}

TEST(StatsJson, NumberFormatting)
{
    EXPECT_EQ(stats::jsonNumber(0), "0");
    EXPECT_EQ(stats::jsonNumber(42), "42");
    EXPECT_EQ(stats::jsonNumber(-7), "-7");
    EXPECT_EQ(stats::jsonNumber(0.5), "0.5");
    // Illegal-in-JSON values degrade to null.
    EXPECT_EQ(stats::jsonNumber(std::nan("")), "null");
    EXPECT_EQ(stats::jsonNumber(1.0 / 0.0), "null");
    // Round-trip precision for non-integral values.
    double v = 1.0 / 3.0;
    EXPECT_EQ(std::stod(stats::jsonNumber(v)), v);
}

TEST(StatsJson, DumpParsesBackWithSameValues)
{
    Fixture f;
    f.count += 41;
    ++f.count;
    f.nested = 7;
    f.hist.sample(5);
    f.hist.sample(15);
    f.hist.sample(999);

    std::ostringstream os;
    stats::dumpJson(f.root, os);

    std::string err;
    Json doc = Json::parse(os.str(), &err);
    ASSERT_TRUE(err.empty()) << err;
    const Json &root = doc["root"];
    EXPECT_EQ(root["count"].asNumber(), 42);
    EXPECT_EQ(root["ratio"].asNumber(), 21);
    EXPECT_EQ(root["child"]["nested"].asNumber(), 7);
    const Json &hist = root["child"]["hist"];
    EXPECT_EQ(hist["count"].asNumber(), 3);
    EXPECT_EQ(hist["min"].asNumber(), 5);
    EXPECT_EQ(hist["max"].asNumber(), 999);
    EXPECT_EQ(hist["buckets"]["0"].asNumber(), 1);
    EXPECT_EQ(hist["buckets"]["1"].asNumber(), 1);
    EXPECT_EQ(hist["overflow"].asNumber(), 1);
}

TEST(StatsJson, FlattenProducesDottedRows)
{
    Fixture f;
    f.count += 4;
    f.nested = 9;
    f.hist.sample(12);

    std::map<std::string, double> flat;
    stats::flatten(f.root, flat);

    EXPECT_EQ(flat.at("root.count"), 4);
    EXPECT_EQ(flat.at("root.ratio"), 2);
    EXPECT_EQ(flat.at("root.child.nested"), 9);
    EXPECT_EQ(flat.at("root.child.hist.count"), 1);
    EXPECT_EQ(flat.at("root.child.hist.mean"), 12);
    EXPECT_EQ(flat.at("root.child.hist.bucket1"), 1);
    EXPECT_EQ(flat.count("root.child.hist.bucket0"), 0u);
    // Flatten agrees with the group's own lookup.
    EXPECT_EQ(flat.at("root.count"), f.root.lookup("count"));
    EXPECT_EQ(flat.at("root.child.nested"),
              f.root.lookup("child.nested"));
}

TEST(StatsJson, DumpIsDeterministic)
{
    Fixture f;
    f.count += 3;
    f.hist.sample(1);
    std::ostringstream a, b;
    stats::dumpJson(f.root, a);
    stats::dumpJson(f.root, b);
    EXPECT_EQ(a.str(), b.str());
}
