/**
 * @file
 * Tests for the paper's proposed protocol: each of Figures 1-9 as an
 * executable assertion, plus the lock mechanics (zero-time lock/unlock,
 * lock-waiter, busy-wait register, priority handoff, locked-block purge
 * fallback, RMW-via-lock-state, write-without-fetch).
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{
constexpr Addr X = 0x1000;    // a block address
constexpr Addr Y = 0x2000;    // another block
} // namespace

TEST(BitarFig1, ReadMissAloneFetchesWritePrivilege)
{
    Scenario s(opts("bitar"));
    s.run(0, rd(X));
    // No other cache signalled hit: write privilege, clean, source.
    EXPECT_EQ(s.state(0, X), WrSrcCln);
    // Subsequent write needs no bus access.
    double tx = s.system().bus().transactions.value();
    s.run(0, wr(X, 1));
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
    EXPECT_EQ(s.state(0, X), WrSrcDty);
}

TEST(BitarFig2, NoSourceReadSuppliedByMemoryKeepsReadPrivilege)
{
    Scenario s(opts("bitar"));
    // Put a read copy in cache 1 but remove source status (as if the
    // source purged the block): install directly.
    s.cache(1).installFrameForTest(X, Rd);
    double mem = s.system().bus().memSupplies.value();
    s.run(0, rd(X));
    // Hit line was raised, no source -> memory supplies; requester gets
    // read privilege and becomes the new source (LRU source).
    EXPECT_DOUBLE_EQ(s.system().bus().memSupplies.value(), mem + 1);
    EXPECT_EQ(s.state(0, X), RdSrcCln);
    EXPECT_EQ(s.state(1, X), Rd);
}

TEST(BitarFig3, NoSourceWriteSuppliedByMemoryInvalidatesOthers)
{
    Scenario s(opts("bitar"));
    s.cache(1).installFrameForTest(X, Rd);
    double mem = s.system().bus().memSupplies.value();
    s.run(0, wr(X, 7));
    EXPECT_DOUBLE_EQ(s.system().bus().memSupplies.value(), mem + 1);
    EXPECT_EQ(s.state(0, X), WrSrcDty);
    EXPECT_EQ(s.state(1, X), Inv);
}

TEST(BitarFig4, CacheToCacheTransferCarriesDirtyStatus)
{
    Scenario s(opts("bitar"));
    s.run(0, wr(X, 42));    // cache0: Write,Source,Dirty
    ASSERT_EQ(s.state(0, X), WrSrcDty);
    double c2c = s.system().bus().cacheSupplies.value();
    double flushes = s.system().memory().blockWrites.value();
    auto r = s.run(1, rd(X));
    EXPECT_EQ(r.value, 42u);
    // Source provided the block; dirty status travelled with it
    // (NF,S: no flush); the fetcher became the new source.
    EXPECT_DOUBLE_EQ(s.system().bus().cacheSupplies.value(), c2c + 1);
    EXPECT_DOUBLE_EQ(s.system().memory().blockWrites.value(), flushes);
    EXPECT_EQ(s.state(1, X), RdSrcDty);
    EXPECT_EQ(s.state(0, X), Rd);
}

TEST(BitarFig5, WriteHitWithReadPrivilegeRequestsPrivilegeOnly)
{
    Scenario s(opts("bitar"));
    s.run(0, wr(X, 1));
    s.run(1, rd(X));            // both now have read copies
    ASSERT_EQ(s.state(0, X), Rd);
    double data_cycles = s.system().bus().dataTransferCycles.value();
    double upgrades = s.system().bus().typeCount(BusReq::Upgrade);
    s.run(0, wr(X, 2));
    // One-cycle invalidation, no data moved (Figure 5).
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::Upgrade),
                     upgrades + 1);
    EXPECT_DOUBLE_EQ(s.system().bus().dataTransferCycles.value(),
                     data_cycles);
    EXPECT_EQ(s.state(0, X), WrSrcDty);
    EXPECT_EQ(s.state(1, X), Inv);
}

TEST(BitarFig6, LockRidesTheFetch)
{
    Scenario s(opts("bitar"));
    double tx_before = s.system().bus().transactions.value();
    auto r = s.run(0, lockRd(X));
    EXPECT_EQ(r.value, 0u);
    EXPECT_EQ(s.state(0, X), LkSrcDty);
    // Locking was concurrent with fetching: exactly one transaction.
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(),
                     tx_before + 1);
}

TEST(BitarFig6b, LockOnOwnedBlockIsZeroTime)
{
    Scenario s(opts("bitar"));
    s.run(0, wr(X, 5));    // Write,Source,Dirty
    double tx = s.system().bus().transactions.value();
    auto r = s.run(0, lockRd(X));
    EXPECT_EQ(r.value, 5u);
    EXPECT_EQ(s.state(0, X), LkSrcDty);
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
    EXPECT_DOUBLE_EQ(s.cache(0).zeroTimeLocks.value(), 1.0);
}

TEST(BitarFig7, RequestToLockedBlockBeginsBusyWait)
{
    Scenario s(opts("bitar"));
    s.run(0, lockRd(X));
    ASSERT_EQ(s.state(0, X), LkSrcDty);
    // Cache 1 requests the locked atom: the request is denied, the
    // locker records the waiter, the requester arms its register.
    AccessResult r;
    EXPECT_FALSE(s.tryRun(1, lockRd(X), &r));
    EXPECT_EQ(s.state(0, X), LkSrcDtyWt);
    EXPECT_TRUE(s.cache(1).busyWaitArmed());
    EXPECT_EQ(s.cache(1).busyWaitAddr(), X);
    // And it makes no further bus requests while waiting.
    double tx = s.system().bus().transactions.value();
    s.settle();
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
}

TEST(BitarFig8, UnlockSilentWithoutWaiterBroadcastWithWaiter)
{
    Scenario s(opts("bitar"));
    s.run(0, lockRd(X));
    double tx = s.system().bus().transactions.value();
    s.run(0, unlockWr(X, 1));
    // No waiter: zero-time unlock, no bus traffic.
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
    EXPECT_EQ(s.state(0, X), WrSrcDty);
    EXPECT_DOUBLE_EQ(s.cache(0).zeroTimeUnlocks.value(), 1.0);

    // Now with a waiter.
    s.run(0, lockRd(X));
    EXPECT_FALSE(s.tryRun(1, lockRd(X)));
    double bc = s.system().bus().typeCount(BusReq::UnlockBroadcast);
    s.run(0, unlockWr(X, 2));
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::UnlockBroadcast),
                     bc + 1);
}

TEST(BitarFig9, WinnerLocksWithWaiterStateAndInterrupts)
{
    Scenario s(opts("bitar"));
    s.run(0, lockRd(X));
    EXPECT_FALSE(s.tryRun(1, lockRd(X)));
    EXPECT_FALSE(s.tryRun(2, lockRd(X)));
    // Both waiters armed; locker carries the waiter state.
    EXPECT_EQ(s.state(0, X), LkSrcDtyWt);

    s.run(0, unlockWr(X, 9));
    // One waiter won, locked the block in lock-waiter state (since
    // another waiter probably remains), and its op completed.
    AccessResult r1, r2;
    bool done1 = s.pendingCompleted(1, &r1);
    bool done2 = s.pendingCompleted(2, &r2);
    EXPECT_TRUE(done1 != done2);    // exactly one winner
    unsigned winner = done1 ? 1 : 2;
    unsigned loser = done1 ? 2 : 1;
    EXPECT_EQ(s.state(winner, X), LkSrcDtyWt);
    EXPECT_EQ((done1 ? r1 : r2).value, 9u);
    // The loser stays quiet in its register.
    EXPECT_TRUE(s.cache(loser).busyWaitArmed());
    // High-priority arbitration was used.
    EXPECT_GE(s.system().bus().highPriorityGrants.value(), 1.0);
    // Zero unsuccessful retries anywhere (the paper's claim Q5).
    EXPECT_DOUBLE_EQ(s.cache(1).lockRetries.value(), 0.0);
    EXPECT_DOUBLE_EQ(s.cache(2).lockRetries.value(), 0.0);

    // Second unlock hands the lock to the remaining waiter.
    s.run(winner, unlockWr(X, 11));
    AccessResult rl;
    EXPECT_TRUE(s.pendingCompleted(loser, &rl));
    EXPECT_EQ(rl.value, 11u);
    EXPECT_FALSE(s.cache(loser).busyWaitArmed());
}

TEST(BitarLock, ChainedHandoffPreservesMutualExclusion)
{
    Scenario s(opts("bitar", 4));
    s.run(0, lockRd(X));
    EXPECT_FALSE(s.tryRun(1, lockRd(X)));
    EXPECT_FALSE(s.tryRun(2, lockRd(X)));
    EXPECT_FALSE(s.tryRun(3, lockRd(X)));
    s.run(0, unlockWr(X, 1));
    // Hand the lock down the chain; each holder unlocks in turn.
    for (int hop = 0; hop < 3; ++hop) {
        unsigned holder = 99;
        for (unsigned p = 1; p <= 3; ++p) {
            if (s.pendingCompleted(p) &&
                isLocked(s.state(p, X))) {
                holder = p;
                break;
            }
        }
        ASSERT_NE(holder, 99u);
        s.run(holder, unlockWr(X, Word(hop + 2)));
    }
    EXPECT_DOUBLE_EQ(s.system().checker().violationCount.value(), 0.0);
    // All three waiters eventually acquired.
    EXPECT_TRUE(s.pendingCompleted(1));
    EXPECT_TRUE(s.pendingCompleted(2));
    EXPECT_TRUE(s.pendingCompleted(3));
}

TEST(BitarLock, PlainReadDeniedByLockCompletesWithoutLocking)
{
    Scenario s(opts("bitar"));
    s.run(0, lockRd(X));
    AccessResult r;
    EXPECT_FALSE(s.tryRun(1, rd(X + 8), &r));    // same block, plain read
    EXPECT_EQ(s.state(0, X), LkSrcDtyWt);
    s.run(0, wr(X + 8, 77));                      // write inside CS
    s.run(0, unlockWr(X, 1));
    ASSERT_TRUE(s.pendingCompleted(1, &r));
    EXPECT_EQ(r.value, 77u);
    // A plain read must not re-lock the block.
    EXPECT_FALSE(isLocked(s.state(1, X)));
}

TEST(BitarRmw, CollapsesToZeroTimeOnOwnedBlock)
{
    Scenario s(opts("bitar"));
    s.run(0, wr(X, 3));
    double tx = s.system().bus().transactions.value();
    auto r = s.run(0, rmw(X, 1));
    EXPECT_EQ(r.value, 3u);
    EXPECT_EQ(s.cache(0).peekWord(X), 1u);
    EXPECT_EQ(s.state(0, X), WrSrcDty);
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
}

TEST(BitarRmw, ContendedRmwHandsOffThroughBusyWait)
{
    Scenario s(opts("bitar"));
    s.run(0, lockRd(X));
    AccessResult r;
    EXPECT_FALSE(s.tryRun(1, rmw(X, 5), &r));
    EXPECT_TRUE(s.cache(1).busyWaitArmed());
    s.run(0, unlockWr(X, 2));
    ASSERT_TRUE(s.pendingCompleted(1, &r));
    EXPECT_EQ(r.value, 2u);                  // read the unlocked value
    EXPECT_EQ(s.cache(1).peekWord(X), 5u);   // swap applied
    // The RMW released the lock (with a broadcast, since the waiter
    // state was preset).
    EXPECT_FALSE(isLocked(s.state(1, X)));
    EXPECT_GE(s.system().bus().typeCount(BusReq::UnlockBroadcast), 2.0);
}

TEST(BitarRmw, RmwInsideOwnCriticalSectionKeepsLock)
{
    Scenario s(opts("bitar"));
    s.run(0, lockRd(X));
    s.run(0, rmw(X + 8, 4));
    EXPECT_TRUE(isLocked(s.state(0, X)));
    s.run(0, unlockWr(X, 0));
    EXPECT_FALSE(isLocked(s.state(0, X)));
}

TEST(BitarWnf, WriteNoFetchClaimsWithoutData)
{
    Scenario s(opts("bitar"));
    s.run(0, wr(X, 1));
    s.run(0, wr(X + 8, 2));    // dirty block in cache 0
    double supplies = s.system().bus().cacheSupplies.value() +
                      s.system().bus().memSupplies.value();
    s.run(1, wnf(X, 9));
    EXPECT_DOUBLE_EQ(s.system().bus().cacheSupplies.value() +
                         s.system().bus().memSupplies.value(),
                     supplies);
    EXPECT_EQ(s.state(1, X), WrSrcDty);
    EXPECT_EQ(s.state(0, X), Inv);
    EXPECT_EQ(s.cache(1).peekWord(X), 9u);
    EXPECT_EQ(s.cache(1).peekWord(X + 8), 0u);    // claimed fresh
}

TEST(BitarPurge, LockedBlockPurgeMovesLockToMemory)
{
    // Tiny cache: 2 frames, fully associative.  Victim selection avoids
    // locked frames while it can, so fill BOTH frames with locked
    // blocks; the next fetch must purge the LRU locked block (X).
    Scenario s(opts("bitar", 2, 4, 2));
    s.run(0, lockRd(X));
    ASSERT_EQ(s.state(0, X), LkSrcDty);
    s.run(0, lockRd(X + 0x100));
    s.run(0, rd(Y));
    EXPECT_EQ(s.state(0, X), Inv);
    EXPECT_TRUE(s.system().memory().memLocked(X));
    EXPECT_EQ(s.system().memory().memLockHolder(X), 0);
    EXPECT_TRUE(s.cache(0).holdsPurgedLock(X));
    EXPECT_DOUBLE_EQ(s.cache(0).lockedPurges.value(), 1.0);

    // Another cache's fetch is refused and records a waiter in memory.
    AccessResult r;
    EXPECT_FALSE(s.tryRun(1, lockRd(X), &r));
    EXPECT_TRUE(s.system().memory().memWaiter(X));

    // The holder unlocks: it re-fetches as holder, the waiter bit moves
    // back into the cache state, and the unlock broadcasts.
    s.run(0, unlockWr(X, 33));
    EXPECT_FALSE(s.system().memory().memLocked(X));
    ASSERT_TRUE(s.pendingCompleted(1, &r));
    EXPECT_EQ(r.value, 33u);
    EXPECT_TRUE(isLocked(s.state(1, X)));
    EXPECT_DOUBLE_EQ(s.system().checker().violationCount.value(), 0.0);
}

TEST(BitarSource, LastFetcherBecomesSource)
{
    Scenario s(opts("bitar", 4));
    s.run(0, wr(X, 1));
    s.run(1, rd(X));
    EXPECT_TRUE(isSource(s.state(1, X)));
    EXPECT_FALSE(isSource(s.state(0, X)));
    s.run(2, rd(X));
    EXPECT_TRUE(isSource(s.state(2, X)));
    EXPECT_FALSE(isSource(s.state(1, X)));
    // cache2 supplied by cache1 (the then-source).
    EXPECT_DOUBLE_EQ(s.cache(1).blocksSupplied.value(), 1.0);
}

TEST(BitarSource, SourcePurgeFallsBackToMemory)
{
    // frames=2 so reading two more blocks purges X from cache 1.
    Scenario s(opts("bitar", 3, 4, 2));
    s.run(0, wr(X, 5));
    s.run(1, rd(X));            // cache1 becomes source (dirty travels)
    ASSERT_EQ(s.state(1, X), RdSrcDty);
    double flushes = s.system().memory().blockWrites.value();
    s.run(1, rd(Y));
    s.run(1, rd(Y + 0x1000));   // X evicted from cache1, flushed (dirty)
    EXPECT_GT(s.system().memory().blockWrites.value(), flushes);
    double mem = s.system().bus().memSupplies.value();
    auto r = s.run(2, rd(X));
    EXPECT_EQ(r.value, 5u);
    // cache0 still has a Read copy but is not the source: memory
    // supplies (Figure 2 / Feature 8 MEM fallback).
    EXPECT_DOUBLE_EQ(s.system().bus().memSupplies.value(), mem + 1);
}

TEST(BitarChecker, LockPairsTracked)
{
    Scenario s(opts("bitar"));
    s.run(0, lockRd(X));
    s.run(0, unlockWr(X, 1));
    EXPECT_DOUBLE_EQ(s.system().checker().lockPairs.value(), 1.0);
    EXPECT_DOUBLE_EQ(s.system().checker().violationCount.value(), 0.0);
}

TEST(BitarAblation, NormalPriorityStillCorrectJustSlower)
{
    // Section E.4 ablation: without the dedicated priority bit the
    // hand-off still works (losers re-arm correctly); only latency
    // under competing traffic suffers (measured in bench_sece4).
    Scenario::Options o;
    o.protocol = "bitar";
    o.processors = 3;
    o.collectTrace = false;
    Scenario s(o);
    s.system().cache(0).blocks();    // touch to ensure construction
    // Rebuild with the knob off is a System-level config; emulate by
    // asserting the default is on and the register path works either
    // way via a dedicated system below.
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = 3;
    cfg.cache.geom.frames = 16;
    cfg.cache.geom.blockWords = 4;
    cfg.cache.busyWaitPriority = false;
    System sys(cfg);
    AccessResult r0, r1;
    bool d0 = false, d1 = false;
    sys.cache(0).access(MemOp{OpType::LockRead, 0x1000, 0, false},
                        [&](const AccessResult &r) { r0 = r; d0 = true; });
    sys.eventq().run();
    ASSERT_TRUE(d0);
    sys.cache(1).access(MemOp{OpType::LockRead, 0x1000, 0, false},
                        [&](const AccessResult &r) { r1 = r; d1 = true; });
    sys.eventq().run();
    EXPECT_FALSE(d1);
    bool d_unlock = false;
    sys.cache(0).access(MemOp{OpType::UnlockWrite, 0x1000, 5, false},
                        [&](const AccessResult &) { d_unlock = true; });
    sys.eventq().run();
    EXPECT_TRUE(d_unlock);
    EXPECT_TRUE(d1);
    EXPECT_EQ(r1.value, 5u);
    EXPECT_DOUBLE_EQ(sys.bus().highPriorityGrants.value(), 0.0);
    EXPECT_EQ(sys.checker().violations(), 0u);
}
