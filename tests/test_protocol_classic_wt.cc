/**
 * @file
 * Tests for the classic pre-1978 write-through scheme (Section F.1):
 * every write goes through to memory and broadcasts an invalidation;
 * memory is always current; no cache-to-cache transfer.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{
constexpr Addr X = 0x1000;
} // namespace

TEST(ClassicWt, EveryWriteGoesToMemory)
{
    Scenario s(opts("classic_wt"));
    s.run(0, rd(X));
    for (int i = 1; i <= 3; ++i) {
        s.run(0, wr(X, Word(i)));
        EXPECT_EQ(s.system().memory().readWord(X), Word(i));
    }
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::WriteWord), 3.0);
}

TEST(ClassicWt, WriteInvalidatesOtherCopies)
{
    Scenario s(opts("classic_wt"));
    s.run(0, rd(X));
    s.run(1, rd(X));
    s.run(2, rd(X));
    s.run(0, wr(X, 5));
    EXPECT_EQ(s.state(1, X), Inv);
    EXPECT_EQ(s.state(2, X), Inv);
    EXPECT_EQ(s.state(0, X), Rd);    // own copy stays valid
    EXPECT_EQ(s.cache(0).peekWord(X), 5u);
}

TEST(ClassicWt, WriteMissDoesNotAllocate)
{
    Scenario s(opts("classic_wt"));
    s.run(0, wr(X, 9));
    EXPECT_EQ(s.state(0, X), Inv);
    EXPECT_EQ(s.system().memory().readWord(X), 9u);
}

TEST(ClassicWt, MemoryAlwaysSupplies)
{
    Scenario s(opts("classic_wt"));
    s.run(0, rd(X));
    double c2c = s.system().bus().cacheSupplies.value();
    s.run(1, rd(X));
    EXPECT_DOUBLE_EQ(s.system().bus().cacheSupplies.value(), c2c);
    EXPECT_GE(s.system().bus().memSupplies.value(), 2.0);
}

TEST(ClassicWt, EvictionIsSilent)
{
    Scenario s(opts("classic_wt", 3, 4, 2));
    s.run(0, rd(X));
    s.run(0, wr(X, 1));
    double wb = s.cache(0).writebacks.value();
    s.run(0, rd(0x2000));
    s.run(0, rd(0x3000));
    EXPECT_DOUBLE_EQ(s.cache(0).writebacks.value(), wb);
}

TEST(ClassicWt, PingPongCoherent)
{
    Scenario s(opts("classic_wt"));
    for (int i = 0; i < 20; ++i) {
        unsigned p = i % 3;
        s.run(p, wr(X, Word(i + 1)));
        auto r = s.run((p + 1) % 3, rd(X));
        EXPECT_EQ(r.value, Word(i + 1));
    }
    EXPECT_DOUBLE_EQ(s.system().checker().violationCount.value(), 0.0);
    EXPECT_EQ(s.system().checkStateInvariants(), 0u);
}

TEST(ClassicWt, HighWriteTrafficCost)
{
    // The motivation for write-in (Section D): write-through pays a bus
    // transaction for every write.
    Scenario s(opts("classic_wt"));
    s.run(0, rd(X));
    double tx = s.system().bus().transactions.value();
    for (int i = 0; i < 10; ++i)
        s.run(0, wr(X, Word(i)));
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx + 10);
}
