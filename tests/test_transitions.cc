/**
 * @file
 * Tests for the Figure 10 transition enumerator: the arcs observed from
 * live systems must include the paper's named transitions and never an
 * arc the figure calls a bug.
 */

#include <gtest/gtest.h>

#include "coherence/protocol.hh"
#include "core/transitions.hh"

using namespace csync;

namespace
{

bool
hasArc(const std::vector<Transition> &arcs, State from, State to,
       bool proc_side, const std::string &label_substr)
{
    for (const auto &t : arcs) {
        if (t.from == from && t.to == to &&
            t.processorSide == proc_side &&
            t.label.find(label_substr) != std::string::npos) {
            return true;
        }
    }
    return false;
}

} // namespace

TEST(Transitions, BitarCoversThePaperArcs)
{
    auto arcs = enumerateTransitions("bitar");
    ASSERT_FALSE(arcs.empty());

    // Figure 1: read miss, no other copy -> Write,Source,Clean.
    EXPECT_TRUE(hasArc(arcs, Inv, WrSrcCln, true, "Read : ReadShared : I"));
    // Figure 2: read miss, copies but no source -> Read,Source,Clean.
    EXPECT_TRUE(
        hasArc(arcs, Inv, RdSrcCln, true, "Read : ReadShared : R(no-src)"));
    // Figure 4: read miss with a source -> Read,Source (status travels).
    EXPECT_TRUE(
        hasArc(arcs, Inv, RdSrcCln, true, "Read : ReadShared : R(src)"));
    EXPECT_TRUE(
        hasArc(arcs, Inv, RdSrcDty, true, "Read : ReadShared : W.D"));
    // Figure 5: write hit on a read copy -> one-cycle upgrade.
    EXPECT_TRUE(hasArc(arcs, Rd, WrSrcDty, true, "Write : Upgrade"));
    // Figure 6: lock rides the fetch.
    EXPECT_TRUE(
        hasArc(arcs, Inv, LkSrcDty, true, "LockRead : ReadLock"));
    // Zero-time lock on an owned block (no bus request at all).
    EXPECT_TRUE(hasArc(arcs, WrSrcDty, LkSrcDty, true, "LockRead : -"));
    // Zero-time unlock without waiter.
    EXPECT_TRUE(
        hasArc(arcs, LkSrcDty, WrSrcDty, true, "UnlockWrite : -"));
    // Unlock with waiter broadcasts.
    EXPECT_TRUE(hasArc(arcs, LkSrcDtyWt, WrSrcDty, true,
                       "UnlockWrite : UnlockBroadcast"));
    // Silent write on a clean owned block.
    EXPECT_TRUE(hasArc(arcs, WrSrcCln, WrSrcDty, true, "Write : -"));
}

TEST(Transitions, BitarBusSideArcs)
{
    auto arcs = enumerateTransitions("bitar");
    // Snooped read takes our source status away (last fetcher wins).
    EXPECT_TRUE(hasArc(arcs, WrSrcDty, Rd, false, "ReadShared"));
    EXPECT_TRUE(hasArc(arcs, RdSrcCln, Rd, false, "ReadShared"));
    // Snooped write/lock invalidates.
    EXPECT_TRUE(hasArc(arcs, Rd, Inv, false, "ReadExclusive"));
    EXPECT_TRUE(hasArc(arcs, WrSrcDty, Inv, false, "ReadLock"));
    // A lock request against our locked block records the waiter.
    EXPECT_TRUE(hasArc(arcs, LkSrcDty, LkSrcDtyWt, false, "ReadLock"));
}

TEST(Transitions, BitarNeverProducesIllegalStates)
{
    auto arcs = enumerateTransitions("bitar");
    auto proto = makeProtocol("bitar");
    auto legal = proto->statesUsed();
    for (const auto &t : arcs) {
        EXPECT_NE(std::find(legal.begin(), legal.end(), t.to),
                  legal.end())
            << "illegal state " << stateName(t.to) << " via " << t.label;
    }
}

TEST(Transitions, RenderMentionsLabelsAndNotes)
{
    auto arcs = enumerateTransitions("bitar");
    std::string out = renderTransitions(arcs, "bitar");
    EXPECT_NE(out.find("Processor-induced arcs"), std::string::npos);
    EXPECT_NE(out.find("Bus-induced"), std::string::npos);
    EXPECT_NE(out.find("busy wait"), std::string::npos);
    EXPECT_NE(out.find("Lock,Source,Dirty,Waiter"), std::string::npos);
}

TEST(Transitions, WorksForClassicMesiToo)
{
    auto arcs = enumerateTransitions("illinois");
    EXPECT_TRUE(hasArc(arcs, Inv, WrSrcCln, true, "Read : ReadShared : I"));
    EXPECT_TRUE(hasArc(arcs, Inv, Rd, true, "Read : ReadShared : R"));
    EXPECT_TRUE(hasArc(arcs, WrSrcCln, WrSrcDty, true, "Write : -"));
    EXPECT_TRUE(hasArc(arcs, Rd, Inv, false, "ReadExclusive"));
}
