/**
 * @file
 * Golden-trace replay: the committed csync-mc replay document
 * (tests/golden/mc_trace.json) must round-trip through the JSON wire
 * format and re-replay byte-identically — same serialized trace, same
 * serialized verdict.  Any engine change that shifts the outcome of the
 * recorded ops shows up as a diff here before it reaches CI.
 */

#include <gtest/gtest.h>

#include "harness/campaign_io.hh"
#include "harness/json.hh"
#include "system/replay.hh"

using namespace csync;

#ifndef CSYNC_GOLDEN_DIR
#error "CSYNC_GOLDEN_DIR must point at tests/golden"
#endif

namespace
{

harness::Json
loadGolden()
{
    std::string text, err;
    const std::string path = std::string(CSYNC_GOLDEN_DIR) + "/mc_trace.json";
    EXPECT_TRUE(harness::readFile(path, &text, &err)) << err;
    harness::Json doc = harness::Json::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    return doc;
}

} // anonymous namespace

TEST(McReplayGolden, TraceRoundTripsByteIdentically)
{
    harness::Json doc = loadGolden();
    ASSERT_TRUE(doc.has("trace"));

    DirectedTrace trace;
    std::string err;
    ASSERT_TRUE(traceFromJson(doc["trace"], &trace, &err)) << err;
    EXPECT_EQ(traceToJson(trace).dump(2), doc["trace"].dump(2));
}

TEST(McReplayGolden, ReplayReproducesRecordedVerdict)
{
    harness::Json doc = loadGolden();
    ASSERT_TRUE(doc.has("trace"));
    ASSERT_TRUE(doc.has("result"));

    DirectedTrace trace;
    std::string err;
    ASSERT_TRUE(traceFromJson(doc["trace"], &trace, &err)) << err;

    ReplayVerdict v = replayTrace(trace);
    EXPECT_EQ(verdictToJson(v).dump(2), doc["result"].dump(2));
    EXPECT_TRUE(v.clean()) << v.describe();
}

TEST(McReplayGolden, ReplayIsDeterministicAcrossRuns)
{
    harness::Json doc = loadGolden();
    DirectedTrace trace;
    std::string err;
    ASSERT_TRUE(traceFromJson(doc["trace"], &trace, &err)) << err;

    TraceReplayer a(trace);
    TraceReplayer b(trace);
    for (const DirectedOp &op : trace.ops) {
        a.step(op);
        b.step(op);
    }
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(verdictToJson(a.verdict()).dump(0),
              verdictToJson(b.verdict()).dump(0));
}

TEST(McReplayGolden, RecordedOpsMatchWhatWasFed)
{
    harness::Json doc = loadGolden();
    DirectedTrace trace;
    std::string err;
    ASSERT_TRUE(traceFromJson(doc["trace"], &trace, &err)) << err;

    TraceReplayer r(trace);
    for (const DirectedOp &op : trace.ops)
        r.step(op);
    // recorded() is the replayable transcript the explorer serializes.
    EXPECT_EQ(traceToJson(r.recorded()).dump(2), doc["trace"].dump(2));
}
