/**
 * @file
 * Tests for the streaming campaign journal: stable content-hashed job
 * IDs, the deterministic shard partition, journal round trips and
 * torn-tail tolerance, and the finalize step that makes a resumed or
 * merged campaign byte-identical to an uninterrupted run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>

#include "harness/campaign_io.hh"
#include "harness/journal.hh"

using namespace csync;
using namespace csync::harness;

namespace
{

SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.name = "journal-test";
    spec.protocols = {"bitar", "illinois"};
    spec.workloads = {"random_sharing", "migration"};
    spec.processorCounts = {2};
    spec.seeds = {1, 2};
    spec.opsPerProcessor = 150;
    return spec;
}

std::vector<JobSpec>
smallGrid()
{
    std::vector<JobSpec> jobs;
    std::string err;
    EXPECT_TRUE(smallSpec().expand(&jobs, &err)) << err;
    return jobs;
}

/** A scratch file removed when the test ends. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(testing::TempDir() + name)
    {
        std::remove(path_.c_str());
    }
    ~TempPath() { std::remove(path_.c_str()); }
    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(JobId, StableAndUniqueAcrossTheGrid)
{
    auto jobs = smallGrid();
    std::set<std::string> ids;
    for (const auto &job : jobs) {
        std::string id = jobId(job);
        EXPECT_EQ(id.size(), 16u);
        EXPECT_EQ(id.find_first_not_of("0123456789abcdef"),
                  std::string::npos)
            << id;
        EXPECT_EQ(id, jobId(job)); // pure function of the spec
        ids.insert(id);
    }
    EXPECT_EQ(ids.size(), jobs.size());
}

TEST(JobId, FingerprintCoversTheFaultPlan)
{
    auto jobs = smallGrid();
    JobSpec faulted = jobs[0];
    faulted.config.fault.rate = 0.01;
    faulted.config.fault.seed = 7;
    EXPECT_NE(jobId(jobs[0]), jobId(faulted));
    EXPECT_NE(jobFingerprint(jobs[0]), jobFingerprint(faulted));
}

TEST(Shard, PartitionCoversEveryJobExactlyOnce)
{
    auto jobs = smallGrid();
    for (unsigned count : {1u, 2u, 3u}) {
        for (const auto &job : jobs) {
            unsigned owners = 0;
            for (unsigned i = 0; i < count; ++i) {
                Shard s;
                s.index = i;
                s.count = count;
                owners += shardContains(s, jobId(job)) ? 1 : 0;
            }
            EXPECT_EQ(owners, 1u) << job.name << " count=" << count;
        }
    }
}

TEST(Shard, ParseAcceptsAndRejects)
{
    Shard s;
    std::string err;
    ASSERT_TRUE(parseShard("2/4", &s, &err)) << err;
    EXPECT_EQ(s.index, 1u);
    EXPECT_EQ(s.count, 4u);
    EXPECT_EQ(s.str(), "2/4");
    EXPECT_FALSE(s.whole());

    for (const char *bad : {"0/4", "5/4", "x/4", "1/", "/4", "1",
                            "1/0", "1/4x"}) {
        EXPECT_FALSE(parseShard(bad, &s, &err)) << bad;
        EXPECT_FALSE(err.empty());
    }
}

TEST(Journal, RoundTripsHeaderAndRows)
{
    auto jobs = smallGrid();
    TempPath path("journal_roundtrip.jsonl");

    JournalHeader header;
    header.name = "journal-test";
    header.spec = smallSpec().toJson();
    header.jobs = jobs.size();
    header.shard = "1/2";

    JournalWriter writer;
    std::string err;
    ASSERT_TRUE(writer.create(path.str(), header, &err)) << err;
    JobResult row = rowForSpec(jobs[0]);
    row.ticks = 1234;
    row.memOps = 600;
    row.wallMs = 3.5;
    row.stats["system.bus.transactions"] = 42;
    ASSERT_TRUE(writer.add(jobId(jobs[0]), row, &err)) << err;
    writer.close();

    JournalData data;
    ASSERT_TRUE(loadJournal(path.str(), &data, &err)) << err;
    EXPECT_FALSE(data.truncatedTail);
    EXPECT_EQ(data.header.name, "journal-test");
    EXPECT_EQ(data.header.jobs, jobs.size());
    EXPECT_EQ(data.header.shard, "1/2");
    EXPECT_EQ(data.header.spec.dump(-1), header.spec.dump(-1));
    ASSERT_EQ(data.byId.size(), 1u);
    const JobResult &back = data.byId.begin()->second;
    EXPECT_EQ(back.name, row.name);
    EXPECT_EQ(back.ticks, row.ticks);
    EXPECT_EQ(back.topology, row.topology);
    EXPECT_EQ(back.stats, row.stats);
}

TEST(Journal, TornTrailingLineIsDroppedButMiddleCorruptionIsNot)
{
    auto jobs = smallGrid();
    TempPath path("journal_torn.jsonl");

    JournalHeader header;
    header.name = "torn";
    header.spec = smallSpec().toJson();
    header.jobs = jobs.size();
    JournalWriter writer;
    std::string err;
    ASSERT_TRUE(writer.create(path.str(), header, &err)) << err;
    ASSERT_TRUE(writer.add(jobId(jobs[0]), rowForSpec(jobs[0]), &err));
    ASSERT_TRUE(writer.add(jobId(jobs[1]), rowForSpec(jobs[1]), &err));
    writer.close();

    // What a SIGKILL mid-append leaves behind: a partial last line.
    {
        std::ofstream app(path.str(),
                          std::ios::binary | std::ios::app);
        app << "{\"job_id\":\"deadbeef\",\"row\":{\"na";
    }
    JournalData data;
    ASSERT_TRUE(loadJournal(path.str(), &data, &err)) << err;
    EXPECT_TRUE(data.truncatedTail);
    EXPECT_EQ(data.byId.size(), 2u);

    // Corruption anywhere else is an error, not a silent drop.
    {
        std::ofstream out(path.str(),
                          std::ios::binary | std::ios::trunc);
        out << "{\"csync_journal\":1,\"name\":\"x\",\"spec\":{},"
               "\"jobs\":1}\n";
        out << "not json\n";
        out << "{\"job_id\":\"aa\",\"row\":{\"name\":\"j\","
               "\"status\":\"ok\"}}\n";
    }
    EXPECT_FALSE(loadJournal(path.str(), &data, &err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Journal, FinalizeIsAPureFunctionOfTheSimulations)
{
    auto jobs = smallGrid();
    CampaignRunner::Options serial;
    serial.jobs = 1;
    CampaignRunner::Options pool;
    pool.jobs = 4;
    CampaignResult a = CampaignRunner().run(jobs, serial);
    CampaignResult b = CampaignRunner().run(jobs, pool);

    auto collect = [&](const CampaignResult &r) {
        std::map<std::string, JobResult> by_id;
        for (std::size_t i = 0; i < jobs.size(); ++i)
            by_id[jobId(jobs[i])] = r.rows[i];
        return by_id;
    };
    Json spec_json = smallSpec().toJson();
    std::vector<std::string> missing;
    CampaignResult fa = finalizeCampaign("t", spec_json, jobs,
                                         collect(a), &missing);
    CampaignResult fb = finalizeCampaign("t", spec_json, jobs,
                                         collect(b), &missing);
    EXPECT_TRUE(missing.empty());
    ASSERT_EQ(fa.rows.size(), jobs.size());
    // Byte-identical documents despite different worker counts and
    // host timings: finalize zeroes what the host contributed.
    EXPECT_EQ(campaignToJson(fa).dump(0), campaignToJson(fb).dump(0));
    for (const auto &row : fa.rows) {
        EXPECT_EQ(row.wallMs, 0.0);
        EXPECT_EQ(row.hostMops, 0.0);
    }
}

TEST(Journal, ShardedRunsMergeIntoTheWholeCampaign)
{
    auto jobs = smallGrid();
    Json spec_json = smallSpec().toJson();

    // The whole campaign in one go...
    std::map<std::string, JobResult> whole;
    CampaignResult all = CampaignRunner().run(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        whole[jobId(jobs[i])] = all.rows[i];
    std::vector<std::string> missing;
    CampaignResult ref = finalizeCampaign("t", spec_json, jobs, whole,
                                          &missing);

    // ...and as two disjoint shards, merged.
    std::map<std::string, JobResult> merged;
    for (unsigned i = 0; i < 2; ++i) {
        Shard s;
        s.index = i;
        s.count = 2;
        std::vector<JobSpec> slice;
        for (const auto &job : jobs) {
            if (shardContains(s, jobId(job)))
                slice.push_back(job);
        }
        EXPECT_FALSE(slice.empty());
        CampaignResult part = CampaignRunner().run(slice);
        for (std::size_t j = 0; j < slice.size(); ++j)
            merged[jobId(slice[j])] = part.rows[j];
    }
    CampaignResult joined = finalizeCampaign("t", spec_json, jobs,
                                             merged, &missing);
    EXPECT_TRUE(missing.empty());
    EXPECT_EQ(campaignToJson(ref).dump(0),
              campaignToJson(joined).dump(0));
}

TEST(Journal, FinalizeReportsMissingJobsInGridOrder)
{
    auto jobs = smallGrid();
    std::map<std::string, JobResult> by_id;
    by_id[jobId(jobs[1])] = rowForSpec(jobs[1]);
    std::vector<std::string> missing;
    CampaignResult final = finalizeCampaign("t", Json(), jobs, by_id,
                                            &missing);
    EXPECT_EQ(final.rows.size(), 1u);
    ASSERT_EQ(missing.size(), jobs.size() - 1);
    EXPECT_EQ(missing[0], jobs[0].name);
}
