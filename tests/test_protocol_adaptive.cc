/**
 * @file
 * Behavioural tests for the adaptive hybrid update/invalidate decorator
 * (coherence/adaptive.hh): per-block counter saturation, the
 * update→invalidate→update mode-switch hysteresis, and observational
 * equivalence to the pure parent protocol when a threshold of 0 pins
 * every block to one extreme.
 */

#include <gtest/gtest.h>

#include "coherence/adaptive.hh"
#include "system/replay.hh"

using namespace csync;

namespace
{

constexpr Addr kBlk = 0x1000;

DirectedTrace
shape(const std::string &protocol, unsigned bits, unsigned inv_thresh,
      unsigned upd_thresh)
{
    DirectedTrace t;
    t.protocol = protocol;
    t.processors = 2;
    t.blockWords = 4;
    t.frames = 4;
    t.ways = 1;
    t.adaptiveBits = bits;
    t.adaptiveInvalidateThreshold = inv_thresh;
    t.adaptiveUpdateThreshold = upd_thresh;
    return t;
}

DirectedOp
op(unsigned cache, DirectedKind kind, Word value = 0)
{
    DirectedOp o;
    o.cache = cache;
    o.kind = kind;
    o.addr = kBlk;
    o.value = value;
    return o;
}

/** The adaptive decorator running inside @p cache of @p r. */
AdaptiveProtocol &
adaptiveOf(TraceReplayer &r, unsigned cache)
{
    return dynamic_cast<AdaptiveProtocol &>(r.system().cache(cache).protocol());
}

} // namespace

TEST(AdaptiveProtocol, VariantsStartInTheirInitialMode)
{
    auto du = makeProtocol("adaptive_du");
    auto *adu = dynamic_cast<AdaptiveProtocol *>(du.get());
    ASSERT_NE(adu, nullptr);
    EXPECT_EQ(adu->modeOf(kBlk), AdaptiveMode::Update);
    EXPECT_EQ(adu->inner().name(), "dragon");

    auto bi = makeProtocol("adaptive_bi");
    auto *abi = dynamic_cast<AdaptiveProtocol *>(bi.get());
    ASSERT_NE(abi, nullptr);
    EXPECT_EQ(abi->modeOf(kBlk), AdaptiveMode::Invalidate);
    EXPECT_EQ(abi->inner().name(), "berkeley");
}

TEST(AdaptiveProtocol, WastedUpdateRunFlipsBlockToInvalidateMode)
{
    TraceReplayer r(shape("adaptive_du", 2, 2, 2));
    // Both caches share the block; then cache 0 writes repeatedly with
    // no consumer in between — each broadcast is a wasted update.
    r.step(op(0, DirectedKind::Read));
    r.step(op(1, DirectedKind::Read));
    r.step(op(0, DirectedKind::Write, 0x11));
    EXPECT_EQ(adaptiveOf(r, 0).modeOf(kBlk), AdaptiveMode::Update)
        << "one wasted update is below the threshold (hysteresis)";
    r.step(op(0, DirectedKind::Write, 0x22));
    EXPECT_EQ(adaptiveOf(r, 0).modeOf(kBlk), AdaptiveMode::Invalidate)
        << "the second consecutive wasted update crosses the threshold";

    // In invalidate mode the next shared write kills the other copy
    // instead of updating it.
    EXPECT_TRUE(isValid(r.system().cache(1).stateOf(kBlk)));
    double upgrades_before = r.system().bus().typeCount(BusReq::Upgrade);
    r.step(op(0, DirectedKind::Write, 0x33));
    EXPECT_FALSE(isValid(r.system().cache(1).stateOf(kBlk)));
    EXPECT_EQ(r.system().bus().typeCount(BusReq::Upgrade),
              upgrades_before + 1);
    EXPECT_TRUE(r.verdict().clean()) << r.verdict().describe();
}

TEST(AdaptiveProtocol, BusRereadResetsTheWastedCounter)
{
    // The writer's counters can only observe the bus: a consumer whose
    // copy stays valid reads silently, but one that comes back *on the
    // bus* for the block proves the broadcasts have an audience.
    TraceReplayer r(shape("adaptive_du", 2, 2, 2));
    r.step(op(0, DirectedKind::Read));
    r.step(op(1, DirectedKind::Read));
    r.step(op(0, DirectedKind::Write, 0x11)); // wasted = 1
    r.step(op(1, DirectedKind::Evict));
    r.step(op(1, DirectedKind::Read));        // bus re-read: reset to 0
    r.step(op(0, DirectedKind::Write, 0x22)); // wasted = 1 again
    EXPECT_EQ(adaptiveOf(r, 0).modeOf(kBlk), AdaptiveMode::Update)
        << "a consumer re-fetching the block must keep it updating";
    EXPECT_TRUE(r.verdict().clean()) << r.verdict().describe();
}

TEST(AdaptiveProtocol, RemoteRereadRunFlipsBlockBackToUpdateMode)
{
    TraceReplayer r(shape("adaptive_bi", 2, 2, 3));
    r.step(op(0, DirectedKind::Read));
    r.step(op(1, DirectedKind::Read)); // rereads = 1 (cold share)
    // Invalidate mode: each write kills cache 1's copy, and each
    // re-read by cache 1 bumps cache 0's reread counter.
    r.step(op(0, DirectedKind::Write, 0x11));
    EXPECT_FALSE(isValid(r.system().cache(1).stateOf(kBlk)));
    r.step(op(1, DirectedKind::Read)); // rereads = 2
    EXPECT_EQ(adaptiveOf(r, 0).modeOf(kBlk), AdaptiveMode::Invalidate)
        << "two re-reads are below the threshold (hysteresis)";
    r.step(op(0, DirectedKind::Write, 0x22));
    r.step(op(1, DirectedKind::Read)); // rereads = 3: flip
    EXPECT_EQ(adaptiveOf(r, 0).modeOf(kBlk), AdaptiveMode::Update)
        << "readers keep coming back: broadcasting is cheaper";

    // In update mode the next write reaches cache 1's copy in place.
    r.step(op(0, DirectedKind::Write, 0x33));
    const Frame *f1 = r.system().cache(1).peekFrame(kBlk);
    ASSERT_NE(f1, nullptr);
    EXPECT_TRUE(isValid(f1->state));
    EXPECT_EQ(f1->data[0], 0x33u);
    EXPECT_TRUE(r.verdict().clean()) << r.verdict().describe();
}

TEST(AdaptiveProtocol, CountersSaturateAtTheirBitWidth)
{
    // 1-bit counters with an unreachable flip (threshold 0 = never):
    // any run of wasted updates pegs the counter at 1 instead of
    // wrapping back to 0.
    TraceReplayer r(shape("adaptive_du", 1, 0, 0));
    r.step(op(0, DirectedKind::Read));
    r.step(op(1, DirectedKind::Read));
    for (unsigned i = 0; i < 3; ++i)
        r.step(op(0, DirectedKind::Write, 0x10 + i));
    EXPECT_EQ(adaptiveOf(r, 0).modeOf(kBlk), AdaptiveMode::Update);
    // The snapshot exposes the pegged counter: "<blk>:U<wasted>/<rereads>;".
    EXPECT_EQ(adaptiveOf(r, 0).snapshotState(), "1000:U1/0;");
    EXPECT_TRUE(r.verdict().clean()) << r.verdict().describe();
}

namespace
{

/** Run the canonical sharing script against @p protocol. */
std::unique_ptr<TraceReplayer>
runScript(const DirectedTrace &t)
{
    auto r = std::make_unique<TraceReplayer>(t);
    r->step(op(0, DirectedKind::Read));
    r->step(op(1, DirectedKind::Read));
    r->step(op(0, DirectedKind::Write, 0x11));
    r->step(op(1, DirectedKind::Read));
    r->step(op(0, DirectedKind::Write, 0x22));
    r->step(op(1, DirectedKind::Write, 0x33));
    r->step(op(0, DirectedKind::Read));
    r->step(op(1, DirectedKind::Evict));
    r->step(op(0, DirectedKind::Write, 0x44));
    r->step(op(1, DirectedKind::Read));
    return r;
}

/** Expect identical architectural outcomes from two replays. */
void
expectEquivalent(TraceReplayer &a, TraceReplayer &b,
                 const std::string &label)
{
    EXPECT_TRUE(a.verdict().clean()) << label << ": "
                                     << a.verdict().describe();
    EXPECT_TRUE(b.verdict().clean()) << label << ": "
                                     << b.verdict().describe();
    for (unsigned i = 0; i < 2; ++i) {
        EXPECT_EQ(a.system().cache(i).stateOf(kBlk),
                  b.system().cache(i).stateOf(kBlk))
            << label << ": cache " << i;
        const Frame *fa = a.system().cache(i).peekFrame(kBlk);
        const Frame *fb = b.system().cache(i).peekFrame(kBlk);
        if (fa && fb) {
            EXPECT_EQ(fa->data, fb->data) << label << ": cache " << i;
        }
    }
    EXPECT_EQ(a.system().memory().peekBlock(kBlk),
              b.system().memory().peekBlock(kBlk)) << label;
    for (BusReq req : {BusReq::ReadShared, BusReq::ReadExclusive,
                       BusReq::UpdateWord, BusReq::Upgrade}) {
        EXPECT_EQ(a.system().bus().typeCount(req),
                  b.system().bus().typeCount(req))
            << label << ": " << busReqName(req);
    }
}

} // namespace

TEST(AdaptiveProtocol, PinnedUpdateModeMatchesPureDragon)
{
    // invalidateThreshold 0 pins every block to update mode: the
    // decorator must be observationally identical to its parent.
    auto adaptive = runScript(shape("adaptive_du", 2, 0, 2));
    auto dragon = runScript(shape("dragon", 2, 0, 2));
    expectEquivalent(*adaptive, *dragon, "adaptive_du vs dragon");
    EXPECT_EQ(adaptiveOf(*adaptive, 0).modeOf(kBlk),
              AdaptiveMode::Update);
}

TEST(AdaptiveProtocol, PinnedInvalidateModeMatchesPureBerkeley)
{
    // updateThreshold 0 pins every block to invalidate mode.
    auto adaptive = runScript(shape("adaptive_bi", 2, 2, 0));
    auto berkeley = runScript(shape("berkeley", 2, 2, 0));
    expectEquivalent(*adaptive, *berkeley, "adaptive_bi vs berkeley");
    EXPECT_EQ(adaptiveOf(*adaptive, 0).modeOf(kBlk),
              AdaptiveMode::Invalidate);
}
