/**
 * @file
 * Tests for the workload state machines and the lock drivers: correct op
 * sequences, spin behavior, trace parsing, and end-to-end runs on a live
 * system.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "proc/sync_ops.hh"
#include "proc/workloads/critical_section.hh"
#include "proc/workloads/migration.hh"
#include "proc/workloads/producer_consumer.hh"
#include "proc/workloads/random_sharing.hh"
#include "proc/workloads/service_queue.hh"
#include "proc/workloads/state_save.hh"
#include "proc/workloads/trace.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

SystemConfig
sysCfg(const std::string &proto, unsigned procs)
{
    SystemConfig cfg;
    cfg.protocol = proto;
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    return cfg;
}

} // namespace

TEST(LockDriver, TestAndSetRetriesOnBus)
{
    LockDriver d(LockAlg::TestAndSet);
    d.beginAcquire(0x1000);
    MemOp op;
    ASSERT_TRUE(d.acquireOp(op));
    EXPECT_EQ(op.type, OpType::Rmw);
    AccessResult fail{1, false};
    d.onResult(op, fail);
    EXPECT_FALSE(d.held());
    ASSERT_TRUE(d.acquireOp(op));
    EXPECT_EQ(op.type, OpType::Rmw);    // retries the RMW directly
    AccessResult ok{0, false};
    d.onResult(op, ok);
    EXPECT_TRUE(d.held());
    EXPECT_EQ(d.rmwAttempts(), 2u);
    EXPECT_EQ(d.releaseOp().type, OpType::Write);
}

TEST(LockDriver, TestTestSetSpinsLocally)
{
    LockDriver d(LockAlg::TestTestSet);
    d.beginAcquire(0x1000);
    MemOp op;
    ASSERT_TRUE(d.acquireOp(op));
    d.onResult(op, AccessResult{1, false});    // TAS failed
    ASSERT_TRUE(d.acquireOp(op));
    EXPECT_EQ(op.type, OpType::Read);          // spin read
    d.onResult(op, AccessResult{1, false});
    ASSERT_TRUE(d.acquireOp(op));
    EXPECT_EQ(op.type, OpType::Read);
    d.onResult(op, AccessResult{0, false});    // lock looks free
    ASSERT_TRUE(d.acquireOp(op));
    EXPECT_EQ(op.type, OpType::Rmw);           // re-try the TAS
    d.onResult(op, AccessResult{0, false});
    EXPECT_TRUE(d.held());
    EXPECT_EQ(d.spinReads(), 2u);
}

TEST(LockDriver, CacheLockWaitsForInterrupt)
{
    LockDriver d(LockAlg::CacheLock);
    d.beginAcquire(0x1000);
    MemOp op;
    ASSERT_TRUE(d.acquireOp(op));
    EXPECT_EQ(op.type, OpType::LockRead);
    AccessResult waiting;
    waiting.waiting = true;
    d.onResult(op, waiting);
    EXPECT_FALSE(d.held());
    EXPECT_FALSE(d.acquireOp(op));    // nothing to issue while waiting
    AccessResult acquired{5, false};
    d.onResult(op, acquired);
    EXPECT_TRUE(d.held());
    EXPECT_EQ(d.releaseOp().type, OpType::UnlockWrite);
}

TEST(TraceWorkload, ParsesTextFormat)
{
    std::istringstream in(
        "# a comment\n"
        "R 0x1000\n"
        "T 5\n"
        "W 0x1008 42\n"
        "A 0x1000 1\n"
        "P\n"
        "R 0x2000\n"
        "L 0x3000\n"
        "U 0x3000 0\n"
        "N 0x4000 7\n");
    auto entries = TraceWorkload::parse(in);
    ASSERT_EQ(entries.size(), 7u);
    EXPECT_EQ(entries[0].op.type, OpType::Read);
    EXPECT_EQ(entries[0].op.addr, 0x1000u);
    EXPECT_EQ(entries[1].think, 5u);
    EXPECT_EQ(entries[1].op.type, OpType::Write);
    EXPECT_EQ(entries[1].op.value, 42u);
    EXPECT_EQ(entries[2].op.type, OpType::Rmw);
    EXPECT_TRUE(entries[3].op.privateHint);
    EXPECT_EQ(entries[4].op.type, OpType::LockRead);
    EXPECT_EQ(entries[5].op.type, OpType::UnlockWrite);
    EXPECT_EQ(entries[6].op.type, OpType::WriteNoFetch);
}

TEST(TraceWorkload, RunsOnSystem)
{
    System sys(sysCfg("bitar", 1));
    std::vector<TraceEntry> tr = {
        {MemOp{OpType::Write, 0x1000, 11, false}, 0},
        {MemOp{OpType::Read, 0x1000, 0, false}, 2},
    };
    sys.addProcessor(std::make_unique<TraceWorkload>(tr));
    sys.start();
    sys.run();
    auto &wl =
        static_cast<TraceWorkload &>(sys.processor(0).workload());
    ASSERT_EQ(wl.results().size(), 2u);
    EXPECT_EQ(wl.results()[1].value, 11u);
}

TEST(ProducerConsumer, HandsOffAllItemsExactly)
{
    for (const char *proto : {"bitar", "illinois", "dragon"}) {
        System sys(sysCfg(proto, 2));
        ProducerConsumerParams p;
        p.items = 25;
        p.dataWords = 3;
        sys.addProcessor(std::make_unique<ProducerWorkload>(p));
        sys.addProcessor(std::make_unique<ConsumerWorkload>(p));
        sys.start();
        sys.run(2'000'000);
        ASSERT_TRUE(sys.allDone()) << proto;
        auto &cons =
            static_cast<ConsumerWorkload &>(sys.processor(1).workload());
        EXPECT_EQ(cons.valueErrors(), 0u) << proto;
        EXPECT_EQ(sys.checker().violations(), 0u) << proto;
    }
}

TEST(CriticalSection, CountersExactAcrossAlgorithms)
{
    struct Case
    {
        const char *proto;
        LockAlg alg;
    };
    for (Case c : {Case{"bitar", LockAlg::CacheLock},
                   Case{"bitar", LockAlg::TestTestSet},
                   Case{"bitar", LockAlg::TestAndSet},
                   Case{"illinois", LockAlg::TestTestSet},
                   Case{"berkeley", LockAlg::TestAndSet}}) {
        System sys(sysCfg(c.proto, 3));
        CriticalSectionParams p;
        p.iterations = 40;
        p.alg = c.alg;
        p.numLocks = 2;
        p.wordsPerCs = 2;
        for (unsigned i = 0; i < 3; ++i) {
            p.procId = i;
            sys.addProcessor(
                std::make_unique<CriticalSectionWorkload>(p));
        }
        sys.start();
        sys.run(10'000'000);
        ASSERT_TRUE(sys.allDone())
            << c.proto << "/" << lockAlgName(c.alg);
        EXPECT_EQ(sys.checker().violations(), 0u) << c.proto;
        // Sum of guarded counters == total increments issued.
        Word sum = 0;
        for (unsigned l = 0; l < p.numLocks; ++l)
            for (unsigned w = 0; w < p.wordsPerCs; ++w)
                sum += sys.checker().expectedValue(
                    CriticalSectionWorkload::dataWordAddr(p, l, w));
        EXPECT_EQ(sum, 3u * 40u * p.wordsPerCs)
            << c.proto << "/" << lockAlgName(c.alg);
    }
}

TEST(ServiceQueue, FifoIntegrityUnderContention)
{
    System sys(sysCfg("bitar", 4));
    ServiceQueueParams p;
    p.operations = 30;
    p.alg = LockAlg::CacheLock;
    for (unsigned i = 0; i < 4; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<ServiceQueueWorkload>(
            p, i < 2 ? QueueRole::Producer : QueueRole::Consumer));
    }
    sys.start();
    sys.run(20'000'000);
    ASSERT_TRUE(sys.allDone());
    for (unsigned i = 2; i < 4; ++i) {
        auto &wl = static_cast<ServiceQueueWorkload &>(
            sys.processor(i).workload());
        EXPECT_EQ(wl.orderErrors(), 0u);
        EXPECT_EQ(wl.completedOps(), 30u);
    }
    EXPECT_EQ(sys.checker().violations(), 0u);
}

TEST(Migration, ProcessStateFollowsTheToken)
{
    for (const char *proto : {"bitar", "illinois", "synapse"}) {
        System sys(sysCfg(proto, 3));
        MigrationParams p;
        p.rounds = 6;
        p.stateWords = 6;
        p.numProcs = 3;
        for (unsigned i = 0; i < 3; ++i) {
            p.procId = i;
            sys.addProcessor(std::make_unique<MigrationWorkload>(p));
        }
        sys.start();
        sys.run(5'000'000);
        ASSERT_TRUE(sys.allDone()) << proto;
        for (unsigned i = 0; i < 3; ++i) {
            auto &wl = static_cast<MigrationWorkload &>(
                sys.processor(i).workload());
            EXPECT_EQ(wl.valueErrors(), 0u) << proto;
        }
        EXPECT_EQ(sys.checker().violations(), 0u) << proto;
    }
}

TEST(StateSave, WriteNoFetchSavesFetches)
{
    auto run = [](bool wnf) {
        System sys(sysCfg("bitar", 2));
        StateSaveParams p;
        p.switches = 20;
        p.stateBlocks = 4;
        p.blockWords = 4;
        p.useWriteNoFetch = wnf;
        p.numProcs = 2;
        for (unsigned i = 0; i < 2; ++i) {
            p.procId = i;
            sys.addProcessor(std::make_unique<StateSaveWorkload>(p));
        }
        sys.start();
        sys.run(5'000'000);
        EXPECT_TRUE(sys.allDone());
        EXPECT_EQ(sys.checker().violations(), 0u);
        return sys.bus().cacheSupplies.value() +
               sys.bus().memSupplies.value();
    };
    double fetches_with = run(true);
    double fetches_without = run(false);
    EXPECT_LT(fetches_with, fetches_without);
}

TEST(RandomSharing, GeneratesMixWithinRegions)
{
    RandomSharingParams p;
    p.ops = 500;
    p.sharedFraction = 0.5;
    p.writeFraction = 0.5;
    p.procId = 1;
    RandomSharingWorkload wl(p);
    unsigned writes = 0, shared = 0;
    MemOp op;
    Tick think;
    while (wl.next(op, think) == NextStatus::Op) {
        if (op.type == OpType::Write)
            ++writes;
        if (op.addr < p.privateBase)
            ++shared;
        wl.onResult(op, AccessResult{});
    }
    EXPECT_NEAR(double(writes) / 500.0, 0.5, 0.1);
    EXPECT_NEAR(double(shared) / 500.0, 0.5, 0.1);
    EXPECT_TRUE(wl.done());
}
