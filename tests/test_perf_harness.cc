/**
 * @file
 * Unit tests for the bench harness: median math, monotonic timing,
 * document round-trip, and the comparison gate (pass, injected
 * slowdown, missing kernel, calibration normalization).
 */

#include <gtest/gtest.h>

#include "perf/bench_harness.hh"

using namespace csync;
using namespace csync::perf;

TEST(Median, OddAndEvenInputs)
{
    EXPECT_DOUBLE_EQ(median({}), 0.0);
    EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({10.0, 10.0, 1.0, 10.0}), 10.0);
}

TEST(BenchHarness, TimingIsMonotoneAndOpsPropagate)
{
    BenchHarness h;
    BenchOptions opts;
    opts.warmup = 1;
    opts.reps = 3;
    int calls = 0;
    KernelResult r = h.run("spin", [&calls]() -> std::uint64_t {
        ++calls;
        // Enough work to register on the steady clock.
        volatile std::uint64_t x = 1;
        for (int i = 0; i < 200000; ++i)
            x = x * 6364136223846793005ull + 1442695040888963407ull;
        return 1000;
    }, opts);

    EXPECT_EQ(calls, 4); // 1 warmup + 3 timed
    EXPECT_EQ(r.name, "spin");
    EXPECT_EQ(r.opsPerRep, 1000u);
    EXPECT_EQ(r.reps, 3u);
    EXPECT_GT(r.medianMs, 0.0);
    EXPECT_LE(r.minMs, r.medianMs);
    EXPECT_LE(r.medianMs, r.maxMs);
    EXPECT_GT(r.opsPerSec, 0.0);
    EXPECT_GT(r.nsPerOp, 0.0);
    // ops/sec and ns/op describe the same median repetition.
    EXPECT_NEAR(r.opsPerSec * r.nsPerOp, 1e9, 1e9 * 1e-9);
}

TEST(BenchHarness, PeakRssIsNonZeroOnSupportedPlatforms)
{
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_GT(peakRssKb(), 0u);
#endif
}

namespace
{

KernelResult
makeResult(const std::string &name, double ops_per_sec)
{
    KernelResult r;
    r.name = name;
    r.protocol = name == kCalibrationKernel ? "" : "bitar";
    r.workload = name == kCalibrationKernel ? "" : "random_sharing";
    r.procs = name == kCalibrationKernel ? 0 : 8;
    r.opsPerRep = 1000;
    r.reps = 5;
    r.medianMs = 1000.0 * 1000 / ops_per_sec;
    r.minMs = r.medianMs;
    r.maxMs = r.medianMs;
    r.opsPerSec = ops_per_sec;
    r.nsPerOp = 1e9 / ops_per_sec;
    return r;
}

} // namespace

TEST(BenchJson, RoundTripPreservesComparableFields)
{
    std::vector<KernelResult> in = {
        makeResult(kCalibrationKernel, 5e8),
        makeResult("bitar_random_sharing", 2.5e6),
    };
    BenchOptions opts;
    opts.warmup = 2;
    opts.reps = 7;
    harness::Json doc = benchToJson(in, "sim_core", "full", opts);
    EXPECT_EQ(int(doc["csync_bench"].asNumber()), kBenchVersion);
    EXPECT_EQ(doc["mode"].asString(), "full");

    // Through text and back, as the CLI does.
    std::string err;
    harness::Json parsed = harness::Json::parse(doc.dump(0), &err);
    ASSERT_TRUE(err.empty()) << err;

    std::vector<KernelResult> out;
    ASSERT_TRUE(benchFromJson(parsed, &out, &err)) << err;
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(out[i].name, in[i].name);
        EXPECT_EQ(out[i].protocol, in[i].protocol);
        EXPECT_EQ(out[i].workload, in[i].workload);
        EXPECT_EQ(out[i].procs, in[i].procs);
        EXPECT_EQ(out[i].opsPerRep, in[i].opsPerRep);
        EXPECT_EQ(out[i].reps, in[i].reps);
        EXPECT_DOUBLE_EQ(out[i].medianMs, in[i].medianMs);
        EXPECT_DOUBLE_EQ(out[i].opsPerSec, in[i].opsPerSec);
        EXPECT_DOUBLE_EQ(out[i].nsPerOp, in[i].nsPerOp);
    }
}

TEST(BenchJson, RejectsForeignAndVersionedDocuments)
{
    std::vector<KernelResult> out;
    std::string err;

    harness::Json not_bench = harness::Json::object();
    not_bench.set("csync_campaign", 1);
    EXPECT_FALSE(benchFromJson(not_bench, &out, &err));
    EXPECT_NE(err.find("csync_bench"), std::string::npos);

    harness::Json future = harness::Json::object();
    future.set("csync_bench", kBenchVersion + 1);
    future.set("kernels", harness::Json::array());
    EXPECT_FALSE(benchFromJson(future, &out, &err));
    EXPECT_NE(err.find("version"), std::string::npos);
}

TEST(BenchCompare, EqualRunsPass)
{
    std::vector<KernelResult> base = {
        makeResult(kCalibrationKernel, 5e8),
        makeResult("k1", 2e6),
        makeResult("k2", 3e6),
    };
    BenchCompareReport rep = compareBench(base, base);
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.normalized);
    EXPECT_EQ(rep.compared, 2u); // calibration itself is never gated
    EXPECT_EQ(rep.regressed, 0u);
    EXPECT_EQ(rep.missing, 0u);
}

TEST(BenchCompare, InjectedSlowdownFails)
{
    std::vector<KernelResult> base = {makeResult("k1", 2e6)};
    std::vector<KernelResult> slow = {makeResult("k1", 1e6)};
    BenchCompareOptions opts;
    opts.maxRegressPct = 25.0;
    BenchCompareReport rep = compareBench(base, slow, opts);
    EXPECT_FALSE(rep.ok);
    EXPECT_EQ(rep.regressed, 1u);
    EXPECT_NE(rep.text.find("REGRESS"), std::string::npos);

    // The same slowdown passes when tolerance is widened past it.
    opts.maxRegressPct = 60.0;
    EXPECT_TRUE(compareBench(base, slow, opts).ok);
}

TEST(BenchCompare, MissingKernelFails)
{
    std::vector<KernelResult> base = {
        makeResult("k1", 2e6),
        makeResult("k2", 3e6),
    };
    std::vector<KernelResult> cand = {makeResult("k1", 2e6)};
    BenchCompareReport rep = compareBench(base, cand);
    EXPECT_FALSE(rep.ok);
    EXPECT_EQ(rep.missing, 1u);
    EXPECT_EQ(rep.compared, 1u);
}

TEST(BenchCompare, CalibrationNormalizesMachineSpeed)
{
    // Candidate machine is uniformly half as fast: calibration and the
    // simulator kernel both halve, so the normalized comparison passes.
    std::vector<KernelResult> base = {
        makeResult(kCalibrationKernel, 5e8),
        makeResult("k1", 2e6),
    };
    std::vector<KernelResult> cand = {
        makeResult(kCalibrationKernel, 2.5e8),
        makeResult("k1", 1e6),
    };
    BenchCompareOptions opts;
    opts.maxRegressPct = 10.0;
    BenchCompareReport rep = compareBench(base, cand, opts);
    EXPECT_TRUE(rep.ok);
    EXPECT_TRUE(rep.normalized);

    // Without a calibration kernel the same halving is a raw 50%
    // regression and fails.
    std::vector<KernelResult> base_raw = {makeResult("k1", 2e6)};
    std::vector<KernelResult> cand_raw = {makeResult("k1", 1e6)};
    BenchCompareReport raw = compareBench(base_raw, cand_raw, opts);
    EXPECT_FALSE(raw.ok);
    EXPECT_FALSE(raw.normalized);
}
