/**
 * @file
 * Property tests (Section C.1 made executable): for EVERY protocol, under
 * randomized multiprocessor workloads,
 *
 *  1. every read returns the last serialized write (value checker),
 *  2. the structural invariants hold at completion (single writer,
 *     single source, single lock, copy agreement, memory agreement),
 *  3. the run terminates.
 *
 * Parameterized over (protocol × seed × geometry); RMW traffic is added
 * only for protocols whose Feature 6 claims serialized RMW.
 */

#include <gtest/gtest.h>

#include "proc/workloads/random_sharing.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct PropertyCase
{
    std::string protocol;
    std::uint64_t seed;
    unsigned procs;
    unsigned frames;
    unsigned ways;
    unsigned blockWords;
    unsigned transferWords = 0;
    bool invalidateSignal = true;
    unsigned wordsPerCycle = 1;
};

std::string
caseName(const ::testing::TestParamInfo<PropertyCase> &info)
{
    const auto &c = info.param;
    return c.protocol + "_s" + std::to_string(c.seed) + "_p" +
           std::to_string(c.procs) + "_f" + std::to_string(c.frames) +
           "_w" + std::to_string(c.ways) + "_b" +
           std::to_string(c.blockWords);
}

class CoherenceProperty : public ::testing::TestWithParam<PropertyCase>
{
};

std::vector<PropertyCase>
makeCases()
{
    std::vector<PropertyCase> cases;
    const char *protos[] = {"bitar",    "goodman",  "synapse",
                            "illinois", "yen",      "berkeley",
                            "dragon",   "firefly",  "rudolph_segall",
                            "classic_wt"};
    for (const char *p : protos) {
        // Roomy fully-associative cache.
        cases.push_back({p, 1, 4, 64, 0, 4});
        // Tight cache: heavy evictions and source purges.
        cases.push_back({p, 2, 3, 8, 0, 4});
        // Set-associative with conflict misses.
        cases.push_back({p, 3, 4, 16, 2, 4});
        // One-word blocks (Rudolph-Segall's native geometry).
        cases.push_back({p, 4, 4, 32, 0, 1});
        // Sub-block transfer units (Section D.3).
        cases.push_back({p, 5, 4, 16, 0, 8, 2});
        // Multibus-style bus: no invalidate-while-fetch signal.
        cases.push_back({p, 6, 3, 16, 0, 4, 0, false});
        // Wide bus, many processors.
        cases.push_back({p, 7, 7, 32, 0, 8, 0, true, 2});
    }
    return cases;
}

} // namespace

TEST_P(CoherenceProperty, RandomTrafficStaysCoherent)
{
    const auto &c = GetParam();
    SystemConfig cfg;
    cfg.protocol = c.protocol;
    cfg.numProcessors = c.procs;
    cfg.cache.geom.frames = c.frames;
    cfg.cache.geom.ways = c.ways;
    cfg.cache.geom.blockWords = c.blockWords;
    cfg.cache.geom.transferWords = c.transferWords;
    cfg.timing.invalidateDuringFetch = c.invalidateSignal;
    cfg.timing.wordsPerCycle = c.wordsPerCycle;
    System sys(cfg);

    auto features = makeProtocol(c.protocol)->features();
    for (unsigned i = 0; i < c.procs; ++i) {
        RandomSharingParams p;
        p.ops = 1500;
        p.procId = i;
        p.seed = c.seed * 1000 + i;
        p.sharedBlocks = 6;
        p.privateBlocks = 10;
        p.sharedFraction = 0.5;
        p.writeFraction = 0.35;
        p.rmwFraction = features.atomicRmw ? 0.05 : 0.0;
        p.privateHints = features.fetchUnsharedForWrite == 'S';
        p.blockBytes = Addr(c.blockWords) * bytesPerWord;
        sys.addProcessor(std::make_unique<RandomSharingWorkload>(p));
    }
    sys.start();
    sys.run(30'000'000);

    ASSERT_TRUE(sys.allDone()) << "workload did not terminate";
    EXPECT_EQ(sys.checker().violations(), 0u)
        << (sys.checker().violationLog().empty()
                ? std::string("?")
                : sys.checker().violationLog()[0]);
    std::string why;
    EXPECT_EQ(sys.checkStateInvariants(&why), 0u) << why;
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, CoherenceProperty,
                         ::testing::ValuesIn(makeCases()), caseName);
