/**
 * @file
 * Tests for I/O transfer (Section E.2, Feature 11): input invalidates
 * all cached copies while memory is written; paging-out fetches the
 * latest version with write privilege; non-paging output reads without
 * disturbing the source cache's status.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{

constexpr Addr X = 0x1000;

struct IOTest : public ::testing::Test
{
    SystemConfig cfg;
    std::unique_ptr<System> sys;

    void
    build(const std::string &proto)
    {
        cfg.protocol = proto;
        cfg.numProcessors = 2;
        cfg.cache.geom.frames = 16;
        cfg.cache.geom.blockWords = 4;
        cfg.withIODevice = true;
        sys = std::make_unique<System>(cfg);
    }

    AccessResult
    op(unsigned p, const MemOp &m)
    {
        AccessResult out;
        bool done = false;
        sys->cache(p).access(m, [&](const AccessResult &r) {
            out = r;
            done = true;
        });
        sys->eventq().run();
        EXPECT_TRUE(done);
        return out;
    }
};

} // namespace

TEST_F(IOTest, InputInvalidatesAllCopiesAndWritesMemory)
{
    build("bitar");
    op(0, rd(X));
    op(1, rd(X));
    bool done = false;
    sys->io()->input(X, {9, 8, 7, 6}, [&](const std::vector<Word> &) {
        done = true;
    });
    sys->eventq().run();
    EXPECT_TRUE(done);
    EXPECT_EQ(sys->cache(0).stateOf(X), Inv);
    EXPECT_EQ(sys->cache(1).stateOf(X), Inv);
    EXPECT_EQ(sys->memory().peekBlock(X), (std::vector<Word>{9, 8, 7, 6}));
    // Caches re-read the new data coherently.
    EXPECT_EQ(op(0, rd(X)).value, 9u);
    EXPECT_EQ(op(1, rd(X + 8)).value, 8u);
    EXPECT_EQ(sys->checker().violations(), 0u);
}

TEST_F(IOTest, PageOutFetchesLatestAndInvalidates)
{
    build("bitar");
    op(0, wr(X, 55));    // dirty in cache 0
    std::vector<Word> paged;
    sys->io()->pageOut(X, [&](const std::vector<Word> &d) { paged = d; });
    sys->eventq().run();
    ASSERT_EQ(paged.size(), 4u);
    EXPECT_EQ(paged[0], 55u);
    EXPECT_EQ(sys->cache(0).stateOf(X), Inv);
}

TEST_F(IOTest, NonPagingOutputKeepsSourceStatus)
{
    build("bitar");
    op(0, wr(X, 77));
    ASSERT_EQ(sys->cache(0).stateOf(X), WrSrcDty);
    std::vector<Word> out;
    sys->io()->output(X, [&](const std::vector<Word> &d) { out = d; });
    sys->eventq().run();
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 77u);
    // The source cache did not give up source status (Section E.2).
    EXPECT_EQ(sys->cache(0).stateOf(X), WrSrcDty);
}

TEST_F(IOTest, OutputFromMemoryWhenNoSource)
{
    build("bitar");
    sys->memory().writeBlock(X, {1, 2, 3, 4});
    std::vector<Word> out;
    sys->io()->output(X, [&](const std::vector<Word> &d) { out = d; });
    sys->eventq().run();
    EXPECT_EQ(out, (std::vector<Word>{1, 2, 3, 4}));
}

TEST_F(IOTest, QueuedOperationsRunInOrder)
{
    build("illinois");
    op(0, wr(X, 5));
    std::vector<int> order;
    sys->io()->pageOut(X, [&](const std::vector<Word> &) {
        order.push_back(1);
    });
    sys->io()->input(X, {0, 0, 0, 0}, [&](const std::vector<Word> &) {
        order.push_back(2);
    });
    sys->eventq().run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(sys->io()->idle());
}

TEST_F(IOTest, InputWorksAcrossProtocols)
{
    for (const char *proto :
         {"goodman", "synapse", "illinois", "berkeley", "dragon"}) {
        build(proto);
        op(0, rd(X));
        sys->io()->input(X, {4, 4, 4, 4}, nullptr);
        sys->eventq().run();
        EXPECT_EQ(sys->cache(0).stateOf(X), Inv) << proto;
        EXPECT_EQ(op(1, rd(X)).value, 4u) << proto;
    }
}

TEST_F(IOTest, LockedBlockMakesIORetry)
{
    build("bitar");
    op(0, MemOp{OpType::LockRead, X, 0, false});
    ASSERT_TRUE(isLocked(sys->cache(0).stateOf(X)));
    std::vector<Word> paged;
    sys->io()->pageOut(X, [&](const std::vector<Word> &d) { paged = d; });
    // The I/O processor retries while the lock is held (bounded runs:
    // its retry loop keeps the event queue alive).
    sys->eventq().run(sys->eventq().now() + 64);
    EXPECT_TRUE(paged.empty());
    EXPECT_GE(sys->io()->lockedRetries.value(), 1.0);

    // Release the lock; the next retry succeeds.
    bool done = false;
    sys->cache(0).access(wr(X, 9),
                         [&](const AccessResult &) { done = true; });
    sys->eventq().run(sys->eventq().now() + 50);
    ASSERT_TRUE(done);
    done = false;
    sys->cache(0).access(MemOp{OpType::UnlockWrite, X, 1, false},
                         [&](const AccessResult &) { done = true; });
    sys->eventq().run(sys->eventq().now() + 300);
    ASSERT_TRUE(done);
    ASSERT_EQ(paged.size(), 4u);
    EXPECT_EQ(paged[0], 1u);
    EXPECT_TRUE(sys->io()->idle());
}
