/**
 * @file
 * Tests for the `.ctrace` byte-level codec: little-endian scalars,
 * LEB128 varints (including truncated and over-long rejection), and
 * the per-kind event encoding round trip.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <limits>

#include "trace/format.hh"

using namespace csync;
using namespace csync::trace;

TEST(TraceFormat, ScalarsAreLittleEndian)
{
    std::string buf;
    putU32(buf, 0x11223344u);
    ASSERT_EQ(buf.size(), 4u);
    EXPECT_EQ(std::uint8_t(buf[0]), 0x44);
    EXPECT_EQ(std::uint8_t(buf[1]), 0x33);
    EXPECT_EQ(std::uint8_t(buf[2]), 0x22);
    EXPECT_EQ(std::uint8_t(buf[3]), 0x11);

    putU64(buf, 0x0102030405060708ull);
    std::size_t pos = 0;
    std::uint32_t v32 = 0;
    std::uint64_t v64 = 0;
    EXPECT_TRUE(getU32(buf, pos, &v32));
    EXPECT_EQ(v32, 0x11223344u);
    EXPECT_TRUE(getU64(buf, pos, &v64));
    EXPECT_EQ(v64, 0x0102030405060708ull);
    EXPECT_EQ(pos, buf.size());
}

TEST(TraceFormat, ScalarReadsRejectTruncation)
{
    std::string buf = "\x01\x02\x03"; // 3 bytes: not even a u32
    std::size_t pos = 0;
    std::uint32_t v32 = 0;
    std::uint64_t v64 = 0;
    EXPECT_FALSE(getU32(buf, pos, &v32));
    EXPECT_FALSE(getU64(buf, pos, &v64));
}

TEST(TraceFormat, VarintRoundTripsEdgeValues)
{
    const std::uint64_t values[] = {
        0, 1, 127, 128, 16383, 16384, 0xdeadbeefull,
        std::numeric_limits<std::uint64_t>::max(),
    };
    const std::size_t lengths[] = {1, 1, 1, 2, 2, 3, 5, 10};
    for (std::size_t i = 0; i < std::size(values); ++i) {
        std::string buf;
        putVarint(buf, values[i]);
        EXPECT_EQ(buf.size(), lengths[i]) << values[i];
        std::size_t pos = 0;
        std::uint64_t v = 0;
        ASSERT_TRUE(getVarint(buf, pos, &v)) << values[i];
        EXPECT_EQ(v, values[i]);
        EXPECT_EQ(pos, buf.size());
    }
}

TEST(TraceFormat, VarintRejectsTruncatedAndOverlong)
{
    // A continuation bit with no following byte.
    std::string truncated = "\x80";
    std::size_t pos = 0;
    std::uint64_t v = 0;
    EXPECT_FALSE(getVarint(truncated, pos, &v));

    // Eleven continuation bytes: longer than any u64 needs.
    std::string overlong(11, char(0x80));
    overlong += '\x01';
    pos = 0;
    EXPECT_FALSE(getVarint(overlong, pos, &v));
}

TEST(TraceFormat, EventCodecRoundTripsEveryKind)
{
    const TraceEvent events[] = {
        TraceEvent::compute(17),
        TraceEvent::read(0x2000040),
        TraceEvent::write(0x30001234),
        TraceEvent::lock(0x200000),
        TraceEvent::unlock(0x200000),
        TraceEvent::barrier(42, 8),
        TraceEvent::dep(3, 123456789ull),
    };
    std::string buf;
    for (const auto &ev : events)
        encodeEvent(buf, ev);
    std::size_t pos = 0;
    for (const auto &ev : events) {
        TraceEvent got;
        std::string err;
        ASSERT_TRUE(decodeEvent(buf, pos, &got, &err)) << err;
        EXPECT_EQ(got.kind, ev.kind);
        EXPECT_EQ(got.a, ev.a);
        EXPECT_EQ(got.b, ev.b);
    }
    EXPECT_EQ(pos, buf.size());
}

TEST(TraceFormat, DecodeEventRejectsUnknownKindAndTruncation)
{
    std::string bad;
    bad += char(kNumEventKinds); // first kind value out of range
    bad += '\x05';
    std::size_t pos = 0;
    TraceEvent ev;
    std::string err;
    EXPECT_FALSE(decodeEvent(bad, pos, &ev, &err));
    EXPECT_NE(err.find("unknown event kind"), std::string::npos) << err;

    std::string cut;
    encodeEvent(cut, TraceEvent::dep(1, 300));
    cut.resize(cut.size() - 1); // lop off the tail of the second operand
    pos = 0;
    err.clear();
    EXPECT_FALSE(decodeEvent(cut, pos, &ev, &err));
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
}

TEST(TraceFormat, EventKindNamesAreDistinct)
{
    EXPECT_STREQ(eventKindName(EventKind::Compute), "compute");
    EXPECT_STREQ(eventKindName(EventKind::Read), "read");
    EXPECT_STREQ(eventKindName(EventKind::Write), "write");
    EXPECT_STREQ(eventKindName(EventKind::Lock), "lock");
    EXPECT_STREQ(eventKindName(EventKind::Unlock), "unlock");
    EXPECT_STREQ(eventKindName(EventKind::Barrier), "barrier");
    EXPECT_STREQ(eventKindName(EventKind::Dep), "dep");
}
