/**
 * @file
 * Unit tests for logging: csprintf formatting, the trace facility, and
 * the panic path.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/logging.hh"

using namespace csync;

TEST(Logging, CsprintfFormats)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 7, "abc"), "x=7 y=abc");
    EXPECT_EQ(csprintf("%llx", 0xdeadbeefULL), "deadbeef");
    EXPECT_EQ(csprintf("plain"), "plain");
    // Long strings exceed any fixed stack buffer.
    std::string long_out = csprintf("%s", std::string(5000, 'a').c_str());
    EXPECT_EQ(long_out.size(), 5000u);
}

TEST(Logging, TraceFlagNames)
{
    EXPECT_STREQ(traceFlagName(TraceFlag::Bus), "Bus");
    EXPECT_STREQ(traceFlagName(TraceFlag::Lock), "Lock");
    EXPECT_STREQ(traceFlagName(TraceFlag::Checker), "Checker");
}

TEST(Logging, TraceSinkReceivesOnlyEnabledFlags)
{
    Trace::reset();
    std::vector<std::string> got;
    Trace::setSink([&](std::uint64_t, TraceFlag, const std::string &,
                       const std::string &what) { got.push_back(what); });
    Trace::setEnabled(TraceFlag::Bus, true);
    Trace::emit(1, TraceFlag::Bus, "bus", "visible");
    Trace::emit(2, TraceFlag::Cache, "cache", "hidden");
    EXPECT_EQ(got, (std::vector<std::string>{"visible"}));
    Trace::reset();
    Trace::emit(3, TraceFlag::Bus, "bus", "after reset");
    EXPECT_EQ(got.size(), 1u);
}

TEST(Logging, EnableAllCoversEveryFlag)
{
    Trace::reset();
    Trace::enableAll();
    for (unsigned i = 0; i < unsigned(TraceFlag::NumFlags); ++i)
        EXPECT_TRUE(Trace::enabled(TraceFlag(i)));
    Trace::reset();
    for (unsigned i = 0; i < unsigned(TraceFlag::NumFlags); ++i)
        EXPECT_FALSE(Trace::enabled(TraceFlag(i)));
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, SimAssertCarriesMessage)
{
    EXPECT_DEATH(sim_assert(1 == 2, "ctx %s", "info"),
                 "assertion '1 == 2' failed");
}

TEST(Logging, ThreadSinkDivertsOnlyThisThread)
{
    Trace::reset();
    Trace::setEnabled(TraceFlag::Bus, true);
    std::vector<std::string> global_got, thread_got;
    Trace::setSink([&](std::uint64_t, TraceFlag, const std::string &,
                       const std::string &what) {
        global_got.push_back(what);
    });
    {
        ScopedThreadTrace divert([&](std::uint64_t, TraceFlag,
                                     const std::string &,
                                     const std::string &what) {
            thread_got.push_back(what);
        });
        Trace::emit(1, TraceFlag::Bus, "bus", "diverted");
    }
    Trace::emit(2, TraceFlag::Bus, "bus", "global again");
    EXPECT_EQ(thread_got, (std::vector<std::string>{"diverted"}));
    EXPECT_EQ(global_got, (std::vector<std::string>{"global again"}));
    Trace::reset();
}

TEST(Logging, NullThreadSinkSwallowsOutput)
{
    Trace::reset();
    Trace::setEnabled(TraceFlag::Bus, true);
    std::vector<std::string> global_got;
    Trace::setSink([&](std::uint64_t, TraceFlag, const std::string &,
                       const std::string &what) {
        global_got.push_back(what);
    });
    {
        ScopedThreadTrace quiet(nullptr);
        Trace::emit(1, TraceFlag::Bus, "bus", "swallowed");
    }
    EXPECT_TRUE(global_got.empty());
    Trace::reset();
}

TEST(Logging, ConcurrentEmittersWithThreadSinksDoNotInterleave)
{
    Trace::reset();
    Trace::enableAll();
    constexpr unsigned kThreads = 4, kLines = 200;
    std::vector<std::vector<std::string>> got(kThreads);
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
        pool.emplace_back([&, t]() {
            ScopedThreadTrace mine([&, t](std::uint64_t, TraceFlag,
                                          const std::string &,
                                          const std::string &what) {
                got[t].push_back(what);
            });
            for (unsigned i = 0; i < kLines; ++i)
                Trace::emit(i, TraceFlag::Bus, "bus",
                            csprintf("t%u line %u", t, i));
        });
    }
    for (auto &t : pool)
        t.join();
    for (unsigned t = 0; t < kThreads; ++t) {
        ASSERT_EQ(got[t].size(), kLines);
        for (unsigned i = 0; i < kLines; ++i)
            EXPECT_EQ(got[t][i], csprintf("t%u line %u", t, i));
    }
    Trace::reset();
}

TEST(Logging, ScopedFatalThrowConvertsFatalToException)
{
    EXPECT_FALSE(ScopedFatalThrow::active());
    {
        ScopedFatalThrow guard;
        EXPECT_TRUE(ScopedFatalThrow::active());
        EXPECT_THROW(fatal("bad config %d", 9), FatalError);
        try {
            fatal("message %s", "carried");
        } catch (const FatalError &e) {
            EXPECT_STREQ(e.what(), "message carried");
        }
        {
            ScopedFatalThrow nested;
            EXPECT_TRUE(ScopedFatalThrow::active());
        }
        // Nested guards restore, not clear, the outer state.
        EXPECT_TRUE(ScopedFatalThrow::active());
    }
    EXPECT_FALSE(ScopedFatalThrow::active());
}

TEST(LoggingDeath, FatalExitsWithoutGuard)
{
    EXPECT_EXIT(fatal("plain fatal"), ::testing::ExitedWithCode(1),
                "plain fatal");
}
