/**
 * @file
 * Unit tests for logging: csprintf formatting, the trace facility, and
 * the panic path.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace csync;

TEST(Logging, CsprintfFormats)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 7, "abc"), "x=7 y=abc");
    EXPECT_EQ(csprintf("%llx", 0xdeadbeefULL), "deadbeef");
    EXPECT_EQ(csprintf("plain"), "plain");
    // Long strings exceed any fixed stack buffer.
    std::string long_out = csprintf("%s", std::string(5000, 'a').c_str());
    EXPECT_EQ(long_out.size(), 5000u);
}

TEST(Logging, TraceFlagNames)
{
    EXPECT_STREQ(traceFlagName(TraceFlag::Bus), "Bus");
    EXPECT_STREQ(traceFlagName(TraceFlag::Lock), "Lock");
    EXPECT_STREQ(traceFlagName(TraceFlag::Checker), "Checker");
}

TEST(Logging, TraceSinkReceivesOnlyEnabledFlags)
{
    Trace::reset();
    std::vector<std::string> got;
    Trace::setSink([&](std::uint64_t, TraceFlag, const std::string &,
                       const std::string &what) { got.push_back(what); });
    Trace::setEnabled(TraceFlag::Bus, true);
    Trace::emit(1, TraceFlag::Bus, "bus", "visible");
    Trace::emit(2, TraceFlag::Cache, "cache", "hidden");
    EXPECT_EQ(got, (std::vector<std::string>{"visible"}));
    Trace::reset();
    Trace::emit(3, TraceFlag::Bus, "bus", "after reset");
    EXPECT_EQ(got.size(), 1u);
}

TEST(Logging, EnableAllCoversEveryFlag)
{
    Trace::reset();
    Trace::enableAll();
    for (unsigned i = 0; i < unsigned(TraceFlag::NumFlags); ++i)
        EXPECT_TRUE(Trace::enabled(TraceFlag(i)));
    Trace::reset();
    for (unsigned i = 0; i < unsigned(TraceFlag::NumFlags); ++i)
        EXPECT_FALSE(Trace::enabled(TraceFlag(i)));
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "boom 42");
}

TEST(LoggingDeath, SimAssertCarriesMessage)
{
    EXPECT_DEATH(sim_assert(1 == 2, "ctx %s", "info"),
                 "assertion '1 == 2' failed");
}
