/**
 * @file
 * Unit tests for the flag-encoded block states (Section E.1 naming).
 */

#include <gtest/gtest.h>

#include "cache/block_state.hh"

using namespace csync;

TEST(BlockState, PaperStateNames)
{
    EXPECT_EQ(stateName(Inv), "Invalid");
    EXPECT_EQ(stateName(Rd), "Read,Clean");
    EXPECT_EQ(stateName(RdSrcCln), "Read,Source,Clean");
    EXPECT_EQ(stateName(RdSrcDty), "Read,Source,Dirty");
    EXPECT_EQ(stateName(WrSrcCln), "Write,Source,Clean");
    EXPECT_EQ(stateName(WrSrcDty), "Write,Source,Dirty");
    EXPECT_EQ(stateName(LkSrcDty), "Lock,Source,Dirty");
    EXPECT_EQ(stateName(LkSrcDtyWt), "Lock,Source,Dirty,Waiter");
}

TEST(BlockState, Predicates)
{
    EXPECT_FALSE(isValid(Inv));
    EXPECT_TRUE(canRead(Rd));
    EXPECT_FALSE(canWrite(Rd));
    EXPECT_TRUE(canWrite(WrSrcCln));
    EXPECT_TRUE(canWrite(LkSrcDty));
    EXPECT_TRUE(isLocked(LkSrcDty));
    EXPECT_FALSE(isLocked(WrSrcDty));
    EXPECT_TRUE(isDirty(WrSrcDty));
    EXPECT_FALSE(isDirty(WrSrcCln));
    EXPECT_TRUE(isSource(RdSrcCln));
    EXPECT_FALSE(isSource(Rd));
    EXPECT_TRUE(hasWaiter(LkSrcDtyWt));
    EXPECT_FALSE(hasWaiter(LkSrcDty));
}

TEST(BlockState, LockImpliesWritePrivilege)
{
    // The paper defines Lock as "read and write privilege, locked by the
    // cache".
    EXPECT_TRUE(canWrite(LkSrcDty));
    EXPECT_TRUE(canRead(LkSrcDty));
}

TEST(BlockState, HybridBits)
{
    State sc = BitValid | BitShared;
    EXPECT_TRUE(isSharedHint(sc));
    EXPECT_FALSE(canWrite(sc));
    State sw = State(sc | BitWroteOnce);
    EXPECT_TRUE(wroteOnce(sw));
    EXPECT_NE(stateName(sw).find("WroteOnce"), std::string::npos);
}

TEST(BlockState, AbbrevRoundTrips)
{
    EXPECT_EQ(stateAbbrev(Inv), "I");
    EXPECT_EQ(stateAbbrev(WrSrcDty), "W.S.D");
    EXPECT_EQ(stateAbbrev(LkSrcDtyWt), "L.S.D.W");
}

TEST(BlockState, Table1RowsCoverCanonicalStates)
{
    const auto &rows = table1StateRows();
    EXPECT_GE(rows.size(), 8u);
    EXPECT_EQ(rows.front(), Inv);
}
