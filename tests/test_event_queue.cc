/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

using namespace csync;

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(3); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityOrdersWithinTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3, [&] { order.push_back(2); }, EventPri::Arbitrate);
    eq.schedule(3, [&] { order.push_back(1); }, EventPri::Default);
    eq.schedule(3, [&] { order.push_back(3); }, EventPri::Stats);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(5, [&] { ++ran; });
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(15, [&] { ++ran; });
    EXPECT_EQ(eq.run(10), 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, EventsScheduledDuringRunExecute)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] {
        ++count;
        eq.scheduleIn(1, [&] { ++count; });
    });
    eq.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, RunStepsBoundsExecution)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(Tick(i), [&] { ++count; });
    EXPECT_EQ(eq.runSteps(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "scheduling into the past");
}
