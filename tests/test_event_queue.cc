/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <functional>

#include "sim/event_queue.hh"

using namespace csync;

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(3); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, FifoWithinSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityOrdersWithinTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3, [&] { order.push_back(2); }, EventPri::Arbitrate);
    eq.schedule(3, [&] { order.push_back(1); }, EventPri::Default);
    eq.schedule(3, [&] { order.push_back(3); }, EventPri::Stats);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int ran = 0;
    eq.schedule(5, [&] { ++ran; });
    eq.schedule(10, [&] { ++ran; });
    eq.schedule(15, [&] { ++ran; });
    EXPECT_EQ(eq.run(10), 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, EventsScheduledDuringRunExecute)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] {
        ++count;
        eq.scheduleIn(1, [&] { ++count; });
    });
    eq.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, RunStepsBoundsExecution)
{
    EventQueue eq;
    int count = 0;
    for (int i = 0; i < 10; ++i)
        eq.schedule(Tick(i), [&] { ++count; });
    EXPECT_EQ(eq.runSteps(4), 4u);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.pending(), 6u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(5, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

// Pooled-allocation stress: many events across recycled nodes must keep
// FIFO order within each tick.  Interleaves the scheduling of two ticks
// so heap sifting and free-list reuse both happen mid-stream.
TEST(EventQueue, PooledNodesPreserveFifoUnderStress)
{
    EventQueue eq;
    const int kRounds = 50;
    const int kPerTick = 200;
    for (int round = 0; round < kRounds; ++round) {
        std::vector<int> order;
        Tick base = eq.now() + 1;
        for (int i = 0; i < kPerTick; ++i) {
            eq.schedule(base, [&order, i] { order.push_back(i); });
            eq.schedule(base + 1,
                        [&order, i] { order.push_back(kPerTick + i); });
        }
        eq.run(base + 1);
        ASSERT_EQ(order.size(), std::size_t(2 * kPerTick));
        for (int i = 0; i < 2 * kPerTick; ++i)
            ASSERT_EQ(order[i], i) << "round " << round;
    }
    EXPECT_EQ(eq.executed(), std::uint64_t(kRounds * 2 * kPerTick));
}

// Captures both below and above the inline small-buffer capacity must
// run correctly (the large one exercises the boxed fallback path).
TEST(EventQueue, InlineAndBoxedCapturesBothRun)
{
    EventQueue eq;
    std::uint64_t small_sum = 0, big_sum = 0;

    std::uint64_t a = 3, b = 4;
    eq.schedule(1, [&small_sum, a, b] { small_sum = a + b; });

    struct Big
    {
        std::uint64_t vals[40]; // > EventCallback::inlineBytes
    };
    static_assert(sizeof(Big) > EventCallback::inlineBytes);
    Big big{};
    for (int i = 0; i < 40; ++i)
        big.vals[i] = std::uint64_t(i);
    eq.schedule(1, [&big_sum, big] {
        for (std::uint64_t v : big.vals)
            big_sum += v;
    });

    eq.run();
    EXPECT_EQ(small_sum, 7u);
    EXPECT_EQ(big_sum, 780u);
}

// An executing event may schedule new events; the freed node is legal to
// reuse immediately.  Chain deeply to churn one node through the free
// list many times, and fan out to force fresh chunk allocation mid-run.
TEST(EventQueue, ScheduleDuringExecuteReusesNodesSafely)
{
    EventQueue eq;
    int chain = 0;
    std::function<void()> link = [&] {
        if (++chain < 1000)
            eq.scheduleIn(1, [&] { link(); });
    };
    eq.schedule(1, [&] { link(); });

    int fanout = 0;
    eq.schedule(1, [&] {
        for (int i = 0; i < 300; ++i)
            eq.scheduleIn(Tick(1 + i % 7), [&fanout] { ++fanout; });
    });

    eq.run();
    EXPECT_EQ(chain, 1000);
    EXPECT_EQ(fanout, 300);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "scheduling into the past");
}
