/**
 * @file
 * Unit tests for the Processor: think-time accounting, completion,
 * stall accounting, and the work-while-waiting issue discipline
 * (regression tests for the double-issue race).
 */

#include <gtest/gtest.h>

#include "proc/processor.hh"
#include "proc/workloads/critical_section.hh"
#include "proc/workloads/trace.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

SystemConfig
cfg(unsigned procs = 1)
{
    SystemConfig c;
    c.protocol = "bitar";
    c.numProcessors = procs;
    c.cache.geom.frames = 16;
    c.cache.geom.blockWords = 4;
    return c;
}

} // namespace

TEST(Processor, RunsTraceToCompletion)
{
    System sys(cfg());
    std::vector<TraceEntry> tr = {
        {MemOp{OpType::Write, 0x1000, 1, false}, 0},
        {MemOp{OpType::Read, 0x1000, 0, false}, 3},
        {MemOp{OpType::Read, 0x1008, 0, false}, 0},
    };
    sys.addProcessor(std::make_unique<TraceWorkload>(tr));
    sys.start();
    sys.run();
    EXPECT_TRUE(sys.allDone());
    EXPECT_TRUE(sys.processor(0).done());
    EXPECT_DOUBLE_EQ(sys.processor(0).opsCompleted.value(), 3.0);
    EXPECT_DOUBLE_EQ(sys.processor(0).thinkCycles.value(), 3.0);
}

TEST(Processor, StallCyclesCoverMissLatency)
{
    System sys(cfg());
    std::vector<TraceEntry> tr = {
        {MemOp{OpType::Read, 0x1000, 0, false}, 0},    // miss
        {MemOp{OpType::Read, 0x1000, 0, false}, 0},    // hit
    };
    sys.addProcessor(std::make_unique<TraceWorkload>(tr));
    sys.start();
    sys.run();
    // Miss costs arb+addr+memLatency+4 data = 10, hit costs 1.
    EXPECT_GE(sys.processor(0).memStallCycles.value(), 10.0);
}

TEST(Processor, DoubleStartIsFatal)
{
    System sys(cfg());
    sys.addProcessor(
        std::make_unique<TraceWorkload>(std::vector<TraceEntry>{}));
    sys.processor(0).start();
    EXPECT_DEATH(sys.processor(0).start(), "started twice");
}

TEST(Processor, WorkWhileWaitingCountsReadyOps)
{
    System sys(cfg(3));
    CriticalSectionParams p;
    p.iterations = 20;
    p.alg = LockAlg::CacheLock;
    p.numLocks = 1;
    p.wordsPerCs = 1;
    p.holdThink = 12;            // long critical sections
    p.readySectionOps = 6;
    for (unsigned i = 0; i < 3; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p),
                         /*work_while_waiting=*/true);
    }
    sys.start();
    sys.run(20'000'000);
    ASSERT_TRUE(sys.allDone());
    EXPECT_EQ(sys.checker().violations(), 0u);
    double ready = 0;
    for (unsigned i = 0; i < 3; ++i)
        ready += sys.processor(i).readySectionOps.value();
    EXPECT_GT(ready, 0.0);
    // Exact mutual exclusion despite the overlap.
    Word sum = sys.checker().expectedValue(
        CriticalSectionWorkload::dataWordAddr(p, 0, 0));
    EXPECT_EQ(sum, 60u);
}

TEST(Processor, BlockingLockStallsInsteadOfWaiting)
{
    // Without the handler, the LockRead callback is simply deferred.
    System sys(cfg(2));
    CriticalSectionParams p;
    p.iterations = 10;
    p.alg = LockAlg::CacheLock;
    p.numLocks = 1;
    p.wordsPerCs = 1;
    for (unsigned i = 0; i < 2; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p));
    }
    sys.start();
    sys.run(5'000'000);
    ASSERT_TRUE(sys.allDone());
    for (unsigned i = 0; i < 2; ++i)
        EXPECT_DOUBLE_EQ(sys.processor(i).readySectionOps.value(), 0.0);
}
