/**
 * @file
 * Tests for Goodman's write-once protocol (1983): the Valid/Reserved/
 * Dirty progression, the invalidating write-through (no bus invalidate
 * signal on the Multibus), and flush-on-transfer.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{
constexpr Addr X = 0x1000;
} // namespace

TEST(Goodman, ReadMissGivesValidOnly)
{
    Scenario s(opts("goodman"));
    s.run(0, rd(X));
    EXPECT_EQ(s.state(0, X), Rd);    // no fetch-for-write (Feature 5)
}

TEST(Goodman, WriteOnceProgression)
{
    Scenario s(opts("goodman"));
    s.run(0, rd(X));
    double ww = s.system().bus().typeCount(BusReq::WriteWord);
    // First write: write-through word to memory (write-once), block
    // becomes Reserved (clean, write privilege).
    s.run(0, wr(X, 1));
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::WriteWord),
                     ww + 1);
    EXPECT_EQ(s.state(0, X), WrCln);
    EXPECT_EQ(s.system().memory().readWord(X), 1u);    // memory current
    // Second write: silent, block becomes Dirty (source).
    double tx = s.system().bus().transactions.value();
    s.run(0, wr(X, 2));
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
    EXPECT_EQ(s.state(0, X), WrSrcDty);
}

TEST(Goodman, WriteThroughInvalidatesOtherCopies)
{
    Scenario s(opts("goodman"));
    s.run(0, rd(X));
    s.run(1, rd(X));
    ASSERT_EQ(s.state(1, X), Rd);
    s.run(0, wr(X, 1));
    EXPECT_EQ(s.state(1, X), Inv);
    EXPECT_DOUBLE_EQ(s.cache(1).invalidationsReceived.value(), 1.0);
}

TEST(Goodman, WriteMissFetchesThenWritesOnce)
{
    Scenario s(opts("goodman"));
    double ww = s.system().bus().typeCount(BusReq::WriteWord);
    double rs = s.system().bus().typeCount(BusReq::ReadShared);
    s.run(0, wr(X, 5));
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::ReadShared),
                     rs + 1);
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::WriteWord),
                     ww + 1);
    EXPECT_EQ(s.state(0, X), WrCln);
    EXPECT_EQ(s.cache(0).peekWord(X), 5u);
}

TEST(Goodman, DirtyBlockFlushedWhenTransferred)
{
    Scenario s(opts("goodman"));
    s.run(0, wr(X, 1));
    s.run(0, wr(X, 2));    // Dirty
    ASSERT_EQ(s.state(0, X), WrSrcDty);
    double flushes = s.system().memory().blockWrites.value();
    auto r = s.run(1, rd(X));
    EXPECT_EQ(r.value, 2u);
    // Transferred AND flushed: both copies now clean Valid.
    EXPECT_GT(s.system().memory().blockWrites.value(), flushes);
    EXPECT_EQ(s.state(0, X), Rd);
    EXPECT_EQ(s.state(1, X), Rd);
    EXPECT_EQ(s.system().memory().readWord(X), 2u);
}

TEST(Goodman, ReservedDowngradesWhenAnotherReads)
{
    Scenario s(opts("goodman"));
    s.run(0, wr(X, 1));    // Reserved
    s.run(1, rd(X));
    EXPECT_EQ(s.state(0, X), Rd);
    EXPECT_EQ(s.state(1, X), Rd);
}

TEST(Goodman, NoUpgradeSignalEverUsed)
{
    Scenario s(opts("goodman"));
    s.run(0, rd(X));
    s.run(1, rd(X));
    s.run(0, wr(X, 1));
    s.run(1, wr(X, 2));
    s.run(0, wr(X + 8, 3));
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::Upgrade), 0.0);
}

TEST(Goodman, ValuesStayCoherentAcrossPingPong)
{
    Scenario s(opts("goodman"));
    for (int i = 0; i < 20; ++i) {
        unsigned p = i % 3;
        s.run(p, wr(X, Word(i)));
        auto r = s.run((p + 1) % 3, rd(X));
        EXPECT_EQ(r.value, Word(i));
    }
    EXPECT_DOUBLE_EQ(s.system().checker().violationCount.value(), 0.0);
    EXPECT_EQ(s.system().checkStateInvariants(), 0u);
}
