/**
 * @file
 * Tests for the sweep-spec parser and grid expansion: axis product
 * size and order, JSON schema validation with actionable error
 * messages, and up-front rejection of unknown protocol/workload names.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "harness/sweep.hh"
#include "harness/workload_factory.hh"
#include "trace/gen.hh"

using namespace csync;
using namespace csync::harness;

namespace
{

SweepSpec
parseSpec(const std::string &text)
{
    std::string err;
    Json doc = Json::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    SweepSpec spec;
    EXPECT_TRUE(SweepSpec::fromJson(doc, &spec, &err)) << err;
    return spec;
}

std::string
specError(const std::string &text)
{
    std::string err;
    Json doc = Json::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    SweepSpec spec;
    EXPECT_FALSE(SweepSpec::fromJson(doc, &spec, &err));
    EXPECT_FALSE(err.empty());
    return err;
}

} // namespace

TEST(SweepSpec, ExpandsCartesianGridInAxisOrder)
{
    SweepSpec spec;
    spec.protocols = {"bitar", "illinois"};
    spec.workloads = {"random_sharing", "migration"};
    spec.processorCounts = {2, 4};
    spec.blockWords = {4};
    spec.frames = {64};
    spec.seeds = {1, 2, 3};

    std::vector<JobSpec> jobs;
    std::string err;
    ASSERT_TRUE(spec.expand(&jobs, &err)) << err;
    EXPECT_EQ(jobs.size(), 2u * 2 * 2 * 3);
    // Protocol is the outermost axis, seed the innermost.
    EXPECT_EQ(jobs[0].name, "bitar/random_sharing/p2/bw4/f64/s1");
    EXPECT_EQ(jobs[1].name, "bitar/random_sharing/p2/bw4/f64/s2");
    EXPECT_EQ(jobs[3].name, "bitar/random_sharing/p4/bw4/f64/s1");
    EXPECT_EQ(jobs.back().name, "illinois/migration/p4/bw4/f64/s3");
    EXPECT_EQ(jobs[0].config.protocol, "bitar");
    EXPECT_EQ(jobs[0].config.numProcessors, 2u);
    EXPECT_EQ(jobs[0].config.cache.geom.frames, 64u);
}

TEST(SweepSpec, ExpandRejectsUnknownProtocol)
{
    SweepSpec spec;
    spec.protocols = {"bitar", "klingon"};
    spec.workloads = {"random_sharing"};
    std::vector<JobSpec> jobs;
    std::string err;
    EXPECT_FALSE(spec.expand(&jobs, &err));
    EXPECT_NE(err.find("unknown protocol 'klingon'"), std::string::npos)
        << err;
    EXPECT_NE(err.find("bitar"), std::string::npos)
        << "error should list known protocols: " << err;
}

TEST(SweepSpec, ExpandRejectsUnknownWorkload)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"matrix_multiply"};
    std::vector<JobSpec> jobs;
    std::string err;
    EXPECT_FALSE(spec.expand(&jobs, &err));
    EXPECT_NE(err.find("unknown workload 'matrix_multiply'"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("random_sharing"), std::string::npos)
        << "error should list known workloads: " << err;
}

TEST(SweepSpec, TopologyAxisTagsJobNamesAndConfigs)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"random_sharing"};
    spec.topologies = {"single_bus", "two_switch"};
    spec.processorCounts = {2};
    std::vector<JobSpec> jobs;
    std::string err;
    ASSERT_TRUE(spec.expand(&jobs, &err)) << err;
    ASSERT_EQ(jobs.size(), 2u);
    // Single-bus rows keep their historical names (no topology tag) so
    // pre-topology baselines still compare; two_switch rows are tagged.
    EXPECT_EQ(jobs[0].name, "bitar/random_sharing/p2/bw4/f128/s1");
    EXPECT_TRUE(jobs[0].config.topology.isSingleBus());
    EXPECT_EQ(jobs[1].name,
              "bitar/random_sharing/two_switch/p2/bw4/f128/s1");
    EXPECT_EQ(jobs[1].config.topology.switches.size(), 2u);
    EXPECT_EQ(jobs[1].config.topology.switches[0].name, "sync_bus");
}

TEST(SweepSpec, ExpandRejectsUnknownTopology)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"random_sharing"};
    spec.topologies = {"hypercube"};
    std::vector<JobSpec> jobs;
    std::string err;
    EXPECT_FALSE(spec.expand(&jobs, &err));
    EXPECT_NE(err.find("unknown topology 'hypercube'"),
              std::string::npos) << err;
    EXPECT_NE(err.find("two_switch"), std::string::npos)
        << "error should list known topologies: " << err;
}

TEST(SweepSpec, ArbitrationAxisTagsJobNamesAndConfigs)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"random_sharing"};
    spec.arbitrations = {"round_robin", "fcfs", "alternating_priority"};
    spec.processorCounts = {2};
    std::vector<JobSpec> jobs;
    std::string err;
    ASSERT_TRUE(spec.expand(&jobs, &err)) << err;
    ASSERT_EQ(jobs.size(), 3u);
    // Round-robin rows keep their historical names (no arbitration
    // tag) so pre-arbitration baselines still compare; others are
    // tagged.
    EXPECT_EQ(jobs[0].name, "bitar/random_sharing/p2/bw4/f128/s1");
    EXPECT_EQ(jobs[0].config.arbitration, "round_robin");
    EXPECT_EQ(jobs[1].name, "bitar/random_sharing/fcfs/p2/bw4/f128/s1");
    EXPECT_EQ(jobs[1].config.arbitration, "fcfs");
    EXPECT_EQ(jobs[2].name,
              "bitar/random_sharing/alternating_priority/p2/bw4/f128/s1");
    EXPECT_EQ(jobs[2].config.arbitration, "alternating_priority");
}

TEST(SweepSpec, ExpandRejectsUnknownArbitration)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"random_sharing"};
    spec.arbitrations = {"coin_flip"};
    std::vector<JobSpec> jobs;
    std::string err;
    EXPECT_FALSE(spec.expand(&jobs, &err));
    EXPECT_NE(err.find("unknown arbitration 'coin_flip'"),
              std::string::npos) << err;
    EXPECT_NE(err.find("fcfs"), std::string::npos)
        << "error should list known policies: " << err;
}

TEST(SweepSpec, ExpandRejectsEmptyAxis)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"random_sharing"};
    spec.seeds.clear();
    std::vector<JobSpec> jobs;
    std::string err;
    EXPECT_FALSE(spec.expand(&jobs, &err));
    EXPECT_NE(err.find("at least one value"), std::string::npos) << err;
}

TEST(SweepSpec, FromJsonReadsEveryField)
{
    SweepSpec spec = parseSpec(R"({
        "name": "nightly",
        "protocols": ["bitar", "dragon"],
        "workloads": ["barrier"],
        "processors": [2, 8],
        "block_words": [4, 8],
        "frames": [32],
        "seeds": [7],
        "ops_per_processor": 500,
        "max_ticks": 1000000,
        "ways": 2,
        "enable_checker": false
    })");
    EXPECT_EQ(spec.name, "nightly");
    EXPECT_EQ(spec.protocols,
              (std::vector<std::string>{"bitar", "dragon"}));
    EXPECT_EQ(spec.processorCounts, (std::vector<unsigned>{2, 8}));
    EXPECT_EQ(spec.opsPerProcessor, 500u);
    EXPECT_EQ(spec.maxTicks, 1000000u);
    EXPECT_EQ(spec.ways, 2u);
    EXPECT_FALSE(spec.enableChecker);
}

TEST(SweepSpec, FromJsonErrorMessages)
{
    EXPECT_NE(specError(R"({"workloads": ["barrier"]})")
                  .find("\"protocols\" axis is missing"),
              std::string::npos);
    EXPECT_NE(specError(R"({"protocols": ["bitar"]})")
                  .find("\"workloads\" and \"traces\" axes are both "
                        "missing"),
              std::string::npos);
    EXPECT_NE(specError(R"({"protocols": "bitar",
                            "workloads": ["barrier"]})")
                  .find("\"protocols\" must be an array"),
              std::string::npos);
    EXPECT_NE(specError(R"({"protocols": ["bitar"],
                            "workloads": ["barrier"],
                            "processors": [2, "four"]})")
                  .find("\"processors\"[1]"),
              std::string::npos);
    EXPECT_NE(specError(R"({"protocols": ["bitar"],
                            "workloads": ["barrier"],
                            "procs": [2]})")
                  .find("unknown key \"procs\""),
              std::string::npos);
    EXPECT_NE(specError("[1, 2]").find("not a JSON object"),
              std::string::npos);
}

TEST(SweepSpec, ToJsonRoundTrips)
{
    SweepSpec spec;
    spec.name = "rt";
    spec.protocols = {"bitar"};
    spec.workloads = {"migration"};
    spec.seeds = {3, 4};
    SweepSpec again;
    std::string err;
    ASSERT_TRUE(SweepSpec::fromJson(spec.toJson(), &again, &err)) << err;
    EXPECT_EQ(again.name, "rt");
    EXPECT_EQ(again.seeds, (std::vector<std::uint64_t>{3, 4}));
    EXPECT_EQ(again.opsPerProcessor, spec.opsPerProcessor);
}

TEST(SweepSpec, ToJsonOmitsDefaultTopologyAxis)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"migration"};
    // Pre-topology manifests must stay byte-identical: the axis only
    // appears once somebody asks for a non-default topology.
    EXPECT_FALSE(spec.toJson().has("topologies"));
    spec.topologies = {"two_switch"};
    SweepSpec again;
    std::string err;
    ASSERT_TRUE(SweepSpec::fromJson(spec.toJson(), &again, &err)) << err;
    EXPECT_EQ(again.topologies,
              (std::vector<std::string>{"two_switch"}));
}

TEST(SweepSpec, ToJsonOmitsDefaultArbitrationAxis)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"migration"};
    // Pre-arbitration manifests must stay byte-identical: the axis
    // only appears once somebody asks for a non-default policy.
    EXPECT_FALSE(spec.toJson().has("arbitrations"));
    spec.arbitrations = {"fcfs", "alternating_priority"};
    SweepSpec again;
    std::string err;
    ASSERT_TRUE(SweepSpec::fromJson(spec.toJson(), &again, &err)) << err;
    EXPECT_EQ(again.arbitrations,
              (std::vector<std::string>{"fcfs", "alternating_priority"}));
}

TEST(SweepSpec, TracesAxisExpandsLikeAWorkload)
{
    // A real trace file: expand() opens every entry up front.
    trace::GenParams p;
    p.kernel = "mix";
    p.threads = 2;
    p.events = 100;
    std::string path = ::testing::TempDir() + "sweep_axis.ctrace";
    std::string err;
    ASSERT_TRUE(trace::generateTrace(p, path, &err)) << err;

    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.traces = {path};
    spec.processorCounts = {2};
    std::vector<JobSpec> jobs;
    ASSERT_TRUE(spec.expand(&jobs, &err)) << err;
    ASSERT_EQ(jobs.size(), 1u);
    // Job names carry the file stem, not the host-specific path.
    EXPECT_EQ(jobs[0].name, "bitar/trace:sweep_axis/p2/bw4/f128/s1");
    EXPECT_EQ(jobs[0].workload, std::string(kTraceRecipePrefix) + path);
    std::remove(path.c_str());
}

TEST(SweepSpec, ExpandRejectsMissingTraceFile)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.traces = {"/nonexistent/campaign.ctrace"};
    std::vector<JobSpec> jobs;
    std::string err;
    EXPECT_FALSE(spec.expand(&jobs, &err));
    EXPECT_NE(err.find("/nonexistent/campaign.ctrace"),
              std::string::npos) << err;
}

TEST(SweepSpec, TracesOnlySpecParses)
{
    SweepSpec spec = parseSpec(R"({
        "protocols": ["bitar"],
        "traces": ["captures/app.ctrace"]
    })");
    EXPECT_TRUE(spec.workloads.empty());
    EXPECT_EQ(spec.traces,
              (std::vector<std::string>{"captures/app.ctrace"}));
}

TEST(SweepSpec, ToJsonOmitsEmptyTracesAxis)
{
    SweepSpec spec;
    spec.protocols = {"bitar"};
    spec.workloads = {"migration"};
    // Pre-trace manifests must stay byte-identical: the axis only
    // appears once a trace is actually named.
    EXPECT_FALSE(spec.toJson().has("traces"));
    spec.traces = {"captures/app.ctrace"};
    SweepSpec again;
    std::string err;
    ASSERT_TRUE(SweepSpec::fromJson(spec.toJson(), &again, &err)) << err;
    EXPECT_EQ(again.traces, spec.traces);
}

TEST(WorkloadFactory, KnowsItsNamesAndRejectsOthers)
{
    auto names = workloadNames();
    EXPECT_GE(names.size(), 5u);
    for (const auto &n : names) {
        EXPECT_TRUE(workloadKnown(n));
        WorkloadSlot slot;
        slot.numProcs = 2;
        slot.procId = 0;
        std::string err;
        auto w = makeWorkload(n, slot, &err);
        EXPECT_NE(w, nullptr) << n << ": " << err;
    }
    std::string err;
    EXPECT_EQ(makeWorkload("nope", WorkloadSlot{}, &err), nullptr);
    EXPECT_NE(err.find("unknown workload 'nope'"), std::string::npos);
    for (const auto &n : names) {
        EXPECT_NE(err.find(n), std::string::npos)
            << "error should list every recipe: " << err;
    }
    EXPECT_NE(err.find("trace:<path>"), std::string::npos)
        << "error should mention the trace recipe: " << err;
}

TEST(WorkloadFactory, LockWorkloadsNeedFeature6)
{
    WorkloadSlot slot;
    slot.numProcs = 2;
    slot.protocol = "goodman"; // no lock ops, no atomic RMW
    std::string err;
    EXPECT_EQ(makeWorkload("critical_section", slot, &err), nullptr);
    EXPECT_NE(err.find("Feature 6"), std::string::npos) << err;
    // Protocols with RMW (illinois) or cache locks (bitar) are fine.
    slot.protocol = "illinois";
    EXPECT_NE(makeWorkload("barrier", slot, &err), nullptr);
    slot.protocol = "bitar";
    EXPECT_NE(makeWorkload("barrier", slot, &err), nullptr);
}
