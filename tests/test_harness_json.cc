/**
 * @file
 * Tests for the harness JSON model: parsing (including every error
 * path's message quality), document building, key-order preservation,
 * and serialization round trips.
 */

#include <gtest/gtest.h>

#include "harness/json.hh"

using csync::harness::Json;

namespace
{

Json
parseOk(const std::string &text)
{
    std::string err;
    Json doc = Json::parse(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    return doc;
}

std::string
parseErr(const std::string &text)
{
    std::string err;
    Json doc = Json::parse(text, &err);
    EXPECT_FALSE(err.empty()) << "expected a parse error for: " << text;
    EXPECT_TRUE(doc.isNull());
    return err;
}

} // namespace

TEST(HarnessJson, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_EQ(parseOk("true").asBool(), true);
    EXPECT_EQ(parseOk("false").asBool(false), false);
    EXPECT_EQ(parseOk("42").asNumber(), 42);
    EXPECT_EQ(parseOk("-3.5e2").asNumber(), -350);
    EXPECT_EQ(parseOk("\"hi\\nthere\"").asString(), "hi\nthere");
    EXPECT_EQ(parseOk("\"\\u0041\\u00e9\"").asString(), "A\xc3\xa9");
}

TEST(HarnessJson, ParsesContainers)
{
    Json doc = parseOk(R"({"a": [1, 2, {"b": true}], "c": "x"})");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc["a"].size(), 3u);
    EXPECT_EQ(doc["a"].at(0).asNumber(), 1);
    EXPECT_EQ(doc["a"].at(2)["b"].asBool(), true);
    EXPECT_EQ(doc["c"].asString(), "x");
    EXPECT_TRUE(doc["missing"].isNull());
    EXPECT_TRUE(doc.has("a"));
    EXPECT_FALSE(doc.has("missing"));
}

TEST(HarnessJson, ErrorMessagesNameLineAndProblem)
{
    EXPECT_NE(parseErr("").find("unexpected end"), std::string::npos);
    EXPECT_NE(parseErr("{\"a\": }").find("line 1"), std::string::npos);
    EXPECT_NE(parseErr("[1, 2").find("']'"), std::string::npos);
    EXPECT_NE(parseErr("{\"a\" 1}").find("':'"), std::string::npos);
    EXPECT_NE(parseErr("tru").find("true"), std::string::npos);
    EXPECT_NE(parseErr("{} trailing").find("trailing"),
              std::string::npos);
    EXPECT_NE(parseErr("\"unterminated").find("unterminated"),
              std::string::npos);
    // Errors past a newline report the right line.
    EXPECT_NE(parseErr("{\n\"a\": [1,\n bad]}").find("line 3"),
              std::string::npos);
}

TEST(HarnessJson, BuildAndDumpRoundTrip)
{
    Json doc = Json::object();
    doc.set("zeta", 1);
    doc.set("alpha", Json::array());
    doc.set("nested", Json::object());
    Json arr = Json::array();
    arr.push("x");
    arr.push(2.5);
    arr.push(nullptr);
    doc.set("alpha", std::move(arr));

    std::string compact = doc.dump(-1);
    // Insertion order is preserved (deterministic documents).
    EXPECT_EQ(compact,
              "{\"zeta\": 1,\"alpha\": [\"x\",2.5,null],"
              "\"nested\": {}}");

    Json again = parseOk(doc.dump(0));
    EXPECT_EQ(again["zeta"].asNumber(), 1);
    EXPECT_EQ(again["alpha"].at(1).asNumber(), 2.5);
    EXPECT_TRUE(again["alpha"].at(2).isNull());
    EXPECT_EQ(again.members().front().first, "zeta");
}

TEST(HarnessJson, SetReplacesExistingKey)
{
    Json doc = Json::object();
    doc.set("k", 1);
    doc.set("k", 2);
    EXPECT_EQ(doc.size(), 1u);
    EXPECT_EQ(doc["k"].asNumber(), 2);
}
