/**
 * @file
 * Unit tests for the broadcast bus: arbitration (round-robin and the
 * busy-wait priority bit), snoop aggregation, data routing from caches
 * vs. memory, locked responses, and piggybacked write-backs.
 */

#include <gtest/gtest.h>

#include "mem/bus.hh"

using namespace csync;

namespace
{

/** Scriptable bus client. */
struct MockClient : public BusClient
{
    NodeId id;
    Bus *bus = nullptr;
    BusMsg toSend;
    bool decline = false;
    SnoopReply reply;
    std::vector<BusMsg> snooped;
    std::vector<SnoopResult> completions;
    Tick lastCompleteTick = 0;
    EventQueue *eq = nullptr;

    explicit MockClient(NodeId i) : id(i) {}

    NodeId nodeId() const override { return id; }

    bool
    busGrant(BusMsg &msg) override
    {
        if (decline)
            return false;
        msg = toSend;
        return true;
    }

    SnoopReply snoop(const BusMsg &msg) override
    {
        snooped.push_back(msg);
        return reply;
    }

    void
    busComplete(const BusMsg &, const SnoopResult &res) override
    {
        completions.push_back(res);
        lastCompleteTick = eq->now();
    }
};

struct BusTest : public ::testing::Test
{
    EventQueue eq;
    stats::Group root{"root"};
    Memory mem{"memory", &eq, 4, &root};
    BusTiming timing{};
    Bus bus{"bus", &eq, &mem, timing, &root};
    std::vector<std::unique_ptr<MockClient>> clients;

    MockClient *
    addClient(NodeId id)
    {
        clients.push_back(std::make_unique<MockClient>(id));
        clients.back()->bus = &bus;
        clients.back()->eq = &eq;
        bus.addClient(clients.back().get());
        return clients.back().get();
    }

    BusMsg
    fetch(Addr a, BusReq req = BusReq::ReadShared)
    {
        BusMsg m;
        m.req = req;
        m.blockAddr = a;
        return m;
    }
};

} // namespace

TEST_F(BusTest, MemorySuppliesWhenNoCacheDoes)
{
    auto *c0 = addClient(0);
    addClient(1);
    mem.writeBlock(0x1000, {7, 8, 9, 10});
    c0->toSend = fetch(0x1000);
    bus.request(c0);
    eq.run();
    ASSERT_EQ(c0->completions.size(), 1u);
    EXPECT_EQ(c0->completions[0].supplier, invalidNode);
    EXPECT_EQ(c0->completions[0].data,
              (std::vector<Word>{7, 8, 9, 10}));
    EXPECT_DOUBLE_EQ(bus.memSupplies.value(), 1.0);
    EXPECT_FALSE(c0->completions[0].hit);
}

TEST_F(BusTest, CacheSupplierWins)
{
    auto *c0 = addClient(0);
    auto *c1 = addClient(1);
    c1->reply.hasCopy = true;
    c1->reply.source = true;
    c1->reply.supplyData = true;
    c1->reply.dirty = true;
    c1->reply.data = {4, 3, 2, 1};
    c0->toSend = fetch(0x1000);
    bus.request(c0);
    eq.run();
    ASSERT_EQ(c0->completions.size(), 1u);
    EXPECT_EQ(c0->completions[0].supplier, 1);
    EXPECT_TRUE(c0->completions[0].hit);
    EXPECT_TRUE(c0->completions[0].sourceDirty);
    EXPECT_EQ(c0->completions[0].data, (std::vector<Word>{4, 3, 2, 1}));
    EXPECT_DOUBLE_EQ(bus.cacheSupplies.value(), 1.0);
    EXPECT_DOUBLE_EQ(bus.memSupplies.value(), 0.0);
}

TEST_F(BusTest, FlushToMemoryRidesTransfer)
{
    auto *c0 = addClient(0);
    auto *c1 = addClient(1);
    c1->reply.hasCopy = true;
    c1->reply.supplyData = true;
    c1->reply.flushToMemory = true;
    c1->reply.data = {11, 12, 13, 14};
    c0->toSend = fetch(0x1000);
    bus.request(c0);
    eq.run();
    EXPECT_EQ(mem.peekBlock(0x1000), (std::vector<Word>{11, 12, 13, 14}));
}

TEST_F(BusTest, MultipleSuppliersArbitrate)
{
    auto *c0 = addClient(0);
    auto *c1 = addClient(1);
    auto *c2 = addClient(2);
    for (auto *c : {c1, c2}) {
        c->reply.hasCopy = true;
        c->reply.supplyData = true;
        c->reply.data = {1, 1, 1, 1};
    }
    c0->toSend = fetch(0x1000);
    bus.request(c0);
    eq.run();
    EXPECT_DOUBLE_EQ(bus.sourceArbitrations.value(), 1.0);
    EXPECT_EQ(c0->completions[0].supplier, 1);
    EXPECT_EQ(c0->completions[0].copies, 2);
}

TEST_F(BusTest, LockedResponseCarriesNoData)
{
    auto *c0 = addClient(0);
    auto *c1 = addClient(1);
    c1->reply.hasCopy = true;
    c1->reply.locked = true;
    c0->toSend = fetch(0x1000, BusReq::ReadLock);
    bus.request(c0);
    eq.run();
    ASSERT_EQ(c0->completions.size(), 1u);
    EXPECT_TRUE(c0->completions[0].locked);
    EXPECT_TRUE(c0->completions[0].data.empty());
    EXPECT_DOUBLE_EQ(bus.lockedResponses.value(), 1.0);
}

TEST_F(BusTest, RoundRobinArbitration)
{
    auto *c0 = addClient(0);
    auto *c1 = addClient(1);
    auto *c2 = addClient(2);
    for (auto *c : {c0, c1, c2})
        c->toSend = fetch(0x1000);
    bus.request(c1);
    bus.request(c0);
    bus.request(c2);
    eq.run();
    // First grant goes to node 0 (round-robin from -1), then 1, then 2.
    EXPECT_LT(c0->lastCompleteTick, c1->lastCompleteTick);
    EXPECT_LT(c1->lastCompleteTick, c2->lastCompleteTick);
}

TEST_F(BusTest, BusyWaitPriorityBeatsRoundRobin)
{
    auto *c0 = addClient(0);
    auto *c1 = addClient(1);
    auto *c2 = addClient(2);
    for (auto *c : {c0, c1, c2})
        c->toSend = fetch(0x1000);
    // Occupy the bus with c0, then queue c1 (normal) and c2 (priority).
    bus.request(c0);
    bus.request(c1);
    bus.request(c2, BusPriority::BusyWait);
    eq.run();
    EXPECT_LT(c2->lastCompleteTick, c1->lastCompleteTick);
    EXPECT_DOUBLE_EQ(bus.highPriorityGrants.value(), 1.0);
}

TEST_F(BusTest, DeclinedGrantPassesToNext)
{
    auto *c0 = addClient(0);
    auto *c1 = addClient(1);
    c0->decline = true;
    c0->toSend = fetch(0x1000);
    c1->toSend = fetch(0x2000);
    bus.request(c0);
    bus.request(c1);
    eq.run();
    EXPECT_EQ(c0->completions.size(), 0u);
    EXPECT_EQ(c1->completions.size(), 1u);
}

TEST_F(BusTest, CancelRemovesRequest)
{
    auto *c0 = addClient(0);
    auto *c1 = addClient(1);
    c0->toSend = fetch(0x1000);
    c1->toSend = fetch(0x2000);
    bus.request(c0);
    bus.request(c1);
    bus.cancel(c1);
    eq.run();
    EXPECT_EQ(c1->completions.size(), 0u);
    EXPECT_EQ(c0->completions.size(), 1u);
}

TEST_F(BusTest, PiggybackedWritebackLandsInMemory)
{
    auto *c0 = addClient(0);
    addClient(1);
    BusMsg m = fetch(0x1000);
    m.wbValid = true;
    m.wbAddr = 0x2000;
    m.wbData = {9, 9, 9, 9};
    c0->toSend = m;
    bus.request(c0);
    eq.run();
    EXPECT_EQ(mem.peekBlock(0x2000), (std::vector<Word>{9, 9, 9, 9}));
    ASSERT_EQ(c0->completions.size(), 1u);
}

TEST_F(BusTest, WriteWordUpdatesMemory)
{
    auto *c0 = addClient(0);
    auto *c1 = addClient(1);
    BusMsg m;
    m.req = BusReq::WriteWord;
    m.blockAddr = 0x1000;
    m.wordAddr = 0x1008;
    m.wordData = 42;
    c0->toSend = m;
    bus.request(c0);
    eq.run();
    EXPECT_EQ(mem.readWord(0x1008), 42u);
    ASSERT_EQ(c1->snooped.size(), 1u);
    EXPECT_EQ(c1->snooped[0].wordData, 42u);
}

TEST_F(BusTest, UpdateWordRespectsUpdateMemoryFlag)
{
    auto *c0 = addClient(0);
    addClient(1);
    BusMsg m;
    m.req = BusReq::UpdateWord;
    m.blockAddr = 0x1000;
    m.wordAddr = 0x1000;
    m.wordData = 7;
    m.updateMemory = false;
    c0->toSend = m;
    bus.request(c0);
    eq.run();
    EXPECT_EQ(mem.readWord(0x1000), 0u);

    m.updateMemory = true;
    c0->toSend = m;
    bus.request(c0);
    eq.run();
    EXPECT_EQ(mem.readWord(0x1000), 7u);
}

TEST_F(BusTest, MemoryLockTagRefusesFetchAndRecordsWaiter)
{
    auto *c0 = addClient(0);
    addClient(1);
    mem.setMemLock(0x1000, true, /*holder=*/5);
    c0->toSend = fetch(0x1000);
    bus.request(c0);
    eq.run();
    EXPECT_TRUE(c0->completions[0].locked);
    EXPECT_TRUE(mem.memWaiter(0x1000));
}

TEST_F(BusTest, MemoryLockHolderMayFetch)
{
    auto *c0 = addClient(0);
    addClient(1);
    mem.setMemLock(0x1000, true, /*holder=*/0);
    mem.writeBlock(0x1000, {1, 2, 3, 4});
    c0->toSend = fetch(0x1000, BusReq::ReadLock);
    bus.request(c0);
    eq.run();
    EXPECT_FALSE(c0->completions[0].locked);
    EXPECT_EQ(c0->completions[0].data, (std::vector<Word>{1, 2, 3, 4}));
}

TEST_F(BusTest, UnlockBroadcastClearsHolderLockTag)
{
    auto *c0 = addClient(0);
    addClient(1);
    mem.setMemLock(0x1000, true, /*holder=*/0);
    BusMsg m;
    m.req = BusReq::UnlockBroadcast;
    m.blockAddr = 0x1000;
    c0->toSend = m;
    bus.request(c0);
    eq.run();
    EXPECT_FALSE(mem.memLocked(0x1000));
}

TEST_F(BusTest, BusyCyclesAccumulate)
{
    auto *c0 = addClient(0);
    c0->toSend = fetch(0x1000);
    bus.request(c0);
    eq.run();
    // arb(1) + addr(1) + memLatency(4) + 4 data cycles = 10.
    EXPECT_DOUBLE_EQ(bus.busyCycles.value(), 10.0);
    EXPECT_EQ(c0->lastCompleteTick, 10u);
}
