/**
 * @file
 * Tests for the Papamarcos & Patel (Illinois) protocol: the MESI state
 * progression, dynamic fetch-for-write via the hit line (Feature 5 'D'),
 * cache supply of clean blocks with source arbitration (Feature 8 ARB),
 * and flush-on-transfer (Feature 7 'F').
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{
constexpr Addr X = 0x1000;
} // namespace

TEST(Illinois, ReadMissAloneGetsExclusiveClean)
{
    Scenario s(opts("illinois"));
    s.run(0, rd(X));
    EXPECT_EQ(s.state(0, X), WrSrcCln);    // E
    // Subsequent write is silent (E -> M).
    double tx = s.system().bus().transactions.value();
    s.run(0, wr(X, 1));
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
    EXPECT_EQ(s.state(0, X), WrSrcDty);    // M
}

TEST(Illinois, ReadMissWithCopiesGetsShared)
{
    Scenario s(opts("illinois"));
    s.run(0, rd(X));
    s.run(1, rd(X));
    EXPECT_EQ(s.state(1, X), Rd);          // S
    EXPECT_EQ(s.state(0, X), Rd);          // E downgraded to S
}

TEST(Illinois, CleanBlocksSuppliedCacheToCache)
{
    Scenario s(opts("illinois"));
    s.run(0, rd(X));    // E, clean
    double c2c = s.system().bus().cacheSupplies.value();
    s.run(1, rd(X));
    // Supplied by cache 0 even though clean (Illinois hallmark).
    EXPECT_DOUBLE_EQ(s.system().bus().cacheSupplies.value(), c2c + 1);
}

TEST(Illinois, MultipleSharersArbitrateToSupply)
{
    Scenario s(opts("illinois", 4));
    s.run(0, rd(X));
    s.run(1, rd(X));
    double arb = s.system().bus().sourceArbitrations.value();
    s.run(2, rd(X));
    // Two S holders both offered the block: arbitration was needed.
    EXPECT_DOUBLE_EQ(s.system().bus().sourceArbitrations.value(),
                     arb + 1);
}

TEST(Illinois, DirtyTransferFlushesToMemory)
{
    Scenario s(opts("illinois"));
    s.run(0, wr(X, 9));    // M
    double flushes = s.system().memory().blockWrites.value();
    auto r = s.run(1, rd(X));
    EXPECT_EQ(r.value, 9u);
    EXPECT_GT(s.system().memory().blockWrites.value(), flushes);
    EXPECT_EQ(s.state(0, X), Rd);
    EXPECT_EQ(s.state(1, X), Rd);
    EXPECT_EQ(s.system().memory().readWord(X), 9u);
}

TEST(Illinois, WriteHitOnSharedUsesOneCycleUpgrade)
{
    Scenario s(opts("illinois"));
    s.run(0, rd(X));
    s.run(1, rd(X));
    double up = s.system().bus().typeCount(BusReq::Upgrade);
    s.run(0, wr(X, 1));
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::Upgrade), up + 1);
    EXPECT_EQ(s.state(0, X), WrSrcDty);
    EXPECT_EQ(s.state(1, X), Inv);
}

TEST(Illinois, RmwIsAtomicUnderContention)
{
    Scenario s(opts("illinois"));
    // Interleaved test-and-set pairs: exactly one winner per round.
    for (int round = 0; round < 10; ++round) {
        auto r0 = s.run(0, rmw(X, 1));
        auto r1 = s.run(1, rmw(X, 1));
        // The first swap must win (see 0), the second must lose (see 1).
        EXPECT_EQ(r0.value, 0u);
        EXPECT_EQ(r1.value, 1u);
        (void)round;
        s.run(r0.value == 0 ? 0 : 1, wr(X, 0));
        s.run(2, rd(X));
    }
    EXPECT_DOUBLE_EQ(s.system().checker().violationCount.value(), 0.0);
}

TEST(Illinois, InvariantsHoldAfterMixedTraffic)
{
    Scenario s(opts("illinois", 4));
    for (int i = 0; i < 40; ++i) {
        unsigned p = i % 4;
        Addr a = X + Addr(i % 3) * 0x100;
        if (i % 2)
            s.run(p, wr(a, Word(i)));
        else
            s.run(p, rd(a));
    }
    EXPECT_EQ(s.system().checkStateInvariants(), 0u);
    EXPECT_DOUBLE_EQ(s.system().checker().violationCount.value(), 0.0);
}
