/**
 * @file
 * Tests for the directed scenario engine used by the figure benches.
 */

#include <gtest/gtest.h>

#include "system/replay.hh"
#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

TEST(Scenario, RunCompletesAndReturnsValue)
{
    Scenario s(opts("bitar"));
    s.run(0, wr(0x1000, 5));
    auto r = s.run(1, rd(0x1000));
    EXPECT_EQ(r.value, 5u);
}

TEST(Scenario, TryRunReportsPendingLockOps)
{
    Scenario s(opts("bitar"));
    s.run(0, lockRd(0x1000));
    AccessResult r;
    EXPECT_FALSE(s.tryRun(1, lockRd(0x1000), &r));
    EXPECT_FALSE(s.pendingCompleted(1));
    s.run(0, unlockWr(0x1000, 3));
    EXPECT_TRUE(s.pendingCompleted(1, &r));
    EXPECT_EQ(r.value, 3u);
}

TEST(Scenario, CollectsTraceNarration)
{
    Scenario::Options o;
    o.protocol = "bitar";
    o.processors = 2;
    o.collectTrace = true;
    {
        Scenario s(o);
        s.run(0, wr(0x1000, 1));
        EXPECT_FALSE(s.log().empty());
        bool has_grant = false;
        for (const auto &line : s.log())
            has_grant |= line.find("grant") != std::string::npos;
        EXPECT_TRUE(has_grant);
        s.clearLog();
        EXPECT_TRUE(s.log().empty());
        s.note("hello");
        ASSERT_EQ(s.log().size(), 1u);
        EXPECT_NE(s.log()[0].find("hello"), std::string::npos);
    }
    // Destructor must reset tracing.
    EXPECT_FALSE(Trace::enabled(TraceFlag::Bus));
}

TEST(Scenario, StateInspection)
{
    Scenario s(opts("illinois"));
    EXPECT_EQ(s.state(0, 0x1000), Inv);
    s.run(0, rd(0x1000));
    EXPECT_EQ(s.state(0, 0x1000), WrSrcCln);
}

// Paper-figure scenarios, driven through the model checker's replay
// path (TraceReplayer) so the exact interleavings stay serializable and
// re-checkable by `csync-mc replay`.

namespace
{

csync::DirectedTrace
bitarShape(unsigned procs)
{
    csync::DirectedTrace t;
    t.protocol = "bitar";
    t.processors = procs;
    return t;
}

} // anonymous namespace

TEST(ScenarioFigures, Fig4CacheToCacheTransferMigratesSource)
{
    using csync::DirectedKind;
    csync::TraceReplayer r(bitarShape(2));

    EXPECT_TRUE(r.step({0, DirectedKind::Write, 0x1000, 42}).completed);
    auto rd = r.step({1, DirectedKind::Read, 0x1000, 0});
    EXPECT_TRUE(rd.completed);
    EXPECT_EQ(rd.value, 42u);

    // Figure 4: the dirty block travels cache-to-cache without a flush;
    // source status (and dirty) move to the fetcher, the old owner
    // drops to a plain read copy.
    EXPECT_EQ(r.system().cache(1).stateOf(0x1000), RdSrcDty);
    EXPECT_EQ(r.system().cache(0).stateOf(0x1000), Rd);
    EXPECT_TRUE(r.verdict().clean());
}

TEST(ScenarioFigures, Fig7LockDenialRecordsWaiterAndArmsRegister)
{
    using csync::DirectedKind;
    csync::TraceReplayer r(bitarShape(2));

    EXPECT_TRUE(r.step({0, DirectedKind::LockRead, 0x1000, 0}).completed);
    auto contender = r.step({1, DirectedKind::LockRead, 0x1000, 0});
    EXPECT_TRUE(contender.issued);
    EXPECT_TRUE(contender.pending);

    // Figure 7: the holder's copy gains the waiter bit and the loser
    // parks in its busy-wait register instead of retrying on the bus.
    EXPECT_EQ(r.system().cache(0).stateOf(0x1000), LkSrcDtyWt);
    EXPECT_TRUE(r.system().cache(1).busyWaitArmed());
    EXPECT_TRUE(r.busy(1));

    // Release: the parked lock completes with the unlocking write's
    // value, and the verdict (incl. waiter liveness) is clean.
    EXPECT_TRUE(r.step({0, DirectedKind::UnlockWrite, 0x1000, 5}).completed);
    csync::Word got = 0;
    EXPECT_TRUE(r.pendingCompleted(1, &got));
    EXPECT_EQ(got, 5u);
    EXPECT_TRUE(r.verdict().clean());
}

TEST(ScenarioFigures, Fig9UnlockBroadcastServesWaitersWithoutRetries)
{
    using csync::DirectedKind;
    csync::TraceReplayer r(bitarShape(3));

    EXPECT_TRUE(r.step({0, DirectedKind::LockRead, 0x1000, 0}).completed);
    EXPECT_TRUE(r.step({1, DirectedKind::LockRead, 0x1000, 0}).pending);
    EXPECT_TRUE(r.step({2, DirectedKind::LockRead, 0x1000, 0}).pending);

    // First unlock: exactly one waiter wins the busy-wait arbitration
    // and sees the released value.
    EXPECT_TRUE(r.step({0, DirectedKind::UnlockWrite, 0x1000, 7}).completed);
    csync::Word got = 0;
    unsigned winner = r.pendingCompleted(1, &got) ? 1u : 2u;
    ASSERT_TRUE(r.pendingCompleted(winner, &got));
    EXPECT_EQ(got, 7u);
    unsigned loser = winner == 1 ? 2u : 1u;
    EXPECT_TRUE(r.busy(loser));

    // Second unlock: the remaining waiter is served in turn (Figure 9's
    // queue of waiting processors drains one per release).
    EXPECT_TRUE(
        r.step({winner, DirectedKind::UnlockWrite, 0x1000, 8}).completed);
    EXPECT_TRUE(r.pendingCompleted(loser, &got));
    EXPECT_EQ(got, 8u);

    // Feature 10's whole point: waiters sat in their registers, so no
    // lock request was ever retried over the bus.
    double retries = 0;
    for (unsigned i = 0; i < 3; ++i)
        retries += r.system().cache(i).lockRetries.value();
    EXPECT_EQ(retries, 0.0);
    EXPECT_TRUE(r.verdict().clean());
}
