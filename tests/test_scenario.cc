/**
 * @file
 * Tests for the directed scenario engine used by the figure benches.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

TEST(Scenario, RunCompletesAndReturnsValue)
{
    Scenario s(opts("bitar"));
    s.run(0, wr(0x1000, 5));
    auto r = s.run(1, rd(0x1000));
    EXPECT_EQ(r.value, 5u);
}

TEST(Scenario, TryRunReportsPendingLockOps)
{
    Scenario s(opts("bitar"));
    s.run(0, lockRd(0x1000));
    AccessResult r;
    EXPECT_FALSE(s.tryRun(1, lockRd(0x1000), &r));
    EXPECT_FALSE(s.pendingCompleted(1));
    s.run(0, unlockWr(0x1000, 3));
    EXPECT_TRUE(s.pendingCompleted(1, &r));
    EXPECT_EQ(r.value, 3u);
}

TEST(Scenario, CollectsTraceNarration)
{
    Scenario::Options o;
    o.protocol = "bitar";
    o.processors = 2;
    o.collectTrace = true;
    {
        Scenario s(o);
        s.run(0, wr(0x1000, 1));
        EXPECT_FALSE(s.log().empty());
        bool has_grant = false;
        for (const auto &line : s.log())
            has_grant |= line.find("grant") != std::string::npos;
        EXPECT_TRUE(has_grant);
        s.clearLog();
        EXPECT_TRUE(s.log().empty());
        s.note("hello");
        ASSERT_EQ(s.log().size(), 1u);
        EXPECT_NE(s.log()[0].find("hello"), std::string::npos);
    }
    // Destructor must reset tracing.
    EXPECT_FALSE(Trace::enabled(TraceFlag::Bus));
}

TEST(Scenario, StateInspection)
{
    Scenario s(opts("illinois"));
    EXPECT_EQ(s.state(0, 0x1000), Inv);
    s.run(0, rd(0x1000));
    EXPECT_EQ(s.state(0, 0x1000), WrSrcCln);
}
