/**
 * @file
 * Tests for the Katz et al. (Berkeley) protocol (1985): the dirty read
 * (owned) state, no flush on transfer, single source with memory
 * fallback, and the static unshared-data hint.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{
constexpr Addr X = 0x1000;
} // namespace

TEST(Berkeley, DirtyReadStateAfterSupplyingReader)
{
    Scenario s(opts("berkeley"));
    s.run(0, wr(X, 6));
    ASSERT_EQ(s.state(0, X), WrSrcDty);
    double flushes = s.system().memory().blockWrites.value();
    auto r = s.run(1, rd(X));
    EXPECT_EQ(r.value, 6u);
    // No flush; owner converts to the dirty read state; the requester
    // never takes source status.
    EXPECT_DOUBLE_EQ(s.system().memory().blockWrites.value(), flushes);
    EXPECT_EQ(s.state(0, X), RdSrcDty);
    EXPECT_EQ(s.state(1, X), Rd);
}

TEST(Berkeley, OwnerKeepsSupplyingReaders)
{
    Scenario s(opts("berkeley", 4));
    s.run(0, wr(X, 6));
    s.run(1, rd(X));
    double sup0 = s.cache(0).blocksSupplied.value();
    s.run(2, rd(X));
    // Single source: the owner supplies again (not the last fetcher).
    EXPECT_DOUBLE_EQ(s.cache(0).blocksSupplied.value(), sup0 + 1);
    EXPECT_EQ(s.state(0, X), RdSrcDty);
}

TEST(Berkeley, SourcePurgeFallsBackToMemory)
{
    Scenario s(opts("berkeley", 3, 4, 2));    // 2 frames per cache
    s.run(0, wr(X, 6));
    s.run(1, rd(X));
    ASSERT_EQ(s.state(0, X), RdSrcDty);
    // Evict the owner's copy (dirty -> flush).
    s.run(0, rd(0x2000));
    s.run(0, rd(0x3000));
    EXPECT_EQ(s.state(0, X), Inv);
    EXPECT_EQ(s.system().memory().readWord(X), 6u);
    double mem = s.system().bus().memSupplies.value();
    auto r = s.run(2, rd(X));
    EXPECT_EQ(r.value, 6u);
    EXPECT_DOUBLE_EQ(s.system().bus().memSupplies.value(), mem + 1);
}

TEST(Berkeley, HintedReadGetsCleanWriteState)
{
    Scenario s(opts("berkeley"));
    s.run(0, rd(X, true));
    EXPECT_EQ(s.state(0, X), WrSrcCln);
    // Never written: eviction needs no writeback.
    double wb = s.cache(0).writebacks.value();
    s.run(0, rd(0x2000));
    (void)wb;
    EXPECT_DOUBLE_EQ(s.cache(0).writebacks.value(), 0.0);
}

TEST(Berkeley, OwnershipMovesOnWrite)
{
    Scenario s(opts("berkeley"));
    s.run(0, wr(X, 1));
    s.run(1, wr(X, 2));
    EXPECT_EQ(s.state(1, X), WrSrcDty);
    EXPECT_EQ(s.state(0, X), Inv);
    auto r = s.run(2, rd(X));
    EXPECT_EQ(r.value, 2u);
    EXPECT_EQ(s.state(1, X), RdSrcDty);
}

TEST(Berkeley, UpgradeFromOwnedState)
{
    Scenario s(opts("berkeley"));
    s.run(0, wr(X, 1));
    s.run(1, rd(X));             // cache0 -> RdSrcDty
    double up = s.system().bus().typeCount(BusReq::Upgrade);
    s.run(0, wr(X, 2));          // owned, but shared: one-cycle upgrade
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::Upgrade), up + 1);
    EXPECT_EQ(s.state(0, X), WrSrcDty);
    EXPECT_EQ(s.state(1, X), Inv);
}

TEST(Berkeley, PingPongCoherent)
{
    Scenario s(opts("berkeley"));
    for (int i = 0; i < 20; ++i) {
        unsigned p = i % 3;
        s.run(p, wr(X, Word(i + 1)));
        auto r = s.run((p + 1) % 3, rd(X));
        EXPECT_EQ(r.value, Word(i + 1));
    }
    EXPECT_DOUBLE_EQ(s.system().checker().violationCount.value(), 0.0);
    EXPECT_EQ(s.system().checkStateInvariants(), 0u);
}
