/**
 * @file
 * Negative tests that *measure the historical weaknesses* the paper
 * attributes to earlier schemes — the blanks in Table 1 are as much a
 * claim as the check marks:
 *
 *  - Goodman 1983 and Yen et al. do not serialize processor atomic
 *    read-modify-writes (Feature 6 blank): concurrent test-and-set
 *    genuinely loses updates on them;
 *  - write-through for actively shared data pays a bus transaction per
 *    write (the Section D motivation);
 *  - without the busy-wait register, lock hand-offs put retries on the
 *    bus (the Section E.4 ablation).
 */

#include <gtest/gtest.h>

#include "proc/workloads/critical_section.hh"
#include "system/system.hh"
#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{

/** Drive contended TAS increments; return lost updates. */
std::int64_t
lostUpdates(const std::string &proto)
{
    SystemConfig cfg;
    cfg.protocol = proto;
    cfg.numProcessors = 3;
    cfg.cache.geom.frames = 32;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    const std::uint64_t iters = 50;
    CriticalSectionParams p;
    p.iterations = iters;
    p.alg = LockAlg::TestAndSet;
    p.numLocks = 1;
    p.wordsPerCs = 1;
    p.outsideThink = 2;
    for (unsigned i = 0; i < 3; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p));
    }
    sys.start();
    sys.run(50'000'000);
    if (!sys.allDone())
        return -1;    // deadlocked outright
    Word final_count = sys.checker().expectedValue(
        CriticalSectionWorkload::dataWordAddr(p, 0, 0));
    return std::int64_t(3 * iters) - std::int64_t(final_count);
}

} // namespace

TEST(HistoricalFlawsDeath, GoodmanRefusesTestAndSet)
{
    // Feature 6 is blank for Goodman in Table 1: the protocol's
    // publication defines no serialized read-modify-write, and the
    // write-once sequence cannot provide one (its premise dies under
    // contention).  The implementation makes the contract explicit.
    EXPECT_DEATH(lostUpdates("goodman"), "does not serialize");
}

TEST(HistoricalFlawsDeath, YenAndClassicRefuseTestAndSetToo)
{
    EXPECT_DEATH(lostUpdates("yen"), "does not serialize");
    EXPECT_DEATH(lostUpdates("classic_wt"), "does not serialize");
}

TEST(HistoricalFlaws, ProtocolsWithFeature6AreExact)
{
    for (const char *proto :
         {"bitar", "synapse", "illinois", "berkeley"}) {
        EXPECT_EQ(lostUpdates(proto), 0) << proto;
    }
}

TEST(HistoricalFlaws, WriteThroughPaysPerWrite)
{
    // Section D: under classic write-through, every write is a bus
    // transaction; under write-in, repeated writes to an owned block
    // are free.
    Scenario wt(opts("classic_wt", 2));
    wt.run(0, rd(0x1000));
    double tx0 = wt.system().bus().transactions.value();
    for (int i = 0; i < 16; ++i)
        wt.run(0, wr(0x1000, Word(i)));
    EXPECT_DOUBLE_EQ(wt.system().bus().transactions.value() - tx0, 16.0);

    Scenario wi(opts("bitar", 2));
    wi.run(0, wr(0x1000, 0));
    double tx1 = wi.system().bus().transactions.value();
    for (int i = 0; i < 16; ++i)
        wi.run(0, wr(0x1000, Word(i)));
    EXPECT_DOUBLE_EQ(wi.system().bus().transactions.value() - tx1, 0.0);
}

TEST(HistoricalFlaws, NoRegisterMeansBusRetries)
{
    // Section E.4 ablation: lock states without the busy-wait register
    // still serialize correctly, but denied requests retry on the bus.
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = 3;
    cfg.cache.geom.frames = 32;
    cfg.cache.geom.blockWords = 4;
    cfg.cache.useBusyWaitRegister = false;
    System sys(cfg);

    CriticalSectionParams p;
    p.iterations = 30;
    p.alg = LockAlg::CacheLock;
    p.numLocks = 1;
    p.wordsPerCs = 1;
    for (unsigned i = 0; i < 3; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p));
    }
    sys.start();
    sys.run(50'000'000);
    ASSERT_TRUE(sys.allDone());
    EXPECT_EQ(sys.checker().violations(), 0u);
    double retries = 0;
    for (unsigned i = 0; i < 3; ++i)
        retries += sys.cache(i).lockRetries.value();
    EXPECT_GT(retries, 0.0);
    // And mutual exclusion still holds.
    EXPECT_EQ(sys.checker().expectedValue(
                  CriticalSectionWorkload::dataWordAddr(p, 0, 0)),
              90u);
}
