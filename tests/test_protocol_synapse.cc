/**
 * @file
 * Tests for Frank's Synapse protocol (1984): the memory source bit, the
 * flush-then-refetch retry on read requests to dirty blocks (Table 1
 * note 1), direct transfer for write-privilege requests (NF), and the
 * one-cycle invalidate signal.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{
constexpr Addr X = 0x1000;
} // namespace

TEST(Synapse, WriteSetsMemorySourceBit)
{
    Scenario s(opts("synapse"));
    EXPECT_FALSE(s.system().memory().cacheOwned(X));
    s.run(0, wr(X, 1));
    EXPECT_EQ(s.state(0, X), WrSrcDty);
    EXPECT_TRUE(s.system().memory().cacheOwned(X));
}

TEST(Synapse, ReadOfDirtyBlockFlushesAndRetries)
{
    Scenario s(opts("synapse"));
    s.run(0, wr(X, 7));
    double retries = s.system().bus().retries.value();
    double c2c = s.system().bus().cacheSupplies.value();
    auto r = s.run(1, rd(X));
    EXPECT_EQ(r.value, 7u);
    // The owner flushed first; memory supplied on the retry; no direct
    // cache-to-cache transfer for a read-privilege request.
    EXPECT_DOUBLE_EQ(s.system().bus().retries.value(), retries + 1);
    EXPECT_DOUBLE_EQ(s.system().bus().cacheSupplies.value(), c2c);
    EXPECT_EQ(s.state(0, X), Rd);
    EXPECT_EQ(s.state(1, X), Rd);
    EXPECT_FALSE(s.system().memory().cacheOwned(X));
    EXPECT_EQ(s.system().memory().readWord(X), 7u);
}

TEST(Synapse, WritePrivilegeRequestGetsDirectTransfer)
{
    Scenario s(opts("synapse"));
    s.run(0, wr(X, 7));
    double c2c = s.system().bus().cacheSupplies.value();
    double flushes = s.system().memory().blockWrites.value();
    s.run(1, wr(X, 8));
    // Source provides data for a write-privilege request, without a
    // flush (Feature 7 NF); ownership moves.
    EXPECT_DOUBLE_EQ(s.system().bus().cacheSupplies.value(), c2c + 1);
    EXPECT_DOUBLE_EQ(s.system().memory().blockWrites.value(), flushes);
    EXPECT_EQ(s.state(0, X), Inv);
    EXPECT_EQ(s.state(1, X), WrSrcDty);
    EXPECT_TRUE(s.system().memory().cacheOwned(X));
}

TEST(Synapse, UpgradeUsesInvalidateSignal)
{
    Scenario s(opts("synapse"));
    s.run(0, rd(X));
    s.run(1, rd(X));
    double up = s.system().bus().typeCount(BusReq::Upgrade);
    double ww = s.system().bus().typeCount(BusReq::WriteWord);
    s.run(0, wr(X, 1));
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::Upgrade), up + 1);
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::WriteWord), ww);
    EXPECT_EQ(s.state(1, X), Inv);
}

TEST(Synapse, EvictionClearsSourceBit)
{
    Scenario s(opts("synapse", 3, 4, 2));    // 2 frames
    s.run(0, wr(X, 1));
    ASSERT_TRUE(s.system().memory().cacheOwned(X));
    s.run(0, rd(0x2000));
    s.run(0, rd(0x3000));    // evicts X (dirty -> writeback)
    EXPECT_EQ(s.state(0, X), Inv);
    EXPECT_FALSE(s.system().memory().cacheOwned(X));
    EXPECT_EQ(s.system().memory().readWord(X), 1u);
}

TEST(Synapse, NoFetchForWriteOnReadMiss)
{
    Scenario s(opts("synapse"));
    s.run(0, rd(X, true));    // hint ignored by Synapse
    EXPECT_EQ(s.state(0, X), Rd);
}

TEST(Synapse, PingPongCoherent)
{
    Scenario s(opts("synapse"));
    for (int i = 0; i < 20; ++i) {
        unsigned p = i % 3;
        s.run(p, wr(X, Word(i + 1)));
        auto r = s.run((p + 1) % 3, rd(X));
        EXPECT_EQ(r.value, Word(i + 1));
    }
    EXPECT_DOUBLE_EQ(s.system().checker().violationCount.value(), 0.0);
    EXPECT_EQ(s.system().checkStateInvariants(), 0u);
}
