/**
 * @file
 * Tests for the trace replay path: writer/reader round trip, the
 * reader's malformed-input error vocabulary (each failure mode gets a
 * distinct message, never a crash or a hang), end-to-end replay
 * through the campaign engine (including thread multiplexing and
 * determinism), bounded-memory streaming on a million-event trace,
 * and the committed golden trace staying a pure function of its
 * generation parameters.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/sweep.hh"
#include "trace/gen.hh"
#include "trace/reader.hh"
#include "trace/writer.hh"

using namespace csync;
using namespace csync::harness;
using namespace csync::trace;

#ifndef CSYNC_GOLDEN_DIR
#error "CSYNC_GOLDEN_DIR must point at tests/golden"
#endif

namespace
{

std::string
tempTrace(const std::string &tag)
{
    return ::testing::TempDir() + "csync_replay_" + tag + ".ctrace";
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << path;
    out.write(bytes.data(), std::streamsize(bytes.size()));
}

/** Generate a small mix trace and return its path. */
std::string
makeMixTrace(const std::string &tag, unsigned threads,
             std::uint64_t events, std::uint64_t seed = 1)
{
    GenParams p;
    p.kernel = "mix";
    p.threads = threads;
    p.events = events;
    p.seed = seed;
    std::string path = tempTrace(tag);
    std::string err;
    EXPECT_TRUE(generateTrace(p, path, &err)) << err;
    return path;
}

/** Expand a one-trace, one-protocol grid into its single job. */
JobSpec
traceJob(const std::string &trace_path, const std::string &protocol,
         unsigned procs, const std::string &topology = "single_bus")
{
    SweepSpec spec;
    spec.protocols = {protocol};
    spec.traces = {trace_path};
    spec.topologies = {topology};
    spec.processorCounts = {procs};
    std::vector<JobSpec> jobs;
    std::string err;
    EXPECT_TRUE(spec.expand(&jobs, &err)) << err;
    EXPECT_EQ(jobs.size(), 1u);
    return jobs.at(0);
}

} // anonymous namespace

TEST(TraceWriterReader, RoundTripsAcrossChunkBoundaries)
{
    std::string path = tempTrace("roundtrip");
    TraceWriter w;
    std::string err;
    // Two-event chunks force every stream through several chunks.
    ASSERT_TRUE(w.open(path, 2, 2, &err)) << err;
    std::vector<std::vector<TraceEvent>> want(2);
    for (unsigned t = 0; t < 2; ++t) {
        for (std::uint64_t i = 0; i < 5; ++i) {
            want[t].push_back(TraceEvent::compute(i + t));
            want[t].push_back(TraceEvent::read(0x2000000 + i * 8));
            want[t].push_back(TraceEvent::write(0x2000000 + i * 8));
        }
    }
    want[0].push_back(TraceEvent::lock(0x200000));
    want[0].push_back(TraceEvent::unlock(0x200000));
    want[1].push_back(TraceEvent::dep(0, 3));
    want[1].push_back(TraceEvent::barrier(0, 2));
    for (unsigned t = 0; t < 2; ++t) {
        for (const auto &ev : want[t])
            w.append(t, ev);
    }
    ASSERT_TRUE(w.finalize(&err)) << err;

    TraceReader r;
    ASSERT_TRUE(r.open(path, &err)) << err;
    EXPECT_EQ(r.numThreads(), 2u);
    EXPECT_EQ(r.header().totalEvents, want[0].size() + want[1].size());
    EXPECT_TRUE(r.header().hasLocks());
    EXPECT_TRUE(r.header().hasBarriers());
    EXPECT_TRUE(r.header().hasDeps());
    for (unsigned t = 0; t < 2; ++t) {
        EXPECT_EQ(r.threadEvents(t), want[t].size());
        for (const auto &exp : want[t]) {
            TraceEvent got;
            ASSERT_EQ(r.next(t, &got, &err), TraceReader::Status::Event)
                << err;
            EXPECT_EQ(got.kind, exp.kind);
            EXPECT_EQ(got.a, exp.a);
            EXPECT_EQ(got.b, exp.b);
        }
        TraceEvent got;
        EXPECT_EQ(r.next(t, &got, &err), TraceReader::Status::End);
    }
    std::remove(path.c_str());
}

TEST(TraceReaderErrors, BadMagicIsRejectedWithAClearMessage)
{
    std::string path = makeMixTrace("badmagic", 2, 200);
    std::string bytes = fileBytes(path);
    bytes[0] = 'X';
    writeBytes(path, bytes);
    TraceReader r;
    std::string err;
    EXPECT_FALSE(r.open(path, &err));
    EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
    EXPECT_NE(err.find("CTRC"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(TraceReaderErrors, UnsupportedVersionNamesBothVersions)
{
    std::string path = makeMixTrace("badversion", 2, 200);
    std::string bytes = fileBytes(path);
    bytes[4] = 99; // version u32 follows the magic
    writeBytes(path, bytes);
    TraceReader r;
    std::string err;
    EXPECT_FALSE(r.open(path, &err));
    EXPECT_NE(err.find("unsupported trace version 99"),
              std::string::npos) << err;
    EXPECT_NE(err.find("version 1"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(TraceReaderErrors, TruncatedChunkIsReportedNotCrashed)
{
    std::string path = makeMixTrace("truncated", 2, 200);
    std::string bytes = fileBytes(path);
    // Lop off the tail: the last chunk now ends mid-payload.
    bytes.resize(bytes.size() - 7);
    writeBytes(path, bytes);
    TraceReader r;
    std::string err;
    // The header and thread table are intact, so open() may succeed;
    // streaming must then fail with a truncation error.
    if (r.open(path, &err)) {
        TraceStats stats;
        EXPECT_FALSE(r.validate(&err, &stats));
    }
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(TraceReaderErrors, HeaderShorterThanFixedSizeIsTruncation)
{
    std::string path = tempTrace("stub");
    writeBytes(path, "CTRC");
    TraceReader r;
    std::string err;
    EXPECT_FALSE(r.open(path, &err));
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(TraceReaderErrors, DepOnNonexistentThreadIsRejected)
{
    std::string path = tempTrace("baddep");
    TraceWriter w;
    std::string err;
    ASSERT_TRUE(w.open(path, 2, 4096, &err)) << err;
    w.append(0, TraceEvent::read(0x2000000));
    w.append(1, TraceEvent::dep(7, 10)); // thread 7 of 2: nonsense
    ASSERT_TRUE(w.finalize(&err)) << err;

    TraceReader r;
    ASSERT_TRUE(r.open(path, &err)) << err;
    EXPECT_FALSE(r.validate(&err));
    EXPECT_NE(err.find("depends on nonexistent thread 7"),
              std::string::npos) << err;
    EXPECT_NE(err.find("trace has 2 threads"), std::string::npos) << err;
    std::remove(path.c_str());
}

TEST(TraceReplay, ReplaysThroughTheCampaignEngine)
{
    std::string path = makeMixTrace("e2e", 4, 2000);
    for (const char *topo : {"single_bus", "two_switch"}) {
        JobResult row =
            CampaignRunner::runJob(traceJob(path, "bitar", 4, topo));
        EXPECT_TRUE(row.ok()) << topo << ": " << row.status << " "
                              << row.error;
        EXPECT_GT(row.memOps, 0u) << topo;
        EXPECT_EQ(row.checkerViolations, 0u) << topo;
    }
    std::remove(path.c_str());
}

TEST(TraceReplay, MultiplexesMoreThreadsThanProcessors)
{
    std::string path = makeMixTrace("mux", 6, 2400);
    JobResult row = CampaignRunner::runJob(traceJob(path, "bitar", 2));
    EXPECT_TRUE(row.ok()) << row.status << " " << row.error;
    EXPECT_GT(row.memOps, 0u);
    EXPECT_EQ(row.checkerViolations, 0u);
    std::remove(path.c_str());
}

TEST(TraceReplay, ReplayIsDeterministic)
{
    std::string path = makeMixTrace("det", 6, 2400, 3);
    JobSpec job = traceJob(path, "bitar", 4);
    JobResult a = CampaignRunner::runJob(job);
    JobResult b = CampaignRunner::runJob(job);
    ASSERT_TRUE(a.ok()) << a.error;
    ASSERT_TRUE(b.ok()) << b.error;
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.memOps, b.memOps);
    // The full flattened stat tree must match, not just the headline
    // numbers.
    EXPECT_EQ(a.stats, b.stats);
    std::remove(path.c_str());
}

TEST(TraceReplay, LockFreeTraceReplaysOnLocklessProtocols)
{
    GenParams p;
    p.kernel = "barrier";
    p.threads = 4;
    p.events = 1200;
    std::string path = tempTrace("lockfree");
    std::string err;
    ASSERT_TRUE(generateTrace(p, path, &err)) << err;
    // goodman has neither cache locks nor atomic RMW; a lock-free
    // trace must still replay there.
    JobResult row = CampaignRunner::runJob(traceJob(path, "goodman", 4));
    EXPECT_TRUE(row.ok()) << row.status << " " << row.error;
    std::remove(path.c_str());
}

TEST(TraceReplay, LockTraceOnLocklessProtocolIsAnErrorRow)
{
    std::string path = makeMixTrace("nolocks", 4, 1100);
    JobResult row = CampaignRunner::runJob(traceJob(path, "goodman", 4));
    EXPECT_EQ(row.status, "error");
    EXPECT_NE(row.error.find("lock"), std::string::npos) << row.error;
    std::remove(path.c_str());
}

TEST(TraceReplay, MillionEventTraceStreamsWithBoundedMemory)
{
    GenParams p;
    p.kernel = "mix";
    p.threads = 8;
    p.events = 1'000'000;
    std::string path = tempTrace("million");
    std::string err;
    ASSERT_TRUE(generateTrace(p, path, &err)) << err;

    TraceReader r;
    ASSERT_TRUE(r.open(path, &err)) << err;
    TraceStats stats;
    ASSERT_TRUE(r.validate(&err, &stats)) << err;
    EXPECT_GE(stats.total, 990'000u);
    // Streaming proof: a ~1M-event trace is several MB on disk, but
    // the reader never holds more than one chunk per thread.
    EXPECT_LT(r.maxResidentPayloadBytes(), 64u * 1024u);
    std::remove(path.c_str());
}

TEST(TraceReplay, CommittedGoldenTraceMatchesItsGenerator)
{
    // The golden is `csync-trace gen --kernel mix --threads 8
    // --events 100000 --seed 1`; regenerating must give the same
    // bytes, or replay baselines quietly drift.
    GenParams p;
    p.kernel = "mix";
    p.threads = 8;
    p.events = 100'000;
    p.seed = 1;
    std::string path = tempTrace("golden_regen");
    std::string err;
    ASSERT_TRUE(generateTrace(p, path, &err)) << err;
    std::string golden =
        std::string(CSYNC_GOLDEN_DIR) + "/mix_100k.ctrace";
    EXPECT_EQ(fileBytes(path), fileBytes(golden));
    std::remove(path.c_str());
}
