/**
 * @file
 * Property tests for the pluggable bus arbitration policies
 * (mem/arbitration.hh): starvation-freedom under sustained contention
 * for every registered policy, strict FIFO service for fcfs, sync-class
 * alternation for alternating_priority, and busy-wait priority
 * supremacy regardless of discipline.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "mem/arbitration.hh"
#include "mem/bus.hh"
#include "sim/logging.hh"

using namespace csync;

namespace
{

/** A client that keeps re-requesting until it has won @p wanted grants. */
struct GreedyClient : public BusClient
{
    NodeId id;
    Bus *bus = nullptr;
    EventQueue *eq = nullptr;
    TrafficClass cls = TrafficClass::Data;
    BusPriority pri = BusPriority::Normal;
    unsigned wanted = 1;
    unsigned completed = 0;
    std::vector<Tick> completeTicks;

    explicit GreedyClient(NodeId i) : id(i) {}

    NodeId nodeId() const override { return id; }

    bool
    busGrant(BusMsg &msg) override
    {
        BusMsg m;
        m.req = BusReq::ReadShared;
        m.blockAddr = 0x1000;
        m.cls = cls;
        msg = m;
        return true;
    }

    SnoopReply snoop(const BusMsg &) override { return SnoopReply(); }

    void
    busComplete(const BusMsg &, const SnoopResult &) override
    {
        ++completed;
        completeTicks.push_back(eq->now());
        if (completed < wanted)
            bus->request(this, pri, cls);
    }
};

/** One bus under a chosen discipline plus its contending clients. */
struct Rig
{
    EventQueue eq;
    stats::Group root{"root"};
    Memory mem{"memory", &eq, 4, &root};
    BusTiming timing{};
    Bus bus;
    std::vector<std::unique_ptr<GreedyClient>> clients;

    explicit Rig(const std::string &policy)
        : bus("bus", &eq, &mem, timing, &root, kAllTraffic, false, policy)
    {
    }

    GreedyClient *
    addClient(NodeId id, unsigned wanted = 1,
              TrafficClass cls = TrafficClass::Data)
    {
        clients.push_back(std::make_unique<GreedyClient>(id));
        clients.back()->bus = &bus;
        clients.back()->eq = &eq;
        clients.back()->wanted = wanted;
        clients.back()->cls = cls;
        bus.addClient(clients.back().get());
        return clients.back().get();
    }

    /** All completions as (tick, node), in grant order. */
    std::vector<std::pair<Tick, NodeId>>
    grantOrder() const
    {
        std::vector<std::pair<Tick, NodeId>> order;
        for (const auto &c : clients)
            for (Tick t : c->completeTicks)
                order.emplace_back(t, c->id);
        std::sort(order.begin(), order.end());
        return order;
    }
};

} // namespace

TEST(Arbitration, RegistryKnowsEveryPolicyAndRejectsTypos)
{
    EXPECT_EQ(ArbitrationRegistry::names().size(), 3u);
    for (const auto &name : ArbitrationRegistry::names()) {
        EXPECT_TRUE(ArbitrationRegistry::known(name));
        auto policy = ArbitrationRegistry::make(name);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->name(), name);
    }
    EXPECT_FALSE(ArbitrationRegistry::known("coin_flip"));
    ScopedFatalThrow guard;
    EXPECT_THROW(ArbitrationRegistry::make("coin_flip"), FatalError);
}

TEST(Arbitration, EveryPolicyIsStarvationFreeUnderContention)
{
    // Four clients hammer the bus with eight back-to-back requests
    // each.  Under every discipline all of them must finish, and no
    // client may lap another: within any window of four consecutive
    // grants each node appears exactly once.
    constexpr unsigned kClients = 4, kGrants = 8;
    for (const auto &policy : ArbitrationRegistry::names()) {
        Rig rig(policy);
        for (unsigned i = 0; i < kClients; ++i)
            rig.addClient(NodeId(i), kGrants);
        for (auto &c : rig.clients)
            rig.bus.request(c.get());
        rig.eq.run();

        for (const auto &c : rig.clients)
            EXPECT_EQ(c->completed, kGrants) << policy << " starved node "
                                             << c->id;
        auto order = rig.grantOrder();
        ASSERT_EQ(order.size(), std::size_t(kClients) * kGrants) << policy;
        for (std::size_t w = 0; w + kClients <= order.size();
             w += kClients) {
            std::vector<NodeId> window;
            for (std::size_t i = 0; i < kClients; ++i)
                window.push_back(order[w + i].second);
            std::sort(window.begin(), window.end());
            EXPECT_EQ(window, (std::vector<NodeId>{0, 1, 2, 3}))
                << policy << ": unfair window at grant " << w;
        }
    }
}

TEST(Arbitration, FcfsServesPostingOrderNotNodeOrder)
{
    // Same-tick requests are served in the order they were posted;
    // round-robin (from its initial point) would grant node 0 first.
    Rig rig("fcfs");
    auto *c0 = rig.addClient(0);
    auto *c1 = rig.addClient(1);
    auto *c2 = rig.addClient(2);
    rig.bus.request(c1);
    rig.bus.request(c0);
    rig.bus.request(c2);
    rig.eq.run();
    EXPECT_LT(c1->completeTicks.at(0), c0->completeTicks.at(0));
    EXPECT_LT(c0->completeTicks.at(0), c2->completeTicks.at(0));
}

TEST(Arbitration, FcfsPrefersOldestPostedTick)
{
    auto policy = ArbitrationRegistry::make("fcfs");
    std::vector<ArbRequest> reqs;
    reqs.push_back({2, BusPriority::Normal, TrafficClass::Data, 30});
    reqs.push_back({0, BusPriority::Normal, TrafficClass::Data, 10});
    reqs.push_back({1, BusPriority::Normal, TrafficClass::Data, 10});
    // Oldest tick wins; posting order breaks the 10-tick tie.
    EXPECT_EQ(policy->pick(reqs, 4), 1u);
}

TEST(Arbitration, AlternatingPriorityAlternatesSyncAndData)
{
    // Two data streamers and one sync client, all saturating.  The
    // discipline must alternate classes, so the lone sync client wins
    // every other grant instead of queueing behind the data stream.
    Rig rig("alternating_priority");
    rig.addClient(0, 4, TrafficClass::Data);
    rig.addClient(1, 4, TrafficClass::Data);
    auto *sync = rig.addClient(2, 4, TrafficClass::Sync);
    for (auto &c : rig.clients)
        rig.bus.request(c.get(), BusPriority::Normal, c->cls);
    rig.eq.run();

    EXPECT_EQ(sync->completed, 4u);
    auto order = rig.grantOrder();
    // Grants 0, 2, 4, 6 are the sync client's; data rotates between.
    for (std::size_t i = 0; i < 8; ++i) {
        if (i % 2 == 0)
            EXPECT_EQ(order[i].second, 2) << "grant " << i;
        else
            EXPECT_NE(order[i].second, 2) << "grant " << i;
    }
    // The data class round-robins within its turns (no pinned node).
    EXPECT_NE(order[1].second, order[3].second);
}

TEST(Arbitration, AlternatingPriorityServesSoleClassWithoutIdling)
{
    // All-data contention must not deadlock or idle on the sync
    // preference: with no sync request pending the data class is
    // served immediately.
    Rig rig("alternating_priority");
    auto *c0 = rig.addClient(0, 2);
    auto *c1 = rig.addClient(1, 2);
    rig.bus.request(c0);
    rig.bus.request(c1);
    rig.eq.run();
    EXPECT_EQ(c0->completed, 2u);
    EXPECT_EQ(c1->completed, 2u);
}

TEST(Arbitration, BusyWaitPriorityBeatsEveryDiscipline)
{
    // The paper's most-significant priority bit (Section E.4) outranks
    // whatever the policy would pick: a busy-wait request always beats
    // normal requests, under every discipline.
    for (const auto &policy : ArbitrationRegistry::names()) {
        Rig rig(policy);
        auto *c0 = rig.addClient(0);
        auto *c1 = rig.addClient(1);
        auto *c2 = rig.addClient(2);
        // c0 occupies the bus; c1 (normal) queues before c2 (busy-wait).
        rig.bus.request(c0);
        rig.bus.request(c1);
        rig.bus.request(c2, BusPriority::BusyWait);
        rig.eq.run();
        EXPECT_LT(c2->completeTicks.at(0), c1->completeTicks.at(0))
            << policy;
        EXPECT_DOUBLE_EQ(rig.bus.highPriorityGrants.value(), 1.0)
            << policy;
    }
}
