/**
 * @file
 * Tests for the Yen, Yen & Fu protocol (1985): Goodman's states plus the
 * bus invalidate signal and the *static* (compiler-declared) fetch of
 * unshared data for write privilege.
 */

#include <gtest/gtest.h>

#include "test_helpers.hh"

using namespace csync;
using namespace csync::test;

namespace
{
constexpr Addr X = 0x1000;
} // namespace

TEST(Yen, PlainReadMissStaysReadOnly)
{
    Scenario s(opts("yen"));
    s.run(0, rd(X));    // no hint
    EXPECT_EQ(s.state(0, X), Rd);
}

TEST(Yen, HintedReadMissFetchesWritePrivilege)
{
    Scenario s(opts("yen"));
    s.run(0, rd(X, /*hint=*/true));
    // Static declaration: write privilege, clean (no flush needed if
    // never written).
    EXPECT_EQ(s.state(0, X), WrCln);
    double tx = s.system().bus().transactions.value();
    s.run(0, wr(X, 1));
    EXPECT_DOUBLE_EQ(s.system().bus().transactions.value(), tx);
    EXPECT_EQ(s.state(0, X), WrSrcDty);
}

TEST(Yen, HintOnlyAffectsMisses)
{
    Scenario s(opts("yen"));
    s.run(0, rd(X));          // Valid, read-only
    s.run(0, rd(X, true));    // hit: hint must not upgrade
    EXPECT_EQ(s.state(0, X), Rd);
}

TEST(Yen, WriteHitUsesInvalidateSignalNotWriteThrough)
{
    Scenario s(opts("yen"));
    s.run(0, rd(X));
    s.run(1, rd(X));
    double up = s.system().bus().typeCount(BusReq::Upgrade);
    double ww = s.system().bus().typeCount(BusReq::WriteWord);
    s.run(0, wr(X, 1));
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::Upgrade), up + 1);
    EXPECT_DOUBLE_EQ(s.system().bus().typeCount(BusReq::WriteWord), ww);
    EXPECT_EQ(s.state(0, X), WrSrcDty);    // straight to dirty
    EXPECT_EQ(s.state(1, X), Inv);
}

TEST(Yen, DirtyTransferFlushes)
{
    Scenario s(opts("yen"));
    s.run(0, wr(X, 3));
    ASSERT_EQ(s.state(0, X), WrSrcDty);
    double flushes = s.system().memory().blockWrites.value();
    auto r = s.run(1, rd(X));
    EXPECT_EQ(r.value, 3u);
    EXPECT_GT(s.system().memory().blockWrites.value(), flushes);
    EXPECT_EQ(s.state(0, X), Rd);
}

TEST(Yen, CleanWriteStateIsNotSource)
{
    Scenario s(opts("yen"));
    s.run(0, rd(X, true));    // WrCln
    double c2c = s.system().bus().cacheSupplies.value();
    s.run(1, rd(X));
    // The clean write state is non-source: memory supplies.
    EXPECT_DOUBLE_EQ(s.system().bus().cacheSupplies.value(), c2c);
    EXPECT_EQ(s.state(0, X), Rd);
}

TEST(Yen, PingPongCoherent)
{
    Scenario s(opts("yen"));
    for (int i = 0; i < 20; ++i) {
        unsigned p = i % 3;
        s.run(p, wr(X, Word(i + 1)));
        auto r = s.run((p + 1) % 3, rd(X));
        EXPECT_EQ(r.value, Word(i + 1));
    }
    EXPECT_DOUBLE_EQ(s.system().checker().violationCount.value(), 0.0);
    EXPECT_EQ(s.system().checkStateInvariants(), 0u);
}
