/**
 * @file
 * Lock property tests: for every (protocol × lock algorithm × processor
 * count) combination that claims serialized atomic operations, contended
 * critical sections must preserve exact mutual exclusion, terminate,
 * and — for the paper's cache-lock scheme — generate zero unsuccessful
 * retries on the bus (claim Q5).
 */

#include <gtest/gtest.h>

#include "proc/workloads/critical_section.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct LockCase
{
    std::string protocol;
    LockAlg alg;
    unsigned procs;
    unsigned numLocks;
    bool workWhileWaiting;
};

std::string
caseName(const ::testing::TestParamInfo<LockCase> &info)
{
    const auto &c = info.param;
    std::string alg = c.alg == LockAlg::CacheLock ? "cachelock"
                      : c.alg == LockAlg::TestAndSet ? "tas"
                                                     : "ttas";
    return c.protocol + "_" + alg + "_p" + std::to_string(c.procs) +
           "_l" + std::to_string(c.numLocks) +
           (c.workWhileWaiting ? "_www" : "");
}

class LockProperty : public ::testing::TestWithParam<LockCase>
{
};

std::vector<LockCase>
makeCases()
{
    std::vector<LockCase> cases;
    for (unsigned procs : {2u, 4u, 7u}) {
        for (unsigned locks : {1u, 3u}) {
            cases.push_back({"bitar", LockAlg::CacheLock, procs, locks,
                             false});
            cases.push_back({"bitar", LockAlg::TestTestSet, procs,
                             locks, false});
            cases.push_back({"bitar", LockAlg::TestAndSet, procs, locks,
                             false});
            cases.push_back({"illinois", LockAlg::TestTestSet, procs,
                             locks, false});
            cases.push_back({"synapse", LockAlg::TestAndSet, procs,
                             locks, false});
            cases.push_back({"berkeley", LockAlg::TestTestSet, procs,
                             locks, false});
            cases.push_back({"dragon", LockAlg::TestTestSet, procs,
                             locks, false});
            cases.push_back({"firefly", LockAlg::TestAndSet, procs,
                             locks, false});
            cases.push_back({"rudolph_segall", LockAlg::TestTestSet,
                             procs, locks, false});
        }
    }
    // Work-while-waiting (Section E.4's second purpose).
    cases.push_back({"bitar", LockAlg::CacheLock, 4, 1, true});
    cases.push_back({"bitar", LockAlg::CacheLock, 6, 2, true});
    return cases;
}

} // namespace

TEST_P(LockProperty, MutualExclusionExact)
{
    const auto &c = GetParam();
    SystemConfig cfg;
    cfg.protocol = c.protocol;
    cfg.numProcessors = c.procs;
    cfg.cache.geom.frames = 32;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    const std::uint64_t iters = 30;
    CriticalSectionParams p;
    p.iterations = iters;
    p.alg = c.alg;
    p.numLocks = c.numLocks;
    p.wordsPerCs = 2;
    for (unsigned i = 0; i < c.procs; ++i) {
        p.procId = i;
        p.seed = 99 + i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p),
                         c.workWhileWaiting);
    }
    sys.start();
    sys.run(40'000'000);

    ASSERT_TRUE(sys.allDone());
    EXPECT_EQ(sys.checker().violations(), 0u)
        << (sys.checker().violationLog().empty()
                ? std::string("?")
                : sys.checker().violationLog()[0]);

    Word sum = 0;
    for (unsigned l = 0; l < p.numLocks; ++l)
        for (unsigned w = 0; w < p.wordsPerCs; ++w)
            sum += sys.checker().expectedValue(
                CriticalSectionWorkload::dataWordAddr(p, l, w));
    EXPECT_EQ(sum, Word(c.procs) * iters * p.wordsPerCs);

    if (c.alg == LockAlg::CacheLock) {
        // Q5: the wait scheme eliminates ALL unsuccessful retries.
        double retries = 0;
        for (unsigned i = 0; i < c.procs; ++i)
            retries += sys.cache(i).lockRetries.value();
        EXPECT_DOUBLE_EQ(retries, 0.0);
    }
    std::string why;
    EXPECT_EQ(sys.checkStateInvariants(&why), 0u) << why;
}

INSTANTIATE_TEST_SUITE_P(Locks, LockProperty,
                         ::testing::ValuesIn(makeCases()), caseName);
