/**
 * @file
 * Determinism regression tests: the same SystemConfig + seed must
 * reproduce the exact same simulation — byte-identical stats dumps —
 * across repeated runs.  This is the invariant the parallel campaign
 * runner relies on: scheduling jobs across threads cannot change any
 * row because each job is a pure function of its spec.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/workload_factory.hh"
#include "system/system.hh"

using namespace csync;
using namespace csync::harness;

namespace
{

/** Build, run, and dump one configuration; returns both dumps. */
struct RunOutput
{
    std::string text;
    std::string json;
    Tick ticks;
};

RunOutput
runOnce(const std::string &protocol, const std::string &workload,
        unsigned procs, std::uint64_t seed,
        const FaultPlan &fault = FaultPlan{},
        const TopologyConfig &topo = TopologyConfig::singleBus())
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    cfg.fault = fault;
    cfg.topology = topo;
    System sys(cfg);
    for (unsigned i = 0; i < procs; ++i) {
        WorkloadSlot slot;
        slot.procId = i;
        slot.numProcs = procs;
        slot.ops = 400;
        slot.seed = seed;
        slot.protocol = protocol;
        std::string err;
        auto w = makeWorkload(workload, slot, &err);
        EXPECT_NE(w, nullptr) << err;
        sys.addProcessor(std::move(w));
    }
    sys.start();
    RunOutput out;
    out.ticks = sys.run();
    EXPECT_TRUE(sys.allDone());
    std::ostringstream text, json;
    sys.dumpStats(text);
    sys.dumpStatsJson(json);
    out.text = text.str();
    out.json = json.str();
    return out;
}

} // namespace

TEST(Determinism, SameConfigSameSeedIsByteIdentical)
{
    for (const char *proto : {"bitar", "classic_wt", "dragon"}) {
        RunOutput a = runOnce(proto, "random_sharing", 4, 42);
        RunOutput b = runOnce(proto, "random_sharing", 4, 42);
        EXPECT_EQ(a.ticks, b.ticks) << proto;
        EXPECT_EQ(a.text, b.text) << proto;
        EXPECT_EQ(a.json, b.json) << proto;
        EXPECT_FALSE(a.text.empty());
    }
}

TEST(Determinism, LockWorkloadIsByteIdentical)
{
    RunOutput a = runOnce("bitar", "critical_section", 3, 7);
    RunOutput b = runOnce("bitar", "critical_section", 3, 7);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.json, b.json);
}

TEST(Determinism, TwoSwitchRunsAreByteIdentical)
{
    // The multi-interconnect machine must be exactly as reproducible as
    // the single bus: two event queues' worth of interleaving is still
    // a pure function of the configuration.
    for (const char *wl : {"service_queue", "random_sharing"}) {
        RunOutput a = runOnce("bitar", wl, 4, 42, FaultPlan{},
                              TopologyConfig::twoSwitch());
        RunOutput b = runOnce("bitar", wl, 4, 42, FaultPlan{},
                              TopologyConfig::twoSwitch());
        EXPECT_EQ(a.ticks, b.ticks) << wl;
        EXPECT_EQ(a.text, b.text) << wl;
        EXPECT_EQ(a.json, b.json) << wl;
        EXPECT_NE(a.text.find("sync_bus."), std::string::npos) << wl;
    }
}

TEST(Determinism, DifferentSeedsDiverge)
{
    RunOutput a = runOnce("bitar", "random_sharing", 4, 1);
    RunOutput b = runOnce("bitar", "random_sharing", 4, 2);
    // Different reference streams must not produce the same dump
    // (otherwise the seed axis of a sweep is meaningless).
    EXPECT_NE(a.text, b.text);
}

namespace
{

FaultPlan
faultPlan(double rate, std::uint64_t seed)
{
    FaultPlan fp;
    fp.rate = rate;
    fp.seed = seed;
    return fp;
}

} // namespace

TEST(Determinism, FaultInjectedRunsAreByteIdentical)
{
    // Faults must be exactly as reproducible as clean runs: the fault
    // PRNG is part of the configuration, not of the host environment.
    for (const char *wl : {"random_sharing", "critical_section"}) {
        RunOutput a = runOnce("bitar", wl, 4, 42, faultPlan(0.2, 7));
        RunOutput b = runOnce("bitar", wl, 4, 42, faultPlan(0.2, 7));
        EXPECT_EQ(a.ticks, b.ticks) << wl;
        EXPECT_EQ(a.text, b.text) << wl;
        EXPECT_EQ(a.json, b.json) << wl;
        EXPECT_NE(a.text.find("faults."), std::string::npos) << wl;
    }
}

TEST(Determinism, DifferentFaultSeedsDiverge)
{
    RunOutput a = runOnce("bitar", "random_sharing", 4, 42,
                          faultPlan(0.2, 1));
    RunOutput b = runOnce("bitar", "random_sharing", 4, 42,
                          faultPlan(0.2, 2));
    EXPECT_NE(a.text, b.text);
}

TEST(Determinism, FaultFreePlanMatchesPlainRun)
{
    // rate 0 must not merely behave the same — it must be the very
    // same simulation, stats tree included.
    RunOutput a = runOnce("bitar", "random_sharing", 4, 42);
    RunOutput b = runOnce("bitar", "random_sharing", 4, 42,
                          faultPlan(0.0, 99));
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.json, b.json);
}
