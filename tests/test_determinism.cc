/**
 * @file
 * Determinism regression tests: the same SystemConfig + seed must
 * reproduce the exact same simulation — byte-identical stats dumps —
 * across repeated runs.  This is the invariant the parallel campaign
 * runner relies on: scheduling jobs across threads cannot change any
 * row because each job is a pure function of its spec.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "coherence/protocol.hh"
#include "harness/workload_factory.hh"
#include "system/system.hh"

using namespace csync;
using namespace csync::harness;

namespace
{

/** Build, run, and dump one configuration; returns both dumps. */
struct RunOutput
{
    std::string text;
    std::string json;
    Tick ticks;
};

RunOutput
runOnce(const std::string &protocol, const std::string &workload,
        unsigned procs, std::uint64_t seed,
        const FaultPlan &fault = FaultPlan{},
        const TopologyConfig &topo = TopologyConfig::singleBus(),
        unsigned simThreads = 1)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    cfg.fault = fault;
    cfg.topology = topo;
    cfg.simThreads = simThreads;
    System sys(cfg);
    for (unsigned i = 0; i < procs; ++i) {
        WorkloadSlot slot;
        slot.procId = i;
        slot.numProcs = procs;
        slot.ops = 400;
        slot.seed = seed;
        slot.protocol = protocol;
        std::string err;
        auto w = makeWorkload(workload, slot, &err);
        EXPECT_NE(w, nullptr) << err;
        sys.addProcessor(std::move(w));
    }
    sys.start();
    RunOutput out;
    out.ticks = sys.run();
    EXPECT_TRUE(sys.allDone());
    std::ostringstream text, json;
    sys.dumpStats(text);
    sys.dumpStatsJson(json);
    out.text = text.str();
    out.json = json.str();
    return out;
}

} // namespace

TEST(Determinism, SameConfigSameSeedIsByteIdentical)
{
    for (const char *proto : {"bitar", "classic_wt", "dragon"}) {
        RunOutput a = runOnce(proto, "random_sharing", 4, 42);
        RunOutput b = runOnce(proto, "random_sharing", 4, 42);
        EXPECT_EQ(a.ticks, b.ticks) << proto;
        EXPECT_EQ(a.text, b.text) << proto;
        EXPECT_EQ(a.json, b.json) << proto;
        EXPECT_FALSE(a.text.empty());
    }
}

TEST(Determinism, LockWorkloadIsByteIdentical)
{
    RunOutput a = runOnce("bitar", "critical_section", 3, 7);
    RunOutput b = runOnce("bitar", "critical_section", 3, 7);
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.json, b.json);
}

TEST(Determinism, TwoSwitchRunsAreByteIdentical)
{
    // The multi-interconnect machine must be exactly as reproducible as
    // the single bus: two event queues' worth of interleaving is still
    // a pure function of the configuration.
    for (const char *wl : {"service_queue", "random_sharing"}) {
        RunOutput a = runOnce("bitar", wl, 4, 42, FaultPlan{},
                              TopologyConfig::twoSwitch());
        RunOutput b = runOnce("bitar", wl, 4, 42, FaultPlan{},
                              TopologyConfig::twoSwitch());
        EXPECT_EQ(a.ticks, b.ticks) << wl;
        EXPECT_EQ(a.text, b.text) << wl;
        EXPECT_EQ(a.json, b.json) << wl;
        EXPECT_NE(a.text.find("sync_bus."), std::string::npos) << wl;
    }
}

TEST(Determinism, DifferentSeedsDiverge)
{
    RunOutput a = runOnce("bitar", "random_sharing", 4, 1);
    RunOutput b = runOnce("bitar", "random_sharing", 4, 2);
    // Different reference streams must not produce the same dump
    // (otherwise the seed axis of a sweep is meaningless).
    EXPECT_NE(a.text, b.text);
}

namespace
{

FaultPlan
faultPlan(double rate, std::uint64_t seed)
{
    FaultPlan fp;
    fp.rate = rate;
    fp.seed = seed;
    return fp;
}

} // namespace

TEST(Determinism, FaultInjectedRunsAreByteIdentical)
{
    // Faults must be exactly as reproducible as clean runs: the fault
    // PRNG is part of the configuration, not of the host environment.
    for (const char *wl : {"random_sharing", "critical_section"}) {
        RunOutput a = runOnce("bitar", wl, 4, 42, faultPlan(0.2, 7));
        RunOutput b = runOnce("bitar", wl, 4, 42, faultPlan(0.2, 7));
        EXPECT_EQ(a.ticks, b.ticks) << wl;
        EXPECT_EQ(a.text, b.text) << wl;
        EXPECT_EQ(a.json, b.json) << wl;
        EXPECT_NE(a.text.find("faults."), std::string::npos) << wl;
    }
}

TEST(Determinism, DifferentFaultSeedsDiverge)
{
    RunOutput a = runOnce("bitar", "random_sharing", 4, 42,
                          faultPlan(0.2, 1));
    RunOutput b = runOnce("bitar", "random_sharing", 4, 42,
                          faultPlan(0.2, 2));
    EXPECT_NE(a.text, b.text);
}

TEST(Determinism, FaultFreePlanMatchesPlainRun)
{
    // rate 0 must not merely behave the same — it must be the very
    // same simulation, stats tree included.
    RunOutput a = runOnce("bitar", "random_sharing", 4, 42);
    RunOutput b = runOnce("bitar", "random_sharing", 4, 42,
                          faultPlan(0.0, 99));
    EXPECT_EQ(a.text, b.text);
    EXPECT_EQ(a.json, b.json);
}

// --------------------------------------------------------------------
// Serial vs sharded-parallel: --sim-threads must never change a result
// --------------------------------------------------------------------

TEST(ParallelDeterminism, EveryProtocolMatchesSerialOnDomainLocal)
{
    // The strongest form of the parallel-engine contract: for every
    // registered protocol family, the genuinely sharded two-switch run
    // produces byte-identical stats to the serial engine at every
    // thread count.
    for (const std::string &proto : ProtocolRegistry::names()) {
        RunOutput serial =
            runOnce(proto, "domain_local", 8, 42, FaultPlan{},
                    TopologyConfig::twoSwitch(), 1);
        for (unsigned threads : {2u, 4u}) {
            RunOutput sharded =
                runOnce(proto, "domain_local", 8, 42, FaultPlan{},
                        TopologyConfig::twoSwitch(), threads);
            EXPECT_EQ(serial.ticks, sharded.ticks)
                << proto << " @" << threads;
            EXPECT_EQ(serial.text, sharded.text)
                << proto << " @" << threads;
            EXPECT_EQ(serial.json, sharded.json)
                << proto << " @" << threads;
        }
        EXPECT_FALSE(serial.text.empty()) << proto;
    }
}

TEST(ParallelDeterminism, EveryTopologyPresetMatchesSerial)
{
    // Presets the partition rejects (single_bus) must fall back to the
    // serial path and still match trivially; two_switch runs sharded.
    for (const std::string &preset : TopologyConfig::names()) {
        TopologyConfig topo;
        ASSERT_TRUE(TopologyConfig::fromName(preset, &topo)) << preset;
        RunOutput serial = runOnce("bitar", "domain_local", 4, 7,
                                   FaultPlan{}, topo, 1);
        RunOutput sharded = runOnce("bitar", "domain_local", 4, 7,
                                    FaultPlan{}, topo, 4);
        EXPECT_EQ(serial.ticks, sharded.ticks) << preset;
        EXPECT_EQ(serial.text, sharded.text) << preset;
        EXPECT_EQ(serial.json, sharded.json) << preset;
    }
}

TEST(ParallelDeterminism, CoupledWorkloadFallsBackAndMatches)
{
    // random_sharing couples the domains through its shared region, so
    // the partition must refuse and the run must be the serial run.
    RunOutput serial = runOnce("bitar", "random_sharing", 4, 42,
                               FaultPlan{}, TopologyConfig::twoSwitch(),
                               1);
    RunOutput sharded = runOnce("bitar", "random_sharing", 4, 42,
                                FaultPlan{}, TopologyConfig::twoSwitch(),
                                4);
    EXPECT_EQ(serial.text, sharded.text);
    EXPECT_EQ(serial.json, sharded.json);
}

TEST(ParallelDeterminism, FaultInjectedRunsMatchSerial)
{
    // Fault injection pins the run to the serial engine (the FaultyBus
    // PRNG's observation order is global), so --sim-threads must be a
    // no-op: identical documents, identical fault stream.
    for (const char *wl : {"random_sharing", "domain_local"}) {
        RunOutput serial = runOnce("bitar", wl, 4, 42, faultPlan(0.2, 7),
                                   TopologyConfig::twoSwitch(), 1);
        RunOutput sharded = runOnce("bitar", wl, 4, 42, faultPlan(0.2, 7),
                                    TopologyConfig::twoSwitch(), 4);
        EXPECT_EQ(serial.ticks, sharded.ticks) << wl;
        EXPECT_EQ(serial.text, sharded.text) << wl;
        EXPECT_EQ(serial.json, sharded.json) << wl;
        EXPECT_NE(serial.text.find("faults."), std::string::npos) << wl;
    }
}

TEST(ParallelDeterminism, ThreadCountIsNotAnAxis)
{
    // Two different thread counts > 1 must agree with each other too
    // (not merely each with serial): the partition decision and the
    // window schedule depend only on the configuration.
    RunOutput two = runOnce("dragon", "domain_local", 8, 11, FaultPlan{},
                            TopologyConfig::twoSwitch(), 2);
    RunOutput four = runOnce("dragon", "domain_local", 8, 11, FaultPlan{},
                             TopologyConfig::twoSwitch(), 4);
    EXPECT_EQ(two.ticks, four.ticks);
    EXPECT_EQ(two.text, four.text);
    EXPECT_EQ(two.json, four.json);
}
