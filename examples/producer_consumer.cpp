/**
 * @file
 * Producer/consumer hand-off — the Prolog/dataflow communication pattern
 * the paper's introduction motivates (Section B.1): one process produces
 * a variable binding, another reads and uses it, synchronized through a
 * flag word.  Run it under any protocol to see how the flag and data
 * traffic differ between write-in, write-through, and write-update.
 *
 * Usage: producer_consumer [protocol] [items] [rewrites]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "proc/workloads/producer_consumer.hh"
#include "system/system.hh"

using namespace csync;

int
main(int argc, char **argv)
{
    std::string protocol = argc > 1 ? argv[1] : "bitar";
    std::uint64_t items = argc > 2 ? std::strtoull(argv[2], nullptr, 0)
                                   : 300;
    unsigned rewrites = argc > 3 ? unsigned(std::atoi(argv[3])) : 1;

    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.numProcessors = 2;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    ProducerConsumerParams p;
    p.items = items;
    p.dataWords = 4;
    p.rewrites = rewrites;
    sys.addProcessor(std::make_unique<ProducerWorkload>(p));
    sys.addProcessor(std::make_unique<ConsumerWorkload>(p));

    sys.start();
    Tick end = sys.run();

    auto &cons =
        static_cast<ConsumerWorkload &>(sys.processor(1).workload());
    std::printf("protocol              : %s\n", protocol.c_str());
    std::printf("items handed off      : %llu (value errors: %llu)\n",
                (unsigned long long)items,
                (unsigned long long)cons.valueErrors());
    std::printf("simulated cycles      : %llu  (%.1f per item)\n",
                (unsigned long long)end, double(end) / double(items));
    std::printf("bus transactions      : %.0f  (%.2f per item)\n",
                sys.bus().transactions.value(),
                sys.bus().transactions.value() / double(items));
    std::printf("  block fetches       : %.0f cache-to-cache, %.0f "
                "from memory\n",
                sys.bus().cacheSupplies.value(),
                sys.bus().memSupplies.value());
    std::printf("  word updates        : %.0f (write-update protocols)\n",
                sys.bus().typeCount(BusReq::UpdateWord));
    std::printf("  invalidations       : %.0f upgrades, %.0f "
                "write-throughs\n",
                sys.bus().typeCount(BusReq::Upgrade),
                sys.bus().typeCount(BusReq::WriteWord));
    std::printf("bus utilization       : %.1f%%\n",
                100.0 * sys.bus().busyCycles.value() / double(end));
    std::printf("checker violations    : %llu\n",
                (unsigned long long)sys.checker().violations());
    return cons.valueErrors() == 0 && sys.checker().violations() == 0
               ? 0
               : 1;
}
