/**
 * @file
 * Quickstart: build a 4-processor full-broadcast system running the
 * paper's proposed protocol, run a contended critical-section workload,
 * and print the headline numbers — zero-time locks, zero unsuccessful
 * retries, and a perfectly serialized shared counter.
 *
 * Usage: quickstart [protocol] [processors]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "proc/workloads/critical_section.hh"
#include "system/system.hh"

using namespace csync;

int
main(int argc, char **argv)
{
    std::string protocol = argc > 1 ? argv[1] : "bitar";
    unsigned procs = argc > 2 ? unsigned(std::atoi(argv[2])) : 4;

    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    auto proto_probe = makeProtocol(protocol);
    bool lock_state = proto_probe->supportsLockOps();
    if (!lock_state && !proto_probe->features().atomicRmw) {
        // Goodman / Yen / classic write-through have no serialized
        // atomic read-modify-write (Table 1, Feature 6): test-and-set
        // locks are genuinely unsafe on them, which bench_table1 shows.
        std::printf("protocol '%s' has no serialized RMW (Feature 6); "
                    "locks unsupported.\n"
                    "Try: quickstart %s with the producer_consumer "
                    "example instead.\n",
                    protocol.c_str(), protocol.c_str());
        return 0;
    }
    const std::uint64_t iters = 200;
    CriticalSectionParams p;
    p.iterations = iters;
    p.alg = lock_state ? LockAlg::CacheLock : LockAlg::TestTestSet;
    p.numLocks = 2;
    p.wordsPerCs = 2;
    for (unsigned i = 0; i < procs; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p));
    }

    sys.start();
    Tick end = sys.run();

    std::uint64_t completed = 0;
    double lock_retries = 0, zero_locks = 0, zero_unlocks = 0;
    for (unsigned i = 0; i < procs; ++i) {
        completed += static_cast<CriticalSectionWorkload &>(
                         sys.processor(i).workload())
                         .completed();
        lock_retries += sys.cache(i).lockRetries.value();
        zero_locks += sys.cache(i).zeroTimeLocks.value();
        zero_unlocks += sys.cache(i).zeroTimeUnlocks.value();
    }

    std::printf("protocol            : %s (%s)\n", protocol.c_str(),
                lockAlgName(p.alg));
    std::printf("processors          : %u\n", procs);
    std::printf("simulated cycles    : %llu\n",
                (unsigned long long)end);
    std::printf("critical sections   : %llu / %llu\n",
                (unsigned long long)completed,
                (unsigned long long)(iters * procs));
    std::printf("bus transactions    : %.0f\n",
                sys.bus().transactions.value());
    std::printf("bus utilization     : %.1f%%\n",
                100.0 * sys.bus().busyCycles.value() / double(end));
    std::printf("unsuccessful retries: %.0f\n", lock_retries);
    std::printf("zero-time locks     : %.0f\n", zero_locks);
    std::printf("zero-time unlocks   : %.0f\n", zero_unlocks);
    std::printf("checker violations  : %llu\n",
                (unsigned long long)sys.checker().violations());

    // Every guarded counter must equal the total number of increments
    // that targeted it; the checker's expected value tells us the final
    // serialized value.
    bool counters_ok = true;
    std::uint64_t sum = 0;
    for (unsigned l = 0; l < p.numLocks; ++l) {
        for (unsigned w = 0; w < p.wordsPerCs; ++w) {
            Addr a = CriticalSectionWorkload::dataWordAddr(p, l, w);
            sum += sys.checker().expectedValue(a);
        }
    }
    counters_ok = (sum == completed * p.wordsPerCs);
    std::printf("mutual exclusion    : %s\n",
                counters_ok ? "exact (no lost updates)" : "BROKEN");

    return counters_ok && sys.checker().violations() == 0 ? 0 : 1;
}
