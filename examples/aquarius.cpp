/**
 * @file
 * Aquarius in miniature (Figure 11): ONE machine whose processors front
 * two switch-memory systems — the synchronization system (a single
 * full-broadcast bus carrying all hard atoms and I/O broadcasts) and the
 * data system (instructions and non-synchronization data on their own
 * switch).  Each "predicate process" interleaves service-queue work on
 * the sync system with private/shared data streaming on the data
 * system, and an I/O processor pages blocks in and out over the sync
 * bus (Section E.2).
 *
 * Usage: aquarius [processors]
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>

#include "proc/workloads/random_sharing.hh"
#include "proc/workloads/service_queue.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

/**
 * One predicate process: service-queue operations (the synchronization
 * structure, low addresses -> sync bus) interleaved with random
 * private/shared data references (high addresses -> data switch).
 * While the queue lock is busy-waited, the data stream keeps running —
 * work-while-waiting across switches (Section E.4).
 */
class PredicateProcessWorkload : public Workload
{
  public:
    PredicateProcessWorkload(std::unique_ptr<Workload> sync_wl,
                             std::unique_ptr<Workload> data_wl,
                             unsigned data_per_sync)
        : sync_(std::move(sync_wl)), data_(std::move(data_wl)),
          dataPerSync_(data_per_sync), dataRun_(data_per_sync)
    {
    }

    NextStatus
    next(MemOp &op, Tick &think) override
    {
        // Poll until a sub-workload *returns* Finished — done() can go
        // true while its phase machine still owes an op (the service
        // queue's final lock release).
        bool want_sync = !syncFinished_ &&
                         (dataRun_ >= dataPerSync_ || dataFinished_);
        if (want_sync) {
            switch (sync_->next(op, think)) {
              case NextStatus::Op:
                fromSync_ = true;
                dataRun_ = 0;
                return NextStatus::Op;
              case NextStatus::WaitForLock:
                // The queue lock is pending in the busy-wait register;
                // stream data-system work meanwhile.
                if (dataFinished_)
                    return NextStatus::WaitForLock;
                break;
              case NextStatus::Stalled:
                break; // synthetic sub-workloads never stall
              case NextStatus::Finished:
                syncFinished_ = true;
                break;
            }
        }
        if (!dataFinished_) {
            switch (data_->next(op, think)) {
              case NextStatus::Op:
                fromSync_ = false;
                ++dataRun_;
                return NextStatus::Op;
              case NextStatus::Finished:
                dataFinished_ = true;
                break;
              case NextStatus::WaitForLock:
              case NextStatus::Stalled:
                break; // the data stream takes no locks or deps
            }
        }
        if (!syncFinished_) {
            switch (sync_->next(op, think)) {
              case NextStatus::Op:
                fromSync_ = true;
                dataRun_ = 0;
                return NextStatus::Op;
              case NextStatus::WaitForLock:
                return NextStatus::WaitForLock;
              case NextStatus::Stalled:
                break; // synthetic sub-workloads never stall
              case NextStatus::Finished:
                syncFinished_ = true;
                break;
            }
        }
        return NextStatus::Finished;
    }

    void
    onResult(const MemOp &op, const AccessResult &r) override
    {
        if (fromSync_)
            sync_->onResult(op, r);
        else
            data_->onResult(op, r);
    }

    void
    onLockAcquired(const MemOp &op, const AccessResult &r) override
    {
        // Only the service queue takes locks.
        sync_->onLockAcquired(op, r);
    }

    bool done() const override { return sync_->done() && data_->done(); }

    std::string
    describe() const override
    {
        return "predicate process: " + sync_->describe() + " + " +
               data_->describe();
    }

  private:
    std::unique_ptr<Workload> sync_;
    std::unique_ptr<Workload> data_;
    unsigned dataPerSync_;
    unsigned dataRun_;
    bool fromSync_ = false;
    bool syncFinished_ = false;
    bool dataFinished_ = false;
};

} // namespace

int
main(int argc, char **argv)
{
    unsigned procs = argc > 1 ? unsigned(std::atoi(argv[1])) : 4;

    SystemConfig cfg;
    cfg.name = "aquarius";
    cfg.protocol = "bitar";
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 128;
    cfg.cache.geom.blockWords = 4;
    cfg.topology = TopologyConfig::twoSwitch();
    cfg.withIODevice = true; // attaches to the sync bus
    System sys(cfg);

    for (unsigned i = 0; i < procs; ++i) {
        // Sync system: the shared service queue (descriptor and slots
        // live in the low, synchronization address region).
        ServiceQueueParams q;
        q.operations = 200;
        q.alg = LockAlg::CacheLock;
        q.procId = i;
        auto sync_wl = std::make_unique<ServiceQueueWorkload>(
            q, i % 2 ? QueueRole::Consumer : QueueRole::Producer);

        // Data system: private/shared streaming relocated wholly above
        // the two_switch split so it rides the data switch.
        RandomSharingParams p;
        p.ops = 4000;
        p.procId = i;
        p.seed = 17;
        p.sharedFraction = 0.05; // non-synchronization data
        p.writeFraction = 0.3;
        p.sharedBase = 0x20000000;
        auto data_wl = std::make_unique<RandomSharingWorkload>(p);

        sys.addProcessor(std::make_unique<PredicateProcessWorkload>(
                             std::move(sync_wl), std::move(data_wl),
                             /*data_per_sync=*/4),
                         /*work_while_waiting=*/true);
    }

    // The I/O processor pages blocks in and out over the sync bus.
    unsigned io_ops = 0;
    std::function<void()> io_kick = [&]() {
        if (io_ops >= 20)
            return;
        ++io_ops;
        Addr block = 0x600000 + (io_ops % 4) * 0x20;
        if (io_ops % 2) {
            sys.io()->input(block, {io_ops, io_ops, io_ops, io_ops},
                            [&](const std::vector<Word> &) {
                                io_kick();
                            });
        } else {
            sys.io()->pageOut(block, [&](const std::vector<Word> &) {
                io_kick();
            });
        }
    };

    sys.start();
    io_kick();
    Tick end = sys.run();

    Bus &sync_bus = sys.bus(0);
    Bus &data_switch = sys.bus(1);

    std::printf("Aquarius architecture (Figure 11), %u PPs, "
                "%llu cycles\n\n", procs, (unsigned long long)end);
    std::printf("%-30s %14s %14s\n", "", "sync_bus", "data_switch");
    std::printf("%-30s %13.1f%% %13.1f%%\n", "utilization",
                100 * sync_bus.busyCycles.value() / double(end),
                100 * data_switch.busyCycles.value() / double(end));
    std::printf("%-30s %14.0f %14.0f\n", "transactions",
                sync_bus.transactions.value(),
                data_switch.transactions.value());
    std::printf("%-30s %14.0f %14.0f\n", "sync-class traffic",
                sync_bus.classCount(TrafficClass::Sync),
                data_switch.classCount(TrafficClass::Sync));
    std::printf("%-30s %14.0f %14.0f\n", "data-class traffic",
                sync_bus.classCount(TrafficClass::Data),
                data_switch.classCount(TrafficClass::Data));
    std::printf("%-30s %14.0f %14.0f\n", "misrouted",
                sync_bus.misroutedCount(),
                data_switch.misroutedCount());
    std::printf("%-30s %14.0f %14s\n", "unlock broadcasts",
                sync_bus.typeCount(BusReq::UnlockBroadcast), "-");
    std::printf("%-30s %14.0f %14s\n", "I/O transfers",
                sys.io()->inputs.value() + sys.io()->pageOuts.value(),
                "-");
    double ready = 0;
    for (unsigned i = 0; i < procs; ++i)
        ready += sys.processor(i).readySectionOps.value();
    std::printf("%-30s %14.0f %14s\n", "work-while-waiting ops", ready,
                "-");
    std::printf("%-30s %14llu %14s\n", "checker violations",
                (unsigned long long)sys.checker().violations(), "");

    // Figure 11 segregation: the two systems carry disjoint traffic.
    bool segregated = sync_bus.classCount(TrafficClass::Data) == 0 &&
                      data_switch.classCount(TrafficClass::Sync) == 0 &&
                      sync_bus.misroutedCount() == 0 &&
                      data_switch.misroutedCount() == 0;

    bool ok = sys.checker().violations() == 0 && sys.allDone() &&
              segregated && sys.checkStateInvariants() == 0;
    std::printf("\n%s\n", ok ? "ok" : "FAILED");
    return ok ? 0 : 1;
}
