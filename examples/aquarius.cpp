/**
 * @file
 * Aquarius in miniature (Figure 11): the two switch-memory systems of
 * the paper's Prolog architecture — the synchronization system (single
 * full-broadcast bus, all hard atoms, the proposed protocol) and the
 * data system (instructions and non-synchronization data on their own
 * switch), plus an I/O processor doing input and page-out transfers on
 * the side (Section E.2).
 *
 * Many medium-grained, lightweight "predicate processes" hammer shared
 * service queues on the sync system while streaming private data on the
 * data system.
 *
 * Usage: aquarius [processors]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "proc/workloads/random_sharing.hh"
#include "proc/workloads/service_queue.hh"
#include "system/system.hh"

using namespace csync;

int
main(int argc, char **argv)
{
    unsigned procs = argc > 1 ? unsigned(std::atoi(argv[1])) : 4;

    // Upper system of Figure 11: the synchronization bus.
    SystemConfig sync_cfg;
    sync_cfg.name = "sync";
    sync_cfg.protocol = "bitar";
    sync_cfg.numProcessors = procs;
    sync_cfg.cache.geom.frames = 64;
    sync_cfg.cache.geom.blockWords = 4;
    sync_cfg.withIODevice = true;
    System sync_sys(sync_cfg);

    ServiceQueueParams q;
    q.operations = 200;
    q.alg = LockAlg::CacheLock;
    for (unsigned i = 0; i < procs; ++i) {
        q.procId = i;
        sync_sys.addProcessor(
            std::make_unique<ServiceQueueWorkload>(
                q, i % 2 ? QueueRole::Consumer : QueueRole::Producer),
            /*work_while_waiting=*/true);
    }

    // Lower system: instructions and non-synchronization data.
    SystemConfig data_cfg;
    data_cfg.name = "data";
    data_cfg.protocol = "illinois";
    data_cfg.numProcessors = procs;
    data_cfg.cache.geom.frames = 128;
    data_cfg.cache.geom.blockWords = 8;
    System data_sys(data_cfg);
    for (unsigned i = 0; i < procs; ++i) {
        RandomSharingParams p;
        p.ops = 8000;
        p.procId = i;
        p.seed = 17;
        p.sharedFraction = 0.05;    // non-synchronization data
        p.writeFraction = 0.3;
        data_sys.addProcessor(
            std::make_unique<RandomSharingWorkload>(p));
    }

    // The I/O processor pages blocks in and out of the sync system.
    unsigned io_ops = 0;
    std::function<void()> io_kick = [&]() {
        if (io_ops >= 20)
            return;
        ++io_ops;
        Addr block = 0x600000 + (io_ops % 4) * 0x20;
        if (io_ops % 2) {
            sync_sys.io()->input(block, {io_ops, io_ops, io_ops, io_ops},
                                 [&](const std::vector<Word> &) {
                                     io_kick();
                                 });
        } else {
            sync_sys.io()->pageOut(block,
                                   [&](const std::vector<Word> &) {
                                       io_kick();
                                   });
        }
    };

    sync_sys.start();
    data_sys.start();
    io_kick();

    // Run both systems to completion (they are independent switches).
    Tick sync_end = sync_sys.run();
    Tick data_end = data_sys.run();

    std::printf("Aquarius architecture (Figure 11), %u PPs\n\n", procs);
    std::printf("%-30s %14s %14s\n", "", "sync system", "data system");
    std::printf("%-30s %14llu %14llu\n", "cycles to finish",
                (unsigned long long)sync_end,
                (unsigned long long)data_end);
    std::printf("%-30s %13.1f%% %13.1f%%\n", "bus utilization",
                100 * sync_sys.bus().busyCycles.value() /
                    double(sync_end),
                100 * data_sys.bus().busyCycles.value() /
                    double(data_end));
    std::printf("%-30s %14.0f %14.0f\n", "bus transactions",
                sync_sys.bus().transactions.value(),
                data_sys.bus().transactions.value());
    std::printf("%-30s %14.0f %14s\n", "unlock broadcasts",
                sync_sys.bus().typeCount(BusReq::UnlockBroadcast), "-");
    std::printf("%-30s %14.0f %14s\n", "I/O transfers",
                sync_sys.io()->inputs.value() +
                    sync_sys.io()->pageOuts.value(),
                "-");
    double ready = 0;
    for (unsigned i = 0; i < procs; ++i)
        ready += sync_sys.processor(i).readySectionOps.value();
    std::printf("%-30s %14.0f %14s\n", "work-while-waiting ops", ready,
                "-");
    std::printf("%-30s %14llu %14llu\n", "checker violations",
                (unsigned long long)sync_sys.checker().violations(),
                (unsigned long long)data_sys.checker().violations());

    bool ok = sync_sys.checker().violations() == 0 &&
              data_sys.checker().violations() == 0 &&
              sync_sys.allDone() && data_sys.allDone();
    std::printf("\n%s\n", ok ? "ok" : "FAILED");
    return ok ? 0 : 1;
}
