/**
 * @file
 * Service-request queues — the paper's motivating system scenario
 * (Sections B.1-B.2): processes leave service requests in each other's
 * queues; the queue descriptors are guarded by busy-wait locks, and the
 * "manipulations of the sleep-wait and ready queues ... may require
 * several block fetches per queue" with "quite a few processes
 * accessing each queue".  Half the processors enqueue requests, half
 * dequeue and service them; FIFO integrity is verified end to end.
 *
 * Usage: service_queue [protocol] [processors] [ops-per-processor]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "proc/workloads/service_queue.hh"
#include "system/system.hh"

using namespace csync;

int
main(int argc, char **argv)
{
    std::string protocol = argc > 1 ? argv[1] : "bitar";
    unsigned procs = argc > 2 ? unsigned(std::atoi(argv[2])) : 6;
    std::uint64_t ops =
        argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 150;
    if (procs % 2)
        ++procs;    // producers and consumers in equal numbers

    auto proto = makeProtocol(protocol);
    LockAlg alg = proto->supportsLockOps() ? LockAlg::CacheLock
                  : proto->features().atomicRmw ? LockAlg::TestTestSet
                                                : LockAlg::TestTestSet;
    if (!proto->supportsLockOps() && !proto->features().atomicRmw) {
        std::printf("protocol '%s' cannot serialize test-and-set "
                    "(Feature 6); queues need locks.\n",
                    protocol.c_str());
        return 0;
    }

    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    ServiceQueueParams p;
    p.operations = ops;
    p.alg = alg;
    p.slots = 8;
    for (unsigned i = 0; i < procs; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<ServiceQueueWorkload>(
            p, i < procs / 2 ? QueueRole::Producer
                             : QueueRole::Consumer));
    }
    sys.start();
    Tick end = sys.run();

    std::uint64_t order_errors = 0, dequeues = 0;
    for (unsigned i = procs / 2; i < procs; ++i) {
        auto &wl = static_cast<ServiceQueueWorkload &>(
            sys.processor(i).workload());
        order_errors += wl.orderErrors();
        dequeues += wl.completedOps();
    }

    std::printf("protocol           : %s (%s)\n", protocol.c_str(),
                lockAlgName(alg));
    std::printf("queue ops          : %llu enqueued, %llu dequeued\n",
                (unsigned long long)(ops * procs / 2),
                (unsigned long long)dequeues);
    std::printf("FIFO order errors  : %llu\n",
                (unsigned long long)order_errors);
    std::printf("simulated cycles   : %llu\n", (unsigned long long)end);
    std::printf("bus utilization    : %.1f%%\n",
                100.0 * sys.bus().busyCycles.value() / double(end));
    std::printf("unlock broadcasts  : %.0f\n",
                sys.bus().typeCount(BusReq::UnlockBroadcast));
    std::printf("high-pri handoffs  : %.0f\n",
                sys.bus().highPriorityGrants.value());
    std::printf("checker violations : %llu\n",
                (unsigned long long)sys.checker().violations());
    return order_errors == 0 && sys.checker().violations() == 0 ? 0 : 1;
}
