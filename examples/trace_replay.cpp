/**
 * @file
 * Trace replay: drive the simulator from per-processor trace files in
 * the simple text format of src/proc/workloads/trace.hh:
 *
 *     R <addr>            read
 *     W <addr> <value>    write
 *     A <addr> <value>    atomic swap
 *     L <addr>            lock-read        (bitar)
 *     U <addr> <value>    unlock-write     (bitar)
 *     N <addr> <value>    write-no-fetch   (bitar)
 *     T <cycles>          think time before the next op
 *     P                   unshared hint on the next op
 *
 * Usage: trace_replay <protocol> <trace0> [trace1 ...]
 * With no trace files, a built-in two-processor demo trace runs.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "proc/workloads/trace.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

const char *demo_trace0 =
    "# processor 0: initialize, lock, update, unlock\n"
    "W 0x1000 100\n"
    "W 0x1008 200\n"
    "L 0x2000\n"
    "W 0x2008 1\n"
    "U 0x2000 0\n"
    "T 10\n"
    "R 0x1000\n";

const char *demo_trace1 =
    "# processor 1: read the shared data, contend for the lock\n"
    "T 5\n"
    "R 0x1000\n"
    "R 0x1008\n"
    "L 0x2000\n"
    "R 0x2008\n"
    "U 0x2000 0\n";

} // namespace

int
main(int argc, char **argv)
{
    std::string protocol = argc > 1 ? argv[1] : "bitar";
    std::vector<std::vector<TraceEntry>> traces;

    if (argc > 2) {
        for (int i = 2; i < argc; ++i) {
            std::ifstream in(argv[i]);
            if (!in)
                fatal("cannot open trace '%s'", argv[i]);
            traces.push_back(TraceWorkload::parse(in));
            std::printf("loaded %zu ops from %s\n",
                        traces.back().size(), argv[i]);
        }
    } else {
        std::istringstream t0(demo_trace0), t1(demo_trace1);
        traces.push_back(TraceWorkload::parse(t0));
        traces.push_back(TraceWorkload::parse(t1));
        std::printf("running the built-in two-processor demo trace\n");
    }

    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.numProcessors = unsigned(traces.size());
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);
    for (auto &t : traces)
        sys.addProcessor(std::make_unique<TraceWorkload>(std::move(t)));

    sys.start();
    Tick end = sys.run();

    std::printf("\nprotocol            : %s\n", protocol.c_str());
    std::printf("simulated cycles    : %llu\n", (unsigned long long)end);
    std::printf("bus transactions    : %.0f\n",
                sys.bus().transactions.value());
    std::printf("checker violations  : %llu\n",
                (unsigned long long)sys.checker().violations());
    for (unsigned i = 0; i < sys.numProcessors(); ++i) {
        auto &wl =
            static_cast<TraceWorkload &>(sys.processor(i).workload());
        std::printf("processor %u results:", i);
        for (const auto &r : wl.results())
            std::printf(" %llu", (unsigned long long)r.value);
        std::printf("\n");
    }
    std::printf("\nfull statistics:\n");
    sys.dumpStats(std::cout);
    return sys.allDone() && sys.checker().violations() == 0 ? 0 : 1;
}
