/**
 * @file
 * Spinlock showdown — the paper's Sections E.3/E.4 in one run: the same
 * contended critical-section workload under test-and-set,
 * test-and-test-and-set, and the proposal's cache-lock-state with the
 * busy-wait register, printing the per-scheme cost side by side.
 *
 * Usage: spinlock_showdown [processors] [iterations]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "proc/workloads/critical_section.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct Outcome
{
    Tick cycles;
    double busTx;
    double retries;
    double zeroTime;
    bool exact;
};

Outcome
run(LockAlg alg, unsigned procs, std::uint64_t iters)
{
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    CriticalSectionParams p;
    p.iterations = iters;
    p.alg = alg;
    p.numLocks = 1;
    p.wordsPerCs = 2;
    p.outsideThink = 6;
    for (unsigned i = 0; i < procs; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p));
    }
    sys.start();
    Tick end = sys.run();

    Outcome o{};
    o.cycles = end;
    o.busTx = sys.bus().transactions.value();
    for (unsigned i = 0; i < procs; ++i) {
        auto &wl = static_cast<CriticalSectionWorkload &>(
            sys.processor(i).workload());
        if (alg == LockAlg::CacheLock)
            o.retries += sys.cache(i).lockRetries.value();
        else
            o.retries += double(wl.lockDriver().rmwAttempts()) -
                         double(wl.completed());
        o.zeroTime += sys.cache(i).zeroTimeLocks.value() +
                      sys.cache(i).zeroTimeUnlocks.value();
    }
    Word sum = 0;
    for (unsigned w = 0; w < p.wordsPerCs; ++w)
        sum += sys.checker().expectedValue(
            CriticalSectionWorkload::dataWordAddr(p, 0, w));
    o.exact = sum == Word(procs) * iters * p.wordsPerCs &&
              sys.checker().violations() == 0;
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned procs = argc > 1 ? unsigned(std::atoi(argv[1])) : 6;
    std::uint64_t iters =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 200;

    std::printf("Spinlock showdown: %u processors, %llu critical "
                "sections each, one hot lock.\n\n",
                procs, (unsigned long long)iters);
    std::printf("%-24s %12s %10s %14s %12s %8s\n", "scheme", "cycles",
                "bus tx", "failed tries", "zero-time", "exact?");

    for (LockAlg alg : {LockAlg::TestAndSet, LockAlg::TestTestSet,
                        LockAlg::CacheLock}) {
        Outcome o = run(alg, procs, iters);
        std::printf("%-24s %12llu %10.0f %14.0f %12.0f %8s\n",
                    lockAlgName(alg), (unsigned long long)o.cycles,
                    o.busTx, o.retries, o.zeroTime,
                    o.exact ? "yes" : "NO");
    }

    std::printf("\n'failed tries' are unsuccessful lock attempts that "
                "reached the bus;\nthe paper's scheme eliminates them "
                "entirely (Section E.4).\n");
    return 0;
}
