/**
 * @file
 * Figure 6: Locking a Block.  "The first block of the atom is fetched
 * for write privilege and locked...; the cache supplies the target word
 * to its processor, as on a read instruction.  Locking a block, here, is
 * concurrent with fetching the block, so generates no extra bus traffic,
 * nor delays the processor...  locking and unlocking will usually occur
 * in zero time."
 */

#include "fig_common.hh"

using namespace csync;
using namespace csync::fig;

int
main()
{
    banner("Figure 6: Locking a Block",
           "lock rides the fetch; zero extra traffic; zero time when "
           "the block is already owned");

    const Addr X = 0x1000;
    {
        Scenario s(figOpts());
        s.note("-- cold lock: processor 0 lock-reads X (miss) --");
        double tx = s.system().bus().transactions.value();
        AccessResult r = s.run(0, lockRd(X));
        printLog(s);
        verdict(s.state(0, X) == LkSrcDty,
                "block is Lock,Source,Dirty in the locker");
        verdict(r.value == 0, "the target word was supplied to the "
                              "processor like a read");
        verdict(s.system().bus().transactions.value() == tx + 1,
                "exactly one bus transaction: the lock rode the fetch");
    }
    {
        Scenario s(figOpts());
        s.note("-- warm lock: the block is already owned --");
        s.run(0, wr(X, 5));
        s.clearLog();
        double tx = s.system().bus().transactions.value();
        Tick t0 = s.system().now();
        AccessResult r = s.run(0, lockRd(X));
        printLog(s);
        verdict(r.value == 5, "the word came from the cache");
        verdict(s.system().bus().transactions.value() == tx,
                "zero bus traffic (cache-state locking)");
        verdict(s.system().now() - t0 <= 2,
                "locking occurred in zero (hit) time");
        verdict(s.cache(0).zeroTimeLocks.value() == 1,
                "counted as a zero-time lock");
    }
    return finish();
}
