/**
 * @file
 * Section E.4 (claim Q5): efficient busy wait.  Two purposes:
 *
 *  1. "Eliminate unsuccessful retries from the bus."
 *  2. "Relieve a waiting processor of polling the status of a lock,
 *      allowing it to work while waiting."
 *
 * Experiment 1: contended single lock, waiter count swept; count
 * unsuccessful lock attempts that reached the bus per acquisition, for
 * test-and-set, test-and-test-and-set, cache-lock WITHOUT the busy-wait
 * register (ablation: denied requests retry on the bus), and the full
 * proposal (lock-waiter state + busy-wait register).
 *
 * Experiment 2: work while waiting — ready-section ops executed by
 * waiting processors under the lock-interrupt handler.
 */

#include <cstdio>
#include <memory>

#include "proc/workloads/critical_section.hh"
#include "proc/workloads/random_sharing.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct Setup
{
    const char *label;
    LockAlg alg;
    bool busyWaitRegister;
};

double
retriesPerAcq(const Setup &s, unsigned procs, bool www = false)
{
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    cfg.cache.useBusyWaitRegister = s.busyWaitRegister;
    System sys(cfg);

    const std::uint64_t iters = 100;
    CriticalSectionParams p;
    p.iterations = iters;
    p.alg = s.alg;
    p.numLocks = 1;
    p.wordsPerCs = 1;
    p.outsideThink = 4;
    for (unsigned i = 0; i < procs; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p),
                         www);
    }
    sys.start();
    sys.run(100'000'000);
    if (!sys.allDone() || sys.checker().violations() != 0)
        fatal("busy-wait run failed: %s p=%u", s.label, procs);

    double failures = 0;
    for (unsigned i = 0; i < procs; ++i) {
        auto &wl = static_cast<CriticalSectionWorkload &>(
            sys.processor(i).workload());
        if (s.alg == LockAlg::CacheLock)
            failures += sys.cache(i).lockRetries.value();
        else
            failures += double(wl.lockDriver().rmwAttempts()) -
                        double(wl.completed());
    }
    return failures / double(iters * procs);
}

} // namespace

int
main()
{
    std::printf("Section E.4: efficient busy wait (protocol: bitar)\n");
    std::printf("Single contended lock; unsuccessful lock attempts on "
                "the bus per acquisition.\n\n");

    const Setup setups[] = {
        {"test-and-set", LockAlg::TestAndSet, true},
        {"test-and-test-and-set", LockAlg::TestTestSet, true},
        {"lock state, no register", LockAlg::CacheLock, false},
        {"lock state + bw register", LockAlg::CacheLock, true},
    };
    const unsigned procs[] = {2, 4, 8, 12};

    std::printf("%-28s", "scheme");
    for (unsigned p : procs)
        std::printf("   P=%-6u", p);
    std::printf("\n");

    double proposal_total = 0;
    for (const auto &s : setups) {
        std::printf("%-28s", s.label);
        for (unsigned p : procs) {
            double r = retriesPerAcq(s, p);
            std::printf(" %9.2f", r);
            if (std::string(s.label) == "lock state + bw register")
                proposal_total += r;
        }
        std::printf("\n");
    }

    // Experiment 2: work while waiting.
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = 4;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);
    CriticalSectionParams p;
    p.iterations = 100;
    p.alg = LockAlg::CacheLock;
    p.numLocks = 1;
    p.wordsPerCs = 1;
    p.readySectionOps = 8;    // the "ready section" of Section E.4
    for (unsigned i = 0; i < 4; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p),
                         /*work_while_waiting=*/true);
    }
    sys.start();
    sys.run(100'000'000);
    double ready_ops = 0;
    for (unsigned i = 0; i < 4; ++i)
        ready_ops += sys.processor(i).readySectionOps.value();
    std::printf("\nWork while waiting (lock-interrupt handler, P=4): "
                "%.0f ops executed by processors\nwhile their lock "
                "requests were pending in busy-wait registers.\n",
                ready_ops);

    // Experiment 3: the dedicated most-significant priority bit.  With
    // competing data traffic on the bus, waiters arbitrating at normal
    // priority wait in line behind it; the paper's priority bit front-
    // runs the hand-off.
    auto handoff = [](bool priority_bit) {
        SystemConfig c;
        c.protocol = "bitar";
        c.numProcessors = 8;
        c.cache.geom.frames = 64;
        c.cache.geom.blockWords = 4;
        c.cache.busyWaitPriority = priority_bit;
        System s(c);
        CriticalSectionParams cs;
        cs.iterations = 80;
        cs.alg = LockAlg::CacheLock;
        cs.numLocks = 1;
        cs.wordsPerCs = 1;
        for (unsigned i = 0; i < 4; ++i) {
            cs.procId = i;
            s.addProcessor(
                std::make_unique<CriticalSectionWorkload>(cs));
        }
        for (unsigned i = 4; i < 8; ++i) {
            RandomSharingParams rp;
            rp.ops = 100000;    // endless data traffic
            rp.procId = i;
            rp.seed = 31;
            rp.thinkMax = 1;
            s.addProcessor(std::make_unique<RandomSharingWorkload>(rp));
        }
        s.start();
        while (!s.eventq().empty() && s.now() < 10'000'000) {
            bool sync_done = true;
            for (unsigned i = 0; i < 4; ++i)
                sync_done &= s.processor(i).done();
            if (sync_done)
                break;
            s.eventq().runSteps(2048);
        }
        double wait = 0, n = 0;
        for (unsigned i = 0; i < 4; ++i) {
            wait += s.cache(i).lockWaitTime.mean() *
                    double(s.cache(i).lockWaitTime.count());
            n += double(s.cache(i).lockWaitTime.count());
        }
        return n ? wait / n : 0.0;
    };
    double with_bit = handoff(true);
    double without_bit = handoff(false);
    std::printf("\nHand-off under competing data traffic (P=4 lockers + "
                "4 data streams):\n  mean busy-wait with the priority "
                "bit: %.1f cycles; without: %.1f cycles\n",
                with_bit, without_bit);

    bool ok = proposal_total == 0.0 && sys.allDone() &&
              sys.checker().violations() == 0 && with_bit < without_bit;
    std::printf("\n%s\n",
                ok ? "SECTION E.4 REPRODUCED: the wait scheme "
                     "eliminates ALL unsuccessful retries from the bus, "
                     "and a processor can work while waiting."
                   : "REPRODUCTION FAILED.");
    return ok ? 0 : 1;
}
