/**
 * @file
 * Table 1: Evolution of Full-Broadcast, Write-In (Write-Back)
 * Cache-Synchronization Schemes.  The matrix is *measured*: each feature
 * cell is backed by a behavioral probe run against the live protocol
 * implementation, and any disagreement between claim and measurement is
 * flagged.
 */

#include <cstdio>

#include "core/feature_audit.hh"

using namespace csync;

int
main()
{
    std::printf("Reproducing Table 1 (paper p. 431): behavioral audit of "
                "the six protocols...\n\n");
    auto audits = auditTable1Protocols();
    std::string table = renderTable1(audits);
    std::printf("%s\n", table.c_str());

    unsigned mismatches = 0;
    for (const auto &a : audits) {
        std::string why;
        if (!a.consistent(&why)) {
            std::printf("MISMATCH: %s\n", why.c_str());
            ++mismatches;
        }
    }
    std::printf("Protocols audited: %zu; claim/measurement mismatches: "
                "%u.\n%s\n",
                audits.size(), mismatches,
                mismatches == 0 ? "TABLE 1 REPRODUCED."
                                : "TABLE 1 REPRODUCTION FAILED.");
    return mismatches == 0 ? 0 : 1;
}
