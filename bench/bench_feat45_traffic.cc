/**
 * @file
 * Features 4 and 5 (claims Q2, Q3): "the fractional increase in bus
 * traffic ... is small if cache blocks are reasonably large, say n
 * bus-wide words ... the increase appears to be much less than 1/n."
 *
 * Feature 4: the SAME protocol (Yen) run on a bus with the explicit
 * one-cycle invalidate signal vs. a Multibus-style bus where gaining
 * write privilege costs a word write-through to memory — isolating
 * exactly the capability the feature names.
 *
 * Feature 5: NOT fetching unshared data for write privilege on a read
 * miss costs an extra invalidation per read-then-write pattern — Yen
 * with the compiler hint off vs. on (same protocol, one knob).
 */

#include <cstdio>
#include <memory>

#include "proc/workloads/random_sharing.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

double
busyCycles(const std::string &proto, unsigned block_words,
           bool private_hints, bool invalidate_signal = true)
{
    SystemConfig cfg;
    cfg.protocol = proto;
    cfg.numProcessors = 4;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = block_words;
    cfg.timing.invalidateDuringFetch = invalidate_signal;
    System sys(cfg);
    for (unsigned i = 0; i < 4; ++i) {
        RandomSharingParams p;
        p.ops = 8000;
        p.procId = i;
        p.seed = 5 + i;
        p.sharedBlocks = 8;
        p.privateBlocks = 32;
        p.sharedFraction = 0.25;
        p.writeFraction = 0.35;
        p.privateHints = private_hints;
        p.blockBytes = Addr(block_words) * bytesPerWord;
        sys.addProcessor(std::make_unique<RandomSharingWorkload>(p));
    }
    sys.start();
    sys.run(200'000'000);
    if (!sys.allDone() || sys.checker().violations() != 0)
        fatal("traffic run failed (%s n=%u)", proto.c_str(),
              block_words);
    return sys.bus().busyCycles.value();
}

} // namespace

int
main()
{
    std::printf("Features 4 & 5: fractional bus-traffic increase vs. "
                "1/n for n-word blocks\n\n");
    std::printf("Feature 4: yen on a bus with the invalidate signal "
                "vs. the same protocol paying\n           a word "
                "write-through per privilege acquisition\n");
    std::printf("Feature 5: yen without vs. with the "
                "read-unshared-for-write-privilege hint\n\n");
    std::printf("%4s %10s | %12s %10s | %12s %10s\n", "n", "1/n",
                "feat4 incr.", "<< 1/n?", "feat5 incr.", "<< 1/n?");

    unsigned pass4 = 0, pass5 = 0, total = 0;
    for (unsigned n : {2u, 4u, 8u, 16u, 32u}) {
        double base4 = busyCycles("yen", n, true, true);
        double wt4 = busyCycles("yen", n, true, false);
        double incr4 = (wt4 - base4) / base4;

        double with5 = busyCycles("yen", n, true);
        double without5 = busyCycles("yen", n, false);
        double incr5 = (without5 - with5) / with5;

        double inv_n = 1.0 / double(n);
        bool ok4 = incr4 < inv_n;
        bool ok5 = incr5 < inv_n;
        pass4 += ok4;
        pass5 += ok5;
        ++total;
        std::printf("%4u %9.3f | %11.3f%% %10s | %11.3f%% %10s\n", n,
                    inv_n, 100 * incr4, ok4 ? "yes" : "no",
                    100 * incr5, ok5 ? "yes" : "no");
    }

    bool ok = pass4 >= total - 1 && pass5 >= total - 1;
    std::printf("\n%s\n",
                ok ? "FEATURES 4-5 ANALYSIS REPRODUCED: the traffic "
                     "increase is much less than 1/n for reasonable "
                     "block sizes."
                   : "REPRODUCTION FAILED.");
    return ok ? 0 : 1;
}
