/**
 * @file
 * Figure 7: Requesting Locked Block; Initiating Busy Wait.  "If another
 * cache requests the atom while it is locked... it will find it locked.
 * The cache holding the lock will record that another cache is waiting,
 * using the lock-waiter state.  The requester cache, then, enters the
 * block address in a special busy-wait register" — and makes no further
 * bus requests.
 */

#include "fig_common.hh"

using namespace csync;
using namespace csync::fig;

int
main()
{
    banner("Figure 7: Requesting Locked Block; Initiating Busy Wait",
           "request denied; locker records waiter; requester arms its "
           "busy-wait register");

    Scenario s(figOpts());
    const Addr X = 0x1000;

    s.note("-- processor 0 locks X --");
    s.run(0, lockRd(X));
    s.clearLog();

    s.note("-- processor 1 requests the locked atom --");
    bool completed = s.tryRun(1, lockRd(X));
    printLog(s);

    verdict(!completed, "the request did not complete (block locked)");
    verdict(s.state(0, X) == LkSrcDtyWt,
            "the locker recorded the waiter (Lock,Source,Dirty,Waiter)");
    verdict(s.cache(1).busyWaitArmed() && s.cache(1).busyWaitAddr() == X,
            "the requester armed its busy-wait register with the block "
            "address");
    verdict(s.state(1, X) == Inv, "the requester holds no copy");

    double tx = s.system().bus().transactions.value();
    s.clearLog();
    s.note("-- time passes; the waiter stays off the bus --");
    s.settle();
    verdict(s.system().bus().transactions.value() == tx,
            "no retries reached the bus while waiting (Q5)");
    verdict(s.cache(1).lockRetries.value() == 0,
            "zero unsuccessful retries recorded");

    return finish();
}
