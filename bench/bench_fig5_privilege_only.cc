/**
 * @file
 * Figure 5: Request Only For Write Privilege.  "If the requester cache
 * already has a valid copy at a processor write, it only requests write
 * privilege, not the block itself" — a one-cycle invalidation with no
 * data transfer.
 */

#include "fig_common.hh"

using namespace csync;
using namespace csync::fig;

int
main()
{
    banner("Figure 5: Request Only For Write Privilege",
           "write hit on a read copy -> one-cycle invalidation, no data");

    Scenario s(figOpts());
    const Addr X = 0x1000;

    s.note("-- both caches obtain read copies --");
    s.run(0, wr(X, 1));
    s.run(1, rd(X));
    s.clearLog();

    double data_cycles = s.system().bus().dataTransferCycles.value();
    double upgrades = s.system().bus().typeCount(BusReq::Upgrade);
    double busy = s.system().bus().busyCycles.value();
    s.note("-- processor 0 writes X while holding a read copy --");
    s.run(0, wr(X, 2));
    printLog(s);

    verdict(s.system().bus().typeCount(BusReq::Upgrade) == upgrades + 1,
            "a privilege-only (Upgrade) request was used");
    verdict(s.system().bus().dataTransferCycles.value() == data_cycles,
            "no data moved on the bus");
    verdict(s.system().bus().busyCycles.value() - busy <= 3,
            "the invalidation took only the short signal tenure");
    verdict(s.state(0, X) == WrSrcDty && s.state(1, X) == Inv,
            "writer gained sole access; the other copy was invalidated");

    return finish();
}
