/**
 * @file
 * Feature 3 (claim Q1): directory duality and interdirectory
 * interference.  Bitar (1985) derives the frequency of *changing* a
 * block's dirty status — a write hit to a clean block — from Smith's
 * data as 0.2% to 1.2% of memory references, concluding that
 * non-identical directories are "probably not warranted on this ground"
 * (but still useful against lock-waiter status updates).
 *
 * Experiment: measure the write-hit-to-clean frequency across workload
 * points bracketing Smith's parameters (write fraction ~35%, miss
 * ratios a few percent), plus the analytic reconstruction
 *     f_whc ~= miss_ratio * P(fetched block is eventually written)
 * and compare the interference of ID / DPR / NID organizations.
 */

#include <cstdio>
#include <memory>

#include "proc/workloads/random_sharing.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct Point
{
    const char *label;
    unsigned frames;       // cache size knob (sets the miss ratio)
    double writeFraction;
};

struct Measured
{
    double whcFreq;        // write hits to clean blocks / references
    double missRatio;
    double analytic;       // miss_ratio * written-generation fraction
    double interferenceId;
    double interferenceNid;
};

Measured
run(const Point &pt, DirectoryKind kind)
{
    SystemConfig cfg;
    cfg.protocol = "illinois";
    cfg.numProcessors = 4;
    cfg.cache.geom.frames = pt.frames;
    cfg.cache.geom.blockWords = 4;
    cfg.cache.directory = kind;
    cfg.directoryFromProtocol = false;
    System sys(cfg);

    for (unsigned i = 0; i < 4; ++i) {
        RandomSharingParams p;
        p.ops = 20000;
        p.procId = i;
        p.seed = 11 + i;
        p.sharedBlocks = 8;
        p.privateBlocks = 96;
        p.sharedFraction = 0.15;
        p.writeFraction = pt.writeFraction;
        sys.addProcessor(std::make_unique<RandomSharingWorkload>(p));
    }
    sys.start();
    sys.run(200'000'000);
    if (!sys.allDone())
        fatal("directory run did not finish");

    Measured m{};
    double refs = 0, whc = 0, misses = 0, fetches = 0, dirty_wb = 0;
    for (unsigned i = 0; i < 4; ++i) {
        Cache &c = sys.cache(i);
        refs += c.accesses.value();
        whc += c.directory().writeHitsToClean.value();
        misses += c.missesBus.value();
        fetches += c.missesBus.value();
        dirty_wb += c.writebacks.value();
        m.interferenceId += c.directory().interferenceEvents();
    }
    m.whcFreq = whc / refs;
    m.missRatio = misses / refs;
    // Analytic reconstruction: a block's dirty status changes at most
    // once per generation; generations that end dirty were written.
    double written_gen_frac =
        fetches > 0 ? (whc + dirty_wb) / (2.0 * fetches) : 0;
    m.analytic = m.missRatio * written_gen_frac;
    return m;
}

} // namespace

int
main()
{
    std::printf("Feature 3: directory duality — write-hit-to-clean "
                "frequency (Bitar 1985: 0.2%%-1.2%%)\n\n");
    std::printf("%-26s %10s %10s %12s %14s\n", "workload point",
                "miss", "whc/refs", "analytic", "in 0.2-1.2%?");

    const Point points[] = {
        {"large cache, w=0.20", 256, 0.20},
        {"large cache, w=0.35", 256, 0.35},
        {"medium cache, w=0.35", 64, 0.35},
        {"small cache, w=0.35", 24, 0.35},
        {"small cache, w=0.50", 24, 0.50},
    };

    unsigned in_range = 0;
    for (const auto &pt : points) {
        Measured m = run(pt, DirectoryKind::IdenticalDual);
        bool ok = m.whcFreq >= 0.002 && m.whcFreq <= 0.012;
        in_range += ok;
        std::printf("%-26s %9.2f%% %9.2f%% %11.2f%% %14s\n", pt.label,
                    100 * m.missRatio, 100 * m.whcFreq,
                    100 * m.analytic, ok ? "yes" : "no");
    }

    // Interference comparison at one representative point.
    Measured id = run(points[2], DirectoryKind::IdenticalDual);
    Measured dpr = run(points[2], DirectoryKind::DualPortedRead);
    Measured nid = run(points[2], DirectoryKind::NonIdenticalDual);
    std::printf("\nInterference events (medium cache, w=0.35):\n");
    std::printf("  identical dual (ID):   %.0f\n", id.interferenceId);
    std::printf("  dual-ported-read (DPR):%.0f (reads concurrent, "
                "status writes still collide)\n", dpr.interferenceId);
    std::printf("  non-identical (NID):   %.0f (dirty status only in "
                "the processor directory)\n", nid.interferenceId);

    bool ok = in_range >= 2 && nid.interferenceId == 0 &&
              id.interferenceId > 0;
    std::printf("\n%s\n",
                ok ? "FEATURE 3 ANALYSIS REPRODUCED: dirty-status "
                     "changes are rare (sub-%% of references), so NID "
                     "directories are not warranted on this ground "
                     "alone — but they do eliminate the interference."
                   : "REPRODUCTION FAILED.");
    return ok ? 0 : 1;
}
