/**
 * @file
 * Figure 1: Fetching Unshared Data on Read Miss.  "If the request is for
 * read privilege and the block is not present in another cache — no
 * cache signals hit — the requester assumes write privilege, so that if
 * its processor subsequently writes the block, a bus access will not be
 * required in order to obtain write privilege."
 */

#include "fig_common.hh"

using namespace csync;
using namespace csync::fig;

int
main()
{
    banner("Figure 1: Fetching Unshared Data on Read Miss",
           "read miss, no hit line -> assume write privilege");

    Scenario s(figOpts());
    const Addr X = 0x1000;

    s.note("-- processor 0 reads X; no other cache has the block --");
    s.run(0, rd(X));
    printLog(s);

    verdict(s.state(0, X) == WrSrcCln,
            "requester assumed Write,Source,Clean (not Read)");
    verdict(s.system().bus().memSupplies.value() == 1,
            "memory supplied the block");

    double tx = s.system().bus().transactions.value();
    s.clearLog();
    s.note("-- processor 0 now writes X --");
    s.run(0, wr(X, 1));
    printLog(s);
    verdict(s.system().bus().transactions.value() == tx,
            "the subsequent write needed no bus access");
    verdict(s.state(0, X) == WrSrcDty, "block is now Write,Source,Dirty");

    return finish();
}
