/**
 * @file
 * Figure 2: Fetching Without Source Cache (read request).  "If there is
 * no source cache for the block, even if the block is present in another
 * cache, the block is provided by memory...  if the request is for read
 * privilege, any cache that has the block signals hit; otherwise the
 * requester will assume write privilege."
 */

#include "fig_common.hh"

using namespace csync;
using namespace csync::fig;

int
main()
{
    banner("Figure 2: Fetching Without Source Cache (read request)",
           "hit line raised, no source -> memory provides, read "
           "privilege");

    Scenario s(figOpts());
    const Addr X = 0x1000;

    s.note("-- cache 1 holds a read copy whose source was lost "
           "(installed directly) --");
    s.cache(1).installFrameForTest(X, Rd);

    double mem = s.system().bus().memSupplies.value();
    s.note("-- processor 0 reads X --");
    s.run(0, rd(X));
    printLog(s);

    verdict(s.system().bus().memSupplies.value() == mem + 1,
            "memory provided the block (no source cache)");
    verdict(canRead(s.state(0, X)) && !canWrite(s.state(0, X)),
            "requester assumed read privilege (hit line was raised)");
    verdict(isSource(s.state(0, X)),
            "the last fetcher became the new source (Feature 8 LRU)");
    verdict(s.state(1, X) == Rd, "the other copy is undisturbed");

    return finish();
}
