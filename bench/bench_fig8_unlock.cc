/**
 * @file
 * Figure 8: Unlocking a Block.  "The unlock can occur at the final write
 * to the block"; it is silent when no cache is waiting, and is broadcast
 * on the bus when the state is lock-waiter.
 */

#include "fig_common.hh"

using namespace csync;
using namespace csync::fig;

int
main()
{
    banner("Figure 8: Unlocking a Block",
           "unlock at the final write; silent without waiter, broadcast "
           "with waiter");

    const Addr X = 0x1000;
    {
        Scenario s(figOpts());
        s.note("-- no waiter: lock then unlock --");
        s.run(0, lockRd(X));
        s.clearLog();
        double tx = s.system().bus().transactions.value();
        s.run(0, unlockWr(X, 1));
        printLog(s);
        verdict(s.system().bus().transactions.value() == tx,
                "unlock generated no bus traffic (zero time)");
        verdict(s.state(0, X) == WrSrcDty,
                "block reverted to Write,Source,Dirty");
        verdict(s.cache(0).zeroTimeUnlocks.value() == 1,
                "counted as a zero-time unlock");
    }
    {
        Scenario s(figOpts());
        s.note("-- with waiter: the unlock is broadcast --");
        s.run(0, lockRd(X));
        s.tryRun(1, lockRd(X));
        s.clearLog();
        double bc = s.system().bus().typeCount(BusReq::UnlockBroadcast);
        s.run(0, unlockWr(X, 9));
        printLog(s);
        verdict(s.system().bus().typeCount(BusReq::UnlockBroadcast) ==
                    bc + 1,
                "the unlocking was broadcast on the bus (lock-waiter "
                "state)");
        AccessResult r;
        verdict(s.pendingCompleted(1, &r) && r.value == 9,
                "the waiter acquired the lock and read the final value");
    }
    return finish();
}
