/**
 * @file
 * Figure 11: the Aquarius architecture — two switch-memory systems: a
 * single full-broadcast bus holding the program synchronization data
 * (all hard atoms), and a separate high-concurrency switch (crossbar)
 * for instructions and non-synchronization data.
 *
 * The experiment: P processes doing lock-protected synchronization work
 * plus P processes doing ordinary data traffic, run (a) all on ONE bus,
 * versus (b) split across the two Aquarius systems.  The claim this
 * reproduces (Section G.1): separating the synchronization traffic onto
 * its own broadcast system keeps lock hand-off fast because sync traffic
 * no longer competes with data traffic for the interconnect.
 */

#include <cstdio>
#include <memory>

#include "proc/workloads/critical_section.hh"
#include "proc/workloads/random_sharing.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct Result
{
    Tick syncDone;       // when the sync processes finished
    double busUtil;      // sync-carrying bus utilization
    double meanLockWait; // mean busy-wait duration
};

SystemConfig
cfg(const char *name, unsigned procs)
{
    SystemConfig c;
    c.name = name;
    c.protocol = "bitar";
    c.numProcessors = procs;
    c.cache.geom.frames = 64;
    c.cache.geom.blockWords = 4;
    return c;
}

void
addSyncProcs(System &sys, unsigned n, std::uint64_t iters)
{
    CriticalSectionParams p;
    p.iterations = iters;
    p.alg = LockAlg::CacheLock;
    p.numLocks = 2;
    p.wordsPerCs = 2;
    p.outsideThink = 6;
    for (unsigned i = 0; i < n; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p));
    }
}

void
addDataProcs(System &sys, unsigned n, std::uint64_t ops, unsigned base_id)
{
    for (unsigned i = 0; i < n; ++i) {
        RandomSharingParams p;
        p.ops = ops;
        p.procId = base_id + i;
        p.seed = 7;
        p.sharedFraction = 0.2;
        p.writeFraction = 0.35;
        p.thinkMax = 2;
        sys.addProcessor(std::make_unique<RandomSharingWorkload>(p));
    }
}

double
meanLockWait(System &sys, unsigned sync_procs)
{
    double sum = 0, n = 0;
    for (unsigned i = 0; i < sync_procs; ++i) {
        sum += sys.cache(i).lockWaitTime.mean() *
               double(sys.cache(i).lockWaitTime.count());
        n += double(sys.cache(i).lockWaitTime.count());
    }
    return n ? sum / n : 0.0;
}

Tick
syncFinishTime(System &sys, unsigned sync_procs)
{
    // Run until the sync processors are done (data procs may continue).
    while (!sys.eventq().empty() && sys.now() < 20'000'000) {
        bool done = true;
        for (unsigned i = 0; i < sync_procs; ++i)
            done &= sys.processor(i).done();
        if (done)
            break;
        sys.eventq().runSteps(2048);
    }
    return sys.now();
}

} // namespace

int
main()
{
    std::printf("==============================================================\n");
    std::printf("Figure 11: Aquarius two-switch architecture\n");
    std::printf("Synchronization on its own broadcast bus vs. sharing one\n");
    std::printf("bus with ordinary data traffic.\n");
    std::printf("==============================================================\n\n");

    const unsigned P = 4;
    const std::uint64_t iters = 300, data_ops = 6000;

    // (a) Single shared bus: sync and data processes together.
    System combined(cfg("combined", 2 * P));
    addSyncProcs(combined, P, iters);
    addDataProcs(combined, P, data_ops, P);
    combined.start();
    Tick combined_done = syncFinishTime(combined, P);
    double combined_util =
        combined.bus().busyCycles.value() / double(combined.now());
    double combined_wait = meanLockWait(combined, P);

    // (b) Aquarius split: sync system + separate data system (the
    // crossbar side is its own switch-memory system).
    System sync_sys(cfg("sync", P));
    addSyncProcs(sync_sys, P, iters);
    System data_sys(cfg("data", P));
    addDataProcs(data_sys, P, data_ops, 0);
    sync_sys.start();
    data_sys.start();
    Tick split_done = syncFinishTime(sync_sys, P);
    data_sys.run();
    double split_util =
        sync_sys.bus().busyCycles.value() / double(sync_sys.now());
    double split_wait = meanLockWait(sync_sys, P);

    std::printf("%-34s %16s %16s\n", "", "one shared bus",
                "Aquarius split");
    std::printf("%-34s %16llu %16llu\n",
                "sync work finished at (cycles)",
                (unsigned long long)combined_done,
                (unsigned long long)split_done);
    std::printf("%-34s %15.1f%% %15.1f%%\n",
                "sync-carrying bus utilization", 100 * combined_util,
                100 * split_util);
    std::printf("%-34s %16.1f %16.1f\n",
                "mean busy-wait duration (cycles)", combined_wait,
                split_wait);
    std::printf("%-34s %16.0f %16.0f\n", "checker violations",
                combined.checker().violationCount.value(),
                sync_sys.checker().violationCount.value() +
                    data_sys.checker().violationCount.value());

    bool ok = split_done < combined_done &&
              combined.checker().violations() == 0 &&
              sync_sys.checker().violations() == 0 &&
              data_sys.checker().violations() == 0;
    std::printf("\nSeparating synchronization traffic sped up the sync "
                "work by %.0f%%.\n%s\n",
                100.0 * (double(combined_done) - double(split_done)) /
                    double(combined_done),
                ok ? "FIGURE REPRODUCED." : "FIGURE REPRODUCTION FAILED.");
    return ok ? 0 : 1;
}
