/**
 * @file
 * google-benchmark microbenchmarks of the simulation substrate itself:
 * event-queue throughput and end-to-end simulated-cycles-per-second of a
 * small system.  (The paper-reproduction benches are the bench_table,
 * bench_fig and bench_sec binaries.)
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "proc/workloads/random_sharing.hh"
#include "sim/event_queue.hh"
#include "system/system.hh"

using namespace csync;

static void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < 1024; ++i)
            eq.schedule(Tick(i), [&sink] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

static void
BM_SystemRandomSharing(benchmark::State &state)
{
    for (auto _ : state) {
        SystemConfig cfg;
        cfg.protocol = "illinois";
        cfg.numProcessors = 4;
        cfg.cache.geom.frames = 64;
        cfg.cache.geom.blockWords = 4;
        System sys(cfg);
        for (unsigned i = 0; i < 4; ++i) {
            RandomSharingParams p;
            p.ops = 2000;
            p.procId = i;
            p.seed = 42;
            sys.addProcessor(
                std::make_unique<RandomSharingWorkload>(p));
        }
        sys.start();
        sys.run();
        benchmark::DoNotOptimize(sys.bus().transactions.value());
    }
}
BENCHMARK(BM_SystemRandomSharing);

BENCHMARK_MAIN();
