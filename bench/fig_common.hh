/**
 * @file
 * Shared plumbing for the Figure 1-9 reproduction benches: build a
 * traced scenario on the paper's proposed protocol, print the
 * simulator's own narration, and verify the figure's outcome, exiting
 * nonzero on mismatch.
 */

#ifndef CSYNC_BENCH_FIG_COMMON_HH
#define CSYNC_BENCH_FIG_COMMON_HH

#include <cstdio>
#include <string>

#include "system/scenario.hh"

namespace csync
{
namespace fig
{

inline Scenario::Options
figOpts(unsigned processors = 3)
{
    Scenario::Options o;
    o.protocol = "bitar";
    o.processors = processors;
    o.blockWords = 4;
    o.frames = 16;
    o.collectTrace = true;
    return o;
}

inline void
banner(const char *title, const char *paper_text)
{
    std::printf("==============================================================\n");
    std::printf("%s\n", title);
    std::printf("Paper: %s\n", paper_text);
    std::printf("==============================================================\n\n");
}

inline void
printLog(Scenario &s)
{
    std::printf("--- simulator narration "
                "-------------------------------------\n");
    for (const auto &line : s.log())
        std::printf("%s\n", line.c_str());
    std::printf("\n");
}

inline int verdictFailures = 0;

inline void
verdict(bool ok, const std::string &what)
{
    std::printf("  [%s] %s\n", ok ? "ok" : "MISMATCH", what.c_str());
    if (!ok)
        ++verdictFailures;
}

inline int
finish()
{
    std::printf("\n%s\n", verdictFailures == 0
                              ? "FIGURE REPRODUCED."
                              : "FIGURE REPRODUCTION FAILED.");
    return verdictFailures == 0 ? 0 : 1;
}

inline MemOp
rd(Addr a)
{
    return MemOp{OpType::Read, a, 0, false};
}

inline MemOp
wr(Addr a, Word v)
{
    return MemOp{OpType::Write, a, v, false};
}

inline MemOp
lockRd(Addr a)
{
    return MemOp{OpType::LockRead, a, 0, false};
}

inline MemOp
unlockWr(Addr a, Word v)
{
    return MemOp{OpType::UnlockWrite, a, v, false};
}

} // namespace fig
} // namespace csync

#endif // CSYNC_BENCH_FIG_COMMON_HH
