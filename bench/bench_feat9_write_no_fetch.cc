/**
 * @file
 * Feature 9: writing without fetch on a write miss.  "If the processor
 * is going to write all of the data in a block, the block need not be
 * fetched on a miss...  This may occur in initializing data, but more
 * importantly, in saving state at a process switch.  In the Aquarius
 * system ... we anticipate frequent process switching, hence the
 * switching must be very efficient."
 *
 * Experiment: two processors alternately save a process's state into a
 * shared save area (every word of every state block written).  With the
 * feature, the first write of each block is a one-cycle claim; without
 * it, each block is uselessly fetched from the other cache.
 */

#include <cstdio>
#include <memory>

#include "proc/workloads/state_save.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct Row
{
    double fetches;
    double busBusy;
    Tick cyclesPerSwitch;
};

Row
run(bool wnf, unsigned state_blocks)
{
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = 2;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    const std::uint64_t switches = 60;
    StateSaveParams p;
    p.switches = switches;
    p.stateBlocks = state_blocks;
    p.blockWords = 4;
    p.useWriteNoFetch = wnf;
    p.numProcs = 2;
    for (unsigned i = 0; i < 2; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<StateSaveWorkload>(p));
    }
    sys.start();
    Tick end = sys.run(100'000'000);
    if (!sys.allDone() || sys.checker().violations() != 0)
        fatal("state-save run failed (wnf=%d blocks=%u)", int(wnf),
              state_blocks);
    return Row{sys.bus().cacheSupplies.value() +
                   sys.bus().memSupplies.value(),
               sys.bus().busyCycles.value(),
               end / (2 * switches)};
}

} // namespace

int
main()
{
    std::printf("Feature 9: writing without fetch on write miss "
                "(process-state save)\n");
    std::printf("Two processors alternately save full process state "
                "into a shared save area.\n\n");
    std::printf("%-14s %18s %18s %18s\n", "state blocks",
                "fetches (no WNF)", "fetches (WNF)", "cycle savings");

    bool ok = true;
    for (unsigned blocks : {1u, 2u, 4u, 8u}) {
        Row without = run(false, blocks);
        Row with = run(true, blocks);
        double savings = (double(without.cyclesPerSwitch) -
                          double(with.cyclesPerSwitch)) /
                         double(without.cyclesPerSwitch);
        std::printf("%-14u %18.0f %18.0f %17.1f%%\n", blocks,
                    without.fetches, with.fetches, 100 * savings);
        ok = ok && with.fetches < without.fetches &&
             with.busBusy < without.busBusy;
    }

    std::printf("\n%s\n",
                ok ? "FEATURE 9 REPRODUCED: no fetches for process "
                     "state blocks; the bus carries one-cycle claims "
                     "instead of useless block transfers."
                   : "REPRODUCTION FAILED.");
    return ok ? 0 : 1;
}
