/**
 * @file
 * Figure 3: Fetching Without Source Cache (write request).  Memory
 * provides the block; the requester assumes write privilege and the
 * other copies are invalidated concurrently (Feature 4).
 */

#include "fig_common.hh"

using namespace csync;
using namespace csync::fig;

int
main()
{
    banner("Figure 3: Fetching Without Source Cache (write request)",
           "no source -> memory provides; write privilege; others "
           "invalidated while fetching");

    Scenario s(figOpts());
    const Addr X = 0x1000;

    s.note("-- caches 1 and 2 hold read copies, no source --");
    s.cache(1).installFrameForTest(X, Rd);
    s.cache(2).installFrameForTest(X, Rd);

    double mem = s.system().bus().memSupplies.value();
    double tx = s.system().bus().transactions.value();
    s.note("-- processor 0 writes X --");
    s.run(0, wr(X, 7));
    printLog(s);

    verdict(s.system().bus().memSupplies.value() == mem + 1,
            "memory provided the block");
    verdict(s.system().bus().transactions.value() == tx + 1,
            "one transaction: invalidation concurrent with the fetch "
            "(Feature 4)");
    verdict(s.state(0, X) == WrSrcDty,
            "requester holds Write,Source,Dirty");
    verdict(s.state(1, X) == Inv && s.state(2, X) == Inv,
            "both other copies were invalidated");

    return finish();
}
