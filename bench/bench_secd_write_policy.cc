/**
 * @file
 * Section D.2 (claim Q6): write-in vs. write-through/update for actively
 * shared data.  "Write-through for shared data incurs the cost of small
 * granularity of updates, inappropriate for an atom whose blocks are
 * written more than a few times while the atom is locked."
 *
 * Experiment: a producer/consumer hand-off where the producer rewrites
 * each data word R times per item (R = writes per lock tenure).  Update
 * protocols (Dragon, Firefly) pay one bus word-write per rewrite;
 * write-in protocols (the proposal, Illinois) invalidate once and then
 * write locally.  The crossover the paper predicts: update wins at R=1
 * (the next reader is updated in place), write-in wins as R grows.
 */

#include <cstdio>
#include <memory>

#include "proc/workloads/producer_consumer.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct Row
{
    Tick cycles;
    double busPerItem;
    double busyPerItem;
};

Row
run(const std::string &proto, unsigned rewrites)
{
    SystemConfig cfg;
    cfg.protocol = proto;
    cfg.numProcessors = 2;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    ProducerConsumerParams p;
    p.items = 200;
    p.dataWords = 4;
    p.rewrites = rewrites;
    sys.addProcessor(std::make_unique<ProducerWorkload>(p));
    sys.addProcessor(std::make_unique<ConsumerWorkload>(p));
    sys.start();
    Tick end = sys.run(50'000'000);
    if (!sys.allDone() || sys.checker().violations() != 0) {
        fatal("write-policy run failed for %s R=%u", proto.c_str(),
              rewrites);
    }
    return Row{end, sys.bus().transactions.value() / double(p.items),
               sys.bus().busyCycles.value() / double(p.items)};
}

} // namespace

int
main()
{
    const char *protos[] = {"bitar", "illinois", "dragon", "firefly",
                            "rudolph_segall", "classic_wt"};
    const unsigned rewrites[] = {1, 2, 4, 8, 16};

    std::printf("Section D.2: write-in vs write-through/update for "
                "shared data\n");
    std::printf("Producer/consumer, 200 items, 4 data words; R = writes "
                "per word per lock tenure.\n");
    std::printf("Metric: bus-busy cycles per item handed off (lower is "
                "better).\n\n");

    std::printf("%-16s", "protocol");
    for (unsigned r : rewrites)
        std::printf("    R=%-5u", r);
    std::printf("\n");

    double bitar_r1 = 0, bitar_r16 = 0;
    double dragon_r1 = 0, dragon_r16 = 0;
    for (const char *proto : protos) {
        std::printf("%-16s", proto);
        for (unsigned r : rewrites) {
            Row row = run(proto, r);
            std::printf(" %9.1f", row.busyPerItem);
            if (std::string(proto) == "bitar") {
                if (r == 1)
                    bitar_r1 = row.busyPerItem;
                if (r == 16)
                    bitar_r16 = row.busyPerItem;
            }
            if (std::string(proto) == "dragon") {
                if (r == 1)
                    dragon_r1 = row.busyPerItem;
                if (r == 16)
                    dragon_r16 = row.busyPerItem;
            }
        }
        std::printf("\n");
    }

    // The paper's shape: update's cost grows with R (word-granularity,
    // every-write occasions); write-in's cost is nearly flat in R.
    double dragon_growth = dragon_r16 / dragon_r1;
    double bitar_growth = bitar_r16 / bitar_r1;
    std::printf("\nGrowth from R=1 to R=16:  write-update (dragon) "
                "%.1fx,  write-in (bitar) %.1fx\n",
                dragon_growth, bitar_growth);
    bool shape_ok = dragon_growth > 2.0 * bitar_growth;
    std::printf("%s\n",
                shape_ok
                    ? "SECTION D.2 ANALYSIS REPRODUCED: write-through "
                      "to shared data loses when an atom's blocks are "
                      "written more than a few times per tenure."
                    : "SHAPE MISMATCH.");
    return shape_ok ? 0 : 1;
}
