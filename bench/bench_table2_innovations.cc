/**
 * @file
 * Table 2: Innovation Summary — every scheme group of the paper with
 * behavioral evidence for each innovation ([measured] = the probe
 * observed the behavior in the implementation).
 */

#include <cstdio>
#include <string>

#include "core/feature_audit.hh"

using namespace csync;

int
main()
{
    std::printf("Reproducing Table 2: auditing all ten protocols...\n\n");
    std::vector<FeatureAudit> audits;
    for (const char *p :
         {"classic_wt", "goodman", "synapse", "illinois", "yen",
          "berkeley", "bitar", "dragon", "firefly", "rudolph_segall"}) {
        audits.push_back(auditProtocol(p));
    }
    std::string t2 = renderTable2(audits);
    std::printf("%s\n", t2.c_str());

    bool all_measured = t2.find("[claimed]") == std::string::npos;
    std::printf("%s\n", all_measured
                            ? "TABLE 2 REPRODUCED (all innovations "
                              "measured)."
                            : "TABLE 2 PARTIALLY REPRODUCED (some "
                              "innovations unverified).");
    return all_measured ? 0 : 1;
}
