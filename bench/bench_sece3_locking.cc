/**
 * @file
 * Section E.3 (claim Q4): efficient busy-wait locking.  Cache-state
 * locking vs. test-and-set bits:
 *
 *  - "Locking and unlocking usually occur in zero time, as opposed to
 *     fetching a lock bit and then the data."
 *  - "No blocks are devoted to lock bits (hard atoms) under write-in."
 *
 * Experiment: the same critical-section work on the proposed protocol
 * with the three lock algorithms, sweeping the processor count.
 * Metrics: cycles and bus transactions per completed critical section,
 * and the fraction of lock/unlock pairs that took zero bus traffic.
 */

#include <cstdio>
#include <memory>

#include "proc/workloads/critical_section.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct Row
{
    double cyclesPerCs;
    double busPerCs;
    double zeroTimeFrac;
};

Row
run(LockAlg alg, unsigned procs)
{
    SystemConfig cfg;
    cfg.protocol = "bitar";
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    const std::uint64_t iters = 150;
    CriticalSectionParams p;
    p.iterations = iters;
    p.alg = alg;
    p.numLocks = 2;
    p.wordsPerCs = 2;
    p.outsideThink = 8;
    for (unsigned i = 0; i < procs; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p));
    }
    sys.start();
    Tick end = sys.run(80'000'000);
    if (!sys.allDone() || sys.checker().violations() != 0)
        fatal("locking run failed: %s p=%u", lockAlgName(alg), procs);

    double total = double(iters * procs);
    double zero = 0, pairs = 0;
    for (unsigned i = 0; i < procs; ++i) {
        zero += sys.cache(i).zeroTimeLocks.value() +
                sys.cache(i).zeroTimeUnlocks.value();
        pairs += 2.0 * double(iters);
    }
    return Row{double(end) / total,
               sys.bus().transactions.value() / total,
               alg == LockAlg::CacheLock ? zero / pairs : 0.0};
}

} // namespace

int
main()
{
    std::printf("Section E.3: efficient busy-wait locking "
                "(protocol: bitar)\n");
    std::printf("150 critical sections per processor; 2 locks; 2 "
                "guarded words in the atom's block.\n\n");

    const unsigned procs[] = {1, 2, 4, 8};
    std::printf("%-26s", "cycles per critical sect.");
    for (unsigned p : procs)
        std::printf("   P=%-6u", p);
    std::printf("\n");

    double tas8 = 0, cls8 = 0;
    for (LockAlg alg : {LockAlg::TestAndSet, LockAlg::TestTestSet,
                        LockAlg::CacheLock}) {
        std::printf("%-26s", lockAlgName(alg));
        for (unsigned p : procs) {
            Row r = run(alg, p);
            std::printf(" %9.1f", r.cyclesPerCs);
            if (p == 8 && alg == LockAlg::TestAndSet)
                tas8 = r.cyclesPerCs;
            if (p == 8 && alg == LockAlg::CacheLock)
                cls8 = r.cyclesPerCs;
        }
        std::printf("\n");
    }

    std::printf("\n%-26s", "bus transactions per CS");
    for (unsigned p : procs)
        std::printf("   P=%-6u", p);
    std::printf("\n");
    for (LockAlg alg : {LockAlg::TestAndSet, LockAlg::TestTestSet,
                        LockAlg::CacheLock}) {
        std::printf("%-26s", lockAlgName(alg));
        for (unsigned p : procs)
            std::printf(" %9.2f", run(alg, p).busPerCs);
        std::printf("\n");
    }

    Row uncontended = run(LockAlg::CacheLock, 1);
    std::printf("\nZero-time lock+unlock fraction (cache-lock-state):  "
                "P=1: %.0f%%   P=8: %.0f%%\n",
                100 * uncontended.zeroTimeFrac,
                100 * run(LockAlg::CacheLock, 8).zeroTimeFrac);

    bool shape_ok = cls8 < tas8 && uncontended.zeroTimeFrac > 0.5;
    std::printf("\nAt P=8 cache-state locking is %.1fx faster than "
                "test-and-set.\n%s\n",
                tas8 / cls8,
                shape_ok ? "SECTION E.3 REPRODUCED."
                         : "SHAPE MISMATCH.");
    return shape_ok ? 0 : 1;
}
