/**
 * @file
 * Feature 8: number of sources for a read-privilege block.  Three
 * policies:
 *
 *  - ARB (Papamarcos & Patel): every holder may supply; arbitration
 *    slows the transfer but memory is rarely needed;
 *  - MEM (Katz et al.): a single source; if it purges, fetch from
 *    memory;
 *  - LRU,MEM (the proposal): the last fetcher becomes source, so LRU
 *    replacement across caches reduces the chance of losing the source.
 *
 * Experiment: read-shared traffic with tight caches (frequent source
 * purges); metrics: memory-supply fraction, source arbitrations, and
 * mean read-miss latency.
 */

#include <cstdio>
#include <memory>

#include "proc/workloads/random_sharing.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct Row
{
    double memFrac;
    double arbs;
    double missLatency;
};

Row
run(const std::string &proto, unsigned frames)
{
    SystemConfig cfg;
    cfg.protocol = proto;
    cfg.numProcessors = 4;
    cfg.cache.geom.frames = frames;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);
    for (unsigned i = 0; i < 4; ++i) {
        RandomSharingParams p;
        p.ops = 8000;
        p.procId = i;
        p.seed = 21 + i;
        p.sharedBlocks = 12;
        p.privateBlocks = frames;    // enough private traffic to purge
        p.sharedFraction = 0.55;
        p.writeFraction = 0.10;      // read-shared heavy
        sys.addProcessor(std::make_unique<RandomSharingWorkload>(p));
    }
    sys.start();
    sys.run(200'000'000);
    if (!sys.allDone() || sys.checker().violations() != 0)
        fatal("source-policy run failed (%s)", proto.c_str());

    double fetches = sys.bus().memSupplies.value() +
                     sys.bus().cacheSupplies.value();
    double latency = 0, ops = 0;
    for (unsigned i = 0; i < 4; ++i) {
        latency += sys.cache(i).opLatency.mean() *
                   double(sys.cache(i).opLatency.count());
        ops += double(sys.cache(i).opLatency.count());
    }
    return Row{sys.bus().memSupplies.value() / fetches,
               sys.bus().sourceArbitrations.value(),
               latency / ops};
}

} // namespace

int
main()
{
    std::printf("Feature 8: source policy for read-shared blocks\n");
    std::printf("Read-heavy shared traffic, 4 processors; small caches "
                "purge sources often.\n\n");

    struct P
    {
        const char *proto;
        const char *policy;
    };
    const P protos[] = {{"illinois", "ARB"},
                        {"berkeley", "MEM"},
                        {"bitar", "LRU,MEM"}};

    for (unsigned frames : {16u, 48u}) {
        std::printf("--- cache frames = %u ---\n", frames);
        std::printf("%-12s %-9s %12s %14s %14s\n", "protocol",
                    "policy", "mem-supplied", "arbitrations",
                    "mean op lat.");
        for (const auto &pp : protos) {
            Row r = run(pp.proto, frames);
            std::printf("%-12s %-9s %11.1f%% %14.0f %14.2f\n",
                        pp.proto, pp.policy, 100 * r.memFrac, r.arbs,
                        r.missLatency);
        }
        std::printf("\n");
    }

    Row arb = run("illinois", 16);
    Row mem = run("berkeley", 16);
    Row lru = run("bitar", 16);
    // The paper's qualitative claims: ARB never needs arbitration-free
    // memory fallback but pays arbitration; LRU (last fetcher) loses
    // the source less often than a pinned single source under LRU-ish
    // replacement.
    bool ok = arb.arbs > 0 && mem.arbs == 0 && lru.arbs == 0 &&
              arb.memFrac < lru.memFrac && lru.memFrac <= mem.memFrac;
    std::printf("%s\n",
                ok ? "FEATURE 8 ANALYSIS REPRODUCED: ARB avoids memory "
                     "fetches at the price of arbitration; the "
                     "last-fetcher-becomes-source rule loses the source "
                     "less often than a pinned owner."
                   : "SHAPE DIFFERS — see the table above.");
    return ok ? 0 : 1;
}
