/**
 * @file
 * Cross-protocol comparison — the performance evaluation the paper
 * defers to ("we look forward to obtaining performance statistics for
 * our system", Section G.2), in the style of Archibald & Baer 1985:
 * every protocol on the same random-sharing workload, sweeping the
 * sharing intensity.  Metrics: bus utilization, bus transactions per
 * memory reference, and mean reference latency.
 */

#include <cstdio>
#include <memory>

#include "proc/workloads/random_sharing.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct Row
{
    double busUtil;
    double txPerRef;
    double meanLatency;
    Tick cycles;
};

Row
run(const std::string &proto, double shared_frac, unsigned procs)
{
    SystemConfig cfg;
    cfg.protocol = proto;
    cfg.numProcessors = procs;
    cfg.cache.geom.frames = 128;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    auto features = makeProtocol(proto)->features();
    for (unsigned i = 0; i < procs; ++i) {
        RandomSharingParams p;
        p.ops = 6000;
        p.procId = i;
        p.seed = 3 + i;
        p.sharedBlocks = 16;
        p.privateBlocks = 64;
        p.sharedFraction = shared_frac;
        p.writeFraction = 0.30;
        p.privateHints = features.fetchUnsharedForWrite == 'S';
        sys.addProcessor(std::make_unique<RandomSharingWorkload>(p));
    }
    sys.start();
    Tick end = sys.run(400'000'000);
    if (!sys.allDone() || sys.checker().violations() != 0)
        fatal("comparison run failed (%s)", proto.c_str());

    double refs = 0, latency = 0;
    for (unsigned i = 0; i < procs; ++i) {
        refs += sys.cache(i).accesses.value();
        latency += sys.cache(i).opLatency.mean() *
                   double(sys.cache(i).opLatency.count());
    }
    return Row{sys.bus().busyCycles.value() / double(end),
               sys.bus().transactions.value() / refs, latency / refs,
               end};
}

} // namespace

int
main()
{
    const char *protos[] = {"classic_wt", "goodman", "synapse",
                            "illinois", "yen", "berkeley", "bitar",
                            "dragon", "firefly", "rudolph_segall"};

    std::printf("Cross-protocol comparison (Archibald & Baer style)\n");
    std::printf("4 processors, 6000 refs each, 30%% writes; sweep of "
                "shared-data fraction.\n\n");

    for (double sf : {0.05, 0.30, 0.60}) {
        std::printf("--- shared fraction = %.0f%% ---\n", sf * 100);
        std::printf("%-16s %10s %12s %12s %12s\n", "protocol",
                    "bus util", "tx/ref", "mean lat.", "cycles");
        double wt_util = 0, bitar_util = 0;
        for (const char *proto : protos) {
            Row r = run(proto, sf, 4);
            std::printf("%-16s %9.1f%% %12.3f %12.2f %12llu\n", proto,
                        100 * r.busUtil, r.txPerRef, r.meanLatency,
                        (unsigned long long)r.cycles);
            if (std::string(proto) == "classic_wt")
                wt_util = r.txPerRef;
            if (std::string(proto) == "bitar")
                bitar_util = r.txPerRef;
        }
        std::printf("  (write-in generates %.1fx fewer transactions "
                    "per reference than classic write-through)\n\n",
                    wt_util / bitar_util);
    }

    std::printf("Scaling with processor count (shared fraction 30%%, "
                "protocol bitar vs classic_wt):\n");
    std::printf("%-6s %18s %18s\n", "P", "bitar bus util",
                "classic_wt bus util");
    bool saturates = false;
    for (unsigned p : {2u, 4u, 8u, 12u}) {
        Row b = run("bitar", 0.30, p);
        Row w = run("classic_wt", 0.30, p);
        std::printf("%-6u %17.1f%% %17.1f%%\n", p, 100 * b.busUtil,
                    100 * w.busUtil);
        if (p >= 8 && w.busUtil > 0.9 && b.busUtil < w.busUtil)
            saturates = true;
    }
    std::printf("\n%s\n",
                saturates
                    ? "COMPARISON REPRODUCED: write-through saturates "
                      "the single bus first; write-in schemes scale "
                      "further (the motivation of Section D)."
                    : "Shape differs; see tables above.");
    return saturates ? 0 : 1;
}
