/**
 * @file
 * Figure 9: End Busy Wait.  "A busy-wait register waiting on that lock
 * recognizes the unlocking and joins the next bus arbitration [with the
 * dedicated high-priority bit].  The winning cache will fetch the block
 * for write privilege, lock the block using the lock-waiter state...,
 * and interrupt its processor; while the other caches will let their
 * processors continue... and will not access the bus, making no attempt
 * to fetch the block again."
 */

#include "fig_common.hh"

using namespace csync;
using namespace csync::fig;

int
main()
{
    banner("Figure 9: End Busy Wait",
           "priority arbitration; winner locks in lock-waiter state and "
           "interrupts; losers stay quiet");

    Scenario s(figOpts(3));
    const Addr X = 0x1000;

    s.note("-- processor 0 locks X; processors 1 and 2 queue up --");
    s.run(0, lockRd(X));
    s.tryRun(1, lockRd(X));
    s.tryRun(2, lockRd(X));
    s.clearLog();

    double hp = s.system().bus().highPriorityGrants.value();
    s.note("-- processor 0 unlocks --");
    s.run(0, unlockWr(X, 7));
    printLog(s);

    AccessResult r1, r2;
    bool done1 = s.pendingCompleted(1, &r1);
    bool done2 = s.pendingCompleted(2, &r2);
    verdict(done1 != done2, "exactly one waiter won the arbitration");
    unsigned winner = done1 ? 1 : 2;
    unsigned loser = done1 ? 2 : 1;

    verdict(s.system().bus().highPriorityGrants.value() > hp,
            "the winner used the dedicated high-priority bit");
    verdict(s.state(winner, X) == LkSrcDtyWt,
            "the winner locked using the lock-waiter state");
    verdict((done1 ? r1 : r2).value == 7,
            "the winner's processor was interrupted with the lock held");
    verdict(s.cache(loser).busyWaitArmed(),
            "the loser made no attempt to fetch the block again");
    verdict(s.cache(1).lockRetries.value() +
                    s.cache(2).lockRetries.value() ==
                0,
            "zero unsuccessful retries on the bus (Q5)");

    s.clearLog();
    s.note("-- the winner unlocks; the last waiter is handed the "
           "lock --");
    s.run(winner, unlockWr(X, 8));
    printLog(s);
    AccessResult rl;
    verdict(s.pendingCompleted(loser, &rl) && rl.value == 8,
            "the remaining waiter acquired the lock in turn");
    verdict(s.system().checker().violationCount.value() == 0,
            "no coherence or lock violations anywhere");

    return finish();
}
