/**
 * @file
 * Robustness exhibit: protocol behavior under injected bus faults.
 * Sweeps the fault rate over a mix of protocols on a contended
 * critical-section workload and reports the slowdown relative to the
 * clean run, the number of faults injected/recovered, and the backoff
 * ticks burned — with the checker asserting that coherence and lock
 * mutual exclusion survive every perturbation.  Related service-
 * discipline studies show protocol rankings flip under perturbation;
 * this table is the simulator's version of that experiment.
 */

#include <cstdio>
#include <memory>

#include "fault/faulty_bus.hh"
#include "harness/workload_factory.hh"
#include "system/system.hh"

using namespace csync;

namespace
{

struct Row
{
    Tick ticks = 0;
    double injected = 0;
    double recovered = 0;
    double backoff = 0;
};

Row
runOne(const char *protocol, double rate)
{
    SystemConfig cfg;
    cfg.protocol = protocol;
    cfg.numProcessors = 4;
    cfg.cache.geom.frames = 64;
    cfg.cache.geom.blockWords = 4;
    cfg.fault.rate = rate;
    cfg.fault.seed = 1;
    System sys(cfg);

    for (unsigned i = 0; i < cfg.numProcessors; ++i) {
        harness::WorkloadSlot slot;
        slot.procId = i;
        slot.numProcs = cfg.numProcessors;
        slot.ops = 200;
        slot.seed = 1;
        slot.blockBytes = Addr(cfg.cache.geom.blockWords) * bytesPerWord;
        slot.protocol = protocol;
        std::string err;
        auto w = harness::makeWorkload("critical_section", slot, &err);
        if (!w)
            fatal("%s", err.c_str());
        sys.addProcessor(std::move(w));
    }
    sys.start();

    Row row;
    row.ticks = sys.run(100'000'000);
    if (!sys.allDone() || sys.watchdogTripped())
        fatal("fault run wedged: %s rate=%g: %s", protocol, rate,
              sys.watchdogDiagnostic().c_str());
    if (sys.checker().violations() != 0 || sys.checkStateInvariants())
        fatal("coherence violated under faults: %s rate=%g", protocol,
              rate);
    if (auto *fb = dynamic_cast<FaultyBus *>(&sys.bus())) {
        row.injected = fb->injected.value();
        row.recovered = fb->recovered.value();
        row.backoff = fb->backoffTicks.value();
    }
    return row;
}

} // namespace

int
main()
{
    std::printf("Fault injection: recovery cost on a contended "
                "critical-section workload (P=4)\n");
    std::printf("All kinds enabled (nak, stall, delay_supply, "
                "drop_grant); checker clean in every cell.\n\n");
    std::printf("%-16s %-6s %10s %9s %9s %9s %9s\n", "protocol", "rate",
                "ticks", "slowdown", "injected", "recovered", "backoff");

    const char *protocols[] = {"bitar", "illinois", "dragon", "synapse",
                               "berkeley"};
    const double rates[] = {0.0, 0.02, 0.05, 0.2};

    for (const char *proto : protocols) {
        double clean_ticks = 0;
        for (double rate : rates) {
            Row r = runOne(proto, rate);
            if (rate == 0.0)
                clean_ticks = double(r.ticks);
            std::printf("%-16s %-6g %10llu %8.2fx %9.0f %9.0f %9.0f\n",
                        proto, rate, (unsigned long long)r.ticks,
                        clean_ticks ? double(r.ticks) / clean_ticks : 1.0,
                        r.injected, r.recovered, r.backoff);
        }
        std::printf("\n");
    }
    return 0;
}
