/**
 * @file
 * Figure 4: Cache-to-Cache Transfer.  "If there is a source cache for a
 * block, the source provides the contents of the block, if requested,
 * along with the clean/dirty status of the block."  Under the proposal's
 * Feature 7 'NF,S' the block is not flushed and the dirty status travels
 * with it; the last fetcher becomes the new source.
 */

#include "fig_common.hh"

using namespace csync;
using namespace csync::fig;

int
main()
{
    banner("Figure 4: Cache-to-Cache Transfer",
           "source provides block + clean/dirty status; no flush; "
           "source status moves to the fetcher");

    Scenario s(figOpts());
    const Addr X = 0x1000;

    s.note("-- processor 0 creates a dirty block --");
    s.run(0, wr(X, 42));
    s.clearLog();

    double c2c = s.system().bus().cacheSupplies.value();
    double flushes = s.system().memory().blockWrites.value();
    s.note("-- processor 1 reads X --");
    AccessResult r = s.run(1, rd(X));
    printLog(s);

    verdict(r.value == 42,
            "the fetcher received the latest version from the source");
    verdict(s.system().bus().cacheSupplies.value() == c2c + 1,
            "cache-to-cache transfer occurred");
    verdict(s.system().memory().blockWrites.value() == flushes,
            "the block was NOT flushed (Feature 7 'NF')");
    verdict(s.state(1, X) == RdSrcDty,
            "dirty status travelled with the block ('NF,S'): fetcher is "
            "Read,Source,Dirty");
    verdict(s.state(0, X) == Rd,
            "the old source dropped to Read (source moved)");

    return finish();
}
