/**
 * @file
 * Figure 10: Cache State Transitions — the full transition behavior of
 * the proposed protocol, enumerated from live mini-systems rather than
 * drawn by hand: every (state x processor request x other-cache status)
 * and every snooped bus request.
 */

#include <cstdio>

#include "coherence/protocol.hh"
#include "core/transitions.hh"

using namespace csync;

int
main()
{
    std::printf("==============================================================\n");
    std::printf("Figure 10: Cache State Transitions (the proposal)\n");
    std::printf("Every arc below was observed by driving a live system\n");
    std::printf("through the labeled stimulus, not asserted by hand.\n");
    std::printf("==============================================================\n\n");

    auto arcs = enumerateTransitions("bitar");
    std::printf("%s\n", renderTransitions(arcs, "bitar").c_str());

    // Cross-check: every reached state is one of the paper's eight.
    auto proto = makeProtocol("bitar");
    auto legal = proto->statesUsed();
    unsigned bad = 0;
    for (const auto &t : arcs) {
        bool ok = false;
        for (State s : legal)
            ok |= (s == t.to);
        if (!ok) {
            std::printf("ILLEGAL STATE REACHED: %s via [%s]\n",
                        stateName(t.to).c_str(), t.label.c_str());
            ++bad;
        }
    }
    std::printf("%u arcs observed, %u illegal states "
                "(\"arcs not shown would be bugs\").\n",
                unsigned(arcs.size()), bad);
    return bad == 0 ? 0 : 1;
}
