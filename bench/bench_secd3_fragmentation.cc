/**
 * @file
 * Section D.3 (claim Q7): internal fragmentation under write-in.
 * "An entire block must be transferred when access is requested to the
 * (possibly smaller) atom on the block...  A solution is to transfer
 * smaller transfer units."
 *
 * Experiment: a contended 2-word atom (lock + counter) bounced between
 * processors, with the transfer-unit size swept from 1 to 16 words (a
 * transfer unit behaves like a small block with its own status, so the
 * sweep varies the block size while the atom stays 2 words).  Metric:
 * data words moved on the bus per lock acquisition — the fragmentation
 * waste is everything beyond the atom's own words.
 */

#include <cstdio>
#include <memory>

#include "proc/workloads/critical_section.hh"
#include "system/system.hh"

using namespace csync;

int
main()
{
    std::printf("Section D.3: internal fragmentation under write-in\n");
    std::printf("2-word atom (lock + counter), 4 processors, 150 "
                "acquisitions each.\n\n");
    std::printf("%-22s %14s %18s %16s\n", "transfer unit (words)",
                "data cycles", "cycles/acquire", "waste factor");

    double first_waste = 0, last_waste = 0;
    const unsigned sizes[] = {1, 2, 4, 8, 16};
    for (unsigned words : sizes) {
        SystemConfig cfg;
        cfg.protocol = "bitar";
        cfg.numProcessors = 4;
        cfg.cache.geom.frames = 64;
        cfg.cache.geom.blockWords = words;
        System sys(cfg);

        CriticalSectionParams p;
        p.iterations = 150;
        p.alg = LockAlg::CacheLock;
        p.numLocks = 1;
        p.wordsPerCs = 1;
        p.blockBytes = Addr(words) * bytesPerWord;
        p.dataInLockBlock = words >= 2;
        for (unsigned i = 0; i < 4; ++i) {
            p.procId = i;
            sys.addProcessor(
                std::make_unique<CriticalSectionWorkload>(p));
        }
        sys.start();
        Tick end = sys.run(50'000'000);
        if (!sys.allDone() || sys.checker().violations() != 0)
            fatal("fragmentation run failed at %u words", words);

        double acquisitions = 600.0;
        double data_per_acq =
            sys.bus().dataTransferCycles.value() / acquisitions;
        double atom_words = 2.0;
        double waste = (data_per_acq * 1.0) / atom_words;
        std::printf("%-22u %14.1f %18.1f %15.2fx\n", words,
                    data_per_acq, double(end) / acquisitions, waste);
        if (words == sizes[0])
            first_waste = waste;
        last_waste = waste;
    }

    // Part 2: the paper's actual proposal — keep the big block (16
    // words) but store valid/dirty status with each *transfer unit*, so
    // a request moves only the needed unit plus the dirty units.
    std::printf("\nWith sub-block transfer units (block fixed at 16 "
                "words):\n");
    std::printf("%-22s %14s %18s\n", "unit size (words)", "data cycles",
                "cycles/acquire");
    double whole = 0, one_word = 0;
    const unsigned units[] = {0, 8, 4, 2, 1};    // 0 = whole block
    for (unsigned tw : units) {
        SystemConfig cfg;
        cfg.protocol = "bitar";
        cfg.numProcessors = 4;
        cfg.cache.geom.frames = 64;
        cfg.cache.geom.blockWords = 16;
        cfg.cache.geom.transferWords = tw;
        System sys(cfg);

        CriticalSectionParams p;
        p.iterations = 150;
        p.alg = LockAlg::CacheLock;
        p.numLocks = 1;
        p.wordsPerCs = 1;
        p.blockBytes = 16 * bytesPerWord;
        p.dataInLockBlock = true;
        for (unsigned i = 0; i < 4; ++i) {
            p.procId = i;
            sys.addProcessor(
                std::make_unique<CriticalSectionWorkload>(p));
        }
        sys.start();
        Tick end = sys.run(50'000'000);
        if (!sys.allDone() || sys.checker().violations() != 0)
            fatal("transfer-unit run failed at %u words", tw);
        double data_per_acq =
            sys.bus().dataTransferCycles.value() / 600.0;
        std::printf("%-22s %14.1f %18.1f\n",
                    tw == 0 ? "whole block" : csprintf("%u", tw).c_str(),
                    data_per_acq, double(end) / 600.0);
        if (tw == 0)
            whole = data_per_acq;
        if (tw == 1)
            one_word = data_per_acq;
    }

    bool shape_ok = last_waste > 3.0 * first_waste &&
                    one_word < whole / 3.0;
    std::printf("\n%s\n",
                shape_ok
                    ? "SECTION D.3 REPRODUCED: large transfer units "
                      "move many times the atom's words per access; "
                      "small transfer units (with per-unit status) "
                      "eliminate the internal-fragmentation waste."
                    : "SHAPE MISMATCH.");
    return shape_ok ? 0 : 1;
}
