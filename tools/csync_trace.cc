/**
 * @file
 * csync-trace — the trace front-end's toolbox:
 *
 *   csync-trace gen -o out.ctrace --kernel mix --threads 8 \
 *               --events 100000 --seed 1
 *   csync-trace info trace.ctrace
 *   csync-trace validate trace.ctrace
 *
 * gen renders a seeded synthetic pthread-style kernel into the
 * `.ctrace` format (byte-reproducible for a given parameter set);
 * info prints the header and thread table; validate streams every
 * event through the reader's integrity checks.
 *
 * Exit codes: 0 success / trace valid; 1 invalid trace; 2 usage or
 * I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "trace/gen.hh"
#include "trace/reader.hh"

using namespace csync;
using namespace csync::trace;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s gen -o FILE [options]   generate a synthetic "
        "trace\n"
        "       %s info FILE               print header and thread "
        "table\n"
        "       %s validate FILE           stream-check every event\n"
        "\n"
        "gen options:\n"
        "  -o, --out FILE       output trace file (required)\n"
        "  --kernel NAME        synthetic kernel (default mix)\n"
        "  --threads N          trace threads (default 4)\n"
        "  --events N           approximate total events (default "
        "10000)\n"
        "  --seed N             generation seed (default 1)\n"
        "  --chunk-events N     events per chunk (default 4096)\n"
        "  --list-kernels       list kernel names and exit\n",
        argv0, argv0, argv0);
    return 2;
}

int
cliError(const std::string &msg)
{
    std::fprintf(stderr, "csync-trace: %s\n", msg.c_str());
    return 2;
}

int
doGen(int argc, char **argv)
{
    GenParams p;
    std::string out_path;

    auto next_arg = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "csync-trace: %s needs a value\n",
                         flag);
            return nullptr;
        }
        return argv[++i];
    };

    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        const char *v = nullptr;
        if (a == "-o" || a == "--out") {
            if (!(v = next_arg(i, "--out")))
                return 2;
            out_path = v;
        } else if (a == "--kernel") {
            if (!(v = next_arg(i, "--kernel")))
                return 2;
            p.kernel = v;
        } else if (a == "--threads") {
            if (!(v = next_arg(i, "--threads")))
                return 2;
            p.threads = unsigned(std::strtoul(v, nullptr, 10));
        } else if (a == "--events") {
            if (!(v = next_arg(i, "--events")))
                return 2;
            p.events = std::strtoull(v, nullptr, 10);
        } else if (a == "--seed") {
            if (!(v = next_arg(i, "--seed")))
                return 2;
            p.seed = std::strtoull(v, nullptr, 10);
        } else if (a == "--chunk-events") {
            if (!(v = next_arg(i, "--chunk-events")))
                return 2;
            p.chunkEvents = unsigned(std::strtoul(v, nullptr, 10));
        } else if (a == "--list-kernels") {
            for (const auto &k : genKernelNames())
                std::printf("%s\n", k.c_str());
            return 0;
        } else {
            return cliError("unknown gen option " + a);
        }
    }
    if (out_path.empty())
        return cliError("gen needs an output file (-o FILE)");
    if (p.chunkEvents == 0)
        return cliError("--chunk-events must be nonzero");

    std::string err;
    if (!generateTrace(p, out_path, &err))
        return cliError(err);

    TraceReader r;
    if (!r.open(out_path, &err))
        return cliError("generated trace failed to open: " + err);
    std::printf("%s: kernel %s, %u threads, %llu events, seed %llu\n",
                out_path.c_str(), p.kernel.c_str(),
                r.header().numThreads,
                (unsigned long long)r.header().totalEvents,
                (unsigned long long)p.seed);
    return 0;
}

void
printFlags(std::uint32_t flags)
{
    std::printf("flags:       0x%x (%slocks, %sbarriers, %sdeps)\n",
                flags, (flags & kFlagHasLocks) ? "" : "no ",
                (flags & kFlagHasBarriers) ? "" : "no ",
                (flags & kFlagHasDeps) ? "" : "no ");
}

int
doInfo(const std::string &path)
{
    TraceReader r;
    std::string err;
    if (!r.open(path, &err)) {
        std::fprintf(stderr, "csync-trace: %s\n", err.c_str());
        return 1;
    }
    const TraceHeader &h = r.header();
    std::printf("trace:       %s\n", path.c_str());
    std::printf("version:     %u\n", h.version);
    std::printf("threads:     %u\n", h.numThreads);
    std::printf("events:      %llu\n",
                (unsigned long long)h.totalEvents);
    std::printf("chunks:      %u\n", h.chunkCount);
    printFlags(h.flags);
    for (unsigned t = 0; t < h.numThreads; ++t) {
        std::printf("  thread %-3u %llu events\n", t,
                    (unsigned long long)r.threadEvents(t));
    }
    return 0;
}

int
doValidate(const std::string &path)
{
    TraceReader r;
    std::string err;
    if (!r.open(path, &err)) {
        std::fprintf(stderr, "csync-trace: %s\n", err.c_str());
        return 1;
    }
    TraceStats stats;
    if (!r.validate(&err, &stats)) {
        std::fprintf(stderr, "csync-trace: %s\n", err.c_str());
        return 1;
    }
    std::printf("%s: valid, %llu events\n", path.c_str(),
                (unsigned long long)stats.total);
    for (unsigned k = 0; k < kNumEventKinds; ++k) {
        if (stats.byKind[k]) {
            std::printf("  %-8s %llu\n", eventKindName(EventKind(k)),
                        (unsigned long long)stats.byKind[k]);
        }
    }
    std::printf("  peak resident chunk bytes: %llu\n",
                (unsigned long long)r.maxResidentPayloadBytes());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h") {
        usage(argv[0]);
        return 0;
    }
    if (cmd == "gen")
        return doGen(argc, argv);
    if (cmd == "info" || cmd == "validate") {
        if (argc != 3)
            return cliError(cmd + " needs exactly one trace file");
        return cmd == "info" ? doInfo(argv[2]) : doValidate(argv[2]);
    }
    std::fprintf(stderr, "csync-trace: unknown command %s\n",
                 cmd.c_str());
    return usage(argv[0]);
}
