/**
 * @file
 * csync-sweep — the batch experiment driver.  Expands a declarative
 * sweep spec (JSON file and/or command-line axes) into a job grid, runs
 * it on a worker pool, writes one JSON document per campaign (plus
 * optional CSV), and implements the regression gate:
 *
 *   csync-sweep --protocols bitar,goodman --workloads random_sharing \
 *               --procs 2,4 --jobs 4 -o campaign.json
 *   csync-sweep --spec sweep.json -o new.json
 *   csync-sweep --compare old.json new.json --tolerance 0.5
 *
 * Campaigns stream every finished row to an append-only journal
 * (`<out>.journal.jsonl`, or --journal FILE), so an interrupted run —
 * Ctrl-C, OOM kill, power loss — can be picked up with `--resume` and
 * still produce a byte-identical campaign document.  `--shard i/N`
 * runs a deterministic slice of the grid and `csync-sweep merge`
 * reassembles shard journals into the one canonical campaign.
 *
 * Exit codes: 0 success / no drift; 1 drift or failed jobs; 2 usage or
 * I/O error; 3 interrupted (a resume invocation is printed).
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "coherence/protocol.hh"
#include "harness/campaign.hh"
#include "harness/campaign_io.hh"
#include "harness/compare.hh"
#include "harness/journal.hh"
#include "harness/runner_proc.hh"
#include "harness/sweep.hh"
#include "harness/workload_factory.hh"
#include "mem/arbitration.hh"

using namespace csync;
using namespace csync::harness;

namespace
{

/** Set by SIGINT/SIGTERM; workers drain instead of starting new jobs. */
std::atomic<bool> g_stop{false};

extern "C" void
onSignal(int)
{
    // Second signal: the user really means it — abandon the drain.
    if (g_stop.exchange(true))
        std::_Exit(130);
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s [options]                  run a campaign\n"
        "       %s --compare OLD NEW [opts]   diff two campaigns\n"
        "       %s merge J1 J2 ... -o OUT     merge shard journals\n"
        "       %s --list                     list axes values\n"
        "\n"
        "campaign options:\n"
        "  --spec FILE          sweep spec JSON (axes below override "
        "it)\n"
        "  --protocols A,B,...  protocol axis\n"
        "  --workloads A,B,...  workload axis\n"
        "  --topology A,B,...   topology axis (default single_bus)\n"
        "  --topology-spec F,.. declarative topology spec files; with\n"
        "                       no --topology they replace single_bus\n"
        "  --arbitration A,...  bus arbitration axis (default "
        "round_robin)\n"
        "  --procs N,M,...      processor-count axis (default 4)\n"
        "  --block-words N,...  block-size axis, bus words (default 4)\n"
        "  --frames N,...       cache-frames axis (default 128)\n"
        "  --seeds N,...        seed axis (default 1)\n"
        "  --fault-rates R,...  fault-injection rate axis (default 0)\n"
        "  --fault-seeds N,...  fault PRNG seed axis (default 1)\n"
        "  --fault-kinds A,...  fault kinds to inject (default: all)\n"
        "  --ops N              memory ops per processor (default "
        "2000)\n"
        "  --max-ticks N        per-job simulated-time budget\n"
        "  --jobs N             worker threads (default: all cores)\n"
        "  --sim-threads N      event-engine threads per job (default\n"
        "                       1 = the serial engine; >1 shards\n"
        "                       partitionable jobs by interconnect\n"
        "                       domain, results identical either way)\n"
        "  -o, --out FILE       campaign JSON output (default stdout)\n"
        "  --csv FILE           also export rows as CSV\n"
        "  --name NAME          campaign name in the manifest\n"
        "  -q, --quiet          no per-job progress on stderr\n"
        "\n"
        "resilience options:\n"
        "  --journal FILE       stream rows to FILE as they finish\n"
        "                       (default <out>.journal.jsonl; an\n"
        "                       explicit --journal is kept afterwards)\n"
        "  --resume FILE        continue an interrupted journal; the\n"
        "                       spec comes from its header, so axis\n"
        "                       flags cannot be combined with it\n"
        "  --shard I/N          run only this deterministic 1-of-N\n"
        "                       slice of the grid (see 'merge')\n"
        "  --wall-deadline MS   per-job wall-clock deadline (besides\n"
        "                       the simulated-time budget)\n"
        "  --retries N          retry wall_timeout/crashed jobs up to\n"
        "                       N extra times (default 0)\n"
        "  --retry-backoff MS   first retry delay, doubling each\n"
        "                       retry (default 100)\n"
        "  --isolate            run each job in a forked child, so a\n"
        "                       crashing simulation becomes a\n"
        "                       \"crashed\" row with its stderr tail\n"
        "\n"
        "compare options:\n"
        "  --tolerance PCT      allowed relative drift per stat "
        "(default 0)\n",
        argv0, argv0, argv0, argv0);
    return 2;
}

bool
splitList(const std::string &arg, std::vector<std::string> *out)
{
    out->clear();
    std::string cur;
    for (char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out->push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out->push_back(cur);
    return !out->empty();
}

template <typename T>
bool
splitNumbers(const std::string &arg, std::vector<T> *out)
{
    std::vector<std::string> parts;
    if (!splitList(arg, &parts))
        return false;
    out->clear();
    for (const auto &p : parts) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(p.c_str(), &end, 10);
        if (end != p.c_str() + p.size())
            return false;
        out->push_back(T(v));
    }
    return true;
}

/** Parse a comma list of doubles (sign allowed: validation happens in
 *  SweepSpec::expand so a negative rate is a usage error, exit 2). */
bool
splitDoubles(const std::string &arg, std::vector<double> *out)
{
    std::vector<std::string> parts;
    if (!splitList(arg, &parts))
        return false;
    out->clear();
    for (const auto &p : parts) {
        char *end = nullptr;
        double v = std::strtod(p.c_str(), &end);
        if (end != p.c_str() + p.size())
            return false;
        out->push_back(v);
    }
    return true;
}

int
cliError(const std::string &msg)
{
    std::fprintf(stderr, "csync-sweep: %s\n", msg.c_str());
    return 2;
}

int
doList()
{
    std::printf("protocols:");
    for (const auto &p : ProtocolRegistry::names())
        std::printf(" %s", p.c_str());
    std::printf("\nworkloads:");
    for (const auto &w : workloadNames())
        std::printf(" %s", w.c_str());
    std::printf("\ntopologies:");
    for (const auto &t : TopologyConfig::names())
        std::printf(" %s", t.c_str());
    std::printf("\narbitrations:");
    for (const auto &a : ArbitrationRegistry::names())
        std::printf(" %s", a.c_str());
    std::printf("\n");
    return 0;
}

int
doCompare(const std::string &old_path, const std::string &new_path,
          double tolerance_pct)
{
    auto load = [](const std::string &path, CampaignResult *out,
                   std::string *err) {
        std::string text;
        if (!readFile(path, &text, err))
            return false;
        Json doc = Json::parse(text, err);
        if (!err->empty()) {
            *err = path + ": " + *err;
            return false;
        }
        if (!campaignFromJson(doc, out, err)) {
            *err = path + ": " + *err;
            return false;
        }
        return true;
    };

    CampaignResult oldc, newc;
    std::string err;
    if (!load(old_path, &oldc, &err) || !load(new_path, &newc, &err))
        return cliError(err);

    CompareOptions opts;
    opts.tolerancePct = tolerance_pct;
    CompareReport rep = compareCampaigns(oldc, newc, opts);
    std::fputs(rep.text.c_str(), stdout);
    return rep.ok ? 0 : 1;
}

/** Write the finalized campaign (and optional CSV) where asked. */
int
emitCampaign(const CampaignResult &final, const std::string &out_path,
             const std::string &csv_path)
{
    std::string err;
    std::string doc = campaignToJson(final).dump(0) + "\n";
    if (out_path.empty()) {
        std::fputs(doc.c_str(), stdout);
    } else if (!writeFile(out_path, doc, &err)) {
        return cliError(err);
    }
    if (!csv_path.empty()) {
        std::ostringstream csv;
        campaignToCsv(final, csv);
        if (!writeFile(csv_path, csv.str(), &err))
            return cliError(err);
    }
    return final.failures() ? 1 : 0;
}

/**
 * `csync-sweep merge J1 J2 ... -o OUT`: join shard journals into the
 * one canonical campaign document.  Every journal must describe the
 * same campaign (same name, spec, and grid size); the merged grid must
 * be complete — a missing row means a shard was forgotten, and is an
 * error rather than a silently short campaign.
 */
int
doMerge(const std::vector<std::string> &paths,
        const std::string &out_path, const std::string &csv_path)
{
    if (paths.empty())
        return cliError("merge needs at least one journal file");

    JournalData first;
    std::string err;
    if (!loadJournal(paths[0], &first, &err))
        return cliError(err);
    std::string ref_spec = first.header.spec.dump(-1);
    std::map<std::string, JobResult> by_id = first.byId;

    for (std::size_t i = 1; i < paths.size(); ++i) {
        JournalData data;
        if (!loadJournal(paths[i], &data, &err))
            return cliError(err);
        if (data.header.name != first.header.name ||
            data.header.jobs != first.header.jobs ||
            data.header.spec.dump(-1) != ref_spec) {
            return cliError(csprintf(
                "%s describes a different campaign than %s "
                "(name/spec/grid mismatch)", paths[i].c_str(),
                paths[0].c_str()));
        }
        for (auto &kv : data.byId)
            by_id.emplace(kv.first, std::move(kv.second));
    }

    SweepSpec spec;
    if (!SweepSpec::fromJson(first.header.spec, &spec, &err))
        return cliError(paths[0] + ": spec: " + err);
    std::vector<JobSpec> grid;
    if (!spec.expand(&grid, &err))
        return cliError(paths[0] + ": spec: " + err);
    if (grid.size() != first.header.jobs) {
        return cliError(csprintf(
            "%s: header says %zu jobs but the spec expands to %zu "
            "(journal from a different build?)", paths[0].c_str(),
            first.header.jobs, grid.size()));
    }

    std::vector<std::string> missing;
    CampaignResult final = finalizeCampaign(first.header.name,
                                            first.header.spec, grid,
                                            by_id, &missing);
    if (!missing.empty()) {
        std::string sample;
        for (std::size_t i = 0; i < missing.size() && i < 4; ++i)
            sample += (i ? ", " : "") + missing[i];
        return cliError(csprintf(
            "%zu of %zu jobs have no journaled row (first: %s) — "
            "is a shard journal missing?", missing.size(), grid.size(),
            sample.c_str()));
    }
    return emitCampaign(final, out_path, csv_path);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::string(argv[1]) == "merge") {
        std::vector<std::string> journals;
        std::string out_path, csv_path;
        for (int i = 2; i < argc; ++i) {
            std::string a = argv[i];
            if (a == "-o" || a == "--out") {
                if (i + 1 >= argc)
                    return cliError("--out needs a value");
                out_path = argv[++i];
            } else if (a == "--csv") {
                if (i + 1 >= argc)
                    return cliError("--csv needs a value");
                csv_path = argv[++i];
            } else if (a == "--help" || a == "-h") {
                usage(argv[0]);
                return 0;
            } else if (!a.empty() && a[0] == '-') {
                return cliError("merge: unknown option " + a);
            } else {
                journals.push_back(a);
            }
        }
        return doMerge(journals, out_path, csv_path);
    }

    std::string spec_path, out_path, csv_path, name;
    std::string journal_path, resume_path, shard_text;
    std::string compare_old, compare_new;
    bool compare_mode = false, list_mode = false, quiet = false;
    bool isolate = false;
    double tolerance = 0.0;
    double wall_deadline = 0.0, retry_backoff = 100.0;
    unsigned jobs = 0, retries = 0;
    // Execution knob like --jobs, not a campaign axis: it never enters
    // job names, fingerprints, or the finalized document, so a resumed
    // or re-run campaign is byte-identical at any --sim-threads.
    unsigned sim_threads = 1;
    SweepSpec cli; // axes given on the command line
    bool have_protocols = false, have_workloads = false;
    bool have_traces = false, have_topos = false, have_arbs = false;
    bool have_topo_specs = false;
    bool have_procs = false, have_bw = false, have_frames = false;
    bool have_seeds = false, have_ops = false, have_ticks = false;
    bool have_frates = false, have_fseeds = false, have_fkinds = false;

    auto next_arg = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "csync-sweep: %s needs a value\n",
                         flag);
            return nullptr;
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        const char *v = nullptr;
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else if (a == "--list") {
            list_mode = true;
        } else if (a == "--compare") {
            if (i + 2 >= argc)
                return cliError("--compare needs OLD and NEW files");
            compare_mode = true;
            compare_old = argv[++i];
            compare_new = argv[++i];
        } else if (a == "--tolerance") {
            if (!(v = next_arg(i, "--tolerance")))
                return 2;
            tolerance = std::atof(v);
        } else if (a == "--spec") {
            if (!(v = next_arg(i, "--spec")))
                return 2;
            spec_path = v;
        } else if (a == "--protocols") {
            if (!(v = next_arg(i, "--protocols")))
                return 2;
            have_protocols = splitList(v, &cli.protocols);
        } else if (a == "--workloads") {
            if (!(v = next_arg(i, "--workloads")))
                return 2;
            have_workloads = splitList(v, &cli.workloads);
        } else if (a == "--trace") {
            if (!(v = next_arg(i, "--trace")))
                return 2;
            have_traces = splitList(v, &cli.traces);
            if (!have_traces)
                return cliError("--trace: empty list");
        } else if (a == "--topology") {
            if (!(v = next_arg(i, "--topology")))
                return 2;
            have_topos = splitList(v, &cli.topologies);
            if (!have_topos)
                return cliError("--topology: empty list");
        } else if (a == "--topology-spec") {
            if (!(v = next_arg(i, "--topology-spec")))
                return 2;
            have_topo_specs = splitList(v, &cli.topologySpecs);
            if (!have_topo_specs)
                return cliError("--topology-spec: empty list");
        } else if (a == "--arbitration") {
            if (!(v = next_arg(i, "--arbitration")))
                return 2;
            have_arbs = splitList(v, &cli.arbitrations);
            if (!have_arbs)
                return cliError("--arbitration: empty list");
        } else if (a == "--procs") {
            if (!(v = next_arg(i, "--procs")))
                return 2;
            have_procs = splitNumbers(v, &cli.processorCounts);
            if (!have_procs)
                return cliError("--procs: bad number list");
        } else if (a == "--block-words") {
            if (!(v = next_arg(i, "--block-words")))
                return 2;
            have_bw = splitNumbers(v, &cli.blockWords);
            if (!have_bw)
                return cliError("--block-words: bad number list");
        } else if (a == "--frames") {
            if (!(v = next_arg(i, "--frames")))
                return 2;
            have_frames = splitNumbers(v, &cli.frames);
            if (!have_frames)
                return cliError("--frames: bad number list");
        } else if (a == "--seeds") {
            if (!(v = next_arg(i, "--seeds")))
                return 2;
            have_seeds = splitNumbers(v, &cli.seeds);
            if (!have_seeds)
                return cliError("--seeds: bad number list");
        } else if (a == "--fault-rates") {
            if (!(v = next_arg(i, "--fault-rates")))
                return 2;
            have_frates = splitDoubles(v, &cli.faultRates);
            if (!have_frates)
                return cliError("--fault-rates: bad number list");
        } else if (a == "--fault-seeds") {
            if (!(v = next_arg(i, "--fault-seeds")))
                return 2;
            have_fseeds = splitNumbers(v, &cli.faultSeeds);
            if (!have_fseeds)
                return cliError("--fault-seeds: bad number list");
        } else if (a == "--fault-kinds") {
            if (!(v = next_arg(i, "--fault-kinds")))
                return 2;
            have_fkinds = splitList(v, &cli.faultKinds);
            if (!have_fkinds)
                return cliError("--fault-kinds: empty list");
        } else if (a == "--ops") {
            if (!(v = next_arg(i, "--ops")))
                return 2;
            cli.opsPerProcessor = std::strtoull(v, nullptr, 10);
            have_ops = true;
        } else if (a == "--max-ticks") {
            if (!(v = next_arg(i, "--max-ticks")))
                return 2;
            cli.maxTicks = std::strtoull(v, nullptr, 10);
            have_ticks = true;
        } else if (a == "--jobs") {
            if (!(v = next_arg(i, "--jobs")))
                return 2;
            jobs = unsigned(std::strtoul(v, nullptr, 10));
        } else if (a == "--sim-threads") {
            if (!(v = next_arg(i, "--sim-threads")))
                return 2;
            sim_threads = unsigned(std::strtoul(v, nullptr, 10));
            if (sim_threads == 0 ||
                sim_threads > SystemConfig::kMaxSimThreads) {
                return cliError(csprintf(
                    "--sim-threads: %u is outside 1..%u", sim_threads,
                    SystemConfig::kMaxSimThreads));
            }
        } else if (a == "-o" || a == "--out") {
            if (!(v = next_arg(i, "--out")))
                return 2;
            out_path = v;
        } else if (a == "--csv") {
            if (!(v = next_arg(i, "--csv")))
                return 2;
            csv_path = v;
        } else if (a == "--name") {
            if (!(v = next_arg(i, "--name")))
                return 2;
            name = v;
        } else if (a == "--journal") {
            if (!(v = next_arg(i, "--journal")))
                return 2;
            journal_path = v;
        } else if (a == "--resume") {
            if (!(v = next_arg(i, "--resume")))
                return 2;
            resume_path = v;
        } else if (a == "--shard") {
            if (!(v = next_arg(i, "--shard")))
                return 2;
            shard_text = v;
        } else if (a == "--wall-deadline") {
            if (!(v = next_arg(i, "--wall-deadline")))
                return 2;
            wall_deadline = std::atof(v);
        } else if (a == "--retries") {
            if (!(v = next_arg(i, "--retries")))
                return 2;
            retries = unsigned(std::strtoul(v, nullptr, 10));
        } else if (a == "--retry-backoff") {
            if (!(v = next_arg(i, "--retry-backoff")))
                return 2;
            retry_backoff = std::atof(v);
        } else if (a == "--isolate") {
            isolate = true;
        } else if (a == "-q" || a == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "csync-sweep: unknown option %s\n",
                         a.c_str());
            return usage(argv[0]);
        }
    }

    if (list_mode)
        return doList();
    if (compare_mode)
        return doCompare(compare_old, compare_new, tolerance);
    if (isolate && !childIsolationSupported())
        return cliError("--isolate is not supported on this platform");

    bool any_axis = have_protocols || have_workloads || have_traces ||
                    have_topos || have_topo_specs || have_arbs ||
                    have_procs || have_bw ||
                    have_frames || have_seeds || have_ops || have_ticks ||
                    have_frates || have_fseeds || have_fkinds;
    if (!resume_path.empty() &&
        (any_axis || !spec_path.empty() || !name.empty() ||
         !shard_text.empty() || !journal_path.empty())) {
        return cliError("--resume takes the campaign (spec, name, "
                        "shard, journal) from the journal header; it "
                        "cannot be combined with axis, --spec, --name, "
                        "--shard, or --journal flags");
    }

    // Assemble the spec and shard: from the resumed journal's header,
    // or from --spec plus command-line axis overrides.
    SweepSpec spec;
    Shard shard;
    JournalData resumed;
    std::string err;
    if (!resume_path.empty()) {
        if (!loadJournal(resume_path, &resumed, &err))
            return cliError(err);
        if (resumed.truncatedTail && !quiet) {
            std::fprintf(stderr, "csync-sweep: %s: dropped a torn "
                         "trailing line (interrupted mid-write)\n",
                         resume_path.c_str());
        }
        if (!SweepSpec::fromJson(resumed.header.spec, &spec, &err))
            return cliError(resume_path + ": spec: " + err);
        if (!resumed.header.shard.empty() &&
            !parseShard(resumed.header.shard, &shard, &err)) {
            return cliError(resume_path + ": " + err);
        }
        journal_path = resume_path;
    } else {
        if (!spec_path.empty()) {
            std::string text;
            if (!readFile(spec_path, &text, &err))
                return cliError(err);
            Json doc = Json::parse(text, &err);
            if (!err.empty())
                return cliError(spec_path + ": " + err);
            if (!SweepSpec::fromJson(doc, &spec, &err))
                return cliError(spec_path + ": " + err);
        }
        if (have_protocols)
            spec.protocols = cli.protocols;
        if (have_workloads)
            spec.workloads = cli.workloads;
        if (have_traces)
            spec.traces = cli.traces;
        if (have_topos)
            spec.topologies = cli.topologies;
        if (have_topo_specs) {
            spec.topologySpecs = cli.topologySpecs;
            // Same rule as the JSON axis: naming only spec files
            // replaces the (untouched) default single_bus entry
            // rather than adding to it.
            if (!have_topos &&
                spec.topologies ==
                    std::vector<std::string>{"single_bus"}) {
                spec.topologies.clear();
            }
        }
        if (have_arbs)
            spec.arbitrations = cli.arbitrations;
        if (have_procs)
            spec.processorCounts = cli.processorCounts;
        if (have_bw)
            spec.blockWords = cli.blockWords;
        if (have_frames)
            spec.frames = cli.frames;
        if (have_seeds)
            spec.seeds = cli.seeds;
        if (have_frates)
            spec.faultRates = cli.faultRates;
        if (have_fseeds)
            spec.faultSeeds = cli.faultSeeds;
        if (have_fkinds)
            spec.faultKinds = cli.faultKinds;
        if (have_ops)
            spec.opsPerProcessor = cli.opsPerProcessor;
        if (have_ticks)
            spec.maxTicks = cli.maxTicks;
        if (!name.empty())
            spec.name = name;
        if (!shard_text.empty() &&
            !parseShard(shard_text, &shard, &err)) {
            return cliError(err);
        }
    }
    if (spec.protocols.empty())
        return cliError("no protocol axis (--protocols or --spec); "
                        "try --list");
    if (spec.workloads.empty() && spec.traces.empty())
        return cliError("no workload or trace axis (--workloads, "
                        "--trace, or --spec); try --list");

    std::vector<JobSpec> full_grid;
    if (!spec.expand(&full_grid, &err))
        return cliError(err);
    // Applied after expansion: an execution knob, invisible to job
    // names, fingerprints, and the finalized document.
    for (auto &job : full_grid)
        job.config.simThreads = sim_threads;
    if (!resume_path.empty() &&
        full_grid.size() != resumed.header.jobs) {
        return cliError(csprintf(
            "%s: header says %zu jobs but the spec expands to %zu "
            "(journal from a different build?)", resume_path.c_str(),
            resumed.header.jobs, full_grid.size()));
    }

    // This invocation's slice of the grid, with each job's stable ID.
    std::vector<JobSpec> shard_grid;
    std::vector<std::string> shard_ids;
    for (const auto &job : full_grid) {
        std::string id = jobId(job);
        if (!shardContains(shard, id))
            continue;
        shard_grid.push_back(job);
        shard_ids.push_back(std::move(id));
    }

    // Rows already journaled stay as-is; only the rest run.
    std::map<std::string, JobResult> by_id = std::move(resumed.byId);
    std::vector<JobSpec> pending;
    std::map<std::string, std::string> id_by_name;
    for (std::size_t i = 0; i < shard_grid.size(); ++i) {
        if (by_id.count(shard_ids[i]))
            continue;
        pending.push_back(shard_grid[i]);
        id_by_name[shard_grid[i].name] = shard_ids[i];
    }

    // The journal: resumed in place, or created fresh (an explicit
    // --journal path survives the run; the auto-derived one is removed
    // once the campaign document is safely written).
    bool auto_journal = false;
    if (resume_path.empty() && journal_path.empty() &&
        !out_path.empty()) {
        journal_path = out_path + ".journal.jsonl";
        auto_journal = true;
    }
    JournalWriter journal;
    if (!journal_path.empty()) {
        JournalHeader header;
        header.name = spec.name;
        header.spec = resume_path.empty() ? spec.toJson()
                                          : resumed.header.spec;
        header.jobs = full_grid.size();
        header.shard = shard.whole() ? "" : shard.str();
        if (resume_path.empty() || resumed.truncatedTail) {
            // Fresh journal — or a torn one, rewritten from its valid
            // rows so the append point is a clean line boundary again.
            if (!journal.create(journal_path, header, &err))
                return cliError(err);
            for (const auto &kv : by_id) {
                if (!journal.add(kv.first, kv.second, &err))
                    return cliError(err);
            }
        } else if (!journal.append(journal_path, &err)) {
            return cliError(err);
        }
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    CampaignRunner::Options opts;
    opts.jobs = jobs;
    opts.wallDeadlineMs = wall_deadline;
    opts.maxRetries = retries;
    opts.retryBackoffMs = retry_backoff;
    opts.isolate = isolate;
    opts.stop = &g_stop;
    opts.onJobDone = [&](std::size_t done, std::size_t total,
                         const JobResult &row) {
        if (!quiet) {
            std::fprintf(stderr, "[%3zu/%zu] %-40s %-7s %10llu ticks "
                         "%8.1f ms\n", done, total, row.name.c_str(),
                         row.status.c_str(),
                         (unsigned long long)row.ticks, row.wallMs);
        }
        if (journal.isOpen() && row.status != "skipped") {
            std::string jerr;
            if (!journal.add(id_by_name[row.name], row, &jerr)) {
                std::fprintf(stderr, "csync-sweep: warning: %s\n",
                             jerr.c_str());
            }
        }
    };
    if (!quiet) {
        std::fprintf(stderr, "csync-sweep: %zu jobs to run (%zu of "
                     "%zu already journaled)\n", pending.size(),
                     shard_grid.size() - pending.size(),
                     shard_grid.size());
    }

    CampaignRunner runner;
    CampaignResult result = runner.run(pending, opts);
    for (auto &row : result.rows) {
        if (row.status != "skipped")
            by_id.emplace(id_by_name[row.name], std::move(row));
    }
    journal.close();

    if (result.interrupted || g_stop.load()) {
        std::fprintf(stderr, "csync-sweep: interrupted — %zu of %zu "
                     "rows journaled\n",
                     by_id.size(), shard_grid.size());
        if (!journal_path.empty()) {
            std::string resume_cmd = csprintf(
                "%s --resume %s", argv[0], journal_path.c_str());
            if (!out_path.empty())
                resume_cmd += " -o " + out_path;
            if (!csv_path.empty())
                resume_cmd += " --csv " + csv_path;
            std::fprintf(stderr, "csync-sweep: resume with: %s\n",
                         resume_cmd.c_str());
        } else {
            std::fprintf(stderr, "csync-sweep: no journal was kept "
                         "(pass -o or --journal to enable resume)\n");
        }
        return 3;
    }

    std::vector<std::string> missing;
    std::string final_name = resume_path.empty() ? spec.name
                                                 : resumed.header.name;
    Json final_spec = resume_path.empty() ? spec.toJson()
                                          : resumed.header.spec;
    CampaignResult final = finalizeCampaign(final_name, final_spec,
                                            shard_grid, by_id,
                                            &missing);
    if (!missing.empty()) {
        return cliError(csprintf(
            "%zu jobs finished without a row (first: %s)",
            missing.size(), missing[0].c_str()));
    }

    int rc = emitCampaign(final, out_path, csv_path);
    if (rc == 2)
        return rc;
    if (auto_journal)
        std::remove(journal_path.c_str());
    if (!quiet) {
        std::fprintf(stderr,
                     "csync-sweep: %zu jobs, %u failures, %u workers, "
                     "%.1f ms wall\n", final.rows.size(),
                     final.failures(), result.workers, result.wallMs);
    }
    return rc;
}
