/**
 * @file
 * csync-sweep — the batch experiment driver.  Expands a declarative
 * sweep spec (JSON file and/or command-line axes) into a job grid, runs
 * it on a worker pool, writes one JSON document per campaign (plus
 * optional CSV), and implements the regression gate:
 *
 *   csync-sweep --protocols bitar,goodman --workloads random_sharing \
 *               --procs 2,4 --jobs 4 -o campaign.json
 *   csync-sweep --spec sweep.json -o new.json
 *   csync-sweep --compare old.json new.json --tolerance 0.5
 *
 * Exit codes: 0 success / no drift; 1 drift or failed jobs; 2 usage or
 * I/O error.
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "coherence/protocol.hh"
#include "harness/campaign.hh"
#include "harness/campaign_io.hh"
#include "harness/compare.hh"
#include "harness/sweep.hh"
#include "harness/workload_factory.hh"

using namespace csync;
using namespace csync::harness;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s [options]                  run a campaign\n"
        "       %s --compare OLD NEW [opts]   diff two campaigns\n"
        "       %s --list                     list axes values\n"
        "\n"
        "campaign options:\n"
        "  --spec FILE          sweep spec JSON (axes below override "
        "it)\n"
        "  --protocols A,B,...  protocol axis\n"
        "  --workloads A,B,...  workload axis\n"
        "  --topology A,B,...   topology axis (default single_bus)\n"
        "  --procs N,M,...      processor-count axis (default 4)\n"
        "  --block-words N,...  block-size axis, bus words (default 4)\n"
        "  --frames N,...       cache-frames axis (default 128)\n"
        "  --seeds N,...        seed axis (default 1)\n"
        "  --fault-rates R,...  fault-injection rate axis (default 0)\n"
        "  --fault-seeds N,...  fault PRNG seed axis (default 1)\n"
        "  --fault-kinds A,...  fault kinds to inject (default: all)\n"
        "  --ops N              memory ops per processor (default "
        "2000)\n"
        "  --max-ticks N        per-job simulated-time budget\n"
        "  --jobs N             worker threads (default: all cores)\n"
        "  -o, --out FILE       campaign JSON output (default stdout)\n"
        "  --csv FILE           also export rows as CSV\n"
        "  --name NAME          campaign name in the manifest\n"
        "  -q, --quiet          no per-job progress on stderr\n"
        "\n"
        "compare options:\n"
        "  --tolerance PCT      allowed relative drift per stat "
        "(default 0)\n",
        argv0, argv0, argv0);
    return 2;
}

bool
splitList(const std::string &arg, std::vector<std::string> *out)
{
    out->clear();
    std::string cur;
    for (char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out->push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out->push_back(cur);
    return !out->empty();
}

template <typename T>
bool
splitNumbers(const std::string &arg, std::vector<T> *out)
{
    std::vector<std::string> parts;
    if (!splitList(arg, &parts))
        return false;
    out->clear();
    for (const auto &p : parts) {
        char *end = nullptr;
        unsigned long long v = std::strtoull(p.c_str(), &end, 10);
        if (end != p.c_str() + p.size())
            return false;
        out->push_back(T(v));
    }
    return true;
}

/** Parse a comma list of doubles (sign allowed: validation happens in
 *  SweepSpec::expand so a negative rate is a usage error, exit 2). */
bool
splitDoubles(const std::string &arg, std::vector<double> *out)
{
    std::vector<std::string> parts;
    if (!splitList(arg, &parts))
        return false;
    out->clear();
    for (const auto &p : parts) {
        char *end = nullptr;
        double v = std::strtod(p.c_str(), &end);
        if (end != p.c_str() + p.size())
            return false;
        out->push_back(v);
    }
    return true;
}

int
cliError(const std::string &msg)
{
    std::fprintf(stderr, "csync-sweep: %s\n", msg.c_str());
    return 2;
}

int
doList()
{
    std::printf("protocols:");
    for (const auto &p : ProtocolRegistry::names())
        std::printf(" %s", p.c_str());
    std::printf("\nworkloads:");
    for (const auto &w : workloadNames())
        std::printf(" %s", w.c_str());
    std::printf("\ntopologies:");
    for (const auto &t : TopologyConfig::names())
        std::printf(" %s", t.c_str());
    std::printf("\n");
    return 0;
}

int
doCompare(const std::string &old_path, const std::string &new_path,
          double tolerance_pct)
{
    auto load = [](const std::string &path, CampaignResult *out,
                   std::string *err) {
        std::string text;
        if (!readFile(path, &text, err))
            return false;
        Json doc = Json::parse(text, err);
        if (!err->empty()) {
            *err = path + ": " + *err;
            return false;
        }
        if (!campaignFromJson(doc, out, err)) {
            *err = path + ": " + *err;
            return false;
        }
        return true;
    };

    CampaignResult oldc, newc;
    std::string err;
    if (!load(old_path, &oldc, &err) || !load(new_path, &newc, &err))
        return cliError(err);

    CompareOptions opts;
    opts.tolerancePct = tolerance_pct;
    CompareReport rep = compareCampaigns(oldc, newc, opts);
    std::fputs(rep.text.c_str(), stdout);
    return rep.ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec_path, out_path, csv_path, name;
    std::string compare_old, compare_new;
    bool compare_mode = false, list_mode = false, quiet = false;
    double tolerance = 0.0;
    unsigned jobs = 0;
    SweepSpec cli; // axes given on the command line
    bool have_protocols = false, have_workloads = false;
    bool have_traces = false, have_topos = false;
    bool have_procs = false, have_bw = false, have_frames = false;
    bool have_seeds = false, have_ops = false, have_ticks = false;
    bool have_frates = false, have_fseeds = false, have_fkinds = false;

    auto next_arg = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "csync-sweep: %s needs a value\n",
                         flag);
            return nullptr;
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        const char *v = nullptr;
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else if (a == "--list") {
            list_mode = true;
        } else if (a == "--compare") {
            if (i + 2 >= argc)
                return cliError("--compare needs OLD and NEW files");
            compare_mode = true;
            compare_old = argv[++i];
            compare_new = argv[++i];
        } else if (a == "--tolerance") {
            if (!(v = next_arg(i, "--tolerance")))
                return 2;
            tolerance = std::atof(v);
        } else if (a == "--spec") {
            if (!(v = next_arg(i, "--spec")))
                return 2;
            spec_path = v;
        } else if (a == "--protocols") {
            if (!(v = next_arg(i, "--protocols")))
                return 2;
            have_protocols = splitList(v, &cli.protocols);
        } else if (a == "--workloads") {
            if (!(v = next_arg(i, "--workloads")))
                return 2;
            have_workloads = splitList(v, &cli.workloads);
        } else if (a == "--trace") {
            if (!(v = next_arg(i, "--trace")))
                return 2;
            have_traces = splitList(v, &cli.traces);
            if (!have_traces)
                return cliError("--trace: empty list");
        } else if (a == "--topology") {
            if (!(v = next_arg(i, "--topology")))
                return 2;
            have_topos = splitList(v, &cli.topologies);
            if (!have_topos)
                return cliError("--topology: empty list");
        } else if (a == "--procs") {
            if (!(v = next_arg(i, "--procs")))
                return 2;
            have_procs = splitNumbers(v, &cli.processorCounts);
            if (!have_procs)
                return cliError("--procs: bad number list");
        } else if (a == "--block-words") {
            if (!(v = next_arg(i, "--block-words")))
                return 2;
            have_bw = splitNumbers(v, &cli.blockWords);
            if (!have_bw)
                return cliError("--block-words: bad number list");
        } else if (a == "--frames") {
            if (!(v = next_arg(i, "--frames")))
                return 2;
            have_frames = splitNumbers(v, &cli.frames);
            if (!have_frames)
                return cliError("--frames: bad number list");
        } else if (a == "--seeds") {
            if (!(v = next_arg(i, "--seeds")))
                return 2;
            have_seeds = splitNumbers(v, &cli.seeds);
            if (!have_seeds)
                return cliError("--seeds: bad number list");
        } else if (a == "--fault-rates") {
            if (!(v = next_arg(i, "--fault-rates")))
                return 2;
            have_frates = splitDoubles(v, &cli.faultRates);
            if (!have_frates)
                return cliError("--fault-rates: bad number list");
        } else if (a == "--fault-seeds") {
            if (!(v = next_arg(i, "--fault-seeds")))
                return 2;
            have_fseeds = splitNumbers(v, &cli.faultSeeds);
            if (!have_fseeds)
                return cliError("--fault-seeds: bad number list");
        } else if (a == "--fault-kinds") {
            if (!(v = next_arg(i, "--fault-kinds")))
                return 2;
            have_fkinds = splitList(v, &cli.faultKinds);
            if (!have_fkinds)
                return cliError("--fault-kinds: empty list");
        } else if (a == "--ops") {
            if (!(v = next_arg(i, "--ops")))
                return 2;
            cli.opsPerProcessor = std::strtoull(v, nullptr, 10);
            have_ops = true;
        } else if (a == "--max-ticks") {
            if (!(v = next_arg(i, "--max-ticks")))
                return 2;
            cli.maxTicks = std::strtoull(v, nullptr, 10);
            have_ticks = true;
        } else if (a == "--jobs") {
            if (!(v = next_arg(i, "--jobs")))
                return 2;
            jobs = unsigned(std::strtoul(v, nullptr, 10));
        } else if (a == "-o" || a == "--out") {
            if (!(v = next_arg(i, "--out")))
                return 2;
            out_path = v;
        } else if (a == "--csv") {
            if (!(v = next_arg(i, "--csv")))
                return 2;
            csv_path = v;
        } else if (a == "--name") {
            if (!(v = next_arg(i, "--name")))
                return 2;
            name = v;
        } else if (a == "-q" || a == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "csync-sweep: unknown option %s\n",
                         a.c_str());
            return usage(argv[0]);
        }
    }

    if (list_mode)
        return doList();
    if (compare_mode)
        return doCompare(compare_old, compare_new, tolerance);

    // Assemble the spec: file first, command-line axes override.
    SweepSpec spec;
    std::string err;
    if (!spec_path.empty()) {
        std::string text;
        if (!readFile(spec_path, &text, &err))
            return cliError(err);
        Json doc = Json::parse(text, &err);
        if (!err.empty())
            return cliError(spec_path + ": " + err);
        if (!SweepSpec::fromJson(doc, &spec, &err))
            return cliError(spec_path + ": " + err);
    }
    if (have_protocols)
        spec.protocols = cli.protocols;
    if (have_workloads)
        spec.workloads = cli.workloads;
    if (have_traces)
        spec.traces = cli.traces;
    if (have_topos)
        spec.topologies = cli.topologies;
    if (have_procs)
        spec.processorCounts = cli.processorCounts;
    if (have_bw)
        spec.blockWords = cli.blockWords;
    if (have_frames)
        spec.frames = cli.frames;
    if (have_seeds)
        spec.seeds = cli.seeds;
    if (have_frates)
        spec.faultRates = cli.faultRates;
    if (have_fseeds)
        spec.faultSeeds = cli.faultSeeds;
    if (have_fkinds)
        spec.faultKinds = cli.faultKinds;
    if (have_ops)
        spec.opsPerProcessor = cli.opsPerProcessor;
    if (have_ticks)
        spec.maxTicks = cli.maxTicks;
    if (!name.empty())
        spec.name = name;
    if (spec.protocols.empty())
        return cliError("no protocol axis (--protocols or --spec); "
                        "try --list");
    if (spec.workloads.empty() && spec.traces.empty())
        return cliError("no workload or trace axis (--workloads, "
                        "--trace, or --spec); try --list");

    std::vector<JobSpec> grid;
    if (!spec.expand(&grid, &err))
        return cliError(err);

    CampaignRunner::Options opts;
    opts.jobs = jobs;
    if (!quiet) {
        opts.onJobDone = [](std::size_t done, std::size_t total,
                            const JobResult &row) {
            std::fprintf(stderr, "[%3zu/%zu] %-40s %-7s %10llu ticks "
                         "%8.1f ms\n", done, total, row.name.c_str(),
                         row.status.c_str(),
                         (unsigned long long)row.ticks, row.wallMs);
        };
        std::fprintf(stderr, "csync-sweep: %zu jobs\n", grid.size());
    }

    CampaignRunner runner;
    CampaignResult result = runner.run(grid, opts);
    result.name = spec.name;
    result.specJson = spec.toJson();

    std::string doc = campaignToJson(result).dump(0) + "\n";
    if (out_path.empty()) {
        std::fputs(doc.c_str(), stdout);
    } else if (!writeFile(out_path, doc, &err)) {
        return cliError(err);
    }
    if (!csv_path.empty()) {
        std::ostringstream csv;
        campaignToCsv(result, csv);
        if (!writeFile(csv_path, csv.str(), &err))
            return cliError(err);
    }
    if (!quiet) {
        std::fprintf(stderr,
                     "csync-sweep: %zu jobs, %u failures, %u workers, "
                     "%.1f ms wall\n", result.rows.size(),
                     result.failures(), result.workers, result.wallMs);
    }
    return result.failures() ? 1 : 0;
}
