/**
 * @file
 * csync-bench — the performance-trajectory driver.  Runs named workload
 * kernels (full simulations through the campaign engine, plus a pure-CPU
 * calibration kernel) under the steady-clock bench harness and writes a
 * schema-versioned BENCH document, or compares two such documents and
 * fails on regression:
 *
 *   csync-bench --quick -o BENCH_sim_core.json
 *   csync-bench --compare tests/golden/bench_baseline.json \
 *               --max-regress 25
 *
 * Exit codes: 0 success / within tolerance; 1 regression or failed
 * kernel; 2 usage or I/O error.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/campaign_io.hh"
#include "harness/sweep.hh"
#include "perf/bench_harness.hh"

using namespace csync;
using namespace csync::harness;
using namespace csync::perf;

namespace
{

/** One named bench kernel: a protocol/workload pair (or a captured
 *  trace to replay), or calibration. */
struct KernelSpec
{
    std::string name;
    std::string protocol; // empty for the calibration kernel
    std::string workload;
    unsigned procs = 8;
    std::string topology = "single_bus";
    std::string trace = ""; // .ctrace path; replaces the workload
    /** Event-engine threads (1 = the serial engine). */
    unsigned simThreads = 1;
    /** Flattened campaign stats to record on the kernel's document row
     *  (deterministic, so any repetition's values serve). */
    std::vector<std::string> recordStats = {};
};

/** The committed golden trace the replay kernels stream. */
std::string
goldenTrace()
{
    return std::string(CSYNC_GOLDEN_DIR) + "/mix_100k.ctrace";
}

/** "tests/golden/mix_100k.ctrace" -> "trace:mix_100k" (doc tag). */
std::string
traceTag(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    std::string stem =
        slash == std::string::npos ? path : path.substr(slash + 1);
    std::size_t dot = stem.rfind(".ctrace");
    if (dot != std::string::npos)
        stem.resize(dot);
    return "trace:" + stem;
}

/**
 * The standard kernel set.  Calibration comes first so both the emitted
 * document and the compare normalization always see it; the simulator
 * kernels cover the write-once scheme against the classic invalidate
 * and update protocols (and the adaptive hybrid, whose per-block
 * counters ride the hot path) on the contended workloads, plus the
 * Figure 11
 * two-interconnect Aquarius topology (the multi-switch hot path).  The
 * replay kernels stream the committed ~100k-event golden trace through
 * the trace front-end on both topology presets, so the long-horizon
 * replay path (chunk streaming + stall/wake multiplexing) is on the
 * performance trajectory too.  The domain_local pair runs the same
 * statically-partitionable two-switch job on the serial engine and on
 * the sharded parallel engine (@p mtThreads workers), so the parallel
 * speedup is a measured, gateable quantity (--min-speedup).  The
 * cluster_local trio runs the hierarchical machine: the filtered and
 * unfiltered clustered_4x2 kernels record root-bus transactions on
 * their document rows (the snoop filter's traffic reduction is a
 * committed number, not a claim), and the _mt variant shards the four
 * clusters across the parallel engine.
 */
std::vector<KernelSpec>
standardKernels(unsigned mtThreads)
{
    return {
        {kCalibrationKernel, "", "", 0},
        {"bitar_random_sharing", "bitar", "random_sharing", 8},
        {"bitar_critical_section", "bitar", "critical_section", 8},
        {"bitar_producer_consumer", "bitar", "producer_consumer", 8},
        {"goodman_random_sharing", "goodman", "random_sharing", 8},
        {"illinois_random_sharing", "illinois", "random_sharing", 8},
        {"dragon_random_sharing", "dragon", "random_sharing", 8},
        {"adaptive_du_random_sharing", "adaptive_du", "random_sharing",
         8},
        {"bitar_service_queue_two_switch", "bitar", "service_queue", 8,
         "two_switch"},
        {"bitar_replay_mix100k", "bitar", "", 8, "single_bus",
         goldenTrace()},
        {"bitar_replay_mix100k_two_switch", "bitar", "", 8, "two_switch",
         goldenTrace()},
        {"bitar_domain_local_two_switch", "bitar", "domain_local", 8,
         "two_switch"},
        {"bitar_domain_local_two_switch_mt", "bitar", "domain_local", 8,
         "two_switch", "", mtThreads},
        {"bitar_cluster_local_4x2", "bitar", "cluster_local", 8,
         "clustered_4x2", "", 1, {"system.root.transactions"}},
        {"bitar_cluster_local_4x2_nofilter", "bitar", "cluster_local", 8,
         "clustered_4x2_nofilter", "", 1, {"system.root.transactions"}},
        {"bitar_cluster_local_4x2_mt", "bitar", "cluster_local", 8,
         "clustered_4x2", "", mtThreads},
    };
}

/** The serial/parallel kernel pair the --min-speedup gate compares. */
const char *const kSpeedupSerial = "bitar_domain_local_two_switch";
const char *const kSpeedupParallel = "bitar_domain_local_two_switch_mt";

/**
 * Fixed amount of pure CPU work (xorshift64 spins) used to measure the
 * host machine's speed, so baselines recorded elsewhere compare as
 * ratios.  The state is returned through a volatile sink so the loop
 * cannot be optimized away.
 */
std::uint64_t
calibrationSpin()
{
    constexpr std::uint64_t iters = 20'000'000;
    std::uint64_t x = 0x9e3779b97f4a7c15ull;
    for (std::uint64_t i = 0; i < iters; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    volatile std::uint64_t sink = x;
    (void)sink;
    return iters;
}

/** Build the single-job grid for a simulator kernel. */
bool
makeJob(const KernelSpec &k, std::uint64_t ops, JobSpec *out,
        std::string *err)
{
    SweepSpec spec;
    spec.name = k.name;
    spec.protocols = {k.protocol};
    if (k.trace.empty())
        spec.workloads = {k.workload};
    else
        spec.traces = {k.trace};
    spec.topologies = {k.topology};
    spec.processorCounts = {k.procs};
    spec.opsPerProcessor = ops;
    std::vector<JobSpec> grid;
    if (!spec.expand(&grid, err))
        return false;
    if (grid.size() != 1) {
        *err = "kernel '" + k.name + "' expanded to " +
               std::to_string(grid.size()) + " jobs, expected 1";
        return false;
    }
    *out = grid[0];
    // Execution knob, applied after expansion so it never reaches job
    // names or document rows.
    out->config.simThreads = k.simThreads;
    return true;
}

int
cliError(const std::string &msg)
{
    std::fprintf(stderr, "csync-bench: %s\n", msg.c_str());
    return 2;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s [options]                    run the bench kernels\n"
        "       %s --compare OLD [NEW] [opts]   gate NEW against OLD\n"
        "       %s --list                       list kernels\n"
        "\n"
        "run options:\n"
        "  --quick              fast mode: 4000 ops/proc, 3 reps\n"
        "  --ops N              memory ops per processor (default "
        "20000)\n"
        "  --reps N             timed repetitions, median reported "
        "(default 5)\n"
        "  --warmup N           untimed warmup repetitions (default 1)\n"
        "  --kernels A,B,...    run only the named kernels\n"
        "  --sim-threads N      worker threads for the *_mt parallel "
        "kernel (default 4)\n"
        "  --min-speedup R      fail unless the parallel domain_local "
        "kernel runs\n"
        "                       >= R x the serial one (ops/sec ratio)\n"
        "  -o, --out FILE       bench JSON output (default "
        "BENCH_sim_core.json)\n"
        "  -q, --quiet          no per-kernel progress on stderr\n"
        "\n"
        "compare options (NEW omitted: run the kernels fresh first):\n"
        "  --max-regress PCT    allowed ops/sec regression per kernel "
        "(default 25)\n",
        argv0, argv0, argv0);
    return 2;
}

bool
splitList(const std::string &arg, std::vector<std::string> *out)
{
    out->clear();
    std::string cur;
    for (char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out->push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out->push_back(cur);
    return !out->empty();
}

bool
loadBench(const std::string &path, std::vector<KernelResult> *out,
          std::string *err)
{
    std::string text;
    if (!readFile(path, &text, err))
        return false;
    Json doc = Json::parse(text, err);
    if (!err->empty()) {
        *err = path + ": " + *err;
        return false;
    }
    if (!benchFromJson(doc, out, err)) {
        *err = path + ": " + *err;
        return false;
    }
    return true;
}

/**
 * Run the selected kernels.  @return false (with *err) on a bad kernel
 * name; a kernel whose simulation fails sets *failed instead, so the
 * caller exits 1 rather than 2.
 */
bool
runKernels(const std::vector<std::string> &only, std::uint64_t ops,
           const BenchOptions &opts, bool quiet, unsigned mtThreads,
           std::vector<KernelResult> *out, bool *failed,
           std::string *err)
{
    std::vector<KernelSpec> kernels;
    for (const auto &k : standardKernels(mtThreads)) {
        if (!only.empty()) {
            bool wanted = false;
            for (const auto &name : only)
                wanted = wanted || name == k.name;
            if (!wanted)
                continue;
        }
        kernels.push_back(k);
    }
    if (kernels.size() < (only.empty() ? 1u : only.size())) {
        *err = "unknown kernel in --kernels; try --list";
        return false;
    }

    BenchHarness harness;
    for (const auto &k : kernels) {
        KernelResult r;
        if (k.protocol.empty()) {
            r = harness.run(k.name, calibrationSpin, opts);
        } else {
            JobSpec job;
            if (!makeJob(k, ops, &job, err))
                return false;
            std::string job_err;
            std::map<std::string, double> recorded;
            r = harness.run(k.name,
                            [&job, &job_err, &k,
                             &recorded]() -> std::uint64_t {
                JobResult row = CampaignRunner::runJob(job);
                if (!row.ok())
                    job_err = row.status + ": " + row.error;
                for (const auto &stat : k.recordStats) {
                    auto it = row.stats.find(stat);
                    if (it != row.stats.end())
                        recorded[stat] = it->second;
                }
                return row.memOps;
            }, opts);
            r.stats = std::move(recorded);
            if (!job_err.empty()) {
                std::fprintf(stderr, "csync-bench: kernel '%s' failed "
                             "(%s)\n", k.name.c_str(), job_err.c_str());
                *failed = true;
                continue;
            }
            r.protocol = k.protocol;
            r.workload = k.trace.empty() ? k.workload
                                         : traceTag(k.trace);
            r.procs = k.procs;
        }
        if (!quiet) {
            std::fprintf(stderr, "%-28s %9.2f ms median  %12.3g ops/s  "
                         "%8.1f ns/op\n", r.name.c_str(), r.medianMs,
                         r.opsPerSec, r.nsPerOp);
        }
        out->push_back(std::move(r));
    }
    return true;
}

int
doList(unsigned mtThreads)
{
    for (const auto &k : standardKernels(mtThreads)) {
        if (k.protocol.empty()) {
            std::printf("%-28s (pure-CPU machine-speed reference)\n",
                        k.name.c_str());
        } else {
            std::string wl =
                k.trace.empty() ? k.workload : traceTag(k.trace);
            std::printf("%-32s %s / %s, %u procs%s%s%s\n",
                        k.name.c_str(), k.protocol.c_str(), wl.c_str(),
                        k.procs,
                        k.topology == "single_bus" ? "" : ", ",
                        k.topology == "single_bus" ? ""
                                                   : k.topology.c_str(),
                        k.simThreads > 1 ? " (parallel engine)" : "");
        }
    }
    return 0;
}

/**
 * The --min-speedup gate: parallel-vs-serial ops/sec ratio on the
 * domain_local two-switch pair.  Both kernels must be in @p results
 * (run without a --kernels filter, or with both named).
 */
int
checkSpeedup(const std::vector<KernelResult> &results, double minRatio,
             unsigned mtThreads)
{
    const KernelResult *serial = nullptr, *parallel = nullptr;
    for (const auto &r : results) {
        if (r.name == kSpeedupSerial)
            serial = &r;
        else if (r.name == kSpeedupParallel)
            parallel = &r;
    }
    if (!serial || !parallel) {
        std::fprintf(stderr, "csync-bench: --min-speedup needs both "
                     "'%s' and '%s' in the run\n", kSpeedupSerial,
                     kSpeedupParallel);
        return 2;
    }
    if (serial->opsPerSec <= 0) {
        std::fprintf(stderr, "csync-bench: --min-speedup: serial "
                     "kernel reported no throughput\n");
        return 1;
    }
    double ratio = parallel->opsPerSec / serial->opsPerSec;
    std::printf("speedup %s/%s = %.2fx at %u threads (min %.2fx) -> "
                "%s\n", kSpeedupParallel, kSpeedupSerial, ratio,
                mtThreads, minRatio, ratio >= minRatio ? "OK" : "FAIL");
    return ratio >= minRatio ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_sim_core.json";
    std::string compare_old, compare_new;
    std::vector<std::string> only;
    bool compare_mode = false, list_mode = false, quiet = false;
    bool quick = false;
    std::uint64_t ops = 20000;
    unsigned sim_threads = 4;
    double min_speedup = 0; // 0 = gate off
    bool have_ops = false, have_reps = false;
    BenchOptions opts;
    BenchCompareOptions cmp;

    auto next_arg = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "csync-bench: %s needs a value\n",
                         flag);
            return nullptr;
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        const char *v = nullptr;
        if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else if (a == "--list") {
            list_mode = true;
        } else if (a == "--quick") {
            quick = true;
        } else if (a == "--compare") {
            if (!(v = next_arg(i, "--compare")))
                return 2;
            compare_mode = true;
            compare_old = v;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                compare_new = argv[++i];
        } else if (a == "--max-regress") {
            if (!(v = next_arg(i, "--max-regress")))
                return 2;
            cmp.maxRegressPct = std::atof(v);
        } else if (a == "--ops") {
            if (!(v = next_arg(i, "--ops")))
                return 2;
            ops = std::strtoull(v, nullptr, 10);
            have_ops = true;
        } else if (a == "--reps") {
            if (!(v = next_arg(i, "--reps")))
                return 2;
            opts.reps = unsigned(std::strtoul(v, nullptr, 10));
            have_reps = true;
        } else if (a == "--warmup") {
            if (!(v = next_arg(i, "--warmup")))
                return 2;
            opts.warmup = unsigned(std::strtoul(v, nullptr, 10));
        } else if (a == "--kernels") {
            if (!(v = next_arg(i, "--kernels")))
                return 2;
            if (!splitList(v, &only))
                return cliError("--kernels: empty list");
        } else if (a == "--sim-threads") {
            if (!(v = next_arg(i, "--sim-threads")))
                return 2;
            unsigned long n = std::strtoul(v, nullptr, 10);
            if (n == 0 || n > SystemConfig::kMaxSimThreads)
                return cliError("--sim-threads must be in 1..64");
            sim_threads = unsigned(n);
        } else if (a == "--min-speedup") {
            if (!(v = next_arg(i, "--min-speedup")))
                return 2;
            min_speedup = std::atof(v);
            if (min_speedup <= 0)
                return cliError("--min-speedup must be > 0");
        } else if (a == "-o" || a == "--out") {
            if (!(v = next_arg(i, "--out")))
                return 2;
            out_path = v;
        } else if (a == "-q" || a == "--quiet") {
            quiet = true;
        } else {
            std::fprintf(stderr, "csync-bench: unknown option %s\n",
                         a.c_str());
            return usage(argv[0]);
        }
    }

    if (list_mode)
        return doList(sim_threads);

    if (quick) {
        if (!have_ops)
            ops = 4000;
        if (!have_reps)
            opts.reps = 3;
    }
    if (opts.reps == 0)
        return cliError("--reps must be >= 1");

    std::string err;

    if (compare_mode && !compare_new.empty()) {
        // Pure file-vs-file comparison: no kernels run.
        std::vector<KernelResult> oldr, newr;
        if (!loadBench(compare_old, &oldr, &err) ||
            !loadBench(compare_new, &newr, &err))
            return cliError(err);
        BenchCompareReport rep = compareBench(oldr, newr, cmp);
        std::fputs(rep.text.c_str(), stdout);
        return rep.ok ? 0 : 1;
    }

    std::vector<KernelResult> results;
    bool failed = false;
    if (!runKernels(only, ops, opts, quiet, sim_threads, &results,
                    &failed, &err))
        return cliError(err);

    Json doc = benchToJson(results, "sim_core",
                           quick ? "quick" : "full", opts);
    if (!compare_mode || !out_path.empty()) {
        if (!writeFile(out_path, doc.dump(0) + "\n", &err))
            return cliError(err);
        if (!quiet)
            std::fprintf(stderr, "csync-bench: wrote %s (%zu kernels)\n",
                         out_path.c_str(), results.size());
    }

    int speedup_rc = 0;
    if (min_speedup > 0) {
        speedup_rc = checkSpeedup(results, min_speedup, sim_threads);
        if (speedup_rc == 2)
            return 2;
    }

    if (compare_mode) {
        std::vector<KernelResult> baseline;
        if (!loadBench(compare_old, &baseline, &err))
            return cliError(err);
        BenchCompareReport rep = compareBench(baseline, results, cmp);
        std::fputs(rep.text.c_str(), stdout);
        return (rep.ok && !failed && speedup_rc == 0) ? 0 : 1;
    }
    return (failed || speedup_rc != 0) ? 1 : 0;
}
