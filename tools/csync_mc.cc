/**
 * @file
 * csync-mc — the model-checking driver.  Three subcommands:
 *
 *   csync-mc explore [--protocols A,B|all] [--bound smoke|deep] [...]
 *       exhaustively enumerate bounded interleavings per protocol,
 *       reporting a minimal replayable counterexample on violation;
 *   csync-mc fuzz [--seeds N] [--ops N] [...]
 *       differential trace fuzzing over protocol pairs and Bitar
 *       feature ablations;
 *   csync-mc replay FILE [-o FILE]
 *       re-run a dumped trace (a bare trace object, or any document
 *       with a "trace" member — explore counterexamples and fuzz
 *       mismatch entries replay directly) and print the verdict.
 *
 * All output is JSON in the same dialect as csync-sweep campaigns.
 * Exit codes: 0 clean, 1 violations or mismatches, 2 usage/I-O error.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/campaign_io.hh"
#include "mc/explorer.hh"
#include "mc/fuzzer.hh"
#include "sim/logging.hh"
#include "system/topology.hh"

using namespace csync;
using namespace csync::mc;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
        "usage: %s explore [options]    exhaustive interleaving search\n"
        "       %s fuzz [options]       differential trace fuzzing\n"
        "       %s replay FILE [-o F]   re-run a dumped trace\n"
        "\n"
        "explore options:\n"
        "  --protocols A,B,... | all   protocols to search (default:\n"
        "                              all shipped protocols)\n"
        "  --bound smoke|deep          preset bounds (default smoke:\n"
        "                              2 caches, 1 block, depth 4;\n"
        "                              deep: 3 caches, 2 blocks, 6)\n"
        "  --caches N / --blocks N / --depth N   override one bound\n"
        "  --no-locks / --no-evicts    drop op classes from the alphabet\n"
        "  --topology NAME             interconnect preset (default\n"
        "                              single_bus; clustered_2x1 puts\n"
        "                              the cluster snoop filters under\n"
        "                              the search)\n"
        "\n"
        "fuzz options:\n"
        "  --seeds N                   seeds per pair (default 64)\n"
        "  --ops N                     ops per trace (default 24)\n"
        "  --caches N / --blocks N     trace shape (default 2 / 2)\n"
        "\n"
        "common options:\n"
        "  -o, --out FILE              JSON output (default stdout)\n"
        "  -q, --quiet                 no progress on stderr\n"
        "\n"
        "exit codes: 0 clean, 1 violation/mismatch found, 2 usage/IO\n",
        argv0, argv0, argv0);
    return 2;
}

int
cliError(const std::string &msg)
{
    std::fprintf(stderr, "csync-mc: %s\n", msg.c_str());
    return 2;
}

bool
splitList(const std::string &arg, std::vector<std::string> *out)
{
    out->clear();
    std::string cur;
    for (char c : arg) {
        if (c == ',') {
            if (!cur.empty())
                out->push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out->push_back(cur);
    return !out->empty();
}

bool
parseUnsigned(const std::string &arg, unsigned *out)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(arg.c_str(), &end, 10);
    if (end != arg.c_str() + arg.size() || arg.empty())
        return false;
    *out = unsigned(v);
    return true;
}

int
emit(const harness::Json &doc, const std::string &out_path)
{
    std::string text = doc.dump(0) + "\n";
    if (out_path.empty()) {
        std::fputs(text.c_str(), stdout);
        return 0;
    }
    std::string err;
    if (!harness::writeFile(out_path, text, &err))
        return cliError(err);
    return 0;
}

harness::Json
boundsToJson(const ExploreBounds &b)
{
    harness::Json j = harness::Json::object();
    j.set("caches", b.caches);
    j.set("blocks", b.blocks);
    j.set("depth", b.depth);
    j.set("lock_ops", b.lockOps);
    j.set("evict_ops", b.evictOps);
    // Rides along only when non-default, keeping the committed golden
    // mc output byte-identical.
    if (b.topology != "single_bus")
        j.set("topology", b.topology);
    return j;
}

int
doExplore(const std::vector<std::string> &args)
{
    ExploreBounds bounds = ExploreBounds::smoke();
    std::vector<std::string> protocols;
    std::string out_path;
    bool quiet = false;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto value = [&]() -> const std::string * {
            return i + 1 < args.size() ? &args[++i] : nullptr;
        };
        const std::string *v;
        if (a == "--protocols") {
            if (!(v = value()) || !splitList(*v, &protocols))
                return cliError("--protocols needs a comma list");
        } else if (a == "--bound") {
            if (!(v = value()))
                return cliError("--bound needs smoke|deep");
            if (*v == "smoke")
                bounds = ExploreBounds::smoke();
            else if (*v == "deep")
                bounds = ExploreBounds::deep();
            else
                return cliError("unknown bound '" + *v + "'");
        } else if (a == "--caches") {
            if (!(v = value()) || !parseUnsigned(*v, &bounds.caches))
                return cliError("--caches needs a number");
        } else if (a == "--blocks") {
            if (!(v = value()) || !parseUnsigned(*v, &bounds.blocks))
                return cliError("--blocks needs a number");
        } else if (a == "--depth") {
            if (!(v = value()) || !parseUnsigned(*v, &bounds.depth))
                return cliError("--depth needs a number");
        } else if (a == "--no-locks") {
            bounds.lockOps = false;
        } else if (a == "--no-evicts") {
            bounds.evictOps = false;
        } else if (a == "--topology") {
            if (!(v = value()))
                return cliError("--topology needs a preset name");
            TopologyConfig dummy;
            if (!TopologyConfig::fromName(*v, &dummy)) {
                std::string names;
                for (const auto &n : TopologyConfig::names())
                    names += (names.empty() ? "" : ", ") + n;
                return cliError("unknown topology '" + *v +
                                "' (known: " + names + ")");
            }
            bounds.topology = *v;
        } else if (a == "-o" || a == "--out") {
            if (!(v = value()))
                return cliError("-o needs a path");
            out_path = *v;
        } else if (a == "-q" || a == "--quiet") {
            quiet = true;
        } else {
            return cliError("unknown explore option '" + a + "'");
        }
    }
    if (protocols.empty() ||
        (protocols.size() == 1 && protocols[0] == "all")) {
        protocols = StateExplorer::shippedProtocols();
    }
    if (bounds.caches == 0 || bounds.blocks == 0 || bounds.depth == 0)
        return cliError("bounds must be nonzero");

    harness::Json results = harness::Json::array();
    unsigned violations = 0;
    for (const std::string &proto : protocols) {
        ExploreResult res;
        try {
            ScopedFatalThrow guard;
            StateExplorer explorer(bounds);
            res = explorer.explore(proto);
        } catch (const FatalError &e) {
            return cliError(e.what());
        }
        harness::Json row = harness::Json::object();
        row.set("protocol", res.protocol);
        row.set("clean", res.clean());
        row.set("states_visited", res.statesVisited);
        row.set("states_deduped", res.statesDeduped);
        if (res.violationFound) {
            ++violations;
            row.set("violation", res.violation);
            row.set("counterexample", traceToJson(res.counterexample));
            row.set("counterexample_verdict",
                    verdictToJson(res.counterexampleVerdict));
        }
        if (!quiet) {
            std::fprintf(stderr,
                         "csync-mc: explore %-16s %-9s %8llu states "
                         "(%llu deduped)\n",
                         res.protocol.c_str(),
                         res.clean() ? "clean" : "VIOLATION",
                         (unsigned long long)res.statesVisited,
                         (unsigned long long)res.statesDeduped);
        }
        results.push(std::move(row));
    }

    harness::Json doc = harness::Json::object();
    doc.set("csync_mc", 1);
    doc.set("mode", "explore");
    doc.set("bound", boundsToJson(bounds));
    doc.set("results", std::move(results));
    int rc = emit(doc, out_path);
    if (rc)
        return rc;
    return violations ? 1 : 0;
}

int
doFuzz(const std::vector<std::string> &args)
{
    unsigned seeds = 64;
    DifferentialFuzzer::Options opts;
    std::string out_path;
    bool quiet = false;

    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        auto value = [&]() -> const std::string * {
            return i + 1 < args.size() ? &args[++i] : nullptr;
        };
        const std::string *v;
        if (a == "--seeds") {
            if (!(v = value()) || !parseUnsigned(*v, &seeds) || !seeds)
                return cliError("--seeds needs a nonzero number");
        } else if (a == "--ops") {
            if (!(v = value()) || !parseUnsigned(*v, &opts.ops) ||
                !opts.ops) {
                return cliError("--ops needs a nonzero number");
            }
        } else if (a == "--caches") {
            if (!(v = value()) || !parseUnsigned(*v, &opts.caches) ||
                !opts.caches) {
                return cliError("--caches needs a nonzero number");
            }
        } else if (a == "--blocks") {
            if (!(v = value()) || !parseUnsigned(*v, &opts.blocks) ||
                !opts.blocks) {
                return cliError("--blocks needs a nonzero number");
            }
        } else if (a == "-o" || a == "--out") {
            if (!(v = value()))
                return cliError("-o needs a path");
            out_path = *v;
        } else if (a == "-q" || a == "--quiet") {
            quiet = true;
        } else {
            return cliError("unknown fuzz option '" + a + "'");
        }
    }

    DifferentialFuzzer fuzzer(opts);
    std::vector<FuzzPair> pairs = DifferentialFuzzer::defaultPairs();
    harness::Json mismatches = harness::Json::array();
    std::uint64_t reports = 0;
    std::uint64_t divergences = 0;
    unsigned bad = 0;

    for (const FuzzPair &pair : pairs) {
        for (unsigned s = 1; s <= seeds; ++s) {
            FuzzReport rep;
            try {
                ScopedFatalThrow guard;
                rep = fuzzer.runPair(s, pair);
            } catch (const FatalError &e) {
                return cliError(e.what());
            }
            ++reports;
            divergences += rep.diverged ? 1 : 0;
            if (rep.mismatch) {
                ++bad;
                harness::Json row = harness::Json::object();
                row.set("seed", rep.seed);
                row.set("pair", pair.label());
                row.set("detail", rep.detail);
                row.set("verdict_a", verdictToJson(rep.verdictA));
                row.set("verdict_b", verdictToJson(rep.verdictB));
                row.set("trace", traceToJson(rep.trace));
                mismatches.push(std::move(row));
            }
        }
        if (!quiet) {
            std::fprintf(stderr, "csync-mc: fuzz %-40s %u seeds\n",
                         pair.label().c_str(), seeds);
        }
    }

    harness::Json doc = harness::Json::object();
    doc.set("csync_mc", 1);
    doc.set("mode", "fuzz");
    doc.set("seeds", seeds);
    doc.set("ops", opts.ops);
    doc.set("caches", opts.caches);
    doc.set("blocks", opts.blocks);
    doc.set("reports", reports);
    doc.set("expected_divergences", divergences);
    doc.set("mismatches", std::move(mismatches));
    int rc = emit(doc, out_path);
    if (rc)
        return rc;
    if (!quiet) {
        std::fprintf(stderr,
                     "csync-mc: %llu diffs, %u mismatches, "
                     "%llu expected divergences\n",
                     (unsigned long long)reports, bad,
                     (unsigned long long)divergences);
    }
    return bad ? 1 : 0;
}

int
doReplay(const std::vector<std::string> &args)
{
    std::string in_path;
    std::string out_path;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &a = args[i];
        if (a == "-o" || a == "--out") {
            if (i + 1 >= args.size())
                return cliError("-o needs a path");
            out_path = args[++i];
        } else if (!a.empty() && a[0] == '-') {
            return cliError("unknown replay option '" + a + "'");
        } else if (in_path.empty()) {
            in_path = a;
        } else {
            return cliError("replay takes one trace file");
        }
    }
    if (in_path.empty())
        return cliError("replay needs a trace file");

    std::string text, err;
    if (!harness::readFile(in_path, &text, &err))
        return cliError(err);
    harness::Json doc = harness::Json::parse(text, &err);
    if (!err.empty())
        return cliError(in_path + ": " + err);
    // Accept a bare trace, a replay/fuzz doc with a "trace" member, an
    // explore doc (first counterexample), or a fuzz doc (first
    // mismatch) — so any csync-mc output replays directly.
    const harness::Json *tj = &doc;
    if (doc.has("trace")) {
        tj = &doc["trace"];
    } else if (doc.has("results") && doc["results"].isArray()) {
        for (std::size_t i = 0; i < doc["results"].size(); ++i) {
            const harness::Json &row = doc["results"].at(i);
            if (row.has("counterexample")) {
                tj = &row["counterexample"];
                break;
            }
        }
    } else if (doc.has("mismatches") && doc["mismatches"].isArray() &&
               doc["mismatches"].size() > 0 &&
               doc["mismatches"].at(0).has("trace")) {
        tj = &doc["mismatches"].at(0)["trace"];
    }
    DirectedTrace trace;
    if (!traceFromJson(*tj, &trace, &err))
        return cliError(in_path + ": " + err);

    ReplayVerdict v;
    try {
        ScopedFatalThrow guard;
        v = replayTrace(trace);
    } catch (const FatalError &e) {
        return cliError(e.what());
    }

    harness::Json out = harness::Json::object();
    out.set("csync_mc", 1);
    out.set("mode", "replay");
    out.set("trace", traceToJson(trace));
    out.set("result", verdictToJson(v));
    int rc = emit(out, out_path);
    if (rc)
        return rc;
    return v.clean() ? 0 : 1;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (cmd == "explore")
        return doExplore(args);
    if (cmd == "fuzz")
        return doFuzz(args);
    if (cmd == "replay")
        return doReplay(args);
    return usage(argv[0]);
}
