/**
 * @file
 * The busy-wait register (Section E.4).  When a cache's lock request is
 * answered "locked", it records the block address here and makes no
 * further bus requests for it.  The register then:
 *
 *  - recognizes the unlock broadcast for its address and joins the next
 *    bus arbitration at the dedicated high priority;
 *  - if it wins, fetches the block with lock privilege and interrupts its
 *    processor (Figure 9);
 *  - if it loses (it snoops another ReadLock for the address), it makes
 *    no attempt to fetch the block again and re-arms for the next unlock
 *    broadcast.
 *
 * The register is its own bus client — dedicated hardware in the paper —
 * so a cache can keep servicing its processor ("work while waiting")
 * while the register waits.
 */

#ifndef CSYNC_CORE_BUSY_WAIT_HH
#define CSYNC_CORE_BUSY_WAIT_HH

#include "mem/interconnect.hh"
#include "sim/sim_object.hh"

namespace csync
{

class Cache;

/**
 * One busy-wait register attached to a cache.
 */
class BusyWaitRegister : public SimObject, public BusClient
{
  public:
    /**
     * @param name Instance name.
     * @param eq Event queue.
     * @param cache Owning cache.
     * @param id Bus node id of the register (distinct from the cache's).
     * @param bus The interconnect the owning cache port posts to.
     */
    BusyWaitRegister(std::string name, EventQueue *eq, Cache *cache,
                     NodeId id, Interconnect *bus);

    /** Record @p block_addr and start waiting. */
    void arm(Addr block_addr);

    /** Stop waiting (lock acquired or abandoned). */
    void disarm();

    bool armed() const { return armed_; }
    Addr blockAddr() const { return blockAddr_; }

    /** @name BusClient interface */
    /// @{
    NodeId nodeId() const override { return id_; }
    bool busGrant(BusMsg &msg) override;
    SnoopReply snoop(const BusMsg &msg) override;
    void busComplete(const BusMsg &msg, const SnoopResult &res) override;
    /// @}

  private:
    Cache *cache_;
    NodeId id_;
    Interconnect *bus_;
    bool armed_ = false;
    Addr blockAddr_ = 0;
};

} // namespace csync

#endif // CSYNC_CORE_BUSY_WAIT_HH
