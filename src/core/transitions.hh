/**
 * @file
 * Figure 10 reproduction: enumerate the cache-state transitions of a
 * protocol by driving live mini-systems through every meaningful
 * (state × processor-request × other-cache-status) and
 * (state × snooped-bus-request) combination and recording what actually
 * happened.  The arc labels follow the figure: "ProcRequest : BusRequest
 * : StatusInOtherCache" for processor-induced arcs and "BusRequest" for
 * bus-induced arcs.
 */

#ifndef CSYNC_CORE_TRANSITIONS_HH
#define CSYNC_CORE_TRANSITIONS_HH

#include <string>
#include <vector>

#include "cache/block_state.hh"

namespace csync
{

/** One observed transition arc. */
struct Transition
{
    /** Starting state of the observed cache. */
    State from = Inv;
    /** Resulting state. */
    State to = Inv;
    /** Arc label ("Read : ReadShared : Invalid" or "ReadLock"). */
    std::string label;
    /** True for processor-induced arcs, false for snooped (bus) arcs. */
    bool processorSide = true;
    /** Extra notes ("busy wait begins", "unlock broadcast", ...). */
    std::string note;
};

/** Other-cache status dimension for processor-side arcs. */
enum class OtherStatus
{
    None,          // block in no other cache
    ReadSource,    // read copy with source status in another cache
    ReadNoSource,  // read copy, but no source cache exists (Figure 2)
    DirtyCopy,     // dirty write copy in another cache
    Locked,        // locked in another cache
};

/** Human-readable name. */
const char *otherStatusName(OtherStatus s);

/**
 * Enumerate processor- and bus-induced transitions of @p protocol.
 * Works for any registered protocol; the Figure 10 bench uses "bitar".
 */
std::vector<Transition> enumerateTransitions(const std::string &protocol);

/** Render the transition list as a Figure 10-style table. */
std::string renderTransitions(const std::vector<Transition> &arcs,
                              const std::string &protocol);

} // namespace csync

#endif // CSYNC_CORE_TRANSITIONS_HH
