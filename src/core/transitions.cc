#include "core/transitions.hh"

#include <set>
#include <sstream>

#include "system/scenario.hh"

namespace csync
{

const char *
otherStatusName(OtherStatus s)
{
    switch (s) {
      case OtherStatus::None: return "I";
      case OtherStatus::ReadSource: return "R(src)";
      case OtherStatus::ReadNoSource: return "R(no-src)";
      case OtherStatus::DirtyCopy: return "W.D";
      case OtherStatus::Locked: return "Lock";
      default: return "?";
    }
}

namespace
{

constexpr Addr X = 0x1000;

Scenario::Options
enumOpts(const std::string &protocol)
{
    Scenario::Options o;
    o.protocol = protocol;
    o.processors = 2;
    o.collectTrace = false;
    o.enableChecker = false;
    return o;
}

void
installOther(Scenario &s, OtherStatus other)
{
    switch (other) {
      case OtherStatus::None:
        return;
      case OtherStatus::ReadSource:
        s.cache(1).installFrameForTest(X, RdSrcCln);
        return;
      case OtherStatus::ReadNoSource:
        s.cache(1).installFrameForTest(X, Rd);
        return;
      case OtherStatus::DirtyCopy:
        s.cache(1).installFrameForTest(X, WrSrcDty);
        return;
      case OtherStatus::Locked:
        s.cache(1).installFrameForTest(X, LkSrcDty);
        return;
    }
}

/** Is (from, other) a reachable configuration? */
bool
configValid(State from, OtherStatus other)
{
    if (isValid(from)) {
        // A writable/locked copy excludes all other copies; any valid
        // copy excludes a dirty or locked copy elsewhere.
        if (canWrite(from))
            return other == OtherStatus::None;
        if (other == OtherStatus::DirtyCopy ||
            other == OtherStatus::Locked) {
            return false;
        }
        // Two sources cannot coexist.
        if (isSource(from) && other == OtherStatus::ReadSource)
            return false;
    }
    return true;
}

/** Which bus requests ran between two snapshots, as "a+b". */
std::string
busReqsUsed(Bus &bus, const std::vector<double> &before)
{
    std::string out;
    for (unsigned i = 0; i < kNumBusReqs; ++i) {
        double delta = bus.typeCount(BusReq(i)) - before[i];
        for (int k = 0; k < int(delta); ++k) {
            if (!out.empty())
                out += "+";
            out += busReqName(BusReq(i));
        }
    }
    return out.empty() ? "-" : out;
}

std::vector<double>
snapshot(Bus &bus)
{
    std::vector<double> v;
    for (unsigned i = 0; i < kNumBusReqs; ++i)
        v.push_back(bus.typeCount(BusReq(i)));
    return v;
}

MemOp
opFor(OpType t)
{
    MemOp op;
    op.type = t;
    op.addr = X;
    op.value = 0;
    return op;
}

} // anonymous namespace

std::vector<Transition>
enumerateTransitions(const std::string &protocol)
{
    std::vector<Transition> arcs;
    std::set<std::string> seen;
    auto proto = makeProtocol(protocol);
    std::vector<State> states = proto->statesUsed();
    bool locks = proto->supportsLockOps();

    auto record = [&](Transition t) {
        std::string key = csprintf("%d|%d|%d|%s", int(t.from), int(t.to),
                                   int(t.processorSide), t.label.c_str());
        if (seen.insert(key).second)
            arcs.push_back(std::move(t));
    };

    // Processor-induced arcs.
    std::vector<OpType> ops = {OpType::Read, OpType::Write,
                               OpType::WriteNoFetch};
    if (proto->features().atomicRmw || locks)
        ops.push_back(OpType::Rmw);
    if (locks) {
        ops.push_back(OpType::LockRead);
        ops.push_back(OpType::UnlockWrite);
    }
    std::vector<OtherStatus> others = {
        OtherStatus::None, OtherStatus::ReadSource,
        OtherStatus::ReadNoSource, OtherStatus::DirtyCopy,
        OtherStatus::Locked};

    for (State from : states) {
        for (OpType t : ops) {
            // Skip program errors.
            if (t == OpType::UnlockWrite && !isLocked(from))
                continue;
            if (t == OpType::LockRead && isLocked(from))
                continue;
            for (OtherStatus other : others) {
                if (!configValid(from, other))
                    continue;
                if (other == OtherStatus::Locked && from != Inv)
                    continue;

                Scenario s(enumOpts(protocol));
                if (from != Inv)
                    s.cache(0).installFrameForTest(X, from);
                installOther(s, other);

                auto before = snapshot(s.system().bus());
                bool done = s.tryRun(0, opFor(t));
                Transition tr;
                tr.from = from;
                tr.to = s.state(0, X);
                tr.processorSide = true;
                tr.label = csprintf(
                    "%s : %s : %s", opTypeName(t),
                    busReqsUsed(s.system().bus(), before).c_str(),
                    otherStatusName(other));
                if (!done) {
                    tr.note = "denied; busy wait begins (Fig. 7)";
                    if (hasWaiter(s.state(1, X)))
                        tr.note += "; waiter recorded in locker";
                } else if (other == OtherStatus::Locked) {
                    tr.note = "lock was held; completed via busy-wait "
                              "hand-off";
                }
                record(std::move(tr));
            }
        }
    }

    // Bus-induced (snooped) arcs: cache 1 acts, cache 0 snoops.
    struct Stim
    {
        OpType t;
        State otherStart;    // cache 1's starting state
        const char *desc;
    };
    std::vector<Stim> stims = {
        {OpType::Read, Inv, "read miss elsewhere"},
        {OpType::Write, Inv, "write miss elsewhere"},
        {OpType::Write, Rd, "write hit (read copy) elsewhere"},
    };
    if (proto->features().atomicRmw || locks)
        stims.push_back({OpType::Rmw, Inv, "atomic RMW elsewhere"});
    if (locks)
        stims.push_back({OpType::LockRead, Inv, "lock request elsewhere"});

    for (State from : states) {
        if (!isValid(from))
            continue;
        for (const auto &st : stims) {
            // cache1 holding a read copy is only consistent if cache0
            // does not hold the block exclusively.
            if (st.otherStart != Inv && canWrite(from))
                continue;

            Scenario s(enumOpts(protocol));
            s.cache(0).installFrameForTest(X, from);
            if (st.otherStart != Inv)
                s.cache(1).installFrameForTest(X, st.otherStart);

            auto before = snapshot(s.system().bus());
            bool done = s.tryRun(1, opFor(st.t));
            Transition tr;
            tr.from = from;
            tr.to = s.state(0, X);
            tr.processorSide = false;
            tr.label = busReqsUsed(s.system().bus(), before);
            tr.note = st.desc;
            if (!done)
                tr.note += "; requester busy waits";
            record(std::move(tr));
        }
    }
    return arcs;
}

std::string
renderTransitions(const std::vector<Transition> &arcs,
                  const std::string &protocol)
{
    std::ostringstream os;
    os << "Figure 10. Cache state transitions (" << protocol << ")\n";
    os << "Arc label fields: Processor Request : Bus Request(s) : Status "
          "in Other Cache.\n\n";

    os << "Processor-induced arcs:\n";
    for (const auto &t : arcs) {
        if (!t.processorSide)
            continue;
        os << csprintf("  %-22s -> %-22s  [%s]%s%s\n",
                       stateName(t.from).c_str(), stateName(t.to).c_str(),
                       t.label.c_str(), t.note.empty() ? "" : "  -- ",
                       t.note.c_str());
    }
    os << "\nBus-induced (snooped) arcs:\n";
    for (const auto &t : arcs) {
        if (t.processorSide)
            continue;
        os << csprintf("  %-22s -> %-22s  [%s]%s%s\n",
                       stateName(t.from).c_str(), stateName(t.to).c_str(),
                       t.label.c_str(), t.note.empty() ? "" : "  -- ",
                       t.note.c_str());
    }
    return os.str();
}

} // namespace csync
