#include "core/feature_audit.hh"

#include <sstream>

#include "proc/workloads/critical_section.hh"
#include "system/scenario.hh"

namespace csync
{

namespace
{

constexpr Addr probeAddr = 0x1000;

Scenario::Options
probeOpts(const std::string &proto, unsigned procs = 4)
{
    Scenario::Options o;
    o.protocol = proto;
    o.processors = procs;
    o.collectTrace = false;
    return o;
}

MemOp
rd(Addr a, bool hint = false)
{
    return MemOp{OpType::Read, a, 0, hint};
}

MemOp
wr(Addr a, Word v)
{
    return MemOp{OpType::Write, a, v, false};
}

/** Make the block dirty (with write privilege) in cache 0. */
void
makeDirty(Scenario &s, unsigned p = 0)
{
    // Two writes: under Goodman the first is the write-once
    // write-through, so only the second makes the block dirty.
    s.run(p, wr(probeAddr, 1));
    s.run(p, wr(probeAddr, 2));
}

bool
probeCacheToCache(const std::string &proto)
{
    {
        Scenario s(probeOpts(proto));
        makeDirty(s);
        double before = s.system().bus().cacheSupplies.value();
        s.run(1, rd(probeAddr));
        if (s.system().bus().cacheSupplies.value() > before)
            return true;
    }
    {
        Scenario s(probeOpts(proto));
        makeDirty(s);
        double before = s.system().bus().cacheSupplies.value();
        s.run(1, wr(probeAddr, 3));
        if (s.system().bus().cacheSupplies.value() > before)
            return true;
    }
    return false;
}

bool
probeInvalidateSignal(const std::string &proto)
{
    Scenario s(probeOpts(proto));
    s.run(0, rd(probeAddr));
    s.run(1, rd(probeAddr));
    double before = s.system().bus().typeCount(BusReq::Upgrade);
    s.run(0, wr(probeAddr, 1));
    s.run(0, wr(probeAddr, 2));
    return s.system().bus().typeCount(BusReq::Upgrade) > before;
}

char
probeFetchUnshared(const std::string &proto)
{
    {
        Scenario s(probeOpts(proto));
        s.run(0, rd(probeAddr, false));
        if (canWrite(s.state(0, probeAddr)))
            return 'D';
    }
    {
        Scenario s(probeOpts(proto));
        s.run(0, rd(probeAddr, true));
        if (canWrite(s.state(0, probeAddr)))
            return 'S';
    }
    return 0;
}

void
probeFlush(const std::string &proto, FeatureAudit &a)
{
    {
        Scenario s(probeOpts(proto));
        makeDirty(s);
        double mw = s.system().memory().blockWrites.value();
        double cs = s.system().bus().cacheSupplies.value();
        s.run(1, rd(probeAddr));
        if (s.system().bus().cacheSupplies.value() > cs) {
            a.transferObserved = true;
            a.flushOnTransfer =
                s.system().memory().blockWrites.value() > mw;
            return;
        }
    }
    {
        Scenario s(probeOpts(proto));
        makeDirty(s);
        double mw = s.system().memory().blockWrites.value();
        double cs = s.system().bus().cacheSupplies.value();
        s.run(1, wr(probeAddr, 3));
        if (s.system().bus().cacheSupplies.value() > cs) {
            a.transferObserved = false;
            a.flushOnTransfer =
                s.system().memory().blockWrites.value() > mw;
        }
    }
}

bool
probeWriteNoFetch(const std::string &proto)
{
    Scenario s(probeOpts(proto));
    makeDirty(s);
    double supplies = s.system().bus().cacheSupplies.value() +
                      s.system().bus().memSupplies.value();
    s.run(1, MemOp{OpType::WriteNoFetch, probeAddr, 5, false});
    double supplies_after = s.system().bus().cacheSupplies.value() +
                            s.system().bus().memSupplies.value();
    return s.system().bus().typeCount(BusReq::WriteNoFetch) > 0 &&
           supplies_after == supplies;
}

std::string
probeSource(const std::string &proto)
{
    Scenario s(probeOpts(proto));
    makeDirty(s);
    s.run(1, rd(probeAddr));

    double arb = s.system().bus().sourceArbitrations.value();
    double sup0 = s.cache(0).blocksSupplied.value();
    double sup1 = s.cache(1).blocksSupplied.value();
    s.run(2, rd(probeAddr));

    if (s.system().bus().sourceArbitrations.value() > arb)
        return "ARB";
    if (s.cache(1).blocksSupplied.value() > sup1)
        return "LRU";
    if (s.cache(0).blocksSupplied.value() > sup0)
        return "MEM";
    return "";
}

/** Contended lock handoff; measures retries and mutual exclusion. */
void
probeContention(const std::string &proto, FeatureAudit &a)
{
    auto protocol = makeProtocol(proto);
    LockAlg alg = protocol->supportsLockOps() ? LockAlg::CacheLock
                                              : LockAlg::TestTestSet;
    bool has_rmw = protocol->features().atomicRmw ||
                   protocol->supportsLockOps();
    if (!has_rmw) {
        // No serialized RMW: run a read/write-only coherence shakeout.
        SystemConfig cfg;
        cfg.protocol = proto;
        cfg.numProcessors = 3;
        cfg.cache.geom.frames = 32;
        cfg.cache.geom.blockWords = 4;
        System sys(cfg);
        // Simple alternating-writer ping-pong through the checker.
        for (int round = 0; round < 30; ++round) {
            unsigned p = round % 3;
            bool ok = true;
            AccessResult r;
            sys.cache(p).access(wr(probeAddr, Word(round)),
                                [&](const AccessResult &res) {
                                    r = res;
                                    ok = true;
                                });
            sys.eventq().run();
            (void)ok;
        }
        a.valuesCoherent = sys.checker().violations() == 0;
        a.rmwSerialized = false;
        a.efficientBusyWait = false;
        return;
    }

    SystemConfig cfg;
    cfg.protocol = proto;
    cfg.numProcessors = 3;
    cfg.cache.geom.frames = 32;
    cfg.cache.geom.blockWords = 4;
    System sys(cfg);

    const std::uint64_t iters = 25;
    CriticalSectionParams p;
    p.iterations = iters;
    p.alg = alg;
    p.numLocks = 1;
    p.wordsPerCs = 1;
    p.blockBytes = 32;
    p.outsideThink = 5;
    for (unsigned i = 0; i < 3; ++i) {
        p.procId = i;
        sys.addProcessor(std::make_unique<CriticalSectionWorkload>(p));
    }
    sys.start();
    sys.run(5'000'000);

    std::uint64_t completed = 0, failures = 0;
    for (unsigned i = 0; i < 3; ++i) {
        auto &wl = static_cast<CriticalSectionWorkload &>(
            sys.processor(i).workload());
        completed += wl.completed();
        if (alg == LockAlg::CacheLock) {
            failures +=
                std::uint64_t(sys.cache(i).lockRetries.value());
        } else {
            failures += wl.lockDriver().rmwAttempts() - wl.completed();
        }
    }
    Addr counter = CriticalSectionWorkload::dataWordAddr(p, 0, 0);
    bool exact =
        sys.checker().expectedValue(counter) == Word(3 * iters);
    a.rmwSerialized = completed == 3 * iters && exact &&
                      sys.checker().violations() == 0;
    a.valuesCoherent = sys.checker().violations() == 0;
    a.efficientBusyWait = a.rmwSerialized && failures == 0;
}

} // anonymous namespace

bool
FeatureAudit::consistent(std::string *why) const
{
    auto fail = [&](const std::string &w) {
        if (why)
            *why = protocol + ": " + w;
        return false;
    };

    if (cacheToCache != claimed.cacheToCache)
        return fail("cache-to-cache mismatch");
    if (invalidateSignal != claimed.busInvalidateSignal)
        return fail("invalidate-signal mismatch");
    if (fetchUnsharedForWrite != claimed.fetchUnsharedForWrite)
        return fail("fetch-unshared-for-write mismatch");
    if (!claimed.flushPolicy.empty()) {
        bool claimed_flush = claimed.flushPolicy == "F";
        if (flushOnTransfer != claimed_flush)
            return fail("flush-on-transfer mismatch");
    }
    if (writeNoFetch != claimed.writeNoFetch)
        return fail("write-no-fetch mismatch");
    if (efficientBusyWait != claimed.efficientBusyWait)
        return fail("efficient-busy-wait mismatch");
    if (claimed.atomicRmw && !rmwSerialized)
        return fail("atomic RMW not serialized");
    if (claimed.serializesConflicts && !valuesCoherent)
        return fail("value coherence violated");
    std::string want_source = claimed.sourcePolicy == "LRU,MEM"
                                  ? "LRU"
                                  : claimed.sourcePolicy;
    if (want_source == "ARB" || want_source == "LRU" ||
        want_source == "MEM" || want_source.empty()) {
        if (sourceBehavior != want_source)
            return fail("source policy mismatch (measured '" +
                        sourceBehavior + "')");
    }
    return true;
}

FeatureAudit
auditProtocol(const std::string &name)
{
    FeatureAudit a;
    auto proto = makeProtocol(name);
    a.protocol = name;
    a.citation = proto->citation();
    a.claimed = proto->features();
    a.states = proto->statesUsed();

    a.cacheToCache = probeCacheToCache(name);
    a.invalidateSignal = probeInvalidateSignal(name);
    a.fetchUnsharedForWrite = probeFetchUnshared(name);
    probeFlush(name, a);
    a.writeNoFetch = probeWriteNoFetch(name);
    a.sourceBehavior = probeSource(name);
    probeContention(name, a);
    return a;
}

std::vector<FeatureAudit>
auditTable1Protocols()
{
    std::vector<FeatureAudit> out;
    for (const auto &name : ProtocolRegistry::table1Order())
        out.push_back(auditProtocol(name));
    return out;
}

namespace
{

/** Paper-order state rows and their labels. */
struct StateRow
{
    const char *label;
    bool (*matches)(State s);
};

const StateRow stateRows[] = {
    {"Invalid", [](State s) { return !isValid(s); }},
    {"Read",
     [](State s) {
         return isValid(s) && !canWrite(s) && !isSource(s);
     }},
    {"Read, Clean",
     [](State s) {
         return isValid(s) && !canWrite(s) && isSource(s) && !isDirty(s);
     }},
    {"Read, Dirty",
     [](State s) {
         return isValid(s) && !canWrite(s) && isSource(s) && isDirty(s);
     }},
    {"Write, Clean",
     [](State s) {
         return canWrite(s) && !isLocked(s) && !isDirty(s);
     }},
    {"Write, Dirty",
     [](State s) {
         return canWrite(s) && !isLocked(s) && isDirty(s);
     }},
    {"Lock, Dirty",
     [](State s) { return isLocked(s) && !hasWaiter(s); }},
    {"Lock, Dirty, Waiter",
     [](State s) { return isLocked(s) && hasWaiter(s); }},
};

std::string
cellFor(const FeatureAudit &a, const StateRow &row)
{
    for (State s : a.states) {
        if (!row.matches(s))
            continue;
        if (!isValid(s))
            return "x";
        if (isSource(s))
            return "S";
        // Papamarcos & Patel: every holder of a Read copy is a
        // potential source, arbitrated on demand.
        if (a.claimed.sourcePolicy == "ARB")
            return "S";
        return "N";
    }
    return "";
}

std::string
padded(const std::string &s, std::size_t w)
{
    std::string out = s;
    if (out.size() < w)
        out.append(w - out.size(), ' ');
    return out;
}

} // anonymous namespace

std::string
renderTable1(const std::vector<FeatureAudit> &audits)
{
    std::ostringstream os;
    const std::size_t label_w = 46, col_w = 10;

    os << "Table 1. Evolution of Full-Broadcast, Write-In "
          "Cache-Synchronization Schemes\n";
    os << "(states: N = non-source, S = source, x = present; features "
          "measured behaviorally;\n a trailing exclamation mark flags a "
          "measurement that disagrees with the claim)\n\n";

    os << padded("States", label_w);
    for (const auto &a : audits)
        os << padded(a.protocol, col_w);
    os << "\n";
    for (const auto &row : stateRows) {
        os << padded("  " + std::string(row.label), label_w);
        for (const auto &a : audits)
            os << padded(cellFor(a, row), col_w);
        os << "\n";
    }

    os << "\n" << padded("Features", label_w) << "\n";
    auto feature_row = [&](const std::string &label,
                           auto value_fn, auto ok_fn) {
        os << padded("  " + label, label_w);
        for (const auto &a : audits) {
            std::string v = value_fn(a);
            if (!ok_fn(a))
                v += "!";
            os << padded(v, col_w);
        }
        os << "\n";
    };

    feature_row(
        "1. Cache-to-cache transfer; serialization",
        [](const FeatureAudit &a) {
            return a.claimed.cacheToCache ? std::string("yes")
                                          : std::string("-");
        },
        [](const FeatureAudit &a) {
            return a.cacheToCache == a.claimed.cacheToCache &&
                   a.valuesCoherent >= a.claimed.serializesConflicts;
        });
    feature_row(
        "2. Fully-distributed state (R/W/L/D/S)",
        [](const FeatureAudit &a) { return a.claimed.distributedState; },
        [](const FeatureAudit &) { return true; });
    feature_row(
        "3. Directory duality (ID/NID/DPR)",
        [](const FeatureAudit &a) {
            return a.claimed.directorySpecified
                       ? std::string(directoryKindCode(a.claimed.directory))
                       : std::string("-");
        },
        [](const FeatureAudit &) { return true; });
    feature_row(
        "4. Bus invalidate signal",
        [](const FeatureAudit &a) {
            return a.claimed.busInvalidateSignal ? std::string("yes")
                                                 : std::string("-");
        },
        [](const FeatureAudit &a) {
            return a.invalidateSignal == a.claimed.busInvalidateSignal;
        });
    feature_row(
        "5. Fetch unshared for write privilege (D/S)",
        [](const FeatureAudit &a) {
            return a.claimed.fetchUnsharedForWrite
                       ? std::string(1, a.claimed.fetchUnsharedForWrite)
                       : std::string("-");
        },
        [](const FeatureAudit &a) {
            return a.fetchUnsharedForWrite ==
                   a.claimed.fetchUnsharedForWrite;
        });
    feature_row(
        "6. Atomic read-modify-write serialized",
        [](const FeatureAudit &a) {
            return a.claimed.atomicRmw ? std::string("yes")
                                       : std::string("-");
        },
        [](const FeatureAudit &a) {
            return !a.claimed.atomicRmw || a.rmwSerialized;
        });
    feature_row(
        "7. Flushing on cache-to-cache transfer",
        [](const FeatureAudit &a) {
            return a.claimed.flushPolicy.empty() ? std::string("-")
                                                 : a.claimed.flushPolicy;
        },
        [](const FeatureAudit &a) {
            return a.claimed.flushPolicy.empty() ||
                   a.flushOnTransfer == (a.claimed.flushPolicy == "F");
        });
    feature_row(
        "8. Sources for read-privilege block",
        [](const FeatureAudit &a) {
            return a.claimed.sourcePolicy.empty()
                       ? std::string("-")
                       : a.claimed.sourcePolicy;
        },
        [](const FeatureAudit &a) {
            std::string want = a.claimed.sourcePolicy == "LRU,MEM"
                                   ? "LRU"
                                   : a.claimed.sourcePolicy;
            return a.sourceBehavior == want;
        });
    feature_row(
        "9. Writing without fetch on write miss",
        [](const FeatureAudit &a) {
            return a.claimed.writeNoFetch ? std::string("yes")
                                          : std::string("-");
        },
        [](const FeatureAudit &a) {
            return a.writeNoFetch == a.claimed.writeNoFetch;
        });
    feature_row(
        "10. Efficient busy wait",
        [](const FeatureAudit &a) {
            return a.claimed.efficientBusyWait ? std::string("yes")
                                               : std::string("-");
        },
        [](const FeatureAudit &a) {
            return a.efficientBusyWait == a.claimed.efficientBusyWait;
        });

    return os.str();
}

std::string
renderTable2(const std::vector<FeatureAudit> &audits)
{
    auto find = [&](const std::string &name) -> const FeatureAudit * {
        for (const auto &a : audits)
            if (a.protocol == name)
                return &a;
        return nullptr;
    };
    auto mark = [](bool measured) { return measured ? "[measured]"
                                                    : "[claimed]"; };

    std::ostringstream os;
    os << "Table 2. Innovation Summary (with behavioral evidence)\n\n";

    if (const auto *a = find("classic_wt")) {
        os << "Early Schemes\n"
           << "* Classic (pre-1978) write-through — " << a->citation
           << "\n"
           << "  - identical dual directories; invalidation broadcast on "
              "every write "
           << mark(!a->invalidateSignal && !a->cacheToCache) << "\n\n";
    }
    if (const auto *a = find("goodman")) {
        os << "Full Broadcast, Write-In\n"
           << "* Goodman (1983)\n"
           << "  - fully-distributed R/W/D/S status; cache-to-cache "
              "transfer for dirty blocks "
           << mark(a->cacheToCache) << "\n"
           << "  - flushing on cache-to-cache transfer "
           << mark(a->flushOnTransfer) << "\n"
           << "  - invalidation write-through (no bus invalidate signal) "
           << mark(!a->invalidateSignal) << "\n";
    }
    if (const auto *a = find("synapse")) {
        os << "* Frank (1984)\n"
           << "  - bus invalidate signal " << mark(a->invalidateSignal)
           << "\n"
           << "  - no flushing on cache-to-cache transfer "
           << mark(!a->flushOnTransfer) << "\n"
           << "  - source bit kept in main memory (RWD only)\n";
    }
    if (const auto *a = find("illinois")) {
        os << "* Papamarcos, Patel (1984)\n"
           << "  - cache-to-cache transfer for clean blocks; multiple "
              "sources arbitrate "
           << mark(a->sourceBehavior == "ARB") << "\n"
           << "  - fetching unshared data for write privilege, dynamic "
              "(hit line) "
           << mark(a->fetchUnsharedForWrite == 'D') << "\n"
           << "  - serialized atomic read-modify-write "
           << mark(a->rmwSerialized) << "\n";
    }
    if (const auto *a = find("yen")) {
        os << "* Yen, Yen, Fu (1985)\n"
           << "  - fetching unshared data for write privilege, static "
              "(program declaration) "
           << mark(a->fetchUnsharedForWrite == 'S') << "\n";
    }
    if (const auto *a = find("berkeley")) {
        os << "* Katz, Eggers, Wood, Perkins, Sheldon (1985)\n"
           << "  - dirty read state: cache-to-cache transfer on read "
              "without flushing "
           << mark(a->transferObserved && !a->flushOnTransfer) << "\n"
           << "  - single source; memory fallback if the source purges "
           << mark(a->sourceBehavior == "MEM") << "\n"
           << "  - dual-ported-read directory\n";
    }
    if (const auto *a = find("bitar")) {
        os << "* Our proposal (Bitar & Despain 1986)\n"
           << "  - efficient busy-wait locking: lock state "
           << mark(a->rmwSerialized) << "\n"
           << "  - efficient busy-waiting: lock-waiter state + busy-wait "
              "register, zero unsuccessful retries "
           << mark(a->efficientBusyWait) << "\n"
           << "  - last fetcher becomes source (LRU across caches) "
           << mark(a->sourceBehavior == "LRU") << "\n"
           << "  - writing without fetch on write miss "
           << mark(a->writeNoFetch) << "\n"
           << "  - non-identical dual directories (interference "
              "analysis)\n";
    }
    os << "Write-In/Write-Through Schemes\n";
    if (const auto *a = find("dragon")) {
        os << "* Dragon (McCreight 1984)\n"
           << "  - dynamic shared status via hit line; update writes, "
              "owner keeps dirty data "
           << mark(!a->invalidateSignal && a->cacheToCache) << "\n";
    }
    if (const auto *a = find("firefly")) {
        os << "* Firefly (Archibald & Baer 1985)\n"
           << "  - dynamic shared status via hit line; update writes "
              "through to memory "
           << mark(!a->invalidateSignal && a->cacheToCache) << "\n";
    }
    if (const auto *a = find("rudolph_segall")) {
        os << "* Rudolph, Segall (1984)\n"
           << "  - shared status from access interleaving: first write "
              "updates, second invalidates "
           << mark(a->invalidateSignal) << "\n"
           << "  - efficient busy wait via broadcast of lock-word "
              "writes\n";
    }
    return os.str();
}

} // namespace csync
