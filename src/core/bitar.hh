/**
 * @file
 * The paper's proposed protocol (Bitar & Despain 1986, Sections E-F):
 * a full-broadcast, write-in protocol with eight block states —
 *
 *   Invalid; Read; Read,Source,Clean; Read,Source,Dirty;
 *   Write,Source,Clean; Write,Source,Dirty;
 *   Lock,Source,Dirty; Lock,Source,Dirty,Waiter
 *
 * — and these distinctive mechanisms:
 *
 *  - cache-state locking: the lock instruction is a read that fetches the
 *    first block of the atom with write privilege and locks it; lock and
 *    unlock usually take zero time and zero bus traffic (Section E.3);
 *  - the lock-waiter state: a request to a locked block is answered
 *    "busy", the locker records the waiter, and the requester arms its
 *    busy-wait register (Figure 7);
 *  - the unlock broadcast + high-priority arbitration handoff
 *    (Figures 8-9), eliminating all unsuccessful retries from the bus;
 *  - last-fetcher-becomes-source ("LRU,MEM" source policy, Feature 8);
 *  - dynamic fetch-for-write-privilege on a read miss via the hit line
 *    (Figure 1, Feature 5 'D');
 *  - write-without-fetch (Feature 9);
 *  - no flush on cache-to-cache transfer, clean/dirty status transferred
 *    with the block (Feature 7 'NF,S');
 *  - the locked-block purge fallback: a purged lock moves to a memory
 *    lock tag and returns on the holder's next access (Section E.3).
 */

#ifndef CSYNC_CORE_BITAR_HH
#define CSYNC_CORE_BITAR_HH

#include "coherence/protocol.hh"

namespace csync
{

/**
 * The proposed protocol.
 */
class BitarProtocol : public Protocol
{
  public:
    std::string name() const override { return "bitar"; }
    std::string citation() const override
    {
        return "Bitar & Despain 1986 (this paper's proposal)";
    }
    ProtocolStyle style() const override { return ProtocolStyle::WriteIn; }
    bool supportsLockOps() const override { return true; }
    bool supportsWriteNoFetch() const override { return true; }
    Features features() const override;
    std::vector<State> statesUsed() const override;

    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procRmw(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procLockRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procUnlockWrite(Cache &c, Frame *f,
                               const MemOp &op) override;
    ProcAction procWriteNoFetch(Cache &c, Frame *f,
                                const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;

    bool evictNeedsWriteback(Cache &c, const Frame &f) const override;
    void onEvict(Cache &c, Frame &f) override;
};

} // namespace csync

#endif // CSYNC_CORE_BITAR_HH
