/**
 * @file
 * Feature-audit engine for Tables 1 and 2.  For every protocol it
 * collects the claimed Features vector AND measures each measurable
 * feature with directed probes on live systems, so the evolution matrix
 * the benches print is derived from the implementations' behavior rather
 * than asserted.
 */

#ifndef CSYNC_CORE_FEATURE_AUDIT_HH
#define CSYNC_CORE_FEATURE_AUDIT_HH

#include <string>
#include <vector>

#include "coherence/protocol.hh"

namespace csync
{

/** Claimed and measured feature values for one protocol. */
struct FeatureAudit
{
    std::string protocol;
    std::string citation;
    Features claimed;
    std::vector<State> states;

    /** @name Measured values */
    /// @{
    bool cacheToCache = false;
    bool invalidateSignal = false;
    char fetchUnsharedForWrite = 0;     // 0 / 'D' / 'S'
    bool flushOnTransfer = false;
    bool transferObserved = false;      // read-path c2c transfer happened
    bool writeNoFetch = false;
    bool efficientBusyWait = false;     // zero unsuccessful lock retries
    bool rmwSerialized = false;         // contended RMW increments exact
    bool valuesCoherent = false;        // checker clean on contention run
    std::string sourceBehavior;         // "ARB" / "LRU" / "MEM" / ""
    /// @}

    /** True if every measured value matches the claim. */
    bool consistent(std::string *why = nullptr) const;
};

/** Run all probes against one protocol. */
FeatureAudit auditProtocol(const std::string &name);

/** Audit every protocol in Table 1 column order. */
std::vector<FeatureAudit> auditTable1Protocols();

/** Render the paper's Table 1 (states + features) from audits. */
std::string renderTable1(const std::vector<FeatureAudit> &audits);

/** Render the paper's Table 2 innovation summary with evidence. */
std::string renderTable2(const std::vector<FeatureAudit> &audits);

} // namespace csync

#endif // CSYNC_CORE_FEATURE_AUDIT_HH
