#include "core/bitar.hh"

#include "cache/cache.hh"

namespace csync
{

Features
BitarProtocol::features() const
{
    Features ft;
    ft.cacheToCache = true;
    ft.serializesConflicts = true;
    ft.distributedState = "RWLDS";
    ft.directory = DirectoryKind::NonIdenticalDual;
    ft.directorySpecified = true;
    ft.busInvalidateSignal = true;
    ft.fetchUnsharedForWrite = 'D';
    ft.atomicRmw = true;
    ft.flushPolicy = "NF,S";
    ft.sourcePolicy = "LRU,MEM";
    ft.writeNoFetch = true;
    ft.efficientBusyWait = true;
    return ft;
}

std::vector<State>
BitarProtocol::statesUsed() const
{
    return {Inv, Rd, RdSrcCln, RdSrcDty, WrSrcCln, WrSrcDty, LkSrcDty,
            LkSrcDtyWt};
}

ProcAction
BitarProtocol::procRead(Cache &, Frame *f, const MemOp &)
{
    if (f && canRead(f->state))
        return ProcAction::hit();
    // Read miss: fetch; privilege decided by the hit line (Figure 1).
    return ProcAction::busFinal(BusReq::ReadShared);
}

ProcAction
BitarProtocol::procWrite(Cache &, Frame *f, const MemOp &)
{
    if (f && canWrite(f->state)) {
        // Write hit with privilege: silent, block becomes dirty.  Writes
        // while the block is locked keep the lock (Section E.3).
        f->state |= BitDirty;
        return ProcAction::hit();
    }
    if (f && isValid(f->state)) {
        // Valid copy without write privilege: one-cycle invalidation,
        // no data transfer (Figure 5).
        return ProcAction::busFinal(BusReq::Upgrade, true);
    }
    return ProcAction::busFinal(BusReq::ReadExclusive);
}

ProcAction
BitarProtocol::procRmw(Cache &c, Frame *f, const MemOp &)
{
    // Feature 6, fourth method: lock just the target atom in the cache.
    if (f && canWrite(f->state)) {
        if (hasWaiter(f->state)) {
            // Acquired via the busy-wait register: release with a
            // broadcast after the swap applies.
            return ProcAction::busFinal(BusReq::UnlockBroadcast);
        }
        if (isLocked(f->state) && !c.opLockFetched()) {
            // The lock was already held by this cache before the RMW
            // began (a program lock across the instruction): just a
            // write inside the critical section.
            f->state |= BitDirty;
            return ProcAction::hit();
        }
        // Lock-modify-unlock collapses to zero time (the transient
        // RMW lock — whether pre-owned or just fetched — is released).
        f->state = WrSrcDty;
        return ProcAction::hit();
    }
    if (f && isValid(f->state)) {
        // Privilege-only lock fetch, then replay to apply the swap.
        return ProcAction::bus(BusReq::ReadLock, true);
    }
    return ProcAction::bus(BusReq::ReadLock);
}

ProcAction
BitarProtocol::procLockRead(Cache &, Frame *f, const MemOp &)
{
    if (f && canWrite(f->state)) {
        // Zero-time locking (Section E.3).
        f->state = isLocked(f->state) ? f->state : LkSrcDty;
        return ProcAction::hit();
    }
    if (f && isValid(f->state))
        return ProcAction::busFinal(BusReq::ReadLock, true);
    return ProcAction::busFinal(BusReq::ReadLock);
}

ProcAction
BitarProtocol::procUnlockWrite(Cache &c, Frame *f, const MemOp &op)
{
    if (f && isLocked(f->state)) {
        if (hasWaiter(f->state)) {
            // Waiters exist: the unlock must be broadcast (Figure 8).
            return ProcAction::busFinal(BusReq::UnlockBroadcast);
        }
        // Zero-time unlock.
        f->state = WrSrcDty;
        return ProcAction::hit();
    }
    if (!f && c.holdsPurgedLock(c.blockAlign(op.addr))) {
        // The locked block was purged; re-fetch it as the lock holder
        // (the memory lock tag admits us), then replay the unlock.
        return ProcAction::bus(BusReq::ReadLock);
    }
    panic("cache %d: unlock of %llx which it has not locked", c.nodeId(),
          (unsigned long long)op.addr);
}

ProcAction
BitarProtocol::procWriteNoFetch(Cache &, Frame *f, const MemOp &)
{
    if (f && canWrite(f->state)) {
        f->state |= BitDirty;
        return ProcAction::hit();
    }
    // Claim the block with a one-cycle invalidation; no fetch
    // (Feature 9).
    return ProcAction::busFinal(BusReq::WriteNoFetch);
}

void
BitarProtocol::finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                         Frame &f)
{
    if (c.holdsPurgedLock(msg.blockAddr) && msg.req != BusReq::ReadLock) {
        // A fetch of any access class by the cache that purged this
        // block's lock reclaims the lock from its memory tag (Section
        // E.3).  Leaving the tag set while the local copy comes back
        // without its lock state would wedge every other cache behind
        // a lock nobody can release.  (The ReadLock branch below does
        // its own reclaim, with busy-wait arbitration on top.)
        Addr ba = msg.blockAddr;
        State s = LkSrcDty;
        if (c.memory().memWaiter(ba))
            s |= BitWaiter;
        c.memory().setMemLock(ba, false, invalidNode);
        c.notePurgedLock(ba, false);
        f.state = s;
        return;
    }
    switch (msg.req) {
      case BusReq::ReadShared:
        if (!res.hit) {
            // No other copy: assume write privilege so a later write
            // needs no bus access (Figure 1).
            f.state = WrSrcCln;
        } else if (res.supplier != invalidNode) {
            // Cache-to-cache transfer: dirty status travels with the
            // block; the last fetcher becomes the source (Figure 4).
            f.state = State(BitValid | BitSource |
                            (res.sourceDirty ? BitDirty : 0));
        } else {
            // Copies exist but no source: memory supplied (Figure 2);
            // the fetcher still becomes the new source.
            f.state = RdSrcCln;
        }
        break;

      case BusReq::ReadExclusive:
      case BusReq::Upgrade:
      case BusReq::WriteNoFetch:
        f.state = WrSrcDty;
        break;

      case BusReq::ReadLock: {
        State s = LkSrcDty;
        if (c.isBusyWaitRegisterRequest(msg)) {
            // Winner of the busy-wait arbitration: lock using the
            // lock-waiter state, "since that will probably be
            // appropriate" (Figure 9).
            s = LkSrcDtyWt;
        }
        Addr ba = msg.blockAddr;
        if (c.holdsPurgedLock(ba)) {
            // The lock returns from its memory tag (Section E.3).
            if (c.memory().memWaiter(ba))
                s |= BitWaiter;
            c.memory().setMemLock(ba, false, invalidNode);
            c.notePurgedLock(ba, false);
        }
        f.state = s;
        break;
      }

      case BusReq::UnlockBroadcast:
        sim_assert(isLocked(f.state), "unlock broadcast on unlocked block");
        f.state = WrSrcDty;
        ++c.unlockBroadcasts;
        break;

      default:
        panic("bitar: unexpected bus completion %s",
              busReqName(msg.req));
    }
}

SnoopReply
BitarProtocol::snoop(Cache &, const BusMsg &msg, Frame *f)
{
    SnoopReply r;
    if (!f || !isValid(f->state))
        return r;

    switch (msg.req) {
      case BusReq::ReadShared:
      case BusReq::ReadExclusive:
      case BusReq::ReadLock:
      case BusReq::WriteNoFetch:
        if (isLocked(f->state)) {
            // The block is locked here: answer busy and record the
            // waiter (Figure 7).
            r.hasCopy = true;
            r.locked = true;
            f->state |= BitWaiter;
            return r;
        }
        r.hasCopy = true;
        if (msg.req == BusReq::ReadShared) {
            if (isSource(f->state)) {
                // Source provides the block and its clean/dirty status;
                // source status moves to the fetcher (Figure 4; no
                // flush: Feature 7 'NF,S').
                r.source = true;
                r.supplyData = !msg.hasData;
                r.dirty = isDirty(f->state);
                r.data = f->data;
                // Any write privilege is lost: another reader exists.
                f->state = Rd;
            } else if (canWrite(f->state)) {
                f->state = Rd;
            }
        } else {
            // Write-privilege request: supply if source, then
            // invalidate (WriteNoFetch kills the data by contract).
            if (isSource(f->state) && msg.req != BusReq::WriteNoFetch) {
                r.source = true;
                r.supplyData = !msg.hasData;
                r.dirty = isDirty(f->state);
                r.data = f->data;
            }
            f->state = Inv;
        }
        return r;

      case BusReq::Upgrade:
      case BusReq::IOInvalidate:
        r.hasCopy = true;
        f->state = Inv;
        return r;

      case BusReq::IOReadKeepSource:
        r.hasCopy = true;
        if (isSource(f->state)) {
            // Non-paging output: provide the latest version but keep
            // source status (Section E.2).
            r.source = true;
            r.supplyData = true;
            r.dirty = isDirty(f->state);
            r.data = f->data;
        }
        return r;

      case BusReq::UnlockBroadcast:
      case BusReq::WriteBack:
      case BusReq::WriteWord:
      case BusReq::UpdateWord:
        // Not part of this protocol's transaction set (UnlockBroadcast
        // is handled by busy-wait registers).
        return r;
    }
    return r;
}

bool
BitarProtocol::evictNeedsWriteback(Cache &, const Frame &f) const
{
    return isDirty(f.state);
}

void
BitarProtocol::onEvict(Cache &c, Frame &f)
{
    if (isLocked(f.state)) {
        // Purge of a locked block: write the lock (and waiter) tag to
        // memory; the flush itself rides the piggybacked write-back
        // (Section E.3).
        c.memory().setMemLock(f.blockAddr, true, c.nodeId());
        c.memory().setMemWaiter(f.blockAddr, hasWaiter(f.state));
        c.notePurgedLock(f.blockAddr, true);
    }
}

namespace
{
const bool registered = ProtocolRegistry::registerProtocol(
    "bitar", [] { return std::make_unique<BitarProtocol>(); });
} // anonymous namespace

} // namespace csync
