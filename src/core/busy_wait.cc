#include "core/busy_wait.hh"

#include "cache/cache.hh"

namespace csync
{

BusyWaitRegister::BusyWaitRegister(std::string name, EventQueue *eq,
                                   Cache *cache, NodeId id,
                                   Interconnect *bus)
    : SimObject(std::move(name), eq), cache_(cache), id_(id), bus_(bus)
{
}

void
BusyWaitRegister::arm(Addr block_addr)
{
    sim_assert(!armed_, "busy-wait register %s already armed",
               name().c_str());
    armed_ = true;
    blockAddr_ = block_addr;
}

void
BusyWaitRegister::disarm()
{
    armed_ = false;
    if (bus_->requestPending(this))
        bus_->cancel(this);
}

bool
BusyWaitRegister::busGrant(BusMsg &msg)
{
    if (!armed_) {
        // The lock evaporated (another winner took it); yield the slot.
        return false;
    }
    cache_->prepareLockFetch(msg);
    trace(TraceFlag::Lock, "lock fetch blk=%llx (priority grant)",
                   (unsigned long long)blockAddr_);
    return true;
}

SnoopReply
BusyWaitRegister::snoop(const BusMsg &msg)
{
    if (armed_ && msg.blockAddr == blockAddr_) {
        if (msg.req == BusReq::UnlockBroadcast) {
            // The lock was released: join the next arbitration with the
            // dedicated high-priority bit (Section E.4).
            trace(TraceFlag::Lock, "unlock seen blk=%llx; arbitrating",
                           (unsigned long long)blockAddr_);
            bus_->request(this,
                          cache_->config().busyWaitPriority
                              ? BusPriority::BusyWait
                              : BusPriority::Normal,
                          TrafficClass::Sync);
        } else if (msg.req == BusReq::ReadLock) {
            // Another waiter won: make no attempt to fetch the block
            // again; keep waiting for the next unlock (Figure 9).
            trace(TraceFlag::Lock, "lost arbitration blk=%llx; staying quiet",
                           (unsigned long long)blockAddr_);
            bus_->cancel(this);
        }
    }
    return SnoopReply{};
}

void
BusyWaitRegister::busComplete(const BusMsg &msg, const SnoopResult &res)
{
    if (res.locked) {
        // Raced with a re-lock; keep waiting for the next broadcast.
        cache_->lockFetchDenied();
        return;
    }
    armed_ = false;
    cache_->lockFetchCompleted(msg, res);
}

} // namespace csync
