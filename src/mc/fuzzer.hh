/**
 * @file
 * Differential trace fuzzer: generate a seeded random directed trace,
 * run the *same* op sequence through two system configurations (two
 * protocols, or Bitar with a Section E.4 feature ablated), and diff the
 * verdicts and the final effective memory images.  Because the replay
 * issues one op at a time and settles between steps, every correct
 * protocol must serialize the sequence identically — any divergence in
 * final word values is a lost update or stale read in one of the two.
 * Ablating the busy-wait register legitimately turns lock contention
 * into a bus-retry livelock (the paper's Q5 argument); that surfaces as
 * an *expected divergence* (stall), kept distinct from real mismatches
 * so CI can gate on the latter.
 */

#ifndef CSYNC_MC_FUZZER_HH
#define CSYNC_MC_FUZZER_HH

#include <string>
#include <vector>

#include "system/replay.hh"

namespace csync
{
namespace mc
{

/** One configuration pair to diff. */
struct FuzzPair
{
    std::string a = "bitar";
    std::string b = "bitar";
    /** Ablations applied to side b only. */
    bool ablateBusyWait = false;
    bool ablatePriority = false;
    /** Generate LockRead/UnlockWrite ops (only meaningful when both
     *  sides implement the lock instruction). */
    bool lockOps = false;

    std::string label() const;
};

/** Result of diffing one (seed, pair). */
struct FuzzReport
{
    std::uint64_t seed = 0;
    FuzzPair pair;
    ReplayVerdict verdictA;
    ReplayVerdict verdictB;
    /** Expected divergence under ablation (e.g. side b stalled in a
     *  bus-retry livelock without the busy-wait register). */
    bool diverged = false;
    std::string divergence;
    /** Real problem: a coherence violation in either side, or the two
     *  sides disagreeing on the final memory image. */
    bool mismatch = false;
    std::string detail;
    /** The trace that produced this report (replayable). */
    DirectedTrace trace;

    bool clean() const { return !mismatch; }
};

/**
 * Seeded random differential fuzzing over protocol pairs.
 */
class DifferentialFuzzer
{
  public:
    struct Options
    {
        unsigned caches = 2;
        unsigned blocks = 2;
        unsigned ops = 24;
    };

    explicit DifferentialFuzzer(const Options &opts);

    /** Deterministic random trace for @p seed (protocol only sets the
     *  shape; the op sequence depends on seed and lock_ops alone). */
    DirectedTrace makeTrace(std::uint64_t seed, const std::string &protocol,
                            bool lock_ops) const;

    /** Run one (seed, pair) diff. */
    FuzzReport runPair(std::uint64_t seed, const FuzzPair &pair) const;

    /** Every shipped protocol against Bitar, plus Bitar against itself
     *  with the busy-wait register / arbitration priority ablated. */
    static std::vector<FuzzPair> defaultPairs();

  private:
    Options opts_;
};

} // namespace mc
} // namespace csync

#endif // CSYNC_MC_FUZZER_HH
