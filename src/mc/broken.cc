#include "mc/broken.hh"

#include "cache/cache.hh"

namespace csync
{
namespace mc
{

DroppedInvalidateProtocol::DroppedInvalidateProtocol(
    std::unique_ptr<Protocol> inner)
    : inner_(std::move(inner))
{
}

std::string
DroppedInvalidateProtocol::name() const
{
    return "broken_noinval";
}

std::string
DroppedInvalidateProtocol::citation() const
{
    return "deliberately broken " + inner_->name() +
           " (dropped snoop invalidation)";
}

ProtocolStyle
DroppedInvalidateProtocol::style() const
{
    return inner_->style();
}

bool
DroppedInvalidateProtocol::supportsLockOps() const
{
    return inner_->supportsLockOps();
}

bool
DroppedInvalidateProtocol::supportsWriteNoFetch() const
{
    return inner_->supportsWriteNoFetch();
}

Features
DroppedInvalidateProtocol::features() const
{
    return inner_->features();
}

std::vector<State>
DroppedInvalidateProtocol::statesUsed() const
{
    return inner_->statesUsed();
}

ProcAction
DroppedInvalidateProtocol::procRead(Cache &c, Frame *f, const MemOp &op)
{
    return inner_->procRead(c, f, op);
}

ProcAction
DroppedInvalidateProtocol::procWrite(Cache &c, Frame *f, const MemOp &op)
{
    return inner_->procWrite(c, f, op);
}

ProcAction
DroppedInvalidateProtocol::procRmw(Cache &c, Frame *f, const MemOp &op)
{
    return inner_->procRmw(c, f, op);
}

ProcAction
DroppedInvalidateProtocol::procLockRead(Cache &c, Frame *f, const MemOp &op)
{
    return inner_->procLockRead(c, f, op);
}

ProcAction
DroppedInvalidateProtocol::procUnlockWrite(Cache &c, Frame *f,
                                           const MemOp &op)
{
    return inner_->procUnlockWrite(c, f, op);
}

ProcAction
DroppedInvalidateProtocol::procWriteNoFetch(Cache &c, Frame *f,
                                            const MemOp &op)
{
    return inner_->procWriteNoFetch(c, f, op);
}

void
DroppedInvalidateProtocol::finishBus(Cache &c, const BusMsg &msg,
                                     const SnoopResult &res, Frame &f)
{
    inner_->finishBus(c, msg, res, f);
}

SnoopReply
DroppedInvalidateProtocol::snoop(Cache &c, const BusMsg &msg, Frame *f)
{
    State before = f ? f->state : Inv;
    std::vector<Word> data = f ? f->data : std::vector<Word>();
    SnoopReply r = inner_->snoop(c, msg, f);
    if (f && isValid(before) && !isValid(f->state)) {
        // THE BUG: quietly keep the stale copy the inner protocol just
        // invalidated.  The requester proceeds believing it holds the
        // only (writable) version.
        f->state = before;
        f->data = std::move(data);
    }
    return r;
}

bool
DroppedInvalidateProtocol::evictNeedsWriteback(Cache &c,
                                               const Frame &f) const
{
    return inner_->evictNeedsWriteback(c, f);
}

void
DroppedInvalidateProtocol::onEvict(Cache &c, Frame &f)
{
    inner_->onEvict(c, f);
}

std::string
DroppedInvalidateProtocol::snapshotState() const
{
    return inner_->snapshotState();
}

std::unique_ptr<Protocol>
DroppedInvalidateProtocol::clone() const
{
    return std::make_unique<DroppedInvalidateProtocol>(inner_->clone());
}

StaleUpdateProtocol::StaleUpdateProtocol()
    : AdaptiveProtocol(makeProtocol("dragon"), "broken_adaptive",
                       AdaptiveMode::Update)
{
}

SnoopReply
StaleUpdateProtocol::snoop(Cache &c, const BusMsg &msg, Frame *f)
{
    bool had_copy = f && isValid(f->state);
    std::vector<Word> data = had_copy ? f->data : std::vector<Word>();
    SnoopReply r = AdaptiveProtocol::snoop(c, msg, f);
    if (msg.req == BusReq::UpdateWord && had_copy && isValid(f->state)) {
        // THE BUG: the handshake succeeded (hit line driven, ownership
        // handed to the writer) but the broadcast word never lands.
        f->data = std::move(data);
    }
    return r;
}

std::unique_ptr<Protocol>
StaleUpdateProtocol::clone() const
{
    auto copy = std::make_unique<StaleUpdateProtocol>();
    copy->setTuning(tuning());
    copy->policy_ = policy_;
    return copy;
}

namespace
{
const bool registered = ProtocolRegistry::registerProtocol(
    "broken_noinval", [] {
        return std::make_unique<DroppedInvalidateProtocol>(
            makeProtocol("bitar"));
    });
const bool registered_adaptive = ProtocolRegistry::registerProtocol(
    "broken_adaptive", [] {
        return std::make_unique<StaleUpdateProtocol>();
    });
} // anonymous namespace

} // namespace mc
} // namespace csync
