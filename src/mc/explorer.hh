/**
 * @file
 * Bounded exhaustive model checker.  The StateExplorer enumerates every
 * interleaving of directed operations (read / write / lock / unlock /
 * evict, per cache, per block) up to a depth bound, replaying each
 * prefix through a fresh System and judging every reachable quiescent
 * state with the TraceReplayer verdict (value checker + structural
 * invariants + lock-waiter liveness).  Reached states are deduplicated
 * by architectural digest — the standard stateful-search optimization —
 * so the search collapses to the protocol's actual reachable state
 * graph instead of the full operation tree.  On a violation the failing
 * interleaving is shrunk to a minimal replayable counterexample.
 */

#ifndef CSYNC_MC_EXPLORER_HH
#define CSYNC_MC_EXPLORER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "system/replay.hh"

namespace csync
{
namespace mc
{

/** Search bounds. */
struct ExploreBounds
{
    unsigned caches = 2;
    unsigned blocks = 1;
    unsigned depth = 4;
    /** Include LockRead/UnlockWrite for protocols with Feature 6 lock
     *  instructions. */
    bool lockOps = true;
    /** Include the Evict displacement op. */
    bool evictOps = true;
    /** Interconnect preset every explored system is built on.  A
     *  clustered preset (clustered_2x1 is the minimal shape: two
     *  single-processor clusters) puts boundary snoop filtering and the
     *  L2 tag directories inside the search — a filter that wrongly
     *  withholds a snoop surfaces as a checker/invariant violation, and
     *  tag residency rides the state digest. */
    std::string topology = "single_bus";

    /** CI bound: 2 caches, 1 block, depth 4 (exhaustive in seconds). */
    static ExploreBounds smoke();

    /** The ISSUE's full bound: 3 caches, 2 blocks, depth 6. */
    static ExploreBounds deep();

    std::string describe() const;
};

/** Result of exploring one protocol. */
struct ExploreResult
{
    std::string protocol;
    ExploreBounds bounds;
    /** Quiescent states judged (tree nodes replayed). */
    std::uint64_t statesVisited = 0;
    /** Nodes cut because their digest was already reached at an equal
     *  or shallower depth. */
    std::uint64_t statesDeduped = 0;
    bool violationFound = false;
    /** firstProblem of the minimized counterexample. */
    std::string violation;
    /** Minimized failing interleaving (ops empty when clean). */
    DirectedTrace counterexample;
    ReplayVerdict counterexampleVerdict;

    bool clean() const { return !violationFound; }
};

/**
 * Exhaustive bounded interleaving search over one protocol.
 */
class StateExplorer
{
  public:
    explicit StateExplorer(const ExploreBounds &bounds);

    /** Search @p protocol; stops at the first violation (minimized). */
    ExploreResult explore(const std::string &protocol);

    /** Registry names minus deliberately broken ("broken_*") variants:
     *  the ten shipped protocols. */
    static std::vector<std::string> shippedProtocols();

    /** The block-aligned address of model block @p block. */
    static Addr blockAddr(unsigned block);

    /** The distinct nonzero value written at step @p step by cache
     *  @p cache (fresh per step, so stale data never aliases it). */
    static Word writeValue(unsigned step, unsigned cache);

  private:
    struct AlphaOp
    {
        unsigned cache;
        DirectedKind kind;
        unsigned block;
    };

    DirectedTrace shapeFor(const std::string &protocol) const;
    std::vector<AlphaOp> alphabetFor(const std::string &protocol) const;
    bool enabled(TraceReplayer &r, const AlphaOp &a) const;
    bool dfs(const DirectedTrace &shape,
             const std::vector<AlphaOp> &alphabet,
             std::vector<DirectedOp> &prefix, ExploreResult &res);
    void minimize(ExploreResult &res) const;

    ExploreBounds bounds_;
    /** digest -> shallowest depth at which it was reached. */
    std::unordered_map<std::string, unsigned> visited_;
};

} // namespace mc
} // namespace csync

#endif // CSYNC_MC_EXPLORER_HH
