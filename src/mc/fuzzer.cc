#include "mc/fuzzer.hh"

#include <algorithm>

#include "mc/explorer.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace csync
{
namespace mc
{

std::string
FuzzPair::label() const
{
    std::string s = a + " vs " + b;
    if (ablateBusyWait)
        s += " (no busy-wait register)";
    if (ablatePriority)
        s += " (no waiter priority)";
    return s;
}

DifferentialFuzzer::DifferentialFuzzer(const Options &opts) : opts_(opts)
{
    sim_assert(opts_.caches >= 1 && opts_.blocks >= 1 && opts_.ops >= 1,
               "degenerate fuzz options");
}

DirectedTrace
DifferentialFuzzer::makeTrace(std::uint64_t seed,
                              const std::string &protocol,
                              bool lock_ops) const
{
    DirectedTrace t;
    t.protocol = protocol;
    t.processors = opts_.caches;
    t.blockWords = 4;
    t.frames = 4;
    t.ways = 1;

    Random rng(seed);
    // Locks this trace has taken and not yet released, per (cache,
    // block) — keeps generated traces lock-disciplined so the unlock
    // traffic is meaningful instead of being skipped at replay.
    std::vector<bool> held(opts_.caches * opts_.blocks, false);
    auto heldAt = [&](unsigned c, unsigned b) -> std::vector<bool>::reference {
        return held[c * opts_.blocks + b];
    };

    for (unsigned step = 0; step < opts_.ops; ++step) {
        DirectedOp op;
        op.cache = unsigned(rng.uniform(opts_.caches));
        unsigned block = unsigned(rng.uniform(opts_.blocks));
        unsigned roll = unsigned(rng.uniform(lock_ops ? 8 : 5));
        DirectedKind kind;
        switch (roll) {
          case 0: case 1: kind = DirectedKind::Read; break;
          case 2: case 3: kind = DirectedKind::Write; break;
          case 4: kind = DirectedKind::Evict; break;
          case 5: case 6: kind = DirectedKind::LockRead; break;
          default: kind = DirectedKind::UnlockWrite; break;
        }
        if (kind == DirectedKind::LockRead && heldAt(op.cache, block))
            kind = DirectedKind::Read;
        if (kind == DirectedKind::UnlockWrite && !heldAt(op.cache, block)) {
            // Release something this cache actually took, if anything.
            bool found = false;
            for (unsigned b = 0; b < opts_.blocks; ++b) {
                if (heldAt(op.cache, b)) {
                    block = b;
                    found = true;
                    break;
                }
            }
            if (!found)
                kind = DirectedKind::Write;
        }
        if (kind == DirectedKind::LockRead)
            heldAt(op.cache, block) = true;
        if (kind == DirectedKind::UnlockWrite)
            heldAt(op.cache, block) = false;

        op.kind = kind;
        op.addr = StateExplorer::blockAddr(block);
        op.value = (kind == DirectedKind::Write ||
                    kind == DirectedKind::UnlockWrite)
                       ? StateExplorer::writeValue(step, op.cache)
                       : 0;
        t.ops.push_back(op);
    }
    return t;
}

namespace
{

/** Blocks (and Evict fillers) a trace touches, sorted. */
std::vector<Addr>
touchedBlocks(const DirectedTrace &t, const TraceReplayer &r)
{
    std::vector<Addr> blocks;
    Addr mask = Addr(t.blockWords) * bytesPerWord - 1;
    for (const DirectedOp &op : t.ops) {
        blocks.push_back(op.addr & ~mask);
        if (op.kind == DirectedKind::Evict)
            blocks.push_back(r.fillerAddr(op.addr));
    }
    std::sort(blocks.begin(), blocks.end());
    blocks.erase(std::unique(blocks.begin(), blocks.end()), blocks.end());
    return blocks;
}

/**
 * The authoritative final contents of @p blk: the (single) dirty cached
 * copy if one exists, else memory.
 */
std::vector<Word>
effectiveBlock(System &sys, Addr blk)
{
    for (unsigned i = 0; i < sys.numCaches(); ++i) {
        const Frame *f = sys.cache(i).peekFrame(blk);
        if (f && f->valid() && isDirty(f->state))
            return f->data;
    }
    return sys.memory().peekBlock(blk);
}

} // anonymous namespace

FuzzReport
DifferentialFuzzer::runPair(std::uint64_t seed, const FuzzPair &pair) const
{
    FuzzReport rep;
    rep.seed = seed;
    rep.pair = pair;
    rep.trace = makeTrace(seed, pair.a, pair.lockOps);

    DirectedTrace tb = rep.trace;
    tb.protocol = pair.b;
    if (pair.ablateBusyWait)
        tb.useBusyWaitRegister = false;
    if (pair.ablatePriority)
        tb.busyWaitPriority = false;

    TraceReplayer ra(rep.trace);
    TraceReplayer rb(tb);
    for (const DirectedOp &op : rep.trace.ops) {
        ra.step(op);
        rb.step(op);
    }
    rep.verdictA = ra.verdict();
    rep.verdictB = rb.verdict();

    auto flag = [&rep](const std::string &what) {
        rep.mismatch = true;
        if (rep.detail.empty())
            rep.detail = what;
    };

    // Coherence violations on either side are always real findings.
    auto judge = [&flag](const char *side, const ReplayVerdict &v) {
        if (v.checkerViolations || v.invariantViolations || v.waiterStuck)
            flag(csprintf("side %s: %s", side, v.describe().c_str()));
    };
    judge("a", rep.verdictA);
    judge("b", rep.verdictB);

    // A stall is an expected divergence only for the busy-wait-register
    // ablation (bus-retry livelock, the paper's Q5); anywhere else it is
    // a lost-progress bug.
    if (rep.verdictA.stalled)
        flag("side a stalled");
    if (rep.verdictB.stalled) {
        if (pair.ablateBusyWait) {
            rep.diverged = true;
            rep.divergence = "side b stalled (busy-wait ablation livelock)";
        } else {
            flag("side b stalled");
        }
    }

    // Both sides quiesced on the same op sequence: they must agree on
    // the final image of every touched block.
    if (!rep.verdictA.stalled && !rep.verdictB.stalled) {
        if (rep.verdictA.skippedOps != rep.verdictB.skippedOps) {
            rep.diverged = true;
            if (rep.divergence.empty()) {
                rep.divergence = csprintf(
                    "skipped ops differ (%u vs %u)",
                    rep.verdictA.skippedOps, rep.verdictB.skippedOps);
            }
            if (!pair.ablateBusyWait && !pair.ablatePriority)
                flag(rep.divergence);
        } else {
            for (Addr blk : touchedBlocks(rep.trace, ra)) {
                std::vector<Word> va = effectiveBlock(ra.system(), blk);
                std::vector<Word> vb = effectiveBlock(rb.system(), blk);
                if (va != vb) {
                    flag(csprintf(
                        "final image of blk=%llx differs",
                        (unsigned long long)blk));
                    break;
                }
            }
        }
    }
    return rep;
}

std::vector<FuzzPair>
DifferentialFuzzer::defaultPairs()
{
    std::vector<FuzzPair> pairs;
    for (const std::string &name : StateExplorer::shippedProtocols()) {
        if (name == "bitar")
            continue;
        FuzzPair p;
        p.a = "bitar";
        p.b = name;
        pairs.push_back(p);
    }
    // The adaptive hybrids additionally diff against both parents: a
    // mode flip must never change what values the memory system returns.
    FuzzPair du;
    du.a = "dragon";
    du.b = "adaptive_du";
    pairs.push_back(du);
    FuzzPair bi;
    bi.a = "berkeley";
    bi.b = "adaptive_bi";
    pairs.push_back(bi);
    FuzzPair noReg;
    noReg.ablateBusyWait = true;
    noReg.lockOps = true;
    pairs.push_back(noReg);
    FuzzPair noPri;
    noPri.ablatePriority = true;
    noPri.lockOps = true;
    pairs.push_back(noPri);
    return pairs;
}

} // namespace mc
} // namespace csync
