#include "mc/explorer.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace csync
{
namespace mc
{

namespace
{

/** Base address of model block 0; blocks are consecutive. */
constexpr Addr kBlockBase = 0x1000;
/** Model geometry: 4-word blocks in a 4-frame direct-mapped cache, so
 *  consecutive blocks live in distinct sets and each block has exactly
 *  one conflicting filler (replay.hh, Evict). */
constexpr unsigned kBlockWords = 4;
constexpr unsigned kFrames = 4;

} // anonymous namespace

ExploreBounds
ExploreBounds::smoke()
{
    ExploreBounds b;
    b.caches = 2;
    b.blocks = 1;
    b.depth = 4;
    return b;
}

ExploreBounds
ExploreBounds::deep()
{
    ExploreBounds b;
    b.caches = 3;
    b.blocks = 2;
    b.depth = 6;
    return b;
}

std::string
ExploreBounds::describe() const
{
    return csprintf("%u caches, %u block(s), depth %u%s%s%s", caches,
                    blocks, depth, lockOps ? "" : ", no locks",
                    evictOps ? "" : ", no evicts",
                    topology == "single_bus"
                        ? ""
                        : csprintf(", %s", topology.c_str()).c_str());
}

Addr
StateExplorer::blockAddr(unsigned block)
{
    return kBlockBase + Addr(block) * kBlockWords * bytesPerWord;
}

Word
StateExplorer::writeValue(unsigned step, unsigned cache)
{
    // Fresh and nonzero at every step: a stale copy can never alias the
    // value the serialization model expects, so dedup by digest stays
    // sound under the per-step renaming of written constants.
    return (Word(step + 1) << 4) | Word(cache + 1);
}

StateExplorer::StateExplorer(const ExploreBounds &bounds) : bounds_(bounds)
{
    sim_assert(bounds_.caches >= 1 && bounds_.blocks >= 1 &&
               bounds_.depth >= 1, "degenerate explore bounds");
}

std::vector<std::string>
StateExplorer::shippedProtocols()
{
    std::vector<std::string> out;
    for (const auto &name : ProtocolRegistry::names()) {
        if (name.rfind("broken_", 0) != 0)
            out.push_back(name);
    }
    return out;
}

DirectedTrace
StateExplorer::shapeFor(const std::string &protocol) const
{
    DirectedTrace shape;
    shape.protocol = protocol;
    shape.processors = bounds_.caches;
    shape.blockWords = kBlockWords;
    shape.frames = kFrames;
    shape.ways = 1;
    shape.topology = bounds_.topology;
    if (protocol.find("adaptive") != std::string::npos) {
        // Pin the mode-switch thresholds to 1 so both hybrid modes and
        // the flip edges between them are reachable within the depth
        // bound; the per-block counters ride the state digest.
        shape.adaptiveBits = 1;
        shape.adaptiveInvalidateThreshold = 1;
        shape.adaptiveUpdateThreshold = 1;
    }
    return shape;
}

std::vector<StateExplorer::AlphaOp>
StateExplorer::alphabetFor(const std::string &protocol) const
{
    bool locks = bounds_.lockOps && makeProtocol(protocol)->supportsLockOps();
    std::vector<AlphaOp> alphabet;
    for (unsigned c = 0; c < bounds_.caches; ++c) {
        for (unsigned b = 0; b < bounds_.blocks; ++b) {
            alphabet.push_back({c, DirectedKind::Read, b});
            alphabet.push_back({c, DirectedKind::Write, b});
            if (locks) {
                alphabet.push_back({c, DirectedKind::LockRead, b});
                alphabet.push_back({c, DirectedKind::UnlockWrite, b});
            }
            if (bounds_.evictOps)
                alphabet.push_back({c, DirectedKind::Evict, b});
        }
    }
    return alphabet;
}

bool
StateExplorer::enabled(TraceReplayer &r, const AlphaOp &a) const
{
    if (r.busy(a.cache))
        return false;
    Addr addr = blockAddr(a.block);
    NodeId holder = r.system().checker().lockHolder(addr);
    switch (a.kind) {
      case DirectedKind::Read:
      case DirectedKind::Write:
        return true;
      case DirectedKind::Evict:
        // Only meaningful while the block is resident.
        return isValid(r.system().cache(a.cache).stateOf(addr));
      case DirectedKind::LockRead:
        // Lock discipline: a holder never re-locks its own block (it
        // would self-deadlock); contending with another holder is
        // explored (the op pends on the busy-wait register).
        return holder != NodeId(a.cache);
      case DirectedKind::UnlockWrite:
        // Only the serialized holder may unlock (anything else is a
        // program bug, which the cache treats as fatal).
        return holder == NodeId(a.cache);
      default:
        return false;
    }
}

bool
StateExplorer::dfs(const DirectedTrace &shape,
                   const std::vector<AlphaOp> &alphabet,
                   std::vector<DirectedOp> &prefix, ExploreResult &res)
{
    TraceReplayer r(shape);
    for (const DirectedOp &op : prefix)
        r.step(op);
    ReplayVerdict v = r.verdict();
    ++res.statesVisited;
    if (!v.clean()) {
        res.violationFound = true;
        res.counterexample = r.recorded();
        res.counterexampleVerdict = v;
        return true;
    }
    if (prefix.size() >= bounds_.depth)
        return false;

    std::string d = r.digest();
    auto it = visited_.find(d);
    if (it != visited_.end() && it->second <= prefix.size()) {
        // Reached before with at least as much depth budget left: every
        // continuation from here was (or will be) explored from there.
        ++res.statesDeduped;
        return false;
    }
    if (it == visited_.end())
        visited_.emplace(std::move(d), unsigned(prefix.size()));
    else
        it->second = unsigned(prefix.size());

    for (const AlphaOp &a : alphabet) {
        if (!enabled(r, a))
            continue;
        DirectedOp op;
        op.cache = a.cache;
        op.kind = a.kind;
        op.addr = blockAddr(a.block);
        op.value = (a.kind == DirectedKind::Write ||
                    a.kind == DirectedKind::UnlockWrite)
                       ? writeValue(unsigned(prefix.size()), a.cache)
                       : 0;
        prefix.push_back(op);
        if (dfs(shape, alphabet, prefix, res))
            return true;
        prefix.pop_back();
    }
    return false;
}

namespace
{

/**
 * Erase op @p i, and with it its lock/unlock partner on the same cache
 * and block — removing only half a pair would leave an unlock of a
 * never-locked block, which is a program bug (panic), not a protocol
 * bug.
 */
void
erasePaired(DirectedTrace &t, std::size_t i)
{
    const DirectedOp op = t.ops[i];
    std::size_t partner = t.ops.size();
    if (op.kind == DirectedKind::LockRead) {
        for (std::size_t j = i + 1; j < t.ops.size(); ++j) {
            const DirectedOp &o = t.ops[j];
            if (o.cache == op.cache && o.addr == op.addr &&
                o.kind == DirectedKind::UnlockWrite) {
                partner = j;
                break;
            }
        }
    } else if (op.kind == DirectedKind::UnlockWrite) {
        for (std::size_t j = i; j-- > 0;) {
            const DirectedOp &o = t.ops[j];
            if (o.cache == op.cache && o.addr == op.addr &&
                o.kind == DirectedKind::LockRead) {
                partner = j;
                break;
            }
        }
    }
    if (partner < t.ops.size() && partner != i) {
        t.ops.erase(t.ops.begin() + std::max(i, partner));
        t.ops.erase(t.ops.begin() + std::min(i, partner));
    } else {
        t.ops.erase(t.ops.begin() + i);
    }
}

bool
reproduces(const DirectedTrace &t, ReplayVerdict *v)
{
    try {
        ScopedFatalThrow guard;
        ReplayVerdict rv = replayTrace(t);
        if (rv.clean())
            return false;
        if (v)
            *v = rv;
        return true;
    } catch (const FatalError &) {
        // The shrunk candidate broke a config/usage contract instead of
        // reproducing the violation.
        return false;
    }
}

} // anonymous namespace

void
StateExplorer::minimize(ExploreResult &res) const
{
    DirectedTrace best = res.counterexample;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t i = 0; i < best.ops.size() && !progress; ++i) {
            DirectedTrace cand = best;
            erasePaired(cand, i);
            ReplayVerdict v;
            if (reproduces(cand, &v)) {
                best = std::move(cand);
                res.counterexampleVerdict = v;
                progress = true;
            }
        }
    }
    res.counterexample = std::move(best);
}

ExploreResult
StateExplorer::explore(const std::string &protocol)
{
    ExploreResult res;
    res.protocol = protocol;
    res.bounds = bounds_;
    visited_.clear();
    DirectedTrace shape = shapeFor(protocol);
    std::vector<AlphaOp> alphabet = alphabetFor(protocol);
    std::vector<DirectedOp> prefix;
    dfs(shape, alphabet, prefix, res);
    if (res.violationFound) {
        minimize(res);
        res.violation = res.counterexampleVerdict.firstProblem;
    }
    return res;
}

} // namespace mc
} // namespace csync
