/**
 * @file
 * A deliberately broken protocol variant for validating the model
 * checker: a decorator that forwards every policy decision to an inner
 * protocol but *drops invalidations* on the snooper side — the classic
 * lost-invalidate coherence bug (a cache quietly keeps its stale copy
 * when another cache gains write privilege).  Registered as
 * "broken_noinval" (wrapping the Bitar proposal) so the explorer can be
 * pointed at it by name; shippedProtocols() filters "broken_" names out
 * of the production set.
 *
 * A second seeded bug, "broken_adaptive", targets the hybrid decorator's
 * update path: the snooper acknowledges a word broadcast (state change
 * and hit line) but quietly keeps its stale data — a lost update.
 */

#ifndef CSYNC_MC_BROKEN_HH
#define CSYNC_MC_BROKEN_HH

#include <memory>

#include "coherence/adaptive.hh"
#include "coherence/protocol.hh"

namespace csync
{
namespace mc
{

/**
 * Forwards to @p inner, but restores any frame the inner protocol
 * invalidated during snoop — the injected bug.
 */
class DroppedInvalidateProtocol : public Protocol
{
  public:
    explicit DroppedInvalidateProtocol(std::unique_ptr<Protocol> inner);

    std::string name() const override;
    std::string citation() const override;
    ProtocolStyle style() const override;
    bool supportsLockOps() const override;
    bool supportsWriteNoFetch() const override;
    Features features() const override;
    std::vector<State> statesUsed() const override;

    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procRmw(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procLockRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procUnlockWrite(Cache &c, Frame *f,
                               const MemOp &op) override;
    ProcAction procWriteNoFetch(Cache &c, Frame *f,
                                const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;

    bool evictNeedsWriteback(Cache &c, const Frame &f) const override;
    void onEvict(Cache &c, Frame &f) override;

    std::string snapshotState() const override;
    std::unique_ptr<Protocol> clone() const override;

  private:
    std::unique_ptr<Protocol> inner_;
};

/**
 * The adaptive decorator with a seeded lost-update bug: a snooped word
 * broadcast goes through the normal machinery (ownership handoff, hit
 * line) but the snooper's data stays stale.
 */
class StaleUpdateProtocol : public AdaptiveProtocol
{
  public:
    StaleUpdateProtocol();

    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;
    std::unique_ptr<Protocol> clone() const override;
};

} // namespace mc
} // namespace csync

#endif // CSYNC_MC_BROKEN_HH
