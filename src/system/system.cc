#include "system/system.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "fault/faulty_bus.hh"
#include "sim/parallel.hh"
#include "sim/stats_json.hh"

namespace csync
{

System::System(const SystemConfig &cfg)
    : cfg_(cfg), root_(cfg.name), checker_(&root_),
      // The watchdog's counters join the stats tree only on faulty runs
      // so clean runs keep a byte-identical stats dump; the trip state
      // itself is always live (a deadlocked clean run is still caught).
      watchdog_("watchdog", cfg.fault.watchdogWindow,
                cfg.fault.enabled() ? &root_ : nullptr)
{
    cfg_.validate();
    map_ = AddressMap(cfg_.topology);

    Checker *chk = cfg_.enableChecker ? &checker_ : nullptr;
    unsigned p = cfg_.numProcessors;
    const auto &switches = cfg_.topology.switches;
    // Per-class traffic counters exist only on multi-switch systems, so
    // the single-bus stats tree stays byte-identical to before the
    // topology layer existed.
    bool multi = switches.size() > 1;

    for (std::size_t k = 0; k < switches.size(); ++k) {
        const SwitchSpec &sw = switches[k];
        levels_.push_back(std::make_unique<CoherenceLevel>(
            sw.name, cfg_.protocol, cfg_.adaptive));
        Port port;
        port.memory = std::make_unique<Memory>(
            multi ? sw.name + ".memory" : "memory", &eq_,
            cfg_.cache.geom.blockWords, &root_);
        bool faulted = cfg_.fault.enabled() &&
                       (cfg_.fault.target.empty() ||
                        cfg_.fault.target == sw.name);
        const std::string &arb = sw.arbitration.empty() ? cfg_.arbitration
                                                        : sw.arbitration;
        if (faulted) {
            port.bus = std::make_unique<FaultyBus>(
                sw.name, &eq_, port.memory.get(), cfg_.timing, &root_,
                cfg_.fault, sw.carries, multi,
                multi ? sw.name + "." : "", arb);
        } else {
            port.bus = std::make_unique<Bus>(
                sw.name, &eq_, port.memory.get(), cfg_.timing, &root_,
                sw.carries, multi, arb);
        }

        for (unsigned i = 0; i < p; ++i) {
            auto protocol = levels_.back()->makeInstance();
            CacheConfig cc = cfg_.cache;
            if (cfg_.directoryFromProtocol)
                cc.directory = protocol->features().directory;
            port.caches.push_back(std::make_unique<Cache>(
                multi ? csprintf("%s.cache%u", sw.name.c_str(), i)
                      : csprintf("cache%u", i),
                &eq_, NodeId(i), NodeId(p + i), cc, std::move(protocol),
                port.bus.get(), chk, &root_));
        }
        // Caches first (they win supplier selection), then their
        // busy-wait registers, then I/O.
        for (auto &c : port.caches)
            port.bus->addClient(c.get());
        for (auto &c : port.caches)
            port.bus->addClient(&c->busyWaitRegister());
        ports_.push_back(std::move(port));
    }

    if (cfg_.withIODevice) {
        // I/O broadcasts ride the synchronization system (Section E.2).
        Port &sync_port = ports_[cfg_.topology.syncSwitch()];
        io_ = std::make_unique<IODevice>("io", &eq_, NodeId(2 * p),
                                         sync_port.bus.get(), chk, &root_);
        sync_port.bus->addClient(io_.get());
    }

    if (cfg_.topology.clustered())
        buildHierarchy();
}

void
System::buildHierarchy()
{
    const TopologyConfig &topo = cfg_.topology;
    unsigned p = cfg_.numProcessors;
    rootBus_ = std::make_unique<RootBusModel>(topo.rootName, &root_);
    for (unsigned c = 0; c < topo.numClusters(); ++c) {
        l2s_.push_back(std::make_unique<SharedCache>(
            topo.switches[c].name + ".l2", c, topo.clusters[c],
            ports_.size(), &root_));
    }
    for (std::size_t k = 0; k < ports_.size(); ++k)
        for (unsigned i = 0; i < p; ++i)
            l2s_[topo.clusterOfProc(i, p)]->addMember(
                k, ports_[k].caches[i].get());

    std::vector<SharedCache *> l2s;
    for (auto &l2 : l2s_)
        l2s.push_back(l2.get());
    // A root traversal costs a second arbitration plus the address
    // phase one level up; contention is not modeled beyond the home
    // bus's own serialization (see DESIGN.md).
    Tick penalty = cfg_.timing.arbCycles + cfg_.timing.addrCycles;
    for (std::size_t k = 0; k < ports_.size(); ++k) {
        auto gate = std::make_unique<ClusterGate>(
            topo.switches[k].name, k, &topo, p, l2s, rootBus_.get(),
            penalty, &root_);
        ports_[k].bus->setSnoopGate(gate.get());
        levels_[k]->setGate(std::move(gate));
    }
}

unsigned
System::addProcessor(std::unique_ptr<Workload> workload,
                     bool work_while_waiting)
{
    unsigned idx = unsigned(procs_.size());
    sim_assert(idx < ports_.front().caches.size(),
               "more processors than caches");
    std::vector<Cache *> cache_ports;
    for (auto &port : ports_)
        cache_ports.push_back(port.caches[idx].get());
    procs_.push_back(std::make_unique<Processor>(
        csprintf("proc%u", idx), &eq_, NodeId(idx),
        std::move(cache_ports), &map_, std::move(workload), &root_));
    if (work_while_waiting)
        procs_.back()->enableWorkWhileWaiting();
    return idx;
}

void
System::start()
{
    planShards();
    for (auto &p : procs_)
        p->start();
}

void
System::planShards()
{
    std::vector<const Workload *> workloads;
    workloads.reserve(procs_.size());
    for (const auto &p : procs_)
        workloads.push_back(&p->workload());
    partition_ = planDomainPartition(cfg_, map_, workloads);
    if (!partition_.active)
        return;

    // Rebinding is only legal while nothing is scheduled: every object
    // still points at eq_, and moving one after it has events in
    // flight would strand them.
    sim_assert(eq_.empty() && eq_.now() == 0,
               "domain sharding must happen before any event runs");
    sim_assert(partition_.domains == ports_.size(),
               "partition domain count mismatch");

    for (unsigned k = 1; k < partition_.domains; ++k)
        shardEqs_.push_back(std::make_unique<EventQueue>());

    // Move switch k and everything behind it onto shard k's queue;
    // shard 0 keeps eq_.
    for (unsigned k = 1; k < partition_.domains; ++k) {
        EventQueue *eq = &shardQueue(k);
        Port &port = ports_[k];
        port.memory->rebind(eq);
        port.bus->rebind(eq);
        for (auto &c : port.caches) {
            c->rebind(eq);
            c->busyWaitRegister().rebind(eq);
        }
    }

    shardProcs_.assign(partition_.domains, {});
    for (unsigned i = 0; i < procs_.size(); ++i) {
        unsigned home = partition_.procHome[i];
        if (home != 0)
            procs_[i]->rebind(&shardQueue(home));
        procs_[i]->setHomeDomain(home);
        shardProcs_[home].push_back(procs_[i].get());
    }

    if (cfg_.enableChecker)
        checker_.shardByDomain(&map_);
}

bool
System::allDone() const
{
    for (const auto &p : procs_)
        if (!p->done())
            return false;
    return true;
}

double
System::totalRetiredOps() const
{
    double retired = 0;
    for (const auto &p : procs_)
        retired += p->opsCompleted.value();
    return retired;
}

Tick
System::run(Tick max_ticks, const std::atomic<bool> *abort)
{
    if (partition_.active)
        return runParallel(max_ticks, abort);

    watchdog_.restart(eq_.now(), totalRetiredOps());
    while (!allDone() && !eq_.empty() && eq_.now() < max_ticks) {
        if (abort && abort->load(std::memory_order_relaxed))
            break;
        eq_.runSteps(4096);
        if (watchdog_.observe(eq_.now(), totalRetiredOps())) {
            watchdog_.trip(progressDiagnostic(csprintf(
                "no processor retired an operation for %llu ticks",
                (unsigned long long)watchdog_.window())));
            break;
        }
    }
    if (!watchdog_.tripped() && !allDone() && eq_.empty()) {
        // The calendar drained with workloads unfinished: a deadlock,
        // which is just livelock with zero events.
        watchdog_.trip(progressDiagnostic(
            "event queue drained with unfinished workloads"));
    }
    return eq_.now();
}

Tick
System::runParallel(Tick max_ticks, const std::atomic<bool> *abort)
{
    // run() may be called again after a pause; the checker's shards
    // were folded at the end of the previous call.
    if (cfg_.enableChecker && !checker_.sharded())
        checker_.shardByDomain(&map_);

    watchdog_.restart(eq_.now(), totalRetiredOps());

    ParallelScheduler::Options opts;
    opts.threads = cfg_.simThreads;
    opts.lookahead = conservativeLookahead(cfg_.timing);
    opts.window = std::max<Tick>(opts.lookahead, 4096);
    opts.maxTicks = max_ticks;
    opts.abort = abort;
    // The per-window hook is the forward-progress watchdog.  The
    // retirement it observes is aggregated over ALL shards by the
    // scheduler: a shard that finishes early must not look like a
    // stall, and a livelock on any one shard must still trip.
    opts.onWindow = [this](Tick now, double retired) {
        if (watchdog_.observe(now, retired)) {
            watchdog_.trip(progressDiagnostic(csprintf(
                "no processor retired an operation for %llu ticks",
                (unsigned long long)watchdog_.window())));
            return true;
        }
        return false;
    };

    std::vector<ParallelScheduler::Shard> shards;
    for (unsigned k = 0; k < partition_.domains; ++k) {
        ParallelScheduler::Shard s;
        s.eq = &shardQueue(k);
        const std::vector<Processor *> *mine = &shardProcs_[k];
        s.done = [mine] {
            for (Processor *p : *mine)
                if (!p->done())
                    return false;
            return true;
        };
        s.retired = [mine] {
            double r = 0;
            for (Processor *p : *mine)
                r += p->opsCompleted.value();
            return r;
        };
        shards.push_back(std::move(s));
    }

    ParallelScheduler sched(std::move(shards), opts);
    ParallelScheduler::Result res = sched.run();

    if (cfg_.enableChecker)
        checker_.foldShards();

    if (!watchdog_.tripped() && res.drained) {
        watchdog_.trip(progressDiagnostic(
            "event queue drained with unfinished workloads"));
    }
    return res.finalTick;
}

std::string
System::progressDiagnostic(const std::string &why) const
{
    std::ostringstream os;
    os << why << " [tick " << eq_.now() << ", " << eq_.executed()
       << " events executed]";

    bool any_msg = false;
    for (const auto &port : ports_) {
        if (!port.bus->hasLastMsg())
            continue;
        any_msg = true;
        const BusMsg &m = port.bus->lastMsg();
        os << csprintf("; last %s msg: %s blk=%llx from node %d at tick "
                       "%llu",
                       port.bus->name().c_str(), busReqName(m.req),
                       (unsigned long long)m.blockAddr, m.requester,
                       (unsigned long long)port.bus->lastMsgTick());
        os << "; block states:";
        for (const auto &c : port.caches) {
            os << csprintf(" %s=%s", c->name().c_str(),
                           stateName(c->stateOf(m.blockAddr)).c_str());
        }
    }
    if (!any_msg)
        os << "; no bus transaction was ever broadcast";

    os << "; busy-wait registers:";
    bool any_armed = false;
    for (const auto &port : ports_) {
        for (const auto &c : port.caches) {
            if (c->busyWaitArmed()) {
                any_armed = true;
                os << csprintf(" %s@%llx", c->name().c_str(),
                               (unsigned long long)
                                   c->busyWaitRegister().blockAddr());
            }
        }
    }
    if (!any_armed)
        os << " none armed";

    os << "; retired:";
    for (unsigned i = 0; i < procs_.size(); ++i) {
        os << csprintf(" proc%u=%.0f", i,
                       procs_[i]->opsCompleted.value());
    }
    return os.str();
}

void
System::dumpStats(std::ostream &os)
{
    root_.dump(os);
}

void
System::dumpStatsJson(std::ostream &os)
{
    stats::dumpJson(root_, os);
}

unsigned
System::checkStateInvariants(std::string *why)
{
    unsigned violations = 0;
    auto report = [&](const std::string &what) {
        ++violations;
        if (why && why->empty())
            *why = what;
    };

    struct Copy
    {
        const Cache *cache;
        const Frame *frame;
    };
    // Coherence is per switch: each address has exactly one backing
    // memory and one snoop domain, so copies are grouped within a port.
    for (const auto &port : ports_) {
        std::map<Addr, std::vector<Copy>> blocks;
        for (const auto &c : port.caches) {
            c->blocks().forEachValid([&](const Frame &f) {
                blocks[f.blockAddr].push_back(Copy{c.get(), &f});
            });
        }

        for (const auto &[addr, copies] : blocks) {
            unsigned writable = 0, sources = 0, locked = 0, dirty = 0;
            for (const auto &c : copies) {
                if (canWrite(c.frame->state))
                    ++writable;
                if (isSource(c.frame->state))
                    ++sources;
                if (isLocked(c.frame->state))
                    ++locked;
                if (isDirty(c.frame->state))
                    ++dirty;
            }
            if (writable > 1) {
                report(csprintf("block %llx writable in %u caches",
                                (unsigned long long)addr, writable));
            }
            if (sources > 1) {
                report(csprintf("block %llx has %u sources",
                                (unsigned long long)addr, sources));
            }
            if (locked > 1) {
                report(csprintf("block %llx locked in %u caches",
                                (unsigned long long)addr, locked));
            }
            if (writable >= 1 && copies.size() > 1) {
                report(csprintf("block %llx writable with %zu copies",
                                (unsigned long long)addr, copies.size()));
            }
            for (std::size_t i = 1; i < copies.size(); ++i) {
                if (copies[i].frame->data != copies[0].frame->data) {
                    report(csprintf("block %llx copies differ (%s vs %s)",
                                    (unsigned long long)addr,
                                    copies[0].cache->name().c_str(),
                                    copies[i].cache->name().c_str()));
                    break;
                }
            }
            if (dirty == 0 &&
                copies[0].frame->data != port.memory->peekBlock(addr)) {
                report(csprintf(
                    "block %llx clean copies differ from memory",
                    (unsigned long long)addr));
            }
        }
    }
    return violations;
}

} // namespace csync
