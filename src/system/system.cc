#include "system/system.hh"

#include <map>
#include <sstream>

#include "fault/faulty_bus.hh"
#include "sim/stats_json.hh"

namespace csync
{

System::System(const SystemConfig &cfg)
    : cfg_(cfg), root_(cfg.name), checker_(&root_),
      // The watchdog's counters join the stats tree only on faulty runs
      // so clean runs keep a byte-identical stats dump; the trip state
      // itself is always live (a deadlocked clean run is still caught).
      watchdog_("watchdog", cfg.fault.watchdogWindow,
                cfg.fault.enabled() ? &root_ : nullptr)
{
    cfg_.validate();

    memory_ = std::make_unique<Memory>("memory", &eq_,
                                       cfg_.cache.geom.blockWords, &root_);
    if (cfg_.fault.enabled()) {
        bus_ = std::make_unique<FaultyBus>("bus", &eq_, memory_.get(),
                                           cfg_.timing, &root_, cfg_.fault);
    } else {
        bus_ = std::make_unique<Bus>("bus", &eq_, memory_.get(),
                                     cfg_.timing, &root_);
    }

    Checker *chk = cfg_.enableChecker ? &checker_ : nullptr;
    unsigned p = cfg_.numProcessors;
    for (unsigned i = 0; i < p; ++i) {
        auto protocol = makeProtocol(cfg_.protocol);
        CacheConfig cc = cfg_.cache;
        if (cfg_.directoryFromProtocol)
            cc.directory = protocol->features().directory;
        caches_.push_back(std::make_unique<Cache>(
            csprintf("cache%u", i), &eq_, NodeId(i), NodeId(p + i), cc,
            std::move(protocol), bus_.get(), chk, &root_));
    }
    // Caches first (they win supplier selection), then their busy-wait
    // registers, then I/O.
    for (auto &c : caches_)
        bus_->addClient(c.get());
    for (auto &c : caches_)
        bus_->addClient(&c->busyWaitRegister());
    if (cfg_.withIODevice) {
        io_ = std::make_unique<IODevice>("io", &eq_, NodeId(2 * p),
                                         bus_.get(), chk, &root_);
        bus_->addClient(io_.get());
    }
}

unsigned
System::addProcessor(std::unique_ptr<Workload> workload,
                     bool work_while_waiting)
{
    unsigned idx = unsigned(procs_.size());
    sim_assert(idx < caches_.size(), "more processors than caches");
    procs_.push_back(std::make_unique<Processor>(
        csprintf("proc%u", idx), &eq_, NodeId(idx), caches_[idx].get(),
        std::move(workload), &root_));
    if (work_while_waiting)
        procs_.back()->enableWorkWhileWaiting();
    return idx;
}

void
System::start()
{
    for (auto &p : procs_)
        p->start();
}

bool
System::allDone() const
{
    for (const auto &p : procs_)
        if (!p->done())
            return false;
    return true;
}

double
System::totalRetiredOps() const
{
    double retired = 0;
    for (const auto &p : procs_)
        retired += p->opsCompleted.value();
    return retired;
}

Tick
System::run(Tick max_ticks)
{
    watchdog_.restart(eq_.now(), totalRetiredOps());
    while (!allDone() && !eq_.empty() && eq_.now() < max_ticks) {
        eq_.runSteps(4096);
        if (watchdog_.observe(eq_.now(), totalRetiredOps())) {
            watchdog_.trip(progressDiagnostic(csprintf(
                "no processor retired an operation for %llu ticks",
                (unsigned long long)watchdog_.window())));
            break;
        }
    }
    if (!watchdog_.tripped() && !allDone() && eq_.empty()) {
        // The calendar drained with workloads unfinished: a deadlock,
        // which is just livelock with zero events.
        watchdog_.trip(progressDiagnostic(
            "event queue drained with unfinished workloads"));
    }
    return eq_.now();
}

std::string
System::progressDiagnostic(const std::string &why) const
{
    std::ostringstream os;
    os << why << " [tick " << eq_.now() << ", " << eq_.executed()
       << " events executed]";

    if (bus_->hasLastMsg()) {
        const BusMsg &m = bus_->lastMsg();
        os << csprintf("; last bus msg: %s blk=%llx from node %d at tick "
                       "%llu",
                       busReqName(m.req), (unsigned long long)m.blockAddr,
                       m.requester,
                       (unsigned long long)bus_->lastMsgTick());
        os << "; block states:";
        for (unsigned i = 0; i < caches_.size(); ++i) {
            os << csprintf(" cache%u=%s", i,
                           stateName(caches_[i]->stateOf(m.blockAddr))
                               .c_str());
        }
    } else {
        os << "; no bus transaction was ever broadcast";
    }

    os << "; busy-wait registers:";
    bool any_armed = false;
    for (unsigned i = 0; i < caches_.size(); ++i) {
        if (caches_[i]->busyWaitArmed()) {
            any_armed = true;
            os << csprintf(" cache%u@%llx", i,
                           (unsigned long long)
                               caches_[i]->busyWaitRegister().blockAddr());
        }
    }
    if (!any_armed)
        os << " none armed";

    os << "; retired:";
    for (unsigned i = 0; i < procs_.size(); ++i) {
        os << csprintf(" proc%u=%.0f", i,
                       procs_[i]->opsCompleted.value());
    }
    return os.str();
}

void
System::dumpStats(std::ostream &os)
{
    root_.dump(os);
}

void
System::dumpStatsJson(std::ostream &os)
{
    stats::dumpJson(root_, os);
}

unsigned
System::checkStateInvariants(std::string *why)
{
    unsigned violations = 0;
    auto report = [&](const std::string &what) {
        ++violations;
        if (why && why->empty())
            *why = what;
    };

    struct Copy
    {
        unsigned cache;
        const Frame *frame;
    };
    std::map<Addr, std::vector<Copy>> blocks;
    for (unsigned i = 0; i < caches_.size(); ++i) {
        caches_[i]->blocks().forEachValid([&](const Frame &f) {
            blocks[f.blockAddr].push_back(Copy{i, &f});
        });
    }

    for (const auto &[addr, copies] : blocks) {
        unsigned writable = 0, sources = 0, locked = 0, dirty = 0;
        for (const auto &c : copies) {
            if (canWrite(c.frame->state))
                ++writable;
            if (isSource(c.frame->state))
                ++sources;
            if (isLocked(c.frame->state))
                ++locked;
            if (isDirty(c.frame->state))
                ++dirty;
        }
        if (writable > 1) {
            report(csprintf("block %llx writable in %u caches",
                            (unsigned long long)addr, writable));
        }
        if (sources > 1) {
            report(csprintf("block %llx has %u sources",
                            (unsigned long long)addr, sources));
        }
        if (locked > 1) {
            report(csprintf("block %llx locked in %u caches",
                            (unsigned long long)addr, locked));
        }
        if (writable >= 1 && copies.size() > 1) {
            report(csprintf("block %llx writable with %zu copies",
                            (unsigned long long)addr, copies.size()));
        }
        for (std::size_t i = 1; i < copies.size(); ++i) {
            if (copies[i].frame->data != copies[0].frame->data) {
                report(csprintf("block %llx copies differ (cache%u vs "
                                "cache%u)",
                                (unsigned long long)addr, copies[0].cache,
                                copies[i].cache));
                break;
            }
        }
        if (dirty == 0 &&
            copies[0].frame->data != memory_->peekBlock(addr)) {
            report(csprintf("block %llx clean copies differ from memory",
                            (unsigned long long)addr));
        }
    }
    return violations;
}

} // namespace csync
