#include "system/topology.hh"

#include <algorithm>
#include <set>

#include "sim/logging.hh"

namespace csync
{

namespace
{

/** Boundary between the sync and data partitions of the two-switch
 *  preset.  Every shipped workload keeps its synchronization structures
 *  (locks, queue descriptors, flags, barriers, I/O buffers) below
 *  16 MiB and its private/streaming data at 0x10000000 and above. */
constexpr Addr kTwoSwitchSplit = 0x0100'0000;

} // namespace

bool
TopologyConfig::isSingleBus() const
{
    return switches.size() == 1;
}

TopologyConfig
TopologyConfig::singleBus()
{
    return TopologyConfig{};
}

TopologyConfig
TopologyConfig::twoSwitch()
{
    TopologyConfig t;
    t.preset = "two_switch";
    t.switches = {
        {"sync_bus", trafficClassBit(TrafficClass::Sync),
         {{0, kTwoSwitchSplit}}, ""},
        {"data_switch", trafficClassBit(TrafficClass::Data),
         {{kTwoSwitchSplit, 0}}, ""},
    };
    return t;
}

bool
TopologyConfig::fromName(const std::string &name, TopologyConfig *out)
{
    if (name == "single_bus") {
        *out = singleBus();
        return true;
    }
    if (name == "two_switch") {
        *out = twoSwitch();
        return true;
    }
    return false;
}

const std::vector<std::string> &
TopologyConfig::names()
{
    static const std::vector<std::string> presets = {
        "single_bus",
        "two_switch",
    };
    return presets;
}

bool
TopologyConfig::check(std::string *err) const
{
    auto fail = [err](std::string msg) {
        if (err)
            *err = std::move(msg);
        return false;
    };

    if (switches.empty())
        return fail("topology needs at least one switch");

    std::set<std::string> seen;
    unsigned carried = 0;
    for (const auto &sw : switches) {
        if (sw.name.empty())
            return fail("every switch needs a name");
        if (!seen.insert(sw.name).second)
            return fail(csprintf("duplicate switch name '%s'",
                                 sw.name.c_str()));
        if (sw.carries == 0 || (sw.carries & ~kAllTraffic) != 0) {
            return fail(csprintf("switch '%s' has a bad carries mask %#x",
                                 sw.name.c_str(), sw.carries));
        }
        carried |= sw.carries;
        if (sw.ranges.empty())
            return fail(csprintf("switch '%s' covers no addresses",
                                 sw.name.c_str()));
        for (const auto &r : sw.ranges) {
            if (r.hi != 0 && r.hi <= r.lo) {
                return fail(csprintf("switch '%s' has an empty range "
                                     "[%#llx, %#llx)",
                                     sw.name.c_str(),
                                     (unsigned long long)r.lo,
                                     (unsigned long long)r.hi));
            }
        }
    }
    if (carried != kAllTraffic)
        return fail("no switch carries the data or sync traffic class");

    // The address map must tile the whole space: sort every range and
    // demand seamless coverage from 0 to the end.
    struct Piece
    {
        Addr lo;
        Addr hi;
        const char *name;
    };
    std::vector<Piece> pieces;
    for (const auto &sw : switches)
        for (const auto &r : sw.ranges)
            pieces.push_back({r.lo, r.hi, sw.name.c_str()});
    std::sort(pieces.begin(), pieces.end(),
              [](const Piece &a, const Piece &b) { return a.lo < b.lo; });

    if (pieces.front().lo != 0) {
        return fail(csprintf("address map leaves a gap below %#llx",
                             (unsigned long long)pieces.front().lo));
    }
    for (std::size_t i = 1; i < pieces.size(); ++i) {
        Addr prev_hi = pieces[i - 1].hi;
        if (prev_hi == 0 || pieces[i].lo < prev_hi) {
            return fail(csprintf("switches '%s' and '%s' overlap at %#llx",
                                 pieces[i - 1].name, pieces[i].name,
                                 (unsigned long long)pieces[i].lo));
        }
        if (pieces[i].lo > prev_hi) {
            return fail(csprintf("address map leaves a gap at [%#llx, "
                                 "%#llx)",
                                 (unsigned long long)prev_hi,
                                 (unsigned long long)pieces[i].lo));
        }
    }
    if (pieces.back().hi != 0) {
        return fail(csprintf("address map leaves a gap above %#llx",
                             (unsigned long long)pieces.back().hi));
    }
    return true;
}

void
TopologyConfig::validate() const
{
    std::string err;
    if (!check(&err))
        fatal("invalid topology '%s': %s", preset.c_str(), err.c_str());
}

std::size_t
TopologyConfig::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < switches.size(); ++i)
        if (switches[i].name == name)
            return i;
    return switches.size();
}

std::size_t
TopologyConfig::syncSwitch() const
{
    for (std::size_t i = 0; i < switches.size(); ++i)
        if (switches[i].carries & trafficClassBit(TrafficClass::Sync))
            return i;
    return 0;
}

AddressMap::AddressMap(const TopologyConfig &topo)
{
    entries_.clear();
    numSwitches_ = topo.switches.size();
    for (std::size_t i = 0; i < topo.switches.size(); ++i)
        for (const auto &r : topo.switches[i].ranges)
            entries_.push_back({r.lo, i});
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry &a, const Entry &b) { return a.lo < b.lo; });
    sim_assert(!entries_.empty() && entries_.front().lo == 0,
               "address map built from an unvalidated topology");
}

std::size_t
AddressMap::switchFor(Addr addr) const
{
    // Last entry whose start is at or below addr; the ranges tile the
    // space, so it owns the address.
    std::size_t lo = 0, hi = entries_.size();
    while (hi - lo > 1) {
        std::size_t mid = lo + (hi - lo) / 2;
        if (entries_[mid].lo <= addr)
            lo = mid;
        else
            hi = mid;
    }
    return entries_[lo].switchIdx;
}

} // namespace csync
