#include "system/topology.hh"

#include <algorithm>
#include <set>

#include "sim/logging.hh"

namespace csync
{

namespace
{

/** Boundary between the sync and data partitions of the two-switch
 *  preset.  Every shipped workload keeps its synchronization structures
 *  (locks, queue descriptors, flags, barriers, I/O buffers) below
 *  16 MiB and its private/streaming data at 0x10000000 and above. */
constexpr Addr kTwoSwitchSplit = 0x0100'0000;

/** Address stride of one cluster of the clustered presets: cluster k
 *  owns [k * 256 MiB, (k+1) * 256 MiB), the last one to the end of the
 *  space.  The shipped workloads' low sync region lands in cluster 0
 *  and the 0x10000000 streaming region in cluster 1, mirroring the
 *  two_switch split one level up. */
constexpr Addr kClusterStride = 0x1000'0000;

} // namespace

bool
TopologyConfig::isSingleBus() const
{
    return switches.size() == 1;
}

TopologyConfig
TopologyConfig::singleBus()
{
    return TopologyConfig{};
}

TopologyConfig
TopologyConfig::twoSwitch()
{
    TopologyConfig t;
    t.preset = "two_switch";
    t.switches = {
        {"sync_bus", trafficClassBit(TrafficClass::Sync),
         {{0, kTwoSwitchSplit}}, ""},
        {"data_switch", trafficClassBit(TrafficClass::Data),
         {{kTwoSwitchSplit, 0}}, ""},
    };
    return t;
}

TopologyConfig
TopologyConfig::clusteredPreset(unsigned n_clusters, bool snoop_filter,
                                bool inclusive)
{
    sim_assert(n_clusters >= 2, "a clustered topology needs >= 2 clusters");
    TopologyConfig t;
    t.switches.clear();
    for (unsigned k = 0; k < n_clusters; ++k) {
        Addr lo = Addr(k) * kClusterStride;
        Addr hi = k + 1 == n_clusters ? 0 : Addr(k + 1) * kClusterStride;
        t.switches.push_back(
            {csprintf("cluster%u", k), kAllTraffic, {{lo, hi}}, ""});
        t.clusters.push_back({inclusive, snoop_filter});
    }
    return t;
}

unsigned
TopologyConfig::clusterOfProc(unsigned proc, unsigned num_procs) const
{
    sim_assert(clustered() && proc < num_procs,
               "clusterOfProc on a flat topology or bad index");
    return unsigned((std::uint64_t(proc) * clusters.size()) / num_procs);
}

bool
TopologyConfig::fromName(const std::string &name, TopologyConfig *out)
{
    if (name == "single_bus") {
        *out = singleBus();
        return true;
    }
    if (name == "two_switch") {
        *out = twoSwitch();
        return true;
    }
    // The clustered presets: NxM names the canonical shape (N cluster
    // buses, M processors each); the processor axis still decides the
    // actual count, assigned to clusters in contiguous blocks.
    unsigned n = 0;
    bool filter = true;
    if (name == "clustered_2x1") {
        n = 2; // The model checker's minimal 2-cluster machine.
    } else if (name == "clustered_2x4") {
        n = 2;
    } else if (name == "clustered_4x2") {
        n = 4;
    } else if (name == "clustered_4x2_nofilter") {
        n = 4;
        filter = false; // Ablation: every transaction crosses the root.
    } else {
        return false;
    }
    *out = clusteredPreset(n, filter);
    out->preset = name;
    return true;
}

const std::vector<std::string> &
TopologyConfig::names()
{
    static const std::vector<std::string> presets = {
        "single_bus",     "two_switch",           "clustered_2x1",
        "clustered_2x4",  "clustered_4x2",        "clustered_4x2_nofilter",
    };
    return presets;
}

bool
TopologyConfig::check(std::string *err) const
{
    auto fail = [err](std::string msg) {
        if (err)
            *err = std::move(msg);
        return false;
    };

    if (switches.empty())
        return fail("topology needs at least one switch");

    std::set<std::string> seen;
    unsigned carried = 0;
    for (const auto &sw : switches) {
        if (sw.name.empty())
            return fail("every switch needs a name");
        if (!seen.insert(sw.name).second)
            return fail(csprintf("duplicate switch name '%s'",
                                 sw.name.c_str()));
        if (sw.carries == 0 || (sw.carries & ~kAllTraffic) != 0) {
            return fail(csprintf("switch '%s' has a bad carries mask %#x",
                                 sw.name.c_str(), sw.carries));
        }
        carried |= sw.carries;
        if (sw.ranges.empty())
            return fail(csprintf("switch '%s' covers no addresses",
                                 sw.name.c_str()));
        for (const auto &r : sw.ranges) {
            if (r.hi != 0 && r.hi <= r.lo) {
                return fail(csprintf("switch '%s' has an empty range "
                                     "[%#llx, %#llx)",
                                     sw.name.c_str(),
                                     (unsigned long long)r.lo,
                                     (unsigned long long)r.hi));
            }
        }
    }
    if (carried != kAllTraffic)
        return fail("no switch carries the data or sync traffic class");

    // The address map must tile the whole space: sort every range and
    // demand seamless coverage from 0 to the end.
    struct Piece
    {
        Addr lo;
        Addr hi;
        const char *name;
    };
    std::vector<Piece> pieces;
    for (const auto &sw : switches)
        for (const auto &r : sw.ranges)
            pieces.push_back({r.lo, r.hi, sw.name.c_str()});
    std::sort(pieces.begin(), pieces.end(),
              [](const Piece &a, const Piece &b) { return a.lo < b.lo; });

    if (pieces.front().lo != 0) {
        return fail(csprintf("address map leaves a gap below %#llx",
                             (unsigned long long)pieces.front().lo));
    }
    for (std::size_t i = 1; i < pieces.size(); ++i) {
        Addr prev_hi = pieces[i - 1].hi;
        if (prev_hi == 0 || pieces[i].lo < prev_hi) {
            return fail(csprintf("switches '%s' and '%s' overlap at %#llx",
                                 pieces[i - 1].name, pieces[i].name,
                                 (unsigned long long)pieces[i].lo));
        }
        if (pieces[i].lo > prev_hi) {
            return fail(csprintf("address map leaves a gap at [%#llx, "
                                 "%#llx)",
                                 (unsigned long long)prev_hi,
                                 (unsigned long long)pieces[i].lo));
        }
    }
    if (pieces.back().hi != 0) {
        return fail(csprintf("address map leaves a gap above %#llx",
                             (unsigned long long)pieces.back().hi));
    }

    // Hierarchy metadata: cluster k is switch k, so the lists must
    // pair up, and the root bus needs a stat namespace of its own.
    if (!clusters.empty()) {
        if (clusters.size() != switches.size()) {
            return fail(csprintf("%zu clusters for %zu switches (cluster "
                                 "k must be switch k)",
                                 clusters.size(), switches.size()));
        }
        if (clusters.size() < 2)
            return fail("a clustered topology needs at least 2 clusters");
        if (rootName.empty())
            return fail("a clustered topology needs a root bus name");
        if (indexOf(rootName) != switches.size()) {
            return fail(csprintf("root bus name '%s' collides with a "
                                 "switch",
                                 rootName.c_str()));
        }
    }
    return true;
}

void
TopologyConfig::validate() const
{
    std::string err;
    if (!check(&err))
        fatal("invalid topology '%s': %s", preset.c_str(), err.c_str());
}

std::size_t
TopologyConfig::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < switches.size(); ++i)
        if (switches[i].name == name)
            return i;
    return switches.size();
}

std::size_t
TopologyConfig::syncSwitch() const
{
    for (std::size_t i = 0; i < switches.size(); ++i)
        if (switches[i].carries & trafficClassBit(TrafficClass::Sync))
            return i;
    return 0;
}

AddressMap::AddressMap(const TopologyConfig &topo)
{
    entries_.clear();
    numSwitches_ = topo.switches.size();
    for (std::size_t i = 0; i < topo.switches.size(); ++i)
        for (const auto &r : topo.switches[i].ranges)
            entries_.push_back({r.lo, i});
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry &a, const Entry &b) { return a.lo < b.lo; });
    sim_assert(!entries_.empty() && entries_.front().lo == 0,
               "address map built from an unvalidated topology");
}

std::size_t
AddressMap::switchFor(Addr addr) const
{
    // Last entry whose start is at or below addr; the ranges tile the
    // space, so it owns the address.
    std::size_t lo = 0, hi = entries_.size();
    while (hi - lo > 1) {
        std::size_t mid = lo + (hi - lo) / 2;
        if (entries_[mid].lo <= addr)
            lo = mid;
        else
            hi = mid;
    }
    return entries_[lo].switchIdx;
}

} // namespace csync
