/**
 * @file
 * Directed scenario engine for reproducing Figures 1-9: drive individual
 * operations on specific caches, run the event loop to quiescence, and
 * capture the simulator's own narration (trace lines) plus state/stat
 * observations.  The narration printed by the figure benches is the
 * narration the simulator actually executed.
 */

#ifndef CSYNC_SYSTEM_SCENARIO_HH
#define CSYNC_SYSTEM_SCENARIO_HH

#include <memory>
#include <string>
#include <vector>

#include "system/system.hh"

namespace csync
{

/**
 * A small system plus facilities for step-by-step directed runs.
 */
class Scenario
{
  public:
    /** Scenario options. */
    struct Options
    {
        std::string protocol = "bitar";
        unsigned processors = 3;
        unsigned blockWords = 4;
        unsigned frames = 16;
        unsigned ways = 0;       // fully associative
        BusTiming timing{};
        bool enableChecker = true;
        bool collectTrace = true;
    };

    explicit Scenario(const Options &opts);
    ~Scenario();

    System &system() { return *sys_; }
    Cache &cache(unsigned p) { return sys_->cache(p); }

    /**
     * Issue @p op on processor @p p and run to quiescence; fatal if the
     * op does not complete (use tryRun for busy-wait scenarios).
     */
    AccessResult run(unsigned p, const MemOp &op);

    /**
     * Issue @p op on processor @p p and run to quiescence.
     * @return true if the op completed (result in *out); false if it is
     *         still pending (busy-waiting on a lock).
     */
    bool tryRun(unsigned p, const MemOp &op, AccessResult *out = nullptr);

    /** Check whether an earlier pending op on @p p has completed. */
    bool pendingCompleted(unsigned p, AccessResult *out = nullptr);

    /** Run the event loop until it drains. */
    void settle();

    /** Cache state of processor @p p for @p addr. */
    State state(unsigned p, Addr addr) { return cache(p).stateOf(addr); }

    /** Captured narration. */
    const std::vector<std::string> &log() const { return log_; }
    void clearLog() { log_.clear(); }

    /** Insert a narration line of our own. */
    void note(const std::string &line);

  private:
    struct PendingOp
    {
        bool issued = false;
        bool completed = false;
        AccessResult result;
    };

    std::unique_ptr<System> sys_;
    std::vector<PendingOp> pending_;
    std::vector<std::string> log_;
};

} // namespace csync

#endif // CSYNC_SYSTEM_SCENARIO_HH
