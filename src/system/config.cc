#include "system/config.hh"

#include "coherence/protocol.hh"
#include "sim/logging.hh"

namespace csync
{

void
SystemConfig::validate() const
{
    if (numProcessors == 0)
        fatal("system needs at least one processor");
    if (numProcessors > kMaxProcessors) {
        fatal("%u processors exceed the single-bus limit of %u",
              numProcessors, kMaxProcessors);
    }
    if (cache.geom.frames == 0)
        fatal("cache needs at least one frame");
    if (cache.geom.blockWords == 0 ||
        (cache.geom.blockWords & (cache.geom.blockWords - 1)) != 0) {
        fatal("block words must be a nonzero power of two");
    }
    if (cache.geom.blockWords > kMaxBlockWords) {
        fatal("block size of %u words is absurd (limit %u)",
              cache.geom.blockWords, kMaxBlockWords);
    }
    if (cache.geom.ways != 0 && cache.geom.frames % cache.geom.ways != 0)
        fatal("frames must be a multiple of associativity");
    if (cache.geom.transferWords != 0 &&
        (cache.geom.blockWords % cache.geom.transferWords != 0)) {
        fatal("transfer unit must divide the block size");
    }
    if (protocol.empty())
        fatal("no protocol selected");
    bool known = false;
    for (const auto &name : ProtocolRegistry::names())
        known = known || name == protocol;
    if (!known)
        fatal("unknown protocol '%s'", protocol.c_str());
    topology.validate();
    fault.validate();
    if (!fault.target.empty() &&
        topology.indexOf(fault.target) >= topology.switches.size()) {
        fatal("fault target '%s' names no switch of topology '%s'",
              fault.target.c_str(), topology.preset.c_str());
    }
}

} // namespace csync
