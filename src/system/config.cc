#include "system/config.hh"

#include "coherence/protocol.hh"
#include "mem/arbitration.hh"
#include "sim/logging.hh"

namespace csync
{

void
SystemConfig::validate() const
{
    if (numProcessors == 0)
        fatal("system needs at least one processor");
    if (numProcessors > kMaxProcessors) {
        fatal("%u processors exceed the single-bus limit of %u",
              numProcessors, kMaxProcessors);
    }
    if (cache.geom.frames == 0)
        fatal("cache needs at least one frame");
    if (cache.geom.blockWords == 0 ||
        (cache.geom.blockWords & (cache.geom.blockWords - 1)) != 0) {
        fatal("block words must be a nonzero power of two");
    }
    if (cache.geom.blockWords > kMaxBlockWords) {
        fatal("block size of %u words is absurd (limit %u)",
              cache.geom.blockWords, kMaxBlockWords);
    }
    if (cache.geom.ways != 0 && cache.geom.frames % cache.geom.ways != 0)
        fatal("frames must be a multiple of associativity");
    if (cache.geom.transferWords != 0 &&
        (cache.geom.blockWords % cache.geom.transferWords != 0)) {
        fatal("transfer unit must divide the block size");
    }
    if (protocol.empty())
        fatal("no protocol selected");
    bool known = false;
    for (const auto &name : ProtocolRegistry::names())
        known = known || name == protocol;
    if (!known)
        fatal("unknown protocol '%s'", protocol.c_str());
    if (arbitration.empty())
        fatal("no arbitration policy selected");
    if (!ArbitrationRegistry::known(arbitration)) {
        std::string policies;
        for (const auto &name : ArbitrationRegistry::names())
            policies += std::string(policies.empty() ? "" : ", ") + name;
        fatal("unknown arbitration '%s' (known: %s)",
              arbitration.c_str(), policies.c_str());
    }
    for (const auto &sw : topology.switches) {
        if (!sw.arbitration.empty() &&
            !ArbitrationRegistry::known(sw.arbitration)) {
            fatal("unknown arbitration '%s' on switch '%s'",
                  sw.arbitration.c_str(), sw.name.c_str());
        }
    }
    if (adaptive.counterBits < 1 || adaptive.counterBits > 8) {
        fatal("adaptive counter width of %u bits is outside 1..8",
              adaptive.counterBits);
    }
    if (adaptive.invalidateThreshold > adaptive.counterMax()) {
        fatal("adaptive invalidate threshold %u exceeds what a %u-bit "
              "counter can reach (%u)",
              adaptive.invalidateThreshold, adaptive.counterBits,
              adaptive.counterMax());
    }
    if (adaptive.updateThreshold > adaptive.counterMax()) {
        fatal("adaptive update threshold %u exceeds what a %u-bit "
              "counter can reach (%u)",
              adaptive.updateThreshold, adaptive.counterBits,
              adaptive.counterMax());
    }
    if (simThreads == 0 || simThreads > kMaxSimThreads) {
        fatal("sim threads of %u is outside 1..%u", simThreads,
              kMaxSimThreads);
    }
    topology.validate();
    fault.validate();
    if (!fault.target.empty() &&
        topology.indexOf(fault.target) >= topology.switches.size()) {
        fatal("fault target '%s' names no switch of topology '%s'",
              fault.target.c_str(), topology.preset.c_str());
    }
}

} // namespace csync
