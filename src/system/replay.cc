#include "system/replay.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace csync
{

namespace
{

struct KindName
{
    DirectedKind kind;
    const char *name;
};

const KindName kKindNames[] = {
    {DirectedKind::Read, "read"},
    {DirectedKind::Write, "write"},
    {DirectedKind::Rmw, "rmw"},
    {DirectedKind::LockRead, "lock_read"},
    {DirectedKind::UnlockWrite, "unlock_write"},
    {DirectedKind::WriteNoFetch, "write_no_fetch"},
    {DirectedKind::Evict, "evict"},
};

} // anonymous namespace

const char *
directedKindName(DirectedKind k)
{
    for (const auto &kn : kKindNames)
        if (kn.kind == k)
            return kn.name;
    return "?";
}

bool
directedKindFromName(const std::string &name, DirectedKind *out)
{
    for (const auto &kn : kKindNames) {
        if (name == kn.name) {
            *out = kn.kind;
            return true;
        }
    }
    return false;
}

SystemConfig
DirectedTrace::toConfig() const
{
    SystemConfig cfg;
    cfg.name = "system";
    cfg.protocol = protocol;
    cfg.numProcessors = processors;
    cfg.cache.geom.frames = frames;
    cfg.cache.geom.ways = ways;
    cfg.cache.geom.blockWords = blockWords;
    cfg.cache.useBusyWaitRegister = useBusyWaitRegister;
    cfg.cache.busyWaitPriority = busyWaitPriority;
    cfg.adaptive.counterBits = adaptiveBits;
    cfg.adaptive.invalidateThreshold = adaptiveInvalidateThreshold;
    cfg.adaptive.updateThreshold = adaptiveUpdateThreshold;
    if (!TopologyConfig::fromName(topology, &cfg.topology))
        fatal("trace names unknown topology '%s'", topology.c_str());
    cfg.enableChecker = true;
    return cfg;
}

std::string
ReplayVerdict::describe() const
{
    if (clean())
        return "clean";
    std::string s;
    auto add = [&s](const std::string &part) {
        s += (s.empty() ? "" : ", ") + part;
    };
    if (checkerViolations)
        add(csprintf("%llu checker violation(s)",
                     (unsigned long long)checkerViolations));
    if (invariantViolations)
        add(csprintf("%u structural violation(s)", invariantViolations));
    if (stalled)
        add("stalled");
    if (waiterStuck)
        add("lost wakeup");
    return s;
}

TraceReplayer::TraceReplayer(const DirectedTrace &shape)
    : shape_(shape), recorded_(shape)
{
    recorded_.ops.clear();
    SystemConfig cfg = shape_.toConfig();
    cfg.validate();
    sys_ = std::make_unique<System>(cfg);
    slots_.resize(shape_.processors);
}

Addr
TraceReplayer::fillerAddr(Addr block_addr) const
{
    Addr block_bytes = Addr(shape_.blockWords) * bytesPerWord;
    // One whole cache "turn" away: same set index in a direct-mapped
    // cache, so fetching it displaces the target block.
    return (block_addr & ~(block_bytes - 1)) +
           Addr(shape_.frames) * block_bytes;
}

void
TraceReplayer::noteBlock(Addr block_addr)
{
    Addr b = sys_->memory().blockAlign(block_addr);
    auto it = std::lower_bound(blocks_.begin(), blocks_.end(), b);
    if (it == blocks_.end() || *it != b)
        blocks_.insert(it, b);
}

void
TraceReplayer::refresh(unsigned cache)
{
    Slot &slot = slots_.at(cache);
    if (slot.issued && slot.completed)
        slot.issued = false;
}

bool
TraceReplayer::busy(unsigned cache)
{
    refresh(cache);
    return slots_.at(cache).issued;
}

bool
TraceReplayer::pendingCompleted(unsigned cache, Word *value)
{
    const Slot &slot = slots_.at(cache);
    if (slot.completed && value)
        *value = slot.result.value;
    return slot.completed;
}

bool
TraceReplayer::settle()
{
    EventQueue &eq = sys_->eventq();
    eq.run(eq.now() + kSettleBudget);
    if (!eq.empty())
        stalled_ = true;
    return !stalled_;
}

OpOutcome
TraceReplayer::step(const DirectedOp &op)
{
    recorded_.ops.push_back(op);
    OpOutcome out;
    sim_assert(op.cache < sys_->numCaches(),
               "trace op on cache %u of %u", op.cache, sys_->numCaches());

    noteBlock(op.addr);

    if (stalled_ || busy(op.cache)) {
        ++skipped_;
        return out;
    }

    // Lock discipline: unlocking a block the cache does not hold (or
    // re-locking one it does) is a *program* bug the cache treats as
    // fatal, not a protocol bug.  Skip such ops so arbitrary (fuzzed or
    // hand-written) traces stay safe to replay.
    Addr blk = sys_->memory().blockAlign(op.addr);
    NodeId holder = sys_->checker().lockHolder(blk);
    if (op.kind == DirectedKind::UnlockWrite && holder != NodeId(op.cache)) {
        ++skipped_;
        return out;
    }
    if (op.kind == DirectedKind::LockRead && holder == NodeId(op.cache)) {
        ++skipped_;
        return out;
    }

    MemOp mop;
    mop.addr = op.addr;
    mop.value = op.value;
    switch (op.kind) {
      case DirectedKind::Read:         mop.type = OpType::Read; break;
      case DirectedKind::Write:        mop.type = OpType::Write; break;
      case DirectedKind::Rmw:          mop.type = OpType::Rmw; break;
      case DirectedKind::LockRead:     mop.type = OpType::LockRead; break;
      case DirectedKind::UnlockWrite:  mop.type = OpType::UnlockWrite; break;
      case DirectedKind::WriteNoFetch:
        mop.type = OpType::WriteNoFetch;
        break;
      case DirectedKind::Evict:
        // Displace the block through the real eviction path by reading
        // the conflicting filler block.
        sim_assert(shape_.ways == 1,
                   "evict ops need a direct-mapped trace shape");
        mop.type = OpType::Read;
        mop.addr = fillerAddr(op.addr);
        mop.value = 0;
        noteBlock(mop.addr);
        break;
    }

    Slot &slot = slots_.at(op.cache);
    slot.issued = true;
    slot.completed = false;
    // Issue through the cache port on the switch that homes the
    // address, the way a Processor would (on the single bus, port 0).
    unsigned home = unsigned(sys_->addressMap().switchFor(mop.addr));
    sys_->cache(op.cache, home).access(mop,
                                       [&slot](const AccessResult &r) {
        slot.completed = true;
        slot.result = r;
    });
    settle();

    out.issued = true;
    out.completed = slot.completed;
    out.pending = !slot.completed;
    if (slot.completed) {
        out.value = slot.result.value;
        slot.issued = false;
    }
    return out;
}

ReplayVerdict
TraceReplayer::verdict()
{
    settle();
    ReplayVerdict v;
    v.skippedOps = skipped_;
    v.stalled = stalled_;
    v.checkerViolations = sys_->checker().violations();
    std::string why;
    v.invariantViolations = sys_->checkStateInvariants(&why);

    std::string stuck;
    if (!stalled_) {
        // Lock-waiter liveness: at quiescence an armed busy-wait
        // register must be waiting on a lock somebody still holds —
        // otherwise the wakeup was lost and the waiter spins forever.
        for (unsigned i = 0; i < sys_->numCaches(); ++i) {
            Cache &c = sys_->cache(i);
            if (!c.busyWaitArmed())
                continue;
            Addr blk = c.busyWaitAddr();
            if (sys_->checker().lockHolder(blk) == invalidNode &&
                !sys_->memory().memLocked(blk)) {
                v.waiterStuck = true;
                if (stuck.empty()) {
                    stuck = csprintf(
                        "lost wakeup: cache%u busy-waits on blk=%llx "
                        "with no live lock holder",
                        i, (unsigned long long)blk);
                }
            }
        }
    }

    if (v.checkerViolations)
        v.firstProblem = sys_->checker().firstViolation();
    else if (v.invariantViolations)
        v.firstProblem = why;
    else if (v.stalled)
        v.firstProblem = csprintf(
            "stalled: event queue failed to drain within %llu ticks",
            (unsigned long long)kSettleBudget);
    else if (v.waiterStuck)
        v.firstProblem = stuck;
    return v;
}

std::string
TraceReplayer::digest()
{
    std::string d;
    for (unsigned i = 0; i < sys_->numCaches(); ++i) {
        Cache &c = sys_->cache(i);
        d += csprintf("c%u[", i);
        for (Addr b : blocks_) {
            const Frame *f = c.peekFrame(b);
            if (!f || !f->valid())
                continue;
            d += csprintf("%llx:%u:", (unsigned long long)b,
                          unsigned(f->state));
            for (Word w : f->data)
                d += csprintf("%llx,", (unsigned long long)w);
            d += ";";
        }
        d += "]";
        if (c.busyWaitArmed()) {
            d += csprintf("bw=%llx",
                          (unsigned long long)c.busyWaitAddr());
        }
        // The digest walks every cache *port* (numCaches is processors
        // x switches); the replayer's issue slots are per processor, so
        // only the first port block consults them.
        if (i < shape_.processors && busy(i))
            d += "busy";
        for (Addr b : blocks_) {
            if (c.holdsPurgedLock(b))
                d += csprintf("pl=%llx", (unsigned long long)b);
        }
        d += "{";
        d += c.protocol().snapshotState();
        d += "}";
    }
    d += "m[";
    for (Addr b : blocks_) {
        d += csprintf("%llx:", (unsigned long long)b);
        for (Word w : sys_->memory().peekBlock(b))
            d += csprintf("%llx,", (unsigned long long)w);
        if (sys_->memory().cacheOwned(b))
            d += "o";
        if (sys_->memory().memLocked(b)) {
            d += csprintf("L%d", sys_->memory().memLockHolder(b));
            if (sys_->memory().memWaiter(b))
                d += "w";
        }
        d += ";";
    }
    d += "]k[";
    for (Addr b : blocks_) {
        for (unsigned w = 0; w < shape_.blockWords; ++w) {
            Addr wa = b + Addr(w) * bytesPerWord;
            d += csprintf("%llx,",
                          (unsigned long long)
                              sys_->checker().expectedValue(wa));
        }
        d += csprintf("h%d;", sys_->checker().lockHolder(b));
    }
    d += "]";
    // Inclusive L2 tags are architectural on clustered machines: they
    // steer future snoop forwarding, so two states that differ only in
    // tag residency are not interchangeable for further exploration.
    if (sys_->numSharedCaches()) {
        d += "l2[";
        for (unsigned c = 0; c < sys_->numSharedCaches(); ++c) {
            d += csprintf("%u:", c);
            for (Addr b : blocks_) {
                std::size_t home = sys_->addressMap().switchFor(b);
                if (sys_->sharedCache(c).tagPresent(home, b))
                    d += csprintf("%llx,", (unsigned long long)b);
            }
            d += ";";
        }
        d += "]";
    }
    return d;
}

ReplayVerdict
replayTrace(const DirectedTrace &trace)
{
    TraceReplayer r(trace);
    for (const DirectedOp &op : trace.ops)
        r.step(op);
    return r.verdict();
}

harness::Json
traceToJson(const DirectedTrace &t)
{
    harness::Json j = harness::Json::object();
    j.set("protocol", t.protocol);
    j.set("processors", t.processors);
    j.set("block_words", t.blockWords);
    j.set("frames", t.frames);
    j.set("ways", t.ways);
    j.set("busy_wait_register", t.useBusyWaitRegister);
    j.set("busy_wait_priority", t.busyWaitPriority);
    // Adaptive tuning rides along only when non-default, keeping every
    // pre-existing trace (and the committed golden) byte-identical.
    if (t.adaptiveBits != 2)
        j.set("adaptive_bits", t.adaptiveBits);
    if (t.adaptiveInvalidateThreshold != 2)
        j.set("adaptive_invalidate_threshold", t.adaptiveInvalidateThreshold);
    if (t.adaptiveUpdateThreshold != 2)
        j.set("adaptive_update_threshold", t.adaptiveUpdateThreshold);
    if (t.topology != "single_bus")
        j.set("topology", t.topology);
    harness::Json ops = harness::Json::array();
    for (const DirectedOp &op : t.ops) {
        harness::Json o = harness::Json::object();
        o.set("cache", op.cache);
        o.set("op", directedKindName(op.kind));
        o.set("addr", csprintf("0x%llx", (unsigned long long)op.addr));
        o.set("value", std::uint64_t(op.value));
        ops.push(std::move(o));
    }
    j.set("ops", std::move(ops));
    return j;
}

namespace
{

bool
parseAddr(const harness::Json &j, Addr *out)
{
    if (j.isNumber()) {
        *out = Addr(j.asNumber());
        return true;
    }
    if (j.isString()) {
        const std::string &s = j.asString();
        char *end = nullptr;
        unsigned long long v = std::strtoull(s.c_str(), &end, 0);
        if (end && *end == '\0' && !s.empty()) {
            *out = Addr(v);
            return true;
        }
    }
    return false;
}

} // anonymous namespace

bool
traceFromJson(const harness::Json &j, DirectedTrace *out, std::string *err)
{
    auto fail = [err](const std::string &what) {
        if (err)
            *err = what;
        return false;
    };
    if (!j.isObject())
        return fail("trace: not a JSON object");
    DirectedTrace t;
    if (!j["protocol"].isString())
        return fail("trace: missing protocol");
    t.protocol = j["protocol"].asString();
    t.processors = unsigned(j["processors"].asNumber(2));
    t.blockWords = unsigned(j["block_words"].asNumber(4));
    t.frames = unsigned(j["frames"].asNumber(4));
    t.ways = unsigned(j["ways"].asNumber(1));
    t.useBusyWaitRegister = j["busy_wait_register"].asBool(true);
    t.busyWaitPriority = j["busy_wait_priority"].asBool(true);
    t.adaptiveBits = unsigned(j["adaptive_bits"].asNumber(2));
    t.adaptiveInvalidateThreshold =
        unsigned(j["adaptive_invalidate_threshold"].asNumber(2));
    t.adaptiveUpdateThreshold =
        unsigned(j["adaptive_update_threshold"].asNumber(2));
    if (j["topology"].isString())
        t.topology = j["topology"].asString();
    const harness::Json &ops = j["ops"];
    if (!ops.isArray())
        return fail("trace: missing ops array");
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const harness::Json &o = ops.at(i);
        DirectedOp op;
        op.cache = unsigned(o["cache"].asNumber(0));
        if (!o["op"].isString() ||
            !directedKindFromName(o["op"].asString(), &op.kind)) {
            return fail(csprintf("trace: op %zu: bad kind", i));
        }
        if (!parseAddr(o["addr"], &op.addr))
            return fail(csprintf("trace: op %zu: bad addr", i));
        op.value = Word(o["value"].asNumber(0));
        if (op.cache >= t.processors)
            return fail(csprintf("trace: op %zu: cache out of range", i));
        t.ops.push_back(op);
    }
    *out = std::move(t);
    return true;
}

harness::Json
verdictToJson(const ReplayVerdict &v)
{
    harness::Json j = harness::Json::object();
    j.set("clean", v.clean());
    j.set("checker_violations", v.checkerViolations);
    j.set("invariant_violations", v.invariantViolations);
    j.set("skipped_ops", v.skippedOps);
    j.set("stalled", v.stalled);
    j.set("waiter_stuck", v.waiterStuck);
    j.set("first_problem", v.firstProblem);
    return j;
}

} // namespace csync
