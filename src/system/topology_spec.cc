#include "system/topology_spec.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "harness/json.hh"
#include "sim/logging.hh"

namespace csync
{

using harness::Json;

namespace
{

/** Default address stride of one cluster when a spec omits "ranges"
 *  (matches the canned clustered presets). */
constexpr Addr kDefaultClusterStride = 0x1000'0000;

bool
specError(std::string *err, std::string msg)
{
    if (err)
        *err = "topology spec: " + std::move(msg);
    return false;
}

/** Parse an address: a JSON number or a hex/decimal string. */
bool
parseAddr(const Json &v, Addr *out, std::string *err)
{
    if (v.isNumber()) {
        double d = v.asNumber();
        if (d < 0)
            return specError(err, "negative address");
        *out = Addr(d);
        return true;
    }
    if (v.isString()) {
        const std::string &s = v.asString();
        char *end = nullptr;
        unsigned long long a = std::strtoull(s.c_str(), &end, 0);
        if (s.empty() || end == nullptr || *end != '\0')
            return specError(err, csprintf("bad address \"%s\"", s.c_str()));
        *out = Addr(a);
        return true;
    }
    return specError(err, "addresses must be numbers or hex strings");
}

/** Parse a carries mask: "all", "sync", "data", or a class array. */
bool
parseCarries(const Json &v, unsigned *out, std::string *err)
{
    auto one = [&](const std::string &s, unsigned *bit) {
        if (s == "all") {
            *bit = kAllTraffic;
            return true;
        }
        if (s == "sync") {
            *bit = trafficClassBit(TrafficClass::Sync);
            return true;
        }
        if (s == "data") {
            *bit = trafficClassBit(TrafficClass::Data);
            return true;
        }
        return false;
    };
    if (v.isString()) {
        if (!one(v.asString(), out)) {
            return specError(err, csprintf("unknown traffic class \"%s\"",
                                           v.asString().c_str()));
        }
        return true;
    }
    if (v.isArray()) {
        unsigned mask = 0;
        for (std::size_t i = 0; i < v.size(); ++i) {
            unsigned bit = 0;
            if (!v.at(i).isString() || !one(v.at(i).asString(), &bit))
                return specError(err, "\"carries\" lists class names");
            mask |= bit;
        }
        *out = mask;
        return true;
    }
    return specError(err, "\"carries\" must be a class name or list");
}

/** Parse a switch/cluster entry's ranges array into @p sw. */
bool
parseRanges(const Json &v, SwitchSpec *sw, std::string *err)
{
    if (!v.isArray() || v.size() == 0)
        return specError(err, "\"ranges\" must be a non-empty array");
    for (std::size_t i = 0; i < v.size(); ++i) {
        const Json &r = v.at(i);
        if (!r.isArray() || r.size() != 2)
            return specError(err, "each range is a [lo, hi) pair");
        AddrRange range;
        if (!parseAddr(r.at(0), &range.lo, err) ||
            !parseAddr(r.at(1), &range.hi, err)) {
            return false;
        }
        sw->ranges.push_back(range);
    }
    return true;
}

/** Parse one entry of "switches"/"clusters" into @p sw (shared
 *  fields: name, carries, ranges, arbitration). */
bool
parseSwitchEntry(const Json &v, const char *what, std::size_t idx,
                 SwitchSpec *sw, std::string *err)
{
    if (!v.isObject())
        return specError(err, csprintf("%s[%zu] must be an object", what,
                                       idx));
    for (const auto &kv : v.members()) {
        if (kv.first != "name" && kv.first != "carries" &&
            kv.first != "ranges" && kv.first != "arbitration" &&
            kv.first != "l2_policy" && kv.first != "snoop_filter") {
            return specError(err, csprintf("%s[%zu]: unknown key \"%s\"",
                                           what, idx, kv.first.c_str()));
        }
    }
    if (!v.has("name") || !v["name"].isString())
        return specError(err,
                         csprintf("%s[%zu] needs a \"name\"", what, idx));
    sw->name = v["name"].asString();
    sw->carries = kAllTraffic;
    if (v.has("carries") && !parseCarries(v["carries"], &sw->carries, err))
        return false;
    if (v.has("arbitration")) {
        if (!v["arbitration"].isString())
            return specError(err, "\"arbitration\" must be a string");
        sw->arbitration = v["arbitration"].asString();
    }
    if (v.has("ranges") && !parseRanges(v["ranges"], sw, err))
        return false;
    return true;
}

/** Parse an "l2_policy" value into ClusterSpec::inclusive. */
bool
parseL2Policy(const Json &v, bool *inclusive, std::string *err)
{
    if (!v.isString())
        return specError(err, "\"l2_policy\" must be a string");
    const std::string &s = v.asString();
    if (s == "inclusive") {
        *inclusive = true;
        return true;
    }
    if (s == "exclusive") {
        *inclusive = false;
        return true;
    }
    return specError(err, csprintf("\"l2_policy\" is \"inclusive\" or "
                                   "\"exclusive\", not \"%s\"",
                                   s.c_str()));
}

} // anonymous namespace

bool
topologyFromSpec(const Json &doc, TopologyConfig *out, std::string *err)
{
    if (!doc.isObject())
        return specError(err, "document is not a JSON object");
    for (const auto &kv : doc.members()) {
        if (kv.first != "name" && kv.first != "levels" &&
            kv.first != "clusters" && kv.first != "switches") {
            return specError(err, csprintf("unknown key \"%s\"",
                                           kv.first.c_str()));
        }
    }
    if (!doc.has("name") || !doc["name"].isString() ||
        doc["name"].asString().empty()) {
        return specError(err, "spec needs a non-empty \"name\"");
    }
    bool hierarchical = doc.has("clusters");
    if (hierarchical == doc.has("switches")) {
        return specError(err, "spec needs exactly one of \"clusters\" "
                              "(hierarchical) or \"switches\" (flat)");
    }

    TopologyConfig topo;
    topo.preset = doc["name"].asString();
    topo.switches.clear();

    // The levels array declares the tree top-down.  The private L1
    // level is implicit; a flat spec has just the bus level, and a
    // hierarchical one a root level plus a cluster level whose policy
    // fields are the per-cluster defaults.
    bool def_inclusive = true;
    bool def_filter = true;
    if (doc.has("levels")) {
        const Json &levels = doc["levels"];
        if (!levels.isArray())
            return specError(err, "\"levels\" must be an array");
        bool saw_root = false, saw_cluster = false;
        for (std::size_t i = 0; i < levels.size(); ++i) {
            const Json &lv = levels.at(i);
            if (!lv.isObject() || !lv.has("kind") || !lv["kind"].isString())
                return specError(err, "each level needs a \"kind\"");
            const std::string &kind = lv["kind"].asString();
            if (kind == "root") {
                if (!hierarchical) {
                    return specError(err, "a flat spec has no root "
                                          "level");
                }
                saw_root = true;
                if (lv.has("name")) {
                    if (!lv["name"].isString())
                        return specError(err, "root \"name\" must be a "
                                              "string");
                    topo.rootName = lv["name"].asString();
                }
            } else if (kind == "cluster") {
                if (!hierarchical) {
                    return specError(err, "a flat spec has no cluster "
                                          "level");
                }
                saw_cluster = true;
                if (lv.has("l2_policy") &&
                    !parseL2Policy(lv["l2_policy"], &def_inclusive, err)) {
                    return false;
                }
                if (lv.has("snoop_filter")) {
                    if (!lv["snoop_filter"].isBool())
                        return specError(err, "\"snoop_filter\" must be "
                                              "a bool");
                    def_filter = lv["snoop_filter"].asBool();
                }
            } else if (kind != "bus") {
                return specError(err,
                                 csprintf("unknown level kind \"%s\"",
                                          kind.c_str()));
            }
        }
        if (hierarchical && (!saw_root || !saw_cluster)) {
            return specError(err, "a hierarchical spec declares a root "
                                  "and a cluster level");
        }
    }

    const Json &entries = doc[hierarchical ? "clusters" : "switches"];
    if (!entries.isArray() || entries.size() == 0)
        return specError(err, "the switch/cluster list must be a "
                              "non-empty array");
    bool any_ranges = false;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        SwitchSpec sw;
        if (!parseSwitchEntry(entries.at(i),
                              hierarchical ? "clusters" : "switches", i,
                              &sw, err)) {
            return false;
        }
        any_ranges = any_ranges || !sw.ranges.empty();
        if (hierarchical) {
            ClusterSpec cl{def_inclusive, def_filter};
            const Json &e = entries.at(i);
            if (e.has("l2_policy") &&
                !parseL2Policy(e["l2_policy"], &cl.inclusive, err)) {
                return false;
            }
            if (e.has("snoop_filter")) {
                if (!e["snoop_filter"].isBool())
                    return specError(err, "\"snoop_filter\" must be a "
                                          "bool");
                cl.snoopFilter = e["snoop_filter"].asBool();
            }
            topo.clusters.push_back(cl);
        } else if (entries.at(i).has("l2_policy") ||
                   entries.at(i).has("snoop_filter")) {
            return specError(err, "flat switches have no L2 policy");
        }
        topo.switches.push_back(std::move(sw));
    }

    if (!any_ranges && hierarchical) {
        // Default tiling: 256 MiB strides, the last cluster to the end.
        for (std::size_t k = 0; k < topo.switches.size(); ++k) {
            Addr lo = Addr(k) * kDefaultClusterStride;
            Addr hi = k + 1 == topo.switches.size()
                          ? 0
                          : Addr(k + 1) * kDefaultClusterStride;
            topo.switches[k].ranges.push_back({lo, hi});
        }
    }

    std::string why;
    if (!topo.check(&why))
        return specError(err, why);
    *out = std::move(topo);
    return true;
}

bool
topologyFromSpecFile(const std::string &path, TopologyConfig *out,
                     std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        return specError(err, csprintf("cannot open \"%s\"",
                                       path.c_str()));
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string jerr;
    Json doc = Json::parse(text.str(), &jerr);
    if (!jerr.empty()) {
        return specError(err, csprintf("%s: %s", path.c_str(),
                                       jerr.c_str()));
    }
    return topologyFromSpec(doc, out, err);
}

} // namespace csync
