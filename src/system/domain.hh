/**
 * @file
 * Static domain-partition analysis for the sharded parallel engine.
 *
 * A System may run its interconnect domains (one switch plus the
 * memory, caches, and processors behind it) on separate event queues
 * only when nothing couples the domains at simulation time.  Processor
 * ports, bus snoops, and memory all stay strictly within one switch by
 * construction; the only cross-domain channel is a processor whose
 * workload touches addresses routed to more than one switch.  So the
 * partition is decidable statically: if every processor's declared
 * address footprint (Workload::footprint()) is confined to a single
 * switch, the domains never exchange events and each shard's execution
 * is exactly the serial run's projection onto that domain — which is
 * why parallel stats are byte-identical to serial ones.
 *
 * Anything the analysis cannot prove falls back to the serial engine;
 * whySerial records the first reason, for diagnostics and tests.
 */

#ifndef CSYNC_SYSTEM_DOMAIN_HH
#define CSYNC_SYSTEM_DOMAIN_HH

#include <string>
#include <vector>

#include "proc/workload.hh"
#include "system/config.hh"
#include "system/topology.hh"

namespace csync
{

/** The outcome of the partition analysis for one System. */
struct DomainPartition
{
    /** True when the run may be sharded. */
    bool active = false;
    /** First reason the analysis refused ("" when active). */
    std::string whySerial;
    /** Home switch of each processor (valid only when active). */
    std::vector<unsigned> procHome;
    /** Shard count == switch count (valid only when active). */
    unsigned domains = 0;
};

/**
 * Decide whether the configuration is domain-partitionable.
 *
 * @param cfg The system configuration (thread count, topology, fault
 *            plan, I/O flag).
 * @param map The flattened address routing of @p cfg's topology.
 * @param workloads One entry per attached processor, in order.
 */
DomainPartition planDomainPartition(
    const SystemConfig &cfg, const AddressMap &map,
    const std::vector<const Workload *> &workloads);

} // namespace csync

#endif // CSYNC_SYSTEM_DOMAIN_HH
