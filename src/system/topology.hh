/**
 * @file
 * Interconnect topology of a System (Section E.2, Figure 11).  A
 * topology is a list of switches, each carrying a set of traffic
 * classes and backing a partition of the address space with its own
 * memory.  The default is the paper's baseline — one broadcast bus
 * carrying everything — and the named "two_switch" preset is the
 * Aquarius design: a synchronization bus over the low (shared/sync)
 * region and a data switch over the rest.
 *
 * Routing is strictly by address: every address belongs to exactly one
 * switch, so each block has exactly one backing memory and one snoop
 * domain, and the coherence argument of the single bus carries over
 * per switch.  Traffic classes are advisory — they drive the per-switch
 * misrouted-traffic counters that tell you whether the partition
 * actually matches the paper's sync/data split.
 */

#ifndef CSYNC_SYSTEM_TOPOLOGY_HH
#define CSYNC_SYSTEM_TOPOLOGY_HH

#include <string>
#include <vector>

#include "mem/bus_msg.hh"
#include "sim/types.hh"

namespace csync
{

/** A half-open address interval [lo, hi); hi == 0 means "end of the
 *  address space" (there is no representable one-past-the-end). */
struct AddrRange
{
    Addr lo = 0;
    Addr hi = 0;

    bool
    contains(Addr a) const
    {
        return a >= lo && (hi == 0 || a < hi);
    }
};

/** One switch of the interconnect fabric. */
struct SwitchSpec
{
    /** Instance name; becomes the stat namespace ("sync_bus.*"). */
    std::string name = "bus";
    /** Mask of trafficClassBit() values this switch should carry. */
    unsigned carries = kAllTraffic;
    /** Address ranges routed to this switch. */
    std::vector<AddrRange> ranges;
    /** Service discipline for this switch's arbiter; "" inherits
     *  SystemConfig::arbitration, so each switch of a multi-switch
     *  machine can run its own discipline. */
    std::string arbitration;
};

/**
 * The interconnect fabric of one System: its switches and their address
 * partition.  Built from a named preset (campaign axes and CLI flags
 * speak preset names) or assembled by hand for custom machines.
 */
struct TopologyConfig
{
    /** Preset name this config was built from ("custom" if by hand);
     *  used in campaign row names and spec echoes. */
    std::string preset = "single_bus";

    /** The switches, in port order; port 0 is System::bus(). */
    std::vector<SwitchSpec> switches = {
        {"bus", kAllTraffic, {{0, 0}}, ""},
    };

    /** True for the paper's baseline: one switch carrying everything. */
    bool isSingleBus() const;

    /** The baseline: one bus named "bus" over the whole space. */
    static TopologyConfig singleBus();

    /**
     * The Aquarius two-switch design (Figure 11): "sync_bus" carries
     * synchronization traffic over the low 16 MiB (where every shipped
     * workload places its locks, queues, flags, and I/O buffers) and
     * "data_switch" carries data traffic over the rest (the workloads'
     * private/streaming regions).
     */
    static TopologyConfig twoSwitch();

    /** Resolve a preset by name; false if @p name is unknown. */
    static bool fromName(const std::string &name, TopologyConfig *out);

    /** The preset names fromName() accepts. */
    static const std::vector<std::string> &names();

    /**
     * Structural validity: at least one switch; unique non-empty switch
     * names; sane carries masks covering every class between them; and
     * an address map that tiles the whole space — no gaps, no overlaps.
     * @return true if valid, else false with @p err set.
     */
    bool check(std::string *err) const;

    /** fatal() with a diagnostic if the topology is invalid. */
    void validate() const;

    /** Index of the switch named @p name, or switches.size() if none. */
    std::size_t indexOf(const std::string &name) const;

    /** Index of the first switch carrying sync traffic (the one I/O
     *  devices attach to, Section E.2); 0 if none claims it. */
    std::size_t syncSwitch() const;
};

/**
 * Address -> switch routing, flattened from a (valid) TopologyConfig
 * for per-reference lookups.
 */
class AddressMap
{
  public:
    AddressMap() = default;
    explicit AddressMap(const TopologyConfig &topo);

    /** Number of switches routed to. */
    std::size_t numSwitches() const { return numSwitches_; }

    /** The switch (port index) owning @p addr. */
    std::size_t switchFor(Addr addr) const;

  private:
    struct Entry
    {
        Addr lo;
        std::size_t switchIdx;
    };

    /** Range starts in ascending order; a lookup belongs to the last
     *  entry at or below it (the ranges tile the space). */
    std::vector<Entry> entries_ = {{0, 0}};
    std::size_t numSwitches_ = 1;
};

} // namespace csync

#endif // CSYNC_SYSTEM_TOPOLOGY_HH
