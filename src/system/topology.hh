/**
 * @file
 * Interconnect topology of a System (Section E.2, Figure 11).  A
 * topology is a list of switches, each carrying a set of traffic
 * classes and backing a partition of the address space with its own
 * memory.  The default is the paper's baseline — one broadcast bus
 * carrying everything — and the named "two_switch" preset is the
 * Aquarius design: a synchronization bus over the low (shared/sync)
 * region and a data switch over the rest.
 *
 * Routing is strictly by address: every address belongs to exactly one
 * switch, so each block has exactly one backing memory and one snoop
 * domain, and the coherence argument of the single bus carries over
 * per switch.  Traffic classes are advisory — they drive the per-switch
 * misrouted-traffic counters that tell you whether the partition
 * actually matches the paper's sync/data split.
 */

#ifndef CSYNC_SYSTEM_TOPOLOGY_HH
#define CSYNC_SYSTEM_TOPOLOGY_HH

#include <string>
#include <vector>

#include "mem/bus_msg.hh"
#include "sim/types.hh"

namespace csync
{

/** A half-open address interval [lo, hi); hi == 0 means "end of the
 *  address space" (there is no representable one-past-the-end). */
struct AddrRange
{
    Addr lo = 0;
    Addr hi = 0;

    bool
    contains(Addr a) const
    {
        return a >= lo && (hi == 0 || a < hi);
    }
};

/**
 * Hierarchy metadata for one cluster of a clustered topology.  Cluster
 * k is switch k: the cluster bus joining that cluster's private L1
 * ports, with a shared L2 tag directory (a snoop filter) sitting at the
 * boundary between the cluster bus and the top-level root bus.
 */
struct ClusterSpec
{
    /**
     * L2 policy.  Inclusive: the L2 keeps a block's tag after the last
     * private L1 evicts it (the shared level retains the block), so
     * boundary snoops keep forwarding into the cluster until the tag is
     * invalidated.  Exclusive: the L2 tracks exactly the union of the
     * L1 tags below it, so forwarding stops the moment the last private
     * copy leaves.  Both are supersets of the L1s' residency, which is
     * what makes filtering safe (see DESIGN.md).
     */
    bool inclusive = true;
    /**
     * Snoop filtering at the cluster boundary.  Disabled, every
     * transaction is broadcast through the root bus to every cluster —
     * the flat-hierarchy ablation the snoop-filter bench pair measures
     * against.
     */
    bool snoopFilter = true;
};

/** One switch of the interconnect fabric. */
struct SwitchSpec
{
    /** Instance name; becomes the stat namespace ("sync_bus.*"). */
    std::string name = "bus";
    /** Mask of trafficClassBit() values this switch should carry. */
    unsigned carries = kAllTraffic;
    /** Address ranges routed to this switch. */
    std::vector<AddrRange> ranges;
    /** Service discipline for this switch's arbiter; "" inherits
     *  SystemConfig::arbitration, so each switch of a multi-switch
     *  machine can run its own discipline. */
    std::string arbitration;
};

/**
 * The interconnect fabric of one System: its switches and their address
 * partition.  Built from a named preset (campaign axes and CLI flags
 * speak preset names) or assembled by hand for custom machines.
 */
struct TopologyConfig
{
    /** Preset name this config was built from ("custom" if by hand);
     *  used in campaign row names and spec echoes. */
    std::string preset = "single_bus";

    /** The switches, in port order; port 0 is System::bus(). */
    std::vector<SwitchSpec> switches = {
        {"bus", kAllTraffic, {{0, 0}}, ""},
    };

    /**
     * Hierarchy metadata: empty for the flat machines; on a clustered
     * topology, one entry per switch (cluster k's bus is switch k).
     * The address partition is unchanged — every address still has one
     * home switch — so the per-switch coherence argument carries over;
     * the clusters add the root-bus traffic model and per-cluster snoop
     * filtering on top.
     */
    std::vector<ClusterSpec> clusters;

    /** Stat namespace of the top-level bus joining the clusters
     *  (clustered topologies only). */
    std::string rootName = "root";

    /** True when this is a hierarchical (clustered) topology. */
    bool clustered() const { return !clusters.empty(); }

    /** Cluster count (0 on flat topologies). */
    unsigned numClusters() const { return unsigned(clusters.size()); }

    /**
     * The cluster processor @p proc belongs to, for a machine of
     * @p num_procs processors: processors are assigned to clusters in
     * contiguous balanced blocks (8 processors on 4 clusters pair them
     * up; the NxM preset names record the canonical shape, not a
     * limit).  Only meaningful on clustered topologies.
     */
    unsigned clusterOfProc(unsigned proc, unsigned num_procs) const;

    /** True for the paper's baseline: one switch carrying everything. */
    bool isSingleBus() const;

    /** The baseline: one bus named "bus" over the whole space. */
    static TopologyConfig singleBus();

    /**
     * The Aquarius two-switch design (Figure 11): "sync_bus" carries
     * synchronization traffic over the low 16 MiB (where every shipped
     * workload places its locks, queues, flags, and I/O buffers) and
     * "data_switch" carries data traffic over the rest (the workloads'
     * private/streaming regions).
     */
    static TopologyConfig twoSwitch();

    /**
     * A clustered machine: @p n_clusters cluster buses ("cluster0"...)
     * tiling the address space in 256 MiB strides, each with a shared
     * L2 boundary filter, joined by a top-level root bus.  The canned
     * clustered presets (clustered_4x2, clustered_2x4, ...) are this
     * shape with the NxM name recording the canonical processor
     * pairing.
     */
    static TopologyConfig clusteredPreset(unsigned n_clusters,
                                          bool snoop_filter = true,
                                          bool inclusive = true);

    /** Resolve a preset by name; false if @p name is unknown.  Every
     *  preset has an equivalent canned spec file under specs/ (tests
     *  enforce the equivalence), so campaign axes can mix preset names
     *  and --topology-spec files freely. */
    static bool fromName(const std::string &name, TopologyConfig *out);

    /** The preset names fromName() accepts. */
    static const std::vector<std::string> &names();

    /**
     * Structural validity: at least one switch; unique non-empty switch
     * names; sane carries masks covering every class between them; and
     * an address map that tiles the whole space — no gaps, no overlaps.
     * @return true if valid, else false with @p err set.
     */
    bool check(std::string *err) const;

    /** fatal() with a diagnostic if the topology is invalid. */
    void validate() const;

    /** Index of the switch named @p name, or switches.size() if none. */
    std::size_t indexOf(const std::string &name) const;

    /** Index of the first switch carrying sync traffic (the one I/O
     *  devices attach to, Section E.2); 0 if none claims it. */
    std::size_t syncSwitch() const;
};

/**
 * Address -> switch routing, flattened from a (valid) TopologyConfig
 * for per-reference lookups.
 */
class AddressMap
{
  public:
    AddressMap() = default;
    explicit AddressMap(const TopologyConfig &topo);

    /** Number of switches routed to. */
    std::size_t numSwitches() const { return numSwitches_; }

    /** The switch (port index) owning @p addr. */
    std::size_t switchFor(Addr addr) const;

  private:
    struct Entry
    {
        Addr lo;
        std::size_t switchIdx;
    };

    /** Range starts in ascending order; a lookup belongs to the last
     *  entry at or below it (the ranges tile the space). */
    std::vector<Entry> entries_ = {{0, 0}};
    std::size_t numSwitches_ = 1;
};

} // namespace csync

#endif // CSYNC_SYSTEM_TOPOLOGY_HH
