/**
 * @file
 * The whole simulated machine: N processors, each with one private
 * snooping cache port per interconnect switch, in front of per-switch
 * partitions of main memory (Figure 11), plus the value checker and a
 * structural invariant scanner.  The default topology is the paper's
 * baseline — a single full-broadcast bus — and the two_switch preset is
 * the Aquarius synchronization-bus / data-switch split of Section E.2.
 */

#ifndef CSYNC_SYSTEM_SYSTEM_HH
#define CSYNC_SYSTEM_SYSTEM_HH

#include <atomic>
#include <memory>
#include <ostream>
#include <vector>

#include "cache/cache.hh"
#include "cache/shared_cache.hh"
#include "coherence/level.hh"
#include "fault/watchdog.hh"
#include "mem/bus.hh"
#include "mem/io_device.hh"
#include "mem/memory.hh"
#include "proc/processor.hh"
#include "system/checker.hh"
#include "system/config.hh"
#include "system/domain.hh"

namespace csync
{

/**
 * One simulated shared-memory multiprocessor.
 */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    const SystemConfig &config() const { return cfg_; }
    EventQueue &eventq() { return eq_; }
    Tick now() const { return eq_.now(); }
    Bus &bus() { return *ports_.front().bus; }
    Memory &memory() { return *ports_.front().memory; }
    Checker &checker() { return checker_; }
    stats::Group &rootStats() { return root_; }
    IODevice *io() { return io_.get(); }

    /** Number of interconnect switches (1 on the default topology). */
    unsigned numInterconnects() const { return unsigned(ports_.size()); }

    /** Switch @p k, in topology order (port 0 is bus()). */
    Bus &bus(unsigned k) { return *ports_.at(k).bus; }

    /** The memory partition behind switch @p k. */
    Memory &memory(unsigned k) { return *ports_.at(k).memory; }

    /** The address -> switch routing of this machine. */
    const AddressMap &addressMap() const { return map_; }

    /**
     * Total cache ports: numProcessors() x numInterconnects(), in
     * port-major flat order (identical to the processor order on the
     * single-bus topology).
     */
    unsigned numCaches() const
    {
        return unsigned(ports_.size() * ports_.front().caches.size());
    }

    /** Flat cache access: port i / P serves processor i % P. */
    Cache &
    cache(unsigned i)
    {
        unsigned p = unsigned(ports_.front().caches.size());
        return *ports_.at(i / p).caches.at(i % p);
    }

    /** Processor @p proc's cache port on switch @p k. */
    Cache &cache(unsigned proc, unsigned k)
    {
        return *ports_.at(k).caches.at(proc);
    }

    /** The coherence level (protocol domain) of switch @p k. */
    CoherenceLevel &level(unsigned k) { return *levels_.at(k); }

    /** Shared L2s, one per cluster (empty on flat topologies). */
    unsigned numSharedCaches() const { return unsigned(l2s_.size()); }

    /** Cluster @p c's shared L2 tag directory. */
    SharedCache &sharedCache(unsigned c) { return *l2s_.at(c); }

    /** The root-bus traffic model, or null on flat topologies. */
    RootBusModel *rootBus() { return rootBus_.get(); }

    /**
     * Attach a processor running @p workload to the next free cache.
     * @return the processor's index.
     */
    unsigned addProcessor(std::unique_ptr<Workload> workload,
                          bool work_while_waiting = false);

    unsigned numProcessors() const { return unsigned(procs_.size()); }
    Processor &processor(unsigned i) { return *procs_.at(i); }

    /**
     * Start every attached processor.  When simThreads > 1 this first
     * runs the domain-partition analysis and, if it proves the machine
     * partitionable, moves each interconnect domain (and its homed
     * processors) onto its own event queue for the sharded engine.
     */
    void start();

    /** True when run() will use the sharded parallel engine. */
    bool parallelActive() const { return partition_.active; }

    /** Why the parallel engine declined ("" when it did not). */
    const std::string &serialReason() const
    {
        return partition_.whySerial;
    }

    /** The partition analysis result (tests). */
    const DomainPartition &partition() const { return partition_; }

    /** True when every processor's workload has finished. */
    bool allDone() const;

    /**
     * Run until all processors finish, the event queue drains, the
     * forward-progress watchdog trips, or @p max_ticks is reached.
     * @return the final simulated time.
     */
    Tick run(Tick max_ticks = 50'000'000)
    {
        return run(max_ticks, nullptr);
    }

    /**
     * As run(), plus an external abort flag checked between event
     * batches: when @p abort reads true the run stops at the next
     * batch boundary (the campaign harness's wall-clock watchdog).
     * Null behaves exactly like plain run().
     */
    Tick run(Tick max_ticks, const std::atomic<bool> *abort);

    /** Total operations retired across all processors. */
    double totalRetiredOps() const;

    /** True if run() was aborted by the forward-progress watchdog. */
    bool watchdogTripped() const { return watchdog_.tripped(); }

    /** The watchdog's abort diagnostic ("" if it never tripped). */
    const std::string &watchdogDiagnostic() const
    {
        return watchdog_.diagnostic();
    }

    /** The forward-progress watchdog itself (tests). */
    ProgressWatchdog &watchdog() { return watchdog_; }

    /**
     * Render a no-progress diagnostic: @p why plus the last bus
     * message, each cache's state of the implicated block, busy-wait
     * register occupancy, and per-processor retired counts.
     */
    std::string progressDiagnostic(const std::string &why) const;

    /** Dump every statistic to @p os. */
    void dumpStats(std::ostream &os);

    /** Dump every statistic to @p os as a JSON document. */
    void dumpStatsJson(std::ostream &os);

    /**
     * Scan all caches for structural coherence invariants:
     * at most one writable copy, at most one source, at most one lock
     * holder per block; all valid copies identical; clean data equal to
     * memory when no dirty copy exists.
     *
     * @param why Optional first-violation description.
     * @return number of violations found.
     */
    unsigned checkStateInvariants(std::string *why = nullptr);

  private:
    /** One interconnect switch: its memory partition, its bus, and one
     *  cache port per processor. */
    struct Port
    {
        std::unique_ptr<Memory> memory;
        std::unique_ptr<Bus> bus;
        std::vector<std::unique_ptr<Cache>> caches;
    };

    /** Build the shared level of a clustered topology: per-cluster L2
     *  directories, per-switch boundary gates, the root-bus model. */
    void buildHierarchy();

    /** Run the partition analysis and, if it passes, rebind each
     *  domain's objects onto a private shard queue (start()-time). */
    void planShards();

    /** The sharded engine behind run() when the partition is active. */
    Tick runParallel(Tick max_ticks, const std::atomic<bool> *abort);

    /** Shard @p k's event queue (shard 0 is the primary eq_). */
    EventQueue &shardQueue(unsigned k)
    {
        return k == 0 ? eq_ : *shardEqs_.at(k - 1);
    }

    SystemConfig cfg_;
    EventQueue eq_;
    stats::Group root_;
    Checker checker_;
    ProgressWatchdog watchdog_;
    AddressMap map_;
    /** One coherence level per switch; on clustered topologies each
     *  owns its boundary gate (referenced raw by the bus, so the
     *  levels must outlive the ports). */
    std::vector<std::unique_ptr<CoherenceLevel>> levels_;
    /** Per-cluster shared L2 directories (clustered topologies). */
    std::vector<std::unique_ptr<SharedCache>> l2s_;
    /** Root-bus traffic model (clustered topologies). */
    std::unique_ptr<RootBusModel> rootBus_;
    std::vector<Port> ports_;
    std::unique_ptr<IODevice> io_;
    std::vector<std::unique_ptr<Processor>> procs_;

    /** @name Sharded-engine state (empty/inactive on serial runs) */
    /// @{
    DomainPartition partition_;
    /** Queues for shards 1..K-1; shard 0 keeps eq_ so single-domain
     *  state (and all serial runs) is untouched. */
    std::vector<std::unique_ptr<EventQueue>> shardEqs_;
    /** Processors homed on each shard. */
    std::vector<std::vector<Processor *>> shardProcs_;
    /// @}
};

} // namespace csync

#endif // CSYNC_SYSTEM_SYSTEM_HH
