/**
 * @file
 * The whole simulated machine: N processors with private snooping caches
 * on one full-broadcast bus in front of a simple main memory (Figure 11's
 * upper switch-memory system), plus the value checker and a structural
 * invariant scanner.
 */

#ifndef CSYNC_SYSTEM_SYSTEM_HH
#define CSYNC_SYSTEM_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "cache/cache.hh"
#include "fault/watchdog.hh"
#include "mem/bus.hh"
#include "mem/io_device.hh"
#include "mem/memory.hh"
#include "proc/processor.hh"
#include "system/checker.hh"
#include "system/config.hh"

namespace csync
{

/**
 * One simulated shared-memory multiprocessor.
 */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    const SystemConfig &config() const { return cfg_; }
    EventQueue &eventq() { return eq_; }
    Tick now() const { return eq_.now(); }
    Bus &bus() { return *bus_; }
    Memory &memory() { return *memory_; }
    Checker &checker() { return checker_; }
    stats::Group &rootStats() { return root_; }
    IODevice *io() { return io_.get(); }

    unsigned numCaches() const { return unsigned(caches_.size()); }
    Cache &cache(unsigned i) { return *caches_.at(i); }

    /**
     * Attach a processor running @p workload to the next free cache.
     * @return the processor's index.
     */
    unsigned addProcessor(std::unique_ptr<Workload> workload,
                          bool work_while_waiting = false);

    unsigned numProcessors() const { return unsigned(procs_.size()); }
    Processor &processor(unsigned i) { return *procs_.at(i); }

    /** Start every attached processor. */
    void start();

    /** True when every processor's workload has finished. */
    bool allDone() const;

    /**
     * Run until all processors finish, the event queue drains, the
     * forward-progress watchdog trips, or @p max_ticks is reached.
     * @return the final simulated time.
     */
    Tick run(Tick max_ticks = 50'000'000);

    /** Total operations retired across all processors. */
    double totalRetiredOps() const;

    /** True if run() was aborted by the forward-progress watchdog. */
    bool watchdogTripped() const { return watchdog_.tripped(); }

    /** The watchdog's abort diagnostic ("" if it never tripped). */
    const std::string &watchdogDiagnostic() const
    {
        return watchdog_.diagnostic();
    }

    /** The forward-progress watchdog itself (tests). */
    ProgressWatchdog &watchdog() { return watchdog_; }

    /**
     * Render a no-progress diagnostic: @p why plus the last bus
     * message, each cache's state of the implicated block, busy-wait
     * register occupancy, and per-processor retired counts.
     */
    std::string progressDiagnostic(const std::string &why) const;

    /** Dump every statistic to @p os. */
    void dumpStats(std::ostream &os);

    /** Dump every statistic to @p os as a JSON document. */
    void dumpStatsJson(std::ostream &os);

    /**
     * Scan all caches for structural coherence invariants:
     * at most one writable copy, at most one source, at most one lock
     * holder per block; all valid copies identical; clean data equal to
     * memory when no dirty copy exists.
     *
     * @param why Optional first-violation description.
     * @return number of violations found.
     */
    unsigned checkStateInvariants(std::string *why = nullptr);

  private:
    SystemConfig cfg_;
    EventQueue eq_;
    stats::Group root_;
    Checker checker_;
    ProgressWatchdog watchdog_;
    std::unique_ptr<Memory> memory_;
    std::unique_ptr<Bus> bus_;
    std::vector<std::unique_ptr<Cache>> caches_;
    std::unique_ptr<IODevice> io_;
    std::vector<std::unique_ptr<Processor>> procs_;
};

} // namespace csync

#endif // CSYNC_SYSTEM_SYSTEM_HH
