#include "system/domain.hh"

#include <set>

#include "sim/logging.hh"

namespace csync
{

namespace
{

/** True when @p inner lies wholly within @p outer (both half-open,
 *  hi == 0 meaning end-of-space). */
bool
rangeWithin(const AddrRange &outer, const AddrRange &inner)
{
    if (inner.lo < outer.lo)
        return false;
    if (outer.hi == 0)
        return true;
    return inner.hi != 0 && inner.hi <= outer.hi;
}

/**
 * The switch wholly containing @p r, or -1 if @p r straddles a switch
 * boundary (a switch's ranges need not be contiguous, so containment is
 * checked per range).
 */
int
homeSwitch(const TopologyConfig &topo, const AddrRange &r)
{
    for (std::size_t k = 0; k < topo.switches.size(); ++k)
        for (const auto &sr : topo.switches[k].ranges)
            if (rangeWithin(sr, r))
                return int(k);
    return -1;
}

} // namespace

DomainPartition
planDomainPartition(const SystemConfig &cfg, const AddressMap &map,
                    const std::vector<const Workload *> &workloads)
{
    DomainPartition plan;
    auto serial = [&](std::string why) {
        plan.active = false;
        plan.whySerial = std::move(why);
        plan.procHome.clear();
        plan.domains = 0;
        return plan;
    };

    if (cfg.simThreads <= 1)
        return serial("sim-threads is 1");
    if (map.numSwitches() < 2)
        return serial("single-switch topology has one domain");
    if (cfg.withIODevice)
        return serial("I/O device broadcasts couple the domains");
    if (cfg.fault.enabled())
        return serial("fault injection runs on the serial engine");

    // Clustered topologies add two conditions.  With any boundary
    // filter disabled, every transaction is broadcast system-wide, so
    // no switch is independent.  And a processor homed outside its own
    // cluster routes all its traffic across the root — its requests
    // would have to appear on another shard's bus.
    if (cfg.topology.clustered()) {
        for (const auto &cl : cfg.topology.clusters) {
            if (!cl.snoopFilter) {
                return serial("an unfiltered cluster boundary broadcasts "
                              "system-wide");
            }
        }
    }

    std::set<unsigned> homes;
    plan.procHome.reserve(workloads.size());
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        std::vector<AddrRange> ranges;
        if (!workloads[i] || !workloads[i]->footprint(&ranges)) {
            return serial(
                csprintf("proc%zu workload declares no footprint", i));
        }
        if (ranges.empty())
            return serial(csprintf("proc%zu footprint is empty", i));
        int home = -1;
        for (const auto &r : ranges) {
            int h = homeSwitch(cfg.topology, r);
            if (h < 0) {
                return serial(csprintf(
                    "proc%zu footprint [%llx, %llx) straddles switches", i,
                    (unsigned long long)r.lo, (unsigned long long)r.hi));
            }
            if (home >= 0 && h != home) {
                return serial(csprintf(
                    "proc%zu footprint spans switches %d and %d", i, home,
                    h));
            }
            home = h;
        }
        if (cfg.topology.clustered()) {
            unsigned own = cfg.topology.clusterOfProc(unsigned(i),
                                                      cfg.numProcessors);
            if (unsigned(home) != own) {
                return serial(csprintf(
                    "proc%zu is homed on switch %d outside its cluster %u",
                    i, home, own));
            }
        }
        plan.procHome.push_back(unsigned(home));
        homes.insert(unsigned(home));
    }

    if (workloads.empty())
        return serial("no processors attached");
    if (homes.size() < 2)
        return serial("every footprint lives in one domain");

    plan.active = true;
    plan.whySerial.clear();
    plan.domains = unsigned(map.numSwitches());
    return plan;
}

} // namespace csync
