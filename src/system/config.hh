/**
 * @file
 * Whole-system configuration: protocol choice, processor count, cache
 * geometry, bus timing, and feature toggles.
 */

#ifndef CSYNC_SYSTEM_CONFIG_HH
#define CSYNC_SYSTEM_CONFIG_HH

#include <string>

#include "cache/cache.hh"
#include "coherence/adaptive.hh"
#include "fault/fault_plan.hh"
#include "mem/timing.hh"
#include "system/topology.hh"

namespace csync
{

/** Configuration for one simulated system. */
struct SystemConfig
{
    /** Hard sanity limits enforced by validate(). */
    static constexpr unsigned kMaxProcessors = 256;
    static constexpr unsigned kMaxBlockWords = 1024;
    static constexpr unsigned kMaxSimThreads = 64;

    /** Instance name (statistics prefix). */
    std::string name = "system";
    /** Registered protocol name ("bitar", "goodman", ...). */
    std::string protocol = "bitar";
    /** Bus service discipline for every switch ("round_robin", "fcfs",
     *  "alternating_priority"); a SwitchSpec may override per switch. */
    std::string arbitration = "round_robin";
    /** Saturating-counter tuning for the adaptive_* protocols (ignored
     *  by every other protocol). */
    AdaptiveTuning adaptive;
    /** Number of processor/cache pairs. */
    unsigned numProcessors = 4;
    /** Per-cache configuration (geometry, hit latency, directory). */
    CacheConfig cache;
    /** Bus/memory timing. */
    BusTiming timing;
    /** Attach an I/O device. */
    bool withIODevice = false;
    /** Take each cache's directory organization from the protocol's
     *  Feature 3 entry instead of cache.directory. */
    bool directoryFromProtocol = true;
    /** Attach the value-level coherence checker. */
    bool enableChecker = true;
    /** Interconnect topology (default: the paper's single bus). */
    TopologyConfig topology;
    /** Fault-injection schedule + watchdog window (default: no faults,
     *  no stats-tree changes).  fault.target selects which switch the
     *  FaultyBus decorator wraps ("" = every switch). */
    FaultPlan fault;
    /**
     * Worker threads for the sharded parallel engine.  1 (the default)
     * is exactly today's serial engine — not a one-thread parallel run.
     * Values > 1 enable domain sharding when the configuration is
     * statically partitionable (see planDomainPartition()); otherwise
     * the run silently falls back to the serial path, so results are
     * identical at any thread count.
     */
    unsigned simThreads = 1;

    /** Sanity-check the configuration (fatal on nonsense). */
    void validate() const;
};

} // namespace csync

#endif // CSYNC_SYSTEM_CONFIG_HH
