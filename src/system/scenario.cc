#include "system/scenario.hh"

namespace csync
{

Scenario::Scenario(const Options &opts)
{
    SystemConfig cfg;
    cfg.name = "scenario";
    cfg.protocol = opts.protocol;
    cfg.numProcessors = opts.processors;
    cfg.cache.geom.frames = opts.frames;
    cfg.cache.geom.ways = opts.ways;
    cfg.cache.geom.blockWords = opts.blockWords;
    cfg.timing = opts.timing;
    cfg.enableChecker = opts.enableChecker;
    sys_ = std::make_unique<System>(cfg);
    pending_.resize(opts.processors);

    if (opts.collectTrace) {
        Trace::enableAll();
        Trace::setSink([this](std::uint64_t when, TraceFlag flag,
                              const std::string &who,
                              const std::string &what) {
            log_.push_back(csprintf("%6llu %-8s %-12s %s",
                                    (unsigned long long)when,
                                    traceFlagName(flag), who.c_str(),
                                    what.c_str()));
        });
    }
}

Scenario::~Scenario()
{
    Trace::reset();
}

void
Scenario::note(const std::string &line)
{
    log_.push_back("       --      --           " + line);
}

AccessResult
Scenario::run(unsigned p, const MemOp &op)
{
    AccessResult r;
    if (!tryRun(p, op, &r)) {
        fatal("scenario: op %s @%llx on cache%u did not complete",
              opTypeName(op.type), (unsigned long long)op.addr, p);
    }
    return r;
}

bool
Scenario::tryRun(unsigned p, const MemOp &op, AccessResult *out)
{
    PendingOp &slot = pending_.at(p);
    sim_assert(!slot.issued || slot.completed,
               "scenario: processor %u already has a pending op", p);
    slot.issued = true;
    slot.completed = false;

    note(csprintf("processor %u issues %s @%llx%s", p,
                  opTypeName(op.type), (unsigned long long)op.addr,
                  op.type == OpType::Write ||
                          op.type == OpType::UnlockWrite ||
                          op.type == OpType::WriteNoFetch ||
                          op.type == OpType::Rmw
                      ? csprintf(" value=%llu",
                                 (unsigned long long)op.value)
                            .c_str()
                      : ""));

    sys_->cache(p).access(op, [&slot](const AccessResult &r) {
        slot.completed = true;
        slot.result = r;
    });
    settle();

    if (slot.completed && out)
        *out = slot.result;
    return slot.completed;
}

bool
Scenario::pendingCompleted(unsigned p, AccessResult *out)
{
    PendingOp &slot = pending_.at(p);
    if (slot.completed && out)
        *out = slot.result;
    return slot.completed;
}

void
Scenario::settle()
{
    sys_->eventq().run();
}

} // namespace csync
