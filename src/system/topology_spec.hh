/**
 * @file
 * Declarative topology specs: a JSON system description that builds a
 * TopologyConfig, replacing hand-written presets with config-driven
 * generation.  A spec names either a flat switch list or a hierarchical
 * clustered machine:
 *
 *   {
 *     "name": "clustered_4x2",
 *     "levels": [
 *       {"kind": "root", "name": "root"},
 *       {"kind": "cluster", "l2_policy": "inclusive",
 *        "snoop_filter": true}
 *     ],
 *     "clusters": [
 *       {"name": "cluster0", "ranges": [["0x0", "0x10000000"]]},
 *       {"name": "cluster1", "ranges": [["0x10000000", "0x0"]]}
 *     ]
 *   }
 *
 * "levels" declares the tree top-down (the private L1 level is
 * implicit); "clusters" instantiates the cluster buses.  A flat spec
 * replaces "clusters" with "switches" (same fields, no root level).
 * Ranges are [lo, hi) pairs, hex strings or numbers, hi "0x0" meaning
 * end-of-space; a cluster may omit "ranges" to take the default
 * 256 MiB stride tiling.  Every canned preset has an equivalent spec
 * under specs/ (tests enforce the equivalence), so campaign axes can
 * mix preset names and --topology-spec files freely.
 */

#ifndef CSYNC_SYSTEM_TOPOLOGY_SPEC_HH
#define CSYNC_SYSTEM_TOPOLOGY_SPEC_HH

#include <string>

#include "system/topology.hh"

namespace csync
{

namespace harness
{
class Json;
} // namespace harness

/**
 * Build a TopologyConfig from a parsed spec document.
 * @return false with *err set on a malformed or invalid spec (the
 *         result also passes TopologyConfig::check()).
 */
bool topologyFromSpec(const harness::Json &doc, TopologyConfig *out,
                      std::string *err);

/** As topologyFromSpec(), reading and parsing @p path first. */
bool topologyFromSpecFile(const std::string &path, TopologyConfig *out,
                          std::string *err);

} // namespace csync

#endif // CSYNC_SYSTEM_TOPOLOGY_SPEC_HH
