/**
 * @file
 * Value-level coherence checker (Section C.1's two implementation
 * requirements, made executable):
 *
 *  1. "Serialize conflicting accesses" — every read must return the value
 *     of the *last serialized write* to that word, and lock/unlock pairs
 *     must be mutually exclusive.
 *  2. "Provide the latest version of the data, wherever it may be" —
 *     follows from (1) because caches and memory carry real data in this
 *     simulator; a protocol that loses track of the latest version
 *     surfaces as a value mismatch.
 *
 * Violations are recorded, not fatal, so property tests can assert
 * violations() == 0 and negative tests can observe deliberate breakage.
 */

#ifndef CSYNC_SYSTEM_CHECKER_HH
#define CSYNC_SYSTEM_CHECKER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace csync
{

/**
 * Global serialization monitor.
 */
class Checker
{
  public:
    /** Broad class of a recorded violation (forensics). */
    enum class ViolationKind
    {
        None,
        /** A read observed a value other than the last serialized write. */
        Value,
        /** Lock/unlock mutual exclusion was broken. */
        Lock,
    };

    explicit Checker(stats::Group *stats_parent);

    /** A write to @p word_addr serialized with value @p value. */
    void onWrite(NodeId node, Addr word_addr, Word value, Tick when);

    /** A read of @p word_addr observed @p value. */
    void onRead(NodeId node, Addr word_addr, Word value, Tick when);

    /** Node @p node acquired the lock on @p block_addr. */
    void onLockAcquire(NodeId node, Addr block_addr, Tick when);

    /** Node @p node released the lock on @p block_addr. */
    void onLockRelease(NodeId node, Addr block_addr, Tick when);

    /** Total violations recorded. */
    std::uint64_t
    violations() const
    {
        return std::uint64_t(violationCount.value());
    }

    /** Human-readable violation records (capped at 64). */
    const std::vector<std::string> &violationLog() const
    {
        return violations_;
    }

    /** Tick of the first recorded violation (0 if none). */
    Tick firstViolationTick() const { return firstViolationTick_; }

    /** Description of the first recorded violation ("" if none). */
    const std::string &firstViolation() const { return firstViolation_; }

    /** Kind of the first recorded violation. */
    ViolationKind firstViolationKind() const { return firstKind_; }

    /**
     * Node implicated in the first violation: for lock violations the
     * *owning* node whose mutual exclusion was broken (the holder of the
     * lock at the time), for value violations the reading node.
     * invalidNode when no violation was recorded (or no owner exists,
     * e.g. an unlock of a never-locked block).
     */
    NodeId firstViolationNode() const { return firstNode_; }

    /**
     * Stats-tree suffix of the counter the first violation incremented:
     * "checker.lockViolations" for lock violations, "checker.violations"
     * for value violations, "" when clean.  Campaign rows prepend the
     * system name and append "@node<N>" to build failing_stat.
     */
    std::string firstViolationStat() const;

    /** Expected current value of a word (for tests). */
    Word expectedValue(Addr word_addr) const;

    /** Current lock holder of a block, or invalidNode. */
    NodeId lockHolder(Addr block_addr) const;

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar readsChecked;
    stats::Scalar writesRecorded;
    stats::Scalar lockPairs;
    stats::Scalar violationCount;
    stats::Scalar lockViolations;
    /// @}

  private:
    void violation(const std::string &what, Tick when, ViolationKind kind,
                   NodeId owner);

    std::unordered_map<Addr, Word> last_;
    std::unordered_map<Addr, NodeId> lockHolders_;
    std::vector<std::string> violations_;
    Tick firstViolationTick_ = 0;
    std::string firstViolation_;
    ViolationKind firstKind_ = ViolationKind::None;
    NodeId firstNode_ = invalidNode;
};

} // namespace csync

#endif // CSYNC_SYSTEM_CHECKER_HH
