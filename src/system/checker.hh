/**
 * @file
 * Value-level coherence checker (Section C.1's two implementation
 * requirements, made executable):
 *
 *  1. "Serialize conflicting accesses" — every read must return the value
 *     of the *last serialized write* to that word, and lock/unlock pairs
 *     must be mutually exclusive.
 *  2. "Provide the latest version of the data, wherever it may be" —
 *     follows from (1) because caches and memory carry real data in this
 *     simulator; a protocol that loses track of the latest version
 *     surfaces as a value mismatch.
 *
 * Violations are recorded, not fatal, so property tests can assert
 * violations() == 0 and negative tests can observe deliberate breakage.
 */

#ifndef CSYNC_SYSTEM_CHECKER_HH
#define CSYNC_SYSTEM_CHECKER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "system/topology.hh"

namespace csync
{

/**
 * Global serialization monitor.
 */
class Checker
{
  public:
    /** Broad class of a recorded violation (forensics). */
    enum class ViolationKind
    {
        None,
        /** A read observed a value other than the last serialized write. */
        Value,
        /** Lock/unlock mutual exclusion was broken. */
        Lock,
    };

    explicit Checker(stats::Group *stats_parent);

    /**
     * Enter sharded mode for a domain-partitioned parallel run: until
     * foldShards(), every notification is routed by @p map to a
     * per-domain sub-state touched only by that domain's worker thread
     * (the partition guarantees an address is only ever seen by its
     * home domain, so sub-states never interact).  The stats scalars
     * and the global forensic fields stay untouched until the fold.
     */
    void shardByDomain(const AddressMap *map);

    /**
     * Leave sharded mode: merge every domain's counters, maps, and
     * violation records back into the global state.  Records merge in
     * (tick, domain, per-domain order) — a deterministic order that
     * does not depend on worker timing — so firstViolation*() and the
     * stats dump are identical across thread counts.
     */
    void foldShards();

    /** True while notifications are routed per domain. */
    bool sharded() const { return !domains_.empty(); }

    /** A write to @p word_addr serialized with value @p value. */
    void onWrite(NodeId node, Addr word_addr, Word value, Tick when);

    /** A read of @p word_addr observed @p value. */
    void onRead(NodeId node, Addr word_addr, Word value, Tick when);

    /** Node @p node acquired the lock on @p block_addr. */
    void onLockAcquire(NodeId node, Addr block_addr, Tick when);

    /** Node @p node released the lock on @p block_addr. */
    void onLockRelease(NodeId node, Addr block_addr, Tick when);

    /** Total violations recorded. */
    std::uint64_t
    violations() const
    {
        return std::uint64_t(violationCount.value());
    }

    /** Human-readable violation records (capped at 64). */
    const std::vector<std::string> &violationLog() const
    {
        return violations_;
    }

    /** Tick of the first recorded violation (0 if none). */
    Tick firstViolationTick() const { return firstViolationTick_; }

    /** Description of the first recorded violation ("" if none). */
    const std::string &firstViolation() const { return firstViolation_; }

    /** Kind of the first recorded violation. */
    ViolationKind firstViolationKind() const { return firstKind_; }

    /**
     * Node implicated in the first violation: for lock violations the
     * *owning* node whose mutual exclusion was broken (the holder of the
     * lock at the time), for value violations the reading node.
     * invalidNode when no violation was recorded (or no owner exists,
     * e.g. an unlock of a never-locked block).
     */
    NodeId firstViolationNode() const { return firstNode_; }

    /**
     * Stats-tree suffix of the counter the first violation incremented:
     * "checker.lockViolations" for lock violations, "checker.violations"
     * for value violations, "" when clean.  Campaign rows prepend the
     * system name and append "@node<N>" to build failing_stat.
     */
    std::string firstViolationStat() const;

    /** Expected current value of a word (for tests). */
    Word expectedValue(Addr word_addr) const;

    /** Current lock holder of a block, or invalidNode. */
    NodeId lockHolder(Addr block_addr) const;

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar readsChecked;
    stats::Scalar writesRecorded;
    stats::Scalar lockPairs;
    stats::Scalar violationCount;
    stats::Scalar lockViolations;
    /// @}

  private:
    /** One domain's private slice of the monitor during a sharded run:
     *  single-writer (its shard's worker thread), merged at the fold. */
    struct DomainState
    {
        std::unordered_map<Addr, Word> last;
        std::unordered_map<Addr, NodeId> lockHolders;
        std::uint64_t reads = 0;
        std::uint64_t writes = 0;
        std::uint64_t lockPairs = 0;
        std::uint64_t violations = 0;
        std::uint64_t lockViolations = 0;

        struct Record
        {
            Tick when;
            std::string what;
            ViolationKind kind;
            NodeId owner;
        };
        /** First 64 violations in detection order (chronological:
         *  events within a domain execute in tick order). */
        std::vector<Record> records;
    };

    void violation(const std::string &what, Tick when, ViolationKind kind,
                   NodeId owner);
    void domainViolation(DomainState &d, const std::string &what, Tick when,
                         ViolationKind kind, NodeId owner);

    std::unordered_map<Addr, Word> last_;
    std::unordered_map<Addr, NodeId> lockHolders_;
    std::vector<std::string> violations_;
    Tick firstViolationTick_ = 0;
    std::string firstViolation_;
    ViolationKind firstKind_ = ViolationKind::None;
    NodeId firstNode_ = invalidNode;

    /** Non-empty only between shardByDomain() and foldShards(). */
    std::vector<DomainState> domains_;
    const AddressMap *domainMap_ = nullptr;
};

} // namespace csync

#endif // CSYNC_SYSTEM_CHECKER_HH
