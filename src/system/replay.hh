/**
 * @file
 * Directed-trace record/replay: the wire format between the model
 * checker (`src/mc/`), the `csync-mc` CLI, and the tests.  A
 * DirectedTrace is a system shape plus an ordered list of per-cache
 * operations; a TraceReplayer drives the ops through a real System one
 * at a time (settling the event queue between steps, with a bounded
 * budget so ablated configurations that livelock surface as a "stalled"
 * verdict instead of hanging), and renders a ReplayVerdict from the
 * value checker, the structural invariant scan, and a lock-waiter
 * liveness check.  Any trace the explorer or fuzzer flags can be
 * serialized to JSON and replayed bit-identically later.
 */

#ifndef CSYNC_SYSTEM_REPLAY_HH
#define CSYNC_SYSTEM_REPLAY_HH

#include <memory>
#include <string>
#include <vector>

#include "harness/json.hh"
#include "system/system.hh"

namespace csync
{

/** Operation vocabulary of a directed trace. */
enum class DirectedKind : std::uint8_t
{
    Read,
    Write,
    Rmw,
    LockRead,
    UnlockWrite,
    WriteNoFetch,
    /**
     * Displace the target block through the cache's genuine eviction
     * path (including the locked-block purge of Section E.3) by reading
     * a filler block that maps to the same set.  Requires a
     * direct-mapped shape (ways == 1).
     */
    Evict,
};

/** Wire name of a directed kind ("read", "lock_read", "evict", ...). */
const char *directedKindName(DirectedKind k);

/** Parse a wire name; returns false (out untouched) if unknown. */
bool directedKindFromName(const std::string &name, DirectedKind *out);

/** One step of a directed trace. */
struct DirectedOp
{
    unsigned cache = 0;
    DirectedKind kind = DirectedKind::Read;
    Addr addr = 0;
    Word value = 0;
};

/** A replayable trace: system shape + operation sequence. */
struct DirectedTrace
{
    std::string protocol = "bitar";
    unsigned processors = 2;
    unsigned blockWords = 4;
    unsigned frames = 4;
    /** Direct-mapped by default so Evict has a one-read displacement. */
    unsigned ways = 1;
    bool useBusyWaitRegister = true;
    bool busyWaitPriority = true;
    /** Adaptive-protocol tuning (defaults match SystemConfig; only
     *  serialized when non-default so existing traces are untouched). */
    unsigned adaptiveBits = 2;
    unsigned adaptiveInvalidateThreshold = 2;
    unsigned adaptiveUpdateThreshold = 2;
    /** Interconnect preset the trace runs on (TopologyConfig::names();
     *  only serialized when non-default so existing traces are
     *  untouched).  Clustered presets put the snoop filters and L2 tag
     *  directories under the model checker's interleaving search. */
    std::string topology = "single_bus";
    std::vector<DirectedOp> ops;

    /** The SystemConfig this trace runs against. */
    SystemConfig toConfig() const;
};

/** What one replayed step did. */
struct OpOutcome
{
    /** False: the cache was busy (or the replay had stalled) and the op
     *  was skipped. */
    bool issued = false;
    bool completed = false;
    /** A lock op is busy-waiting; it may complete on a later step. */
    bool pending = false;
    Word value = 0;
};

/** End-of-replay verdict. */
struct ReplayVerdict
{
    std::uint64_t checkerViolations = 0;
    unsigned invariantViolations = 0;
    unsigned skippedOps = 0;
    /** The event queue failed to drain within the settle budget (e.g.
     *  bus-retry livelock under busy-wait-register ablation). */
    bool stalled = false;
    /** Lost wakeup: a busy-wait register is armed for a block whose lock
     *  nobody holds any more. */
    bool waiterStuck = false;
    std::string firstProblem;

    bool
    clean() const
    {
        return checkerViolations == 0 && invariantViolations == 0 &&
               !stalled && !waiterStuck;
    }

    /** One-line summary ("clean" or the failure classes). */
    std::string describe() const;
};

/**
 * Replays DirectedOps through a live System, one at a time.
 */
class TraceReplayer
{
  public:
    /** Event-queue budget per settle, in ticks (generous: single ops
     *  complete in tens of ticks; only livelocks exhaust it). */
    static constexpr Tick kSettleBudget = 100000;

    /** Build a fresh system of @p shape; @p shape.ops is ignored (feed
     *  ops through step()). */
    explicit TraceReplayer(const DirectedTrace &shape);

    System &system() { return *sys_; }

    /** Everything fed to step() so far, as a replayable trace. */
    const DirectedTrace &recorded() const { return recorded_; }

    /** Issue one op and settle.  Skips (issued=false) if the cache is
     *  still busy-waiting on a lock, the replay has stalled, or the op
     *  breaks lock discipline (unlock of an unheld block / re-lock of a
     *  held one — program bugs, not protocol bugs). */
    OpOutcome step(const DirectedOp &op);

    /** True while @p cache has an incomplete (busy-waiting) op. */
    bool busy(unsigned cache);

    /** Did an earlier pending op on @p cache complete? */
    bool pendingCompleted(unsigned cache, Word *value = nullptr);

    /** Run the event queue to quiescence (bounded).  False on stall. */
    bool settle();

    /** Settle and evaluate checker + invariants + waiter liveness. */
    ReplayVerdict verdict();

    /** The conflicting filler block Evict reads to displace @p addr. */
    Addr fillerAddr(Addr block_addr) const;

    /**
     * Digest of the quiesced architectural state: frames, busy-wait
     * registers, purged-lock notes, protocol-internal snapshots, memory
     * data + lock tags + source bits, and the checker's serialization
     * model, over every block the trace has touched.  Two replays with
     * equal digests are interchangeable for further exploration.
     */
    std::string digest();

  private:
    struct Slot
    {
        bool issued = false;
        bool completed = false;
        AccessResult result;
    };

    void refresh(unsigned cache);
    void noteBlock(Addr block_addr);

    DirectedTrace shape_;
    DirectedTrace recorded_;
    std::unique_ptr<System> sys_;
    std::vector<Slot> slots_;
    /** Block-aligned addresses the trace has touched (sorted). */
    std::vector<Addr> blocks_;
    bool stalled_ = false;
    unsigned skipped_ = 0;
};

/** Run @p trace through a fresh system and return the final verdict. */
ReplayVerdict replayTrace(const DirectedTrace &trace);

/** @name JSON wire format (see EXPERIMENTS.md, "csync-mc output") */
/// @{
harness::Json traceToJson(const DirectedTrace &t);
bool traceFromJson(const harness::Json &j, DirectedTrace *out,
                   std::string *err);
harness::Json verdictToJson(const ReplayVerdict &v);
/// @}

} // namespace csync

#endif // CSYNC_SYSTEM_REPLAY_HH
