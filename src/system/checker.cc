#include "system/checker.hh"

#include "sim/logging.hh"

namespace csync
{

Checker::Checker(stats::Group *stats_parent)
    : statsGroup("checker", stats_parent),
      readsChecked(&statsGroup, "readsChecked", "reads validated"),
      writesRecorded(&statsGroup, "writesRecorded", "writes serialized"),
      lockPairs(&statsGroup, "lockPairs", "lock acquire/release pairs"),
      violationCount(&statsGroup, "violations", "coherence violations"),
      lockViolations(&statsGroup, "lockViolations",
                     "lock mutual-exclusion violations")
{
}

void
Checker::onWrite(NodeId node, Addr word_addr, Word value, Tick when)
{
    (void)node;
    (void)when;
    ++writesRecorded;
    last_[word_addr] = value;
}

void
Checker::onRead(NodeId node, Addr word_addr, Word value, Tick when)
{
    ++readsChecked;
    auto it = last_.find(word_addr);
    Word expect = it == last_.end() ? 0 : it->second;
    if (value != expect) {
        violation(csprintf(
            "tick %llu node %d read %llx = %llx, expected %llx",
            (unsigned long long)when, node, (unsigned long long)word_addr,
            (unsigned long long)value, (unsigned long long)expect), when,
            ViolationKind::Value, node);
    }
}

void
Checker::onLockAcquire(NodeId node, Addr block_addr, Tick when)
{
    auto it = lockHolders_.find(block_addr);
    if (it != lockHolders_.end() && it->second != invalidNode) {
        // The owning node is the holder whose exclusion was broken.
        violation(csprintf(
            "tick %llu node %d acquired lock %llx held by node %d",
            (unsigned long long)when, node,
            (unsigned long long)block_addr, it->second), when,
            ViolationKind::Lock, it->second);
    }
    lockHolders_[block_addr] = node;
}

void
Checker::onLockRelease(NodeId node, Addr block_addr, Tick when)
{
    auto it = lockHolders_.find(block_addr);
    if (it == lockHolders_.end() || it->second != node) {
        NodeId owner =
            it == lockHolders_.end() ? invalidNode : it->second;
        violation(csprintf(
            "tick %llu node %d released lock %llx it does not hold",
            (unsigned long long)when, node,
            (unsigned long long)block_addr), when,
            ViolationKind::Lock, owner);
    } else {
        ++lockPairs;
        it->second = invalidNode;
    }
}

Word
Checker::expectedValue(Addr word_addr) const
{
    auto it = last_.find(word_addr);
    return it == last_.end() ? 0 : it->second;
}

NodeId
Checker::lockHolder(Addr block_addr) const
{
    auto it = lockHolders_.find(block_addr);
    return it == lockHolders_.end() ? invalidNode : it->second;
}

std::string
Checker::firstViolationStat() const
{
    switch (firstKind_) {
      case ViolationKind::Value:
        return "checker.violations";
      case ViolationKind::Lock:
        return "checker.lockViolations";
      case ViolationKind::None:
        break;
    }
    return {};
}

void
Checker::violation(const std::string &what, Tick when, ViolationKind kind,
                   NodeId owner)
{
    ++violationCount;
    if (kind == ViolationKind::Lock)
        ++lockViolations;
    if (violations_.empty()) {
        firstViolationTick_ = when;
        firstViolation_ = what;
        firstKind_ = kind;
        firstNode_ = owner;
    }
    if (violations_.size() < 64)
        violations_.push_back(what);
    Trace::emit(when, TraceFlag::Checker, "checker", what);
}

} // namespace csync
