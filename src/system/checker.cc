#include "system/checker.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace csync
{

Checker::Checker(stats::Group *stats_parent)
    : statsGroup("checker", stats_parent),
      readsChecked(&statsGroup, "readsChecked", "reads validated"),
      writesRecorded(&statsGroup, "writesRecorded", "writes serialized"),
      lockPairs(&statsGroup, "lockPairs", "lock acquire/release pairs"),
      violationCount(&statsGroup, "violations", "coherence violations"),
      lockViolations(&statsGroup, "lockViolations",
                     "lock mutual-exclusion violations")
{
}

void
Checker::shardByDomain(const AddressMap *map)
{
    sim_assert(map != nullptr, "checker sharding needs an address map");
    sim_assert(domains_.empty(), "checker is already sharded");
    domainMap_ = map;
    domains_.resize(map->numSwitches());
}

void
Checker::onWrite(NodeId node, Addr word_addr, Word value, Tick when)
{
    (void)node;
    (void)when;
    if (!domains_.empty()) {
        DomainState &d = domains_[domainMap_->switchFor(word_addr)];
        ++d.writes;
        d.last[word_addr] = value;
        return;
    }
    ++writesRecorded;
    last_[word_addr] = value;
}

void
Checker::onRead(NodeId node, Addr word_addr, Word value, Tick when)
{
    if (!domains_.empty()) {
        DomainState &d = domains_[domainMap_->switchFor(word_addr)];
        ++d.reads;
        auto it = d.last.find(word_addr);
        Word expect = it == d.last.end() ? 0 : it->second;
        if (value != expect) {
            domainViolation(d, csprintf(
                "tick %llu node %d read %llx = %llx, expected %llx",
                (unsigned long long)when, node,
                (unsigned long long)word_addr, (unsigned long long)value,
                (unsigned long long)expect), when, ViolationKind::Value,
                node);
        }
        return;
    }
    ++readsChecked;
    auto it = last_.find(word_addr);
    Word expect = it == last_.end() ? 0 : it->second;
    if (value != expect) {
        violation(csprintf(
            "tick %llu node %d read %llx = %llx, expected %llx",
            (unsigned long long)when, node, (unsigned long long)word_addr,
            (unsigned long long)value, (unsigned long long)expect), when,
            ViolationKind::Value, node);
    }
}

void
Checker::onLockAcquire(NodeId node, Addr block_addr, Tick when)
{
    if (!domains_.empty()) {
        DomainState &d = domains_[domainMap_->switchFor(block_addr)];
        auto it = d.lockHolders.find(block_addr);
        if (it != d.lockHolders.end() && it->second != invalidNode) {
            domainViolation(d, csprintf(
                "tick %llu node %d acquired lock %llx held by node %d",
                (unsigned long long)when, node,
                (unsigned long long)block_addr, it->second), when,
                ViolationKind::Lock, it->second);
        }
        d.lockHolders[block_addr] = node;
        return;
    }
    auto it = lockHolders_.find(block_addr);
    if (it != lockHolders_.end() && it->second != invalidNode) {
        // The owning node is the holder whose exclusion was broken.
        violation(csprintf(
            "tick %llu node %d acquired lock %llx held by node %d",
            (unsigned long long)when, node,
            (unsigned long long)block_addr, it->second), when,
            ViolationKind::Lock, it->second);
    }
    lockHolders_[block_addr] = node;
}

void
Checker::onLockRelease(NodeId node, Addr block_addr, Tick when)
{
    if (!domains_.empty()) {
        DomainState &d = domains_[domainMap_->switchFor(block_addr)];
        auto it = d.lockHolders.find(block_addr);
        if (it == d.lockHolders.end() || it->second != node) {
            NodeId owner =
                it == d.lockHolders.end() ? invalidNode : it->second;
            domainViolation(d, csprintf(
                "tick %llu node %d released lock %llx it does not hold",
                (unsigned long long)when, node,
                (unsigned long long)block_addr), when, ViolationKind::Lock,
                owner);
        } else {
            ++d.lockPairs;
            it->second = invalidNode;
        }
        return;
    }
    auto it = lockHolders_.find(block_addr);
    if (it == lockHolders_.end() || it->second != node) {
        NodeId owner =
            it == lockHolders_.end() ? invalidNode : it->second;
        violation(csprintf(
            "tick %llu node %d released lock %llx it does not hold",
            (unsigned long long)when, node,
            (unsigned long long)block_addr), when,
            ViolationKind::Lock, owner);
    } else {
        ++lockPairs;
        it->second = invalidNode;
    }
}

void
Checker::foldShards()
{
    sim_assert(!domains_.empty(), "checker fold without sharding");

    // Counters sum exactly: they are integer-valued doubles well below
    // the 2^53 mantissa limit.
    for (const auto &d : domains_) {
        readsChecked += double(d.reads);
        writesRecorded += double(d.writes);
        lockPairs += double(d.lockPairs);
        violationCount += double(d.violations);
        lockViolations += double(d.lockViolations);
    }

    // The address partition makes the maps disjoint, so merging cannot
    // conflict.
    for (auto &d : domains_) {
        for (auto &[addr, val] : d.last)
            last_[addr] = val;
        for (auto &[addr, node] : d.lockHolders)
            lockHolders_[addr] = node;
    }

    // Merge violation records in (tick, domain, detection order) — a
    // key independent of worker timing, so forensics are identical at
    // any thread count.
    struct Tagged
    {
        Tick when;
        std::size_t domain;
        std::size_t idx;
        const DomainState::Record *rec;
    };
    std::vector<Tagged> merged;
    for (std::size_t k = 0; k < domains_.size(); ++k)
        for (std::size_t i = 0; i < domains_[k].records.size(); ++i)
            merged.push_back(
                {domains_[k].records[i].when, k, i, &domains_[k].records[i]});
    std::sort(merged.begin(), merged.end(),
              [](const Tagged &a, const Tagged &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  if (a.domain != b.domain)
                      return a.domain < b.domain;
                  return a.idx < b.idx;
              });
    for (const auto &t : merged) {
        if (violations_.empty()) {
            firstViolationTick_ = t.rec->when;
            firstViolation_ = t.rec->what;
            firstKind_ = t.rec->kind;
            firstNode_ = t.rec->owner;
        }
        if (violations_.size() < 64)
            violations_.push_back(t.rec->what);
    }

    domains_.clear();
    domainMap_ = nullptr;
}

Word
Checker::expectedValue(Addr word_addr) const
{
    if (!domains_.empty()) {
        const DomainState &d = domains_[domainMap_->switchFor(word_addr)];
        auto dit = d.last.find(word_addr);
        if (dit != d.last.end())
            return dit->second;
    }
    auto it = last_.find(word_addr);
    return it == last_.end() ? 0 : it->second;
}

NodeId
Checker::lockHolder(Addr block_addr) const
{
    if (!domains_.empty()) {
        const DomainState &d = domains_[domainMap_->switchFor(block_addr)];
        auto dit = d.lockHolders.find(block_addr);
        if (dit != d.lockHolders.end())
            return dit->second;
    }
    auto it = lockHolders_.find(block_addr);
    return it == lockHolders_.end() ? invalidNode : it->second;
}

std::string
Checker::firstViolationStat() const
{
    switch (firstKind_) {
      case ViolationKind::Value:
        return "checker.violations";
      case ViolationKind::Lock:
        return "checker.lockViolations";
      case ViolationKind::None:
        break;
    }
    return {};
}

void
Checker::violation(const std::string &what, Tick when, ViolationKind kind,
                   NodeId owner)
{
    ++violationCount;
    if (kind == ViolationKind::Lock)
        ++lockViolations;
    if (violations_.empty()) {
        firstViolationTick_ = when;
        firstViolation_ = what;
        firstKind_ = kind;
        firstNode_ = owner;
    }
    if (violations_.size() < 64)
        violations_.push_back(what);
    Trace::emit(when, TraceFlag::Checker, "checker", what);
}

void
Checker::domainViolation(DomainState &d, const std::string &what, Tick when,
                         ViolationKind kind, NodeId owner)
{
    ++d.violations;
    if (kind == ViolationKind::Lock)
        ++d.lockViolations;
    if (d.records.size() < 64)
        d.records.push_back({when, what, kind, owner});
    // The trace channel is mutex-serialized, so emitting from a shard
    // thread is safe (line order across shards is timing-dependent, but
    // traces are narration, never golden data).
    Trace::emit(when, TraceFlag::Checker, "checker", what);
}

} // namespace csync
