#include "mem/memory.hh"

namespace csync
{

Memory::Memory(std::string name, EventQueue *eq, unsigned block_words,
               stats::Group *stats_parent)
    : SimObject(std::move(name), eq),
      statsGroup(this->name(), stats_parent),
      blockReads(&statsGroup, "blockReads", "block reads serviced"),
      blockWrites(&statsGroup, "blockWrites", "block writes (flushes)"),
      wordReads(&statsGroup, "wordReads", "single-word reads"),
      wordWrites(&statsGroup, "wordWrites", "single-word write-throughs"),
      blockWords_(block_words)
{
    sim_assert(block_words > 0, "memory needs a positive block size");
}

std::vector<Word>
Memory::readBlock(Addr block_addr)
{
    sim_assert(block_addr == blockAlign(block_addr),
               "unaligned block read %llx", (unsigned long long)block_addr);
    ++blockReads;
    auto it = store_.find(block_addr);
    if (it == store_.end())
        return std::vector<Word>(blockWords_, 0);
    return it->second;
}

std::vector<Word>
Memory::peekBlock(Addr block_addr) const
{
    auto it = store_.find(blockAlign(block_addr));
    if (it == store_.end())
        return std::vector<Word>(blockWords_, 0);
    return it->second;
}

void
Memory::writeBlock(Addr block_addr, const std::vector<Word> &data)
{
    sim_assert(block_addr == blockAlign(block_addr),
               "unaligned block write %llx", (unsigned long long)block_addr);
    sim_assert(data.size() == blockWords_, "bad block payload size %zu",
               data.size());
    ++blockWrites;
    store_[block_addr] = data;
}

Word
Memory::readWord(Addr word_addr)
{
    ++wordReads;
    Addr block = blockAlign(word_addr);
    auto it = store_.find(block);
    if (it == store_.end())
        return 0;
    return it->second[(word_addr - block) / bytesPerWord];
}

void
Memory::writeWord(Addr word_addr, Word value)
{
    ++wordWrites;
    Addr block = blockAlign(word_addr);
    auto it = store_.find(block);
    if (it == store_.end())
        it = store_.emplace(block, std::vector<Word>(blockWords_, 0)).first;
    it->second[(word_addr - block) / bytesPerWord] = value;
}

bool
Memory::cacheOwned(Addr block_addr) const
{
    return ownedBlocks_.count(blockAlign(block_addr)) > 0;
}

void
Memory::setCacheOwned(Addr block_addr, bool owned)
{
    if (owned)
        ownedBlocks_.insert(blockAlign(block_addr));
    else
        ownedBlocks_.erase(blockAlign(block_addr));
}

bool
Memory::memLocked(Addr block_addr) const
{
    return lockTags_.count(blockAlign(block_addr)) > 0;
}

bool
Memory::memWaiter(Addr block_addr) const
{
    auto it = lockTags_.find(blockAlign(block_addr));
    return it != lockTags_.end() && it->second.waiter;
}

void
Memory::setMemLock(Addr block_addr, bool locked, NodeId holder)
{
    Addr b = blockAlign(block_addr);
    if (locked)
        lockTags_[b] = LockTag{false, holder};
    else
        lockTags_.erase(b);
}

void
Memory::setMemWaiter(Addr block_addr, bool waiter)
{
    auto it = lockTags_.find(blockAlign(block_addr));
    if (it != lockTags_.end())
        it->second.waiter = waiter;
}

NodeId
Memory::memLockHolder(Addr block_addr) const
{
    auto it = lockTags_.find(blockAlign(block_addr));
    return it == lockTags_.end() ? invalidNode : it->second.holder;
}

} // namespace csync
