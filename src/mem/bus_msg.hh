/**
 * @file
 * The bus transaction vocabulary of a full-broadcast, single-bus system
 * (Section A.2), covering every request type used by the ten protocols:
 * block fetches with read/write/lock privilege, the one-cycle invalidate
 * signal (Feature 4), word write-throughs and write-broadcasts (Section D),
 * write-back flushes, write-without-fetch (Feature 9), the unlock
 * broadcast (Section E.4), and I/O transfers (Feature 11).
 */

#ifndef CSYNC_MEM_BUS_MSG_HH
#define CSYNC_MEM_BUS_MSG_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace csync
{

/** Kinds of bus transactions. */
enum class BusReq : std::uint8_t
{
    /** Fetch a block with read (shared-access) privilege. */
    ReadShared,
    /** Fetch a block with write (sole-access) privilege; invalidates other
     *  copies concurrently if the bus supports it (Feature 4). */
    ReadExclusive,
    /** Gain write privilege for an already-valid block: one-cycle
     *  invalidation, no data transfer (Figure 5 / Feature 4). */
    Upgrade,
    /** Fetch a block with write privilege and lock it (Figure 6; Bitar). */
    ReadLock,
    /** Write one word through to main memory, invalidating other copies
     *  (classic scheme; Goodman's write-once first write). */
    WriteWord,
    /** Broadcast one word to other caches holding the block (and possibly
     *  memory): Dragon / Firefly / Rudolph-Segall update write. */
    UpdateWord,
    /** Flush a (dirty) block to main memory on purge. */
    WriteBack,
    /** Claim a whole block with write privilege without fetching data
     *  (Feature 9: saving process state). */
    WriteNoFetch,
    /** One-cycle broadcast that a locked block was unlocked (Figure 8). */
    UnlockBroadcast,
    /** I/O input: invalidate the block everywhere while memory is
     *  written by the I/O processor (Section E.2). */
    IOInvalidate,
    /** I/O non-paging output: read latest version; the source cache keeps
     *  its source status (Section E.2). */
    IOReadKeepSource,
};

/** Number of distinct BusReq codes (for tables and "all types" loops). */
inline constexpr std::size_t kNumBusReqs =
    std::size_t(BusReq::IOReadKeepSource) + 1;

/** Human-readable name of a bus request type. */
const char *busReqName(BusReq req);

/**
 * Parse a request-type name produced by busReqName().
 * @return true and set @p out on a match, false on an unknown name.
 */
bool busReqFromName(const std::string &name, BusReq *out);

/** True for requests that transfer a whole block of data to the requester. */
bool transfersBlock(BusReq req);

/**
 * Which traffic system a reference belongs to in the paper's Aquarius
 * design (Section E.2, Figure 11): hard atoms ride the synchronization
 * system, instructions and other data the data system.  On a single-bus
 * topology the class is recorded but changes nothing.
 */
enum class TrafficClass : std::uint8_t
{
    /** Instruction fetches and non-synchronization data. */
    Data,
    /** Hard atoms: lock/unlock traffic, RMWs, I/O broadcasts. */
    Sync,
};

/** Number of traffic classes. */
inline constexpr std::size_t kNumTrafficClasses = 2;

/** Human-readable name of a traffic class ("data" / "sync"). */
const char *trafficClassName(TrafficClass cls);

/** Bit in a carries-mask (SwitchSpec::carries) for class @p cls. */
inline constexpr unsigned
trafficClassBit(TrafficClass cls)
{
    return 1u << unsigned(cls);
}

/** Carries-mask covering every traffic class. */
inline constexpr unsigned kAllTraffic =
    trafficClassBit(TrafficClass::Data) | trafficClassBit(TrafficClass::Sync);

/**
 * One bus transaction as broadcast to all snoopers.
 */
struct BusMsg
{
    BusReq req = BusReq::ReadShared;
    /** Traffic system the reference belongs to (Section E.2). */
    TrafficClass cls = TrafficClass::Data;
    /** Block-aligned address of the target block. */
    Addr blockAddr = 0;
    /** Requesting node (cache id), or invalidNode for an I/O device. */
    NodeId requester = invalidNode;
    /** Word address for WriteWord/UpdateWord. */
    Addr wordAddr = 0;
    /** Data value for WriteWord/UpdateWord. */
    Word wordData = 0;
    /** True if the requester already has valid data (privilege only). */
    bool hasData = false;
    /** Compiler static hint: target data is unshared (Yen / Katz,
     *  Feature 5 'S'). */
    bool privateHint = false;
    /** For UpdateWord: also update main memory (Firefly writes through to
     *  memory for shared data; Dragon does not). */
    bool updateMemory = false;
    /** Requester's transfer-unit size in words (Section D.3); 0 = whole
     *  block.  Memory supplies charge only one unit when set. */
    unsigned unitWords = 0;
    /** Block payload for WriteBack transactions. */
    std::vector<Word> blockData;
    /** @name Piggybacked victim write-back.
     * A fetch that displaces a dirty victim carries the victim's flush in
     * the same bus tenure, keeping the bus atomic (no window where the
     * victim's latest version is in neither a cache nor memory).
     */
    /// @{
    bool wbValid = false;
    Addr wbAddr = 0;
    std::vector<Word> wbData;
    /** Words actually flushed (dirty transfer units); 0 = whole block. */
    unsigned wbWordCount = 0;
    /// @}
};

/**
 * What one snooping cache answered for a transaction.  Snoopers apply
 * their own state changes as they answer; this reply carries what the
 * requester and the bus need to know.
 */
struct SnoopReply
{
    /** The snooper has a valid copy (drives the wired-OR hit line). */
    bool hasCopy = false;
    /** The snooper has source status for the block. */
    bool source = false;
    /** The snooper's copy is dirty (clean/dirty status, Figure 4). */
    bool dirty = false;
    /** The snooper will supply the block (cache-to-cache transfer). */
    bool supplyData = false;
    /** The block is locked at the snooper: the request cannot be
     *  serviced; the snooper has recorded a waiter (Figure 7). */
    bool locked = false;
    /** The snooper wrote its dirty block back as part of this snoop
     *  (Synapse-style: memory is updated, requester must re-fetch). */
    bool flushedFirst = false;
    /** Flush the supplied block to memory concurrently with the transfer
     *  (Feature 7 'F', as in Papamarcos & Patel). */
    bool flushToMemory = false;
    /** Block payload when supplyData (or flushedFirst) is set. */
    std::vector<Word> data;
    /** Words actually moved (requested unit + dirty units, Section
     *  D.3); 0 = the whole block. */
    unsigned transferWordCount = 0;
    /** Per-unit dirty bits travelling with the block (status transfer,
     *  Feature 7 'S'); empty when units are disabled. */
    std::vector<bool> unitDirty;
};

/**
 * The aggregate of every snooper's reply plus memory's contribution,
 * handed to the requester when its transaction completes.
 */
struct SnoopResult
{
    /** Some other cache has a valid copy (the hit line, Figure 1). */
    bool hit = false;
    /** A source cache existed (the dirty-status lines were driven). */
    bool sourceExisted = false;
    /** Clean/dirty status supplied by the source (Figure 4). */
    bool sourceDirty = false;
    /** Who supplied the data block (invalidNode => main memory). */
    NodeId supplier = invalidNode;
    /** Number of other caches that had a valid copy. */
    int copies = 0;
    /** The block was locked (in a cache, or in memory's lock tags);
     *  the requester must busy-wait (Figure 7). */
    bool locked = false;
    /** A Synapse-style flush-then-refetch occurred (counted as a retry). */
    bool retried = false;
    /** Data words delivered for block transfers (empty otherwise). */
    std::vector<Word> data;
    /** Per-unit dirty bits inherited with the block (Section D.3). */
    std::vector<bool> unitDirty;
};

} // namespace csync

#endif // CSYNC_MEM_BUS_MSG_HH
