/**
 * @file
 * I/O processor model (Section E.2 / Feature 11).  Three operations:
 *
 *  - input: the I/O processor writes a block to memory while invalidating
 *    it in all caches (a one-cycle IOInvalidate broadcast rides the bus;
 *    the data goes to memory directly);
 *  - page-out: fetch the block with write privilege (invalidating all
 *    copies) and deliver the latest version;
 *  - non-paging output: a special read that tells the source cache not to
 *    give up source status.
 */

#ifndef CSYNC_MEM_IO_DEVICE_HH
#define CSYNC_MEM_IO_DEVICE_HH

#include <deque>
#include <functional>
#include <vector>

#include "mem/interconnect.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "system/checker.hh"

namespace csync
{

/**
 * A DMA-style I/O processor on the broadcast bus.
 */
class IODevice : public SimObject, public BusClient
{
  public:
    /** Callback delivering the data read (empty for input). */
    using IOCallback = std::function<void(const std::vector<Word> &)>;

    IODevice(std::string name, EventQueue *eq, NodeId id,
             Interconnect *bus, Checker *checker,
             stats::Group *stats_parent);

    /** Write @p data to @p block_addr, invalidating all cached copies. */
    void input(Addr block_addr, std::vector<Word> data, IOCallback cb);

    /** Page the block out: fetch the latest version with write
     *  privilege (invalidates all copies). */
    void pageOut(Addr block_addr, IOCallback cb);

    /** Non-paging output: read the latest version; sources keep their
     *  status. */
    void output(Addr block_addr, IOCallback cb);

    /** True if no operation is pending. */
    bool idle() const { return pending_.empty() && !inFlight_; }

    /** @name BusClient interface */
    /// @{
    NodeId nodeId() const override { return id_; }
    bool busGrant(BusMsg &msg) override;
    SnoopReply snoop(const BusMsg &msg) override;
    void busComplete(const BusMsg &msg, const SnoopResult &res) override;
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar inputs;
    stats::Scalar pageOuts;
    stats::Scalar outputs;
    stats::Scalar lockedRetries;
    /// @}

  private:
    struct IOOp
    {
        BusReq req;
        Addr blockAddr;
        std::vector<Word> data;
        IOCallback cb;
    };

    void post(IOOp op);

    NodeId id_;
    Interconnect *bus_;
    Checker *checker_;
    std::deque<IOOp> pending_;
    bool inFlight_ = false;
};

} // namespace csync

#endif // CSYNC_MEM_IO_DEVICE_HH
