/**
 * @file
 * The single, atomic, full-broadcast bus (Section A.2).  At each setting
 * of the interconnect exactly one requester broadcasts its request; every
 * other cache snoops it and answers over wired-OR lines (hit, dirty
 * status, busy/locked); the block is supplied by the source cache if one
 * exists, otherwise by main memory.
 *
 * Arbitration is delegated to a pluggable ArbitrationPolicy (round-robin
 * by default; see mem/arbitration.hh), except that a request posted with
 * BusPriority::BusyWait uses the dedicated most-significant priority bit
 * the paper gives to busy-wait registers (Section E.4), and always wins
 * over normal requests regardless of discipline.
 */

#ifndef CSYNC_MEM_BUS_HH
#define CSYNC_MEM_BUS_HH

#include <memory>
#include <optional>
#include <vector>

#include "mem/arbitration.hh"
#include "mem/bus_msg.hh"
#include "mem/interconnect.hh"
#include "mem/memory.hh"
#include "mem/timing.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace csync
{

class SnoopGate;

/**
 * The broadcast bus: arbitration, snooping, data routing, and timing —
 * the shared-bus instantiation of Interconnect.
 */
class Bus : public Interconnect
{
  public:
    /**
     * @param carries Traffic classes this switch should carry
     *        (kAllTraffic for a lone bus).
     * @param class_stats Register per-traffic-class counters.  Off by
     *        default so single-bus stat dumps are unchanged; a
     *        multi-switch System turns it on for every switch.
     * @param arbitration Service discipline name (mem/arbitration.hh);
     *        the default reproduces the paper's round-robin exactly.
     */
    Bus(std::string name, EventQueue *eq, Memory *memory,
        const BusTiming &timing, stats::Group *stats_parent,
        unsigned carries = kAllTraffic, bool class_stats = false,
        const std::string &arbitration = "round_robin");

    /** Attach a client (caches in nodeId order, then I/O devices). */
    void addClient(BusClient *client) override;

    /** Main memory behind the bus. */
    Memory &memory() override { return *memory_; }

    /** Timing parameters. */
    const BusTiming &timing() const override { return timing_; }

    /**
     * Post a bus request for @p client.  A client has at most one pending
     * request; re-posting updates its priority and traffic class.
     */
    void request(BusClient *client, BusPriority pri = BusPriority::Normal,
                 TrafficClass cls = TrafficClass::Data) override;

    /** The service discipline arbitrating this bus. */
    const ArbitrationPolicy &arbitration() const { return *arb_; }

    /** Withdraw a pending request (e.g. busy-wait loser). */
    void cancel(BusClient *client) override;

    /** True if @p client currently has a request queued. */
    bool requestPending(const BusClient *client) const override;

    /**
     * Install the cluster-boundary snoop gate (hierarchical topologies;
     * see mem/snoop_gate.hh).  Null — the default, and the only state
     * flat topologies ever see — broadcasts every transaction to every
     * client exactly as before.  The gate is owned by its
     * CoherenceLevel and must outlive the bus's last transaction.
     */
    void setSnoopGate(SnoopGate *gate) { gate_ = gate; }

    /** The installed boundary gate, or null. */
    SnoopGate *snoopGate() const { return gate_; }

    /** True while a transaction is in flight. */
    bool busy() const override { return busy_; }

    /** True once any transaction has been broadcast (diagnostics). */
    bool hasLastMsg() const override { return hasLastMsg_; }

    /** The most recently broadcast message (valid if hasLastMsg()). */
    const BusMsg &lastMsg() const override { return lastMsg_; }

    /** Tick at which lastMsg() was broadcast. */
    Tick lastMsgTick() const override { return lastMsgTick_; }

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar transactions;
    stats::Scalar busyCycles;
    stats::Scalar dataTransferCycles;
    stats::Scalar memSupplies;
    stats::Scalar cacheSupplies;
    stats::Scalar lockedResponses;
    stats::Scalar retries;
    stats::Scalar highPriorityGrants;
    stats::Scalar sourceArbitrations;
    /// @}

    /** Per-request-type transaction count. */
    double typeCount(BusReq req) const;

    /**
     * Transactions of traffic class @p cls (0 unless per-class counters
     * were enabled at construction).
     */
    double classCount(TrafficClass cls) const;

    /**
     * Transactions whose class is outside this switch's carries() mask
     * (0 unless per-class counters were enabled).  Nonzero means the
     * topology routes references the paper would put on the other
     * system — e.g. data traffic in the sync bus's address range.
     */
    double misroutedCount() const;

  protected:
    /**
     * @name Fault-injection hooks
     * No-ops on the plain bus; FaultyBus overrides them to perturb runs
     * with legal-but-adversarial timing.  They fire at points where the
     * perturbation is pure timing — in particular vetoGrant() is asked
     * *before* busGrant(), so a refused winner has observed no state
     * change and simply retries later.
     */
    /// @{
    /** Ticks to hold the bus idle before picking a winner; 0 = none. */
    virtual Tick preArbitrationStall() { return 0; }

    /**
     * Refuse the arbitration winner's tenure (a NAK).  The hook is
     * responsible for eventually re-posting @p client's request.
     */
    virtual bool vetoGrant(BusClient *client, BusPriority pri,
                           TrafficClass cls)
    {
        (void)client;
        (void)pri;
        (void)cls;
        return false;
    }

    /** Extra ticks a cache-to-cache supply takes; 0 = none. */
    virtual Tick supplyExtraDelay(const BusMsg &msg, const SnoopResult &res)
    {
        (void)msg;
        (void)res;
        return 0;
    }

    /**
     * @p client's turn on the bus ended — either its transaction
     * completed or it declined a grant (its need had evaporated).
     */
    virtual void onTransactionComplete(BusClient *client) { (void)client; }
    /// @}

  private:
    struct Pending
    {
        BusClient *client;
        BusPriority pri;
        TrafficClass cls;
        Tick posted;
    };

    void scheduleArbitration();
    void arbitrate();
    void execute(BusClient *requester, BusMsg msg);

    /** Compute duration and move data for one transaction. */
    Tick service(BusMsg &msg, SnoopResult &res, int suppliers);

    Memory *memory_;
    BusTiming timing_;
    std::vector<std::unique_ptr<stats::Scalar>> perType_;
    /** Per-traffic-class counters; registered only when class_stats. */
    std::vector<std::unique_ptr<stats::Scalar>> perClass_;
    std::unique_ptr<stats::Scalar> misrouted_;
    std::vector<BusClient *> clients_;
    std::vector<Pending> queue_;
    SnoopGate *gate_ = nullptr;
    std::unique_ptr<ArbitrationPolicy> arb_;
    bool busy_ = false;
    bool arbScheduled_ = false;
    BusMsg lastMsg_;
    bool hasLastMsg_ = false;
    Tick lastMsgTick_ = 0;
};

} // namespace csync

#endif // CSYNC_MEM_BUS_HH
