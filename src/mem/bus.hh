/**
 * @file
 * The single, atomic, full-broadcast bus (Section A.2).  At each setting
 * of the interconnect exactly one requester broadcasts its request; every
 * other cache snoops it and answers over wired-OR lines (hit, dirty
 * status, busy/locked); the block is supplied by the source cache if one
 * exists, otherwise by main memory.
 *
 * Arbitration is round-robin, except that a request posted with
 * BusPriority::BusyWait uses the dedicated most-significant priority bit
 * the paper gives to busy-wait registers (Section E.4), and always wins
 * over normal requests.
 */

#ifndef CSYNC_MEM_BUS_HH
#define CSYNC_MEM_BUS_HH

#include <memory>
#include <optional>
#include <vector>

#include "mem/bus_msg.hh"
#include "mem/memory.hh"
#include "mem/timing.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace csync
{

/** Arbitration priority classes. */
enum class BusPriority : int
{
    Normal = 0,
    /** The dedicated high-priority level used by busy-wait registers when
     *  an unlock broadcast fires (Section E.4). */
    BusyWait = 1,
};

/**
 * Interface every bus client (cache or I/O device) implements.
 */
class BusClient
{
  public:
    virtual ~BusClient() = default;

    /** Unique id of this node on the bus. */
    virtual NodeId nodeId() const = 0;

    /**
     * The client won arbitration.  Fill in @p msg and return true, or
     * return false to decline (e.g. the awaited lock was already taken by
     * another winner).
     */
    virtual bool busGrant(BusMsg &msg) = 0;

    /**
     * Snoop a transaction broadcast by another node.  The client applies
     * its own state changes and answers with what it drove onto the
     * bus lines.
     */
    virtual SnoopReply snoop(const BusMsg &msg) = 0;

    /** The client's own transaction completed. */
    virtual void busComplete(const BusMsg &msg, const SnoopResult &res) = 0;
};

/**
 * The broadcast bus: arbitration, snooping, data routing, and timing.
 */
class Bus : public SimObject
{
  public:
    Bus(std::string name, EventQueue *eq, Memory *memory,
        const BusTiming &timing, stats::Group *stats_parent);

    /** Attach a client (caches in nodeId order, then I/O devices). */
    void addClient(BusClient *client);

    /** Main memory behind the bus. */
    Memory &memory() { return *memory_; }

    /** Timing parameters. */
    const BusTiming &timing() const { return timing_; }

    /**
     * Post a bus request for @p client.  A client has at most one pending
     * request; re-posting updates its priority.
     */
    void request(BusClient *client, BusPriority pri = BusPriority::Normal);

    /** Withdraw a pending request (e.g. busy-wait loser). */
    void cancel(BusClient *client);

    /** True if @p client currently has a request queued. */
    bool requestPending(const BusClient *client) const;

    /** True while a transaction is in flight. */
    bool busy() const { return busy_; }

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar transactions;
    stats::Scalar busyCycles;
    stats::Scalar dataTransferCycles;
    stats::Scalar memSupplies;
    stats::Scalar cacheSupplies;
    stats::Scalar lockedResponses;
    stats::Scalar retries;
    stats::Scalar highPriorityGrants;
    stats::Scalar sourceArbitrations;
    /// @}

    /** Per-request-type transaction count. */
    double typeCount(BusReq req) const;

  private:
    struct Pending
    {
        BusClient *client;
        BusPriority pri;
        Tick posted;
    };

    void scheduleArbitration();
    void arbitrate();
    void execute(BusClient *requester, BusMsg msg);

    /** Compute duration and move data for one transaction. */
    Tick service(BusMsg &msg, SnoopResult &res, int suppliers);

    Memory *memory_;
    BusTiming timing_;
    std::vector<std::unique_ptr<stats::Scalar>> perType_;
    std::vector<BusClient *> clients_;
    std::vector<Pending> queue_;
    bool busy_ = false;
    bool arbScheduled_ = false;
    NodeId lastGranted_ = invalidNode;
};

} // namespace csync

#endif // CSYNC_MEM_BUS_HH
