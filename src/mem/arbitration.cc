#include "mem/arbitration.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace csync
{

namespace
{

/**
 * The paper's discipline: scan node ids circularly starting just after
 * the last winner, earliest queue position breaking exact ties.  This
 * reproduces the historical Bus::arbitrate() loop bit for bit.
 */
class RoundRobinPolicy : public ArbitrationPolicy
{
  public:
    std::string name() const override { return "round_robin"; }

    std::size_t
    pick(const std::vector<ArbRequest> &reqs, unsigned numClients) override
    {
        int n = int(numClients);
        std::size_t best_idx = 0;
        int best_key = n + 1;
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            int id = reqs[i].node;
            int key = ((id - last_ - 1) % n + n) % n;
            if (key < best_key) {
                best_key = key;
                best_idx = i;
            }
        }
        return best_idx;
    }

    void onGrant(NodeId node, TrafficClass) override { last_ = node; }

  private:
    NodeId last_ = invalidNode;
};

/**
 * First-come-first-served: the oldest posted request wins; among
 * requests posted on the same tick the earliest queue position (i.e.
 * posting order) wins.
 */
class FcfsPolicy : public ArbitrationPolicy
{
  public:
    std::string name() const override { return "fcfs"; }

    std::size_t
    pick(const std::vector<ArbRequest> &reqs, unsigned) override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < reqs.size(); ++i)
            if (reqs[i].posted < reqs[best].posted)
                best = i;
        return best;
    }
};

/**
 * Nikolov & Lerato's alternating-priority discipline, mapped onto the
 * paper's two traffic systems: the bus alternates which class (sync
 * hard atoms vs ordinary data) it prefers, serving round-robin within
 * the preferred class and falling back to the other class when no
 * preferred request is pending.  Sync is preferred first, so a lone
 * hard atom is never made to wait behind a data stream.
 */
class AlternatingPriorityPolicy : public ArbitrationPolicy
{
  public:
    std::string name() const override { return "alternating_priority"; }

    std::size_t
    pick(const std::vector<ArbRequest> &reqs, unsigned numClients) override
    {
        TrafficClass want =
            preferSync_ ? TrafficClass::Sync : TrafficClass::Data;
        bool have_want = std::any_of(
            reqs.begin(), reqs.end(),
            [want](const ArbRequest &r) { return r.cls == want; });
        // No preferred request pending: serve the other class instead
        // of idling (every candidate is of that class then).
        TrafficClass serving = have_want ? want
                               : want == TrafficClass::Sync
                                   ? TrafficClass::Data
                                   : TrafficClass::Sync;
        // Rotation is per class, so an interleaved grant of the other
        // class can never reset this class's round-robin scan (which
        // would pin the grant on one node and starve its neighbours).
        NodeId last = last_[unsigned(serving)];
        int n = int(numClients);
        std::size_t best_idx = 0;
        int best_key = n + 1;
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            if (reqs[i].cls != serving)
                continue;
            int key = ((int(reqs[i].node) - last - 1) % n + n) % n;
            if (key < best_key) {
                best_key = key;
                best_idx = i;
            }
        }
        return best_idx;
    }

    void
    onGrant(NodeId node, TrafficClass cls) override
    {
        last_[unsigned(cls)] = node;
        // Alternate: after serving one class, prefer the other.
        preferSync_ = cls == TrafficClass::Data;
    }

  private:
    NodeId last_[kNumTrafficClasses] = {invalidNode, invalidNode};
    bool preferSync_ = true;
};

} // namespace

std::unique_ptr<ArbitrationPolicy>
ArbitrationRegistry::make(const std::string &name)
{
    if (name == "round_robin")
        return std::make_unique<RoundRobinPolicy>();
    if (name == "fcfs")
        return std::make_unique<FcfsPolicy>();
    if (name == "alternating_priority")
        return std::make_unique<AlternatingPriorityPolicy>();
    fatal("unknown arbitration '%s'", name.c_str());
}

bool
ArbitrationRegistry::known(const std::string &name)
{
    const auto &all = names();
    return std::find(all.begin(), all.end(), name) != all.end();
}

const std::vector<std::string> &
ArbitrationRegistry::names()
{
    static const std::vector<std::string> all = {
        "alternating_priority",
        "fcfs",
        "round_robin",
    };
    return all;
}

} // namespace csync
