/**
 * @file
 * The interconnect abstraction behind a multi-switch System (Section E.2,
 * Figure 11).  An Interconnect is anything a cache port can post requests
 * to: the shared broadcast bus is one instantiation (Bus keeps the
 * arbitration/snoop/complete machinery); the Aquarius design instantiates
 * two — a synchronization bus and a data switch — each backed by its own
 * partition of main memory.
 *
 * Clients see one uniform contract: addClient() in nodeId order, then
 * request()/cancel() and the busGrant/snoop/busComplete callbacks of
 * BusClient.  Which interconnect a reference uses is decided above this
 * layer (the AddressMap in src/system/topology.hh); which traffic class
 * it belongs to rides in BusMsg::cls.
 */

#ifndef CSYNC_MEM_INTERCONNECT_HH
#define CSYNC_MEM_INTERCONNECT_HH

#include "mem/bus_msg.hh"
#include "mem/memory.hh"
#include "mem/timing.hh"
#include "sim/sim_object.hh"

namespace csync
{

/** Arbitration priority classes. */
enum class BusPriority : int
{
    Normal = 0,
    /** The dedicated high-priority level used by busy-wait registers when
     *  an unlock broadcast fires (Section E.4). */
    BusyWait = 1,
};

/**
 * Interface every interconnect client (cache port, busy-wait register,
 * or I/O device) implements.
 */
class BusClient
{
  public:
    virtual ~BusClient() = default;

    /** Unique id of this node on its interconnect. */
    virtual NodeId nodeId() const = 0;

    /**
     * The client won arbitration.  Fill in @p msg and return true, or
     * return false to decline (e.g. the awaited lock was already taken by
     * another winner).
     */
    virtual bool busGrant(BusMsg &msg) = 0;

    /**
     * Snoop a transaction broadcast by another node.  The client applies
     * its own state changes and answers with what it drove onto the
     * bus lines.
     */
    virtual SnoopReply snoop(const BusMsg &msg) = 0;

    /** The client's own transaction completed. */
    virtual void busComplete(const BusMsg &msg, const SnoopResult &res) = 0;
};

/**
 * One switch of the machine's interconnect fabric: the client-facing
 * contract Bus implements.  Owns nothing but its identity — memory,
 * timing, and the transaction machinery belong to the instantiation.
 */
class Interconnect : public SimObject
{
  public:
    /**
     * @param carries Mask of trafficClassBit() values this switch is
     *        meant to carry (advisory: routing is by address; the mask
     *        feeds the misrouted-traffic counter and topology checks).
     */
    Interconnect(std::string name, EventQueue *eq, unsigned carries)
        : SimObject(std::move(name), eq), carries_(carries)
    {}

    ~Interconnect() override;

    /** Attach a client (caches in nodeId order, then I/O devices). */
    virtual void addClient(BusClient *client) = 0;

    /** The partition of main memory behind this switch. */
    virtual Memory &memory() = 0;

    /** Timing parameters. */
    virtual const BusTiming &timing() const = 0;

    /**
     * Post a request for @p client.  A client has at most one pending
     * request per interconnect; re-posting updates its priority and
     * traffic class.  @p cls is what the client's eventual transaction
     * will carry — arbitration policies that discriminate by traffic
     * system (alternating_priority) read it at grant-decision time.
     */
    virtual void request(BusClient *client,
                         BusPriority pri = BusPriority::Normal,
                         TrafficClass cls = TrafficClass::Data) = 0;

    /** Withdraw a pending request (e.g. busy-wait loser). */
    virtual void cancel(BusClient *client) = 0;

    /** True if @p client currently has a request queued. */
    virtual bool requestPending(const BusClient *client) const = 0;

    /** True while a transaction is in flight. */
    virtual bool busy() const = 0;

    /** True once any transaction has been broadcast (diagnostics). */
    virtual bool hasLastMsg() const = 0;

    /** The most recently broadcast message (valid if hasLastMsg()). */
    virtual const BusMsg &lastMsg() const = 0;

    /** Tick at which lastMsg() was broadcast. */
    virtual Tick lastMsgTick() const = 0;

    /** Traffic classes this switch is meant to carry. */
    unsigned carries() const { return carries_; }

    /** True if @p cls is among the classes this switch should carry. */
    bool carriesClass(TrafficClass cls) const
    {
        return carries_ & trafficClassBit(cls);
    }

  private:
    unsigned carries_;
};

} // namespace csync

#endif // CSYNC_MEM_INTERCONNECT_HH
