/**
 * @file
 * Main memory for a full-broadcast system.  Per the paper (A.2), memory is
 * deliberately simple: it holds data, and optionally two kinds of per-block
 * tag state that specific protocols require:
 *
 *  - Frank/Synapse's *source bit* (Feature 2): set when some cache owns the
 *    latest version, telling memory not to supply the block;
 *  - the Bitar proposal's *lock tag* fallback (Section E.3, "Two
 *    Concerns"): when a locked block must be purged from a small-set cache,
 *    its lock (and waiter) bit moves to memory.
 */

#ifndef CSYNC_MEM_MEMORY_HH
#define CSYNC_MEM_MEMORY_HH

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace csync
{

/**
 * Word-addressable backing store with per-block tag state.
 */
class Memory : public SimObject
{
  public:
    /**
     * @param name Instance name.
     * @param eq Event queue.
     * @param block_words Words per cache block (for block reads/writes).
     * @param stats_parent Statistics parent group.
     */
    Memory(std::string name, EventQueue *eq, unsigned block_words,
           stats::Group *stats_parent);

    /** Words per block. */
    unsigned blockWords() const { return blockWords_; }

    /** Block-align an address. */
    Addr
    blockAlign(Addr a) const
    {
        return a & ~(Addr(blockWords_) * bytesPerWord - 1);
    }

    /** Read a whole block (zero-filled if never written). */
    std::vector<Word> readBlock(Addr block_addr);

    /** Inspect a block without touching statistics (checkers, tests). */
    std::vector<Word> peekBlock(Addr block_addr) const;

    /** Write a whole block. */
    void writeBlock(Addr block_addr, const std::vector<Word> &data);

    /** Read one word. */
    Word readWord(Addr word_addr);

    /** Write one word. */
    void writeWord(Addr word_addr, Word value);

    /** @name Frank-style source bit (memory knows a cache owns the block) */
    /// @{
    bool cacheOwned(Addr block_addr) const;
    void setCacheOwned(Addr block_addr, bool owned);
    /// @}

    /** @name Bitar lock-tag fallback for purged locked blocks */
    /// @{
    bool memLocked(Addr block_addr) const;
    bool memWaiter(Addr block_addr) const;
    /** Record/clear a lock tag; @p holder is the cache that holds it. */
    void setMemLock(Addr block_addr, bool locked, NodeId holder);
    void setMemWaiter(Addr block_addr, bool waiter);
    NodeId memLockHolder(Addr block_addr) const;
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar blockReads;
    stats::Scalar blockWrites;
    stats::Scalar wordReads;
    stats::Scalar wordWrites;
    /// @}

  private:
    struct LockTag
    {
        bool waiter = false;
        NodeId holder = invalidNode;
    };

    unsigned blockWords_;
    std::unordered_map<Addr, std::vector<Word>> store_;
    std::unordered_set<Addr> ownedBlocks_;
    std::unordered_map<Addr, LockTag> lockTags_;
};

} // namespace csync

#endif // CSYNC_MEM_MEMORY_HH
