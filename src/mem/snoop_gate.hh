/**
 * @file
 * Snoop gating: the hook a hierarchical topology uses to keep
 * cluster-local bus traffic from being broadcast system-wide.  A flat
 * bus delivers every transaction to every client; on a clustered
 * machine the bus consults its SnoopGate instead, which decides which
 * clients must see the broadcast (the cluster-boundary snoop filter)
 * and charges the extra cycles of a root-bus traversal when the
 * transaction has to leave its cluster.  A bus with no gate behaves
 * exactly as before — the flat topologies never install one.
 */

#ifndef CSYNC_MEM_SNOOP_GATE_HH
#define CSYNC_MEM_SNOOP_GATE_HH

#include "mem/bus_msg.hh"
#include "sim/types.hh"

namespace csync
{

class BusClient;

/**
 * The cluster-boundary decision point consulted by Bus::execute().
 * Filtering is only legal because a snoop to a cache holding no valid
 * copy of the block is a no-op in every protocol (see DESIGN.md for
 * the argument); the gate may therefore skip exactly those deliveries
 * it can prove would not react.
 */
class SnoopGate
{
  public:
    virtual ~SnoopGate() = default;

    /**
     * A transaction won arbitration and is about to broadcast.  Called
     * once per transaction, before any snoop is delivered: decide which
     * boundaries the broadcast must cross and maintain boundary state
     * (shared-level tags).
     *
     * @return extra cycles the transaction occupies the bus — the
     *         root-bus traversal penalty, or 0 for cluster-local
     *         traffic.
     */
    virtual Tick beginTransaction(const BusMsg &msg) = 0;

    /**
     * Whether @p msg must be delivered to @p client's snoop port.
     * Called once per non-requesting client, after beginTransaction()
     * of the same transaction.
     */
    virtual bool shouldSnoop(const BusClient *client,
                             const BusMsg &msg) = 0;
};

} // namespace csync

#endif // CSYNC_MEM_SNOOP_GATE_HH
