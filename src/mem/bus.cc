#include "mem/bus.hh"

#include <algorithm>

#include "mem/snoop_gate.hh"

namespace csync
{

Bus::Bus(std::string name, EventQueue *eq, Memory *memory,
         const BusTiming &timing, stats::Group *stats_parent,
         unsigned carries, bool class_stats, const std::string &arbitration)
    : Interconnect(std::move(name), eq, carries),
      statsGroup(this->name(), stats_parent),
      transactions(&statsGroup, "transactions", "bus transactions granted"),
      busyCycles(&statsGroup, "busyCycles", "cycles the bus was occupied"),
      dataTransferCycles(&statsGroup, "dataTransferCycles",
                         "cycles spent moving data"),
      memSupplies(&statsGroup, "memSupplies",
                  "block fetches serviced by main memory"),
      cacheSupplies(&statsGroup, "cacheSupplies",
                    "block fetches serviced cache-to-cache"),
      lockedResponses(&statsGroup, "lockedResponses",
                      "requests answered 'locked' (busy) "),
      retries(&statsGroup, "retries",
              "flush-then-refetch retries (Synapse-style)"),
      highPriorityGrants(&statsGroup, "highPriorityGrants",
                         "grants won via the busy-wait priority bit"),
      sourceArbitrations(&statsGroup, "sourceArbitrations",
                         "multi-source arbitrations (Feature 8 ARB)"),
      memory_(memory),
      timing_(timing),
      arb_(ArbitrationRegistry::make(arbitration))
{
    sim_assert(memory_ != nullptr, "bus needs a memory");
    for (unsigned i = 0; i < kNumBusReqs; ++i) {
        perType_.push_back(std::make_unique<stats::Scalar>(
            &statsGroup, std::string("req.") + busReqName(BusReq(i)),
            "transactions of this type"));
    }
    if (class_stats) {
        for (unsigned i = 0; i < kNumTrafficClasses; ++i) {
            perClass_.push_back(std::make_unique<stats::Scalar>(
                &statsGroup,
                std::string("traffic.") + trafficClassName(TrafficClass(i)),
                "transactions of this traffic class"));
        }
        misrouted_ = std::make_unique<stats::Scalar>(
            &statsGroup, "traffic.misrouted",
            "transactions of a class this switch should not carry");
    }
}

double
Bus::classCount(TrafficClass cls) const
{
    return perClass_.empty() ? 0.0 : perClass_[unsigned(cls)]->value();
}

double
Bus::misroutedCount() const
{
    return misrouted_ ? misrouted_->value() : 0.0;
}

double
Bus::typeCount(BusReq req) const
{
    return perType_[unsigned(req)]->value();
}

void
Bus::addClient(BusClient *client)
{
    clients_.push_back(client);
}

void
Bus::request(BusClient *client, BusPriority pri, TrafficClass cls)
{
    for (auto &p : queue_) {
        if (p.client == client) {
            p.pri = std::max(p.pri, pri);
            if (cls == TrafficClass::Sync)
                p.cls = cls;
            return;
        }
    }
    queue_.push_back(Pending{client, pri, cls, curTick()});
    if (!busy_)
        scheduleArbitration();
}

void
Bus::cancel(BusClient *client)
{
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [client](const Pending &p) {
                                    return p.client == client;
                                }),
                 queue_.end());
}

bool
Bus::requestPending(const BusClient *client) const
{
    for (const auto &p : queue_)
        if (p.client == client)
            return true;
    return false;
}

void
Bus::scheduleArbitration()
{
    if (arbScheduled_)
        return;
    arbScheduled_ = true;
    eventq()->scheduleIn(0, [this] { arbitrate(); }, EventPri::Arbitrate);
}

void
Bus::arbitrate()
{
    arbScheduled_ = false;
    if (busy_ || queue_.empty())
        return;

    if (Tick stall = preArbitrationStall()) {
        // Injected fault: the bus is held with no transaction, then
        // arbitration reruns.
        busy_ = true;
        busyCycles += double(stall);
        eventq()->scheduleIn(stall, [this] {
            busy_ = false;
            if (!queue_.empty())
                scheduleArbitration();
        });
        return;
    }

    // The busy-wait priority bit beats everything (Section E.4): only the
    // best posted priority class is shown to the service discipline, so
    // busy-wait supremacy holds for every policy.  Within that class the
    // policy picks the winner (round-robin by default).
    BusPriority best_pri = BusPriority::Normal;
    for (const auto &p : queue_)
        best_pri = std::max(best_pri, p.pri);

    std::vector<ArbRequest> cands;
    std::vector<std::size_t> cand_idx;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i].pri != best_pri)
            continue;
        cands.push_back(ArbRequest{queue_[i].client->nodeId(), queue_[i].pri,
                                   queue_[i].cls, queue_[i].posted});
        cand_idx.push_back(i);
    }
    std::size_t k = arb_->pick(cands, unsigned(clients_.size()));
    sim_assert(k < cands.size(), "arbitration picked out of range");
    std::size_t best_idx = cand_idx[k];

    Pending winner = queue_[best_idx];
    queue_.erase(queue_.begin() + best_idx);

    if (vetoGrant(winner.client, winner.pri, winner.cls)) {
        // Injected NAK before the winner could broadcast: the refused
        // handshake still consumes bus cycles, and the hook re-posts the
        // request after its backoff.
        busy_ = true;
        Tick dur = timing_.arbCycles + timing_.signalCycles;
        busyCycles += double(dur);
        eventq()->scheduleIn(dur, [this] {
            busy_ = false;
            if (!queue_.empty())
                scheduleArbitration();
        });
        return;
    }

    BusMsg msg;
    if (!winner.client->busGrant(msg)) {
        // Winner declined (e.g. its awaited lock is already gone); give
        // the slot to the next contender immediately.
        onTransactionComplete(winner.client);
        if (!queue_.empty())
            scheduleArbitration();
        return;
    }
    msg.requester = winner.client->nodeId();
    arb_->onGrant(winner.client->nodeId(), winner.cls);
    if (winner.pri == BusPriority::BusyWait)
        ++highPriorityGrants;

    trace(TraceFlag::Bus, "grant node %d: %s blk=%llx", msg.requester,
                   busReqName(msg.req),
                   (unsigned long long)msg.blockAddr);
    execute(winner.client, std::move(msg));
}

void
Bus::execute(BusClient *requester, BusMsg msg)
{
    busy_ = true;
    ++transactions;
    ++*perType_[unsigned(msg.req)];
    if (!perClass_.empty()) {
        ++*perClass_[unsigned(msg.cls)];
        if (!carriesClass(msg.cls))
            ++*misrouted_;
    }
    lastMsg_ = msg;
    hasLastMsg_ = true;
    lastMsgTick_ = curTick();

    SnoopResult res;
    int suppliers = 0;
    bool flush_with_transfer = false;
    std::vector<Word> supplied;
    bool supplier_dirty = false;
    unsigned supplier_words = 0;

    // On a hierarchical topology the cluster-boundary gate decides
    // which clients must see this broadcast and charges the root-bus
    // traversal when it leaves the cluster; flat buses have no gate
    // and broadcast to everyone, exactly as before.
    Tick gate_extra = gate_ ? gate_->beginTransaction(msg) : 0;

    for (auto *c : clients_) {
        if (c == requester)
            continue;
        if (gate_ && !gate_->shouldSnoop(c, msg))
            continue;
        SnoopReply r = c->snoop(msg);
        if (r.hasCopy) {
            res.hit = true;
            ++res.copies;
        }
        if (r.source)
            res.sourceExisted = true;
        if (r.locked)
            res.locked = true;
        if (r.flushedFirst) {
            memory_->writeBlock(msg.blockAddr, r.data);
            res.retried = true;
            ++retries;
        }
        if (r.supplyData) {
            ++suppliers;
            if (res.supplier == invalidNode) {
                res.supplier = c->nodeId();
                supplied = std::move(r.data);
                supplier_dirty = r.dirty;
                flush_with_transfer = r.flushToMemory;
                supplier_words = r.transferWordCount;
                res.unitDirty = std::move(r.unitDirty);
            }
        }
    }
    res.sourceDirty = supplier_dirty;

    Tick dur = timing_.arbCycles + gate_extra;
    const unsigned bw = memory_->blockWords();

    // Piggybacked victim write-back: applied unconditionally (the
    // requester already invalidated the victim frame at grant time).
    if (msg.wbValid) {
        sim_assert(msg.wbData.size() == bw, "piggyback wb of %zu words",
                   msg.wbData.size());
        memory_->writeBlock(msg.wbAddr, msg.wbData);
        unsigned words = msg.wbWordCount ? msg.wbWordCount : bw;
        dur += timing_.addrCycles + timing_.dataCycles(words);
        dataTransferCycles += double(timing_.dataCycles(words));
    }

    // Memory lock tags: a fetch of a block whose lock was purged to
    // memory is refused unless the requester is the lock holder.
    if (transfersBlock(msg.req) && memory_->memLocked(msg.blockAddr) &&
        memory_->memLockHolder(msg.blockAddr) != msg.requester) {
        res.locked = true;
        memory_->setMemWaiter(msg.blockAddr, true);
    }

    if (res.locked && transfersBlock(msg.req)) {
        // Answered 'busy': no data moves (Figure 7).
        dur += timing_.addrCycles + timing_.signalCycles;
        ++lockedResponses;
    } else {
        switch (msg.req) {
          case BusReq::ReadShared:
          case BusReq::ReadExclusive:
          case BusReq::ReadLock:
          case BusReq::IOReadKeepSource:
            dur += timing_.addrCycles;
            if (msg.hasData) {
                // Privilege-only request: the requester already holds
                // valid data (Figure 5); one-cycle invalidation.
                dur += timing_.signalCycles;
                break;
            }
            if (res.supplier != invalidNode) {
                // Cache-to-cache transfer (Figure 4).  With sub-block
                // transfer units only the requested unit plus the
                // dirty units move (Section D.3).
                sim_assert(supplied.size() == bw,
                           "supplier gave %zu of %u words",
                           supplied.size(), bw);
                if (suppliers > 1) {
                    dur += timing_.sourceArbCycles;
                    ++sourceArbitrations;
                }
                unsigned words = supplier_words ? supplier_words : bw;
                dur += timing_.dataCycles(words);
                dataTransferCycles += double(timing_.dataCycles(words));
                ++cacheSupplies;
                dur += supplyExtraDelay(msg, res);
                if (flush_with_transfer) {
                    memory_->writeBlock(msg.blockAddr, supplied);
                    if (!timing_.concurrentFlush)
                        dur += timing_.memLatency;
                }
                res.data = std::move(supplied);
            } else {
                // Main memory supplies (Figures 2, 3).
                if (res.retried) {
                    // Dirty snooper flushed first (Synapse): pay for the
                    // flush, then the fetch.
                    dur += timing_.addrCycles + timing_.dataCycles(bw);
                }
                unsigned words = msg.unitWords ? msg.unitWords : bw;
                dur += timing_.memLatency + timing_.dataCycles(words);
                dataTransferCycles += double(timing_.dataCycles(words));
                ++memSupplies;
                res.data = memory_->readBlock(msg.blockAddr);
            }
            break;

          case BusReq::Upgrade:
            if (timing_.invalidateDuringFetch) {
                // One-cycle explicit invalidate signal (Feature 4).
                dur += timing_.signalCycles;
            } else {
                // No invalidate signal on this bus: gaining write
                // privilege costs a word write-through to memory (the
                // Multibus constraint behind Goodman's write-once).
                dur += timing_.wordWriteCycles;
                memory_->writeWord(msg.wordAddr, msg.wordData);
            }
            break;

          case BusReq::IOInvalidate:
          case BusReq::WriteNoFetch:
            dur += timing_.signalCycles;
            break;

          case BusReq::UnlockBroadcast:
            dur += timing_.signalCycles;
            // Clears any memory lock tag the requester held for a purged
            // locked block (Section E.3).
            if (memory_->memLocked(msg.blockAddr) &&
                memory_->memLockHolder(msg.blockAddr) == msg.requester) {
                memory_->setMemLock(msg.blockAddr, false, invalidNode);
            }
            break;

          case BusReq::WriteWord:
            dur += timing_.wordWriteCycles;
            memory_->writeWord(msg.wordAddr, msg.wordData);
            break;

          case BusReq::UpdateWord:
            dur += timing_.wordWriteCycles;
            if (msg.updateMemory)
                memory_->writeWord(msg.wordAddr, msg.wordData);
            break;

          case BusReq::WriteBack:
            sim_assert(msg.blockData.size() == bw,
                       "writeback of %zu of %u words", msg.blockData.size(),
                       bw);
            dur += timing_.addrCycles + timing_.dataCycles(bw);
            dataTransferCycles += double(timing_.dataCycles(bw));
            memory_->writeBlock(msg.blockAddr, msg.blockData);
            break;
        }
    }

    busyCycles += double(dur);

    eventq()->scheduleIn(dur,
                         [this, requester, m = std::move(msg),
                          r = std::move(res)]() mutable {
                             busy_ = false;
                             onTransactionComplete(requester);
                             requester->busComplete(m, r);
                             if (!queue_.empty())
                                 scheduleArbitration();
                         });
}

} // namespace csync
