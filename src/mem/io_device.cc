#include "mem/io_device.hh"

namespace csync
{

IODevice::IODevice(std::string name, EventQueue *eq, NodeId id,
                   Interconnect *bus, Checker *checker,
                   stats::Group *stats_parent)
    : SimObject(std::move(name), eq),
      statsGroup(this->name(), stats_parent),
      inputs(&statsGroup, "inputs", "I/O input operations"),
      pageOuts(&statsGroup, "pageOuts", "paging-out operations"),
      outputs(&statsGroup, "outputs", "non-paging output operations"),
      lockedRetries(&statsGroup, "lockedRetries",
                    "retries against locked blocks"),
      id_(id),
      bus_(bus),
      checker_(checker)
{
}

void
IODevice::input(Addr block_addr, std::vector<Word> data, IOCallback cb)
{
    ++inputs;
    post(IOOp{BusReq::IOInvalidate, block_addr, std::move(data),
              std::move(cb)});
}

void
IODevice::pageOut(Addr block_addr, IOCallback cb)
{
    ++pageOuts;
    post(IOOp{BusReq::ReadExclusive, block_addr, {}, std::move(cb)});
}

void
IODevice::output(Addr block_addr, IOCallback cb)
{
    ++outputs;
    post(IOOp{BusReq::IOReadKeepSource, block_addr, {}, std::move(cb)});
}

void
IODevice::post(IOOp op)
{
    pending_.push_back(std::move(op));
    if (!inFlight_)
        bus_->request(this, BusPriority::Normal, TrafficClass::Sync);
}

bool
IODevice::busGrant(BusMsg &msg)
{
    sim_assert(!pending_.empty(), "I/O grant with nothing pending");
    const IOOp &op = pending_.front();
    msg.req = op.req;
    // I/O broadcasts ride the synchronization system (Section E.2).
    msg.cls = TrafficClass::Sync;
    msg.blockAddr = op.blockAddr;
    inFlight_ = true;

    if (op.req == BusReq::IOInvalidate) {
        // The DMA write lands in memory concurrently with the
        // invalidation broadcast; it serializes here.
        Memory &mem = bus_->memory();
        sim_assert(op.data.size() == mem.blockWords(),
                   "I/O input payload of %zu words", op.data.size());
        mem.writeBlock(op.blockAddr, op.data);
        if (checker_) {
            for (unsigned w = 0; w < mem.blockWords(); ++w) {
                checker_->onWrite(id_,
                                  op.blockAddr + Addr(w) * bytesPerWord,
                                  op.data[w], curTick());
            }
        }
    }
    return true;
}

SnoopReply
IODevice::snoop(const BusMsg &)
{
    return SnoopReply{};
}

void
IODevice::busComplete(const BusMsg &, const SnoopResult &res)
{
    sim_assert(!pending_.empty(), "I/O completion with nothing pending");
    inFlight_ = false;

    if (res.locked) {
        // The target block is locked in a cache (Section E.3): the I/O
        // processor has no busy-wait register, so it retries after a
        // back-off (a paging operation can afford to wait).
        ++lockedRetries;
        eventq()->scheduleIn(8, [this] {
            if (!inFlight_ && !pending_.empty())
                bus_->request(this, BusPriority::Normal, TrafficClass::Sync);
        });
        return;
    }

    IOOp op = std::move(pending_.front());
    pending_.pop_front();

    if (op.cb)
        op.cb(res.data);
    if (!pending_.empty())
        bus_->request(this, BusPriority::Normal, TrafficClass::Sync);
}

} // namespace csync
