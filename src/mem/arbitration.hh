/**
 * @file
 * Pluggable bus arbitration policies.  The paper's machine (Section E.4)
 * arbitrates round-robin with a single busy-wait priority line; Nikolov &
 * Lerato's comparison of bus service disciplines shows the choice of
 * discipline materially shifts cache-consistency overheads, so the pick
 * of "who wins the bus next" is factored out of Bus::arbitrate() into a
 * policy object.  The busy-wait priority line stays in the Bus itself:
 * every policy only ever sees the candidates of the best posted priority
 * class, so BusyWait supremacy holds regardless of discipline.
 */

#ifndef CSYNC_MEM_ARBITRATION_HH
#define CSYNC_MEM_ARBITRATION_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "mem/bus_msg.hh"
#include "mem/interconnect.hh"
#include "sim/types.hh"

namespace csync
{

/** One pending bus request as seen by an arbitration policy. */
struct ArbRequest
{
    /** Requesting node id. */
    NodeId node = invalidNode;
    /** Posted priority (all candidates share the best class). */
    BusPriority pri = BusPriority::Normal;
    /** Traffic system of the reference (data vs hard-atom sync). */
    TrafficClass cls = TrafficClass::Data;
    /** Tick at which the request was first posted. */
    Tick posted = 0;
};

/**
 * A bus service discipline: given the pending requests of the winning
 * priority class, pick the one to grant.  Policies may keep history
 * (last winner, class preference) which the bus feeds back through
 * onGrant() exactly when a grant is accepted.
 */
class ArbitrationPolicy
{
  public:
    virtual ~ArbitrationPolicy() = default;

    /** Registry name of this discipline. */
    virtual std::string name() const = 0;

    /**
     * Pick the winner among @p reqs (non-empty, queue order preserved).
     * @param numClients number of attached clients (for modular scans).
     * @return index into @p reqs of the granted request.
     */
    virtual std::size_t pick(const std::vector<ArbRequest> &reqs,
                             unsigned numClients) = 0;

    /** A grant to @p node carrying class @p cls was accepted. */
    virtual void
    onGrant(NodeId node, TrafficClass cls)
    {
        (void)node;
        (void)cls;
    }
};

/** Factory for the shipped arbitration disciplines. */
class ArbitrationRegistry
{
  public:
    /** Instantiate @p name; fatal() on an unknown discipline. */
    static std::unique_ptr<ArbitrationPolicy> make(const std::string &name);

    /** True if @p name is a known discipline. */
    static bool known(const std::string &name);

    /** All shipped discipline names, sorted. */
    static const std::vector<std::string> &names();
};

} // namespace csync

#endif // CSYNC_MEM_ARBITRATION_HH
