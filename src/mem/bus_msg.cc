#include "mem/bus_msg.hh"

namespace csync
{

const char *
busReqName(BusReq req)
{
    switch (req) {
      case BusReq::ReadShared: return "ReadShared";
      case BusReq::ReadExclusive: return "ReadExclusive";
      case BusReq::Upgrade: return "Upgrade";
      case BusReq::ReadLock: return "ReadLock";
      case BusReq::WriteWord: return "WriteWord";
      case BusReq::UpdateWord: return "UpdateWord";
      case BusReq::WriteBack: return "WriteBack";
      case BusReq::WriteNoFetch: return "WriteNoFetch";
      case BusReq::UnlockBroadcast: return "UnlockBroadcast";
      case BusReq::IOInvalidate: return "IOInvalidate";
      case BusReq::IOReadKeepSource: return "IOReadKeepSource";
      default: return "Unknown";
    }
}

bool
transfersBlock(BusReq req)
{
    switch (req) {
      case BusReq::ReadShared:
      case BusReq::ReadExclusive:
      case BusReq::ReadLock:
      case BusReq::IOReadKeepSource:
        return true;
      default:
        return false;
    }
}

} // namespace csync
