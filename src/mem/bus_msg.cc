#include "mem/bus_msg.hh"

namespace csync
{

namespace
{

// The one BusReq <-> name table, indexed by the enum value.  busReqName,
// busReqFromName, and every "loop over all request types" (per-type bus
// stats, transition audits) derive from it.
constexpr const char *kBusReqNames[kNumBusReqs] = {
    "ReadShared",
    "ReadExclusive",
    "Upgrade",
    "ReadLock",
    "WriteWord",
    "UpdateWord",
    "WriteBack",
    "WriteNoFetch",
    "UnlockBroadcast",
    "IOInvalidate",
    "IOReadKeepSource",
};

} // namespace

const char *
busReqName(BusReq req)
{
    auto idx = std::size_t(req);
    if (idx >= kNumBusReqs)
        return "Unknown";
    return kBusReqNames[idx];
}

bool
busReqFromName(const std::string &name, BusReq *out)
{
    for (std::size_t i = 0; i < kNumBusReqs; ++i) {
        if (name == kBusReqNames[i]) {
            *out = BusReq(i);
            return true;
        }
    }
    return false;
}

bool
transfersBlock(BusReq req)
{
    switch (req) {
      case BusReq::ReadShared:
      case BusReq::ReadExclusive:
      case BusReq::ReadLock:
      case BusReq::IOReadKeepSource:
        return true;
      default:
        return false;
    }
}

const char *
trafficClassName(TrafficClass cls)
{
    return cls == TrafficClass::Sync ? "sync" : "data";
}

} // namespace csync
