#include "mem/interconnect.hh"

namespace csync
{

// Out-of-line key function: anchors the vtable.
Interconnect::~Interconnect() = default;

} // namespace csync
