/**
 * @file
 * Bus and memory timing parameters.  The two boolean knobs encode the real
 * bus-capability differences the paper uses to explain protocol evolution:
 * whether invalidation can be signalled while a block is fetched (the
 * Multibus could not, forcing Goodman's invalidating write-through; the
 * Synapse bus could — Feature 4), and whether a flush to memory can ride
 * along with a cache-to-cache transfer at cache speed (Feature 7).
 */

#ifndef CSYNC_MEM_TIMING_HH
#define CSYNC_MEM_TIMING_HH

#include "sim/types.hh"

namespace csync
{

/** Timing and capability parameters of the bus/memory substrate. */
struct BusTiming
{
    /** Cycles to run one arbitration round. */
    Tick arbCycles = 1;
    /** Cycles for the address/command phase of any transaction. */
    Tick addrCycles = 1;
    /** Extra latency for main memory to begin supplying/absorbing data. */
    Tick memLatency = 4;
    /** Bus-wide words transferred per data cycle. */
    unsigned wordsPerCycle = 1;
    /** Extra cycles to arbitrate among multiple potential source caches
     *  (Papamarcos & Patel, Feature 8 'ARB'). */
    Tick sourceArbCycles = 2;
    /** Cycles for a one-cycle signal (Upgrade, UnlockBroadcast). */
    Tick signalCycles = 1;
    /** Cycles for a single-word write (WriteWord/UpdateWord): address +
     *  one data cycle. */
    Tick wordWriteCycles = 2;

    /** Bus supports an invalidate signal concurrent with a block fetch
     *  (Feature 4).  When false, gaining write privilege requires a
     *  WriteWord write-through as in Goodman's scheme. */
    bool invalidateDuringFetch = true;
    /** Memory can absorb a flush concurrently with a cache-to-cache
     *  transfer at cache speed (Feature 7 'F' at no extra cost). */
    bool concurrentFlush = true;

    /** Cycles to transfer @p words of block data on the bus. */
    Tick
    dataCycles(unsigned words) const
    {
        unsigned per = wordsPerCycle ? wordsPerCycle : 1;
        return (words + per - 1) / per;
    }
};

} // namespace csync

#endif // CSYNC_MEM_TIMING_HH
