/**
 * @file
 * Goodman's write-once protocol (10th ISCA, 1983) — the first
 * full-broadcast write-in scheme (Table 1, column 1).
 *
 * States: Invalid, Valid (read), Reserved (write privilege, clean,
 * non-source), Dirty (write privilege, dirty, source).  The original
 * Multibus did not allow an invalidation signal while a block is fetched,
 * so the *first* write to a block goes through to memory as a word write
 * that also invalidates other copies; the block becomes dirty (and the
 * cache becomes its source) only on the second write.  Dirty blocks are
 * flushed to memory as they are transferred cache-to-cache, so they
 * always arrive clean.
 */

#ifndef CSYNC_COHERENCE_GOODMAN_HH
#define CSYNC_COHERENCE_GOODMAN_HH

#include "coherence/protocol.hh"

namespace csync
{

/** Goodman 1983 write-once. */
class GoodmanProtocol : public Protocol
{
  public:
    std::string name() const override { return "goodman"; }
    std::string citation() const override { return "Goodman 1983"; }
    ProtocolStyle style() const override { return ProtocolStyle::WriteIn; }
    Features features() const override;
    std::vector<State> statesUsed() const override;

    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;
};

} // namespace csync

#endif // CSYNC_COHERENCE_GOODMAN_HH
