#include "coherence/protocol.hh"

#include <algorithm>

#include "cache/cache.hh"

namespace csync
{

ProcAction
Protocol::procRmw(Cache &c, Frame *f, const MemOp &op)
{
    if (!features().atomicRmw) {
        // Table 1, Feature 6 blank: the protocol's publication defines
        // no serialized read-modify-write.  Running one anyway would
        // either livelock (the write-once's premise keeps dying) or
        // silently return stale values, so the contract is explicit.
        panic("protocol '%s' does not serialize atomic "
              "read-modify-writes (Feature 6)",
              name().c_str());
    }
    // Feature 6, second method: fetch the block for sole-access (write)
    // privilege at the start of the instruction; the atomic bus plus the
    // blocking cache keep the read-modify-write indivisible.
    return procWrite(c, f, op);
}

ProcAction
Protocol::procLockRead(Cache &, Frame *, const MemOp &)
{
    panic("protocol '%s' does not implement the lock instruction",
          name().c_str());
}

ProcAction
Protocol::procUnlockWrite(Cache &, Frame *, const MemOp &)
{
    panic("protocol '%s' does not implement the unlock instruction",
          name().c_str());
}

ProcAction
Protocol::procWriteNoFetch(Cache &c, Frame *f, const MemOp &op)
{
    // Protocols without Feature 9 treat it as an ordinary write.
    return procWrite(c, f, op);
}

bool
Protocol::evictNeedsWriteback(Cache &, const Frame &f) const
{
    return isDirty(f.state);
}

void
Protocol::onEvict(Cache &, Frame &)
{
}

std::unique_ptr<Protocol>
Protocol::clone() const
{
    return ProtocolRegistry::make(name());
}

std::map<std::string, ProtocolRegistry::Maker> &
ProtocolRegistry::makers()
{
    static std::map<std::string, Maker> m;
    return m;
}

bool
ProtocolRegistry::registerProtocol(const std::string &name, Maker maker)
{
    makers()[name] = std::move(maker);
    return true;
}

std::unique_ptr<Protocol>
ProtocolRegistry::make(const std::string &name)
{
    auto it = makers().find(name);
    if (it == makers().end())
        fatal("unknown protocol '%s'", name.c_str());
    return it->second();
}

std::vector<std::string>
ProtocolRegistry::names()
{
    std::vector<std::string> out;
    for (const auto &kv : makers())
        out.push_back(kv.first);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::string>
ProtocolRegistry::table1Order()
{
    return {"goodman", "synapse", "illinois", "yen", "berkeley", "bitar"};
}

std::unique_ptr<Protocol>
makeProtocol(const std::string &name)
{
    return ProtocolRegistry::make(name);
}

} // namespace csync
