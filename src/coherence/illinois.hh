/**
 * @file
 * The Papamarcos & Patel protocol (11th ISCA, 1984) — "Illinois", the
 * ancestor of MESI (Table 1, column 3).  States: Invalid, Shared,
 * Exclusive-clean, Modified.
 *
 * Distinctive features per the paper: cache-to-cache transfer for *clean*
 * blocks too (any cache holding a copy may supply it, so potential
 * sources must arbitrate — Feature 8 'ARB'); dynamic determination of
 * unshared status via the open-collector hit line, so a read miss to
 * unshared data fetches write privilege (Feature 5 'D'); dirty blocks are
 * flushed to memory as they are transferred (Feature 7 'F').
 */

#ifndef CSYNC_COHERENCE_ILLINOIS_HH
#define CSYNC_COHERENCE_ILLINOIS_HH

#include "coherence/protocol.hh"

namespace csync
{

/** Papamarcos & Patel 1984. */
class IllinoisProtocol : public Protocol
{
  public:
    std::string name() const override { return "illinois"; }
    std::string citation() const override
    {
        return "Papamarcos & Patel 1984";
    }
    ProtocolStyle style() const override { return ProtocolStyle::WriteIn; }
    Features features() const override;
    std::vector<State> statesUsed() const override;

    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;
};

} // namespace csync

#endif // CSYNC_COHERENCE_ILLINOIS_HH
