#include "coherence/yen.hh"

#include "cache/cache.hh"

namespace csync
{

Features
YenProtocol::features() const
{
    Features ft;
    ft.cacheToCache = true;
    ft.serializesConflicts = true;
    ft.distributedState = "RWDS";
    ft.directory = DirectoryKind::IdenticalDual;
    ft.directorySpecified = false;
    ft.busInvalidateSignal = true;
    ft.fetchUnsharedForWrite = 'S';
    ft.atomicRmw = false;
    ft.flushPolicy = "F";
    ft.sourcePolicy = "";
    ft.writeNoFetch = false;
    ft.efficientBusyWait = false;
    return ft;
}

std::vector<State>
YenProtocol::statesUsed() const
{
    return {Inv, Rd, WrCln, WrSrcDty};
}

ProcAction
YenProtocol::procRead(Cache &, Frame *f, const MemOp &op)
{
    if (f && canRead(f->state))
        return ProcAction::hit();
    if (op.privateHint) {
        // Read-for-write-privilege instruction: only affects misses
        // (Feature 5 static).
        return ProcAction::busFinal(BusReq::ReadExclusive);
    }
    return ProcAction::busFinal(BusReq::ReadShared);
}

ProcAction
YenProtocol::procWrite(Cache &, Frame *f, const MemOp &)
{
    if (f && canWrite(f->state)) {
        f->state = WrSrcDty;
        return ProcAction::hit();
    }
    if (f && isValid(f->state))
        return ProcAction::busFinal(BusReq::Upgrade, true);
    return ProcAction::busFinal(BusReq::ReadExclusive);
}

void
YenProtocol::finishBus(Cache &, const BusMsg &msg, const SnoopResult &,
                       Frame &f)
{
    switch (msg.req) {
      case BusReq::ReadShared:
        f.state = Rd;
        break;
      case BusReq::ReadExclusive:
        // The privateHint is only carried by read instructions: a
        // hinted read-for-write ends clean (like Goodman's Reserved); a
        // write miss ends dirty.
        f.state = msg.privateHint ? WrCln : WrSrcDty;
        break;
      case BusReq::Upgrade:
        f.state = WrSrcDty;
        break;
      default:
        panic("yen: unexpected bus completion %s", busReqName(msg.req));
    }
}

SnoopReply
YenProtocol::snoop(Cache &, const BusMsg &msg, Frame *f)
{
    SnoopReply r;
    if (!f || !isValid(f->state))
        return r;

    switch (msg.req) {
      case BusReq::ReadShared:
        r.hasCopy = true;
        if (f->state == WrSrcDty) {
            r.source = true;
            r.supplyData = true;
            r.dirty = false;
            r.flushToMemory = true;    // Feature 7 'F'
            r.data = f->data;
        }
        if (canWrite(f->state))
            f->state = Rd;
        return r;

      case BusReq::ReadExclusive:
      case BusReq::IOInvalidate:
      case BusReq::WriteNoFetch:
        r.hasCopy = true;
        if (f->state == WrSrcDty && msg.req == BusReq::ReadExclusive) {
            r.source = true;
            r.supplyData = true;
            r.flushToMemory = true;
            r.data = f->data;
        }
        f->state = Inv;
        return r;

      case BusReq::Upgrade:
        r.hasCopy = true;
        f->state = Inv;
        return r;

      case BusReq::IOReadKeepSource:
        r.hasCopy = true;
        if (f->state == WrSrcDty) {
            r.source = true;
            r.supplyData = true;
            r.dirty = true;
            r.data = f->data;
        }
        return r;

      default:
        return r;
    }
}

namespace
{
const bool registered = ProtocolRegistry::registerProtocol(
    "yen", [] { return std::make_unique<YenProtocol>(); });
} // anonymous namespace

} // namespace csync
