/**
 * @file
 * Adaptive hybrid update/invalidate protocol decorator (Dovgopol &
 * Rosonke, generalizing the paper's D.2/E.4 write-policy analysis).
 * The paper treats write-update vs write-invalidate as a static design
 * choice; the decorator makes it a per-block, runtime one.
 *
 * Each block carries a small saturating-counter policy record.  A run
 * of broadcast word updates that nobody consumed ("wasted updates")
 * flips the block to invalidate mode; a run of remote re-read misses
 * while invalidating ("remote re-reads") flips it back to update mode.
 * Counters reset on every flip, giving the switch hysteresis.
 *
 * Two variants ship:
 *  - adaptive_du: Dragon underneath, blocks start in update mode;
 *  - adaptive_bi: Berkeley underneath, blocks start in invalidate mode.
 *
 * Both reuse the parent's states plus Dragon's shared-clean /
 * shared-modified pair for the update-mode sharing set, so the System's
 * state invariants hold unchanged.
 */

#ifndef CSYNC_COHERENCE_ADAPTIVE_HH
#define CSYNC_COHERENCE_ADAPTIVE_HH

#include <map>
#include <memory>
#include <string>

#include "coherence/protocol.hh"

namespace csync
{

/** Per-block write policy a block is currently following. */
enum class AdaptiveMode : std::uint8_t
{
    /** Broadcast word updates to other copies (Dragon-style). */
    Update,
    /** Invalidate other copies and write locally (Berkeley-style). */
    Invalidate,
};

/** Tuning knobs for the adaptive_* protocols (SystemConfig::adaptive). */
struct AdaptiveTuning
{
    /** Width of the per-block saturating counters, 1..8 bits. */
    unsigned counterBits = 2;
    /**
     * Consecutive unconsumed updates that flip a block to invalidate
     * mode; 0 pins update-mode blocks to update mode forever.
     */
    unsigned invalidateThreshold = 2;
    /**
     * Remote re-reads that flip an invalidating block back to update
     * mode; 0 pins invalidate-mode blocks to invalidate mode forever.
     */
    unsigned updateThreshold = 2;

    /** Saturation value of a counter. */
    unsigned counterMax() const { return (1u << counterBits) - 1; }

    /** True if every field still holds its default. */
    bool isDefault() const
    {
        return counterBits == 2 && invalidateThreshold == 2 &&
               updateThreshold == 2;
    }
};

/**
 * The hybrid decorator: forwards to the wrapped parent protocol, but
 * intercepts the write path (update vs invalidate by per-block mode),
 * the UpdateWord/Upgrade bus machinery, and the snoops that feed the
 * utility counters.
 */
class AdaptiveProtocol : public Protocol
{
  public:
    AdaptiveProtocol(std::unique_ptr<Protocol> inner, std::string name,
                     AdaptiveMode initial);

    std::string name() const override { return name_; }
    std::string citation() const override;
    ProtocolStyle style() const override { return ProtocolStyle::Hybrid; }
    bool supportsLockOps() const override;
    bool supportsWriteNoFetch() const override;
    Features features() const override;
    std::vector<State> statesUsed() const override;

    /** The base-class procRmw/procWriteNoFetch defaults dispatch through
     *  the virtual procWrite below, so they need no forwarding here. */
    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;
    bool evictNeedsWriteback(Cache &c, const Frame &f) const override;
    void onEvict(Cache &c, Frame &f) override;
    std::string snapshotState() const override;
    std::unique_ptr<Protocol> clone() const override;

    /** Replace the tuning (System applies SystemConfig::adaptive). */
    void setTuning(const AdaptiveTuning &t) { tuning_ = t; }
    const AdaptiveTuning &tuning() const { return tuning_; }

    /** Current write policy of @p block_addr (tests, diagnostics). */
    AdaptiveMode modeOf(Addr block_addr) const;

    /** The wrapped parent protocol. */
    const Protocol &inner() const { return *inner_; }

  protected:
    /** Per-block policy record; absent means (initial, 0, 0). */
    struct BlockPolicy
    {
        AdaptiveMode mode;
        /** Broadcast updates since the last remote consumption. */
        unsigned wasted = 0;
        /** Remote re-reads since the block went invalidate-mode. */
        unsigned rereads = 0;
    };

    BlockPolicy &policyAt(Addr block_addr);
    void noteWastedUpdate(Addr block_addr);
    void noteRemoteReread(Addr block_addr);

    std::unique_ptr<Protocol> inner_;
    std::string name_;
    AdaptiveMode initial_;
    AdaptiveTuning tuning_;
    std::map<Addr, BlockPolicy> policy_;
};

} // namespace csync

#endif // CSYNC_COHERENCE_ADAPTIVE_HH
