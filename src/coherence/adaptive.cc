#include "coherence/adaptive.hh"

#include <algorithm>

#include "cache/cache.hh"
#include "sim/logging.hh"

namespace csync
{

namespace
{
// Dragon's sharing-set states (file-local there as well): the update-mode
// consumer and owner states both decorator variants use.
constexpr State SharedClean = BitValid | BitShared;
constexpr State SharedMod = BitValid | BitSource | BitDirty | BitShared;
} // anonymous namespace

AdaptiveProtocol::AdaptiveProtocol(std::unique_ptr<Protocol> inner,
                                   std::string name, AdaptiveMode initial)
    : inner_(std::move(inner)), name_(std::move(name)), initial_(initial)
{
}

std::string
AdaptiveProtocol::citation() const
{
    return "Dovgopol & Rosonke (hybrid over " + inner_->name() + ")";
}

bool
AdaptiveProtocol::supportsLockOps() const
{
    return inner_->supportsLockOps();
}

bool
AdaptiveProtocol::supportsWriteNoFetch() const
{
    return inner_->supportsWriteNoFetch();
}

Features
AdaptiveProtocol::features() const
{
    Features ft = inner_->features();
    // The decorator can always invalidate with the one-cycle signal and
    // always broadcast word updates, whichever parent it wraps.
    ft.busInvalidateSignal = true;
    return ft;
}

std::vector<State>
AdaptiveProtocol::statesUsed() const
{
    std::vector<State> s = inner_->statesUsed();
    for (State extra : {SharedClean, SharedMod}) {
        if (std::find(s.begin(), s.end(), extra) == s.end())
            s.push_back(extra);
    }
    return s;
}

AdaptiveProtocol::BlockPolicy &
AdaptiveProtocol::policyAt(Addr block_addr)
{
    auto it = policy_.find(block_addr);
    if (it == policy_.end())
        it = policy_.emplace(block_addr, BlockPolicy{initial_, 0, 0}).first;
    return it->second;
}

AdaptiveMode
AdaptiveProtocol::modeOf(Addr block_addr) const
{
    auto it = policy_.find(block_addr);
    return it == policy_.end() ? initial_ : it->second.mode;
}

void
AdaptiveProtocol::noteWastedUpdate(Addr block_addr)
{
    BlockPolicy &p = policyAt(block_addr);
    if (p.mode != AdaptiveMode::Update)
        return;
    if (p.wasted < tuning_.counterMax())
        ++p.wasted;
    if (tuning_.invalidateThreshold != 0 &&
        p.wasted >= tuning_.invalidateThreshold) {
        // Nobody consumed a whole run of broadcasts: stop paying for
        // them and invalidate on the next shared write instead.
        p = BlockPolicy{AdaptiveMode::Invalidate, 0, 0};
    }
}

void
AdaptiveProtocol::noteRemoteReread(Addr block_addr)
{
    BlockPolicy &p = policyAt(block_addr);
    if (p.mode == AdaptiveMode::Update) {
        // A consumer exists: the broadcasts were not wasted after all.
        p.wasted = 0;
        return;
    }
    if (p.rereads < tuning_.counterMax())
        ++p.rereads;
    if (tuning_.updateThreshold != 0 &&
        p.rereads >= tuning_.updateThreshold) {
        // Readers keep coming back after each invalidation: broadcasting
        // the words is cheaper than their refetches.
        p = BlockPolicy{AdaptiveMode::Update, 0, 0};
    }
}

ProcAction
AdaptiveProtocol::procRead(Cache &c, Frame *f, const MemOp &op)
{
    return inner_->procRead(c, f, op);
}

ProcAction
AdaptiveProtocol::procWrite(Cache &c, Frame *f, const MemOp &op)
{
    if (f && isValid(f->state) && !canWrite(f->state)) {
        // A write that must announce itself on the bus: the block's
        // current policy decides between a Dragon-style word broadcast
        // and a Berkeley-style one-cycle invalidation.
        if (modeOf(f->blockAddr) == AdaptiveMode::Update)
            return ProcAction::busFinal(BusReq::UpdateWord, true, false);
        return ProcAction::busFinal(BusReq::Upgrade, true);
    }
    return inner_->procWrite(c, f, op);
}

void
AdaptiveProtocol::finishBus(Cache &c, const BusMsg &msg,
                            const SnoopResult &res, Frame &f)
{
    switch (msg.req) {
      case BusReq::UpdateWord:
        // The hit line tells us whether anyone consumed the broadcast.
        if (res.hit)
            noteWastedUpdate(msg.blockAddr);
        f.state = res.hit ? SharedMod : WrSrcDty;
        return;
      case BusReq::Upgrade:
        // Both parents end an upgrade as the sole dirty writer.
        f.state = WrSrcDty;
        return;
      default:
        inner_->finishBus(c, msg, res, f);
        return;
    }
}

SnoopReply
AdaptiveProtocol::snoop(Cache &c, const BusMsg &msg, Frame *f)
{
    if (f && isValid(f->state) && msg.req == BusReq::ReadShared)
        noteRemoteReread(f->blockAddr);

    if (msg.req == BusReq::UpdateWord) {
        // Handled here for both variants: Dragon's snoop would do the
        // same, Berkeley's has no update vocabulary at all.
        SnoopReply r;
        if (!f || !isValid(f->state))
            return r;
        r.hasCopy = true;
        unsigned idx =
            unsigned((msg.wordAddr - msg.blockAddr) / bytesPerWord);
        f->data[idx] = msg.wordData;
        // The writer becomes the owner; any ownership here is dropped.
        f->state = SharedClean;
        return r;
    }

    if (msg.req == BusReq::ReadShared && f && f->state == SharedMod) {
        // Update-mode owner supplies the latest version and stays owner.
        // (Dragon's snoop handles this itself, but Berkeley's exact
        // state match would fall through and let stale memory supply.)
        SnoopReply r;
        r.hasCopy = true;
        r.source = true;
        r.supplyData = true;
        r.dirty = true;
        r.data = f->data;
        return r;
    }

    return inner_->snoop(c, msg, f);
}

bool
AdaptiveProtocol::evictNeedsWriteback(Cache &c, const Frame &f) const
{
    return inner_->evictNeedsWriteback(c, f);
}

void
AdaptiveProtocol::onEvict(Cache &c, Frame &f)
{
    inner_->onEvict(c, f);
}

std::string
AdaptiveProtocol::snapshotState() const
{
    // Serialize only records that differ from the implicit default so
    // that "never touched" and "touched but still default" digest alike.
    std::string out;
    for (const auto &kv : policy_) {
        const BlockPolicy &p = kv.second;
        if (p.mode == initial_ && p.wasted == 0 && p.rereads == 0)
            continue;
        out += csprintf("%llx:%c%u/%u;",
                        (unsigned long long)kv.first,
                        p.mode == AdaptiveMode::Update ? 'U' : 'I',
                        p.wasted, p.rereads);
    }
    return out;
}

std::unique_ptr<Protocol>
AdaptiveProtocol::clone() const
{
    auto copy = std::make_unique<AdaptiveProtocol>(inner_->clone(), name_,
                                                   initial_);
    copy->tuning_ = tuning_;
    copy->policy_ = policy_;
    return copy;
}

namespace
{
const bool registered_du = ProtocolRegistry::registerProtocol(
    "adaptive_du", [] {
        return std::make_unique<AdaptiveProtocol>(
            makeProtocol("dragon"), "adaptive_du", AdaptiveMode::Update);
    });
const bool registered_bi = ProtocolRegistry::registerProtocol(
    "adaptive_bi", [] {
        return std::make_unique<AdaptiveProtocol>(
            makeProtocol("berkeley"), "adaptive_bi",
            AdaptiveMode::Invalidate);
    });
} // anonymous namespace

} // namespace csync
