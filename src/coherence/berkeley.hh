/**
 * @file
 * The Katz, Eggers, Wood, Perkins & Sheldon protocol (12th ISCA, 1985) —
 * "Berkeley ownership", Table 1, column 5.  States: Invalid, Read
 * (shared), Read-Dirty (owned/shared-dirty), Write-Clean, Write-Dirty.
 *
 * Distinctive features per the paper: the dirty *read* state — a dirty
 * block transferred on a read request is not flushed, so the provider
 * stays its (single) source (Feature 7 'NF,S'); a single source per
 * block, falling back to memory if the source purges (Feature 8 'MEM');
 * static determination of unshared data (Feature 5 'S'); dual-ported-read
 * directory (Feature 3 'DPR').
 */

#ifndef CSYNC_COHERENCE_BERKELEY_HH
#define CSYNC_COHERENCE_BERKELEY_HH

#include "coherence/protocol.hh"

namespace csync
{

/** Katz et al. 1985 (Berkeley). */
class BerkeleyProtocol : public Protocol
{
  public:
    std::string name() const override { return "berkeley"; }
    std::string citation() const override { return "Katz et al. 1985"; }
    ProtocolStyle style() const override { return ProtocolStyle::WriteIn; }
    Features features() const override;
    std::vector<State> statesUsed() const override;

    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;
};

} // namespace csync

#endif // CSYNC_COHERENCE_BERKELEY_HH
