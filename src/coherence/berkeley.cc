#include "coherence/berkeley.hh"

#include "cache/cache.hh"

namespace csync
{

Features
BerkeleyProtocol::features() const
{
    Features ft;
    ft.cacheToCache = true;
    ft.serializesConflicts = true;
    ft.distributedState = "RWDS";
    ft.directory = DirectoryKind::DualPortedRead;
    ft.directorySpecified = true;
    ft.busInvalidateSignal = true;
    ft.fetchUnsharedForWrite = 'S';
    ft.atomicRmw = true;
    ft.flushPolicy = "NF,S";
    ft.sourcePolicy = "MEM";
    ft.writeNoFetch = false;
    ft.efficientBusyWait = false;
    return ft;
}

std::vector<State>
BerkeleyProtocol::statesUsed() const
{
    return {Inv, Rd, RdSrcDty, WrSrcCln, WrSrcDty};
}

ProcAction
BerkeleyProtocol::procRead(Cache &, Frame *f, const MemOp &op)
{
    if (f && canRead(f->state))
        return ProcAction::hit();
    if (op.privateHint)
        return ProcAction::busFinal(BusReq::ReadExclusive);
    return ProcAction::busFinal(BusReq::ReadShared);
}

ProcAction
BerkeleyProtocol::procWrite(Cache &, Frame *f, const MemOp &)
{
    if (f && canWrite(f->state)) {
        f->state = WrSrcDty;
        return ProcAction::hit();
    }
    if (f && isValid(f->state))
        return ProcAction::busFinal(BusReq::Upgrade, true);
    return ProcAction::busFinal(BusReq::ReadExclusive);
}

void
BerkeleyProtocol::finishBus(Cache &, const BusMsg &msg,
                            const SnoopResult &, Frame &f)
{
    switch (msg.req) {
      case BusReq::ReadShared:
        // The requester never takes source status: a single source per
        // block, kept by the provider (Feature 8 'MEM').
        f.state = Rd;
        break;
      case BusReq::ReadExclusive:
        // Clean write state only on a (hinted) read miss to unshared
        // data (Section F.2).
        f.state = msg.privateHint ? WrSrcCln : WrSrcDty;
        break;
      case BusReq::Upgrade:
        f.state = WrSrcDty;
        break;
      default:
        panic("berkeley: unexpected bus completion %s",
              busReqName(msg.req));
    }
}

SnoopReply
BerkeleyProtocol::snoop(Cache &, const BusMsg &msg, Frame *f)
{
    SnoopReply r;
    if (!f || !isValid(f->state))
        return r;

    switch (msg.req) {
      case BusReq::ReadShared:
        r.hasCopy = true;
        if (f->state == WrSrcDty || f->state == RdSrcDty) {
            // Owner supplies without flushing; the block stays dirty in
            // the owner, which converts write-dirty to read-dirty
            // (the dirty read state, Section F.2).
            r.source = true;
            r.supplyData = true;
            r.dirty = true;
            r.data = f->data;
            f->state = RdSrcDty;
        } else if (f->state == WrSrcCln) {
            // As published, the clean write state has source status too
            // (the inconsistency Feature 7 discusses).
            r.source = true;
            r.supplyData = true;
            r.dirty = false;
            r.data = f->data;
            f->state = Rd;
        }
        return r;

      case BusReq::ReadExclusive:
      case BusReq::IOInvalidate:
      case BusReq::WriteNoFetch:
        r.hasCopy = true;
        if (isSource(f->state) && msg.req == BusReq::ReadExclusive) {
            r.source = true;
            r.supplyData = true;
            r.dirty = isDirty(f->state);
            r.data = f->data;
        }
        f->state = Inv;
        return r;

      case BusReq::Upgrade:
        r.hasCopy = true;
        f->state = Inv;
        return r;

      case BusReq::IOReadKeepSource:
        r.hasCopy = true;
        if (isSource(f->state)) {
            r.source = true;
            r.supplyData = true;
            r.dirty = isDirty(f->state);
            r.data = f->data;
        }
        return r;

      default:
        return r;
    }
}

namespace
{
const bool registered = ProtocolRegistry::registerProtocol(
    "berkeley", [] { return std::make_unique<BerkeleyProtocol>(); });
} // anonymous namespace

} // namespace csync
