/**
 * @file
 * Frank's Synapse N+1 protocol (Electronics, Jan. 1984) — Table 1,
 * column 2.  States: Invalid, Valid, Dirty.  The proprietary Synapse bus
 * supports an explicit invalidate signal concurrent with a block fetch
 * (Feature 4), so the clean write state of Goodman is not useful.  Source
 * status is *not* fully distributed: main memory keeps a source bit per
 * block saying whether a cache owns the latest version (Feature 2 "RWD").
 * A source cache provides data only for a write-privilege request; a
 * read-privilege request to a dirty block makes the owner flush it first
 * and memory supply it on a retry (Feature 7 'NF', Table 1 note 1).
 */

#ifndef CSYNC_COHERENCE_SYNAPSE_HH
#define CSYNC_COHERENCE_SYNAPSE_HH

#include "coherence/protocol.hh"

namespace csync
{

/** Frank 1984 (Synapse N+1). */
class SynapseProtocol : public Protocol
{
  public:
    std::string name() const override { return "synapse"; }
    std::string citation() const override { return "Frank 1984 (Synapse)"; }
    ProtocolStyle style() const override { return ProtocolStyle::WriteIn; }
    Features features() const override;
    std::vector<State> statesUsed() const override;

    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;
    void onEvict(Cache &c, Frame &f) override;
};

} // namespace csync

#endif // CSYNC_COHERENCE_SYNAPSE_HH
