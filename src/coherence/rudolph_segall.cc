#include "coherence/rudolph_segall.hh"

#include "cache/cache.hh"

namespace csync
{

namespace
{
constexpr State SharedRd = BitValid | BitShared;
constexpr State SharedWrote = BitValid | BitShared | BitWroteOnce;
} // anonymous namespace

Features
RudolphSegallProtocol::features() const
{
    Features ft;
    ft.cacheToCache = true;
    ft.serializesConflicts = true;
    ft.distributedState = "RWDS";
    ft.directory = DirectoryKind::IdenticalDual;
    ft.directorySpecified = false;
    ft.busInvalidateSignal = true;    // second write invalidates
    ft.fetchUnsharedForWrite = 'D';
    ft.atomicRmw = true;              // first method: hold the memory unit
    ft.flushPolicy = "F";
    ft.sourcePolicy = "";        // shared blocks are clean; memory supplies
    ft.writeNoFetch = false;
    ft.efficientBusyWait = false;      // oriented around busy wait (E.4)
    return ft;
}

std::vector<State>
RudolphSegallProtocol::statesUsed() const
{
    return {Inv, SharedRd, SharedWrote, WrSrcCln, WrSrcDty};
}

ProcAction
RudolphSegallProtocol::procRead(Cache &, Frame *f, const MemOp &)
{
    if (f && canRead(f->state))
        return ProcAction::hit();
    return ProcAction::busFinal(BusReq::ReadShared);
}

ProcAction
RudolphSegallProtocol::procWrite(Cache &, Frame *f, const MemOp &)
{
    if (f && isValid(f->state)) {
        if (canWrite(f->state)) {
            f->state = WrSrcDty;
            return ProcAction::hit();
        }
        if (wroteOnce(f->state)) {
            // Second write with no intervening access by another
            // processor: the block is unshared — invalidate the other
            // copies and switch to write-in.
            return ProcAction::busFinal(BusReq::Upgrade, true);
        }
        // First write to a shared block: broadcast write-through,
        // updating the other caches and main memory.
        return ProcAction::busFinal(BusReq::UpdateWord, true, true);
    }
    return ProcAction::bus(BusReq::ReadShared);
}

void
RudolphSegallProtocol::finishBus(Cache &, const BusMsg &msg,
                                 const SnoopResult &res, Frame &f)
{
    switch (msg.req) {
      case BusReq::ReadShared:
        f.state = res.hit ? SharedRd : WrSrcCln;
        break;
      case BusReq::UpdateWord:
        // Remember we wrote once; if nobody shares the block any more,
        // take it private immediately (memory is current -> clean).
        f.state = res.hit ? SharedWrote : WrSrcCln;
        break;
      case BusReq::Upgrade:
        f.state = WrSrcDty;
        break;
      default:
        panic("rudolph_segall: unexpected bus completion %s",
              busReqName(msg.req));
    }
}

SnoopReply
RudolphSegallProtocol::snoop(Cache &, const BusMsg &msg, Frame *f)
{
    SnoopReply r;
    if (!f || !isValid(f->state))
        return r;

    switch (msg.req) {
      case BusReq::ReadShared:
        r.hasCopy = true;
        if (canWrite(f->state)) {
            // Another processor accesses the block: supply it, flush if
            // dirty (write-through system keeps memory near-current),
            // and fall back to shared.
            r.source = true;
            r.supplyData = true;
            r.dirty = false;
            r.flushToMemory = isDirty(f->state);
            r.data = f->data;
        }
        // Any access by another processor resets the interleave
        // detector.
        f->state = SharedRd;
        return r;

      case BusReq::UpdateWord: {
        r.hasCopy = true;
        unsigned idx =
            unsigned((msg.wordAddr - msg.blockAddr) / bytesPerWord);
        f->data[idx] = msg.wordData;
        f->state = SharedRd;   // also clears our WroteOnce
        return r;
      }

      case BusReq::Upgrade:
      case BusReq::ReadExclusive:
      case BusReq::IOInvalidate:
      case BusReq::WriteNoFetch:
        r.hasCopy = true;
        if (isDirty(f->state) && msg.req == BusReq::ReadExclusive) {
            r.source = true;
            r.supplyData = true;
            r.dirty = true;
            r.data = f->data;
        }
        f->state = Inv;
        return r;

      case BusReq::IOReadKeepSource:
        r.hasCopy = true;
        if (isDirty(f->state)) {
            r.source = true;
            r.supplyData = true;
            r.dirty = true;
            r.data = f->data;
        }
        return r;

      default:
        return r;
    }
}

bool
RudolphSegallProtocol::evictNeedsWriteback(Cache &, const Frame &f) const
{
    return isDirty(f.state);
}

namespace
{
const bool registered = ProtocolRegistry::registerProtocol(
    "rudolph_segall",
    [] { return std::make_unique<RudolphSegallProtocol>(); });
} // anonymous namespace

} // namespace csync
