#include "coherence/level.hh"

#include "mem/snoop_gate.hh"

namespace csync
{

CoherenceLevel::CoherenceLevel(std::string name, std::string protocol,
                               const AdaptiveTuning &tuning)
    : name_(std::move(name)), protocol_(std::move(protocol)),
      tuning_(tuning)
{
}

CoherenceLevel::~CoherenceLevel() = default;

std::unique_ptr<Protocol>
CoherenceLevel::makeInstance() const
{
    auto protocol = makeProtocol(protocol_);
    if (auto *ap = dynamic_cast<AdaptiveProtocol *>(protocol.get()))
        ap->setTuning(tuning_);
    return protocol;
}

void
CoherenceLevel::setGate(std::unique_ptr<SnoopGate> gate)
{
    gate_ = std::move(gate);
}

} // namespace csync
