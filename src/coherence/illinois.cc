#include "coherence/illinois.hh"

#include "cache/cache.hh"

namespace csync
{

Features
IllinoisProtocol::features() const
{
    Features ft;
    ft.cacheToCache = true;
    ft.serializesConflicts = true;
    ft.distributedState = "RWDS";
    ft.directory = DirectoryKind::IdenticalDual;
    ft.directorySpecified = true;
    ft.busInvalidateSignal = true;
    ft.fetchUnsharedForWrite = 'D';
    ft.atomicRmw = true;
    ft.flushPolicy = "F";
    ft.sourcePolicy = "ARB";
    ft.writeNoFetch = false;
    ft.efficientBusyWait = false;
    return ft;
}

std::vector<State>
IllinoisProtocol::statesUsed() const
{
    // Invalid, Shared, Exclusive (clean), Modified.  Shared copies are
    // all potential sources (Feature 8 'ARB'), reflected behaviorally in
    // snoop() rather than in a Source state bit.
    return {Inv, Rd, WrSrcCln, WrSrcDty};
}

ProcAction
IllinoisProtocol::procRead(Cache &, Frame *f, const MemOp &)
{
    if (f && canRead(f->state))
        return ProcAction::hit();
    return ProcAction::busFinal(BusReq::ReadShared);
}

ProcAction
IllinoisProtocol::procWrite(Cache &, Frame *f, const MemOp &)
{
    if (f && canWrite(f->state)) {
        // Exclusive -> Modified silently; Modified stays.
        f->state = WrSrcDty;
        return ProcAction::hit();
    }
    if (f && isValid(f->state))
        return ProcAction::busFinal(BusReq::Upgrade, true);
    return ProcAction::busFinal(BusReq::ReadExclusive);
}

void
IllinoisProtocol::finishBus(Cache &, const BusMsg &msg,
                            const SnoopResult &res, Frame &f)
{
    switch (msg.req) {
      case BusReq::ReadShared:
        // Dynamic sharing determination via the hit line (Feature 5 'D').
        f.state = res.hit ? Rd : WrSrcCln;
        break;
      case BusReq::ReadExclusive:
      case BusReq::Upgrade:
        f.state = WrSrcDty;
        break;
      default:
        panic("illinois: unexpected bus completion %s",
              busReqName(msg.req));
    }
}

SnoopReply
IllinoisProtocol::snoop(Cache &, const BusMsg &msg, Frame *f)
{
    SnoopReply r;
    if (!f || !isValid(f->state))
        return r;

    switch (msg.req) {
      case BusReq::ReadShared:
        r.hasCopy = true;
        // If a block is in any cache it is fetched from a cache rather
        // than from memory; every holder offers it and the bus
        // arbitrates (Feature 8 'ARB').
        r.supplyData = true;
        r.data = f->data;
        if (f->state == WrSrcDty) {
            // Modified: flushed to memory concurrently with the
            // transfer, so it arrives clean (Feature 7 'F').
            r.source = true;
            r.dirty = false;
            r.flushToMemory = true;
        }
        f->state = Rd;
        return r;

      case BusReq::ReadExclusive:
      case BusReq::IOInvalidate:
      case BusReq::WriteNoFetch:
        r.hasCopy = true;
        if (msg.req == BusReq::ReadExclusive) {
            r.supplyData = true;
            r.data = f->data;
            if (f->state == WrSrcDty) {
                r.source = true;
                r.flushToMemory = true;
            }
        }
        f->state = Inv;
        return r;

      case BusReq::Upgrade:
        r.hasCopy = true;
        f->state = Inv;
        return r;

      case BusReq::IOReadKeepSource:
        r.hasCopy = true;
        r.supplyData = true;
        r.dirty = isDirty(f->state);
        r.data = f->data;
        return r;

      default:
        return r;
    }
}

namespace
{
const bool registered = ProtocolRegistry::registerProtocol(
    "illinois", [] { return std::make_unique<IllinoisProtocol>(); });
} // anonymous namespace

} // namespace csync
