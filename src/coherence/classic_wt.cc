#include "coherence/classic_wt.hh"

#include "cache/cache.hh"

namespace csync
{

Features
ClassicWtProtocol::features() const
{
    Features ft;
    ft.cacheToCache = false;
    ft.serializesConflicts = false;   // the paper's historical claim
    ft.distributedState = "R";
    ft.directory = DirectoryKind::IdenticalDual;
    ft.directorySpecified = true;
    ft.busInvalidateSignal = false;
    ft.fetchUnsharedForWrite = 0;
    ft.atomicRmw = false;
    ft.flushPolicy = "";
    ft.sourcePolicy = "";
    ft.writeNoFetch = false;
    ft.efficientBusyWait = false;
    return ft;
}

std::vector<State>
ClassicWtProtocol::statesUsed() const
{
    return {Inv, Rd};
}

ProcAction
ClassicWtProtocol::procRead(Cache &, Frame *f, const MemOp &)
{
    if (f && canRead(f->state))
        return ProcAction::hit();
    return ProcAction::busFinal(BusReq::ReadShared);
}

ProcAction
ClassicWtProtocol::procWrite(Cache &, Frame *, const MemOp &)
{
    // Every write goes through to memory and broadcasts an invalidation;
    // write misses do not allocate.
    return ProcAction::busFinal(BusReq::WriteWord);
}

void
ClassicWtProtocol::finishBus(Cache &, const BusMsg &msg,
                             const SnoopResult &, Frame &f)
{
    switch (msg.req) {
      case BusReq::ReadShared:
        f.state = Rd;
        break;
      case BusReq::WriteWord:
        // Our own copy (if any) stays valid; memory was updated.
        break;
      default:
        panic("classic_wt: unexpected bus completion %s",
              busReqName(msg.req));
    }
}

SnoopReply
ClassicWtProtocol::snoop(Cache &, const BusMsg &msg, Frame *f)
{
    SnoopReply r;
    if (!f || !isValid(f->state))
        return r;

    switch (msg.req) {
      case BusReq::ReadShared:
      case BusReq::IOReadKeepSource:
        // Memory is always current; caches never supply.
        r.hasCopy = true;
        return r;

      case BusReq::WriteWord:
      case BusReq::ReadExclusive:
      case BusReq::Upgrade:
      case BusReq::IOInvalidate:
      case BusReq::WriteNoFetch:
        r.hasCopy = true;
        f->state = Inv;
        return r;

      default:
        return r;
    }
}

bool
ClassicWtProtocol::evictNeedsWriteback(Cache &, const Frame &) const
{
    return false;    // memory is always current
}

namespace
{
const bool registered = ProtocolRegistry::registerProtocol(
    "classic_wt", [] { return std::make_unique<ClassicWtProtocol>(); });
} // anonymous namespace

} // namespace csync
