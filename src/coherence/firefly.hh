/**
 * @file
 * The DEC Firefly protocol (as reported by Archibald & Baer) — the second
 * write-in/write-update hybrid of Section D.1.  Like Dragon, sharing is
 * determined dynamically with the bus hit line; unlike Dragon, writes to
 * shared blocks update *main memory as well* as the other caches, so
 * there is no shared-dirty owner state: shared blocks are always clean.
 *
 * State mapping: Exclusive-clean = Write/Source/Clean; Modified =
 * Write/Source/Dirty; Shared = Valid+Shared (always clean).
 */

#ifndef CSYNC_COHERENCE_FIREFLY_HH
#define CSYNC_COHERENCE_FIREFLY_HH

#include "coherence/protocol.hh"

namespace csync
{

/** DEC Firefly write-update hybrid. */
class FireflyProtocol : public Protocol
{
  public:
    std::string name() const override { return "firefly"; }
    std::string citation() const override
    {
        return "DEC Firefly (Archibald & Baer 1985)";
    }
    ProtocolStyle style() const override { return ProtocolStyle::Hybrid; }
    Features features() const override;
    std::vector<State> statesUsed() const override;

    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;
    bool evictNeedsWriteback(Cache &c, const Frame &f) const override;
};

} // namespace csync

#endif // CSYNC_COHERENCE_FIREFLY_HH
