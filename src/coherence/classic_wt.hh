/**
 * @file
 * The classic (pre-1978) dual-directory write-through scheme described by
 * Censier & Feautrier and used in early dual-processor systems
 * (Section F.1).  Every write goes through to main memory and its address
 * is broadcast so any other cache invalidates its copy; the dual
 * directory merely filters irrelevant invalidations.  States: Invalid,
 * Valid.  Write misses do not allocate.
 *
 * Note: the paper observes this scheme "does not guarantee that
 * conflicting single reads and writes will be serialized" on real
 * hardware (buffered write-behind); in this simulator every write-through
 * is an atomic bus transaction, so the behavior here is the idealized,
 * serialized variant.  The Features entry preserves the paper's claim.
 */

#ifndef CSYNC_COHERENCE_CLASSIC_WT_HH
#define CSYNC_COHERENCE_CLASSIC_WT_HH

#include "coherence/protocol.hh"

namespace csync
{

/** Classic write-through with invalidation broadcast. */
class ClassicWtProtocol : public Protocol
{
  public:
    std::string name() const override { return "classic_wt"; }
    std::string citation() const override
    {
        return "classic pre-1978 (Censier & Feautrier 1978 description)";
    }
    ProtocolStyle style() const override
    {
        return ProtocolStyle::WriteThrough;
    }
    Features features() const override;
    std::vector<State> statesUsed() const override;

    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;
    bool evictNeedsWriteback(Cache &c, const Frame &f) const override;
};

} // namespace csync

#endif // CSYNC_COHERENCE_CLASSIC_WT_HH
