/**
 * @file
 * One coherence level of the topology tree: the protocol domain of a
 * single switch.  Snooping coherence is defined per broadcast domain,
 * so a multi-switch machine runs an independent protocol instance per
 * cache port per switch; the level is the factory that makes that
 * explicit — it carries the switch's protocol choice and tuning, mints
 * per-port instances, and on a clustered topology owns the snoop gate
 * guarding its boundary with the root bus.
 */

#ifndef CSYNC_COHERENCE_LEVEL_HH
#define CSYNC_COHERENCE_LEVEL_HH

#include <memory>
#include <string>

#include "coherence/adaptive.hh"

namespace csync
{

class SnoopGate;

/** The per-switch coherence domain: protocol instancing plus boundary
 *  gate ownership. */
class CoherenceLevel
{
  public:
    /**
     * @param name The switch's instance name (diagnostics).
     * @param protocol Registered protocol name run at this level.
     * @param tuning Saturating-counter tuning applied to adaptive
     *        protocol instances (ignored by the fixed protocols).
     */
    CoherenceLevel(std::string name, std::string protocol,
                   const AdaptiveTuning &tuning);
    ~CoherenceLevel();

    const std::string &name() const { return name_; }
    const std::string &protocolName() const { return protocol_; }

    /** A fresh, tuned protocol instance for one cache port. */
    std::unique_ptr<Protocol> makeInstance() const;

    /** Install the boundary snoop gate (clustered topologies only). */
    void setGate(std::unique_ptr<SnoopGate> gate);

    /** The boundary gate, or null on flat topologies. */
    SnoopGate *gate() const { return gate_.get(); }

  private:
    std::string name_;
    std::string protocol_;
    AdaptiveTuning tuning_;
    std::unique_ptr<SnoopGate> gate_;
};

} // namespace csync

#endif // CSYNC_COHERENCE_LEVEL_HH
