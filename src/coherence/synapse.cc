#include "coherence/synapse.hh"

#include "cache/cache.hh"

namespace csync
{

Features
SynapseProtocol::features() const
{
    Features ft;
    ft.cacheToCache = true;
    ft.serializesConflicts = true;
    ft.distributedState = "RWD";   // source bit lives in main memory
    ft.directory = DirectoryKind::IdenticalDual;
    ft.directorySpecified = true;
    ft.busInvalidateSignal = true;
    ft.fetchUnsharedForWrite = 0;
    ft.atomicRmw = true;
    ft.flushPolicy = "NF";
    ft.sourcePolicy = "";
    ft.writeNoFetch = false;
    ft.efficientBusyWait = false;
    return ft;
}

std::vector<State>
SynapseProtocol::statesUsed() const
{
    return {Inv, Rd, WrSrcDty};
}

ProcAction
SynapseProtocol::procRead(Cache &, Frame *f, const MemOp &)
{
    if (f && canRead(f->state))
        return ProcAction::hit();
    return ProcAction::busFinal(BusReq::ReadShared);
}

ProcAction
SynapseProtocol::procWrite(Cache &, Frame *f, const MemOp &)
{
    if (f && canWrite(f->state))
        return ProcAction::hit();
    if (f && isValid(f->state))
        return ProcAction::busFinal(BusReq::Upgrade, true);
    return ProcAction::busFinal(BusReq::ReadExclusive);
}

void
SynapseProtocol::finishBus(Cache &c, const BusMsg &msg,
                           const SnoopResult &, Frame &f)
{
    switch (msg.req) {
      case BusReq::ReadShared:
        f.state = Rd;
        break;
      case BusReq::ReadExclusive:
      case BusReq::Upgrade:
        f.state = WrSrcDty;
        // Memory's source bit now points at this cache (Feature 2).
        c.memory().setCacheOwned(msg.blockAddr, true);
        break;
      default:
        panic("synapse: unexpected bus completion %s",
              busReqName(msg.req));
    }
}

SnoopReply
SynapseProtocol::snoop(Cache &c, const BusMsg &msg, Frame *f)
{
    SnoopReply r;
    if (!f || !isValid(f->state))
        return r;

    switch (msg.req) {
      case BusReq::ReadShared:
        r.hasCopy = true;
        if (f->state == WrSrcDty) {
            // A source provides data only for a write-privilege request
            // (Table 1 note 1): for a read, flush to memory and let
            // memory supply on the retry.
            r.flushedFirst = true;
            r.data = f->data;
            f->state = Rd;
            c.memory().setCacheOwned(msg.blockAddr, false);
        }
        return r;

      case BusReq::ReadExclusive:
      case BusReq::Upgrade:
      case BusReq::IOInvalidate:
      case BusReq::WriteNoFetch:
        r.hasCopy = true;
        if (f->state == WrSrcDty && msg.req == BusReq::ReadExclusive) {
            // Write-privilege request: direct cache-to-cache transfer,
            // no flush (Feature 7 'NF').
            r.source = true;
            r.supplyData = true;
            r.dirty = true;
            r.data = f->data;
            c.memory().setCacheOwned(msg.blockAddr, false);
        }
        f->state = Inv;
        return r;

      case BusReq::IOReadKeepSource:
        r.hasCopy = true;
        if (f->state == WrSrcDty) {
            r.source = true;
            r.supplyData = true;
            r.dirty = true;
            r.data = f->data;
        }
        return r;

      default:
        return r;
    }
}

void
SynapseProtocol::onEvict(Cache &c, Frame &f)
{
    if (f.state == WrSrcDty)
        c.memory().setCacheOwned(f.blockAddr, false);
}

namespace
{
const bool registered = ProtocolRegistry::registerProtocol(
    "synapse", [] { return std::make_unique<SynapseProtocol>(); });
} // anonymous namespace

} // namespace csync
