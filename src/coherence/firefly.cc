#include "coherence/firefly.hh"

#include "cache/cache.hh"

namespace csync
{

namespace
{
constexpr State SharedClean = BitValid | BitShared;
} // anonymous namespace

Features
FireflyProtocol::features() const
{
    Features ft;
    ft.cacheToCache = true;
    ft.serializesConflicts = true;
    ft.distributedState = "RWDS";
    ft.directory = DirectoryKind::IdenticalDual;
    ft.directorySpecified = false;
    ft.busInvalidateSignal = false;
    ft.fetchUnsharedForWrite = 'D';
    ft.atomicRmw = true;
    ft.flushPolicy = "F";
    ft.sourcePolicy = "";        // shared blocks are clean; memory supplies
    ft.writeNoFetch = false;
    ft.efficientBusyWait = false;
    return ft;
}

std::vector<State>
FireflyProtocol::statesUsed() const
{
    return {Inv, SharedClean, WrSrcCln, WrSrcDty};
}

ProcAction
FireflyProtocol::procRead(Cache &, Frame *f, const MemOp &)
{
    if (f && canRead(f->state))
        return ProcAction::hit();
    return ProcAction::busFinal(BusReq::ReadShared);
}

ProcAction
FireflyProtocol::procWrite(Cache &, Frame *f, const MemOp &)
{
    if (f && isValid(f->state)) {
        if (isSharedHint(f->state)) {
            // Shared write: update the other caches AND main memory.
            return ProcAction::busFinal(BusReq::UpdateWord, true, true);
        }
        f->state = WrSrcDty;
        return ProcAction::hit();
    }
    return ProcAction::bus(BusReq::ReadShared);
}

void
FireflyProtocol::finishBus(Cache &, const BusMsg &msg,
                           const SnoopResult &res, Frame &f)
{
    switch (msg.req) {
      case BusReq::ReadShared:
        // A dirty supplier flushed concurrently, so shared copies are
        // always clean.
        f.state = res.hit ? SharedClean : WrSrcCln;
        break;
      case BusReq::UpdateWord:
        // Memory was updated too, so dropping to exclusive leaves the
        // block clean.
        f.state = res.hit ? SharedClean : WrSrcCln;
        break;
      default:
        panic("firefly: unexpected bus completion %s",
              busReqName(msg.req));
    }
}

SnoopReply
FireflyProtocol::snoop(Cache &, const BusMsg &msg, Frame *f)
{
    SnoopReply r;
    if (!f || !isValid(f->state))
        return r;

    switch (msg.req) {
      case BusReq::ReadShared:
        r.hasCopy = true;
        if (canWrite(f->state)) {
            // Exclusive holder supplies; a Modified block is flushed
            // concurrently so everyone ends clean-shared.
            r.source = true;
            r.supplyData = true;
            r.dirty = false;
            r.flushToMemory = isDirty(f->state);
            r.data = f->data;
            f->state = SharedClean;
        }
        return r;

      case BusReq::UpdateWord: {
        r.hasCopy = true;
        unsigned idx =
            unsigned((msg.wordAddr - msg.blockAddr) / bytesPerWord);
        f->data[idx] = msg.wordData;
        f->state = SharedClean;
        return r;
      }

      case BusReq::ReadExclusive:
      case BusReq::IOInvalidate:
      case BusReq::Upgrade:
      case BusReq::WriteNoFetch:
        r.hasCopy = true;
        if (isDirty(f->state) && msg.req == BusReq::ReadExclusive) {
            r.source = true;
            r.supplyData = true;
            r.dirty = true;
            r.data = f->data;
        }
        f->state = Inv;
        return r;

      case BusReq::IOReadKeepSource:
        r.hasCopy = true;
        if (isDirty(f->state)) {
            r.source = true;
            r.supplyData = true;
            r.dirty = true;
            r.data = f->data;
        }
        return r;

      default:
        return r;
    }
}

bool
FireflyProtocol::evictNeedsWriteback(Cache &, const Frame &f) const
{
    return isDirty(f.state);
}

namespace
{
const bool registered = ProtocolRegistry::registerProtocol(
    "firefly", [] { return std::make_unique<FireflyProtocol>(); });
} // anonymous namespace

} // namespace csync
