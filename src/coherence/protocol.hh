/**
 * @file
 * The coherence-protocol interface.  A Protocol is the pure policy brain
 * of a cache: given a processor operation or a snooped bus transaction it
 * decides state transitions and what (if anything) must go on the bus.
 * The Cache object does the mechanics — frame allocation, eviction,
 * timing, statistics, the busy-wait register — so all ten protocols share
 * one substrate and differ only in policy, which is exactly how the paper
 * frames their evolution (Section F).
 */

#ifndef CSYNC_COHERENCE_PROTOCOL_HH
#define CSYNC_COHERENCE_PROTOCOL_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cache/block_state.hh"
#include "cache/cache_blocks.hh"
#include "cache/directory.hh"
#include "mem/bus_msg.hh"
#include "proc/mem_op.hh"

namespace csync
{

class Cache;

/** Broad policy family (Sections D, F). */
enum class ProtocolStyle
{
    /** Classic write-through with invalidation broadcast (pre-1978). */
    WriteThrough,
    /** Full-broadcast write-in (write-back): Goodman .. Bitar. */
    WriteIn,
    /** Write-in for unshared data, write-through/update for shared data
     *  (Dragon, Firefly, Rudolph-Segall). */
    Hybrid,
};

/** What a cache should do for a processor operation. */
struct ProcAction
{
    enum class Kind
    {
        /** Complete locally; no bus transaction. */
        Hit,
        /** Issue the bus transaction described below. */
        Bus,
    };

    Kind kind = Kind::Hit;
    /** Bus request type when kind == Bus. */
    BusReq busReq = BusReq::ReadShared;
    /** The requester already holds valid data (privilege-only request,
     *  Figure 5). */
    bool hasData = false;
    /** For UpdateWord: write through to memory as well (Firefly). */
    bool updateMemory = false;
    /**
     * The bus transaction completes the processor operation (e.g. a
     * write-through word write).  When false, the cache re-dispatches the
     * operation after the transaction (fetch-then-replay), letting
     * multi-transaction sequences like Goodman's write-once unfold.
     */
    bool completesOp = false;

    static ProcAction hit() { return ProcAction{}; }

    static ProcAction
    bus(BusReq req, bool has_data = false, bool update_memory = false,
        bool completes_op = false)
    {
        return ProcAction{Kind::Bus, req, has_data, update_memory,
                          completes_op};
    }

    /** A bus transaction after which the operation is complete. */
    static ProcAction
    busFinal(BusReq req, bool has_data = false, bool update_memory = false)
    {
        return bus(req, has_data, update_memory, true);
    }
};

/**
 * Feature vector for the Table 1 rows (Features 1-10).  Populated by each
 * protocol; the feature-audit engine cross-checks the claims behaviorally.
 */
struct Features
{
    /** Feature 1: cache-to-cache transfer & serialization of conflicting
     *  single reads and writes. */
    bool cacheToCache = false;
    bool serializesConflicts = false;
    /** Feature 2: which status letters are fully distributed in the
     *  caches (R/W/L/D/S). */
    std::string distributedState;
    /** Feature 3: directory organization (ID / NID / DPR / none). */
    DirectoryKind directory = DirectoryKind::IdenticalDual;
    bool directorySpecified = false;
    /** Feature 4: bus invalidate signal (no invalidation write-through). */
    bool busInvalidateSignal = false;
    /** Feature 5: fetching unshared data for write privilege on a read
     *  miss: 0 = no, 'D' = dynamic (hit line), 'S' = static (compiler). */
    char fetchUnsharedForWrite = 0;
    /** Feature 6: serialized processor atomic read-modify-write. */
    bool atomicRmw = false;
    /** Feature 7: flushing on cache-to-cache transfer: "F", "NF", "NF,S". */
    std::string flushPolicy;
    /** Feature 8: source policy for read-privilege blocks:
     *  "ARB", "MEM", "LRU,MEM", or "" (dirty-only source). */
    std::string sourcePolicy;
    /** Feature 9: writing without fetch on a write miss. */
    bool writeNoFetch = false;
    /** Feature 10: efficient busy wait. */
    bool efficientBusyWait = false;
};

/**
 * Abstract coherence protocol.
 */
class Protocol
{
  public:
    virtual ~Protocol() = default;

    /** Short identifier used in tables and the factory ("goodman"...). */
    virtual std::string name() const = 0;

    /** Publication the protocol reproduces ("Goodman 1983", ...). */
    virtual std::string citation() const = 0;

    /** Policy family. */
    virtual ProtocolStyle style() const = 0;

    /** The protocol implements the LockRead/UnlockWrite instructions. */
    virtual bool supportsLockOps() const { return false; }

    /** The protocol implements write-without-fetch (Feature 9). */
    virtual bool supportsWriteNoFetch() const { return false; }

    /** Feature vector for Table 1. */
    virtual Features features() const = 0;

    /** The block states this protocol can produce (Table 1 upper part). */
    virtual std::vector<State> statesUsed() const = 0;

    /** @name Processor-side policy.
     * @p f is the frame currently holding the block (nullptr on a miss
     * with no frame).  Implementations may mutate the frame state for
     * hits; on Kind::Bus the transition completes in finishBus().
     */
    /// @{
    virtual ProcAction procRead(Cache &c, Frame *f, const MemOp &op) = 0;
    virtual ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) = 0;

    /** Atomic read-modify-write; default: gain write privilege like a
     *  write (Feature 6, second method). */
    virtual ProcAction procRmw(Cache &c, Frame *f, const MemOp &op);

    /** Lock instruction (Bitar only by default). */
    virtual ProcAction procLockRead(Cache &c, Frame *f, const MemOp &op);

    /** Unlock instruction (Bitar only by default). */
    virtual ProcAction procUnlockWrite(Cache &c, Frame *f, const MemOp &op);

    /** Write-without-fetch (Feature 9; Bitar only by default). */
    virtual ProcAction procWriteNoFetch(Cache &c, Frame *f, const MemOp &op);
    /// @}

    /**
     * Requester-side completion of a bus transaction: set the new frame
     * state from the snoop result (hit line, source status, ...).
     * @p f is the frame the block now occupies (data already copied in).
     */
    virtual void finishBus(Cache &c, const BusMsg &msg,
                           const SnoopResult &res, Frame &f) = 0;

    /**
     * Snooper-side handling of another node's transaction.  @p f is this
     * cache's frame for the block, or nullptr.  Must apply this cache's
     * state change and describe what it drove on the bus lines.
     */
    virtual SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) = 0;

    /** Does evicting @p f require a WriteBack transaction? */
    virtual bool evictNeedsWriteback(Cache &c, const Frame &f) const;

    /** Protocol hook run when @p f is evicted (fix memory tags etc.). */
    virtual void onEvict(Cache &c, Frame &f);

    /**
     * Opaque snapshot of any protocol-internal mutable state, folded
     * into model-checker state digests.  All shipped protocols keep
     * their policy state in frame/memory/directory tags and return "";
     * a stateful protocol must serialize whatever else it tracks so two
     * digest-equal systems really are interchangeable.
     */
    virtual std::string snapshotState() const { return {}; }

    /**
     * Deep-copy this protocol.  The default re-instantiates by registry
     * name, which is exact for the (stateless) shipped protocols;
     * decorators carrying configuration must override.
     */
    virtual std::unique_ptr<Protocol> clone() const;
};

/**
 * Protocol factory registry.  Protocols register themselves by name;
 * benches and tests instantiate them with makeProtocol().
 */
class ProtocolRegistry
{
  public:
    using Maker = std::function<std::unique_ptr<Protocol>()>;

    /** Register a protocol maker under @p name.  Returns true. */
    static bool registerProtocol(const std::string &name, Maker maker);

    /** Instantiate a protocol by name (fatal if unknown). */
    static std::unique_ptr<Protocol> make(const std::string &name);

    /** All registered names, sorted. */
    static std::vector<std::string> names();

    /** Names in the paper's Table 1 column order. */
    static std::vector<std::string> table1Order();

  private:
    static std::map<std::string, Maker> &makers();
};

/** Convenience: instantiate a protocol by registry name. */
std::unique_ptr<Protocol> makeProtocol(const std::string &name);

} // namespace csync

#endif // CSYNC_COHERENCE_PROTOCOL_HH
