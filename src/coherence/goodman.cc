#include "coherence/goodman.hh"

#include "cache/cache.hh"

namespace csync
{

Features
GoodmanProtocol::features() const
{
    Features ft;
    ft.cacheToCache = true;
    ft.serializesConflicts = true;
    ft.distributedState = "RWDS";
    ft.directory = DirectoryKind::IdenticalDual;
    ft.directorySpecified = true;
    ft.busInvalidateSignal = false;    // invalidation write-through
    ft.fetchUnsharedForWrite = 0;
    ft.atomicRmw = false;
    ft.flushPolicy = "F";
    ft.sourcePolicy = "";              // dirty blocks only
    ft.writeNoFetch = false;
    ft.efficientBusyWait = false;
    return ft;
}

std::vector<State>
GoodmanProtocol::statesUsed() const
{
    // Invalid, Valid, Reserved, Dirty.
    return {Inv, Rd, WrCln, WrSrcDty};
}

ProcAction
GoodmanProtocol::procRead(Cache &, Frame *f, const MemOp &)
{
    if (f && canRead(f->state))
        return ProcAction::hit();
    return ProcAction::busFinal(BusReq::ReadShared);
}

ProcAction
GoodmanProtocol::procWrite(Cache &, Frame *f, const MemOp &)
{
    if (f && canWrite(f->state)) {
        // Reserved -> Dirty on the second write; Dirty stays Dirty.
        f->state = WrSrcDty;
        return ProcAction::hit();
    }
    if (f && isValid(f->state)) {
        // Write-once: the first write goes through to memory and
        // invalidates other copies (the Multibus has no invalidate
        // signal); the block stays clean (Reserved).
        return ProcAction::busFinal(BusReq::WriteWord);
    }
    // Write miss: fetch as a read, then write-once.
    return ProcAction::bus(BusReq::ReadShared);
}

void
GoodmanProtocol::finishBus(Cache &, const BusMsg &msg,
                           const SnoopResult &, Frame &f)
{
    switch (msg.req) {
      case BusReq::ReadShared:
        f.state = Rd;
        break;
      case BusReq::WriteWord:
        // Write-once done: Reserved (clean, write privilege).
        f.state = WrCln;
        break;
      case BusReq::ReadExclusive:
        // Only issued on behalf of generic RMW support paths; treat as
        // gaining sole access.
        f.state = WrSrcDty;
        break;
      default:
        panic("goodman: unexpected bus completion %s",
              busReqName(msg.req));
    }
}

SnoopReply
GoodmanProtocol::snoop(Cache &, const BusMsg &msg, Frame *f)
{
    SnoopReply r;
    if (!f || !isValid(f->state))
        return r;

    switch (msg.req) {
      case BusReq::ReadShared:
        r.hasCopy = true;
        if (f->state == WrSrcDty) {
            // Source of a dirty block: supply it and flush it to memory
            // concurrently, so it arrives clean (Feature 7 'F').
            r.source = true;
            r.supplyData = true;
            r.dirty = false;        // arrives clean after the flush
            r.flushToMemory = true;
            r.data = f->data;
            f->state = Rd;
        } else if (canWrite(f->state)) {
            // Reserved: another reader appears; fall back to Valid.
            f->state = Rd;
        }
        return r;

      case BusReq::WriteWord:
        // Invalidation write-through: drop our copy.  A dirty copy can
        // only be hit by a *stale* write-once (the writer lost its own
        // copy after deciding); flush it first so no data is lost —
        // the bus applies the flush before the word write.
        r.hasCopy = true;
        if (f->state == WrSrcDty) {
            r.flushedFirst = true;
            r.data = f->data;
        }
        f->state = Inv;
        return r;

      case BusReq::ReadExclusive:
      case BusReq::IOInvalidate:
      case BusReq::Upgrade:
      case BusReq::WriteNoFetch:
        r.hasCopy = true;
        if (f->state == WrSrcDty && msg.req == BusReq::ReadExclusive) {
            r.source = true;
            r.supplyData = true;
            r.flushToMemory = true;
            r.data = f->data;
        }
        f->state = Inv;
        return r;

      case BusReq::IOReadKeepSource:
        r.hasCopy = true;
        if (f->state == WrSrcDty) {
            r.source = true;
            r.supplyData = true;
            r.dirty = true;
            r.data = f->data;
        }
        return r;

      default:
        return r;
    }
}

namespace
{
const bool registered = ProtocolRegistry::registerProtocol(
    "goodman", [] { return std::make_unique<GoodmanProtocol>(); });
} // anonymous namespace

} // namespace csync
