/**
 * @file
 * The Rudolph & Segall protocol (11th ISCA, 1984) — the dynamic
 * write-through/write-in hybrid of Sections D.1 and E.4.  A block is
 * unshared if a processor writes it twice while no other processor
 * accesses it: the first write to a (possibly) shared block is a
 * broadcast write-through (updating other caches and memory); a second
 * consecutive write with no intervening access by another processor
 * invalidates the other copies and switches to write-in.
 *
 * The published protocol fixes block size at one word so that
 * write-throughs can update *invalid* copies too; per the paper's
 * critique (Section E.4) we implement the update of valid copies only,
 * and the benches run this protocol with one-word blocks.
 *
 * State mapping: shared read = Valid+Shared; shared-read-after-my-write =
 * Valid+Shared+WroteOnce; exclusive clean = Write/Source/Clean; private
 * written = Write/Source/Dirty.
 */

#ifndef CSYNC_COHERENCE_RUDOLPH_SEGALL_HH
#define CSYNC_COHERENCE_RUDOLPH_SEGALL_HH

#include "coherence/protocol.hh"

namespace csync
{

/** Rudolph & Segall 1984. */
class RudolphSegallProtocol : public Protocol
{
  public:
    std::string name() const override { return "rudolph_segall"; }
    std::string citation() const override
    {
        return "Rudolph & Segall 1984";
    }
    ProtocolStyle style() const override { return ProtocolStyle::Hybrid; }
    Features features() const override;
    std::vector<State> statesUsed() const override;

    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;
    bool evictNeedsWriteback(Cache &c, const Frame &f) const override;
};

} // namespace csync

#endif // CSYNC_COHERENCE_RUDOLPH_SEGALL_HH
