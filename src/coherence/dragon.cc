#include "coherence/dragon.hh"

#include "cache/cache.hh"

namespace csync
{

namespace
{
constexpr State SharedClean = BitValid | BitShared;
constexpr State SharedMod = BitValid | BitSource | BitDirty | BitShared;
} // anonymous namespace

Features
DragonProtocol::features() const
{
    Features ft;
    ft.cacheToCache = true;
    ft.serializesConflicts = true;
    ft.distributedState = "RWDS";
    ft.directory = DirectoryKind::IdenticalDual;
    ft.directorySpecified = false;
    ft.busInvalidateSignal = false;   // shared writes update, never invalidate
    ft.fetchUnsharedForWrite = 'D';
    ft.atomicRmw = true;
    ft.flushPolicy = "NF,S";
    ft.sourcePolicy = "MEM";
    ft.writeNoFetch = false;
    ft.efficientBusyWait = false;     // waiters spin in-cache, but failed
                                      // test-and-sets still hit the bus
    return ft;
}

std::vector<State>
DragonProtocol::statesUsed() const
{
    return {Inv, SharedClean, SharedMod, WrSrcCln, WrSrcDty};
}

ProcAction
DragonProtocol::procRead(Cache &, Frame *f, const MemOp &)
{
    if (f && canRead(f->state))
        return ProcAction::hit();
    return ProcAction::busFinal(BusReq::ReadShared);
}

ProcAction
DragonProtocol::procWrite(Cache &, Frame *f, const MemOp &)
{
    if (f && isValid(f->state)) {
        if (isSharedHint(f->state)) {
            // Write to a shared block: broadcast the word to the other
            // caches; memory is not updated (the writer becomes owner).
            return ProcAction::busFinal(BusReq::UpdateWord, true, false);
        }
        // Unshared: plain write-in.
        f->state = WrSrcDty;
        return ProcAction::hit();
    }
    // Write miss: fetch first, then the write replays (and broadcasts if
    // the block turned out shared).
    return ProcAction::bus(BusReq::ReadShared);
}

void
DragonProtocol::finishBus(Cache &, const BusMsg &msg,
                          const SnoopResult &res, Frame &f)
{
    switch (msg.req) {
      case BusReq::ReadShared:
        f.state = res.hit ? SharedClean : WrSrcCln;
        break;
      case BusReq::UpdateWord:
        // The hit line tells us if anyone still shares the block.
        f.state = res.hit ? SharedMod : WrSrcDty;
        break;
      default:
        panic("dragon: unexpected bus completion %s",
              busReqName(msg.req));
    }
}

SnoopReply
DragonProtocol::snoop(Cache &, const BusMsg &msg, Frame *f)
{
    SnoopReply r;
    if (!f || !isValid(f->state))
        return r;

    switch (msg.req) {
      case BusReq::ReadShared:
        r.hasCopy = true;
        if (isSource(f->state) || f->state == WrSrcCln ||
            f->state == WrSrcDty) {
            // Owner (or exclusive holder) supplies; no flush — the
            // owner keeps responsibility for the dirty data.
            r.source = isSource(f->state);
            r.supplyData = true;
            r.dirty = isDirty(f->state);
            r.data = f->data;
            f->state = isDirty(f->state) ? SharedMod : SharedClean;
        }
        return r;

      case BusReq::UpdateWord: {
        r.hasCopy = true;
        unsigned idx =
            unsigned((msg.wordAddr - msg.blockAddr) / bytesPerWord);
        f->data[idx] = msg.wordData;
        // The writer becomes the owner; we drop any ownership.
        f->state = SharedClean;
        return r;
      }

      case BusReq::ReadExclusive:
      case BusReq::IOInvalidate:
      case BusReq::Upgrade:
      case BusReq::WriteNoFetch:
        // Only I/O issues these in a Dragon system.
        r.hasCopy = true;
        if (isDirty(f->state) && msg.req == BusReq::ReadExclusive) {
            r.source = true;
            r.supplyData = true;
            r.dirty = true;
            r.data = f->data;
        }
        f->state = Inv;
        return r;

      case BusReq::IOReadKeepSource:
        r.hasCopy = true;
        if (isDirty(f->state)) {
            r.source = true;
            r.supplyData = true;
            r.dirty = true;
            r.data = f->data;
        }
        return r;

      default:
        return r;
    }
}

bool
DragonProtocol::evictNeedsWriteback(Cache &, const Frame &f) const
{
    // Owners (Shared-Modified / Modified) hold the only current copy.
    return isDirty(f.state);
}

namespace
{
const bool registered = ProtocolRegistry::registerProtocol(
    "dragon", [] { return std::make_unique<DragonProtocol>(); });
} // anonymous namespace

} // namespace csync
