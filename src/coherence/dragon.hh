/**
 * @file
 * The Xerox Dragon protocol (McCreight 1984; as reported by Archibald &
 * Baer) — Section D.1's write-in/write-update hybrid.  A block is
 * *shared* if it currently resides in more than one cache, determined
 * dynamically from the bus hit line.  Writes to shared blocks are
 * broadcast word updates to the other caches (memory is NOT updated — the
 * last writer becomes the owner, the Shared-Modified state); writes to
 * unshared blocks are ordinary write-in.
 *
 * State mapping: Exclusive-clean = Write/Source/Clean; Modified =
 * Write/Source/Dirty; Shared-clean = Valid+Shared; Shared-modified
 * (owner) = Valid+Source+Dirty+Shared.
 */

#ifndef CSYNC_COHERENCE_DRAGON_HH
#define CSYNC_COHERENCE_DRAGON_HH

#include "coherence/protocol.hh"

namespace csync
{

/** Dragon write-update hybrid. */
class DragonProtocol : public Protocol
{
  public:
    std::string name() const override { return "dragon"; }
    std::string citation() const override { return "McCreight 1984"; }
    ProtocolStyle style() const override { return ProtocolStyle::Hybrid; }
    Features features() const override;
    std::vector<State> statesUsed() const override;

    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;
    bool evictNeedsWriteback(Cache &c, const Frame &f) const override;
};

} // namespace csync

#endif // CSYNC_COHERENCE_DRAGON_HH
