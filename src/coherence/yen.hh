/**
 * @file
 * The Yen, Yen & Fu protocol (IEEE-TC, Jan. 1985) — Table 1, column 4.
 * "The states here are those of Goodman" (Section F.2), but the bus has
 * an explicit invalidate signal (Feature 4), and unshared data is fetched
 * for write privilege on a read miss using a *static* determination: the
 * compiler employs a special read-for-write-privilege instruction for all
 * reads of unshared data (Feature 5 'S'), carried here by the
 * MemOp::privateHint bit.
 */

#ifndef CSYNC_COHERENCE_YEN_HH
#define CSYNC_COHERENCE_YEN_HH

#include "coherence/protocol.hh"

namespace csync
{

/** Yen, Yen, Fu 1985. */
class YenProtocol : public Protocol
{
  public:
    std::string name() const override { return "yen"; }
    std::string citation() const override { return "Yen, Yen & Fu 1985"; }
    ProtocolStyle style() const override { return ProtocolStyle::WriteIn; }
    Features features() const override;
    std::vector<State> statesUsed() const override;

    ProcAction procRead(Cache &c, Frame *f, const MemOp &op) override;
    ProcAction procWrite(Cache &c, Frame *f, const MemOp &op) override;

    void finishBus(Cache &c, const BusMsg &msg, const SnoopResult &res,
                   Frame &f) override;
    SnoopReply snoop(Cache &c, const BusMsg &msg, Frame *f) override;
};

} // namespace csync

#endif // CSYNC_COHERENCE_YEN_HH
