#include "cache/cache.hh"

namespace csync
{

Cache::Cache(std::string name, EventQueue *eq, NodeId id, NodeId reg_id,
             const CacheConfig &config, std::unique_ptr<Protocol> protocol,
             Interconnect *bus, Checker *checker,
             stats::Group *stats_parent)
    : SimObject(std::move(name), eq),
      statsGroup(this->name(), stats_parent),
      accesses(&statsGroup, "accesses", "processor operations issued"),
      readOps(&statsGroup, "readOps", "Read operations"),
      writeOps(&statsGroup, "writeOps", "Write operations"),
      rmwOps(&statsGroup, "rmwOps", "atomic read-modify-write operations"),
      lockOps(&statsGroup, "lockOps", "LockRead operations"),
      unlockOps(&statsGroup, "unlockOps", "UnlockWrite operations"),
      writeNoFetchOps(&statsGroup, "writeNoFetchOps",
                      "WriteNoFetch operations"),
      hitsLocal(&statsGroup, "hitsLocal",
                "operations completed with no bus transaction"),
      missesBus(&statsGroup, "missesBus",
                "operations that needed the bus"),
      busTransactions(&statsGroup, "busTransactions",
                      "bus transactions issued by this cache"),
      invalidationsReceived(&statsGroup, "invalidationsReceived",
                            "blocks invalidated by snooped requests"),
      updatesReceived(&statsGroup, "updatesReceived",
                      "word updates applied by snooped writes"),
      blocksSupplied(&statsGroup, "blocksSupplied",
                     "cache-to-cache transfers supplied"),
      evictions(&statsGroup, "evictions", "valid frames displaced"),
      writebacks(&statsGroup, "writebacks",
                 "victim flushes (piggybacked or explicit)"),
      lockedPurges(&statsGroup, "lockedPurges",
                   "locked blocks purged to memory lock tags"),
      locksAcquired(&statsGroup, "locksAcquired", "locks acquired"),
      zeroTimeLocks(&statsGroup, "zeroTimeLocks",
                    "locks acquired with zero bus transactions"),
      zeroTimeUnlocks(&statsGroup, "zeroTimeUnlocks",
                      "unlocks with zero bus transactions"),
      unlockBroadcasts(&statsGroup, "unlockBroadcasts",
                       "unlock broadcasts sent (waiter present)"),
      busyWaitArms(&statsGroup, "busyWaitArms",
                   "busy-wait register armings"),
      busyWaitInterrupts(&statsGroup, "busyWaitInterrupts",
                         "locks acquired via the busy-wait register"),
      lockRetries(&statsGroup, "lockRetries",
                  "unsuccessful lock retries on the bus"),
      opLatency(&statsGroup, "opLatency", "operation latency (cycles)", 4,
                64),
      lockWaitTime(&statsGroup, "lockWaitTime",
                   "busy-wait duration (cycles)", 16, 64),
      hitRatio(&statsGroup, "hitRatio",
               "fraction of ops completed without the bus",
               [this] {
                   double a = accesses.value();
                   return a ? hitsLocal.value() / a : 0.0;
               }),
      busPerAccess(&statsGroup, "busPerAccess",
                   "bus transactions per processor op",
                   [this] {
                       double a = accesses.value();
                       return a ? busTransactions.value() / a : 0.0;
                   }),
      id_(id),
      config_(config),
      protocol_(std::move(protocol)),
      bus_(bus),
      checker_(checker),
      blocks_(config.geom),
      dir_(config.directory, &statsGroup),
      bwReg_(this->name() + ".bwreg", eq, this, reg_id, bus)
{
    sim_assert(bus_ != nullptr, "cache needs a bus");
    sim_assert(protocol_ != nullptr, "cache needs a protocol");
    sim_assert(config_.geom.blockWords == bus_->memory().blockWords(),
               "cache/memory block size mismatch");
}

void
Cache::setLockInterruptHandler(LockInterruptHandler handler)
{
    lockHandler_ = std::move(handler);
}

State
Cache::stateOf(Addr addr) const
{
    const Frame *f = blocks_.find(blocks_.blockAlign(addr));
    return f ? f->state : Inv;
}

Word
Cache::peekWord(Addr addr) const
{
    const Frame *f = blocks_.find(blocks_.blockAlign(addr));
    if (!f)
        return 0;
    return f->data[(addr - f->blockAddr) / bytesPerWord];
}

const Frame *
Cache::peekFrame(Addr addr) const
{
    return blocks_.find(blocks_.blockAlign(addr));
}

Frame &
Cache::installFrameForTest(Addr addr, State state,
                           const std::vector<Word> *data)
{
    Addr ba = blockAlign(addr);
    Frame *f = blocks_.find(ba);
    if (!f) {
        f = blocks_.victim(ba);
        f->state = Inv;
    }
    blocks_.install(*f, ba);
    f->state = state;
    if (data) {
        sim_assert(data->size() == blockWords(), "bad test frame payload");
        f->data = *data;
    } else {
        f->data.assign(blockWords(), 0);
    }
    f->unitDirty.clear();
    blocks_.touch(*f, curTick());
    return *f;
}

void
Cache::notePurgedLock(Addr block_addr, bool held)
{
    if (held)
        purgedLocks_.insert(block_addr);
    else
        purgedLocks_.erase(block_addr);
}

bool
Cache::holdsPurgedLock(Addr block_addr) const
{
    return purgedLocks_.count(block_addr) > 0;
}

void
Cache::access(const MemOp &op, AccessCallback cb)
{
    sim_assert(phase_ == Phase::Idle,
               "cache %s: access while op in progress", name().c_str());
    ++accesses;
    switch (op.type) {
      case OpType::Read: ++readOps; break;
      case OpType::Write: ++writeOps; break;
      case OpType::Rmw: ++rmwOps; break;
      case OpType::LockRead: ++lockOps; break;
      case OpType::UnlockWrite: ++unlockOps; break;
      case OpType::WriteNoFetch: ++writeNoFetchOps; break;
    }
    dir_.noteProcAccess();
    curOp_ = op;
    curCb_ = std::move(cb);
    opIssued_ = curTick();
    firstDispatch_ = true;
    replays_ = 0;
    checkerRecorded_ = false;
    rmwOldValid_ = false;
    opLockFetched_ = false;
    dispatch();
}

ProcAction
Cache::dispatchToProtocol(Frame *f)
{
    switch (curOp_.type) {
      case OpType::Read:
        return protocol_->procRead(*this, f, curOp_);
      case OpType::Write:
        if (f && canWrite(f->state) && !isDirty(f->state))
            dir_.noteWriteHitToClean();
        return protocol_->procWrite(*this, f, curOp_);
      case OpType::Rmw:
        if (f && canWrite(f->state) && !isDirty(f->state))
            dir_.noteWriteHitToClean();
        return protocol_->procRmw(*this, f, curOp_);
      case OpType::LockRead:
        return protocol_->procLockRead(*this, f, curOp_);
      case OpType::UnlockWrite:
        return protocol_->procUnlockWrite(*this, f, curOp_);
      case OpType::WriteNoFetch:
        if (f && canWrite(f->state) && !isDirty(f->state))
            dir_.noteWriteHitToClean();
        return protocol_->procWriteNoFetch(*this, f, curOp_);
    }
    panic("unreachable op type");
}

void
Cache::dispatch()
{
    sim_assert(++replays_ <= 50, "op replay loop on %s @%llx",
               opTypeName(curOp_.type), (unsigned long long)curOp_.addr);

    Addr ba = blockAlign(curOp_.addr);
    Frame *f = blocks_.find(ba);
    if (f)
        blocks_.touch(*f, curTick());
    decisionState_ = f ? f->state : Inv;

    ProcAction a = dispatchToProtocol(f);
    if (a.kind == ProcAction::Kind::Hit) {
        sim_assert(f != nullptr, "hit action with no frame (%s @%llx)",
                   opTypeName(curOp_.type),
                   (unsigned long long)curOp_.addr);
        if (firstDispatch_)
            ++hitsLocal;
        completeLocally(*f);
        return;
    }

    // Bus action.
    if (firstDispatch_) {
        ++missesBus;
        firstDispatch_ = false;
    }
    pendingAction_ = a;
    pendingMsg_ = BusMsg{};
    pendingMsg_.req = a.busReq;
    pendingMsg_.blockAddr = ba;
    pendingMsg_.wordAddr = wordAlign(curOp_.addr);
    pendingMsg_.wordData = curOp_.value;
    pendingMsg_.hasData = a.hasData;
    pendingMsg_.privateHint = curOp_.privateHint;
    // Lock traffic and tagged sync references belong to the
    // synchronization system (Section E.2, Figure 11).
    bool sync_op = curOp_.type == OpType::LockRead ||
                   curOp_.type == OpType::UnlockWrite ||
                   curOp_.type == OpType::Rmw || curOp_.sync;
    pendingMsg_.cls = sync_op ? TrafficClass::Sync : TrafficClass::Data;
    if (config_.geom.subBlockUnits())
        pendingMsg_.unitWords = config_.geom.transferWords;
    pendingMsg_.updateMemory = a.updateMemory;
    phase_ = Phase::MainReq;
    bus_->request(this, BusPriority::Normal, pendingMsg_.cls);
}

void
Cache::markUnitDirty(Frame &f, unsigned word_idx)
{
    const CacheGeometry &g = config_.geom;
    if (!g.subBlockUnits())
        return;
    if (f.unitDirty.size() != g.unitsPerBlock())
        f.unitDirty.assign(g.unitsPerBlock(), false);
    f.unitDirty[word_idx / g.transferWords] = true;
}

void
Cache::applyOp(Frame &f, AccessResult &r)
{
    Addr wa = wordAlign(curOp_.addr);
    unsigned idx = unsigned((wa - f.blockAddr) / bytesPerWord);
    sim_assert(idx < f.data.size(), "word index out of range");
    Tick now = curTick();

    switch (curOp_.type) {
      case OpType::Read:
        r.value = f.data[idx];
        if (checker_)
            checker_->onRead(id_, wa, r.value, now);
        break;

      case OpType::LockRead:
        r.value = f.data[idx];
        ++locksAcquired;
        if (checker_) {
            checker_->onRead(id_, wa, r.value, now);
            checker_->onLockAcquire(id_, f.blockAddr, now);
        }
        trace(TraceFlag::Lock, "lock acquired blk=%llx",
                       (unsigned long long)f.blockAddr);
        break;

      case OpType::Write:
        f.data[idx] = curOp_.value;
        markUnitDirty(f, idx);
        if (checker_ && !checkerRecorded_)
            checker_->onWrite(id_, wa, curOp_.value, now);
        break;

      case OpType::Rmw:
        if (rmwOldValid_) {
            // The RMW serialized at bus grant (word write-through /
            // broadcast); the old value was captured there.
            r.value = rmwOldValue_;
            rmwOldValid_ = false;
        } else {
            r.value = f.data[idx];
            if (checker_)
                checker_->onRead(id_, wa, r.value, now);
        }
        f.data[idx] = curOp_.value;
        markUnitDirty(f, idx);
        if (checker_ && !checkerRecorded_)
            checker_->onWrite(id_, wa, curOp_.value, now);
        break;

      case OpType::UnlockWrite:
        f.data[idx] = curOp_.value;
        markUnitDirty(f, idx);
        if (checker_) {
            if (!checkerRecorded_)
                checker_->onWrite(id_, wa, curOp_.value, now);
            checker_->onLockRelease(id_, f.blockAddr, now);
        }
        trace(TraceFlag::Lock, "lock released blk=%llx",
                       (unsigned long long)f.blockAddr);
        break;

      case OpType::WriteNoFetch:
        f.data[idx] = curOp_.value;
        // The whole block is claimed: every unit is (to be) written.
        if (config_.geom.subBlockUnits()) {
            f.unitDirty.assign(config_.geom.unitsPerBlock(), true);
        }
        if (checker_ && !checkerRecorded_)
            checker_->onWrite(id_, wa, curOp_.value, now);
        break;
    }
}

void
Cache::completeLocally(Frame &f)
{
    // Zero-time lock/unlock accounting (Section E.3): the op completed
    // with no bus transaction at all.
    if (firstDispatch_) {
        if (curOp_.type == OpType::LockRead)
            ++zeroTimeLocks;
        else if (curOp_.type == OpType::UnlockWrite)
            ++zeroTimeUnlocks;
    }
    AccessResult r;
    applyOp(f, r);
    finishOp(r);
}

void
Cache::finishOp(const AccessResult &r)
{
    phase_ = Phase::Idle;
    opLatency.sample(curTick() - opIssued_);
    AccessCallback cb = std::move(curCb_);
    curCb_ = nullptr;
    // Deliver after the hit latency (pure latency; effects are already
    // applied so a concurrent snoop cannot observe stale state).
    eventq()->scheduleIn(config_.hitLatency,
                         [cb = std::move(cb), r] { cb(r); });
    if (lockReplayPending_) {
        lockReplayPending_ = false;
        startLockReplay();
    }
}

Frame *
Cache::prepareInstall(BusMsg &msg)
{
    Frame *f = blocks_.find(msg.blockAddr);
    if (f)
        return f;
    Frame *v = blocks_.victim(msg.blockAddr);
    if (v->valid()) {
        ++evictions;
        if (isLocked(v->state)) {
            // Purge of a locked block: the lock tag moves to memory
            // (Section E.3, second concern).
            ++lockedPurges;
        }
        if (protocol_->evictNeedsWriteback(*this, *v)) {
            msg.wbValid = true;
            msg.wbAddr = v->blockAddr;
            msg.wbData = v->data;
            if (config_.geom.subBlockUnits() && !v->unitDirty.empty()) {
                msg.wbWordCount =
                    v->dirtyUnits() * config_.geom.transferWords;
            }
            ++writebacks;
        }
        protocol_->onEvict(*this, *v);
        trace(TraceFlag::Cache, "evict blk=%llx state=%s%s",
                       (unsigned long long)v->blockAddr,
                       stateName(v->state).c_str(),
                       msg.wbValid ? " (writeback)" : "");
        v->state = Inv;
    }
    return v;
}

bool
Cache::busGrant(BusMsg &msg)
{
    sim_assert(phase_ == Phase::MainReq,
               "bus grant to %s with no pending request", name().c_str());

    {
        // Stale-decision guard: the protocol chose this transaction from
        // the block's state at dispatch time.  If a snooped transaction
        // changed that state while we waited for the bus (an upgrade
        // whose copy was invalidated, a write-once whose premise died,
        // an update write that lost its sharers...), decline the grant
        // and re-decide from the current state.
        Frame *f = blocks_.find(pendingMsg_.blockAddr);
        State cur = f ? f->state : Inv;
        if (cur != decisionState_) {
            phase_ = Phase::Idle;
            trace(TraceFlag::Cache, "request for %llx raced with a snoop "
                           "(%s -> %s); re-deciding",
                           (unsigned long long)pendingMsg_.blockAddr,
                           stateName(decisionState_).c_str(),
                           stateName(cur).c_str());
            // Linear back-off breaks re-decide lockstep when several
            // caches hammer the same block (each re-decision would
            // otherwise have its premise killed by the next grant).
            Tick delay = Tick(replays_);
            if (delay == 0) {
                dispatch();
            } else {
                eventq()->scheduleIn(delay, [this] { dispatch(); });
            }
            return false;
        }
    }

    msg = pendingMsg_;
    ++busTransactions;

    bool needs_frame =
        (transfersBlock(msg.req) && !msg.hasData) ||
        msg.req == BusReq::WriteNoFetch;
    if (needs_frame)
        installTarget_ = prepareInstall(msg);
    else
        installTarget_ = blocks_.find(msg.blockAddr);

    // Word write-throughs and broadcasts serialize at grant time: the
    // snoopers' copies change now, so the checker must see the write now.
    // An RMW's read half serializes immediately before its write half.
    if (pendingAction_.completesOp &&
        (msg.req == BusReq::WriteWord || msg.req == BusReq::UpdateWord)) {
        if (curOp_.type == OpType::Rmw) {
            Frame *f = blocks_.find(msg.blockAddr);
            rmwOldValue_ = f ? f->data[(msg.wordAddr - f->blockAddr) /
                                       bytesPerWord]
                             : 0;
            rmwOldValid_ = true;
            if (checker_)
                checker_->onRead(id_, msg.wordAddr, rmwOldValue_,
                                 curTick());
        }
        if (checker_) {
            checker_->onWrite(id_, msg.wordAddr, msg.wordData, curTick());
            checkerRecorded_ = true;
        }
    }
    return true;
}

SnoopReply
Cache::snoop(const BusMsg &msg)
{
    dir_.noteBusSnoop();
    Frame *f = blocks_.find(msg.blockAddr);
    State before = f ? f->state : Inv;
    std::vector<bool> units_before = f ? f->unitDirty
                                       : std::vector<bool>();
    SnoopReply r = protocol_->snoop(*this, msg, f);
    State after = f ? f->state : Inv;

    if (r.supplyData && config_.geom.subBlockUnits()) {
        // Section D.3: only the requested transfer unit plus every
        // dirty unit moves; per-unit dirty status travels with it.
        const CacheGeometry &g = config_.geom;
        unsigned req_unit =
            unsigned((msg.wordAddr - msg.blockAddr) / bytesPerWord) /
            g.transferWords;
        std::vector<bool> du = units_before;
        du.resize(g.unitsPerBlock(), false);
        unsigned units = 0;
        for (unsigned u = 0; u < g.unitsPerBlock(); ++u)
            units += (du[u] || u == req_unit);
        r.transferWordCount = units * g.transferWords;
        r.unitDirty = du;
        if (f && !isDirty(f->state)) {
            // Dirty responsibility moved (or the block was flushed):
            // our per-unit dirt is gone.
            f->unitDirty.assign(g.unitsPerBlock(), false);
        }
    }

    if (isValid(before) && !isValid(after))
        ++invalidationsReceived;
    if (msg.req == BusReq::UpdateWord && f && isValid(after))
        ++updatesReceived;
    if (r.supplyData)
        ++blocksSupplied;
    if (hasWaiter(after) && !hasWaiter(before))
        dir_.noteWaiterStatusWrite();
    return r;
}

void
Cache::busComplete(const BusMsg &msg, const SnoopResult &res)
{
    sim_assert(phase_ == Phase::MainReq, "unexpected bus completion");

    if (res.locked) {
        // The block is locked elsewhere (Figure 7).
        if (config_.useBusyWaitRegister) {
            phase_ = Phase::Idle;
            armBusyWait(msg.blockAddr);
        } else {
            // Ablation: no busy-wait register — retry on the bus.
            ++lockRetries;
            bus_->request(this, BusPriority::Normal, msg.cls);
        }
        return;
    }

    Frame *f = installTarget_;
    installTarget_ = nullptr;

    if (transfersBlock(msg.req) && !msg.hasData) {
        sim_assert(f != nullptr, "fetch with no install frame");
        sim_assert(res.data.size() == blockWords(), "bad fetch payload");
        blocks_.install(*f, msg.blockAddr);
        f->data = res.data;
        blocks_.touch(*f, curTick());
    } else if (msg.req == BusReq::WriteNoFetch) {
        sim_assert(f != nullptr, "write-no-fetch with no install frame");
        blocks_.install(*f, msg.blockAddr);
        f->data.assign(blockWords(), 0);
        blocks_.touch(*f, curTick());
        // The program contract (Feature 9) is that the whole block will
        // be written; the claim makes this buffer the latest version.
        if (checker_) {
            for (unsigned w = 0; w < blockWords(); ++w) {
                Addr wa = msg.blockAddr + Addr(w) * bytesPerWord;
                if (wa != wordAlign(curOp_.addr))
                    checker_->onWrite(id_, wa, 0, curTick());
            }
        }
    } else {
        f = blocks_.find(msg.blockAddr);
    }

    if (msg.req == BusReq::ReadLock)
        opLockFetched_ = true;
    if (f) {
        protocol_->finishBus(*this, msg, res, *f);
        if (config_.geom.subBlockUnits() &&
            transfersBlock(msg.req) && !msg.hasData) {
            f->unitDirty = (isDirty(f->state) && !res.unitDirty.empty())
                               ? res.unitDirty
                               : std::vector<bool>(
                                     config_.geom.unitsPerBlock(), false);
        }
        trace(TraceFlag::Protocol, "%s done blk=%llx -> %s", busReqName(msg.req),
                       (unsigned long long)msg.blockAddr,
                       stateName(f->state).c_str());
    }

    if (pendingAction_.completesOp) {
        AccessResult r;
        if (f) {
            applyOp(*f, r);
        } else if (checker_ && !checkerRecorded_ &&
                   (curOp_.type == OpType::Write ||
                    curOp_.type == OpType::Rmw)) {
            // No-allocate write-through: memory got the word on the bus.
            checker_->onWrite(id_, wordAlign(curOp_.addr), curOp_.value,
                              curTick());
        }
        finishOp(r);
    } else {
        phase_ = Phase::Idle;
        dispatch();
    }
}

void
Cache::armBusyWait(Addr block_addr)
{
    ++busyWaitArms;
    lockWaitStart_ = curTick();
    bwReg_.arm(block_addr);
    pendingLockOp_ = curOp_;
    lockOpWaiting_ = true;
    trace(TraceFlag::Lock, "busy-wait armed blk=%llx",
                   (unsigned long long)block_addr);
    if (lockHandler_) {
        // Work while waiting: tell the processor the lock is pending and
        // let it continue (Section E.4).
        AccessResult r;
        r.waiting = true;
        AccessCallback cb = std::move(curCb_);
        curCb_ = nullptr;
        pendingLockCb_ = nullptr;
        eventq()->scheduleIn(config_.hitLatency,
                             [cb = std::move(cb), r] { cb(r); });
    } else {
        // Blocking busy wait: hold the callback until the interrupt.
        pendingLockCb_ = std::move(curCb_);
        curCb_ = nullptr;
    }
}

void
Cache::prepareLockFetch(BusMsg &msg)
{
    // The fetch matches the waiting operation: only lock-style ops
    // re-lock the block; a plain access denied by a lock fetches with
    // ordinary privilege once the lock is released.
    switch (pendingLockOp_.type) {
      case OpType::LockRead:
      case OpType::Rmw:
        msg.req = BusReq::ReadLock;
        break;
      case OpType::Read:
        msg.req = BusReq::ReadShared;
        break;
      default:
        msg.req = BusReq::ReadExclusive;
        break;
    }
    msg.blockAddr = bwReg_.blockAddr();
    msg.wordAddr = wordAlign(pendingLockOp_.addr);
    // The busy-waited replay is part of the lock dance: sync traffic.
    msg.cls = TrafficClass::Sync;
    if (config_.geom.subBlockUnits())
        msg.unitWords = config_.geom.transferWords;
    lockInstallTarget_ = prepareInstall(msg);
}

void
Cache::lockFetchCompleted(const BusMsg &msg, const SnoopResult &res)
{
    Frame *f = lockInstallTarget_;
    lockInstallTarget_ = nullptr;
    sim_assert(f != nullptr, "lock fetch with no install frame");
    sim_assert(res.data.size() == blockWords(), "bad lock fetch payload");
    blocks_.install(*f, msg.blockAddr);
    f->data = res.data;
    blocks_.touch(*f, curTick());
    if (msg.req == BusReq::ReadLock)
        opLockFetched_ = true;
    protocol_->finishBus(*this, msg, res, *f);
    if (config_.geom.subBlockUnits()) {
        f->unitDirty = (isDirty(f->state) && !res.unitDirty.empty())
                           ? res.unitDirty
                           : std::vector<bool>(
                                 config_.geom.unitsPerBlock(), false);
    }
    ++busyWaitInterrupts;
    lockWaitTime.sample(curTick() - lockWaitStart_);
    trace(TraceFlag::Lock, "busy-wait won blk=%llx -> %s",
                   (unsigned long long)msg.blockAddr,
                   stateName(f->state).c_str());

    if (phase_ != Phase::Idle) {
        // The processor has another operation in flight (work while
        // waiting); replay the lock op when it finishes.
        lockReplayPending_ = true;
        return;
    }
    startLockReplay();
}

void
Cache::lockFetchDenied()
{
    // Still locked (e.g. the unlock raced with a purge): keep waiting.
    ++lockRetries;
}

void
Cache::startLockReplay()
{
    sim_assert(lockOpWaiting_, "lock replay without waiting op");
    lockOpWaiting_ = false;
    curOp_ = pendingLockOp_;
    if (lockHandler_) {
        MemOp op = pendingLockOp_;
        LockInterruptHandler h = lockHandler_;
        curCb_ = [op, h](const AccessResult &r) { h(op, r); };
    } else {
        curCb_ = std::move(pendingLockCb_);
        pendingLockCb_ = nullptr;
    }
    opIssued_ = curTick();
    firstDispatch_ = false;
    replays_ = 0;
    checkerRecorded_ = false;
    dispatch();
}

} // namespace csync
