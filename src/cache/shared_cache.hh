/**
 * @file
 * The shared level of a clustered topology: a per-cluster L2 tag
 * directory acting as a snoop filter at the cluster/root boundary,
 * plus the root-bus traffic model joining the clusters.
 *
 * Coherence itself stays flat — every address has exactly one home
 * switch and one snoop domain, so the single-bus coherence argument
 * carries over per switch and no protocol changes.  The hierarchy
 * manifests as *delivery*: the SharedCache aggregates its member L1s'
 * residency so the boundary gate can prove a broadcast would find no
 * copy inside a remote cluster and skip it.  That skip is safe because
 * every protocol's snoop is a no-op without a valid frame; busy-wait
 * registers, which react while holding no copy, are never filtered
 * (see DESIGN.md "Hierarchical topologies").
 *
 * The L2 holds no data.  Inclusive policy keeps a block's tag after
 * the last private L1 drops its copy — the shared level retains the
 * block, so boundary snoops keep forwarding in until an invalidating
 * transaction clears the tag.  Exclusive policy tracks exactly the
 * union of the L1 tags via a live query, so forwarding stops the
 * moment the last private copy leaves.  Both are supersets of the
 * L1s' true residency, which is the filter's correctness condition.
 */

#ifndef CSYNC_CACHE_SHARED_CACHE_HH
#define CSYNC_CACHE_SHARED_CACHE_HH

#include <string>
#include <unordered_set>
#include <vector>

#include "mem/snoop_gate.hh"
#include "sim/stats.hh"
#include "system/topology.hh"

namespace csync
{

class Cache;

/**
 * Stats model of the top-level bus joining the clusters.  The root
 * carries only boundary crossings — requests homed outside their
 * cluster and snoop forwards into remote clusters — and is modeled as
 * a fixed traversal penalty on the home switch rather than a third
 * arbitrated interconnect (the home bus serializes the transaction
 * anyway; see DESIGN.md for the modeling argument).
 */
class RootBusModel
{
  public:
    RootBusModel(const std::string &name, stats::Group *parent)
        : statsGroup(name, parent),
          transactions(&statsGroup, "transactions",
                       "transactions that traversed the root bus"),
          busyCycles(&statsGroup, "busyCycles",
                     "cycles of root-bus traversal charged")
    {
    }

    stats::Group statsGroup;
    stats::Scalar transactions;
    stats::Scalar busyCycles;
};

/**
 * One cluster's shared L2 tag directory.  Residency is tracked per
 * home switch (cluster k's members have one cache port on every
 * switch), so under the sharded engine each switch's tag set is only
 * touched by that switch's transactions — shard-local by construction.
 */
class SharedCache
{
  public:
    /**
     * @param name Stat namespace, e.g. "cluster0.l2".
     * @param cluster_idx This cluster's index (== its switch index).
     * @param spec Policy knobs (inclusive / snoop filtering).
     * @param num_switches Switch count of the whole machine.
     */
    SharedCache(std::string name, unsigned cluster_idx,
                const ClusterSpec &spec, std::size_t num_switches,
                stats::Group *stats_parent);

    /** Register a member processor's cache port on @p switch_idx. */
    void addMember(std::size_t switch_idx, Cache *cache);

    unsigned clusterIdx() const { return clusterIdx_; }
    bool inclusive() const { return spec_.inclusive; }
    bool filterEnabled() const { return spec_.snoopFilter; }

    /**
     * May some member L1 hold a valid copy of @p block (homed on
     * @p switch_idx)?  Exclusive: a live query over the member frame
     * tables, exact.  Inclusive: additionally true while the L2 tag
     * persists.  Never false while a member actually holds the block.
     */
    bool mayHold(std::size_t switch_idx, Addr block) const;

    /** Is a member's busy-wait register armed on @p block?  An armed
     *  watcher holds the boundary open: it reacts to lock traffic
     *  while caching nothing. */
    bool watcherBelow(std::size_t switch_idx, Addr block) const;

    /** A member requested a transaction that leaves it holding the
     *  block: insert the L2 tag (inclusive policy only). */
    void noteFill(std::size_t switch_idx, Addr block);

    /** An invalidating transaction was forwarded into this cluster:
     *  the sweep clears every member copy, so drop the L2 tag. */
    void noteInvalidate(std::size_t switch_idx, Addr block);

    /** A member's transaction crossed the root bus. */
    void noteCrossing() { ++crossingsOut; }

    /** Does the inclusive tag directory hold @p block (homed on
     *  @p switch_idx)?  Always false under the exclusive policy — the
     *  persistent tag is the only L2 state beyond the member L1s, so
     *  this is what architectural digests record. */
    bool
    tagPresent(std::size_t switch_idx, Addr block) const
    {
        return spec_.inclusive && tags_.at(switch_idx).count(block) != 0;
    }

    stats::Group statsGroup;
    stats::Scalar tagInserts;
    stats::Scalar tagDrops;
    stats::Scalar crossingsOut;

  private:
    unsigned clusterIdx_;
    ClusterSpec spec_;
    /** Inclusive-policy tags, per home switch. */
    std::vector<std::unordered_set<Addr>> tags_;
    /** Member cache ports, per home switch. */
    std::vector<std::vector<Cache *>> members_;
};

/**
 * The snoop gate of one cluster bus: consulted by that switch's Bus on
 * every transaction to decide per-cluster forwarding, maintain the L2
 * tags, and account root-bus crossings.  One gate per switch; all the
 * state it mutates is keyed by that switch, keeping the sharded engine
 * race-free.
 */
class ClusterGate : public SnoopGate
{
  public:
    ClusterGate(const std::string &switch_name, std::size_t switch_idx,
                const TopologyConfig *topo, unsigned num_procs,
                std::vector<SharedCache *> l2s, RootBusModel *root,
                Tick crossing_penalty, stats::Group *stats_parent);

    Tick beginTransaction(const BusMsg &msg) override;
    bool shouldSnoop(const BusClient *client, const BusMsg &msg) override;

    stats::Group statsGroup;
    stats::Scalar localTransactions;
    stats::Scalar rootCrossings;
    stats::Scalar snoopsForwarded;
    stats::Scalar snoopsFiltered;

  private:
    /** Cluster of the node, or kNoCluster for I/O devices. */
    unsigned clusterOfNode(NodeId id) const;

    static constexpr unsigned kNoCluster = unsigned(-1);

    std::size_t switchIdx_;
    const TopologyConfig *topo_;
    unsigned numProcs_;
    std::vector<SharedCache *> l2s_;
    RootBusModel *root_;
    Tick penalty_;
    /** Per-cluster forwarding decision for the in-flight transaction
     *  (valid between beginTransaction and the last shouldSnoop). */
    std::vector<char> forward_;
    unsigned reqCluster_ = kNoCluster;
};

} // namespace csync

#endif // CSYNC_CACHE_SHARED_CACHE_HH
