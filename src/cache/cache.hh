/**
 * @file
 * The snooping cache controller.  The Cache does the protocol-independent
 * mechanics — frame lookup and allocation, eviction (with piggybacked
 * victim write-back), bus requests, the fetch-then-replay operation loop,
 * the busy-wait register, checker hooks, and statistics — and delegates
 * every policy decision to its Protocol.
 */

#ifndef CSYNC_CACHE_CACHE_HH
#define CSYNC_CACHE_CACHE_HH

#include <functional>
#include <memory>
#include <unordered_set>

#include "cache/cache_blocks.hh"
#include "cache/directory.hh"
#include "coherence/protocol.hh"
#include "core/busy_wait.hh"
#include "mem/bus.hh"
#include "proc/mem_op.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"
#include "system/checker.hh"

namespace csync
{

/** Per-cache configuration. */
struct CacheConfig
{
    CacheGeometry geom;
    /** Processor-visible latency of a cache hit, in cycles. */
    Tick hitLatency = 1;
    /** Directory organization (Feature 3). */
    DirectoryKind directory = DirectoryKind::IdenticalDual;
    /** Enable the busy-wait register (Section E.4).  Without it, a
     *  locked response is retried on the bus (for ablation). */
    bool useBusyWaitRegister = true;
    /** Use the dedicated most-significant arbitration priority bit when
     *  a busy-wait register answers an unlock broadcast (Section E.4).
     *  Disable for ablation: waiters then arbitrate at normal priority
     *  and competing data traffic delays lock hand-offs. */
    bool busyWaitPriority = true;
};

/**
 * One processor's private snooping cache.
 */
class Cache : public SimObject, public BusClient
{
  public:
    /** Completion callback to the processor. */
    using AccessCallback = std::function<void(const AccessResult &)>;

    /** Handler invoked when a busy-waited lock is finally acquired (the
     *  "interrupt" of Figure 9), enabling work-while-waiting. */
    using LockInterruptHandler =
        std::function<void(const MemOp &, const AccessResult &)>;

    /**
     * @param name Instance name.
     * @param eq Event queue.
     * @param id Node id on the bus (0-based, dense).
     * @param reg_id Node id for the busy-wait register.
     * @param config Geometry and options.
     * @param protocol Coherence protocol (owned).
     * @param bus The interconnect this port posts to (cache and register
     *            are registered as clients by the caller, in id order).
     * @param checker Optional coherence checker (may be nullptr).
     * @param stats_parent Statistics parent group.
     */
    Cache(std::string name, EventQueue *eq, NodeId id, NodeId reg_id,
          const CacheConfig &config, std::unique_ptr<Protocol> protocol,
          Interconnect *bus, Checker *checker,
          stats::Group *stats_parent);

    /**
     * Issue one processor operation.  The cache is blocking: the next
     * access may only be issued after the callback fires (exception: a
     * LockRead that returned waiting=true under a lock-interrupt handler
     * completes later through the handler).
     */
    void access(const MemOp &op, AccessCallback cb);

    /** True if no operation is in progress. */
    bool idle() const { return phase_ == Phase::Idle; }

    /** Install a lock-interrupt handler (enables work-while-waiting). */
    void setLockInterruptHandler(LockInterruptHandler handler);

    /** @name Introspection (tests, scenarios, checkers) */
    /// @{
    State stateOf(Addr addr) const;
    Word peekWord(Addr addr) const;
    const Frame *peekFrame(Addr addr) const;
    bool busyWaitArmed() const { return bwReg_.armed(); }
    Addr busyWaitAddr() const { return bwReg_.blockAddr(); }
    const CacheBlocks &blocks() const { return blocks_; }

    /** Mutable frame access for tests and the Figure 10 transition
     *  enumerator; nullptr if the block is not resident. */
    Frame *mutableFrame(Addr addr) { return blocks_.find(blockAlign(addr)); }

    /** Force a block into the cache in a given state (tests and the
     *  transition enumerator only — bypasses the protocol). */
    Frame &installFrameForTest(Addr addr, State state,
                               const std::vector<Word> *data = nullptr);
    /// @}

    /** @name Access for protocols and the busy-wait register */
    /// @{
    Protocol &protocol() { return *protocol_; }
    Interconnect &bus() { return *bus_; }
    Memory &memory() { return bus_->memory(); }
    DirectoryModel &directory() { return dir_; }
    Checker *checker() { return checker_; }
    BusyWaitRegister &busyWaitRegister() { return bwReg_; }
    const CacheConfig &config() const { return config_; }
    unsigned blockWords() const { return config_.geom.blockWords; }
    Addr blockAlign(Addr a) const { return blocks_.blockAlign(a); }

    /** True if @p msg was issued by this cache's busy-wait register. */
    bool
    isBusyWaitRegisterRequest(const BusMsg &msg) const
    {
        return msg.requester == bwReg_.nodeId();
    }

    /** True if the *current* operation acquired its block's lock via a
     *  ReadLock fetch (protocols use this to tell an RMW's own
     *  transient lock from a program lock held across the RMW). */
    bool opLockFetched() const { return opLockFetched_; }

    /** Track a lock this cache purged to memory (Section E.3). */
    void notePurgedLock(Addr block_addr, bool held);

    /** True if this cache holds the lock for a purged block. */
    bool holdsPurgedLock(Addr block_addr) const;

    /** Busy-wait register grant: choose the install frame, piggyback a
     *  victim write-back into @p msg, fill the lock-fetch fields. */
    void prepareLockFetch(BusMsg &msg);

    /** Busy-wait register completion: the lock was won (Figure 9). */
    void lockFetchCompleted(const BusMsg &msg, const SnoopResult &res);

    /** Busy-wait register completion with the block still locked. */
    void lockFetchDenied();
    /// @}

    /** @name BusClient interface */
    /// @{
    NodeId nodeId() const override { return id_; }
    bool busGrant(BusMsg &msg) override;
    SnoopReply snoop(const BusMsg &msg) override;
    void busComplete(const BusMsg &msg, const SnoopResult &res) override;
    /// @}

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar accesses;
    stats::Scalar readOps;
    stats::Scalar writeOps;
    stats::Scalar rmwOps;
    stats::Scalar lockOps;
    stats::Scalar unlockOps;
    stats::Scalar writeNoFetchOps;
    stats::Scalar hitsLocal;
    stats::Scalar missesBus;
    stats::Scalar busTransactions;
    stats::Scalar invalidationsReceived;
    stats::Scalar updatesReceived;
    stats::Scalar blocksSupplied;
    stats::Scalar evictions;
    stats::Scalar writebacks;
    stats::Scalar lockedPurges;
    stats::Scalar locksAcquired;
    stats::Scalar zeroTimeLocks;
    stats::Scalar zeroTimeUnlocks;
    stats::Scalar unlockBroadcasts;
    stats::Scalar busyWaitArms;
    stats::Scalar busyWaitInterrupts;
    stats::Scalar lockRetries;
    stats::Histogram opLatency;
    stats::Histogram lockWaitTime;
    stats::Formula hitRatio;
    stats::Formula busPerAccess;
    /// @}

  private:
    enum class Phase
    {
        Idle,
        /** A bus request for the current operation is queued/in flight. */
        MainReq,
    };

    /** Dispatch the current op to the protocol and act on the result. */
    void dispatch();

    /** Route the op to the right Protocol::proc* method. */
    ProcAction dispatchToProtocol(Frame *f);

    /** Apply the op's data effects and fill the result. */
    void applyOp(Frame &f, AccessResult &r);

    /** Record per-transfer-unit dirt for a written word (Section D.3). */
    void markUnitDirty(Frame &f, unsigned word_idx);

    /** Complete the current op locally (hit path). */
    void completeLocally(Frame &f);

    /** Deliver the result and return to Idle. */
    void finishOp(const AccessResult &r);

    /** Choose/clear the frame a fetched block will occupy; piggyback the
     *  victim write-back into @p msg. */
    Frame *prepareInstall(BusMsg &msg);

    /** Begin busy-waiting on the current (lock) operation. */
    void armBusyWait(Addr block_addr);

    /** Replay a busy-waited lock op after the interrupt. */
    void startLockReplay();

    NodeId id_;
    CacheConfig config_;
    std::unique_ptr<Protocol> protocol_;
    Interconnect *bus_;
    Checker *checker_;
    CacheBlocks blocks_;
    DirectoryModel dir_;
    BusyWaitRegister bwReg_;

    Phase phase_ = Phase::Idle;
    MemOp curOp_;
    AccessCallback curCb_;
    Tick opIssued_ = 0;
    bool firstDispatch_ = true;
    int replays_ = 0;
    ProcAction pendingAction_;
    BusMsg pendingMsg_;
    Frame *installTarget_ = nullptr;
    bool checkerRecorded_ = false;
    Word rmwOldValue_ = 0;
    bool rmwOldValid_ = false;
    bool opLockFetched_ = false;
    State decisionState_ = Inv;

    LockInterruptHandler lockHandler_;
    bool lockOpWaiting_ = false;
    MemOp pendingLockOp_;
    AccessCallback pendingLockCb_;
    Tick lockWaitStart_ = 0;
    bool lockReplayPending_ = false;
    Frame *lockInstallTarget_ = nullptr;

    std::unordered_set<Addr> purgedLocks_;
};

} // namespace csync

#endif // CSYNC_CACHE_CACHE_HH
