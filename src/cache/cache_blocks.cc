#include "cache/cache_blocks.hh"

namespace csync
{

CacheBlocks::CacheBlocks(const CacheGeometry &geom) : geom_(geom)
{
    sim_assert(geom_.frames > 0, "cache needs at least one frame");
    sim_assert(geom_.blockWords > 0, "block size must be positive");
    sim_assert((geom_.blockWords & (geom_.blockWords - 1)) == 0,
               "block words must be a power of two");
    frames_.resize(geom_.frames);
    for (auto &f : frames_)
        f.data.assign(geom_.blockWords, 0);
    index_.reserve(geom_.frames * 2);
}

unsigned
CacheBlocks::setIndex(Addr block_addr) const
{
    if (geom_.ways == 0)
        return 0;
    return unsigned((block_addr / geom_.blockBytes()) % geom_.sets());
}

std::pair<unsigned, unsigned>
CacheBlocks::setRange(Addr block_addr) const
{
    if (geom_.ways == 0)
        return {0, geom_.frames};
    unsigned set = setIndex(block_addr);
    return {set * geom_.ways, (set + 1) * geom_.ways};
}

Frame *
CacheBlocks::find(Addr block_addr)
{
    auto it = index_.find(block_addr);
    if (it == index_.end())
        return nullptr;
    Frame &f = frames_[it->second];
    if (f.valid() && f.blockAddr == block_addr)
        return &f;
    // Stale hint: the frame was invalidated in place or rebound to
    // another block since this entry was written.
    index_.erase(it);
    return nullptr;
}

const Frame *
CacheBlocks::find(Addr block_addr) const
{
    return const_cast<CacheBlocks *>(this)->find(block_addr);
}

void
CacheBlocks::install(Frame &f, Addr block_addr)
{
    f.blockAddr = block_addr;
    index_[block_addr] = std::uint32_t(&f - frames_.data());
}

Frame *
CacheBlocks::victim(Addr block_addr)
{
    auto [lo, hi] = setRange(block_addr);
    Frame *invalid = nullptr;
    Frame *lru_unlocked = nullptr;
    Frame *lru_any = nullptr;
    for (unsigned i = lo; i < hi; ++i) {
        Frame &f = frames_[i];
        if (!f.valid()) {
            if (!invalid)
                invalid = &f;
            continue;
        }
        if (!lru_any || f.lastUse < lru_any->lastUse)
            lru_any = &f;
        if (!isLocked(f.state) &&
            (!lru_unlocked || f.lastUse < lru_unlocked->lastUse)) {
            lru_unlocked = &f;
        }
    }
    if (invalid)
        return invalid;
    if (lru_unlocked)
        return lru_unlocked;
    return lru_any;
}

void
CacheBlocks::forEachValid(const std::function<void(Frame &)> &fn)
{
    for (auto &f : frames_)
        if (f.valid())
            fn(f);
}

void
CacheBlocks::forEachValid(const std::function<void(const Frame &)> &fn) const
{
    for (const auto &f : frames_)
        if (f.valid())
            fn(f);
}

unsigned
CacheBlocks::validCount() const
{
    unsigned n = 0;
    for (const auto &f : frames_)
        if (f.valid())
            ++n;
    return n;
}

} // namespace csync
