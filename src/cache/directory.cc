#include "cache/directory.hh"

namespace csync
{

const char *
directoryKindCode(DirectoryKind kind)
{
    switch (kind) {
      case DirectoryKind::IdenticalDual: return "ID";
      case DirectoryKind::NonIdenticalDual: return "NID";
      case DirectoryKind::DualPortedRead: return "DPR";
      default: return "?";
    }
}

DirectoryModel::DirectoryModel(DirectoryKind kind, stats::Group *parent)
    : statsGroup("directory", parent),
      procAccesses(&statsGroup, "procAccesses",
                   "processor references consulting the directory"),
      busSnoops(&statsGroup, "busSnoops",
                "bus requests consulting the directory"),
      writeHitsToClean(&statsGroup, "writeHitsToClean",
                       "write hits changing a block clean->dirty"),
      waiterStatusWrites(&statsGroup, "waiterStatusWrites",
                         "bus-side waiter status writes (lock-waiter)"),
      kind_(kind)
{
}

void
DirectoryModel::noteWriteHitToClean()
{
    ++writeHitsToClean;
}

void
DirectoryModel::noteWaiterStatusWrite()
{
    ++waiterStatusWrites;
}

double
DirectoryModel::interferenceEvents() const
{
    switch (kind_) {
      case DirectoryKind::IdenticalDual:
      case DirectoryKind::DualPortedRead:
        // Every status write serializes against the other side (DPR has
        // concurrent reads, but writes still collide).
        return writeHitsToClean.value() + waiterStatusWrites.value();
      case DirectoryKind::NonIdenticalDual:
        return 0.0;
    }
    return 0.0;
}

} // namespace csync
