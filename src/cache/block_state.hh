/**
 * @file
 * Cache-block states encoded as bitmasks of the property words the paper
 * uses to *name* its states (Section E.1): Valid, Write (sole-access
 * privilege), Lock, Dirty, Source, Waiter.  Two extra bits serve the
 * write-update hybrids of Section D: Shared (writes must be broadcast) and
 * WroteOnce (Rudolph & Segall's interleave detector).
 *
 * Encoding states this way means the "states" rows of Table 1 and all
 * coherence invariants (single writer, single source, ...) can be computed
 * from the protocol implementations instead of being asserted by hand.
 */

#ifndef CSYNC_CACHE_BLOCK_STATE_HH
#define CSYNC_CACHE_BLOCK_STATE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace csync
{

/** A block state: a bitwise OR of StateBits values. */
using State = std::uint8_t;

/** Individual state property bits. */
enum StateBits : State
{
    /** The frame holds meaningful data. */
    BitValid  = 0x01,
    /** Sole-access (read and write) privilege. */
    BitWrite  = 0x02,
    /** Locked by this cache (Bitar lock states; implies BitWrite). */
    BitLock   = 0x04,
    /** Written since memory was last updated. */
    BitDirty  = 0x08,
    /** This cache is the source of the latest version of the block. */
    BitSource = 0x10,
    /** Another cache requested the block while it was locked. */
    BitWaiter = 0x20,
    /** Copies may exist elsewhere; writes must be broadcast (update
     *  protocols: Dragon/Firefly/Rudolph-Segall). */
    BitShared = 0x40,
    /** Rudolph-Segall: this cache wrote the block once since the last
     *  access by another processor. */
    BitWroteOnce = 0x80,
};

/** @name Canonical named states (the paper's eight, plus helpers). */
/// @{
constexpr State Inv        = 0;
constexpr State Rd         = BitValid;
constexpr State RdSrcCln   = BitValid | BitSource;
constexpr State RdSrcDty   = BitValid | BitSource | BitDirty;
constexpr State WrCln      = BitValid | BitWrite;
constexpr State WrDty      = BitValid | BitWrite | BitDirty;
constexpr State WrSrcCln   = BitValid | BitWrite | BitSource;
constexpr State WrSrcDty   = BitValid | BitWrite | BitSource | BitDirty;
constexpr State LkSrcDty   = BitValid | BitWrite | BitLock | BitSource |
                             BitDirty;
constexpr State LkSrcDtyWt = LkSrcDty | BitWaiter;
/// @}

/** @name State property predicates. */
/// @{
constexpr bool isValid(State s)  { return s & BitValid; }
constexpr bool canRead(State s)  { return s & BitValid; }
constexpr bool canWrite(State s) { return (s & BitValid) && (s & BitWrite); }
constexpr bool isLocked(State s) { return s & BitLock; }
constexpr bool isDirty(State s)  { return s & BitDirty; }
constexpr bool isSource(State s) { return s & BitSource; }
constexpr bool hasWaiter(State s){ return s & BitWaiter; }
constexpr bool isSharedHint(State s) { return s & BitShared; }
constexpr bool wroteOnce(State s){ return s & BitWroteOnce; }
/// @}

/**
 * Render a state the way the paper names them, e.g.
 * "Write,Source,Dirty" or "Invalid".  Shared/WroteOnce bits are rendered
 * as ",Shared"/",WroteOnce" suffixes for the hybrid protocols.
 */
std::string stateName(State s);

/** Short render for tables, e.g. "W.S.D" / "L.S.D.W" / "I". */
std::string stateAbbrev(State s);

/**
 * The paper's Table 1 "states" axis: the eight canonical rows in
 * presentation order.
 */
const std::vector<State> &table1StateRows();

} // namespace csync

#endif // CSYNC_CACHE_BLOCK_STATE_HH
