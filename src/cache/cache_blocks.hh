/**
 * @file
 * The cache tag/data store: a set-associative (or fully associative)
 * collection of block frames with LRU replacement.  Replacement prefers
 * invalid frames, then the least-recently-used unlocked frame; a locked
 * frame is only ever chosen when every frame in the set is locked, which
 * triggers the paper's locked-block purge fallback (Section E.3).
 */

#ifndef CSYNC_CACHE_CACHE_BLOCKS_HH
#define CSYNC_CACHE_CACHE_BLOCKS_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cache/block_state.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace csync
{

/** One cache block frame. */
struct Frame
{
    /** Block-aligned address of the cached block (meaningful if valid). */
    Addr blockAddr = 0;
    /** Coherence state (bitmask; see block_state.hh). */
    State state = Inv;
    /** Block contents. */
    std::vector<Word> data;
    /** Last-use tick for LRU. */
    Tick lastUse = 0;
    /** Per-transfer-unit dirty bits (Section D.3); empty when the
     *  transfer unit is the whole block. */
    std::vector<bool> unitDirty;

    bool valid() const { return isValid(state); }

    /** Number of dirty transfer units. */
    unsigned
    dirtyUnits() const
    {
        unsigned n = 0;
        for (bool b : unitDirty)
            n += b;
        return n;
    }
};

/**
 * Geometry of one cache.
 */
struct CacheGeometry
{
    /** Total number of block frames. */
    unsigned frames = 64;
    /** Associativity; 0 means fully associative (the paper's default for
     *  the lock scheme, Section E.3). */
    unsigned ways = 0;
    /** Words per block. */
    unsigned blockWords = 4;
    /** Transfer-unit size in words (Section D.3).  0 = whole block.
     *  When smaller than the block, each unit carries its own dirty
     *  status and a transfer moves only the requested unit plus all
     *  dirty units. */
    unsigned transferWords = 0;

    /** Block size in bytes. */
    Addr blockBytes() const { return Addr(blockWords) * bytesPerWord; }

    /** True when sub-block transfer units are enabled. */
    bool
    subBlockUnits() const
    {
        return transferWords != 0 && transferWords < blockWords;
    }

    /** Number of transfer units per block (1 when disabled). */
    unsigned
    unitsPerBlock() const
    {
        return subBlockUnits() ? blockWords / transferWords : 1;
    }

    /** Number of sets implied by frames/ways. */
    unsigned
    sets() const
    {
        if (ways == 0)
            return 1;
        sim_assert(frames % ways == 0, "frames %u not divisible by ways %u",
                   frames, ways);
        return frames / ways;
    }
};

/**
 * The tag/data array.
 */
class CacheBlocks
{
  public:
    explicit CacheBlocks(const CacheGeometry &geom);

    const CacheGeometry &geometry() const { return geom_; }

    /** Block-align an address. */
    Addr blockAlign(Addr a) const { return a & ~(geom_.blockBytes() - 1); }

    /** Set index for an address. */
    unsigned setIndex(Addr block_addr) const;

    /**
     * Find the valid frame holding @p block_addr, or nullptr.
     *
     * O(1): served from the address index rather than a frame scan.
     * Index entries are hints — a frame invalidated in place (protocols
     * flip Frame::state directly) leaves a stale entry behind, which
     * lookup validates against the frame and lazily discards.  The
     * invariant that makes a miss authoritative is that every
     * blockAddr assignment goes through install().
     */
    Frame *find(Addr block_addr);
    const Frame *find(Addr block_addr) const;

    /**
     * Bind @p f to @p block_addr and index it.  The only way a frame's
     * blockAddr may be (re)assigned — keeps the address index coherent.
     */
    void install(Frame &f, Addr block_addr);

    /**
     * Choose a frame for a new block in the set of @p block_addr.
     * Returns the chosen frame; if it is valid, the caller must evict it
     * (it may even be locked — the purge-locked-block case).
     */
    Frame *victim(Addr block_addr);

    /** Mark the frame most recently used. */
    void touch(Frame &f, Tick now) { f.lastUse = now; }

    /** Iterate all valid frames. */
    void forEachValid(const std::function<void(Frame &)> &fn);
    void forEachValid(const std::function<void(const Frame &)> &fn) const;

    /** Count valid frames. */
    unsigned validCount() const;

  private:
    CacheGeometry geom_;
    std::vector<Frame> frames_;
    /** blockAddr -> frame index hint (see find()). */
    std::unordered_map<Addr, std::uint32_t> index_;

    std::pair<unsigned, unsigned> setRange(Addr block_addr) const;
};

} // namespace csync

#endif // CSYNC_CACHE_CACHE_BLOCKS_HH
