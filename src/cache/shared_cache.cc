#include "cache/shared_cache.hh"

#include "cache/cache.hh"
#include "mem/interconnect.hh"
#include "sim/logging.hh"

namespace csync
{

namespace
{

/** Does a transaction of this type leave the requester holding the
 *  block (so the requester cluster's L2 tag must be inserted)?  Over-
 *  approximate: a refused (locked) fetch inserts a tag for a copy that
 *  never arrived, which only costs forwarding precision, never
 *  correctness. */
bool
fillsBelow(BusReq req)
{
    return transfersBlock(req) || req == BusReq::Upgrade ||
           req == BusReq::WriteNoFetch;
}

/** Does a transaction of this type invalidate every remote copy it
 *  reaches (so forwarded-to inclusive clusters can drop their tag)?
 *  WriteWord belongs: only the write-through-invalidate family issues
 *  it, and its snoop invalidates.  UpdateWord does not — the update
 *  family refreshes remote copies in place. */
bool
invalidatesCopies(BusReq req)
{
    switch (req) {
      case BusReq::ReadExclusive:
      case BusReq::Upgrade:
      case BusReq::ReadLock:
      case BusReq::WriteWord:
      case BusReq::WriteNoFetch:
      case BusReq::IOInvalidate:
        return true;
      default:
        return false;
    }
}

} // anonymous namespace

SharedCache::SharedCache(std::string name, unsigned cluster_idx,
                         const ClusterSpec &spec, std::size_t num_switches,
                         stats::Group *stats_parent)
    : statsGroup(std::move(name), stats_parent),
      tagInserts(&statsGroup, "tagInserts",
                 "block tags installed in the shared level"),
      tagDrops(&statsGroup, "tagDrops",
               "tags dropped by forwarded invalidating transactions"),
      crossingsOut(&statsGroup, "crossingsOut",
                   "member transactions that crossed the root bus"),
      clusterIdx_(cluster_idx),
      spec_(spec),
      tags_(num_switches),
      members_(num_switches)
{
}

void
SharedCache::addMember(std::size_t switch_idx, Cache *cache)
{
    members_.at(switch_idx).push_back(cache);
}

bool
SharedCache::mayHold(std::size_t switch_idx, Addr block) const
{
    for (const Cache *c : members_[switch_idx])
        if (isValid(c->stateOf(block)))
            return true;
    return spec_.inclusive && tags_[switch_idx].count(block) != 0;
}

bool
SharedCache::watcherBelow(std::size_t switch_idx, Addr block) const
{
    for (const Cache *c : members_[switch_idx])
        if (c->busyWaitArmed() && c->busyWaitAddr() == block)
            return true;
    return false;
}

void
SharedCache::noteFill(std::size_t switch_idx, Addr block)
{
    if (!spec_.inclusive)
        return;
    if (tags_[switch_idx].insert(block).second)
        ++tagInserts;
}

void
SharedCache::noteInvalidate(std::size_t switch_idx, Addr block)
{
    if (tags_[switch_idx].erase(block))
        ++tagDrops;
}

ClusterGate::ClusterGate(const std::string &switch_name,
                         std::size_t switch_idx,
                         const TopologyConfig *topo, unsigned num_procs,
                         std::vector<SharedCache *> l2s,
                         RootBusModel *root, Tick crossing_penalty,
                         stats::Group *stats_parent)
    : statsGroup(switch_name + ".filter", stats_parent),
      localTransactions(&statsGroup, "localTransactions",
                        "transactions kept inside this cluster"),
      rootCrossings(&statsGroup, "rootCrossings",
                    "transactions that traversed the root bus"),
      snoopsForwarded(&statsGroup, "snoopsForwarded",
                      "snoop deliveries forwarded into a remote cluster"),
      snoopsFiltered(&statsGroup, "snoopsFiltered",
                     "remote-cluster snoop deliveries suppressed"),
      switchIdx_(switch_idx),
      topo_(topo),
      numProcs_(num_procs),
      l2s_(std::move(l2s)),
      root_(root),
      penalty_(crossing_penalty),
      forward_(l2s_.size(), 0)
{
    sim_assert(!l2s_.empty() && root_ != nullptr && numProcs_ > 0,
               "cluster gate needs shared caches and a root model");
}

unsigned
ClusterGate::clusterOfNode(NodeId id) const
{
    if (id < 0 || unsigned(id) >= 2 * numProcs_)
        return kNoCluster; // I/O devices sit above the clusters.
    unsigned proc = unsigned(id) < numProcs_ ? unsigned(id)
                                             : unsigned(id) - numProcs_;
    return topo_->clusterOfProc(proc, numProcs_);
}

Tick
ClusterGate::beginTransaction(const BusMsg &msg)
{
    reqCluster_ = clusterOfNode(msg.requester);

    bool any_remote = false;
    for (unsigned k = 0; k < unsigned(l2s_.size()); ++k) {
        if (k == reqCluster_) {
            forward_[k] = 1;
            continue;
        }
        const SharedCache *l2 = l2s_[k];
        bool fwd = !l2->filterEnabled() ||
                   l2->mayHold(switchIdx_, msg.blockAddr) ||
                   l2->watcherBelow(switchIdx_, msg.blockAddr);
        forward_[k] = fwd ? 1 : 0;
        any_remote = any_remote || fwd;
    }

    // Shared-level tag maintenance: the requester's cluster retains the
    // block it is acquiring; forwarded-to inclusive clusters lose every
    // copy to an invalidating sweep and can drop theirs.
    if (reqCluster_ != kNoCluster && fillsBelow(msg.req))
        l2s_[reqCluster_]->noteFill(switchIdx_, msg.blockAddr);
    if (invalidatesCopies(msg.req)) {
        for (unsigned k = 0; k < unsigned(l2s_.size()); ++k) {
            if (k != reqCluster_ && forward_[k])
                l2s_[k]->noteInvalidate(switchIdx_, msg.blockAddr);
        }
    }

    // The transaction crosses the root when the requester is homed
    // outside its own cluster, when the broadcast must reach a remote
    // cluster, or when the requester's boundary does no filtering at
    // all (the ablation: everything is broadcast system-wide).
    bool crossing = reqCluster_ != unsigned(switchIdx_) || any_remote ||
                    !l2s_[reqCluster_]->filterEnabled();
    if (!crossing) {
        ++localTransactions;
        return 0;
    }
    ++rootCrossings;
    if (reqCluster_ != kNoCluster)
        l2s_[reqCluster_]->noteCrossing();
    ++root_->transactions;
    root_->busyCycles += double(penalty_);
    return penalty_;
}

bool
ClusterGate::shouldSnoop(const BusClient *client, const BusMsg &msg)
{
    (void)msg;
    NodeId id = client->nodeId();
    // Never filter I/O devices (they sit above the clusters) or
    // busy-wait registers: the busy-wait priority line is a global
    // wire, and an armed register reacts to lock traffic while holding
    // no cached copy, so residency proves nothing about it.
    if (id < 0 || unsigned(id) >= numProcs_)
        return true;
    unsigned k = clusterOfNode(id);
    if (k == reqCluster_ || forward_[k]) {
        if (k != reqCluster_)
            ++snoopsForwarded;
        return true;
    }
    ++snoopsFiltered;
    return false;
}

} // namespace csync
