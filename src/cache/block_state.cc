#include "cache/block_state.hh"

namespace csync
{

std::string
stateName(State s)
{
    if (!isValid(s))
        return "Invalid";
    std::string out;
    if (isLocked(s))
        out = "Lock";
    else if (canWrite(s))
        out = "Write";
    else
        out = "Read";
    if (isSource(s))
        out += ",Source";
    if (isValid(s) && !isLocked(s))
        out += isDirty(s) ? ",Dirty" : ",Clean";
    else if (isDirty(s))
        out += ",Dirty";
    if (hasWaiter(s))
        out += ",Waiter";
    if (isSharedHint(s))
        out += ",Shared";
    if (wroteOnce(s))
        out += ",WroteOnce";
    return out;
}

std::string
stateAbbrev(State s)
{
    if (!isValid(s))
        return "I";
    std::string out;
    if (isLocked(s))
        out = "L";
    else if (canWrite(s))
        out = "W";
    else
        out = "R";
    if (isSource(s))
        out += ".S";
    out += isDirty(s) ? ".D" : ".C";
    if (hasWaiter(s))
        out += ".W";
    if (isSharedHint(s))
        out += ".sh";
    return out;
}

const std::vector<State> &
table1StateRows()
{
    static const std::vector<State> rows = {
        Inv,
        Rd,
        RdSrcCln,
        RdSrcDty,
        WrCln,          // non-source clean write (Goodman's Reserved)
        WrSrcCln,
        WrSrcDty,
        LkSrcDty,
        LkSrcDtyWt,
    };
    return rows;
}

} // namespace csync
