#include "cache/block_state.hh"

namespace csync
{

namespace
{

// The one flag -> label table behind stateName and stateAbbrev, in print
// order.  A null abbrev drops the flag from the abbreviated form (the
// WroteOnce hint never fit the compact dumps).  Dirty/Clean is rendered
// specially below: the long form suppresses ",Clean" on locked blocks.
struct SuffixLabel
{
    State bit;
    const char *word;
    const char *abbrev;
};

constexpr SuffixLabel kSuffixLabels[] = {
    {BitWaiter, ",Waiter", ".W"},
    {BitShared, ",Shared", ".sh"},
    {BitWroteOnce, ",WroteOnce", nullptr},
};

const char *
baseLabel(State s, bool abbrev)
{
    if (isLocked(s))
        return abbrev ? "L" : "Lock";
    if (canWrite(s))
        return abbrev ? "W" : "Write";
    return abbrev ? "R" : "Read";
}

std::string
renderState(State s, bool abbrev)
{
    if (!isValid(s))
        return abbrev ? "I" : "Invalid";
    std::string out = baseLabel(s, abbrev);
    if (isSource(s))
        out += abbrev ? ".S" : ",Source";
    if (abbrev)
        out += isDirty(s) ? ".D" : ".C";
    else if (!isLocked(s))
        out += isDirty(s) ? ",Dirty" : ",Clean";
    else if (isDirty(s))
        out += ",Dirty";
    for (const auto &l : kSuffixLabels) {
        if (!(s & l.bit))
            continue;
        if (const char *label = abbrev ? l.abbrev : l.word)
            out += label;
    }
    return out;
}

} // namespace

std::string
stateName(State s)
{
    return renderState(s, false);
}

std::string
stateAbbrev(State s)
{
    return renderState(s, true);
}

const std::vector<State> &
table1StateRows()
{
    static const std::vector<State> rows = {
        Inv,
        Rd,
        RdSrcCln,
        RdSrcDty,
        WrCln,          // non-source clean write (Goodman's Reserved)
        WrSrcCln,
        WrSrcDty,
        LkSrcDty,
        LkSrcDtyWt,
    };
    return rows;
}

} // namespace csync
