/**
 * @file
 * Directory-duality model (Feature 3).  We do not simulate SRAM ports;
 * we count the events the paper reasons about: status *writes* that must
 * touch the directory serving the other side of the cache.
 *
 *  - Identical dual (ID): a dirty-status change (processor side) must be
 *    written into the bus directory, and a waiter-status change (bus side)
 *    into the processor directory — both interfere.
 *  - Dual-ported-read (DPR): one directory, two read ports — reads are
 *    concurrent but every status write still serializes the ports.
 *  - Non-identical dual (NID): dirty status lives only in the processor
 *    directory and waiter status only in the bus directory — neither
 *    interferes (the paper's proposal).
 *
 * The model also tracks the *write hit to a clean block* frequency that
 * Bitar (1985) derives from Smith's data (0.2%-1.2% of references) to
 * decide whether NID is warranted.
 */

#ifndef CSYNC_CACHE_DIRECTORY_HH
#define CSYNC_CACHE_DIRECTORY_HH

#include <string>

#include "sim/stats.hh"

namespace csync
{

/** Directory organizations from Table 1, Feature 3. */
enum class DirectoryKind
{
    IdenticalDual,
    NonIdenticalDual,
    DualPortedRead,
};

/** Short table code for a directory kind ("ID" / "NID" / "DPR"). */
const char *directoryKindCode(DirectoryKind kind);

/**
 * Interference bookkeeping for one cache.
 */
class DirectoryModel
{
  public:
    DirectoryModel(DirectoryKind kind, stats::Group *parent);

    DirectoryKind kind() const { return kind_; }

    /** A processor reference consulted the processor directory. */
    void noteProcAccess() { ++procAccesses; }

    /** A bus snoop consulted the bus directory. */
    void noteBusSnoop() { ++busSnoops; }

    /** A processor write hit a clean block (dirty status changes). */
    void noteWriteHitToClean();

    /** The bus controller set/cleared waiter status (lock-waiter). */
    void noteWaiterStatusWrite();

    /** Interference events implied by the directory organization. */
    double interferenceEvents() const;

    /** @name Statistics */
    /// @{
    stats::Group statsGroup;
    stats::Scalar procAccesses;
    stats::Scalar busSnoops;
    stats::Scalar writeHitsToClean;
    stats::Scalar waiterStatusWrites;
    /// @}

  private:
    DirectoryKind kind_;
};

} // namespace csync

#endif // CSYNC_CACHE_DIRECTORY_HH
