/**
 * @file
 * Conservative parallel discrete-event engine.  A simulation is split
 * into shards — one event queue plus the objects bound to it — and the
 * shards run on worker threads in lockstep *windows* of simulated time.
 * Within a window each shard executes only its own events; anything a
 * shard wants to happen in another shard is posted through a per-pair
 * SPSC mailbox and delivered at the window barrier, where the
 * coordinator drains every mailbox and schedules the carried events in
 * a deterministic order.
 *
 * The conservative contract: an event posted during window W must be
 * timestamped at or after the end of W (the cross-domain lookahead — at
 * minimum the smallest latency any interaction between domains can
 * have).  That guarantees a shard never receives an event in its past,
 * so no rollback machinery is needed, and determinism reduces to the
 * delivery order at the barrier, which is fixed by the sort key
 * (when, priority, source shard, source sequence).
 *
 * The scheduler is model-agnostic: a shard is an EventQueue plus three
 * callbacks (done / retired / optional per-window hook), so it is
 * equally the engine behind System's domain-sharded runs and the unit
 * tests' synthetic topologies.
 */

#ifndef CSYNC_SIM_PARALLEL_HH
#define CSYNC_SIM_PARALLEL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mem/timing.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace csync
{

/**
 * The minimum simulated latency of any cross-domain interaction under
 * @p t: before one switch's activity can be observed by another domain,
 * at least an arbitration and an address cycle must pass on the remote
 * switch (and a signal takes signalCycles to cross).  Windows at least
 * this wide make the conservative barrier safe.
 */
Tick conservativeLookahead(const BusTiming &t);

/** One event in flight between shards. */
struct CrossEvent
{
    /** Absolute delivery tick (>= the posting window's end). */
    Tick when = 0;
    /** Intra-tick priority at the destination. */
    EventPri pri = EventPri::Default;
    /** Posting shard (delivery-order tie break). */
    std::uint32_t srcDomain = 0;
    /** Per-(source, destination) FIFO sequence (final tie break). */
    std::uint64_t srcSeq = 0;
    /** The work itself. */
    EventCallback cb;
};

/**
 * Single-producer / single-consumer mailbox: a lock-free ring for the
 * common case, with a sticky locked spill list once the ring ever
 * overflows (sticky so FIFO order survives overflow: after the first
 * spill every later push spills too, keeping ring entries strictly
 * older than spill entries until a drain empties both).
 */
class SpscMailbox
{
  public:
    explicit SpscMailbox(std::size_t capacity = 1024);

    SpscMailbox(const SpscMailbox &) = delete;
    SpscMailbox &operator=(const SpscMailbox &) = delete;

    /** Producer side: enqueue (never blocks the simulation). */
    void push(CrossEvent ev);

    /** Consumer side: append everything enqueued so far to @p out in
     *  push order, making the mailbox empty (and re-arming the ring). */
    void drainTo(std::vector<CrossEvent> *out);

    /** True when nothing is waiting (consumer side). */
    bool empty() const;

  private:
    std::vector<CrossEvent> ring_;
    std::size_t capacity_;
    /** Producer-owned cursor, read by the consumer. */
    std::atomic<std::size_t> tail_{0};
    /** Consumer-owned cursor, read by the producer. */
    std::atomic<std::size_t> head_{0};
    /** Producer-owned: once true, pushes go to the spill list until the
     *  producer observes (under spillMu_) that everything drained. */
    bool spilling_ = false;
    mutable std::mutex spillMu_;
    std::vector<CrossEvent> spill_;
};

/**
 * Runs a set of shards in conservative windows on a worker pool.
 *
 * Shards are assigned to workers round-robin; each worker executes its
 * shards' events up to the window horizon, then all threads meet at a
 * barrier where the coordinator delivers cross-shard mail, aggregates
 * progress (termination, retirement for the forward-progress watchdog,
 * the cooperative abort flag), and opens the next window.
 */
class ParallelScheduler
{
  public:
    /** One shard: a queue plus its model callbacks (both callbacks run
     *  on the shard's worker thread, never concurrently with events). */
    struct Shard
    {
        EventQueue *eq = nullptr;
        /** All of this shard's workloads have finished. */
        std::function<bool()> done;
        /** Monotonic retired-operation count (progress metric). */
        std::function<double()> retired;
    };

    struct Options
    {
        /** Worker threads (clamped to the shard count, min 1). */
        unsigned threads = 2;
        /** Window width in ticks (clamped up to the lookahead). */
        Tick window = 4096;
        /** Minimum legal cross-domain event delay. */
        Tick lookahead = 1;
        /** Stop once the horizon reaches this tick. */
        Tick maxTicks = maxTick;
        /** Events per runBounded() slice between abort checks. */
        std::uint64_t batchEvents = 4096;
        /** Cooperative abort, checked every batch and window. */
        const std::atomic<bool> *abort = nullptr;
        /**
         * Barrier hook: called once per window with the window-end tick
         * and the total retired count across ALL shards (the watchdog
         * must see every shard's progress, not just shard 0's).
         * Returning true stops the run.
         */
        std::function<bool(Tick now, double retired)> onWindow;
    };

    /** Why and where the run stopped. */
    struct Result
    {
        /** Every shard is done and every queue/mailbox drained. */
        bool completed = false;
        /** Queues and mailboxes drained with shards unfinished — the
         *  parallel engine's deadlock signal. */
        bool drained = false;
        /** The onWindow hook stopped the run (watchdog trip). */
        bool stoppedByHook = false;
        /** The abort flag stopped the run. */
        bool aborted = false;
        /** The horizon reached maxTicks with work still pending. */
        bool hitMaxTicks = false;
        /** Max over shards of the last executed event's tick. */
        Tick finalTick = 0;
        /** Total retired count at the end. */
        double retired = 0;
    };

    ParallelScheduler(std::vector<Shard> shards, const Options &opts);
    ~ParallelScheduler();

    ParallelScheduler(const ParallelScheduler &) = delete;
    ParallelScheduler &operator=(const ParallelScheduler &) = delete;

    /**
     * Post an event from shard @p src (must be the calling worker's
     * shard) to shard @p dst.  @p when must be at or after the current
     * window's end — the conservative lookahead contract, enforced by
     * assertion.  Delivery happens at the barrier, ordered by
     * (when, pri, src, per-pair sequence).
     */
    void post(unsigned src, unsigned dst, Tick when, EventPri pri,
              EventCallback cb);

    /** Run to completion/stop; joins all workers before returning.
     *  Model exceptions (FatalError from a shard's event) rethrow on
     *  the calling thread after the pool is quiesced. */
    Result run();

  private:
    void workerMain(unsigned worker);
    void runShardWindow(unsigned shard);
    void deliverMail();
    void shutdownWorkers();

    std::vector<Shard> shards_;
    Options opts_;
    unsigned numWorkers_;

    /** Per-(src,dst) mailboxes, src-major. */
    std::vector<std::unique_ptr<SpscMailbox>> mail_;
    /** Per-(src,dst) FIFO sequence counters (producer-owned). */
    std::vector<std::uint64_t> pairSeq_;

    /** @name Barrier state (all guarded by mu_) */
    /// @{
    std::mutex mu_;
    std::condition_variable cvWork_;
    std::condition_variable cvDone_;
    std::uint64_t generation_ = 0;
    unsigned running_ = 0;
    bool stopWorkers_ = false;
    /// @}

    /** Inclusive end of the window being executed; written by the
     *  coordinator before releasing workers, read-only during a window.
     *  Between windows the coordinator is the only active thread, so it
     *  reads shard queue state (now / pending / done / retired)
     *  directly — the barrier mutex orders those reads against the
     *  workers' writes. */
    Tick windowEnd_ = 0;

    /** First model exception from any worker (guarded by mu_). */
    std::exception_ptr firstError_;

    std::vector<std::thread> threads_;
};

} // namespace csync

#endif // CSYNC_SIM_PARALLEL_HH
