/**
 * @file
 * Discrete-event simulation kernel.  Events are callbacks scheduled at a
 * tick with an intra-tick priority; ties are broken FIFO so runs are fully
 * deterministic for a given seed and configuration.
 *
 * The implementation is allocation-light: callbacks live in pooled event
 * nodes with inline small-buffer storage (no per-event std::function heap
 * allocation), and the ready heap orders plain 24-byte keys so sifting
 * never moves a callback.  Nodes are recycled through a free list, so a
 * steady-state simulation schedules millions of events with a handful of
 * chunk allocations total.
 */

#ifndef CSYNC_SIM_EVENT_QUEUE_HH
#define CSYNC_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace csync
{

/**
 * Intra-tick scheduling priorities.  Lower value runs first.  The ordering
 * matters: bus arbitration for a cycle must observe every request posted
 * for that cycle, so requests post at Default and the arbiter runs at
 * Arbitrate.
 */
enum class EventPri : int
{
    Default = 0,
    Arbitrate = 10,
    Stats = 20
};

/**
 * Move-only type-erased callable with inline small-buffer storage.
 * Callables up to inlineBytes that are nothrow-move-constructible are
 * stored in place; anything larger falls back to a single heap box.
 * This replaces std::function in the event hot path, where the 16-byte
 * inline capacity of the standard library forced a heap allocation for
 * nearly every capturing lambda the simulator schedules.
 */
class EventCallback
{
    struct Ops
    {
        void (*invoke)(void *);
        void (*relocate)(void *src, void *dst);
        void (*destroy)(void *);
    };

    template <typename F>
    struct Inline
    {
        static void invoke(void *p) { (*static_cast<F *>(p))(); }

        static void
        relocate(void *s, void *d)
        {
            ::new (d) F(std::move(*static_cast<F *>(s)));
            static_cast<F *>(s)->~F();
        }

        static void destroy(void *p) { static_cast<F *>(p)->~F(); }

        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

    template <typename F>
    struct Boxed
    {
        static void invoke(void *p) { (**static_cast<F **>(p))(); }

        static void
        relocate(void *s, void *d)
        {
            *static_cast<F **>(d) = *static_cast<F **>(s);
        }

        static void destroy(void *p) { delete *static_cast<F **>(p); }

        static constexpr Ops ops{&invoke, &relocate, &destroy};
    };

  public:
    /** Inline capture capacity; sized so a pooled event node including
     *  bookkeeping fills two cache lines. */
    static constexpr std::size_t inlineBytes = 104;

    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventCallback(F &&f)
    {
        using D = std::decay_t<F>;
        if constexpr (sizeof(D) <= inlineBytes &&
                      alignof(D) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<D>) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &Inline<D>::ops;
        } else {
            *reinterpret_cast<D **>(buf_) = new D(std::forward<F>(f));
            ops_ = &Boxed<D>::ops;
        }
    }

    EventCallback(EventCallback &&o) noexcept : ops_(o.ops_)
    {
        if (ops_) {
            ops_->relocate(o.buf_, buf_);
            o.ops_ = nullptr;
        }
    }

    EventCallback &
    operator=(EventCallback &&o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = o.ops_;
            if (ops_) {
                ops_->relocate(o.buf_, buf_);
                o.ops_ = nullptr;
            }
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    /** Destroy the held callable (if any) and become empty. */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    explicit operator bool() const { return ops_ != nullptr; }

    void operator()() { ops_->invoke(buf_); }

  private:
    alignas(std::max_align_t) unsigned char buf_[inlineBytes];
    const Ops *ops_ = nullptr;
};

/**
 * The event queue: a binary heap of (tick, priority, sequence) keys over
 * pooled callback nodes, plus the current simulated time.
 */
class EventQueue
{
  public:
    using Callback = EventCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback to run.
     * @param pri Intra-tick priority.
     */
    void
    schedule(Tick when, Callback cb, EventPri pri = EventPri::Default)
    {
        sim_assert(when >= now_, "scheduling into the past: %llu < %llu",
                   (unsigned long long)when, (unsigned long long)now_);
        Node *n = allocNode();
        n->cb = std::move(cb);
        heap_.push_back(
            HeapEntry{when, (std::uint64_t(pri) << priShift) | seq_++, n});
        siftUp(heap_.size() - 1);
    }

    /** Schedule a callback @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb, EventPri pri = EventPri::Default)
    {
        schedule(now_ + delta, std::move(cb), pri);
    }

    /** True if no events are pending. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Total events executed since construction/reset (diagnostics:
     *  distinguishes a spinning livelock from a drained deadlock). */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p until.  Events scheduled exactly at @p until still run.
     *
     * @return Number of events executed.
     */
    std::uint64_t run(Tick until = maxTick);

    /**
     * Run at most @p max_events events (for watchdog-style tests).
     * @return Number of events executed.
     */
    std::uint64_t runSteps(std::uint64_t max_events);

    /**
     * Run at most @p max_events events whose tick is <= @p until.  The
     * bounded primitive of the sharded parallel engine: unlike run(),
     * now() is never advanced past the last executed event, so a
     * shard's clock always names real work — the window bookkeeping
     * lives in the scheduler, not in the queue.
     *
     * @return Number of events executed; a return < @p max_events
     *         means the queue holds nothing at or before @p until.
     */
    std::uint64_t runBounded(Tick until, std::uint64_t max_events);

    /** Tick of the earliest pending event (maxTick when empty). */
    Tick
    nextEventTick() const
    {
        return heap_.empty() ? maxTick : heap_[0].when;
    }

    /** Discard all pending events and reset time to zero. */
    void reset();

  private:
    /** A pooled event: the callback plus the free-list link. */
    struct Node
    {
        EventCallback cb;
        Node *nextFree = nullptr;
    };

    /** Intra-tick priority and FIFO sequence packed into one key; the
     *  sequence counter would need two thousand years at a billion
     *  events per second to reach the priority bits. */
    static constexpr unsigned priShift = 56;

    struct HeapEntry
    {
        Tick when;
        std::uint64_t prioSeq;
        Node *node;

        bool
        before(const HeapEntry &o) const
        {
            if (when != o.when)
                return when < o.when;
            return prioSeq < o.prioSeq;
        }
    };

    Node *allocNode();

    void
    freeNode(Node *n)
    {
        n->nextFree = freeList_;
        freeList_ = n;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    /** Pop the earliest event, returning its callback ready to run. */
    EventCallback popTop();

    std::vector<HeapEntry> heap_;
    std::vector<std::unique_ptr<Node[]>> chunks_;
    Node *freeList_ = nullptr;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace csync

#endif // CSYNC_SIM_EVENT_QUEUE_HH
