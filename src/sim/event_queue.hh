/**
 * @file
 * Discrete-event simulation kernel.  Events are callbacks scheduled at a
 * tick with an intra-tick priority; ties are broken FIFO so runs are fully
 * deterministic for a given seed and configuration.
 */

#ifndef CSYNC_SIM_EVENT_QUEUE_HH
#define CSYNC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace csync
{

/**
 * Intra-tick scheduling priorities.  Lower value runs first.  The ordering
 * matters: bus arbitration for a cycle must observe every request posted
 * for that cycle, so requests post at Default and the arbiter runs at
 * Arbitrate.
 */
enum class EventPri : int
{
    Default = 0,
    Arbitrate = 10,
    Stats = 20
};

/**
 * The event queue: a priority queue of (tick, priority, sequence) ordered
 * callbacks plus the current simulated time.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in ticks. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback to run.
     * @param pri Intra-tick priority.
     */
    void
    schedule(Tick when, Callback cb, EventPri pri = EventPri::Default)
    {
        sim_assert(when >= now_, "scheduling into the past: %llu < %llu",
                   (unsigned long long)when, (unsigned long long)now_);
        events_.push(Entry{when, int(pri), seq_++, std::move(cb)});
    }

    /** Schedule a callback @p delta ticks from now. */
    void
    scheduleIn(Tick delta, Callback cb, EventPri pri = EventPri::Default)
    {
        schedule(now_ + delta, std::move(cb), pri);
    }

    /** True if no events are pending. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Total events executed since construction/reset (diagnostics:
     *  distinguishes a spinning livelock from a drained deadlock). */
    std::uint64_t executed() const { return executed_; }

    /**
     * Run events until the queue drains or simulated time would exceed
     * @p until.  Events scheduled exactly at @p until still run.
     *
     * @return Number of events executed.
     */
    std::uint64_t run(Tick until = maxTick);

    /**
     * Run at most @p max_events events (for watchdog-style tests).
     * @return Number of events executed.
     */
    std::uint64_t runSteps(std::uint64_t max_events);

    /** Discard all pending events and reset time to zero. */
    void reset();

  private:
    struct Entry
    {
        Tick when;
        int pri;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (pri != o.pri)
                return pri > o.pri;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> events_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace csync

#endif // CSYNC_SIM_EVENT_QUEUE_HH
