#include "sim/parallel.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace csync
{

Tick
conservativeLookahead(const BusTiming &t)
{
    // The fastest thing that can cross a domain boundary is a one-cycle
    // signal; a full transaction additionally pays arbitration plus the
    // address phase.  Whichever is smaller bounds how soon activity in
    // one domain can be observed in another.
    Tick fastest = std::min(t.signalCycles, t.arbCycles + t.addrCycles);
    return std::max<Tick>(Tick(1), fastest);
}

SpscMailbox::SpscMailbox(std::size_t capacity)
    : ring_(capacity ? capacity : 1), capacity_(capacity ? capacity : 1)
{
}

void
SpscMailbox::push(CrossEvent ev)
{
    if (spilling_) {
        std::lock_guard<std::mutex> g(spillMu_);
        // Re-arm the ring only once *everything* has drained; while any
        // older entry is still in flight a ring push would overtake the
        // spill list at the next drain.
        if (!spill_.empty() ||
            tail_.load(std::memory_order_relaxed) !=
                head_.load(std::memory_order_acquire)) {
            spill_.push_back(std::move(ev));
            return;
        }
        spilling_ = false;
    }
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head < capacity_) {
        ring_[tail % capacity_] = std::move(ev);
        tail_.store(tail + 1, std::memory_order_release);
        return;
    }
    spilling_ = true;
    std::lock_guard<std::mutex> g(spillMu_);
    spill_.push_back(std::move(ev));
}

void
SpscMailbox::drainTo(std::vector<CrossEvent> *out)
{
    std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t tail = tail_.load(std::memory_order_acquire);
    for (; head != tail; ++head)
        out->push_back(std::move(ring_[head % capacity_]));
    head_.store(head, std::memory_order_release);

    std::lock_guard<std::mutex> g(spillMu_);
    for (auto &ev : spill_)
        out->push_back(std::move(ev));
    spill_.clear();
}

bool
SpscMailbox::empty() const
{
    if (tail_.load(std::memory_order_acquire) !=
        head_.load(std::memory_order_relaxed))
        return false;
    std::lock_guard<std::mutex> g(spillMu_);
    return spill_.empty();
}

ParallelScheduler::ParallelScheduler(std::vector<Shard> shards,
                                     const Options &opts)
    : shards_(std::move(shards)), opts_(opts)
{
    sim_assert(!shards_.empty(), "parallel scheduler needs shards");
    for (const auto &s : shards_)
        sim_assert(s.eq != nullptr, "parallel shard needs a queue");
    const unsigned n = unsigned(shards_.size());
    numWorkers_ = std::max(1u, std::min(opts_.threads, n));
    if (opts_.window < opts_.lookahead)
        opts_.window = opts_.lookahead;
    if (opts_.window == 0)
        opts_.window = 1;
    if (opts_.batchEvents == 0)
        opts_.batchEvents = 1;
    mail_.reserve(std::size_t(n) * n);
    for (std::size_t i = 0; i < std::size_t(n) * n; ++i)
        mail_.push_back(std::make_unique<SpscMailbox>());
    pairSeq_.assign(std::size_t(n) * n, 0);
}

ParallelScheduler::~ParallelScheduler()
{
    shutdownWorkers();
}

void
ParallelScheduler::post(unsigned src, unsigned dst, Tick when, EventPri pri,
                        EventCallback cb)
{
    const unsigned n = unsigned(shards_.size());
    sim_assert(src < n && dst < n, "cross-shard post %u->%u out of range",
               src, dst);
    sim_assert(when >= windowEnd_,
               "cross-shard event at %llu violates the lookahead contract "
               "(window ends at %llu)",
               (unsigned long long)when, (unsigned long long)windowEnd_);
    const std::size_t idx = std::size_t(src) * n + dst;
    CrossEvent ev;
    ev.when = when;
    ev.pri = pri;
    ev.srcDomain = src;
    ev.srcSeq = pairSeq_[idx]++;
    ev.cb = std::move(cb);
    mail_[idx]->push(std::move(ev));
}

void
ParallelScheduler::deliverMail()
{
    const unsigned n = unsigned(shards_.size());
    std::vector<CrossEvent> batch;
    for (unsigned dst = 0; dst < n; ++dst) {
        batch.clear();
        for (unsigned src = 0; src < n; ++src)
            mail_[std::size_t(src) * n + dst]->drainTo(&batch);
        // Deterministic delivery regardless of worker timing: the order
        // events enter the destination heap fixes their FIFO sequence
        // numbers, hence the execution order of same-(tick, pri) events.
        std::stable_sort(batch.begin(), batch.end(),
                         [](const CrossEvent &a, const CrossEvent &b) {
                             if (a.when != b.when)
                                 return a.when < b.when;
                             if (a.pri != b.pri)
                                 return a.pri < b.pri;
                             if (a.srcDomain != b.srcDomain)
                                 return a.srcDomain < b.srcDomain;
                             return a.srcSeq < b.srcSeq;
                         });
        for (auto &ev : batch)
            shards_[dst].eq->schedule(ev.when, std::move(ev.cb), ev.pri);
    }
}

void
ParallelScheduler::runShardWindow(unsigned shard)
{
    EventQueue *eq = shards_[shard].eq;
    const Tick end = windowEnd_;
    while (true) {
        if (opts_.abort && opts_.abort->load(std::memory_order_relaxed))
            return;
        std::uint64_t ran = eq->runBounded(end, opts_.batchEvents);
        if (ran < opts_.batchEvents)
            return;
    }
}

void
ParallelScheduler::workerMain(unsigned worker)
{
    // Model code calls fatal() on invariant violations; inside a worker
    // that must unwind, not abort, so the coordinator can surface the
    // first failure on the caller's thread.
    ScopedFatalThrow rethrow;
    std::uint64_t seenGen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cvWork_.wait(lk, [&] { return generation_ != seenGen; });
            seenGen = generation_;
            if (stopWorkers_)
                return;
        }
        try {
            for (unsigned s = worker; s < shards_.size(); s += numWorkers_)
                runShardWindow(s);
        } catch (...) {
            std::lock_guard<std::mutex> g(mu_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> g(mu_);
            if (--running_ == 0)
                cvDone_.notify_one();
        }
    }
}

void
ParallelScheduler::shutdownWorkers()
{
    if (threads_.empty())
        return;
    {
        std::lock_guard<std::mutex> g(mu_);
        stopWorkers_ = true;
        ++generation_;
    }
    cvWork_.notify_all();
    for (auto &t : threads_)
        t.join();
    threads_.clear();
}

ParallelScheduler::Result
ParallelScheduler::run()
{
    const unsigned n = unsigned(shards_.size());
    Result res;

    threads_.reserve(numWorkers_);
    for (unsigned w = 0; w < numWorkers_; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });

    bool ranWindow = false;
    while (true) {
        // Between windows only this thread is active: deliver mail,
        // then read shard state directly.
        deliverMail();

        bool allDone = true;
        bool anyPending = false;
        Tick nextTick = maxTick;
        Tick maxNow = 0;
        double retired = 0;
        for (unsigned i = 0; i < n; ++i) {
            const Shard &s = shards_[i];
            if (!s.done || !s.done())
                allDone = false;
            if (s.retired)
                retired += s.retired();
            maxNow = std::max(maxNow, s.eq->now());
            nextTick = std::min(nextTick, s.eq->nextEventTick());
            anyPending = anyPending || !s.eq->empty();
        }
        res.finalTick = maxNow;
        res.retired = retired;

        {
            std::lock_guard<std::mutex> g(mu_);
            if (firstError_)
                break;
        }
        if (opts_.abort && opts_.abort->load(std::memory_order_relaxed)) {
            res.aborted = true;
            break;
        }
        if (allDone && !anyPending) {
            res.completed = true;
            break;
        }
        if (!anyPending) {
            // Every queue and mailbox empty with workloads unfinished:
            // the sharded engine's drained-deadlock signal.
            res.drained = true;
            break;
        }
        if (ranWindow && opts_.onWindow && opts_.onWindow(windowEnd_, retired)) {
            res.stoppedByHook = true;
            break;
        }
        if (nextTick >= opts_.maxTicks) {
            res.hitMaxTicks = true;
            break;
        }

        Tick end = nextTick + (opts_.window - 1);
        if (end < nextTick)
            end = maxTick; // overflow
        if (opts_.maxTicks != maxTick)
            end = std::min(end, opts_.maxTicks - 1);
        windowEnd_ = end;
        ranWindow = true;

        {
            std::lock_guard<std::mutex> g(mu_);
            running_ = numWorkers_;
            ++generation_;
        }
        cvWork_.notify_all();
        {
            std::unique_lock<std::mutex> lk(mu_);
            cvDone_.wait(lk, [&] { return running_ == 0; });
        }
    }

    shutdownWorkers();
    {
        std::lock_guard<std::mutex> g(mu_);
        if (firstError_)
            std::rethrow_exception(firstError_);
    }
    return res;
}

} // namespace csync
